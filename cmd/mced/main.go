// Command mced is the resident maximal-clique enumeration daemon: it keeps
// registered graphs and their preprocessed Sessions warm in memory and
// serves enumeration/count jobs over an HTTP JSON API, so the per-query
// cost drops from parse+preprocess to pure enumeration.
//
// Usage:
//
//	mced [-addr 127.0.0.1:8399] [-portfile path]
//	     [-dataset name=path ...] [-slots N] [-queue-wait 2s] [-queue-len N]
//	     [-session-budget 1GiB] [-stream-buffer 1024] [-job-history 256]
//	     [-journal dir] [-checkpoint-interval 2s]
//	     [-peers url,url,...] [-shard-inflight N] [-shard-timeout 1m]
//	     [-shard-retries N] [-shard-branches N]
//	     [-breaker-threshold N] [-breaker-cooldown 10s]
//	     [-log-level info] [-log-format text] [-slow-query 0]
//	     [-phase-timers] [-debug-addr host:port]
//
// Start the daemon, register a dataset and stream a job:
//
//	mced -addr 127.0.0.1:8399 &
//	curl -s localhost:8399/v1/datasets -d '{"name":"web","path":"web.txt"}'
//	curl -s localhost:8399/v1/jobs -d '{"dataset":"web","workers":4}'   # -> {"id":"j000001",...}
//	curl -sN localhost:8399/v1/jobs/j000001/cliques                     # NDJSON stream
//
// -dataset registers graphs at boot (repeatable; format auto-detected).
// -slots caps the total enumeration worker goroutines across all concurrent
// jobs (default GOMAXPROCS); requests that cannot be admitted within
// -queue-wait receive HTTP 429. -session-budget bounds the warm-session
// cache (accepts plain bytes or KiB/MiB/GiB suffixes); least recently used
// sessions are evicted beyond it. -portfile writes the bound "host:port" —
// with -addr :0 this is how scripts find the listener. SIGINT/SIGTERM shut
// down gracefully: running jobs are cancelled and their partial statistics
// persisted before the process exits.
//
// -journal makes jobs crash-safe: submissions, branch-level progress
// checkpoints and terminal results are appended to a write-ahead log in the
// given directory, fsync'd before they are acknowledged. A daemon restarted
// with the same -journal dir replays the log, re-registers its datasets and
// resumes interrupted jobs from their last durable checkpoint — counts
// re-run only the incomplete branches, and streaming clients reconnect with
// ?resume_after= to receive each clique exactly once. -checkpoint-interval
// throttles how often progress is persisted (negative = every branch
// chunk). /readyz answers 503 until the replay has been applied. See the
// README's "Fault tolerance" section.
//
// -peers turns the node into a distributed coordinator: jobs are split into
// top-level branch shards and fanned out to the listed worker nodes, whose
// clique streams merge into the one stream the client reads. Workers run
// plain mced with the same dataset registered; -shard-inflight bounds the
// concurrently dispatched shards, -shard-timeout bounds one shard attempt
// (stragglers are re-split or re-dispatched), -shard-retries bounds the
// re-dispatches per shard and -shard-branches caps a shard's branch
// interval. Repeatedly failing peers trip a per-peer circuit breaker:
// after -breaker-threshold consecutive failures the peer is quarantined
// for -breaker-cooldown, then a single probe shard decides whether it
// rejoins the rotation. See the README's "Distributed serving" section.
//
// Observability: GET /metrics serves Prometheus text exposition (histograms
// for job latency, queue wait, per-phase time, stream stall, journal fsync
// and shard RTT) or, with ?format=json, the flat expvar counters. Every job
// carries a trace timeline readable at GET /v1/jobs/{id}/trace; in
// coordinator mode the trace ID propagates to workers via a traceparent
// header so shard spans nest under the coordinator job. -log-level and
// -log-format control the structured (log/slog) job logs on stderr;
// -slow-query logs a sampled timeline for jobs slower than the threshold;
// -phase-timers enables per-phase timing on every job (also settable per
// job in the request); -debug-addr opens a second listener serving
// net/http/pprof and expvar for live profiling, kept off the main API
// address so profiling endpoints are never exposed to job clients. See the
// README's "Observability" section.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/graphmining/hbbmc/internal/chaos"
	"github.com/graphmining/hbbmc/internal/service"
)

type datasetFlags []string

func (d *datasetFlags) String() string { return strings.Join(*d, ",") }
func (d *datasetFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*d = append(*d, v)
	return nil
}

// parseBytes accepts "1073741824", "512MiB", "1GiB", "64KiB".
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "KiB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KiB")
	case strings.HasSuffix(s, "MiB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MiB")
	case strings.HasSuffix(s, "GiB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GiB")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n * mult, nil
}

func main() {
	var datasets datasetFlags
	var (
		addr         = flag.String("addr", "127.0.0.1:8399", "listen address (use :0 for a random port with -portfile)")
		portFile     = flag.String("portfile", "", "write the bound host:port to this file once listening")
		slots        = flag.Int("slots", 0, "global worker-slot budget shared by all jobs (0 = GOMAXPROCS)")
		queueWait    = flag.Duration("queue-wait", 2*time.Second, "admission wait before a saturated request gets 429")
		queueLen     = flag.Int("queue-len", 0, "admission queue length before immediate 429 (0 = 4×slots)")
		budget       = flag.String("session-budget", "1GiB", "LRU byte budget for warm sessions (plain bytes or KiB/MiB/GiB)")
		streamBuffer = flag.Int("stream-buffer", 0, "default per-job clique channel capacity (0 = 1024)")
		jobHistory   = flag.Int("job-history", 0, "terminal jobs retained for status queries (0 = 256)")
		grace        = flag.Duration("grace", 10*time.Second, "graceful-shutdown bound for cancelling running jobs")

		journalDir = flag.String("journal", "", "directory for the crash-recovery job journal (empty = no journal)")
		ckptEvery  = flag.Duration("checkpoint-interval", 0, "min interval between durable branch-progress checkpoints (0 = 2s, negative = every chunk)")

		peers         = flag.String("peers", "", "comma-separated worker base URLs; non-empty enables coordinator mode")
		shardInflight = flag.Int("shard-inflight", 0, "max shards dispatched concurrently (0 = 2×peers)")
		shardTimeout  = flag.Duration("shard-timeout", 0, "per-shard attempt bound; stragglers are re-split or re-dispatched (0 = 1m)")
		shardRetries  = flag.Int("shard-retries", 0, "re-dispatches per failed shard before the job fails (0 = 3, negative = none)")
		shardBranches = flag.Int("shard-branches", 0, "max top-level branches per shard (0 = 4096)")

		breakerThreshold = flag.Int("breaker-threshold", 0, "consecutive peer failures that trip its circuit breaker (0 = 5)")
		breakerCooldown  = flag.Duration("breaker-cooldown", 0, "quarantine before an open breaker admits a probe shard (0 = 10s)")

		logLevel    = flag.String("log-level", "info", "minimum structured-log level: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "structured-log encoding on stderr: text or json")
		slowQuery   = flag.Duration("slow-query", 0, "log a sampled trace timeline for jobs slower than this (0 = disabled)")
		phaseTimers = flag.Bool("phase-timers", false, "collect per-phase timings on every job (jobs can also opt in per request)")
		debugAddr   = flag.String("debug-addr", "", "separate listener for net/http/pprof and expvar (empty = disabled)")
	)
	flag.Var(&datasets, "dataset", "register a dataset at boot as name=path (repeatable)")
	flag.Parse()

	budgetBytes, err := parseBytes(*budget)
	if err != nil {
		fatal(err)
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if err := chaos.ArmFromEnv(); err != nil {
		fatal(err)
	}
	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fatal(err)
	}
	var bootDatasets []service.DatasetSpec
	for _, spec := range datasets {
		name, path, _ := strings.Cut(spec, "=")
		bootDatasets = append(bootDatasets, service.DatasetSpec{Name: name, Path: path})
	}
	srv, err := service.Open(service.Config{
		WorkerSlots:        *slots,
		QueueWait:          *queueWait,
		MaxQueue:           *queueLen,
		SessionBudget:      budgetBytes,
		StreamBuffer:       *streamBuffer,
		MaxJobHistory:      *jobHistory,
		JournalDir:         *journalDir,
		CheckpointInterval: *ckptEvery,
		Peers:              peerList,
		ShardInflight:      *shardInflight,
		ShardTimeout:       *shardTimeout,
		ShardRetries:       *shardRetries,
		ShardMaxBranches:   *shardBranches,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		Logger:             logger,
		SlowQuery:          *slowQuery,
		PhaseTimers:        *phaseTimers,
		BootDatasets:       bootDatasets,
	})
	if err != nil {
		fatal(err)
	}
	if *journalDir != "" {
		fmt.Fprintf(os.Stderr, "mced: journaling jobs to %s\n", *journalDir)
	}
	if len(peerList) > 0 {
		fmt.Fprintf(os.Stderr, "mced: coordinator mode, %d peer(s)\n", len(peerList))
	}
	for _, d := range bootDatasets {
		fmt.Fprintf(os.Stderr, "mced: registered dataset %q from %s\n", d.Name, d.Path)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	bound := ln.Addr().String()
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(bound), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "mced: listening on http://%s\n", bound)

	if *debugAddr != "" {
		if err := serveDebug(*debugAddr); err != nil {
			fatal(err)
		}
	}

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "mced: %v, shutting down\n", sig)
	case err := <-errc:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	// Cancel running jobs first — that unblocks any in-flight streaming
	// handlers (their channels close) — then drain the HTTP server.
	jobErr := srv.Shutdown(ctx)
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mced: http shutdown:", err)
	}
	if jobErr != nil {
		fmt.Fprintln(os.Stderr, "mced: job shutdown:", jobErr)
		os.Exit(1)
	}
}

// buildLogger constructs the structured stderr logger the service threads
// through its job lifecycle logs.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log-format %q (want text or json)", format)
	}
}

// serveDebug opens the profiling listener: net/http/pprof plus expvar on an
// explicit mux of its own, so the debug surface shares nothing with the job
// API mux and is only reachable on the operator-chosen address.
func serveDebug(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "mced: debug (pprof, expvar) on http://%s/debug/pprof/\n", ln.Addr())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			fmt.Fprintln(os.Stderr, "mced: debug listener:", err)
		}
	}()
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mced:", err)
	os.Exit(1)
}
