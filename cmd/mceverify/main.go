// Command mceverify checks a clique file against a graph: every line must
// be a clique, maximal, and distinct; optionally the total is compared with
// a fresh enumeration by a reference engine. The graph loads in any
// supported format (auto-detected: edge list, DIMACS, MatrixMarket, METIS,
// .hbg snapshot, optionally gzipped), so the verified input can be the
// exact file mce consumed.
//
// Usage:
//
//	mce -in graph.txt -out cliques.txt
//	mceverify -graph graph.txt -cliques cliques.txt -recount
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	hbbmc "github.com/graphmining/hbbmc"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph file, any supported format (required)")
		cliquePath = flag.String("cliques", "", "clique file, one clique per line (required)")
		format     = flag.String("format", "auto", "graph format: auto|edgelist|dimacs|mtx|metis|hbg")
		recount    = flag.Bool("recount", false, "re-enumerate with BK_Degen and compare the count")
	)
	flag.Parse()
	if *graphPath == "" || *cliquePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	gf, err := hbbmc.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	g, err := hbbmc.LoadFile(*graphPath, hbbmc.LoadOptions{Format: gf})
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*cliquePath)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	seen := make(map[string]bool)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo, count := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		clique := make([]int32, 0, len(fields))
		for _, fld := range fields {
			v, err := strconv.ParseInt(fld, 10, 32)
			if err != nil || v < 0 || int(v) >= g.NumVertices() {
				fatal(fmt.Errorf("line %d: bad vertex %q", lineNo, fld))
			}
			clique = append(clique, int32(v))
		}
		sort.Slice(clique, func(i, j int) bool { return clique[i] < clique[j] })
		for i := 1; i < len(clique); i++ {
			if clique[i] == clique[i-1] {
				fatal(fmt.Errorf("line %d: repeated vertex %d", lineNo, clique[i]))
			}
		}
		key := fmt.Sprint(clique)
		if seen[key] {
			fatal(fmt.Errorf("line %d: duplicate clique %v", lineNo, clique))
		}
		seen[key] = true
		if !g.IsClique(clique) {
			fatal(fmt.Errorf("line %d: %v is not a clique", lineNo, clique))
		}
		if ext := findExtension(g, clique); ext >= 0 {
			fatal(fmt.Errorf("line %d: %v is not maximal (vertex %d extends it)", lineNo, clique, ext))
		}
		count++
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("mceverify: %d cliques verified (clique + maximal + distinct)\n", count)

	if *recount {
		want, _, err := hbbmc.Count(g, hbbmc.Options{Algorithm: hbbmc.BKDegen, GR: true})
		if err != nil {
			fatal(err)
		}
		if int64(count) != want {
			fatal(fmt.Errorf("file has %d cliques but the graph has %d", count, want))
		}
		fmt.Printf("mceverify: count matches an independent enumeration (%d)\n", want)
	}
}

// findExtension returns a vertex adjacent to every member of c, or -1.
func findExtension(g *hbbmc.Graph, c []int32) int32 {
	if len(c) == 0 {
		if g.NumVertices() > 0 {
			return 0
		}
		return -1
	}
	min := c[0]
	for _, v := range c[1:] {
		if g.Degree(v) < g.Degree(min) {
			min = v
		}
	}
	for _, z := range g.Neighbors(min) {
		in := false
		for _, u := range c {
			if u == z {
				in = true
				break
			}
		}
		if in {
			continue
		}
		ok := true
		for _, u := range c {
			if u != min && !g.HasEdge(z, u) {
				ok = false
				break
			}
		}
		if ok {
			return z
		}
	}
	return -1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mceverify:", err)
	os.Exit(1)
}
