// mcelint is the repo's custom static-analysis suite: a multichecker over
// the invariants that keep the enumeration engine honest and that no
// compiler checks — merged stats, arena mark/release discipline,
// allocation-free hot paths, mutex-guarded service state, and cancellable
// driver loops.
//
// Usage:
//
//	go run ./cmd/mcelint [-run name,name] [-list] [packages...]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when any
// analyzer reported a diagnostic, 2 on a load or usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/graphmining/hbbmc/internal/analysis"
	"github.com/graphmining/hbbmc/internal/analysis/arenasafety"
	"github.com/graphmining/hbbmc/internal/analysis/ctxpoll"
	"github.com/graphmining/hbbmc/internal/analysis/load"
	"github.com/graphmining/hbbmc/internal/analysis/lockedfields"
	"github.com/graphmining/hbbmc/internal/analysis/noalloc"
	"github.com/graphmining/hbbmc/internal/analysis/statsmerge"
)

var analyzers = []*analysis.Analyzer{
	arenasafety.Analyzer,
	ctxpoll.Analyzer,
	lockedfields.Analyzer,
	noalloc.Analyzer,
	statsmerge.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runList = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		verbose = flag.Bool("v", false, "print each package as it is checked")
	)
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcelint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcelint:", err)
		return 2
	}

	var diags []analysis.Diagnostic
	total := 0
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintln(os.Stderr, "mcelint: checking", pkg.ImportPath)
		}
		for _, a := range selected {
			pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo, &diags)
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "mcelint: %s on %s: %v\n", a.Name, pkg.ImportPath, err)
				return 2
			}
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			fmt.Printf("%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		total += len(diags)
		diags = diags[:0]
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "mcelint: %d finding(s)\n", total)
		return 1
	}
	return 0
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
		}
		out = append(out, a)
	}
	return out, nil
}
