// Command mcebench reproduces the paper's experiments (Tables I–VI and
// Figure 5) on the synthetic stand-in datasets, times the session's
// workload queries (Table VII: maximum clique, top-k, k-clique counting),
// and gates benchmark regressions in CI via its compare mode.
//
// Usage:
//
//	mcebench -table 2                 # one table
//	mcebench -figure 5a               # one figure panel
//	mcebench -all                     # everything (several minutes)
//	mcebench -table 5 -datasets NA,WE # restrict the dataset list
//	mcebench -reps 3                  # repeat timings, keep the fastest
//	mcebench -table 2 -json           # stream one JSON line per timed run
//	mcebench -cache .benchcache       # back datasets with .hbg snapshots
//
//	mcebench -compare BENCH_BASELINE.json -candidate bench.json
//
// Every run cross-checks that all configurations report identical clique
// counts; a mismatch aborts with an error.
//
// With -json, every timed run emits one JSON line on stdout
// ({"dataset","config","rep","seconds","stats":{...}}, durations in
// nanoseconds) and the human-readable tables move to stderr, so the stdout
// stream stays machine-parseable.
//
// Compare mode reads two such JSON streams — a committed baseline and a
// fresh candidate (-candidate, "-" = stdin) — groups them by (dataset,
// config), and compares median enumerate times. It prints a delta table
// and exits 3 when any cell is more than -threshold percent slower (default
// 25), 0 when the gate passes, 1 on errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"

	"github.com/graphmining/hbbmc/internal/benchharness"
)

const exitRegression = 3

func main() {
	var (
		table      = flag.Int("table", 0, "table number to reproduce (1-7; 7 = workload queries)")
		figure     = flag.String("figure", "", "figure panel to reproduce (5a|5b|5c|5d)")
		all        = flag.Bool("all", false, "run every table and figure")
		datasets   = flag.String("datasets", "", "comma-separated dataset codes (default: all 16)")
		reps       = flag.Int("reps", 1, "timing repetitions per cell (fastest wins)")
		seeds      = flag.Int("seeds", 3, "random graphs per figure sweep point")
		workers    = flag.Int("workers", 1, "worker goroutines per cell (1 = sequential as in the paper, 0 = all cores)")
		jsonOut    = flag.Bool("json", false, "emit one JSON line per timed run on stdout (tables move to stderr)")
		cacheDir   = flag.String("cache", "", "directory for .hbg dataset snapshots (empty = rebuild in-process)")
		compare    = flag.String("compare", "", "baseline JSON file: compare -candidate against it instead of running benchmarks")
		candidate  = flag.String("candidate", "-", "candidate JSON file for -compare (\"-\" = stdin)")
		threshold  = flag.Float64("threshold", 25, "percent slowdown of a cell's median enumerate time that fails -compare")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	if *compare != "" {
		os.Exit(runCompare(*compare, *candidate, *threshold))
	}
	// Profiles cover the benchmark path only (compare mode exits above).
	// They are finalised through flushProfiles, which both normal
	// termination and fatal() run — an error mid-benchmark must still
	// leave parseable profile files, not one truncated by os.Exit.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		prev := profileFlush
		profileFlush = func() {
			pprof.StopCPUProfile()
			f.Close()
			prev()
		}
	}
	if *memprofile != "" {
		path := *memprofile
		prev := profileFlush
		profileFlush = func() {
			prev()
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcebench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "mcebench:", err)
			}
		}
	}
	defer flushProfiles()
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	cfg := benchharness.Config{Reps: *reps, Workers: *workers, CacheDir: *cacheDir}
	if *datasets != "" {
		for _, d := range strings.Split(*datasets, ",") {
			cfg.Datasets = append(cfg.Datasets, strings.TrimSpace(d))
		}
	}
	fc := benchharness.DefaultFigureConfig()
	fc.Seeds = *seeds
	fc.Workers = *workers
	tableOut := io.Writer(os.Stdout)
	if *jsonOut {
		cfg.JSON = os.Stdout
		fc.JSON = os.Stdout
		tableOut = os.Stderr
	}

	tables := map[int]func(benchharness.Config) (*benchharness.Table, error){
		1: benchharness.Table1,
		2: benchharness.Table2,
		3: benchharness.Table3,
		4: benchharness.Table4,
		5: benchharness.Table5,
		6: benchharness.Table6,
		7: benchharness.Table7,
	}
	figures := map[string]func(benchharness.FigureConfig) (*benchharness.Table, error){
		"5a": benchharness.Figure5a,
		"5b": benchharness.Figure5b,
		"5c": benchharness.Figure5c,
		"5d": benchharness.Figure5d,
	}

	ran := false
	runTable := func(n int) {
		fn, ok := tables[n]
		if !ok {
			fatal(fmt.Errorf("unknown table %d (1-7)", n))
		}
		t, err := fn(cfg)
		if err != nil {
			fatal(err)
		}
		if err := t.Fprint(tableOut); err != nil {
			fatal(err)
		}
		ran = true
	}
	runFigure := func(name string) {
		fn, ok := figures[name]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q (5a|5b|5c|5d)", name))
		}
		t, err := fn(fc)
		if err != nil {
			fatal(err)
		}
		if err := t.Fprint(tableOut); err != nil {
			fatal(err)
		}
		ran = true
	}

	switch {
	case *all:
		for n := 1; n <= 7; n++ {
			runTable(n)
		}
		for _, f := range []string{"5a", "5b", "5c", "5d"} {
			runFigure(f)
		}
	case *table != 0:
		runTable(*table)
	case *figure != "":
		runFigure(*figure)
	}
	if !ran {
		flushProfiles() // os.Exit skips the deferred flush
		flag.Usage()
		os.Exit(2)
	}
}

// runCompare executes the benchmark-regression gate and returns the exit
// code: 0 pass, exitRegression on a regression.
func runCompare(baselinePath, candidatePath string, threshold float64) int {
	baseline, err := os.Open(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcebench:", err)
		return 1
	}
	defer baseline.Close()
	cand := io.Reader(os.Stdin)
	if candidatePath != "-" {
		f, err := os.Open(candidatePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcebench:", err)
			return 1
		}
		defer f.Close()
		cand = f
	}
	table, regressions, err := benchharness.Compare(baseline, cand, threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcebench:", err)
		return 1
	}
	if err := table.Fprint(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcebench:", err)
		return 1
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "mcebench: %d benchmark regression(s) beyond +%.0f%%:\n", len(regressions), threshold)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  ", r)
		}
		return exitRegression
	}
	fmt.Printf("mcebench: benchmark gate passed (%d cells within +%.0f%%)\n", len(table.Rows), threshold)
	return 0
}

// profileFlush finalises any active profiles; guarded by profileOnce so
// the deferred flush at normal exit and the one inside fatal cannot both
// run it.
var (
	profileFlush = func() {}
	profileOnce  sync.Once
)

func flushProfiles() { profileOnce.Do(func() { profileFlush() }) }

func fatal(err error) {
	flushProfiles()
	fmt.Fprintln(os.Stderr, "mcebench:", err)
	os.Exit(1)
}
