// Command mce enumerates the maximal cliques of a graph — or, with one of
// the query flags, answers a different clique workload on the same engine.
//
// Usage:
//
//	mce -in graph.txt [-format auto] [-algo hbbmc] [-et 3] [-gr]
//	    [-d 1] [-edgeorder truss] [-inner pivot] [-out cliques.txt] [-quiet]
//	    [-workers 1] [-emitbatch 0] [-chunk 0] [-timeout 0] [-maxcliques 0]
//	    [-save graph.hbg] [-cache] [-phases] [-json]
//	    [-maxclique | -topk K | -kcliques K]
//
// -json replaces the prose summary on stderr with one machine-readable JSON
// line (durations in nanoseconds, full engine statistics; with -phases, the
// per-phase timers as a "phases" array). It is printed on the early-stop
// exits too, so scripts consuming it still see the partial run's numbers.
//
// Query flags (mutually exclusive; none = enumerate every maximal clique):
// -maxclique solves the exact maximum-clique problem and prints the single
// witness clique; -topk K prints the K largest maximal cliques, largest
// first; -kcliques K prints the number of k-vertex cliques (not only the
// maximal ones). All three run on the same cached preprocessing and honour
// -workers and -timeout; -maxcliques applies to plain enumeration only.
//
// The input format is auto-detected by default: SNAP/plain edge lists
// ("u v" per line, '#'/'%' comments), DIMACS clique files, MatrixMarket
// coordinate files, METIS adjacency (by .metis/.graph extension) and .hbg
// binary CSR snapshots, each optionally gzip-compressed. Text formats parse
// on all cores. -save writes the parsed graph as a .hbg snapshot; -cache
// keeps a <input>.hbg sidecar up to date automatically so repeat runs skip
// parsing entirely.
//
// Each maximal clique is printed as one line of vertex ids; -quiet
// suppresses clique output and reports statistics only. -workers 0
// enumerates on all cores (-workers N on N); parallel runs report cliques
// in nondeterministic order. -emitbatch and -chunk tune the parallel
// scheduler's emit batching and work-queue chunking (0 = adaptive
// defaults).
//
// -timeout bounds the wall-clock time of the enumeration (e.g. -timeout
// 30s; 0 = unlimited) and -maxcliques stops after that many cliques
// (0 = unlimited); both still print the cliques found and the partial
// statistics. The exit status distinguishes the outcomes: 0 = complete,
// 1 = error, 2 = usage, 3 = stopped by -maxcliques, 4 = stopped by
// -timeout.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
)

// Exit codes: early stops requested via -maxcliques/-timeout are reported
// distinctly from real errors so scripts can tell a truncated result from a
// failed one.
const (
	exitError    = 1
	exitUsage    = 2
	exitStopped  = 3
	exitDeadline = 4
)

func main() {
	var (
		in         = flag.String("in", "", "input graph file (required)")
		format     = flag.String("format", "auto", "input format: auto|edgelist|dimacs|mtx|metis|hbg")
		save       = flag.String("save", "", "write the parsed graph as a binary .hbg snapshot to this file")
		cache      = flag.Bool("cache", false, "maintain a <input>.hbg sidecar snapshot and load it when fresh")
		algo       = flag.String("algo", "hbbmc", "algorithm: "+hbbmc.AlgorithmChoices())
		et         = flag.Int("et", 3, "early-termination t-plex threshold (0 disables)")
		gr         = flag.Bool("gr", true, "apply graph reduction")
		depth      = flag.Int("d", 1, "hybrid switch depth (HBBMC only)")
		edgeOrder  = flag.String("edgeorder", "truss", "edge ordering: "+hbbmc.EdgeOrderChoices())
		inner      = flag.String("inner", "pivot", "hybrid inner recursion: "+hbbmc.InnerChoices())
		out        = flag.String("out", "", "write cliques to this file (default stdout)")
		quiet      = flag.Bool("quiet", false, "suppress clique output, print statistics only")
		profile    = flag.Bool("profile", false, "print the graph's structural profile (δ, τ, ρ, h)")
		workers    = flag.Int("workers", 1, "worker goroutines (1 = sequential, 0 = all cores)")
		emitBatch  = flag.Int("emitbatch", 0, "cliques buffered per worker before a batched emit flush (0 = default)")
		chunk      = flag.Int("chunk", 0, "fixed branches per work-queue pop (0 = adaptive guided chunking)")
		timeout    = flag.Duration("timeout", 0, "stop the enumeration after this wall-clock time, keeping partial results (0 = unlimited)")
		maxCliques = flag.Int64("maxcliques", 0, "stop after this many maximal cliques (0 = unlimited)")
		phases     = flag.Bool("phases", false, "collect and print per-phase timers (universe build, pivot scans, early termination, emit)")
		jsonOut    = flag.Bool("json", false, "print the run summary as one JSON line on stderr instead of prose (with -phases, includes per-phase timings)")
		maxClique  = flag.Bool("maxclique", false, "solve the exact maximum-clique problem instead of enumerating")
		topK       = flag.Int("topk", 0, "print only the k largest maximal cliques, largest first (0 = disabled)")
		kCliques   = flag.Int("kcliques", 0, "count k-vertex cliques for this k instead of enumerating (0 = disabled)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(exitUsage)
	}
	queryFlags := 0
	for _, set := range []bool{*maxClique, *topK != 0, *kCliques != 0} {
		if set {
			queryFlags++
		}
	}
	if queryFlags > 1 {
		fmt.Fprintln(os.Stderr, "mce: -maxclique, -topk and -kcliques are mutually exclusive")
		os.Exit(exitUsage)
	}
	if *topK < 0 || *kCliques < 0 {
		fmt.Fprintln(os.Stderr, "mce: -topk and -kcliques need a positive k")
		os.Exit(exitUsage)
	}

	g, err := load(*in, *format, *cache)
	if err != nil {
		fatal(err)
	}
	if *save != "" {
		if err := g.SaveBinaryFile(*save); err != nil {
			fatal(err)
		}
	}
	if *profile {
		p := hbbmc.ProfileGraph(g)
		fmt.Printf("n=%d m=%d δ=%d τ=%d ρ=%.2f h=%d triangles=%d condition(δ≥max{3,τ+3lnρ/ln3})=%v\n",
			p.N, p.M, p.Delta, p.Tau, p.Rho, p.HIndex, p.Triangles, p.HybridConditionHolds())
	}

	opts, err := buildOptions(*algo, *et, *gr, *depth, *edgeOrder, *inner)
	if err != nil {
		fatal(err)
	}

	// Clique output goes through one buffered writer that is explicitly
	// flushed (and the file closed) before every exit path, including the
	// -maxcliques/-timeout early exits: os.Exit skips deferred flushes, so
	// relying on defer would truncate buffered output mid-line on the
	// exit-code-3/4 paths. closeOutput is idempotent; a flush or close
	// failure is a real error (partial results on disk) and exits 1.
	var (
		w       *bufio.Writer
		outFile *os.File
	)
	if !*quiet {
		dst := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			outFile = f
			dst = f
		}
		w = bufio.NewWriter(dst)
	}
	closeOutput := func() {
		if w != nil {
			if err := w.Flush(); err != nil {
				w, outFile = nil, nil
				fatal(fmt.Errorf("flushing clique output: %w", err))
			}
			w = nil
		}
		if outFile != nil {
			if err := outFile.Close(); err != nil {
				outFile = nil
				fatal(fmt.Errorf("closing %s: %w", *out, err))
			}
			outFile = nil
		}
	}

	// Fold the flags into the session options: -workers 0 means all cores
	// (the legacy CLI contract), and the context carries the -timeout
	// deadline into the cooperative cancellation checks.
	if *workers == 0 {
		opts.Workers = hbbmc.UseAllCores
	} else {
		opts.Workers = *workers
	}
	opts.EmitBatchSize = *emitBatch
	opts.ParallelChunkSize = *chunk
	opts.MaxCliques = *maxCliques
	opts.PhaseTimers = *phases

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	sess, err := hbbmc.NewSession(g, opts)
	if err != nil {
		fatal(err)
	}
	writeClique := func(c []int32) {
		if w == nil {
			return
		}
		for i, v := range c {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprint(w, v)
		}
		fmt.Fprintln(w)
	}

	// Dispatch on the query flags. Every path leaves its results in the
	// output buffer and its counters in stats; the shared reporting and
	// exit-code handling below applies uniformly.
	var (
		stats   *hbbmc.Stats
		runErr  error
		summary string
	)
	// A query that fails validation returns no stats at all; bail before the
	// per-mode summaries dereference them.
	mustStats := func() {
		if stats == nil {
			closeOutput()
			fatal(runErr)
		}
	}
	switch {
	case *maxClique:
		var clique []int32
		clique, stats, runErr = sess.MaxClique(ctx, hbbmc.QueryOptions{})
		mustStats()
		writeClique(clique)
		summary = fmt.Sprintf("maximum clique of size %d (BnB: %d calls, %d prunes, %d incumbent updates)",
			len(clique), stats.BnBCalls, stats.BnBPrunes, stats.IncumbentUpdates)
	case *topK > 0:
		var cliques [][]int32
		cliques, stats, runErr = sess.TopK(ctx, *topK, hbbmc.QueryOptions{})
		mustStats()
		for _, c := range cliques {
			writeClique(c)
		}
		summary = fmt.Sprintf("top %d of %d maximal cliques (ω=%d)", len(cliques), stats.Cliques, stats.MaxCliqueSize)
	case *kCliques > 0:
		var count int64
		count, stats, runErr = sess.CountKCliques(ctx, *kCliques, hbbmc.QueryOptions{})
		mustStats()
		if w != nil {
			fmt.Fprintln(w, count)
		}
		summary = fmt.Sprintf("%d cliques of %d vertices", count, *kCliques)
	default:
		stats, runErr = sess.Enumerate(ctx, func(c []int32) bool {
			writeClique(c)
			return true
		})
		summary = fmt.Sprintf("%d maximal cliques (ω=%d)", stats.Cliques, stats.MaxCliqueSize)
	}
	// The enumeration has returned: all clique output is written to the
	// buffer. Flush and close it before reporting anything, so every exit
	// path below — error (1), -maxcliques (3), -timeout (4) and success —
	// leaves complete lines on disk.
	closeOutput()
	if code, _ := stopStatus(runErr); runErr != nil && code == 0 {
		fatal(runErr) // a real failure, not a requested early stop
	}
	if *jsonOut {
		// One machine-readable line replaces the prose summary; it is
		// printed before the early-stop exit so the -maxcliques/-timeout
		// paths (exit 3/4) report their partial run too.
		line := jsonSummary{
			Algorithm:    *algo,
			Summary:      summary,
			TotalNS:      time.Since(start),
			PrepNS:       sess.PrepTime(),
			SessionBytes: sess.MemoryEstimate(),
			Stats:        stats,
		}
		if *phases {
			pt := stats.PhaseTimes()
			line.Phases = pt[:]
		}
		if _, reason := stopStatus(runErr); reason != "" {
			line.Stopped = reason
		}
		if err := json.NewEncoder(os.Stderr).Encode(line); err != nil {
			fatal(err)
		}
	} else {
		fmt.Fprintf(os.Stderr, "%s: %s in %v (preprocessing %v, enumeration %v); %d branches, %d calls, ET %d/%d, workers=%d\n",
			*algo, summary, time.Since(start).Round(time.Millisecond),
			sess.PrepTime().Round(time.Millisecond), stats.EnumTime.Round(time.Millisecond),
			stats.TopBranches, stats.Calls, stats.EarlyTerminations, stats.PlexBranches, stats.Workers)
		if *phases {
			fmt.Fprintf(os.Stderr, "phases: universe=%v pivot=%v et=%v emit=%v (of enumeration %v; phases nest and overlap)\n",
				stats.UniverseTime.Round(time.Microsecond), stats.PivotTime.Round(time.Microsecond),
				stats.ETTime.Round(time.Microsecond), stats.EmitTime.Round(time.Microsecond),
				stats.EnumTime.Round(time.Microsecond))
			fmt.Fprintf(os.Stderr, "session: memory estimate %.2f MiB (CSR + orderings + triangle incidence)\n",
				float64(sess.MemoryEstimate())/(1<<20))
		}
		if stats.ParallelFallback != "" {
			fmt.Fprintf(os.Stderr, "mce: parallel run fell back to the sequential driver: %s\n", stats.ParallelFallback)
		}
	}
	if code, reason := stopStatus(runErr); code != 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "mce: stopped by %s; results above are partial\n", reason)
		}
		os.Exit(code)
	}
}

// jsonSummary is the -json run report: one line of JSON on stderr. Durations
// are nanoseconds; Stats carries the engine's full counter set and Phases
// the per-phase timers when -phases requested them. Stopped names the flag
// ("-maxcliques", "-timeout") that ended the run early, empty for a complete
// run.
type jsonSummary struct {
	Algorithm    string            `json:"algorithm"`
	Summary      string            `json:"summary"`
	TotalNS      time.Duration     `json:"total_ns"`
	PrepNS       time.Duration     `json:"prep_ns"`
	SessionBytes int64             `json:"session_bytes"`
	Stats        *hbbmc.Stats      `json:"stats"`
	Phases       []hbbmc.PhaseTime `json:"phases,omitempty"`
	Stopped      string            `json:"stopped,omitempty"`
}

// stopStatus classifies an early-stop error into its exit code and a
// human-readable reason; complete runs return (0, "").
func stopStatus(runErr error) (int, string) {
	switch {
	case errors.Is(runErr, context.DeadlineExceeded):
		return exitDeadline, "-timeout"
	case errors.Is(runErr, hbbmc.ErrStopped):
		return exitStopped, "-maxcliques"
	}
	return 0, ""
}

func buildOptions(algo string, et int, gr bool, depth int, edgeOrder, inner string) (hbbmc.Options, error) {
	a, err := hbbmc.ParseAlgorithm(algo)
	if err != nil {
		return hbbmc.Options{}, err
	}
	eo, err := hbbmc.ParseEdgeOrder(edgeOrder)
	if err != nil {
		return hbbmc.Options{}, err
	}
	in, err := hbbmc.ParseInnerAlgorithm(inner)
	if err != nil {
		return hbbmc.Options{}, err
	}
	return hbbmc.Options{
		Algorithm:   a,
		ET:          et,
		GR:          gr,
		SwitchDepth: depth,
		EdgeOrder:   eo,
		Inner:       in,
	}, nil
}

// load parses the input in any supported format, optionally through the
// .hbg sidecar cache. Parsing always uses all cores — the -workers flag
// governs the enumeration only.
func load(path, format string, cache bool) (*hbbmc.Graph, error) {
	f, err := hbbmc.ParseFormat(format)
	if err != nil {
		return nil, err
	}
	opts := hbbmc.LoadOptions{Format: f}
	if cache {
		g, _, err := hbbmc.LoadFileCached(path, opts)
		return g, err
	}
	return hbbmc.LoadFile(path, opts)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mce:", err)
	os.Exit(exitError)
}
