package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	hbbmc "github.com/graphmining/hbbmc"
)

func TestStopStatus(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{nil, 0},
		{hbbmc.ErrStopped, exitStopped},
		{fmt.Errorf("wrapped: %w", hbbmc.ErrStopped), exitStopped},
		{context.DeadlineExceeded, exitDeadline},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), exitDeadline},
	}
	for _, c := range cases {
		if code, _ := stopStatus(c.err); code != c.code {
			t.Errorf("stopStatus(%v) = %d, want %d", c.err, code, c.code)
		}
	}
	if code, _ := stopStatus(errors.New("disk on fire")); code != 0 {
		t.Error("ordinary errors must not classify as early stops")
	}
}

func TestBuildOptions(t *testing.T) {
	opts, err := buildOptions("hbbmc", 3, true, 1, "truss", "pivot")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Algorithm != hbbmc.HBBMC || opts.ET != 3 || !opts.GR {
		t.Fatalf("opts = %+v", opts)
	}
	opts, err = buildOptions("BKDegen", 0, false, 1, "degeneracy", "rcd")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Algorithm != hbbmc.BKDegen || opts.EdgeOrder != hbbmc.EdgeOrderDegeneracy || opts.Inner != hbbmc.InnerRcd {
		t.Fatalf("opts = %+v", opts)
	}
	for _, bad := range [][3]string{
		{"nope", "truss", "pivot"},
		{"hbbmc", "nope", "pivot"},
		{"hbbmc", "truss", "nope"},
	} {
		if _, err := buildOptions(bad[0], 3, true, 1, bad[1], bad[2]); err == nil {
			t.Errorf("buildOptions(%v) should fail", bad)
		}
	}
}

func TestLoadFormats(t *testing.T) {
	dir := t.TempDir()
	el := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(el, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := load(el, "edgelist", false)
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("edgelist load: %v %v", g, err)
	}
	dm := filepath.Join(dir, "g.col")
	if err := os.WriteFile(dm, []byte("p edge 3 2\ne 1 2\ne 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = load(dm, "dimacs", false)
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("dimacs load: %v %v", g, err)
	}
	// Auto-detection handles both without a format flag.
	for _, p := range []string{el, dm} {
		g, err = load(p, "auto", false)
		if err != nil || g.NumEdges() != 2 {
			t.Fatalf("auto load %s: %v %v", p, g, err)
		}
	}
	// A MatrixMarket file and a binary snapshot auto-detect too.
	mtx := filepath.Join(dir, "g.mtx")
	if err := os.WriteFile(mtx, []byte("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err = load(mtx, "auto", false)
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("mtx load: %v %v", g, err)
	}
	hbg := filepath.Join(dir, "g.hbg")
	if err := g.SaveBinaryFile(hbg); err != nil {
		t.Fatal(err)
	}
	g, err = load(hbg, "auto", false)
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("hbg load: %v %v", g, err)
	}
	// The -cache path creates and then reuses a sidecar snapshot.
	if _, err := load(el, "auto", true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(el + ".hbg"); err != nil {
		t.Fatalf("-cache did not write a sidecar: %v", err)
	}
	g, err = load(el, "auto", true)
	if err != nil || g.NumEdges() != 2 {
		t.Fatalf("cached load: %v %v", g, err)
	}
	if _, err := load(el, "nope", false); err == nil {
		t.Error("unknown format should fail")
	}
	if _, err := load(filepath.Join(dir, "missing"), "edgelist", false); err == nil {
		t.Error("missing file should fail")
	}
}

func TestAlgorithmChoicesSorted(t *testing.T) {
	got := hbbmc.AlgorithmChoices()
	if !strings.HasPrefix(got, "bk|") || !strings.Contains(got, "hbbmc") {
		t.Fatalf("AlgorithmChoices = %q", got)
	}
	parts := strings.Split(got, "|")
	for i := 1; i < len(parts); i++ {
		if parts[i-1] >= parts[i] {
			t.Fatalf("choices not sorted: %q", got)
		}
	}
}
