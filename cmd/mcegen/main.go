// Command mcegen generates synthetic benchmark graphs as edge-list files.
//
// Usage:
//
//	mcegen -model er -n 100000 -m 2000000 -seed 1 -out er.txt
//	mcegen -model ba -n 100000 -k 20 -seed 1 -out ba.txt
//	mcegen -model sbm -communities 50 -size 100 -pin 0.5 -pout 0.01 -out sbm.txt
//	mcegen -model moonmoser -s 10 -out mm.txt
//	mcegen -dataset OR -out orkut-standin.txt
//	mcegen -model er -n 100000 -m 2000000 -out er.hbg
//
// The -dataset flag materialises one of the paper's Table I stand-ins (see
// internal/dataset). An -out path ending in .hbg writes the binary CSR
// snapshot instead of text, which the other commands load directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/dataset"
)

func main() {
	var (
		model       = flag.String("model", "er", "generator: er|ba|sbm|moonmoser")
		n           = flag.Int("n", 1000, "vertices (er, ba)")
		m           = flag.Int("m", 10000, "edges (er)")
		k           = flag.Int("k", 5, "edges per arrival (ba)")
		s           = flag.Int("s", 5, "parts (moonmoser)")
		communities = flag.Int("communities", 10, "blocks (sbm)")
		size        = flag.Int("size", 50, "vertices per block (sbm)")
		pin         = flag.Float64("pin", 0.3, "intra-block probability (sbm)")
		pout        = flag.Float64("pout", 0.01, "inter-block probability (sbm)")
		seed        = flag.Int64("seed", 1, "random seed")
		ds          = flag.String("dataset", "", "Table I stand-in code (NA, FB, ... overrides -model)")
		out         = flag.String("out", "", "output file (default stdout)")
	)
	flag.Parse()

	var g *hbbmc.Graph
	switch {
	case *ds != "":
		spec, ok := dataset.ByName(*ds)
		if !ok {
			fatal(fmt.Errorf("unknown dataset %q (known: %v)", *ds, dataset.Names()))
		}
		g = spec.Build()
	default:
		switch *model {
		case "er":
			g = hbbmc.GenerateER(*n, *m, *seed)
		case "ba":
			g = hbbmc.GenerateBA(*n, *k, *seed)
		case "sbm":
			g = hbbmc.GenerateSBM(*communities, *size, *pin, *pout, *seed)
		case "moonmoser":
			g = hbbmc.GenerateMoonMoser(*s)
		default:
			fatal(fmt.Errorf("unknown model %q", *model))
		}
	}

	if strings.HasSuffix(strings.ToLower(*out), ".hbg") {
		if err := g.SaveBinaryFile(*out); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mcegen: wrote %d vertices, %d edges (binary snapshot)\n", g.NumVertices(), g.NumEdges())
		return
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		dst = f
	}
	if err := g.WriteEdgeList(dst); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mcegen: wrote %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcegen:", err)
	os.Exit(1)
}
