package hbbmc_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	hbbmc "github.com/graphmining/hbbmc"
)

func TestFromEdgesAPI(t *testing.T) {
	g, err := hbbmc.FromEdges(3, []hbbmc.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if _, err := hbbmc.FromEdges(1, []hbbmc.Edge{{U: 0, V: 5}}); err == nil {
		t.Error("out-of-range edge must fail")
	}
}

func TestLoadEdgeListFileAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := hbbmc.LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	if _, err := hbbmc.LoadEdgeListFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestLoadDIMACSAPI(t *testing.T) {
	g, err := hbbmc.LoadDIMACS(strings.NewReader("p edge 3 3\ne 1 2\ne 2 3\ne 1 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := hbbmc.Count(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("triangle: %d cliques", n)
	}
}

func TestCollectAPI(t *testing.T) {
	g := hbbmc.GenerateMoonMoser(2)
	cliques, stats, err := hbbmc.Collect(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != 9 || stats.Cliques != 9 {
		t.Fatalf("MoonMoser(2): %d cliques collected, stats %d", len(cliques), stats.Cliques)
	}
	for _, c := range cliques {
		if len(c) != 2 {
			t.Fatalf("clique %v should have 2 vertices", c)
		}
	}
}

func TestEnumerateParallelAPI(t *testing.T) {
	g := hbbmc.GenerateSBM(5, 15, 0.5, 0.03, 21)
	seq, _, err := hbbmc.Count(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var par int64
	stats, err := hbbmc.EnumerateParallel(g, hbbmc.DefaultOptions(), 4, func(c []int32) { par++ })
	if err != nil {
		t.Fatal(err)
	}
	if par != seq || stats.Cliques != seq {
		t.Fatalf("parallel %d (stats %d) != sequential %d", par, stats.Cliques, seq)
	}
}

func TestListKCliquesAPI(t *testing.T) {
	g := hbbmc.GenerateMoonMoser(3)
	var seen int64
	n, err := hbbmc.ListKCliques(g, 2, func(c []int32) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if n != 27 || seen != 27 {
		t.Fatalf("2-cliques of MoonMoser(3): n=%d seen=%d, want 27", n, seen)
	}
	if _, err := hbbmc.ListKCliques(g, 0, nil); err == nil {
		t.Error("k=0 must fail")
	}
}

func TestHybridConditionEdgeCases(t *testing.T) {
	// Empty graph: ρ=0 branch.
	p := hbbmc.Profile{Delta: 5, Tau: 0, Rho: 0}
	if !p.HybridConditionHolds() {
		t.Error("δ=5 with ρ=0 should satisfy the δ≥3 floor")
	}
	p = hbbmc.Profile{Delta: 2, Tau: 0, Rho: 0}
	if p.HybridConditionHolds() {
		t.Error("δ=2 fails the δ≥3 floor")
	}
	// Low density: the floor of 3 dominates τ + 3lnρ/ln3.
	p = hbbmc.Profile{Delta: 3, Tau: 1, Rho: 1.0}
	if !p.HybridConditionHolds() {
		t.Error("δ=3, τ=1, ρ=1 should hold (threshold floored at 3)")
	}
}
