package hbbmc

import (
	"github.com/graphmining/hbbmc/internal/core"
)

// Session caches the preprocessing of one (graph, options) pair — graph
// reduction, the truss/degeneracy/degree ordering and the triangle
// incidence — and serves any number of enumeration queries against it
// without repeating that O(δm) work. This is the hot path for a service
// answering many queries over the same graph: build one Session, then call
// Count, Enumerate, Collect or range over Cliques as often as needed.
//
// A Session is immutable after NewSession and safe for concurrent queries.
// Every query takes a context.Context, honoured cooperatively at top-branch
// granularity; a cancelled or deadline-exceeded query returns the partial
// Stats with an error wrapping ctx.Err(). Queries report zero
// Stats.OrderingTime — the preprocessing was paid once in NewSession and is
// available as Session.PrepTime.
//
//	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
//	if err != nil { ... }
//	for c := range sess.Cliques(ctx) {
//		... // one maximal clique; copy the slice to retain it
//	}
//	n, stats, err := sess.Count(ctx) // reuses the cached preprocessing
type Session = core.Session

// Visitor receives one maximal clique per call. The slice is reused between
// calls — copy it to retain it. Returning false stops the enumeration; the
// run then finishes with ErrStopped and makes no further Visitor calls.
type Visitor = core.Visitor

// ErrStopped is returned (use errors.Is) when an enumeration ended early
// because a Visitor returned false or Options.MaxCliques was reached. The
// accompanying Stats cover the work done up to the stop. Context
// cancellations and deadlines are reported as errors wrapping ctx.Err()
// instead.
var ErrStopped = core.ErrStopped

// UseAllCores is the Options.Workers value that selects one worker per
// available core (GOMAXPROCS).
const UseAllCores = core.UseAllCores

// QueryOptions override, for a single Session query, the per-run knobs of
// the session's Options (worker count, clique budget, emit batching, phase
// timers) without rebuilding the cached preprocessing. The zero value
// inherits every session setting; see Session.EnumerateWith and
// Session.CountWith. This is the mechanism a service uses to serve
// per-request limits from one shared Session.
type QueryOptions = core.QueryOptions

// NoCliqueLimit is the QueryOptions.MaxCliques value that removes a
// session-level clique budget for one query.
const NoCliqueLimit = core.NoCliqueLimit

// NewSession validates opts and computes the preprocessing for g once:
// graph reduction (when Options.GR is set), the top-level vertex or edge
// ordering, and the triangle incidence of the edge-oriented frameworks.
// See Session for the query methods; Session.MemoryEstimate reports the
// bytes the cached artifacts retain (cache budgets evict on it).
func NewSession(g *Graph, opts Options) (*Session, error) {
	return core.NewSession(g, opts)
}
