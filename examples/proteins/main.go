// Proteins: protein-complex prediction in a synthetic protein-protein
// interaction (PPI) network — the biological application motivating the
// paper ([3],[4]).
//
// Protein complexes appear as dense, nearly complete subgraphs of the PPI
// network, but experimental interaction data is noisy: some interactions
// are missed. Maximal cliques are therefore merged when they overlap
// heavily, producing complex predictions that tolerate missing edges. The
// example compares the HBBMC++ and BK_Degen engines on the same network and
// reports the predicted complexes.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	hbbmc "github.com/graphmining/hbbmc"
)

const (
	numProteins   = 3000
	numComplexes  = 20
	complexSize   = 12
	detectionRate = 0.8 // fraction of true interactions observed
	noisyPairs    = 6000
)

func main() {
	g, truth := syntheticPPI()
	fmt.Printf("PPI network: %d proteins, %d interactions, %d planted complexes\n",
		g.NumVertices(), g.NumEdges(), len(truth))

	// Enumerate maximal cliques with two engines and check agreement — the
	// kind of cross-validation a production pipeline would run. Each engine
	// gets its own session (the orderings they cache differ).
	ctx := context.Background()
	hybrid, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var cliques [][]int32
	statsH, err := hybrid.Enumerate(ctx, func(c []int32) bool {
		if len(c) >= 4 {
			cliques = append(cliques, append([]int32(nil), c...))
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	degen, err := hbbmc.NewSession(g, hbbmc.Options{Algorithm: hbbmc.BKDegen, GR: true})
	if err != nil {
		log.Fatal(err)
	}
	countD, _, err := degen.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if countD != statsH.Cliques {
		log.Fatalf("engines disagree: HBBMC++ %d vs BK_Degen %d", statsH.Cliques, countD)
	}
	fmt.Printf("HBBMC++ and BK_Degen agree: %d maximal cliques (%d candidate cores of size ≥ 4)\n",
		statsH.Cliques, len(cliques))

	// Merge cliques with ≥ 2/3 overlap into complex predictions (greedy,
	// largest first) — the standard defective-clique heuristic.
	sort.Slice(cliques, func(i, j int) bool { return len(cliques[i]) > len(cliques[j]) })
	var complexes [][]int32
	used := make([]bool, len(cliques))
	for i := range cliques {
		if used[i] {
			continue
		}
		merged := append([]int32(nil), cliques[i]...)
		for j := i + 1; j < len(cliques); j++ {
			if used[j] {
				continue
			}
			if overlapRatio(merged, cliques[j]) >= 2.0/3.0 {
				merged = unite(merged, cliques[j])
				used[j] = true
			}
		}
		used[i] = true
		if len(merged) >= 6 {
			complexes = append(complexes, merged)
		}
	}
	fmt.Printf("predicted %d protein complexes (size ≥ 6)\n\n", len(complexes))

	matched := 0
	for t, planted := range truth {
		best := 0.0
		for _, com := range complexes {
			if j := jaccard(planted, com); j > best {
				best = j
			}
		}
		status := "missed"
		if best >= 0.5 {
			matched++
			status = fmt.Sprintf("recovered (Jaccard %.2f)", best)
		}
		fmt.Printf("complex %2d: %s\n", t, status)
	}
	fmt.Printf("\nrecovered %d/%d planted complexes\n", matched, len(truth))
}

func syntheticPPI() (*hbbmc.Graph, [][]int32) {
	rng := rand.New(rand.NewSource(7))
	b := hbbmc.NewBuilder(numProteins)
	// Sparse background interactome.
	for i := 0; i < noisyPairs; i++ {
		b.AddEdge(int32(rng.Intn(numProteins)), int32(rng.Intn(numProteins)))
	}
	truth := make([][]int32, numComplexes)
	for c := range truth {
		seen := map[int32]bool{}
		var members []int32
		for len(members) < complexSize {
			p := int32(rng.Intn(numProteins))
			if !seen[p] {
				seen[p] = true
				members = append(members, p)
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		truth[c] = members
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if rng.Float64() < detectionRate {
					b.AddEdge(members[i], members[j])
				}
			}
		}
	}
	return b.MustBuild(), truth
}

func overlapRatio(a, b []int32) float64 {
	set := map[int32]bool{}
	for _, v := range a {
		set[v] = true
	}
	inter := 0
	for _, v := range b {
		if set[v] {
			inter++
		}
	}
	small := len(a)
	if len(b) < small {
		small = len(b)
	}
	if small == 0 {
		return 0
	}
	return float64(inter) / float64(small)
}

func unite(a, b []int32) []int32 {
	set := map[int32]bool{}
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func jaccard(a, b []int32) float64 {
	set := map[int32]bool{}
	for _, v := range a {
		set[v] = true
	}
	inter := 0
	for _, v := range b {
		if set[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
