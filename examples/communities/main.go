// Communities: overlapping community detection in a social network via
// clique percolation — one of the motivating applications in the paper's
// introduction ([1],[2]).
//
// The example plants ground-truth communities in a noisy social graph,
// enumerates maximal cliques with HBBMC++, and then merges cliques that
// share at least k-1 vertices (the k-clique percolation rule) into
// overlapping communities. It reports how well the recovered communities
// match the planted ones.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
)

const (
	numCommunities = 8
	communitySize  = 24
	n              = 2000
	k              = 5 // percolation clique size
)

func main() {
	g, truth := plantedSocialGraph()
	fmt.Printf("social graph: %d vertices, %d edges, %d planted communities\n",
		g.NumVertices(), g.NumEdges(), numCommunities)

	// Step 1: all maximal cliques of size ≥ k, streamed from a session with
	// a deadline — a production service would bound every query like this.
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var cliques [][]int32
	stats, err := sess.Enumerate(ctx, func(c []int32) bool {
		if len(c) >= k {
			cliques = append(cliques, append([]int32(nil), c...))
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enumerated %d maximal cliques in %v; %d have ≥ %d vertices\n",
		stats.Cliques, (sess.PrepTime() + stats.EnumTime).Round(1000000), len(cliques), k)

	// Step 2: union-find over cliques; two cliques join when they share
	// ≥ k-1 vertices (clique percolation).
	parent := make([]int, len(cliques))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	byVertex := map[int32][]int{}
	for i, c := range cliques {
		for _, v := range c {
			byVertex[v] = append(byVertex[v], i)
		}
	}
	for i, c := range cliques {
		counts := map[int]int{}
		for _, v := range c {
			for _, j := range byVertex[v] {
				if j != i {
					counts[j]++
				}
			}
		}
		for j, shared := range counts {
			if shared >= k-1 {
				parent[find(i)] = find(j)
			}
		}
	}

	// Step 3: collect communities (vertex sets of each percolation class).
	members := map[int]map[int32]bool{}
	for i, c := range cliques {
		root := find(i)
		if members[root] == nil {
			members[root] = map[int32]bool{}
		}
		for _, v := range c {
			members[root][v] = true
		}
	}
	var communities [][]int32
	for _, set := range members {
		var com []int32
		for v := range set {
			com = append(com, v)
		}
		sort.Slice(com, func(a, b int) bool { return com[a] < com[b] })
		if len(com) >= k {
			communities = append(communities, com)
		}
	}
	sort.Slice(communities, func(a, b int) bool { return len(communities[a]) > len(communities[b]) })
	fmt.Printf("recovered %d overlapping communities\n\n", len(communities))

	// Step 4: score against the planted ground truth (best Jaccard match).
	for t, planted := range truth {
		best, bestJ := -1, 0.0
		for ci, com := range communities {
			j := jaccard(planted, com)
			if j > bestJ {
				best, bestJ = ci, j
			}
		}
		fmt.Printf("planted community %d (%d vertices): best match community %d, Jaccard %.2f\n",
			t, len(planted), best, bestJ)
	}
}

// plantedSocialGraph builds a BA-style background with dense planted
// communities, returning the graph and the planted vertex sets.
func plantedSocialGraph() (*hbbmc.Graph, [][]int32) {
	base := hbbmc.GenerateBA(n, 3, 42)
	b := hbbmc.NewBuilder(n)
	for v := int32(0); v < int32(n); v++ {
		for _, w := range base.Neighbors(v) {
			if v < w {
				b.AddEdge(v, w)
			}
		}
	}
	truth := make([][]int32, numCommunities)
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < numCommunities; c++ {
		seen := map[int32]bool{}
		var com []int32
		for len(com) < communitySize {
			v := int32(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				com = append(com, v)
			}
		}
		sort.Slice(com, func(i, j int) bool { return com[i] < com[j] })
		truth[c] = com
		// Dense but imperfect: ~85% of intra-community edges exist.
		drop := 0
		for i := 0; i < len(com); i++ {
			for j := i + 1; j < len(com); j++ {
				drop++
				if drop%7 == 0 {
					continue
				}
				b.AddEdge(com[i], com[j])
			}
		}
	}
	return b.MustBuild(), truth
}

func jaccard(a, b []int32) float64 {
	set := map[int32]bool{}
	for _, v := range a {
		set[v] = true
	}
	inter := 0
	for _, v := range b {
		if set[v] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
