// Quickstart: enumerate the maximal cliques of a small hard-coded graph
// with the paper's HBBMC++ configuration and print them, using the
// session API — preprocessing is computed once and every query (the
// iterator, then Count) reuses it.
package main

import (
	"context"
	"fmt"
	"log"

	hbbmc "github.com/graphmining/hbbmc"
)

func main() {
	// A graph with overlapping dense regions:
	//
	//	{0,1,2,3} form a K4;
	//	{3,4,5} and {4,5,6} are triangles sharing the edge 4-5;
	//	7 hangs off 6; 8 is isolated.
	b := hbbmc.NewBuilder(9)
	for _, e := range [][2]int32{
		{0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 3},
		{3, 4}, {3, 5}, {4, 5}, {5, 6}, {4, 6},
		{6, 7},
	} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()

	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	profile := hbbmc.ProfileGraph(g)
	fmt.Printf("profile: δ=%d τ=%d ρ=%.2f — hybrid condition holds: %v\n\n",
		profile.Delta, profile.Tau, profile.Rho, profile.HybridConditionHolds())

	// One session pays the reduction/ordering preprocessing once; every
	// query against it (iterators, counts, parallel runs) reuses it.
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	for c := range sess.Cliques(ctx) {
		fmt.Println("maximal clique:", c)
	}

	// A second query on the same session skips preprocessing entirely.
	_, stats, err := sess.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d maximal cliques, largest has %d vertices\n", stats.Cliques, stats.MaxCliqueSize)
	fmt.Printf("branch-and-bound calls: %d (early-terminated branches: %d); preprocessing paid once: %v\n",
		stats.Calls, stats.EarlyTerminations, sess.PrepTime().Round(1000))
}
