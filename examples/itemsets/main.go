// Itemsets: frequent co-purchase pattern mining in e-commerce transactions
// — the association-rule application referenced in the paper ([7]).
//
// Transactions are converted into a co-purchase graph (items are vertices,
// an edge links two items bought together in at least minSupport baskets).
// Maximal cliques of this graph are the maximal sets of items that are all
// pairwise frequently co-purchased — high-quality candidates for bundle
// recommendations, computed without the exponential blow-up of classic
// itemset lattices.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"

	hbbmc "github.com/graphmining/hbbmc"
)

const (
	numItems        = 1200
	numTransactions = 30000
	numBundles      = 15 // hidden purchase patterns
	bundleSize      = 8
	minSupport      = 25
)

func main() {
	transactions, bundles := simulateTransactions()
	fmt.Printf("simulated %d transactions over %d items (%d hidden bundles)\n",
		len(transactions), numItems, numBundles)

	// Count pairwise co-occurrence.
	pairCount := map[[2]int32]int{}
	for _, basket := range transactions {
		for i := 0; i < len(basket); i++ {
			for j := i + 1; j < len(basket); j++ {
				a, b := basket[i], basket[j]
				if a > b {
					a, b = b, a
				}
				pairCount[[2]int32{a, b}]++
			}
		}
	}

	// Build the co-purchase graph at the support threshold.
	builder := hbbmc.NewBuilder(numItems)
	edges := 0
	for pair, cnt := range pairCount {
		if cnt >= minSupport {
			builder.AddEdge(pair[0], pair[1])
			edges++
		}
	}
	g := builder.MustBuild()
	fmt.Printf("co-purchase graph: %d frequent pairs (support ≥ %d)\n", edges, minSupport)

	// Maximal cliques = maximal pairwise-frequent itemsets, streamed from a
	// session (the co-purchase graph would be queried repeatedly as
	// recommendation thresholds change — the preprocessing is paid once).
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	var patterns [][]int32
	stats, err := sess.Enumerate(context.Background(), func(c []int32) bool {
		if len(c) >= 3 {
			patterns = append(patterns, append([]int32(nil), c...))
		}
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(patterns, func(i, j int) bool { return len(patterns[i]) > len(patterns[j]) })
	fmt.Printf("found %d maximal cliques (%d patterns with ≥ 3 items) in %v\n\n",
		stats.Cliques, len(patterns), (sess.PrepTime() + stats.EnumTime).Round(1000000))

	show := len(patterns)
	if show > 10 {
		show = 10
	}
	fmt.Println("top patterns:")
	for _, p := range patterns[:show] {
		fmt.Printf("  items %v\n", p)
	}

	recovered := 0
	for _, bundle := range bundles {
		for _, p := range patterns {
			if contains(p, bundle) {
				recovered++
				break
			}
		}
	}
	fmt.Printf("\n%d/%d hidden bundles appear inside a mined pattern\n", recovered, len(bundles))
}

// simulateTransactions draws baskets that mix random browsing with hidden
// bundle purchases.
func simulateTransactions() ([][]int32, [][]int32) {
	rng := rand.New(rand.NewSource(99))
	bundles := make([][]int32, numBundles)
	for i := range bundles {
		seen := map[int32]bool{}
		var items []int32
		for len(items) < bundleSize {
			it := int32(rng.Intn(numItems))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		bundles[i] = items
	}
	transactions := make([][]int32, numTransactions)
	for t := range transactions {
		var basket []int32
		if rng.Float64() < 0.25 {
			// A bundle purchase: most of one bundle plus a few extras.
			bundle := bundles[rng.Intn(numBundles)]
			for _, it := range bundle {
				if rng.Float64() < 0.9 {
					basket = append(basket, it)
				}
			}
		}
		for extra := rng.Intn(4); extra > 0; extra-- {
			basket = append(basket, int32(rng.Intn(numItems)))
		}
		transactions[t] = basket
	}
	return transactions, bundles
}

// contains reports whether most (≥75%) of the bundle is inside the pattern.
func contains(pattern, bundle []int32) bool {
	set := map[int32]bool{}
	for _, v := range pattern {
		set[v] = true
	}
	hit := 0
	for _, v := range bundle {
		if set[v] {
			hit++
		}
	}
	return float64(hit) >= 0.75*float64(len(bundle))
}
