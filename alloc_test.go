package hbbmc_test

import (
	"context"
	"testing"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/dataset"
)

// TestWarmSessionCountAllocConstant gates the allocation-free-recursion
// claim at the public surface: a warm Session.Count pays a small constant
// number of allocations for per-query setup (engine, arenas, Stats) and
// nothing per branch or per clique. The test measures warm queries on two
// stand-in datasets whose enumerated work differs by an order of magnitude
// and requires the per-query allocation count to be (a) under an absolute
// ceiling and (b) essentially identical across the two — if allocations
// scaled with branches or cliques, the larger dataset would blow both.
func TestWarmSessionCountAllocConstant(t *testing.T) {
	// Per-query setup in the sequential driver: runControl, baseStats, the
	// engine with its arenas and universe rows, plus lazy scratch growth up
	// to the largest universe the run sees (the growth-step count varies a
	// little with the graph's universe-size profile). 111–152 observed; the
	// ceiling has headroom for toolchain drift but fails loudly on per-clique
	// costs — both graphs enumerate thousands of cliques per query.
	const allocCeiling = 256
	const skew = 64 // allowed cross-dataset difference in setup allocs

	measure := func(name string) float64 {
		spec, ok := dataset.ByName(name)
		if !ok {
			t.Fatalf("unknown dataset %s", name)
		}
		g := spec.Build()
		sess, err := hbbmc.NewSession(g, hbbmc.Options{Algorithm: hbbmc.HBBMC, ET: 3, GR: true})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if _, _, err := sess.Count(ctx); err != nil { // warm the session caches
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if _, _, err := sess.Count(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}

	small := measure("NA")
	large := measure("YO")
	t.Logf("warm Session.Count allocations: NA=%.0f YO=%.0f", small, large)
	if small > allocCeiling || large > allocCeiling {
		t.Errorf("warm Session.Count allocates NA=%.0f YO=%.0f, ceiling %d", small, large, allocCeiling)
	}
	if diff := large - small; diff > skew || diff < -skew {
		t.Errorf("per-query allocations scale with enumerated work: NA=%.0f YO=%.0f", small, large)
	}
}
