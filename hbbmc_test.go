package hbbmc_test

import (
	"strings"
	"testing"

	hbbmc "github.com/graphmining/hbbmc"
)

func TestQuickstartFlow(t *testing.T) {
	b := hbbmc.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.MustBuild()

	var cliques [][]int32
	stats, err := hbbmc.Enumerate(g, hbbmc.DefaultOptions(), func(c []int32) {
		cliques = append(cliques, append([]int32(nil), c...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cliques) != 3 {
		t.Fatalf("found %d maximal cliques, want 3 ({0,1,2},{2,3},{3,4})", len(cliques))
	}
	if stats.Cliques != 3 || stats.MaxCliqueSize != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestAllPublicAlgorithmsAgree(t *testing.T) {
	g := hbbmc.GenerateSBM(4, 12, 0.6, 0.05, 17)
	want, _, err := hbbmc.Count(g, hbbmc.Options{Algorithm: hbbmc.BKDegen})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []hbbmc.Algorithm{
		hbbmc.BK, hbbmc.BKPivot, hbbmc.BKRef, hbbmc.BKDegree,
		hbbmc.BKRcd, hbbmc.BKFac, hbbmc.EBBMC, hbbmc.HBBMC,
	} {
		got, _, err := hbbmc.Count(g, hbbmc.Options{Algorithm: algo, ET: 3, GR: true})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got != want {
			t.Errorf("%v: count %d, want %d", algo, got, want)
		}
	}
}

func TestLoadEdgeListAndCount(t *testing.T) {
	in := "0 1\n1 2\n2 0\n"
	g, err := hbbmc.LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := hbbmc.Count(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("triangle should have 1 maximal clique, got %d", n)
	}
}

func TestProfileAndCondition(t *testing.T) {
	// A planted large clique in sparse noise: τ = δ-1, dense enough that
	// the hybrid condition fails — the WE/DB shape from Table I.
	b := hbbmc.NewBuilder(200)
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	for i := 30; i < 199; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	g := b.MustBuild()
	p := hbbmc.ProfileGraph(g)
	if p.Delta != 29 || p.Tau != 28 {
		t.Fatalf("planted K30: δ=%d τ=%d, want 29/28", p.Delta, p.Tau)
	}
	if p.HybridConditionHolds() {
		t.Error("τ=δ-1 with ρ>1.44 must fail the hybrid condition")
	}

	// A BA graph with moderate clustering: τ well below δ, condition holds.
	ba := hbbmc.GenerateBA(2000, 10, 3)
	pb := hbbmc.ProfileGraph(ba)
	if pb.Tau >= pb.Delta {
		t.Fatalf("BA graph: τ=%d should be below δ=%d", pb.Tau, pb.Delta)
	}
}

func TestMoonMoserWorstCase(t *testing.T) {
	g := hbbmc.GenerateMoonMoser(5)
	n, _, err := hbbmc.Count(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n != 243 {
		t.Fatalf("MoonMoser(5) must have 3^5=243 maximal cliques, got %d", n)
	}
}

func TestCountOnGeneratedModels(t *testing.T) {
	er := hbbmc.GenerateER(500, 2500, 9)
	ba := hbbmc.GenerateBA(500, 5, 9)
	for name, g := range map[string]*hbbmc.Graph{"er": er, "ba": ba} {
		a, _, err := hbbmc.Count(g, hbbmc.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, _, err := hbbmc.Count(g, hbbmc.Options{Algorithm: hbbmc.BKRcd, GR: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a != b {
			t.Errorf("%s: HBBMC++=%d BKRcd=%d", name, a, b)
		}
	}
}

func TestInvalidOptionsSurface(t *testing.T) {
	g := hbbmc.GenerateER(10, 20, 1)
	if _, err := hbbmc.Enumerate(g, hbbmc.Options{Algorithm: hbbmc.HBBMC, ET: 7}, nil); err == nil {
		t.Error("invalid ET must be rejected")
	}
}
