// Package plex implements the paper's early-termination construction
// (Section IV): when a branch's candidate graph is a t-plex with t ≤ 3 and
// the exclusion graph is empty, all maximal cliques can be built directly
// from the topology of the complement graph instead of branching.
//
// The complement of a t-plex with t ≤ 3 has maximum degree ≤ 2, so its
// connected components are isolated vertices, simple paths or simple cycles.
// Maximal cliques of the plex are exactly F ∪ (one maximal independent set
// per complement path/cycle), where F is the set of complement-isolated
// vertices (Algorithms 5–8 of the paper).
//
// The production entry point is Scratch, the reusable allocation-free
// emitter internal/core drives from its bitset complement decomposition.
// The readable reference implementations of Algorithms 5–8 live in
// reference_test.go as the differential oracle for Scratch.
package plex

// Scratch is a reusable, allocation-free emitter for the early-termination
// construction. The caller decomposes the candidate graph's complement
// itself (typically with bitset arithmetic — see internal/core), feeds the
// parts through Begin/AddPath/AddCycle, and Emit streams every maximal
// clique through a callback, reusing one buffer throughout.
//
// The enumeration logic is the same as EnumerateMaximal's (Algorithms 5–8):
// each emitted clique is F plus one maximal independent set per complement
// path and cycle.
type Scratch struct {
	walkBuf []int32   // concatenated component walks
	comps   []compRef // component descriptors into walkBuf
	clique  []int32   // the clique under construction
	emit    func([]int32)
}

type compRef struct {
	lo, hi int32
	cycle  bool
}

// Begin resets the scratch with the complement-isolated vertices F (the
// members of every maximal clique).
func (s *Scratch) Begin(f []int32) {
	s.walkBuf = s.walkBuf[:0]
	s.comps = s.comps[:0]
	s.clique = append(s.clique[:0], f...)
}

// AddPath registers a complement path component in walk order.
func (s *Scratch) AddPath(walk []int32) {
	lo := int32(len(s.walkBuf))
	s.walkBuf = append(s.walkBuf, walk...)
	s.comps = append(s.comps, compRef{lo, int32(len(s.walkBuf)), false})
}

// AddCycle registers a complement cycle component in walk order.
func (s *Scratch) AddCycle(walk []int32) {
	lo := int32(len(s.walkBuf))
	s.walkBuf = append(s.walkBuf, walk...)
	s.comps = append(s.comps, compRef{lo, int32(len(s.walkBuf)), true})
}

// Emit streams every maximal clique. The slice passed to the callback is
// reused; callers must copy it to retain it.
func (s *Scratch) Emit(emit func([]int32)) {
	s.emit = emit
	s.component(0)
	s.emit = nil
}

// component recurses over the registered components, extending s.clique
// with one maximal independent set choice per component.
func (s *Scratch) component(ci int) {
	if ci == len(s.comps) {
		s.emit(s.clique)
		return
	}
	c := s.comps[ci]
	walk := s.walkBuf[c.lo:c.hi]
	if c.cycle {
		s.cycleChoices(walk, ci)
	} else {
		s.pathChoices(walk, ci)
	}
}

// pathChoices enumerates the maximal independent sets of a path (Algorithm
// 6): start at position 0 or 1, then repeatedly jump +2 or +3.
func (s *Scratch) pathChoices(walk []int32, ci int) {
	if len(walk) == 0 {
		s.component(ci + 1)
		return
	}
	mark := len(s.clique)
	s.clique = append(s.clique, walk[0])
	s.pathRec(walk, 0, ci)
	s.clique = s.clique[:mark]
	if len(walk) > 1 {
		s.clique = append(s.clique, walk[1])
		s.pathRec(walk, 1, ci)
		s.clique = s.clique[:mark]
	}
}

func (s *Scratch) pathRec(walk []int32, last, ci int) {
	if last+2 >= len(walk) {
		s.component(ci + 1)
		return
	}
	mark := len(s.clique)
	s.clique = append(s.clique, walk[last+2])
	s.pathRec(walk, last+2, ci)
	s.clique = s.clique[:mark]
	if last+3 < len(walk) {
		s.clique = append(s.clique, walk[last+3])
		s.pathRec(walk, last+3, ci)
		s.clique = s.clique[:mark]
	}
}

// cycleChoices enumerates the maximal independent sets of a cycle
// (Algorithm 7).
func (s *Scratch) cycleChoices(walk []int32, ci int) {
	k := len(walk)
	mark := len(s.clique)
	emitOne := func(vs ...int32) {
		s.clique = append(s.clique, vs...)
		s.component(ci + 1)
		s.clique = s.clique[:mark]
	}
	switch k {
	case 0, 1, 2:
		// Degenerate inputs; treat as a path for robustness.
		s.pathChoices(walk, ci)
	case 3:
		emitOne(walk[0])
		emitOne(walk[1])
		emitOne(walk[2])
	case 4:
		emitOne(walk[0], walk[2])
		emitOne(walk[1], walk[3])
	case 5:
		emitOne(walk[0], walk[2])
		emitOne(walk[0], walk[3])
		emitOne(walk[1], walk[3])
		emitOne(walk[1], walk[4])
		emitOne(walk[2], walk[4])
	default:
		// Case 1: walk[0] in the set.
		s.clique = append(s.clique, walk[0])
		s.pathRec(walk[:k-1], 0, ci)
		s.clique = s.clique[:mark]
		// Case 2: walk[1] in, walk[0] out.
		s.clique = append(s.clique, walk[1])
		s.pathRec(walk[1:], 0, ci)
		s.clique = s.clique[:mark]
		// Case 3: walk[0], walk[1] out; maximality forces walk[k-1], walk[2].
		s.clique = append(s.clique, walk[k-1], walk[2])
		s.pathRec(walk[2:k-2], 0, ci)
		s.clique = s.clique[:mark]
	}
}
