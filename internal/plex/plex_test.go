package plex

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// pairGraph is a tiny adjacency backed by an edge set over 0..n-1 where the
// COMPLEMENT edges are listed; this matches how plexes are natural to state.
type pairGraph struct {
	n       int
	missing map[[2]int32]bool
}

func newPairGraph(n int, complementEdges ...[2]int32) *pairGraph {
	g := &pairGraph{n: n, missing: map[[2]int32]bool{}}
	for _, e := range complementEdges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		g.missing[[2]int32{u, v}] = true
	}
	return g
}

func (g *pairGraph) adj(u, v int32) bool {
	if u == v {
		return false
	}
	if u > v {
		u, v = v, u
	}
	return !g.missing[[2]int32{u, v}]
}

func (g *pairGraph) verts() []int32 {
	vs := make([]int32, g.n)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}

// bruteMaximalCliques enumerates maximal cliques by subset enumeration;
// usable up to ~16 vertices.
func bruteMaximalCliques(verts []int32, adj Adjacency) [][]int32 {
	k := len(verts)
	isClique := func(mask uint32) bool {
		for i := 0; i < k; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for j := i + 1; j < k; j++ {
				if mask&(1<<j) != 0 && !adj(verts[i], verts[j]) {
					return false
				}
			}
		}
		return true
	}
	var out [][]int32
	for mask := uint32(1); mask < 1<<k; mask++ {
		if !isClique(mask) {
			continue
		}
		maximal := true
		for j := 0; j < k; j++ {
			if mask&(1<<j) == 0 && isClique(mask|1<<j) {
				maximal = false
				break
			}
		}
		if maximal {
			var c []int32
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 {
					c = append(c, verts[i])
				}
			}
			out = append(out, c)
		}
	}
	return out
}

func canon(cliques [][]int32) []string {
	out := make([]string, 0, len(cliques))
	for _, c := range cliques {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		out = append(out, fmt.Sprint(cc))
	}
	sort.Strings(out)
	return out
}

func sameCliques(t *testing.T, label string, got, want [][]int32) {
	t.Helper()
	g, w := canon(got), canon(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d cliques, want %d\ngot:  %v\nwant: %v", label, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: clique mismatch\ngot:  %v\nwant: %v", label, g, w)
		}
	}
}

func collect(fn func(emit func([]int32)) bool) ([][]int32, bool) {
	var out [][]int32
	ok := fn(func(c []int32) {
		out = append(out, append([]int32(nil), c...))
	})
	return out, ok
}

func TestIsTPlex(t *testing.T) {
	clique := newPairGraph(4)
	if !IsTPlex(clique.verts(), clique.adj, 1) {
		t.Error("K4 should be a 1-plex")
	}
	// One missing edge: 2-plex but not 1-plex.
	g := newPairGraph(4, [2]int32{0, 1})
	if IsTPlex(g.verts(), g.adj, 1) {
		t.Error("K4 minus an edge is not a 1-plex")
	}
	if !IsTPlex(g.verts(), g.adj, 2) {
		t.Error("K4 minus an edge is a 2-plex")
	}
	// Complement path 0-1-2: vertex 1 has two non-neighbors -> 3-plex only.
	h := newPairGraph(4, [2]int32{0, 1}, [2]int32{1, 2})
	if IsTPlex(h.verts(), h.adj, 2) {
		t.Error("complement path of length 2 is not a 2-plex")
	}
	if !IsTPlex(h.verts(), h.adj, 3) {
		t.Error("complement path of length 2 is a 3-plex")
	}
	if !IsTPlex(nil, clique.adj, 1) {
		t.Error("empty set is trivially a plex")
	}
}

func TestMISOfPathSmall(t *testing.T) {
	p := []int32{0, 1, 2, 3, 4}
	got := MISOfPath(p)
	want := [][]int32{{0, 2, 4}, {0, 3}, {1, 3}, {1, 4}}
	sameCliques(t, "P5", got, want)

	sameCliques(t, "P1", MISOfPath([]int32{7}), [][]int32{{7}})
	sameCliques(t, "P2", MISOfPath([]int32{3, 9}), [][]int32{{3}, {9}})
	if MISOfPath(nil) != nil {
		t.Error("empty path should produce nothing")
	}
}

// bruteMISOfPath computes maximal independent sets of a path directly.
func bruteMIS(n int, edge func(i, j int) bool) [][]int32 {
	verts := make([]int32, n)
	for i := range verts {
		verts[i] = int32(i)
	}
	// MIS of graph == maximal cliques of complement.
	return bruteMaximalCliques(verts, func(u, v int32) bool { return !edge(int(u), int(v)) })
}

func TestMISOfPathMatchesBruteForce(t *testing.T) {
	for n := 1; n <= 12; n++ {
		p := make([]int32, n)
		for i := range p {
			p[i] = int32(i)
		}
		got := MISOfPath(p)
		want := bruteMIS(n, func(i, j int) bool {
			d := i - j
			return d == 1 || d == -1
		})
		sameCliques(t, fmt.Sprintf("P%d", n), got, want)
	}
}

func TestMISOfCycleMatchesBruteForce(t *testing.T) {
	for n := 3; n <= 12; n++ {
		c := make([]int32, n)
		for i := range c {
			c[i] = int32(i)
		}
		got := MISOfCycle(c)
		want := bruteMIS(n, func(i, j int) bool {
			d := i - j
			if d < 0 {
				d = -d
			}
			return d == 1 || d == n-1
		})
		sameCliques(t, fmt.Sprintf("C%d", n), got, want)
	}
}

func TestDecomposeComplementShapes(t *testing.T) {
	// Complement: path 1-2, isolated 0, cycle 3-4-5 missing edges forming
	// the triangle complement... use explicit structure: complement edges
	// {1,2} (path) and {3,4},{4,5},{3,5} (3-cycle).
	g := newPairGraph(6,
		[2]int32{1, 2},
		[2]int32{3, 4}, [2]int32{4, 5}, [2]int32{3, 5})
	d, ok := DecomposeComplement(g.verts(), g.adj)
	if !ok {
		t.Fatal("decomposition should succeed")
	}
	if len(d.F) != 1 || d.F[0] != 0 {
		t.Errorf("F = %v, want [0]", d.F)
	}
	if len(d.Paths) != 1 || len(d.Paths[0]) != 2 {
		t.Errorf("Paths = %v, want one path of two vertices", d.Paths)
	}
	if len(d.Cycles) != 1 || len(d.Cycles[0]) != 3 {
		t.Errorf("Cycles = %v, want one 3-cycle", d.Cycles)
	}
}

func TestDecomposeComplementRejectsDenseComplement(t *testing.T) {
	// Vertex 0 missing edges to 1,2,3: complement degree 3.
	g := newPairGraph(5, [2]int32{0, 1}, [2]int32{0, 2}, [2]int32{0, 3})
	if _, ok := DecomposeComplement(g.verts(), g.adj); ok {
		t.Error("complement degree 3 must be rejected")
	}
	if ok := EnumerateMaximal(g.verts(), g.adj, func([]int32) {}); ok {
		t.Error("EnumerateMaximal must reject non-3-plex input")
	}
}

func TestEnumerateMaximalPaperExamples(t *testing.T) {
	// Figure 3: 2-plex on 6 vertices, complement edges (v3,v5) and (v4,v6)
	// (0-based: (2,4),(3,5)). Expected 4 maximal cliques.
	g2 := newPairGraph(6, [2]int32{2, 4}, [2]int32{3, 5})
	got, ok := collect(func(emit func([]int32)) bool {
		return EnumerateMaximal(g2.verts(), g2.adj, emit)
	})
	if !ok {
		t.Fatal("2-plex should enumerate")
	}
	want := [][]int32{{0, 1, 2, 3}, {0, 1, 2, 5}, {0, 1, 3, 4}, {0, 1, 4, 5}}
	sameCliques(t, "figure3", got, want)

	// Figure 4: 3-plex, complement = path v1-v2-v3 and triangle v4-v5-v6
	// (0-based: path 0-1-2, cycle 3-4-5). Expected 6 maximal cliques.
	g3 := newPairGraph(6,
		[2]int32{0, 1}, [2]int32{1, 2},
		[2]int32{3, 4}, [2]int32{4, 5}, [2]int32{3, 5})
	got3, ok := collect(func(emit func([]int32)) bool {
		return EnumerateMaximal(g3.verts(), g3.adj, emit)
	})
	if !ok {
		t.Fatal("3-plex should enumerate")
	}
	want3 := [][]int32{
		{0, 2, 3}, {0, 2, 4}, {0, 2, 5},
		{1, 3}, {1, 4}, {1, 5},
	}
	sameCliques(t, "figure4", got3, want3)
}

func TestEnumerateMaximalCliqueAndEmpty(t *testing.T) {
	g := newPairGraph(5)
	got, ok := collect(func(emit func([]int32)) bool {
		return EnumerateMaximal(g.verts(), g.adj, emit)
	})
	if !ok || len(got) != 1 || len(got[0]) != 5 {
		t.Errorf("clique should yield itself, got %v", got)
	}
	gotEmpty, ok := collect(func(emit func([]int32)) bool {
		return EnumerateMaximal(nil, g.adj, emit)
	})
	if !ok || len(gotEmpty) != 1 || len(gotEmpty[0]) != 0 {
		t.Errorf("empty vertex set should yield one empty clique, got %v", gotEmpty)
	}
}

// randomPlex removes a random complement structure with max degree ≤ t-1
// from a complete graph on n vertices.
func randomPlex(rng *rand.Rand, n, t int) *pairGraph {
	g := newPairGraph(n)
	compDeg := make([]int, n)
	tries := rng.Intn(2 * n)
	for i := 0; i < tries; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || compDeg[u] >= t-1 || compDeg[v] >= t-1 {
			continue
		}
		a, b := int32(u), int32(v)
		if a > b {
			a, b = b, a
		}
		if g.missing[[2]int32{a, b}] {
			continue
		}
		g.missing[[2]int32{a, b}] = true
		compDeg[u]++
		compDeg[v]++
	}
	return g
}

func TestEnumerateMaximalMatchesBruteForceOnRandomPlexes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(13)
		tt := 2 + rng.Intn(2) // 2- or 3-plex
		g := randomPlex(rng, n, tt)
		got, ok := collect(func(emit func([]int32)) bool {
			return EnumerateMaximal(g.verts(), g.adj, emit)
		})
		if !ok {
			t.Fatalf("iter %d: enumeration rejected a valid %d-plex", iter, tt)
		}
		want := bruteMaximalCliques(g.verts(), g.adj)
		sameCliques(t, fmt.Sprintf("iter %d", iter), got, want)
	}
}

func TestEnumerate2PlexMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(14)
		g := randomPlex(rng, n, 2)
		got2, ok2 := collect(func(emit func([]int32)) bool {
			return Enumerate2Plex(g.verts(), g.adj, emit)
		})
		if !ok2 {
			t.Fatalf("iter %d: Enumerate2Plex rejected a 2-plex", iter)
		}
		gotG, okG := collect(func(emit func([]int32)) bool {
			return EnumerateMaximal(g.verts(), g.adj, emit)
		})
		if !okG {
			t.Fatalf("iter %d: general routine rejected a 2-plex", iter)
		}
		sameCliques(t, fmt.Sprintf("iter %d", iter), got2, gotG)
	}
}

func TestEnumerate2PlexRejects3Plex(t *testing.T) {
	g := newPairGraph(4, [2]int32{0, 1}, [2]int32{1, 2})
	if ok := Enumerate2Plex(g.verts(), g.adj, func([]int32) {}); ok {
		t.Error("Enumerate2Plex must reject a strict 3-plex")
	}
}

func TestCountMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(12)
		g := randomPlex(rng, n, 3)
		count, ok := CountMaximal(g.verts(), g.adj)
		if !ok {
			t.Fatalf("iter %d: count rejected valid plex", iter)
		}
		got, _ := collect(func(emit func([]int32)) bool {
			return EnumerateMaximal(g.verts(), g.adj, emit)
		})
		if count != int64(len(got)) {
			t.Fatalf("iter %d: CountMaximal=%d but enumerated %d", iter, count, len(got))
		}
	}
	if _, ok := CountMaximal([]int32{0, 1, 2, 3},
		newPairGraph(4, [2]int32{0, 1}, [2]int32{0, 2}, [2]int32{0, 3}).adj); ok {
		t.Error("CountMaximal must reject non-plex input")
	}
}
