package plex

import (
	"fmt"
	"math/rand"
	"testing"
)

// scratchEnumerate drives a Scratch through the same decomposition the
// allocation-free engine path uses, for comparison with EnumerateMaximal.
func scratchEnumerate(verts []int32, adj Adjacency) ([][]int32, bool) {
	d, ok := DecomposeComplement(verts, adj)
	if !ok {
		return nil, false
	}
	var s Scratch
	s.Begin(d.F)
	for _, p := range d.Paths {
		s.AddPath(p)
	}
	for _, c := range d.Cycles {
		s.AddCycle(c)
	}
	var out [][]int32
	s.Emit(func(cl []int32) {
		out = append(out, append([]int32(nil), cl...))
	})
	return out, true
}

func TestScratchMatchesEnumerateMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(14)
		g := randomPlex(rng, n, 2+rng.Intn(2))
		want, okW := collect(func(emit func([]int32)) bool {
			return EnumerateMaximal(g.verts(), g.adj, emit)
		})
		got, okG := scratchEnumerate(g.verts(), g.adj)
		if okW != okG {
			t.Fatalf("iter %d: acceptance mismatch", iter)
		}
		if !okW {
			continue
		}
		sameCliques(t, fmt.Sprintf("iter %d", iter), got, want)
	}
}

func TestScratchReuse(t *testing.T) {
	// The same Scratch must be reusable across unrelated inputs.
	var s Scratch
	for round := 0; round < 3; round++ {
		s.Begin([]int32{100})
		s.AddPath([]int32{1, 2, 3})
		count := 0
		s.Emit(func(cl []int32) { count++ })
		if count != 2 { // MIS of P3: {1,3}, {2}
			t.Fatalf("round %d: %d cliques, want 2", round, count)
		}
	}
}

func TestScratchEmptyComponents(t *testing.T) {
	var s Scratch
	s.Begin([]int32{5, 6})
	emitted := 0
	s.Emit(func(cl []int32) {
		emitted++
		if len(cl) != 2 {
			t.Fatalf("clique = %v, want the two F vertices", cl)
		}
	})
	if emitted != 1 {
		t.Fatalf("emitted %d cliques, want 1", emitted)
	}
}

func TestScratchCycleCases(t *testing.T) {
	for k := 3; k <= 10; k++ {
		walk := make([]int32, k)
		for i := range walk {
			walk[i] = int32(i)
		}
		var s Scratch
		s.Begin(nil)
		s.AddCycle(walk)
		var got [][]int32
		s.Emit(func(cl []int32) {
			got = append(got, append([]int32(nil), cl...))
		})
		want := MISOfCycle(walk)
		sameCliques(t, fmt.Sprintf("C%d", k), got, want)
	}
}

func TestScratchMultiComponentProduct(t *testing.T) {
	var s Scratch
	s.Begin([]int32{99})
	s.AddPath([]int32{0, 1})     // 2 choices
	s.AddCycle([]int32{2, 3, 4}) // 3 choices
	s.AddPath([]int32{5})        // 1 choice
	count := 0
	s.Emit(func(cl []int32) {
		count++
		if len(cl) != 4 { // F + one per component
			t.Fatalf("clique %v has wrong arity", cl)
		}
		if cl[0] != 99 {
			t.Fatalf("F vertex missing from %v", cl)
		}
	})
	if count != 6 {
		t.Fatalf("product size %d, want 2*3*1=6", count)
	}
}
