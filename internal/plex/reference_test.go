package plex

// This file holds the readable reference implementations of the paper's
// early-termination construction (Algorithms 5–8): complement decomposition
// and maximal-independent-set enumeration over explicit vertex slices and an
// adjacency callback. The production path is Scratch (scratch.go), driven by
// internal/core over bitset universes; these implementations survive as the
// differential oracle the Scratch tests compare against and as executable
// documentation of the construction.

// Adjacency reports whether two vertices of the candidate set are adjacent.
// The enumeration functions only probe pairs of vertices they were given.
type Adjacency func(u, v int32) bool

// IsTPlex reports whether the graph induced on verts is a t-plex: every
// vertex has at most t non-neighbors inside verts, counting itself.
func IsTPlex(verts []int32, adj Adjacency, t int) bool {
	for _, u := range verts {
		non := 1 // itself
		for _, v := range verts {
			if v != u && !adj(u, v) {
				non++
				if non > t {
					return false
				}
			}
		}
	}
	return true
}

// Decomposition is the structure of the complement of a (≤3)-plex.
type Decomposition struct {
	// F holds the vertices adjacent to every other vertex (complement-
	// isolated); they belong to every maximal clique.
	F []int32
	// Paths and Cycles are the complement components, each listed in walk
	// order (consecutive entries are complement edges).
	Paths  [][]int32
	Cycles [][]int32
}

// DecomposeComplement builds the complement structure of the graph induced
// on verts. It returns ok=false when some vertex has more than two
// complement neighbors, i.e. the graph is not a 3-plex.
func DecomposeComplement(verts []int32, adj Adjacency) (*Decomposition, bool) {
	k := len(verts)
	// Complement adjacency, capped at degree 2.
	compAdj := make([][2]int32, k)
	compDeg := make([]int, k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if adj(verts[i], verts[j]) {
				continue
			}
			if compDeg[i] == 2 || compDeg[j] == 2 {
				return nil, false
			}
			compAdj[i][compDeg[i]] = int32(j)
			compAdj[j][compDeg[j]] = int32(i)
			compDeg[i]++
			compDeg[j]++
		}
	}
	d := &Decomposition{}
	visited := make([]bool, k)
	// Isolated vertices and paths first.
	for i := 0; i < k; i++ {
		if visited[i] {
			continue
		}
		switch compDeg[i] {
		case 0:
			visited[i] = true
			d.F = append(d.F, verts[i])
		case 1:
			walk := []int32{verts[i]}
			visited[i] = true
			prev, cur := int32(i), compAdj[i][0]
			for {
				visited[cur] = true
				walk = append(walk, verts[cur])
				if compDeg[cur] == 1 {
					break
				}
				next := compAdj[cur][0]
				if next == prev {
					next = compAdj[cur][1]
				}
				prev, cur = cur, next
			}
			d.Paths = append(d.Paths, walk)
		}
	}
	// Remaining unvisited vertices all have complement degree 2: cycles.
	for i := 0; i < k; i++ {
		if visited[i] {
			continue
		}
		walk := []int32{verts[i]}
		visited[i] = true
		prev, cur := int32(i), compAdj[i][0]
		for cur != int32(i) {
			visited[cur] = true
			walk = append(walk, verts[cur])
			next := compAdj[cur][0]
			if next == prev {
				next = compAdj[cur][1]
			}
			prev, cur = cur, next
		}
		d.Cycles = append(d.Cycles, walk)
	}
	return d, true
}

// MISOfPath returns the maximal independent sets of a simple path given in
// walk order (Algorithm 6 of the paper: start from v1 or v2, then repeatedly
// jump +2 or +3 positions until within two of the end).
func MISOfPath(p []int32) [][]int32 {
	if len(p) == 0 {
		return nil
	}
	if len(p) == 1 {
		return [][]int32{{p[0]}}
	}
	var out [][]int32
	var rec func(prefix []int32, last int)
	rec = func(prefix []int32, last int) {
		if last+2 >= len(p) { // 0-based: no further vertex can be added
			out = append(out, append([]int32(nil), prefix...))
			return
		}
		rec(append(prefix, p[last+2]), last+2)
		if last+3 < len(p) {
			rec(append(prefix, p[last+3]), last+3)
		}
	}
	rec([]int32{p[0]}, 0)
	rec([]int32{p[1]}, 1)
	return out
}

// MISOfCycle returns the maximal independent sets of a simple cycle given in
// walk order (Algorithm 7 of the paper).
func MISOfCycle(c []int32) [][]int32 {
	k := len(c)
	switch {
	case k < 3:
		// A complement component that is a cycle has length ≥ 3; shorter
		// inputs are treated as paths for robustness.
		return MISOfPath(c)
	case k == 3:
		return [][]int32{{c[0]}, {c[1]}, {c[2]}}
	case k == 4:
		return [][]int32{{c[0], c[2]}, {c[1], c[3]}}
	case k == 5:
		return [][]int32{
			{c[0], c[2]}, {c[0], c[3]}, {c[1], c[3]}, {c[1], c[4]}, {c[2], c[4]},
		}
	}
	var out [][]int32
	rec := func(prefix []int32, last int, p []int32) {
		var walk func(prefix []int32, last int)
		walk = func(prefix []int32, last int) {
			if last+2 >= len(p) {
				out = append(out, append([]int32(nil), prefix...))
				return
			}
			walk(append(prefix, p[last+2]), last+2)
			if last+3 < len(p) {
				walk(append(prefix, p[last+3]), last+3)
			}
		}
		walk(prefix, last)
	}
	// Case 1: c[0] in the set; neighbors c[1] and c[k-1] excluded.
	rec([]int32{c[0]}, 0, c[:k-1])
	// Case 2: c[1] in, c[0] out.
	rec([]int32{c[1]}, 0, c[1:])
	// Case 3: c[0], c[1] out; maximality then forces c[2] and c[k-1] in.
	rec([]int32{c[k-1], c[2]}, 0, c[2:k-2])
	return out
}

// EnumerateMaximal emits every maximal clique of the graph induced on verts,
// which must be a t-plex for some t ≤ 3 with respect to adj. It returns
// false (emitting nothing) when the complement has a vertex of degree > 2,
// i.e. the precondition fails. The slice passed to emit is reused.
func EnumerateMaximal(verts []int32, adj Adjacency, emit func([]int32)) bool {
	if len(verts) == 0 {
		emit(nil)
		return true
	}
	d, ok := DecomposeComplement(verts, adj)
	if !ok {
		return false
	}
	// Choice lists per component.
	comps := make([][][]int32, 0, len(d.Paths)+len(d.Cycles))
	for _, p := range d.Paths {
		comps = append(comps, MISOfPath(p))
	}
	for _, c := range d.Cycles {
		comps = append(comps, MISOfCycle(c))
	}
	buf := append([]int32(nil), d.F...)
	if len(comps) == 0 {
		emit(buf)
		return true
	}
	idx := make([]int, len(comps))
	for {
		clique := buf
		for ci, choice := range idx {
			clique = append(clique, comps[ci][choice]...)
		}
		emit(clique)
		// Advance the mixed-radix counter.
		ci := 0
		for ; ci < len(idx); ci++ {
			idx[ci]++
			if idx[ci] < len(comps[ci]) {
				break
			}
			idx[ci] = 0
		}
		if ci == len(idx) {
			return true
		}
	}
}

// Enumerate2Plex is the specialised 2-plex routine (Algorithm 5): partition
// the vertices into F (adjacent to all others) and complement-matching pairs
// (L[i], R[i]); each of the 2^|L| pair selections yields one maximal clique.
// Returns false when the graph is not a 2-plex.
func Enumerate2Plex(verts []int32, adj Adjacency, emit func([]int32)) bool {
	k := len(verts)
	var f, l, r []int32
	paired := make([]bool, k)
	for i := 0; i < k; i++ {
		if paired[i] {
			continue
		}
		mate := -1
		for j := 0; j < k; j++ {
			if j == i || adj(verts[i], verts[j]) {
				continue
			}
			if mate >= 0 {
				return false // two non-neighbors: not a 2-plex
			}
			mate = j
		}
		if mate < 0 {
			f = append(f, verts[i])
			continue
		}
		if paired[mate] {
			return false // mate already consumed: complement not a matching
		}
		paired[i], paired[mate] = true, true
		l = append(l, verts[i])
		r = append(r, verts[mate])
	}
	if len(l) > 62 {
		return false // 2^|L| cliques would overflow the counter; unreachable
	}
	buf := make([]int32, 0, len(f)+len(l))
	for num := uint64(0); num < uint64(1)<<uint(len(l)); num++ {
		buf = append(buf[:0], f...)
		for i := range l {
			if num&(1<<uint(i)) == 0 {
				buf = append(buf, l[i])
			} else {
				buf = append(buf, r[i])
			}
		}
		emit(buf)
	}
	return true
}

// CountMaximal returns the number of maximal cliques of the (≤3)-plex
// without materialising them: the product of per-component maximal
// independent set counts. ok=false when the precondition fails.
func CountMaximal(verts []int32, adj Adjacency) (count int64, ok bool) {
	if len(verts) == 0 {
		return 1, true
	}
	d, ok := DecomposeComplement(verts, adj)
	if !ok {
		return 0, false
	}
	count = 1
	for _, p := range d.Paths {
		count *= int64(len(MISOfPath(p)))
	}
	for _, c := range d.Cycles {
		count *= int64(len(MISOfCycle(c)))
	}
	return count, true
}
