package obs

import (
	"bufio"
	"fmt"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram. Observations are raw
// nanosecond durations; the exposition renders bucket bounds, sum and
// quantile-friendly cumulative counts in seconds (the Prometheus base
// unit). The bucket array is sized at construction and never grows, so an
// observation is a bounded scan plus two atomic adds — no allocation, no
// lock (see Observe).
type Histogram struct {
	name, help string
	// label is a pre-rendered const label ("" = none), e.g.
	// `phase="universe"`; it lets several Histograms share one family.
	label string
	// bounds are the inclusive upper bucket bounds in nanoseconds,
	// ascending; secs caches them in seconds for rendering.
	bounds []int64
	secs   []float64
	// counts[i] is the non-cumulative count of bucket i; the final extra
	// element is the +Inf bucket. Rendering accumulates them.
	counts []atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Histogram registers and returns a histogram whose bucket upper bounds
// are the given durations (ascending). Histograms registered under the
// same name with different labels render as one family.
func (r *Registry) Histogram(name, help, label string, buckets []time.Duration) *Histogram {
	h := &Histogram{
		name:   name,
		help:   help,
		label:  label,
		bounds: make([]int64, len(buckets)),
		secs:   make([]float64, len(buckets)),
		counts: make([]atomic.Int64, len(buckets)+1),
	}
	for i, b := range buckets {
		h.bounds[i] = int64(b)
		h.secs[i] = b.Seconds()
		if i > 0 && h.bounds[i] <= h.bounds[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	r.mu.Lock()
	r.hists = append(r.hists, h)
	r.mu.Unlock()
	return h
}

// LatencyBuckets is the default bucket ladder for request-scale latencies
// (1ms .. 60s).
func LatencyBuckets() []time.Duration {
	return []time.Duration{
		time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
		10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2500 * time.Millisecond, 5 * time.Second,
		10 * time.Second, 30 * time.Second, time.Minute,
	}
}

// FineBuckets is the default bucket ladder for sub-request costs — fsync,
// stream stalls, per-phase times, shard round trips (10µs .. 10s).
func FineBuckets() []time.Duration {
	return []time.Duration{
		10 * time.Microsecond, 50 * time.Microsecond, 100 * time.Microsecond,
		500 * time.Microsecond, time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond,
		500 * time.Millisecond, time.Second, 5 * time.Second, 10 * time.Second,
	}
}

// Observe records one duration of v nanoseconds. Negative observations
// clamp to zero (a clock step must not corrupt the count/sum relation).
// The bucket scan is bounded by the fixed bucket count and the updates
// are atomic adds, so concurrent observers never block each other.
//
//hbbmc:noalloc
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records one duration.
//
//hbbmc:noalloc
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// writeSeries renders the histogram's bucket/sum/count series. The counts
// are loaded bucket by bucket, so a scrape racing observations may see a
// sum slightly ahead of the buckets — the standard, documented slack of
// lock-free Prometheus histograms.
func (h *Histogram) writeSeries(w *bufio.Writer) {
	var cum int64
	for i, sec := range h.secs {
		cum += h.counts[i].Load()
		writeSample(w, h.name+"_bucket", h.leLabel(formatFloat(sec)), fmt.Sprint(cum))
	}
	cum += h.counts[len(h.secs)].Load()
	writeSample(w, h.name+"_bucket", h.leLabel("+Inf"), fmt.Sprint(cum))
	writeSample(w, h.name+"_sum", h.label, formatFloat(float64(h.sum.Load())/1e9))
	writeSample(w, h.name+"_count", h.label, fmt.Sprint(cum))
}

func (h *Histogram) leLabel(le string) string {
	if h.label == "" {
		return `le="` + le + `"`
	}
	return h.label + `,le="` + le + `"`
}
