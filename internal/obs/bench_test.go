package obs

import (
	"testing"
	"time"
)

// TestObsHotPathAllocs gates the hot-path guarantee the package documents:
// histogram observation and span recording allocate nothing. A regression
// here means the enumeration path started paying GC for its own telemetry.
func TestObsHotPathAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", "", LatencyBuckets())
	tr := NewTrace()
	start := time.Now()

	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveDuration(3 * time.Millisecond) }); n != 0 {
		t.Fatalf("Histogram.ObserveDuration allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.Record("run", start, time.Millisecond)
		tr.mu.Lock()
		tr.n = 0 // keep the arena from filling; resetting is index arithmetic
		tr.mu.Unlock()
	}); n != 0 {
		t.Fatalf("Trace.Record allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tr.RecordRange("checkpoint", 0, 64, start, time.Millisecond)
		tr.mu.Lock()
		tr.n = 0
		tr.mu.Unlock()
	}); n != 0 {
		t.Fatalf("Trace.RecordRange allocates %v per op, want 0", n)
	}
}

// BenchmarkObsOverhead measures the per-event cost of the two hot-path
// instrumentation primitives. Run with -benchmem: the gate is 0 allocs/op.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("HistogramObserve", func(b *testing.B) {
		r := NewRegistry()
		h := r.Histogram("b_seconds", "bench", "", LatencyBuckets())
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(17)
			for pb.Next() {
				h.Observe(v)
				v = (v * 2654435761) % int64(90*time.Second)
			}
		})
	})
	b.Run("TraceRecord", func(b *testing.B) {
		tr := NewTrace()
		start := time.Now()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Record("run", start, time.Millisecond)
			if i%DefaultSpanCap == DefaultSpanCap-1 {
				tr.mu.Lock()
				tr.n = 0
				tr.mu.Unlock()
			}
		}
	})
}
