package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSpanCap sizes a trace's span arena. Spans past the capacity are
// dropped and counted — the arena never grows, which is what keeps span
// recording allocation-free on the enumeration path.
const DefaultSpanCap = 256

// Span is one timed step of a job: queueing, session acquisition, the
// run itself, durable checkpoints, shard dispatches, the stream drain.
type Span struct {
	Name string
	// Peer is the base URL of the worker node a span was imported from
	// ("" = recorded locally).
	Peer string
	// Lo/Hi carry the branch interval of checkpoint and shard spans
	// (both zero otherwise).
	Lo, Hi int
	Start  int64 // wall clock, Unix nanoseconds
	Dur    int64 // nanoseconds
}

// Trace is one job's span timeline. The span arena is pre-sized at
// construction; Record and RecordRange assign into it by index under a
// mutex, so the per-span cost on the hot path is a lock and a store —
// never an allocation. Cross-node spans merged from worker peers arrive
// through Add.
type Trace struct {
	id     string // 32 lowercase hex digits
	remote bool   // the ID was adopted from a traceparent header

	mu sync.Mutex
	//hbbmc:guardedby mu
	n int
	//hbbmc:guardedby mu
	spans []Span // len == capacity; [0, n) are recorded
	//hbbmc:guardedby mu
	dropped int64
}

// NewTrace returns a trace with a fresh random ID and the default span
// capacity.
func NewTrace() *Trace {
	return &Trace{id: newTraceID(), spans: make([]Span, DefaultSpanCap)}
}

// NewTraceWithID returns a trace adopting an ID propagated from a remote
// coordinator (remote=true marks the parent as remote in views). An
// invalid id is replaced with a fresh one.
func NewTraceWithID(id string, remote bool) *Trace {
	if !validTraceID(id) {
		return NewTrace()
	}
	return &Trace{id: id, remote: remote, spans: make([]Span, DefaultSpanCap)}
}

// ID returns the trace ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Record appends a span. name should be a constant — the call is on the
// job hot path and must not allocate.
//
//hbbmc:noalloc
func (t *Trace) Record(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.n < len(t.spans) {
		t.spans[t.n] = Span{Name: name, Start: start.UnixNano(), Dur: int64(d)}
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// RecordRange appends a span carrying a branch interval [lo, hi) —
// checkpoint and shard spans.
//
//hbbmc:noalloc
func (t *Trace) RecordRange(name string, lo, hi int, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.n < len(t.spans) {
		t.spans[t.n] = Span{Name: name, Lo: lo, Hi: hi, Start: start.UnixNano(), Dur: int64(d)}
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Add appends a fully-formed span — the import path for spans a
// coordinator merges from its worker peers.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.n < len(t.spans) {
		t.spans[t.n] = s
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Dropped returns the spans discarded because the arena was full.
func (t *Trace) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// TraceView is the JSON rendering of a trace: the timeline a client reads
// from GET /v1/jobs/{id}/trace and the form worker spans travel back to
// the coordinator in.
type TraceView struct {
	TraceID string `json:"trace_id"`
	// RemoteParent marks a shard job whose trace ID was adopted from a
	// coordinator's traceparent header.
	RemoteParent bool       `json:"remote_parent,omitempty"`
	DroppedSpans int64      `json:"dropped_spans,omitempty"`
	Spans        []SpanView `json:"spans"`
}

// SpanView is the JSON rendering of one span. Start times are per-node
// wall clocks; across nodes they are comparable only as well as the
// fleet's clocks are synchronised.
type SpanView struct {
	Name        string `json:"name"`
	Peer        string `json:"peer,omitempty"`
	BranchLo    int    `json:"branch_lo,omitempty"`
	BranchHi    int    `json:"branch_hi,omitempty"`
	StartUnixNS int64  `json:"start_unix_ns"`
	DurationNS  int64  `json:"duration_ns"`
}

// Span converts a view back into a span (the coordinator's merge path).
func (v SpanView) Span() Span {
	return Span{Name: v.Name, Peer: v.Peer, Lo: v.BranchLo, Hi: v.BranchHi, Start: v.StartUnixNS, Dur: v.DurationNS}
}

// View snapshots the trace, spans ordered by start time. Nil traces view
// as the zero TraceView.
func (t *Trace) View() TraceView {
	if t == nil {
		return TraceView{}
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans[:t.n]...)
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	v := TraceView{TraceID: t.id, RemoteParent: t.remote, DroppedSpans: dropped, Spans: make([]SpanView, len(spans))}
	for i, s := range spans {
		v.Spans[i] = SpanView{
			Name: s.Name, Peer: s.Peer, BranchLo: s.Lo, BranchHi: s.Hi,
			StartUnixNS: s.Start, DurationNS: s.Dur,
		}
	}
	return v
}

// TraceparentHeader is the propagation header the coordinator sets on
// shard dispatches, following the W3C trace-context shape:
// "00-<32 hex trace id>-<16 hex span id>-01".
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a traceparent header value carrying traceID
// (which must be 32 lowercase hex digits; "" returns "").
func FormatTraceparent(traceID string) string {
	if !validTraceID(traceID) {
		return ""
	}
	return "00-" + traceID + "-" + newSpanID() + "-01"
}

// ParseTraceparent extracts the trace ID from a traceparent header value.
func ParseTraceparent(h string) (string, bool) {
	// version "-" traceid "-" spanid "-" flags
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false
	}
	if h[:2] == "ff" { // forbidden version
		return "", false
	}
	if !hexLower(h[:2]) || !hexLower(h[53:]) {
		return "", false
	}
	id, span := h[3:35], h[36:52]
	if !validTraceID(id) || !hexLower(span) || span == "0000000000000000" {
		return "", false
	}
	return id, true
}

func validTraceID(id string) bool {
	return len(id) == 32 && hexLower(id) && id != "00000000000000000000000000000000"
}

func hexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// idFallback feeds deterministic IDs if crypto/rand ever fails (it does
// not on any supported platform, but an observability layer must not be
// able to panic the job path).
var idFallback atomic.Int64

func newTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fallbackID(32)
	}
	return hex.EncodeToString(b[:])
}

func newSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fallbackID(16)
	}
	return hex.EncodeToString(b[:])
}

func fallbackID(width int) string {
	n := idFallback.Add(1)
	s := strconv.FormatInt(n, 16)
	for len(s) < width {
		s = "0" + s
	}
	return s
}
