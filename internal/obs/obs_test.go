package obs

import (
	"strings"
	"testing"
	"time"
)

// TestHistogramBucketMath drives known observations through a small
// bucket ladder and checks the cumulative bucket counts, sum and count —
// the arithmetic the exposition renders.
func TestHistogramBucketMath(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "test", "", []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	})
	obs := []time.Duration{
		500 * time.Microsecond,  // bucket 0 (le 1ms)
		time.Millisecond,        // bucket 0 (inclusive upper bound)
		2 * time.Millisecond,    // bucket 1
		10 * time.Millisecond,   // bucket 1
		50 * time.Millisecond,   // bucket 2
		250 * time.Millisecond,  // +Inf
		1500 * time.Millisecond, // +Inf
	}
	var wantSum int64
	for _, d := range obs {
		h.ObserveDuration(d)
		wantSum += int64(d)
	}
	if got := h.Count(); got != int64(len(obs)) {
		t.Fatalf("Count = %d, want %d", got, len(obs))
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
	wantCounts := []int64{2, 2, 1, 2} // per-bucket, +Inf last
	for i, want := range wantCounts {
		if got := h.counts[i].Load(); got != want {
			t.Fatalf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	// Negative observations clamp to zero instead of corrupting the sum.
	h.Observe(-5)
	if got := h.counts[0].Load(); got != 3 {
		t.Fatalf("negative observation landed in bucket %d times, want 3", got)
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("negative observation moved Sum to %d, want %d", got, wantSum)
	}
}

// TestWritePrometheus checks the exposition output: HELP/TYPE headers,
// cumulative le buckets ending at +Inf, sum/count series, label variants
// grouped under one family, and family-sorted order.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_jobs_total", "Jobs.", "")
	c.Add(7)
	g := r.Gauge("t_running", "Running.", "")
	g.Set(-2)
	r.Func("t_sampled", "Sampled.", "", KindGauge, func() float64 { return 1.5 })
	hu := r.Histogram("t_phase_seconds", "Per-phase time.", `phase="universe"`,
		[]time.Duration{time.Millisecond, time.Second})
	hp := r.Histogram("t_phase_seconds", "Per-phase time.", `phase="pivot"`,
		[]time.Duration{time.Millisecond, time.Second})
	hu.ObserveDuration(2 * time.Millisecond)
	hu.ObserveDuration(500 * time.Microsecond)
	hp.ObserveDuration(2 * time.Second)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP t_jobs_total Jobs.\n# TYPE t_jobs_total counter\nt_jobs_total 7\n",
		"# TYPE t_running gauge\nt_running -2\n",
		"t_sampled 1.5\n",
		"# TYPE t_phase_seconds histogram\n",
		`t_phase_seconds_bucket{phase="universe",le="0.001"} 1`,
		`t_phase_seconds_bucket{phase="universe",le="1"} 2`,
		`t_phase_seconds_bucket{phase="universe",le="+Inf"} 2`,
		`t_phase_seconds_sum{phase="universe"} 0.0025`,
		`t_phase_seconds_count{phase="universe"} 2`,
		`t_phase_seconds_bucket{phase="pivot",le="+Inf"} 1`,
		`t_phase_seconds_count{phase="pivot"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with two label variants.
	if n := strings.Count(out, "# TYPE t_phase_seconds histogram"); n != 1 {
		t.Fatalf("phase family has %d TYPE headers, want 1:\n%s", n, out)
	}
	// Families render sorted by name.
	if strings.Index(out, "t_jobs_total") > strings.Index(out, "t_running") {
		t.Fatalf("families not sorted:\n%s", out)
	}
	// Two scrapes agree byte for byte (stable order).
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatalf("unstable exposition output:\n%s\nvs\n%s", out, sb2.String())
	}
}

// TestGoRuntimeMetrics spot-checks the runtime collector output.
func TestGoRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	r.RegisterGoRuntime()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"# TYPE go_heap_alloc_bytes gauge",
		"# TYPE go_gc_cycles_total counter",
		"# TYPE go_gc_pause_seconds_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("runtime exposition missing %q:\n%s", want, out)
		}
	}
}
