// Package obs is mced's dependency-free observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms) rendered in the
// Prometheus text exposition format, and per-job trace timelines with a
// traceparent-style propagation header for the distributed coordinator.
//
// The package is deliberately stdlib-only and hot-path friendly:
//
//   - a histogram observation is one atomic add into a pre-sized bucket
//     array plus one atomic add into the sum — no allocation, no lock;
//   - a span record is one index assignment into a pre-sized span arena
//     under a mutex — no allocation; spans past the arena capacity are
//     dropped and counted rather than grown;
//   - everything that allocates (registration, rendering, trace views)
//     happens off the enumeration path.
//
// The //hbbmc:noalloc annotations on Histogram.Observe and Trace.Record
// make the zero-allocation claim machine-checked (internal/analysis), and
// BenchmarkObsOverhead gates it with testing.AllocsPerRun.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric for the TYPE line of the exposition format.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	name, help, label string
	v                 atomic.Int64
}

// Add increments the counter by delta (which must be non-negative).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	name, help, label string
	v                 atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// funcMetric is a metric sampled at scrape time — the bridge for values
// owned elsewhere (expvar counters, Go runtime stats).
type funcMetric struct {
	name, help, label string
	kind              Kind
	fn                func() float64
}

// Registry holds a set of metrics and renders them in the Prometheus text
// exposition format. Metrics sharing a family name (for example, the
// per-phase histograms, which differ only in their const label) are
// rendered under one HELP/TYPE header. Registration is cheap but not
// hot-path; observation methods on the returned metrics are.
type Registry struct {
	mu sync.Mutex
	//hbbmc:guardedby mu
	hists []*Histogram
	//hbbmc:guardedby mu
	counters []*Counter
	//hbbmc:guardedby mu
	gauges []*Gauge
	//hbbmc:guardedby mu
	funcs []funcMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a counter. label is a pre-rendered const
// label ("" = none), e.g. `phase="universe"`.
func (r *Registry) Counter(name, help, label string) *Counter {
	c := &Counter{name: name, help: help, label: label}
	r.mu.Lock()
	r.counters = append(r.counters, c)
	r.mu.Unlock()
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help, label string) *Gauge {
	g := &Gauge{name: name, help: help, label: label}
	r.mu.Lock()
	r.gauges = append(r.gauges, g)
	r.mu.Unlock()
	return g
}

// Func registers a metric sampled at scrape time by fn.
func (r *Registry) Func(name, help, label string, kind Kind, fn func() float64) {
	r.mu.Lock()
	r.funcs = append(r.funcs, funcMetric{name: name, help: help, label: label, kind: kind, fn: fn})
	r.mu.Unlock()
}

// family groups every series of one metric name for rendering.
type family struct {
	name, help string
	kind       Kind
	write      []func(w *bufio.Writer)
}

// WritePrometheus renders every registered metric in the text exposition
// format (version 0.0.4): families sorted by name, one HELP/TYPE header
// per family, label variants in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	hists := append([]*Histogram(nil), r.hists...)
	counters := append([]*Counter(nil), r.counters...)
	gauges := append([]*Gauge(nil), r.gauges...)
	funcs := append([]funcMetric(nil), r.funcs...)
	r.mu.Unlock()

	fams := make(map[string]*family)
	var order []string
	add := func(name, help string, kind Kind, write func(w *bufio.Writer)) {
		f := fams[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind}
			fams[name] = f
			order = append(order, name)
		}
		f.write = append(f.write, write)
	}
	for _, c := range counters {
		add(c.name, c.help, KindCounter, func(w *bufio.Writer) {
			writeSample(w, c.name, c.label, strconv.FormatInt(c.Value(), 10))
		})
	}
	for _, g := range gauges {
		add(g.name, g.help, KindGauge, func(w *bufio.Writer) {
			writeSample(w, g.name, g.label, strconv.FormatInt(g.Value(), 10))
		})
	}
	for _, fm := range funcs {
		add(fm.name, fm.help, fm.kind, func(w *bufio.Writer) {
			writeSample(w, fm.name, fm.label, formatFloat(fm.fn()))
		})
	}
	for _, h := range hists {
		add(h.name, h.help, KindHistogram, h.writeSeries)
	}
	sort.Strings(order)

	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := fams[name]
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, write := range f.write {
			write(bw)
		}
	}
	return bw.Flush()
}

func writeSample(w *bufio.Writer, name, label, value string) {
	if label == "" {
		fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		fmt.Fprintf(w, "%s{%s} %s\n", name, label, value)
	}
}

// formatFloat renders a sample value: shortest representation that
// round-trips, matching the Prometheus client convention.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
