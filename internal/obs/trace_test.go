package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTraceRecordAndView(t *testing.T) {
	tr := NewTrace()
	if len(tr.ID()) != 32 || !hexLower(tr.ID()) {
		t.Fatalf("trace ID %q is not 32 lowercase hex digits", tr.ID())
	}
	base := time.Now()
	tr.Record("run", base.Add(time.Millisecond), 5*time.Millisecond)
	tr.Record("queued", base, time.Millisecond)
	tr.RecordRange("checkpoint", 3, 9, base.Add(2*time.Millisecond), time.Millisecond)
	tr.Add(Span{Name: "shard_dispatch", Peer: "http://w1", Lo: 0, Hi: 4, Start: base.UnixNano() + 1, Dur: 42})

	v := tr.View()
	if v.TraceID != tr.ID() || v.RemoteParent || v.DroppedSpans != 0 {
		t.Fatalf("unexpected view header: %+v", v)
	}
	if len(v.Spans) != 4 {
		t.Fatalf("view has %d spans, want 4", len(v.Spans))
	}
	// Ordered by start time: queued first, run last.
	if v.Spans[0].Name != "queued" || v.Spans[3].Name != "checkpoint" {
		t.Fatalf("spans not ordered by start: %+v", v.Spans)
	}
	ck := v.Spans[3]
	if ck.BranchLo != 3 || ck.BranchHi != 9 || ck.DurationNS != int64(time.Millisecond) {
		t.Fatalf("checkpoint span mangled: %+v", ck)
	}
	var peer SpanView
	for _, s := range v.Spans {
		if s.Peer != "" {
			peer = s
		}
	}
	if peer.Name != "shard_dispatch" || peer.Peer != "http://w1" {
		t.Fatalf("imported span mangled: %+v", peer)
	}
	if got := peer.Span(); got.Peer != "http://w1" || got.Hi != 4 {
		t.Fatalf("SpanView round trip mangled: %+v", got)
	}
}

// TestTraceArenaOverflow fills the span arena and checks that overflow is
// dropped and counted rather than grown.
func TestTraceArenaOverflow(t *testing.T) {
	tr := NewTrace()
	start := time.Now()
	for i := 0; i < DefaultSpanCap+10; i++ {
		tr.Record("s", start, time.Microsecond)
	}
	if got := tr.Dropped(); got != 10 {
		t.Fatalf("Dropped = %d, want 10", got)
	}
	if v := tr.View(); len(v.Spans) != DefaultSpanCap || v.DroppedSpans != 10 {
		t.Fatalf("view has %d spans / %d dropped, want %d / 10", len(v.Spans), v.DroppedSpans, DefaultSpanCap)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Record("x", time.Now(), time.Second)
	tr.RecordRange("x", 0, 1, time.Now(), time.Second)
	tr.Add(Span{})
	if tr.ID() != "" || tr.Dropped() != 0 {
		t.Fatal("nil trace leaked state")
	}
	if v := tr.View(); v.TraceID != "" || len(v.Spans) != 0 {
		t.Fatalf("nil trace view = %+v", v)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace()
	h := FormatTraceparent(tr.ID())
	if !strings.HasPrefix(h, "00-"+tr.ID()+"-") || !strings.HasSuffix(h, "-01") || len(h) != 55 {
		t.Fatalf("malformed traceparent %q", h)
	}
	id, ok := ParseTraceparent(h)
	if !ok || id != tr.ID() {
		t.Fatalf("ParseTraceparent(%q) = %q, %v", h, id, ok)
	}
	adopted := NewTraceWithID(id, true)
	if adopted.ID() != id || !adopted.View().RemoteParent {
		t.Fatalf("adopted trace mangled: %q", adopted.ID())
	}
}

func TestTraceparentRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("0", 32) + "-1234567890abcdef-01", // all-zero trace id
		"00-" + strings.Repeat("a", 32) + "-0000000000000000-01", // all-zero span id
		"00-" + strings.Repeat("A", 32) + "-1234567890abcdef-01", // uppercase hex
		"ff-" + strings.Repeat("a", 32) + "-1234567890abcdef-01", // forbidden version
		"00-" + strings.Repeat("a", 32) + "-1234567890abcdef-01x",
		"00_" + strings.Repeat("a", 32) + "-1234567890abcdef-01",
	}
	for _, h := range bad {
		if id, ok := ParseTraceparent(h); ok {
			t.Fatalf("ParseTraceparent(%q) accepted as %q", h, id)
		}
	}
	if FormatTraceparent("nope") != "" {
		t.Fatal("FormatTraceparent accepted an invalid trace ID")
	}
	if tr := NewTraceWithID("nope", true); len(tr.ID()) != 32 || tr.View().RemoteParent {
		t.Fatalf("NewTraceWithID kept an invalid ID: %q", tr.ID())
	}
}
