package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterGoRuntime registers the Go runtime gauges and counters:
// goroutine count, heap alloc/sys bytes, GC cycle count and cumulative GC
// pause time. runtime.ReadMemStats is sampled at most once per second —
// one scrape reads a consistent snapshot, and scrape storms cannot turn
// the stats read into load.
func (r *Registry) RegisterGoRuntime() {
	var mu sync.Mutex
	var ms runtime.MemStats
	var last time.Time
	memstats := func() runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if last.IsZero() || time.Since(last) > time.Second {
			runtime.ReadMemStats(&ms)
			last = time.Now()
		}
		return ms
	}
	r.Func("go_goroutines", "Number of live goroutines.", "", KindGauge,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.Func("go_heap_alloc_bytes", "Bytes of allocated heap objects.", "", KindGauge,
		func() float64 { m := memstats(); return float64(m.HeapAlloc) })
	r.Func("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.", "", KindGauge,
		func() float64 { m := memstats(); return float64(m.HeapSys) })
	r.Func("go_gc_cycles_total", "Completed GC cycles.", "", KindCounter,
		func() float64 { m := memstats(); return float64(m.NumGC) })
	r.Func("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.", "", KindCounter,
		func() float64 { m := memstats(); return float64(m.PauseTotalNs) / 1e9 })
}
