package truss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/graphmining/hbbmc/internal/graph"
)

// TestSupportSumEqualsThreeTriangles pins the handshake identity: every
// triangle contributes one unit of support to each of its three edges.
func TestSupportSumEqualsThreeTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 30; iter++ {
		n := 3 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(6*n))
		var sum int64
		for _, s := range Supports(g) {
			sum += int64(s)
		}
		if tri := CountTriangles(g); sum != 3*tri {
			t.Fatalf("iter %d: support sum %d != 3·triangles %d", iter, sum, 3*tri)
		}
	}
}

// TestIncidenceEntriesAreConsistent verifies the canonical orientation
// contract: for every entry of edge e=(src,dst), CoSrc passes through src,
// CoDst through dst, and both meet at Third.
func TestIncidenceEntriesAreConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g := randomGraph(rng, 40, 300)
	inc := BuildIncidence(g)
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		src, dst := g.EdgeEndpoints(e)
		lo, hi := inc.Range(e)
		for i := lo; i < hi; i++ {
			x := inc.Third(i)
			if x == src || x == dst {
				t.Fatalf("edge %d: apex %d is an endpoint", e, x)
			}
			cs, cd := inc.CoSrc(i), inc.CoDst(i)
			a1, b1 := g.EdgeEndpoints(cs)
			if !(a1 == src && b1 == x || a1 == x && b1 == src) {
				t.Fatalf("edge %d: CoSrc %d is (%d,%d), want {%d,%d}", e, cs, a1, b1, src, x)
			}
			a2, b2 := g.EdgeEndpoints(cd)
			if !(a2 == dst && b2 == x || a2 == x && b2 == dst) {
				t.Fatalf("edge %d: CoDst %d is (%d,%d), want {%d,%d}", e, cd, a2, b2, dst, x)
			}
		}
		if int(inc.Count(e)) != int(hi-lo) {
			t.Fatalf("edge %d: Count %d != range %d", e, inc.Count(e), hi-lo)
		}
	}
}

// TestQuickTrussRankRespectsSupport: along the truss ordering, the support
// at removal never exceeds τ; spot-check via quick-generated graphs.
func TestQuickTrussRankRespectsSupport(t *testing.T) {
	f := func(nRaw uint8, bits []byte) bool {
		n := 3 + int(nRaw%30)
		b := graph.NewBuilder(n)
		idx := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if idx/8 < len(bits) && bits[idx/8]&(1<<(idx%8)) != 0 {
					b.AddEdge(int32(i), int32(j))
				}
				idx++
			}
		}
		g := b.MustBuild()
		d := Decompose(g)
		// MaxCandidateSize is exactly the removal-time support bound.
		return MaxCandidateSize(g, d.EdgeOrder) <= d.Tau
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestEmptyAndTinyGraphs covers the decomposition's degenerate inputs.
func TestEmptyAndTinyGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.NewBuilder(0).MustBuild(),
		graph.NewBuilder(1).MustBuild(),
		graph.NewBuilder(2).MustBuild(),
	} {
		d := Decompose(g)
		if d.Tau != 0 || len(d.Order) != 0 {
			t.Errorf("degenerate graph: τ=%d order=%d", d.Tau, len(d.Order))
		}
		if BuildIncidence(g).Triangles() != 0 {
			t.Error("degenerate graph has no triangles")
		}
	}
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	d := Decompose(g)
	if d.Tau != 0 || len(d.Order) != 1 {
		t.Errorf("single edge: τ=%d order=%d", d.Tau, len(d.Order))
	}
}
