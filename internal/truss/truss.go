// Package truss computes edge supports, the truss-based edge ordering of
// [19] (the EBBkC paper) and the associated parameter τ, plus the two
// alternative edge orderings used in the paper's Table VI ablation.
//
// The truss-based edge ordering is the edge analogue of the degeneracy
// ordering: repeatedly remove the edge whose endpoints have the fewest
// common neighbors in the remaining graph. τ is the largest support observed
// at removal time; for every graph τ < δ wherever the graph has at least one
// triangle-free peeling step, and τ ≤ δ−1 in general (Lemma 4.4 of [19]).
package truss

import (
	"sort"

	"github.com/graphmining/hbbmc/internal/graph"
)

// EdgeOrder is a permutation of the edges of a graph.
type EdgeOrder struct {
	// Rank[e] is the position of edge id e in the ordering.
	Rank []int32
	// Order[i] is the edge id at position i.
	Order []int32
}

// Decomposition is the result of the truss peeling.
type Decomposition struct {
	EdgeOrder
	// Tau is the truss-related parameter τ: the maximum, over the peeling,
	// of an edge's support at its removal.
	Tau int
	// Support[e] is the initial support (triangle count) of edge e.
	Support []int32
	// Inc is the triangle incidence structure the peeling was computed
	// from; the edge-oriented enumeration engines reuse it to derive branch
	// universes without adjacency merges.
	Inc *Incidence
}

// Supports returns the number of triangles through each edge, computed from
// the forward triangle enumeration in O(δm).
func Supports(g *graph.Graph) []int32 {
	inc := BuildIncidence(g)
	sup := make([]int32, g.NumEdges())
	for e := range sup {
		sup[e] = inc.Count(int32(e))
	}
	return sup
}

// CountTriangles returns the number of triangles in g (each counted once).
func CountTriangles(g *graph.Graph) int64 {
	return BuildIncidence(g).Triangles()
}

// Decompose runs the truss peeling and returns the truss-based edge
// ordering, τ, the initial supports and the triangle incidence.
func Decompose(g *graph.Graph) *Decomposition {
	m := g.NumEdges()
	inc := BuildIncidence(g)
	d := &Decomposition{
		EdgeOrder: EdgeOrder{
			Rank:  make([]int32, m),
			Order: make([]int32, 0, m),
		},
		Support: make([]int32, m),
		Inc:     inc,
	}
	for e := 0; e < m; e++ {
		d.Support[e] = inc.Count(int32(e))
	}
	if m == 0 {
		return d
	}
	sup := make([]int32, m)
	copy(sup, d.Support)
	maxSup := int32(0)
	for _, s := range sup {
		if s > maxSup {
			maxSup = s
		}
	}
	// Bucket queue over support values, mirroring the core-peeling layout.
	binStart := make([]int32, maxSup+2)
	for _, s := range sup {
		binStart[s+1]++
	}
	for i := 1; i < len(binStart); i++ {
		binStart[i] += binStart[i-1]
	}
	edges := make([]int32, m) // edges sorted by current support
	pos := make([]int32, m)
	cursor := make([]int32, maxSup+1)
	copy(cursor, binStart[:maxSup+1])
	for e := int32(0); e < int32(m); e++ {
		p := cursor[sup[e]]
		edges[p] = e
		pos[e] = p
		cursor[sup[e]]++
	}
	bin := make([]int32, maxSup+1)
	copy(bin, binStart[:maxSup+1])

	removed := make([]bool, m)
	decrement := func(e int32, processedUpTo int) {
		s := sup[e]
		pe := pos[e]
		ps := bin[s]
		if int(ps) <= processedUpTo {
			ps = int32(processedUpTo + 1)
			bin[s] = ps
		}
		o := edges[ps]
		if o != e {
			edges[ps], edges[pe] = e, o
			pos[e], pos[o] = ps, pe
		}
		bin[s]++
		sup[e]--
	}

	tau := int32(0)
	for i := 0; i < m; i++ {
		e := edges[i]
		if sup[e] > tau {
			tau = sup[e]
		}
		d.Rank[e] = int32(len(d.Order))
		d.Order = append(d.Order, e)
		removed[e] = true
		// Every triangle through e with both co-edges alive loses it.
		inc.ForEach(e, func(e1, e2 int32) {
			if !removed[e1] && !removed[e2] {
				decrement(e1, i)
				decrement(e2, i)
			}
		})
	}
	d.Tau = int(tau)
	return d
}

// DegeneracyEdgeOrder orders edges lexicographically by the degeneracy
// positions of their endpoints (smaller position first, then the other
// endpoint's position). This is the HBBMC-dgn baseline of Table VI.
func DegeneracyEdgeOrder(g *graph.Graph, pos []int32) EdgeOrder {
	return orderEdgesBy(g, func(e int32) (int64, int64) {
		u, v := g.EdgeEndpoints(e)
		pu, pv := int64(pos[u]), int64(pos[v])
		if pu > pv {
			pu, pv = pv, pu
		}
		return pu, pv
	})
}

// MinDegreeEdgeOrder orders edges by the non-decreasing minimum degree of
// their endpoints (an upper bound on the common-neighborhood size). This is
// the HBBMC-mdg baseline of Table VI.
func MinDegreeEdgeOrder(g *graph.Graph) EdgeOrder {
	return orderEdgesBy(g, func(e int32) (int64, int64) {
		u, v := g.EdgeEndpoints(e)
		du, dv := int64(g.Degree(u)), int64(g.Degree(v))
		if du > dv {
			du, dv = dv, du
		}
		return du, dv
	})
}

// SupportEdgeOrder orders edges by non-decreasing static support (initial
// triangle count), a cheaper approximation of the truss ordering retained
// for ablation experiments.
func SupportEdgeOrder(g *graph.Graph) EdgeOrder {
	sup := Supports(g)
	return orderEdgesBy(g, func(e int32) (int64, int64) {
		return int64(sup[e]), int64(e)
	})
}

func orderEdgesBy(g *graph.Graph, key func(e int32) (int64, int64)) EdgeOrder {
	m := g.NumEdges()
	eo := EdgeOrder{
		Rank:  make([]int32, m),
		Order: make([]int32, m),
	}
	for e := range eo.Order {
		eo.Order[e] = int32(e)
	}
	sort.Slice(eo.Order, func(i, j int) bool {
		a1, a2 := key(eo.Order[i])
		b1, b2 := key(eo.Order[j])
		if a1 != b1 {
			return a1 < b1
		}
		if a2 != b2 {
			return a2 < b2
		}
		return eo.Order[i] < eo.Order[j]
	})
	for i, e := range eo.Order {
		eo.Rank[e] = int32(i)
	}
	return eo
}

// MaxCandidateSize returns, for a given edge order, the largest number of
// common neighbors w of an edge (u,v) such that both (u,w) and (v,w) rank
// after (u,v). For the truss ordering this equals the bound the branching
// engines rely on (≤ τ); for other orderings it measures how loose they are.
func MaxCandidateSize(g *graph.Graph, eo EdgeOrder) int {
	max := 0
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		u, v := g.EdgeEndpoints(e)
		r := eo.Rank[e]
		cnt := 0
		nu, nv := g.Neighbors(u), g.Neighbors(v)
		iu, iv := g.IncidentEdgeIDs(u), g.IncidentEdgeIDs(v)
		i, j := 0, 0
		for i < len(nu) && j < len(nv) {
			switch {
			case nu[i] < nv[j]:
				i++
			case nu[i] > nv[j]:
				j++
			default:
				if eo.Rank[iu[i]] > r && eo.Rank[iv[j]] > r {
					cnt++
				}
				i++
				j++
			}
		}
		if cnt > max {
			max = cnt
		}
	}
	return max
}
