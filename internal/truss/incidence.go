package truss

import (
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
)

// Incidence records, for every edge, the triangles through it. It is the
// O(δm)-time, O(#triangles)-space structure behind both the truss peeling
// and the edge-oriented branching top level (the paper's V+/E+
// bookkeeping): once built, neither needs adjacency merges again.
//
// For an entry of edge e = (src,dst) describing triangle {src,dst,x}:
//   - Third(...) is the apex vertex x,
//   - CoSrc(...) is the edge id of (src,x),
//   - CoDst(...) is the edge id of (dst,x).
//
// The canonical orientation lets callers pick "the co-edge through my
// endpoint" with a single comparison instead of endpoint lookups.
type Incidence struct {
	off   []int32 // per-edge offsets into the entry arrays, len m+1
	coSrc []int32 // edge id of (src, third)
	coDst []int32 // edge id of (dst, third)
	third []int32 // apex vertex
}

// Count returns the number of triangles through edge e (its support).
func (inc *Incidence) Count(e int32) int32 {
	return inc.off[e+1] - inc.off[e]
}

// Range returns the entry index range [lo, hi) of edge e for use with
// CoSrc/CoDst/Third.
func (inc *Incidence) Range(e int32) (lo, hi int32) {
	return inc.off[e], inc.off[e+1]
}

// CoSrc returns entry i's co-edge through the smaller endpoint of its edge.
func (inc *Incidence) CoSrc(i int32) int32 { return inc.coSrc[i] }

// CoDst returns entry i's co-edge through the larger endpoint of its edge.
func (inc *Incidence) CoDst(i int32) int32 { return inc.coDst[i] }

// Third returns entry i's apex vertex.
func (inc *Incidence) Third(i int32) int32 { return inc.third[i] }

// ForEach calls fn with the two co-edges of every triangle through e.
func (inc *Incidence) ForEach(e int32, fn func(e1, e2 int32)) {
	for i := inc.off[e]; i < inc.off[e+1]; i++ {
		fn(inc.coSrc[i], inc.coDst[i])
	}
}

// MemoryFootprint returns the number of bytes held by the incidence arrays
// (offsets plus the three per-triangle-entry columns), the retained-size
// estimate used by session cache budgets.
func (inc *Incidence) MemoryFootprint() int64 {
	return int64(len(inc.off)+len(inc.coSrc)+len(inc.coDst)+len(inc.third)) * 4
}

// Triangles returns the total number of triangles in the underlying graph.
func (inc *Incidence) Triangles() int64 {
	if len(inc.off) == 0 {
		return 0
	}
	return int64(inc.off[len(inc.off)-1]) / 3
}

// BuildIncidence enumerates all triangles with the forward (degeneracy-
// oriented) algorithm — O(δm) time — and assembles the per-edge incidence
// lists.
func BuildIncidence(g *graph.Graph) *Incidence {
	n := g.NumVertices()
	m := g.NumEdges()
	pos := order.DegeneracyOrdering(g).Pos

	// Forward adjacency: for each vertex, its later-ordered neighbors with
	// edge ids, flattened.
	fOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		cnt := int32(0)
		for _, w := range g.Neighbors(int32(v)) {
			if pos[w] > pos[v] {
				cnt++
			}
		}
		fOff[v+1] = fOff[v] + cnt
	}
	fAdj := make([]int32, fOff[n])
	fEid := make([]int32, fOff[n])
	cursor := make([]int32, n)
	copy(cursor, fOff[:n])
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(int32(v))
		eids := g.IncidentEdgeIDs(int32(v))
		for t, w := range nbrs {
			if pos[w] > pos[int32(v)] {
				fAdj[cursor[v]] = w
				fEid[cursor[v]] = eids[t]
				cursor[v]++
			}
		}
	}

	// Pass 1: count triangles per edge. Pass 2: fill with canonical
	// orientation.
	stamp := make([]int32, n)
	stampEid := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	counts := make([]int32, m)
	forEachTriangle(n, fOff, fAdj, fEid, stamp, stampEid, func(u, v, w, euv, euw, evw int32) {
		counts[euv]++
		counts[euw]++
		counts[evw]++
	})
	inc := &Incidence{off: make([]int32, m+1)}
	for e := 0; e < m; e++ {
		inc.off[e+1] = inc.off[e] + counts[e]
	}
	total := inc.off[m]
	inc.coSrc = make([]int32, total)
	inc.coDst = make([]int32, total)
	inc.third = make([]int32, total)
	fill := make([]int32, m)
	copy(fill, inc.off[:m])
	put := func(e, third, coWithSmaller, coWithLarger int32) {
		i := fill[e]
		inc.coSrc[i] = coWithSmaller
		inc.coDst[i] = coWithLarger
		inc.third[i] = third
		fill[e]++
	}
	forEachTriangle(n, fOff, fAdj, fEid, stamp, stampEid, func(u, v, w, euv, euw, evw int32) {
		// Edge euv = {u,v}, apex w: co-edges euw (through u) and evw
		// (through v); orient by vertex id.
		if u < v {
			put(euv, w, euw, evw)
		} else {
			put(euv, w, evw, euw)
		}
		if u < w {
			put(euw, v, euv, evw)
		} else {
			put(euw, v, evw, euv)
		}
		if v < w {
			put(evw, u, euv, euw)
		} else {
			put(evw, u, euw, euv)
		}
	})
	return inc
}

// forEachTriangle enumerates each triangle once as (u,v,w) ordered by
// degeneracy position, reporting the vertices and the three edge ids.
func forEachTriangle(n int, fOff, fAdj, fEid, stamp, stampEid []int32, fn func(u, v, w, euv, euw, evw int32)) {
	for u := 0; u < n; u++ {
		for i := fOff[u]; i < fOff[u+1]; i++ {
			stamp[fAdj[i]] = int32(u)
			stampEid[fAdj[i]] = fEid[i]
		}
		for i := fOff[u]; i < fOff[u+1]; i++ {
			v := fAdj[i]
			euv := fEid[i]
			for j := fOff[v]; j < fOff[v+1]; j++ {
				w := fAdj[j]
				if stamp[w] == int32(u) {
					fn(int32(u), v, w, euv, stampEid[w], fEid[j])
				}
			}
		}
		// No un-stamping needed: stamps carry the pivot id, so stale entries
		// can never match a later pivot.
	}
}
