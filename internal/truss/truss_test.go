package truss

import (
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.MustBuild()
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.MustBuild()
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

func TestSupportsTriangle(t *testing.T) {
	g := complete(3)
	for e, s := range Supports(g) {
		if s != 1 {
			t.Errorf("support of edge %d = %d, want 1", e, s)
		}
	}
}

func TestSupportsK5(t *testing.T) {
	g := complete(5)
	for e, s := range Supports(g) {
		if s != 3 {
			t.Errorf("support of K5 edge %d = %d, want 3", e, s)
		}
	}
}

func TestCountTriangles(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int64
	}{
		{"K3", complete(3), 1},
		{"K4", complete(4), 4},
		{"K5", complete(5), 10},
		{"C6", cycle(6), 0},
		{"empty", graph.NewBuilder(3).MustBuild(), 0},
	}
	for _, c := range cases {
		if got := CountTriangles(c.g); got != c.want {
			t.Errorf("%s: triangles = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestDecomposeKnownTau(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"triangle-free", cycle(8), 0},
		{"K3", complete(3), 1},
		{"K5", complete(5), 3},
		{"K7", complete(7), 5},
		{"no edges", graph.NewBuilder(4).MustBuild(), 0},
	}
	for _, c := range cases {
		d := Decompose(c.g)
		if d.Tau != c.want {
			t.Errorf("%s: τ = %d, want %d", c.name, d.Tau, c.want)
		}
	}
}

func TestDecomposeIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 50, 300)
	d := Decompose(g)
	if len(d.Order) != g.NumEdges() {
		t.Fatalf("order covers %d edges, want %d", len(d.Order), g.NumEdges())
	}
	seen := make([]bool, g.NumEdges())
	for i, e := range d.Order {
		if seen[e] {
			t.Fatalf("edge %d repeated", e)
		}
		seen[e] = true
		if d.Rank[e] != int32(i) {
			t.Fatalf("Rank[%d] = %d, want %d", e, d.Rank[e], i)
		}
	}
}

// The defining invariant of the truss ordering: when edge e is removed, its
// support in the remaining graph is at most τ; equivalently the candidate
// bound MaxCandidateSize ≤ τ.
func TestTrussOrderingBoundsCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 25; i++ {
		n := 5 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(6*n))
		d := Decompose(g)
		if got := MaxCandidateSize(g, d.EdgeOrder); got > d.Tau {
			t.Fatalf("iter %d: candidate bound %d exceeds τ=%d", i, got, d.Tau)
		}
	}
}

// τ ≤ δ − 1 on graphs with at least one edge ([19], since the removal-time
// support counts common later neighbors inside a (δ+1)-sized closed
// neighborhood at most).
func TestTauBelowDegeneracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 25; i++ {
		n := 5 + rng.Intn(60)
		g := randomGraph(rng, n, 2+rng.Intn(6*n))
		if g.NumEdges() == 0 {
			continue
		}
		delta := order.DegeneracyOrdering(g).Value
		tau := Decompose(g).Tau
		if tau >= delta && !(tau == 0 && delta == 0) {
			t.Fatalf("iter %d: τ=%d not below δ=%d", i, tau, delta)
		}
	}
}

func TestAlternativeEdgeOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 40, 200)
	deg := order.DegeneracyOrdering(g)

	for _, tc := range []struct {
		name string
		eo   EdgeOrder
	}{
		{"degeneracy", DegeneracyEdgeOrder(g, deg.Pos)},
		{"mindegree", MinDegreeEdgeOrder(g)},
		{"support", SupportEdgeOrder(g)},
	} {
		if len(tc.eo.Order) != g.NumEdges() {
			t.Fatalf("%s: order covers %d edges", tc.name, len(tc.eo.Order))
		}
		seen := make([]bool, g.NumEdges())
		for i, e := range tc.eo.Order {
			if seen[e] || tc.eo.Rank[e] != int32(i) {
				t.Fatalf("%s: not a permutation", tc.name)
			}
			seen[e] = true
		}
	}
}

func TestTrussOrderingNeverLooserThanAlternatives(t *testing.T) {
	// The truss ordering minimises the candidate bound by construction; on
	// triangle-rich graphs the alternatives must not beat it.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10; i++ {
		n := 20 + rng.Intn(30)
		g := randomGraph(rng, n, 6*n)
		d := Decompose(g)
		deg := order.DegeneracyOrdering(g)
		tb := MaxCandidateSize(g, d.EdgeOrder)
		db := MaxCandidateSize(g, DegeneracyEdgeOrder(g, deg.Pos))
		mb := MaxCandidateSize(g, MinDegreeEdgeOrder(g))
		if tb > db || tb > mb {
			t.Fatalf("truss bound %d worse than degeneracy %d / mindeg %d", tb, db, mb)
		}
	}
}

func TestMinDegreeOrderSortedByKey(t *testing.T) {
	g := complete(4)
	eo := MinDegreeEdgeOrder(g)
	prev := int64(-1)
	for _, e := range eo.Order {
		u, v := g.EdgeEndpoints(e)
		du, dv := int64(g.Degree(u)), int64(g.Degree(v))
		k := du
		if dv < du {
			k = dv
		}
		if k < prev {
			t.Fatal("min-degree edge order not sorted")
		}
		prev = k
	}
}
