// Package distrib defines the serialisable work descriptors of the
// distributed enumeration mode: a dataset identity (the .hbg payload CRC of
// the graph plus the canonical options SessionKey), the fingerprint of the
// branch enumeration basis (ordering + cost schedule), and a half-open
// top-level branch interval [Lo, Hi). A coordinator splits a session's
// branch space into descriptors with Plan and dispatches them to peer mced
// nodes over the jobs HTTP API (branch_range on POST /v1/jobs); any node
// whose session agrees on every identity field executes the interval via
// QueryOptions.BranchLo/BranchHi and streams the shard's cliques back.
//
// The split uses the same guided ramp-up policy as the in-process parallel
// work queue (core.RampUpChunk): single branches at the expensive head of
// the cost-ordered schedule, growing chunks toward the cheap tail — local
// workers and remote shards consume the same descriptor stream shape, the
// only difference being who pulls it.
package distrib

import (
	"fmt"

	"github.com/graphmining/hbbmc/internal/core"
)

// Descriptor is one serialisable unit of distributed work: execute branch
// schedule positions [Lo, Hi) of the session identified by the other
// fields. A descriptor with Lo == Hi == 0 is the residue-only shard of a
// session whose branch space is empty (reduction cliques and isolated
// vertices still need one executor).
type Descriptor struct {
	// Dataset is the registry name the executing node resolves the graph
	// under; GraphCRC (the .hbg payload CRC-32C, 8 hex digits) is the
	// identity that actually matters — equal CRCs mean byte-identical CSR
	// graphs regardless of the file the node loaded.
	Dataset  string `json:"dataset"`
	GraphCRC string `json:"graph_crc"`
	// SessionKey is the canonical options string (Options.SessionKey): the
	// algorithm-defining fields that shape the cached preprocessing.
	SessionKey string `json:"session_key"`
	// Ordering fingerprints the branch enumeration basis (ordering array +
	// cost schedule, see Session.OrderingFingerprint, 8 hex digits): equal
	// values mean position i names the same top-level branch on both nodes.
	Ordering string `json:"ordering"`
	Lo       int    `json:"lo"`
	Hi       int    `json:"hi"`
}

// FormatCRC renders a fingerprint the way descriptors carry it.
func FormatCRC(crc uint32) string { return fmt.Sprintf("%08x", crc) }

// ForSession builds the descriptor template of a session: the identity
// fields plus the full branch interval [0, NumTopBranches()). Plan splits
// it; WithRange narrows it.
func ForSession(dataset string, s *core.Session) Descriptor {
	return Descriptor{
		Dataset:    dataset,
		GraphCRC:   FormatCRC(s.GraphFingerprint()),
		SessionKey: s.Options().SessionKey(),
		Ordering:   FormatCRC(s.OrderingFingerprint()),
		Lo:         0,
		Hi:         s.NumTopBranches(),
	}
}

// WithRange returns a copy of d narrowed to [lo, hi).
func (d Descriptor) WithRange(lo, hi int) Descriptor {
	d.Lo, d.Hi = lo, hi
	return d
}

// Branches returns the interval width.
func (d Descriptor) Branches() int { return d.Hi - d.Lo }

// Validate checks the interval shape.
func (d Descriptor) Validate() error {
	if d.Lo < 0 || d.Hi < d.Lo {
		return fmt.Errorf("distrib: invalid branch interval [%d,%d)", d.Lo, d.Hi)
	}
	return nil
}

// CompatibleWith reports why a node advertising identity o must not execute
// d (nil when it may). The dataset name is deliberately not compared — it
// is per-node addressing; the fingerprints are the identity.
func (d Descriptor) CompatibleWith(o Descriptor) error {
	if d.GraphCRC != o.GraphCRC {
		return fmt.Errorf("distrib: dataset fingerprint mismatch: descriptor %s, node %s", d.GraphCRC, o.GraphCRC)
	}
	if d.SessionKey != o.SessionKey {
		return fmt.Errorf("distrib: session key mismatch: descriptor %q, node %q", d.SessionKey, o.SessionKey)
	}
	if d.Ordering != o.Ordering {
		return fmt.Errorf("distrib: ordering fingerprint mismatch: descriptor %s, node %s", d.Ordering, o.Ordering)
	}
	return nil
}

// Halve splits d into two non-empty descriptors covering the same interval.
// ok is false when the interval has fewer than two branches — a singleton
// cannot be re-split, only re-dispatched.
func (d Descriptor) Halve() (a, b Descriptor, ok bool) {
	if d.Branches() < 2 {
		return d, d, false
	}
	mid := d.Lo + d.Branches()/2
	return d.WithRange(d.Lo, mid), d.WithRange(mid, d.Hi), true
}

// Plan splits the template's branch interval into dispatchable descriptors
// using the shared guided ramp-up policy: chunks of core.RampUpChunk
// branches (relative to the interval start — single branches at the
// expensive head of the cost-ordered schedule, growing toward the cheap
// tail), capped at maxBranches (0 = no cap) to bound per-shard buffering
// and straggler blast radius. consumers is the number of peers pulling
// shards. An empty template interval yields one residue-only descriptor, so
// the reduction cliques and isolated vertices always have an executor.
func Plan(tmpl Descriptor, consumers, maxBranches int) []Descriptor {
	if tmpl.Branches() <= 0 {
		return []Descriptor{tmpl}
	}
	var out []Descriptor
	for lo := tmpl.Lo; lo < tmpl.Hi; {
		chunk := core.RampUpChunk(lo-tmpl.Lo, tmpl.Hi-lo, consumers)
		if maxBranches > 0 && chunk > maxBranches {
			chunk = maxBranches
		}
		out = append(out, tmpl.WithRange(lo, lo+chunk))
		lo += chunk
	}
	return out
}
