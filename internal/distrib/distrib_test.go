package distrib

import (
	"encoding/json"
	"testing"

	"github.com/graphmining/hbbmc/internal/core"
	"github.com/graphmining/hbbmc/internal/gen"
)

func testTemplate(t *testing.T) (Descriptor, *core.Session) {
	t.Helper()
	g := gen.NoisyCliques(80, 8, 6, 200, 17)
	s, err := core.NewSession(g, core.Options{Algorithm: core.HBBMC, ET: 3, GR: true})
	if err != nil {
		t.Fatal(err)
	}
	return ForSession("test", s), s
}

// TestPlanCoversExactly: any (consumers, cap) combination must tile the
// template interval exactly — no gap, no overlap — with non-decreasing
// chunk sizes up to the cap (the ramp-up shape: small at the expensive
// head, big at the cheap tail).
func TestPlanCoversExactly(t *testing.T) {
	tmpl, _ := testTemplate(t)
	if tmpl.Branches() == 0 {
		t.Fatal("test graph produced no branches")
	}
	for _, consumers := range []int{1, 2, 5} {
		for _, cap := range []int{0, 1, 7, 1 << 14} {
			plan := Plan(tmpl, consumers, cap)
			pos, prev := tmpl.Lo, 0
			for i, d := range plan {
				if d.Lo != pos {
					t.Fatalf("consumers=%d cap=%d: shard %d starts at %d, want %d", consumers, cap, i, d.Lo, pos)
				}
				if d.Branches() < 1 {
					t.Fatalf("consumers=%d cap=%d: empty shard %d", consumers, cap, i)
				}
				if cap > 0 && d.Branches() > cap {
					t.Fatalf("consumers=%d cap=%d: shard %d has %d branches", consumers, cap, i, d.Branches())
				}
				if d.Branches() < prev && (cap == 0 || prev < cap) && d.Hi != tmpl.Hi {
					t.Fatalf("consumers=%d cap=%d: chunk size shrank mid-plan at shard %d (%d after %d)", consumers, cap, i, d.Branches(), prev)
				}
				prev = d.Branches()
				pos = d.Hi
				if err := d.CompatibleWith(tmpl); err != nil {
					t.Fatalf("shard %d incompatible with its own template: %v", i, err)
				}
			}
			if pos != tmpl.Hi {
				t.Fatalf("consumers=%d cap=%d: plan ends at %d, want %d", consumers, cap, pos, tmpl.Hi)
			}
		}
	}
}

// TestPlanMatchesLocalQueue: with no cap, the plan's chunk boundaries are
// exactly what the in-process ramp-up work queue would hand to the same
// number of consumers — the "same descriptor stream" refactor contract.
func TestPlanMatchesLocalQueue(t *testing.T) {
	tmpl, _ := testTemplate(t)
	const consumers = 3
	plan := Plan(tmpl, consumers, 0)
	pos := 0
	for i, d := range plan {
		want := core.RampUpChunk(pos, tmpl.Hi-tmpl.Lo-pos, consumers)
		if d.Branches() != want {
			t.Fatalf("shard %d: %d branches, queue policy says %d", i, d.Branches(), want)
		}
		pos += want
	}
}

func TestPlanEmptyInterval(t *testing.T) {
	tmpl, _ := testTemplate(t)
	empty := tmpl.WithRange(0, 0)
	plan := Plan(empty, 4, 16)
	if len(plan) != 1 || plan[0].Lo != 0 || plan[0].Hi != 0 {
		t.Fatalf("empty interval must yield one residue-only descriptor, got %v", plan)
	}
}

func TestHalve(t *testing.T) {
	tmpl, _ := testTemplate(t)
	d := tmpl.WithRange(10, 17)
	a, b, ok := d.Halve()
	if !ok || a.Lo != 10 || a.Hi != 13 || b.Lo != 13 || b.Hi != 17 {
		t.Fatalf("Halve([10,17)) = %v %v %v", a, b, ok)
	}
	if _, _, ok := tmpl.WithRange(4, 5).Halve(); ok {
		t.Fatal("a singleton interval must not halve")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tmpl, _ := testTemplate(t)
	d := tmpl.WithRange(3, 9)
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Descriptor
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip changed the descriptor: %+v vs %+v", back, d)
	}
}

func TestCompatibleWithDetectsEveryMismatch(t *testing.T) {
	tmpl, _ := testTemplate(t)
	cases := []func(Descriptor) Descriptor{
		func(d Descriptor) Descriptor { d.GraphCRC = "00000000"; return d },
		func(d Descriptor) Descriptor { d.SessionKey = "algo=BK"; return d },
		func(d Descriptor) Descriptor { d.Ordering = "ffffffff"; return d },
	}
	for i, mutate := range cases {
		if err := tmpl.CompatibleWith(mutate(tmpl)); err == nil {
			t.Fatalf("case %d: mismatch not detected", i)
		}
	}
	other := tmpl
	other.Dataset = "renamed"
	if err := tmpl.CompatibleWith(other); err != nil {
		t.Fatalf("dataset name must not participate in identity: %v", err)
	}
	if err := tmpl.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := tmpl.WithRange(5, 2).Validate(); err == nil {
		t.Fatal("inverted interval accepted")
	}
}
