// Package dataset provides deterministic synthetic stand-ins for the 16
// real-world graphs of the paper's Table I. The originals (network
// repository [29]) are not available offline and are far too large for a
// laptop-scale reproduction, so each stand-in is generated at roughly
// 1/40–1/200 scale from a mixture of:
//
//   - a preferential-attachment backbone (heavy-tailed degrees, the social /
//     web shape),
//   - an optional overlapping-clique pool core: many moderate cliques drawn
//     over a small vertex pool. Overlaps stack degrees without stacking
//     pairwise common neighborhoods, driving the degeneracy δ far above the
//     truss parameter τ (the DG/CN/OR shape where HBBMC's condition holds
//     with a wide margin) while staying rich in maximal cliques, as the
//     community cores of real social networks are,
//   - planted cliques (drive τ and give the early-termination technique the
//     dense candidate graphs it exploits; one oversized clique reproduces
//     the WE/DB shape τ = δ−1 where the condition fails),
//   - uniform noise edges (tune the density ρ).
//
// The absolute sizes differ from the paper by design; what the stand-ins
// preserve is the structure the algorithms' relative behaviour depends on:
// the sign of the condition δ ≥ τ + 3lnρ/ln3, the rough δ:τ ratio, and the
// presence/absence of clique-dense regions.
package dataset

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/graphmining/hbbmc/internal/graph"
)

// Spec describes one stand-in dataset.
type Spec struct {
	// Name is the paper's two-letter dataset code (NA, FB, ...).
	Name string
	// LongName is the paper's dataset name (nasasrb, fbwosn, ...).
	LongName string
	// Category mirrors Table I's category column.
	Category string
	// params of the composite generator
	n           int // vertices
	baK         int // backbone edges per arrival (0 = no backbone)
	poolN       int // overlapping-clique pool size (0 = no pool core)
	poolCliques int // cliques drawn over the pool
	poolSize    int // vertices per pool clique
	cliqueCount int // planted cliques
	cliqueSize  int
	bigClique   int // one oversized planted clique (0 = none); yields τ≈δ−1
	noise       int // extra uniform edges
	seed        int64
}

// All returns the 16 stand-ins in the paper's Table I order.
func All() []Spec {
	return []Spec{
		{Name: "NA", LongName: "nasasrb", Category: "Social Network",
			n: 3000, baK: 8, poolN: 110, poolCliques: 34, poolSize: 11, cliqueCount: 40, cliqueSize: 12, noise: 9000, seed: 101},
		{Name: "FB", LongName: "fbwosn", Category: "Social Network",
			n: 3600, baK: 6, poolN: 120, poolCliques: 28, poolSize: 10, cliqueCount: 120, cliqueSize: 10, noise: 7000, seed: 102},
		{Name: "WE", LongName: "websk", Category: "Web Graph",
			n: 5000, baK: 2, bigClique: 36, cliqueCount: 25, cliqueSize: 6, noise: 2500, seed: 103},
		{Name: "WK", LongName: "wikitrust", Category: "Web Graph",
			n: 5200, baK: 3, poolN: 160, poolCliques: 48, poolSize: 12, cliqueCount: 80, cliqueSize: 8, noise: 4000, seed: 104},
		{Name: "SH", LongName: "shipsec5", Category: "Social Network",
			n: 6000, baK: 7, poolN: 130, poolCliques: 30, poolSize: 10, cliqueCount: 120, cliqueSize: 10, noise: 12000, seed: 105},
		{Name: "ST", LongName: "stanford", Category: "Social Network",
			n: 7500, baK: 4, poolN: 170, poolCliques: 55, poolSize: 12, cliqueCount: 150, cliqueSize: 9, noise: 6000, seed: 106},
		{Name: "DB", LongName: "dblp", Category: "Collaboration",
			n: 8000, baK: 2, bigClique: 40, cliqueCount: 300, cliqueSize: 7, noise: 3000, seed: 107},
		{Name: "DE", LongName: "dielfilter", Category: "Other",
			n: 7000, baK: 14, cliqueCount: 90, cliqueSize: 14, noise: 30000, seed: 108},
		{Name: "DG", LongName: "digg", Category: "Social Network",
			n: 10000, baK: 4, poolN: 150, poolCliques: 48, poolSize: 20, cliqueCount: 220, cliqueSize: 9, noise: 9000, seed: 109},
		{Name: "YO", LongName: "youtube", Category: "Social Network",
			n: 11000, baK: 2, poolN: 90, poolCliques: 20, poolSize: 9, cliqueCount: 180, cliqueSize: 7, noise: 6000, seed: 110},
		{Name: "PO", LongName: "pokec", Category: "Social Network",
			n: 12000, baK: 8, poolN: 170, poolCliques: 45, poolSize: 11, cliqueCount: 260, cliqueSize: 10, noise: 26000, seed: 111},
		{Name: "SK", LongName: "skitter", Category: "Web Graph",
			n: 13000, baK: 4, poolN: 170, poolCliques: 55, poolSize: 19, cliqueCount: 280, cliqueSize: 9, noise: 11000, seed: 112},
		{Name: "CN", LongName: "wikicn", Category: "Web Graph",
			n: 13500, baK: 3, poolN: 165, poolCliques: 52, poolSize: 18, cliqueCount: 240, cliqueSize: 8, noise: 9000, seed: 113},
		{Name: "BA", LongName: "baidu", Category: "Web Graph",
			n: 14000, baK: 5, poolN: 210, poolCliques: 70, poolSize: 12, cliqueCount: 260, cliqueSize: 8, noise: 13000, seed: 114},
		{Name: "OR", LongName: "orkut", Category: "Social Network",
			n: 15000, baK: 10, poolN: 175, poolCliques: 60, poolSize: 20, cliqueCount: 300, cliqueSize: 11, noise: 34000, seed: 115},
		{Name: "SO", LongName: "socfba", Category: "Social Network",
			n: 15500, baK: 5, poolN: 140, poolCliques: 32, poolSize: 10, cliqueCount: 320, cliqueSize: 9, noise: 16000, seed: 116},
	}
}

// ByName returns the spec with the given two-letter code.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the dataset codes in Table I order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.Graph{}
)

// Build materialises the stand-in graph. Results are cached per process
// (the benchmark harness builds each dataset many times).
func (s Spec) Build() *graph.Graph {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[s.Name]; ok {
		return g
	}
	g := s.build()
	cache[s.Name] = g
	return g
}

// BuildCached is Build backed by a .hbg snapshot under dir, so repeated
// processes (benchmark runs, CI jobs) skip the generation cost entirely.
// The file name carries a fingerprint of the generator parameters: changing
// a spec invalidates its snapshot instead of serving a stale graph. Both
// the snapshot load and the save are best-effort — on any snapshot problem
// the graph is simply rebuilt — but an unwritable dir reports an error so
// misconfigured cache paths are not silently ignored.
func (s Spec) BuildCached(dir string) (*graph.Graph, error) {
	path := filepath.Join(dir, fmt.Sprintf("%s-%x.hbg", s.Name, s.fingerprint()))
	if g, err := graph.LoadBinaryFile(path); err == nil {
		return g, nil
	}
	g := s.Build()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: cache dir: %w", err)
	}
	if err := g.SaveBinaryFile(path); err != nil {
		return nil, fmt.Errorf("dataset: caching %s: %w", s.Name, err)
	}
	return g, nil
}

// fingerprint hashes every generator parameter of the spec.
func (s Spec) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d", hbgSpecVersion,
		s.n, s.baK, s.poolN, s.poolCliques, s.poolSize,
		s.cliqueCount, s.cliqueSize, s.bigClique, s.noise, s.seed)
	return h.Sum64()
}

// hbgSpecVersion invalidates all dataset snapshots when the generator
// algorithm itself changes (bump on any build() edit).
const hbgSpecVersion = 1

func (s Spec) build() *graph.Graph {
	rng := rand.New(rand.NewSource(s.seed))
	b := graph.NewBuilder(s.n)

	// Preferential-attachment backbone.
	if s.baK > 0 {
		targets := make([]int32, 0, 2*s.baK*s.n)
		for i := 0; i <= s.baK; i++ {
			for j := i + 1; j <= s.baK; j++ {
				b.AddEdge(int32(i), int32(j))
				targets = append(targets, int32(i), int32(j))
			}
		}
		chosen := make(map[int32]bool, s.baK)
		picks := make([]int32, 0, s.baK)
		for v := s.baK + 1; v < s.n; v++ {
			for key := range chosen {
				delete(chosen, key)
			}
			picks = picks[:0]
			for len(picks) < s.baK {
				w := targets[rng.Intn(len(targets))]
				if !chosen[w] {
					chosen[w] = true
					picks = append(picks, w)
				}
			}
			for _, w := range picks {
				b.AddEdge(int32(v), w)
				targets = append(targets, int32(v), w)
			}
		}
	}

	// Overlapping-clique pool core: cliques drawn over a small pool stack
	// degrees (δ grows) while pairwise common neighborhoods stay near the
	// clique size (τ stays small).
	if s.poolN > 0 {
		pool := randomSubset(rng, s.n, s.poolN)
		for c := 0; c < s.poolCliques; c++ {
			members := randomSubset(rng, s.poolN, s.poolSize)
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					b.AddEdge(pool[members[i]], pool[members[j]])
				}
			}
		}
	}

	// One oversized clique: forces τ = δ−1 (the WE/DB shape).
	if s.bigClique > 0 {
		members := randomSubset(rng, s.n, s.bigClique)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b.AddEdge(members[i], members[j])
			}
		}
	}

	// Planted community cliques.
	for c := 0; c < s.cliqueCount; c++ {
		members := randomSubset(rng, s.n, s.cliqueSize)
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b.AddEdge(members[i], members[j])
			}
		}
	}

	// Uniform noise.
	for i := 0; i < s.noise; i++ {
		b.AddEdge(int32(rng.Intn(s.n)), int32(rng.Intn(s.n)))
	}
	return b.MustBuild()
}

func randomSubset(rng *rand.Rand, n, k int) []int32 {
	seen := make(map[int32]bool, k)
	out := make([]int32, 0, k)
	for len(out) < k {
		v := int32(rng.Intn(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("%s(%s)", s.Name, s.LongName)
}
