package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/graphmining/hbbmc/internal/core"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/truss"
)

func TestRegistryShape(t *testing.T) {
	specs := All()
	if len(specs) != 16 {
		t.Fatalf("expected 16 datasets, got %d", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Errorf("duplicate dataset code %s", s.Name)
		}
		seen[s.Name] = true
		if s.LongName == "" || s.Category == "" {
			t.Errorf("%s: missing metadata", s.Name)
		}
	}
	if _, ok := ByName("NA"); !ok {
		t.Error("ByName(NA) should resolve")
	}
	if _, ok := ByName("XX"); ok {
		t.Error("ByName(XX) should not resolve")
	}
	if len(Names()) != 16 {
		t.Error("Names should list 16 codes")
	}
}

func TestBuildDeterministicAndCached(t *testing.T) {
	spec, _ := ByName("NA")
	g1 := spec.Build()
	g2 := spec.Build()
	if g1 != g2 {
		t.Error("Build should cache")
	}
	if err := g1.Validate(); err != nil {
		t.Fatal(err)
	}
	fresh := spec.build()
	if fresh.NumEdges() != g1.NumEdges() || fresh.NumVertices() != g1.NumVertices() {
		t.Error("build must be deterministic")
	}
}

// TestStructuralShapes asserts the Table I properties the experiments rely
// on: sizes increase along the registry, the WE/DB stand-ins violate the
// hybrid condition via τ = δ−1, and the dense-core stand-ins keep τ far
// below δ.
func TestStructuralShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset profiling is slow in short mode")
	}
	type profile struct {
		delta, tau int
	}
	profiles := map[string]profile{}
	for _, s := range All() {
		g := s.Build()
		d := order.DegeneracyOrdering(g).Value
		tau := truss.Decompose(g).Tau
		profiles[s.Name] = profile{d, tau}
		if tau >= d && d > 0 {
			t.Errorf("%s: τ=%d not below δ=%d", s.Name, tau, d)
		}
	}
	// The big-clique stand-ins have τ exactly δ−1.
	for _, name := range []string{"WE", "DB"} {
		p := profiles[name]
		if p.tau != p.delta-1 {
			t.Errorf("%s: want τ=δ−1, got δ=%d τ=%d", name, p.delta, p.tau)
		}
	}
	// The dense-core stand-ins keep a wide δ:τ gap (at least 1.5x).
	for _, name := range []string{"DG", "CN", "OR"} {
		p := profiles[name]
		if float64(p.delta) < 1.5*float64(p.tau) {
			t.Errorf("%s: δ=%d τ=%d — gap too small for a dense-core stand-in", name, p.delta, p.tau)
		}
	}
}

// TestEnumerableQuickly sanity-checks that the smallest stand-in enumerates
// fast and that two engines agree on it.
func TestEnumerableQuickly(t *testing.T) {
	spec, _ := ByName("NA")
	g := spec.Build()
	c1, _, err := core.Count(g, core.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := core.Count(g, core.Options{Algorithm: core.BKDegen, GR: true})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || c1 == 0 {
		t.Fatalf("count mismatch: hbbmc=%d degen=%d", c1, c2)
	}
}

// TestBuildCached verifies the .hbg snapshot cache: a cold call writes the
// snapshot, a warm call serves the identical graph from it, and changed
// generator parameters miss the cache instead of serving a stale graph.
func TestBuildCached(t *testing.T) {
	dir := t.TempDir()
	spec, _ := ByName("NA")

	g1, err := spec.BuildCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("cache dir has %d entries, want 1", len(entries))
	}
	g2, err := spec.BuildCached(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Equal(g1) {
		t.Fatal("cached graph differs from generated graph")
	}

	// A parameter change fingerprints to a different snapshot.
	tweaked := spec
	tweaked.noise++
	if _, err := tweaked.BuildCached(dir); err != nil {
		t.Fatal(err)
	}
	entries, _ = os.ReadDir(dir)
	if len(entries) != 2 {
		t.Fatalf("tweaked spec reused the snapshot (%d entries)", len(entries))
	}

	// An unwritable cache dir is an error, not a silent fallthrough.
	if _, err := spec.BuildCached(filepath.Join(dir, "no", "such", "\x00dir")); err == nil {
		t.Fatal("bad cache dir should error")
	}
}
