// Package reduce implements the graph-reduction technique GR of Deng,
// Zheng & Cheng (VLDB 2024, [15] in the paper): low-degree and simplicial
// vertices are peeled off before branching, the maximal cliques that contain
// them are emitted directly, and enumeration continues on the residual
// graph.
//
// Soundness contract. When a rule removes v it first emits every maximal
// clique of G that contains v and no previously removed vertex (each
// candidate is validated against the ORIGINAL adjacency: its common
// neighborhood must be empty). Inductively, after the fixpoint the maximal
// cliques of G are exactly: the emitted ones, plus the residual-graph
// maximal cliques that no removed vertex dominates. Enumerators check the
// latter condition through HasRemovedDominator before reporting a clique.
package reduce

import (
	"sort"

	"github.com/graphmining/hbbmc/internal/graph"
)

// Options configures the reduction.
type Options struct {
	// MaxDegree is the largest residual degree a vertex may have to be
	// considered for removal. Degrees 0-2 use the exact rules of [15];
	// higher degrees only fire when the vertex is simplicial (its residual
	// neighborhood is a clique). Zero selects the default of 2.
	MaxDegree int
}

// Result is the outcome of a reduction pass.
type Result struct {
	// Residual is the reduced graph with vertices relabelled 0..n'-1.
	Residual *graph.Graph
	// OrigID maps residual ids back to vertices of the input graph.
	OrigID []int32
	// Cliques are the maximal cliques (original ids, sorted) emitted by the
	// reduction rules.
	Cliques [][]int32
	// NumRemoved is the number of vertices peeled off.
	NumRemoved int

	// removedNbrs[r] lists, for residual vertex r, its removed neighbors in
	// the original graph; nil when there are none. Sorted ascending.
	removedNbrs [][]int32
}

// Apply runs the reduction to fixpoint.
func Apply(g *graph.Graph, opts Options) *Result {
	maxDeg := opts.MaxDegree
	if maxDeg <= 0 {
		maxDeg = 2
	}
	n := g.NumVertices()
	alive := make([]bool, n)
	resDeg := make([]int32, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		resDeg[v] = int32(g.Degree(int32(v)))
	}
	inQueue := make([]bool, n)
	var queue []int32
	push := func(v int32) {
		if alive[v] && !inQueue[v] && int(resDeg[v]) <= maxDeg {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}
	for v := int32(0); v < int32(n); v++ {
		push(v)
	}

	res := &Result{}
	aliveNbrs := make([]int32, 0, maxDeg+1)
	kbuf := make([]int32, 0, maxDeg+2)

	emit := func(K []int32) {
		c := append([]int32(nil), K...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		res.Cliques = append(res.Cliques, c)
	}
	remove := func(v int32) {
		alive[v] = false
		res.NumRemoved++
		for _, w := range g.Neighbors(v) {
			if alive[w] {
				resDeg[w]--
				push(w)
			}
		}
	}

	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		inQueue[v] = false
		if !alive[v] || int(resDeg[v]) > maxDeg {
			continue
		}
		aliveNbrs = aliveNbrs[:0]
		for _, w := range g.Neighbors(v) {
			if alive[w] {
				aliveNbrs = append(aliveNbrs, w)
			}
		}
		switch {
		case len(aliveNbrs) == 0:
			if g.Degree(v) == 0 { // isolated in G: {v} is maximal
				emit([]int32{v})
			}
			remove(v)
		case len(aliveNbrs) == 1:
			kbuf = append(kbuf[:0], v, aliveNbrs[0])
			if commonNeighborhoodEmpty(g, kbuf) {
				emit(kbuf)
			}
			remove(v)
		case len(aliveNbrs) == 2 && !g.HasEdge(aliveNbrs[0], aliveNbrs[1]):
			for _, u := range aliveNbrs {
				kbuf = append(kbuf[:0], v, u)
				if commonNeighborhoodEmpty(g, kbuf) {
					emit(kbuf)
				}
			}
			remove(v)
		default:
			// Simplicial rule: residual neighborhood must be a clique.
			if !isClique(g, aliveNbrs) {
				continue
			}
			kbuf = append(kbuf[:0], v)
			kbuf = append(kbuf, aliveNbrs...)
			if commonNeighborhoodEmpty(g, kbuf) {
				emit(kbuf)
			}
			remove(v)
		}
	}

	// Relabel the residual graph.
	newID := make([]int32, n)
	for v := 0; v < n; v++ {
		newID[v] = -1
	}
	for v := 0; v < n; v++ {
		if alive[v] {
			newID[v] = int32(len(res.OrigID))
			res.OrigID = append(res.OrigID, int32(v))
		}
	}
	b := graph.NewBuilder(len(res.OrigID))
	res.removedNbrs = make([][]int32, len(res.OrigID))
	for r, v := range res.OrigID {
		for _, w := range g.Neighbors(v) {
			if alive[w] {
				if newID[w] > int32(r) {
					b.AddEdge(int32(r), newID[w])
				}
			} else {
				res.removedNbrs[r] = append(res.removedNbrs[r], w)
			}
		}
	}
	res.Residual = b.MustBuild()
	return res
}

// isClique reports whether the given original-graph vertices are pairwise
// adjacent.
func isClique(g *graph.Graph, vs []int32) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// commonNeighborhoodEmpty reports whether no vertex of g (alive or removed)
// is adjacent to every vertex of K, i.e. K is maximal in the original graph.
func commonNeighborhoodEmpty(g *graph.Graph, K []int32) bool {
	// Scan the members' smallest adjacency list.
	min := 0
	for i := 1; i < len(K); i++ {
		if g.Degree(K[i]) < g.Degree(K[min]) {
			min = i
		}
	}
	for _, z := range g.Neighbors(K[min]) {
		inK := false
		for _, u := range K {
			if u == z {
				inK = true
				break
			}
		}
		if inK {
			continue
		}
		dominates := true
		for _, u := range K {
			if u != K[min] && !g.HasEdge(z, u) {
				dominates = false
				break
			}
		}
		if dominates {
			return false
		}
	}
	return true
}

// HasRemovedDominator reports whether some removed vertex is adjacent to
// every vertex of the residual clique K (residual ids). Such a clique is
// maximal in the residual graph but not in the original one, so enumerators
// must suppress it.
func (r *Result) HasRemovedDominator(K []int32) bool {
	if len(K) == 0 {
		return r.NumRemoved > 0
	}
	// Start with the shortest removed-neighbor list; an untainted member
	// settles the question immediately.
	min := -1
	for _, v := range K {
		if r.removedNbrs[v] == nil {
			return false
		}
		if min < 0 || len(r.removedNbrs[v]) < len(r.removedNbrs[min]) {
			min = int(v)
		}
	}
	for _, z := range r.removedNbrs[min] {
		inAll := true
		for _, v := range K {
			if int(v) == min {
				continue
			}
			if !containsSorted(r.removedNbrs[v], z) {
				inAll = false
				break
			}
		}
		if inAll {
			return true
		}
	}
	return false
}

// MemoryFootprint returns the number of bytes retained by the reduction
// artifacts beyond the residual graph itself: the id mapping, the emitted
// cliques and the removed-neighbor lists. The residual graph is excluded so
// callers can combine this with Graph.MemoryFootprint without double
// counting.
func (r *Result) MemoryFootprint() int64 {
	b := int64(len(r.OrigID)) * 4
	for _, c := range r.Cliques {
		b += int64(len(c))*4 + 24 // data + slice header
	}
	b += int64(len(r.removedNbrs)) * 24
	for _, nb := range r.removedNbrs {
		b += int64(len(nb)) * 4
	}
	return b
}

func containsSorted(xs []int32, x int32) bool {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= x })
	return i < len(xs) && xs[i] == x
}

// Identity returns a no-op Result for g: nothing removed, residual == g.
// Enumerators use it when reduction is disabled so that downstream code has
// a single shape to handle.
func Identity(g *graph.Graph) *Result {
	n := g.NumVertices()
	orig := make([]int32, n)
	for v := range orig {
		orig[v] = int32(v)
	}
	return &Result{
		Residual:    g,
		OrigID:      orig,
		removedNbrs: make([][]int32, n),
	}
}
