package reduce

import (
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/graph"
)

// TestApplyReachesFixpoint: re-applying the reduction to a residual graph
// must remove nothing further (the queue-driven pass already reached the
// fixpoint).
func TestApplyReachesFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(3*n))
		for _, maxDeg := range []int{2, 4} {
			r1 := Apply(g, Options{MaxDegree: maxDeg})
			r2 := Apply(r1.Residual, Options{MaxDegree: maxDeg})
			if r2.NumRemoved != 0 {
				t.Fatalf("iter %d maxDeg %d: second pass removed %d vertices",
					iter, maxDeg, r2.NumRemoved)
			}
			if len(r2.Cliques) != 0 {
				t.Fatalf("iter %d: second pass emitted %d cliques", iter, len(r2.Cliques))
			}
		}
	}
}

// TestReductionCliquesAreMaximalInOriginal: every clique a rule emits must
// be a maximal clique of the ORIGINAL graph, not merely of some residual.
func TestReductionCliquesAreMaximalInOriginal(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(50)
		g := randomGraph(rng, n, rng.Intn(4*n))
		r := Apply(g, Options{MaxDegree: 5})
		for _, c := range r.Cliques {
			if !g.IsClique(c) {
				t.Fatalf("iter %d: emitted set %v is not a clique", iter, c)
			}
			if ext := findExtensionIn(g, c); ext >= 0 {
				t.Fatalf("iter %d: emitted clique %v extendable by %d", iter, c, ext)
			}
		}
	}
}

func findExtensionIn(g *graph.Graph, c []int32) int32 {
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		in := false
		for _, u := range c {
			if u == v {
				in = true
				break
			}
		}
		if in {
			continue
		}
		all := true
		for _, u := range c {
			if !g.HasEdge(v, u) {
				all = false
				break
			}
		}
		if all {
			return v
		}
	}
	return -1
}

// TestResidualMappingIsInjective: the residual relabelling must be a
// bijection onto the surviving vertices, with consistent adjacency.
func TestResidualMappingIsInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := randomGraph(rng, 80, 200)
	r := Apply(g, Options{})
	seen := map[int32]bool{}
	for _, orig := range r.OrigID {
		if seen[orig] {
			t.Fatalf("vertex %d mapped twice", orig)
		}
		seen[orig] = true
	}
	if r.Residual.NumVertices()+r.NumRemoved != g.NumVertices() {
		t.Fatalf("vertex accounting: %d residual + %d removed != %d",
			r.Residual.NumVertices(), r.NumRemoved, g.NumVertices())
	}
	// Residual edges must exist in the original graph.
	for e := 0; e < r.Residual.NumEdges(); e++ {
		u, v := r.Residual.EdgeEndpoints(int32(e))
		if !g.HasEdge(r.OrigID[u], r.OrigID[v]) {
			t.Fatalf("residual edge (%d,%d) missing in original", u, v)
		}
	}
}
