package reduce

import (
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/verify"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

// allCliquesVia reconstructs the complete maximal-clique set from a
// reduction result: rule outputs plus filtered residual cliques.
func allCliquesVia(r *Result) [][]int32 {
	out := append([][]int32(nil), r.Cliques...)
	for _, c := range verify.MaximalCliques(r.Residual) {
		if len(c) == 0 {
			// The empty residual graph reports one empty clique; it is only
			// a real clique when the original graph was empty too.
			if len(r.OrigID) == 0 && r.NumRemoved == 0 {
				out = append(out, nil)
			}
			continue
		}
		if r.HasRemovedDominator(c) {
			continue
		}
		mapped := make([]int32, len(c))
		for i, v := range c {
			mapped[i] = r.OrigID[v]
		}
		out = append(out, mapped)
	}
	return out
}

func TestApplyIsolatedVertices(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	r := Apply(g, Options{})
	if r.NumRemoved != 3 || len(r.Cliques) != 3 {
		t.Fatalf("removed=%d cliques=%d, want 3/3", r.NumRemoved, len(r.Cliques))
	}
	if r.Residual.NumVertices() != 0 {
		t.Fatalf("residual should be empty, has %d vertices", r.Residual.NumVertices())
	}
}

func TestApplyPath(t *testing.T) {
	// Path 0-1-2: reduction alone must yield {0,1} and {1,2}.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.MustBuild()
	r := Apply(g, Options{})
	if d := verify.Diff(r.Cliques, [][]int32{{0, 1}, {1, 2}}); d != "" {
		t.Fatalf("path reduction: %s", d)
	}
	if r.Residual.NumVertices() != 0 {
		t.Fatal("path should reduce away entirely")
	}
}

func TestApplyTriangleSimplicial(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.MustBuild()
	r := Apply(g, Options{})
	if d := verify.Diff(r.Cliques, [][]int32{{0, 1, 2}}); d != "" {
		t.Fatalf("triangle: %s", d)
	}
	if r.Residual.NumVertices() != 0 {
		t.Fatal("triangle should reduce away entirely")
	}
}

func TestApplyDegTwoNonAdjacent(t *testing.T) {
	// Star: 0 connected to 1 and 2 only, 1-2 not adjacent.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.MustBuild()
	r := Apply(g, Options{})
	if d := verify.Diff(allCliquesVia(r), [][]int32{{0, 1}, {0, 2}}); d != "" {
		t.Fatalf("deg-2 non-adjacent: %s", d)
	}
}

func TestRemovedDominatorSuppression(t *testing.T) {
	// Triangle with pendant: 0-1-2 triangle, 3 attached to 2. Reduction at 3
	// (degree 1) outputs {2,3}; reducing vertex 0 (simplicial) outputs
	// {0,1,2}; the residual edge 1-2 must then be suppressed.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	r := Apply(g, Options{})
	got := allCliquesVia(r)
	want := verify.MaximalCliques(g)
	if d := verify.Diff(got, want); d != "" {
		t.Fatalf("triangle+pendant: %s", d)
	}
}

func TestIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomGraph(rng, 20, 50)
	r := Identity(g)
	if r.NumRemoved != 0 || len(r.Cliques) != 0 {
		t.Fatal("identity should remove nothing")
	}
	if r.Residual != g {
		t.Fatal("identity residual should be the input graph")
	}
	if r.HasRemovedDominator([]int32{0}) {
		t.Fatal("identity has no removed dominators")
	}
	for v := int32(0); v < 20; v++ {
		if r.OrigID[v] != v {
			t.Fatal("identity mapping must be identity")
		}
	}
}

func TestApplySoundOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(3*n))
		for _, maxDeg := range []int{2, 5} {
			r := Apply(g, Options{MaxDegree: maxDeg})
			got := allCliquesVia(r)
			want := verify.MaximalCliques(g)
			if d := verify.Diff(got, want); d != "" {
				t.Fatalf("iter %d maxDeg %d (n=%d m=%d): %s", iter, maxDeg, n, g.NumEdges(), d)
			}
		}
	}
}

func TestApplyReducesTrees(t *testing.T) {
	// Any tree reduces away entirely under degree-1 peeling.
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 20; iter++ {
		n := 2 + rng.Intn(50)
		b := graph.NewBuilder(n)
		for v := 1; v < n; v++ {
			b.AddEdge(int32(v), int32(rng.Intn(v)))
		}
		g := b.MustBuild()
		r := Apply(g, Options{})
		if r.Residual.NumVertices() != 0 {
			t.Fatalf("tree left %d residual vertices", r.Residual.NumVertices())
		}
		if len(r.Cliques) != n-1 {
			t.Fatalf("tree with %d vertices must emit %d edges, got %d", n, n-1, len(r.Cliques))
		}
	}
}

func TestApplyKeepsDenseCore(t *testing.T) {
	// K5 with a pendant path: the path reduces, K5 survives when MaxDegree=2
	// (its vertices have degree ≥ 4 and are not considered).
	b := graph.NewBuilder(7)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g := b.MustBuild()
	r := Apply(g, Options{MaxDegree: 2})
	if r.Residual.NumVertices() != 5 {
		t.Fatalf("K5 core should survive, residual has %d vertices", r.Residual.NumVertices())
	}
	got := allCliquesVia(r)
	if d := verify.Diff(got, verify.MaximalCliques(g)); d != "" {
		t.Fatalf("K5+path: %s", d)
	}
	// With a higher cap the simplicial rule consumes K5 too.
	r2 := Apply(g, Options{MaxDegree: 6})
	if r2.Residual.NumVertices() != 0 {
		t.Fatalf("simplicial rule should consume K5, %d left", r2.Residual.NumVertices())
	}
}
