package gen

import (
	"fmt"
	"strings"

	"testing"

	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/truss"
	"github.com/graphmining/hbbmc/internal/verify"
)

func TestERBasics(t *testing.T) {
	g := ER(100, 300, 1)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() != 300 {
		t.Fatalf("m = %d, want exactly 300 (sampling without replacement)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestERDeterministic(t *testing.T) {
	a, b := ER(50, 120, 7), ER(50, 120, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	for e := 0; e < a.NumEdges(); e++ {
		u1, v1 := a.EdgeEndpoints(int32(e))
		if !b.HasEdge(u1, v1) {
			t.Fatal("same seed must give same edge set")
		}
	}
	c := ER(50, 120, 8)
	diff := 0
	for e := 0; e < a.NumEdges(); e++ {
		u, v := a.EdgeEndpoints(int32(e))
		if !c.HasEdge(u, v) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds should give different graphs")
	}
}

func TestEROverfullBecomesComplete(t *testing.T) {
	g := ER(5, 100, 1)
	if g.NumEdges() != 10 {
		t.Fatalf("m = %d, want 10 (K5)", g.NumEdges())
	}
}

func TestBABasics(t *testing.T) {
	g := BA(200, 3, 2)
	if g.NumVertices() != 200 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Each of the n-k-1 arrivals adds exactly k edges to the seed clique.
	want := (3*4)/2 + (200-4)*3
	if g.NumEdges() != want {
		t.Fatalf("m = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Preferential attachment produces a heavy tail: the max degree should
	// be well above the mean.
	mean := 2 * float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 3*mean {
		t.Errorf("BA max degree %d not heavy-tailed (mean %.1f)", g.MaxDegree(), mean)
	}
}

func TestBASmall(t *testing.T) {
	g := BA(3, 5, 1) // n <= k+1 collapses to a clique
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3", g.NumEdges())
	}
}

func TestMoonMoserCliqueCount(t *testing.T) {
	for s := 1; s <= 4; s++ {
		g := MoonMoser(s)
		got := len(verify.MaximalCliques(g))
		want := 1
		for i := 0; i < s; i++ {
			want *= 3
		}
		if got != want {
			t.Errorf("MoonMoser(%d): %d maximal cliques, want %d", s, got, want)
		}
	}
}

func TestShapes(t *testing.T) {
	if g := Complete(6); g.NumEdges() != 15 {
		t.Error("K6 should have 15 edges")
	}
	if g := Path(5); g.NumEdges() != 4 {
		t.Error("P5 should have 4 edges")
	}
	if g := Cycle(5); g.NumEdges() != 5 {
		t.Error("C5 should have 5 edges")
	}
	if g := Cycle(1); g.NumEdges() != 0 {
		t.Error("C1 should be empty")
	}
	if g := Star(5); g.NumEdges() != 4 || g.Degree(0) != 4 {
		t.Error("Star(5) malformed")
	}
}

func TestSBMCommunityStructure(t *testing.T) {
	g := SBM(SBMConfig{Communities: 4, Size: 25, PIn: 0.5, POut: 0.01}, 3)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	intra, inter := 0, 0
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.EdgeEndpoints(int32(e))
		if u/25 == v/25 {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter {
		t.Errorf("SBM should be assortative: intra=%d inter=%d", intra, inter)
	}
}

func TestNoisyCliquesContainPlantedCliques(t *testing.T) {
	g := NoisyCliques(60, 5, 8, 30, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// A graph with planted 8-cliques has degeneracy at least 7.
	if d := order.DegeneracyOrdering(g).Value; d < 7 {
		t.Errorf("degeneracy %d < 7 despite planted 8-cliques", d)
	}
}

func TestPowerLawClusterRaisesClustering(t *testing.T) {
	flat := BA(300, 4, 5)
	clustered := PowerLawCluster(300, 4, 0.9, 5)
	if err := clustered.Validate(); err != nil {
		t.Fatal(err)
	}
	tf := truss.CountTriangles(flat)
	tc := truss.CountTriangles(clustered)
	if tc <= tf {
		t.Errorf("triangle closing should add triangles: flat=%d clustered=%d", tf, tc)
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	fingerprint := func(g *graph.Graph) string {
		var b strings.Builder
		for e := 0; e < g.NumEdges(); e++ {
			u, v := g.EdgeEndpoints(int32(e))
			fmt.Fprintf(&b, "%d-%d;", u, v)
		}
		return b.String()
	}
	for name, mk := range map[string]func() *graph.Graph{
		"ER":    func() *graph.Graph { return ER(100, 300, 9) },
		"BA":    func() *graph.Graph { return BA(100, 3, 9) },
		"SBM":   func() *graph.Graph { return SBM(SBMConfig{2, 30, 0.4, 0.02}, 9) },
		"Noisy": func() *graph.Graph { return NoisyCliques(50, 4, 6, 20, 9) },
		"PLC":   func() *graph.Graph { return PowerLawCluster(100, 3, 0.5, 9) },
	} {
		if fingerprint(mk()) != fingerprint(mk()) {
			t.Errorf("%s: edge set not deterministic", name)
		}
	}
}
