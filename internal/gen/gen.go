// Package gen builds the synthetic graphs used throughout the test and
// benchmark suites: the Erdős–Rényi and Barabási–Albert models of the
// paper's Appendix D, the Moon–Moser worst-case family, planted-community
// graphs standing in for the paper's real social networks, and assorted
// deterministic shapes. All generators are deterministic in their seed.
package gen

import (
	"math/rand"

	"github.com/graphmining/hbbmc/internal/graph"
)

// ER samples an Erdős–Rényi G(n, m) graph: m edges drawn uniformly without
// replacement (self-loops rejected). When m exceeds the number of possible
// edges the complete graph is returned.
func ER(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) >= maxM {
		return Complete(n)
	}
	b := graph.NewBuilder(n)
	seen := make(map[int64]bool, m)
	for added := 0; added < m; {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(int32(u), int32(v))
		added++
	}
	return b.MustBuild()
}

// BA grows a Barabási–Albert preferential-attachment graph: vertices arrive
// one at a time and connect to k distinct existing vertices chosen with
// probability proportional to degree. The first k+1 vertices form a clique
// seed.
func BA(n, k int, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n <= k+1 {
		return Complete(n)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Repeated-endpoint list: choosing uniformly from it is degree-
	// proportional sampling.
	targets := make([]int32, 0, 2*k*n)
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddEdge(int32(i), int32(j))
			targets = append(targets, int32(i), int32(j))
		}
	}
	chosen := make(map[int32]bool, k)
	picks := make([]int32, 0, k)
	for v := k + 1; v < n; v++ {
		for key := range chosen {
			delete(chosen, key)
		}
		picks = picks[:0]
		for len(picks) < k {
			w := targets[rng.Intn(len(targets))]
			if !chosen[w] {
				chosen[w] = true
				picks = append(picks, w)
			}
		}
		for _, w := range picks {
			b.AddEdge(int32(v), w)
			targets = append(targets, int32(v), w)
		}
	}
	return b.MustBuild()
}

// MoonMoser returns the complete s-partite graph with parts of size 3
// (K_{3,3,...,3}), the extremal family with exactly 3^s maximal cliques.
func MoonMoser(s int) *graph.Graph {
	n := 3 * s
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i/3 != j/3 {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.MustBuild()
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.MustBuild()
}

// Path returns the path graph on n vertices.
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph on n vertices (n ≥ 3 for a proper cycle).
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	if n >= 2 {
		for i := 0; i < n; i++ {
			b.AddEdge(int32(i), int32((i+1)%n))
		}
	}
	return b.MustBuild()
}

// Star returns the star graph with one hub and n-1 leaves.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.MustBuild()
}

// SBMConfig configures a planted-partition (stochastic block model) graph.
type SBMConfig struct {
	Communities int     // number of blocks
	Size        int     // vertices per block
	PIn         float64 // intra-block edge probability
	POut        float64 // inter-block edge probability
}

// SBM samples a stochastic block model graph. Communities are the vertex
// ranges [i*Size, (i+1)*Size).
func SBM(cfg SBMConfig, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Communities * cfg.Size
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := cfg.POut
			if i/cfg.Size == j/cfg.Size {
				p = cfg.PIn
			}
			if rng.Float64() < p {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.MustBuild()
}

// NoisyCliques plants `count` cliques of the given size over n vertices
// (vertices drawn at random, so cliques may overlap) and adds `noise`
// random edges. The result is rich in dense t-plex regions, the structure
// the early-termination technique exploits.
func NoisyCliques(n, count, size, noise int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	members := make([]int32, 0, size)
	for c := 0; c < count; c++ {
		members = members[:0]
		for len(members) < size {
			v := int32(rng.Intn(n))
			dup := false
			for _, u := range members {
				if u == v {
					dup = true
					break
				}
			}
			if !dup {
				members = append(members, v)
			}
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				b.AddEdge(members[i], members[j])
			}
		}
	}
	for i := 0; i < noise; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

// PowerLawCluster grows a BA-style graph with an extra triangle-closing
// step (Holme–Kim model): after each preferential attachment, with
// probability p the next link closes a triangle with a random neighbor of
// the previous target. High p raises the clustering coefficient, which
// raises τ relative to δ.
func PowerLawCluster(n, k int, p float64, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	if n <= k+1 {
		return Complete(n)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	targets := make([]int32, 0, 2*k*n)
	adj := make([][]int32, n)
	addEdge := func(u, v int32) {
		b.AddEdge(u, v)
		targets = append(targets, u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			addEdge(int32(i), int32(j))
		}
	}
	chosen := make(map[int32]bool, k)
	picks := make([]int32, 0, k)
	for v := k + 1; v < n; v++ {
		for key := range chosen {
			delete(chosen, key)
		}
		picks = picks[:0]
		var last int32 = -1
		for len(picks) < k {
			var w int32
			if last >= 0 && rng.Float64() < p && len(adj[last]) > 0 {
				w = adj[last][rng.Intn(len(adj[last]))]
			} else {
				w = targets[rng.Intn(len(targets))]
			}
			if w == int32(v) || chosen[w] {
				last = -1
				continue
			}
			chosen[w] = true
			picks = append(picks, w)
			last = w
		}
		for _, w := range picks {
			addEdge(int32(v), w)
		}
	}
	return b.MustBuild()
}
