// Package benchharness regenerates the paper's experimental tables and
// figures (Tables I–VI, Figure 5) on the synthetic stand-in datasets.
//
// Every run doubles as a correctness check: all algorithm configurations in
// a table must report identical clique counts per dataset, otherwise the
// harness returns an error instead of a table.
package benchharness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/graphmining/hbbmc/internal/core"
	"github.com/graphmining/hbbmc/internal/dataset"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/truss"
)

// Config controls a harness run.
type Config struct {
	// Datasets restricts the run to the given Table I codes (nil = all 16).
	Datasets []string
	// Reps is the number of timing repetitions per cell; the minimum is
	// reported. 0 = 1.
	Reps int
	// Workers runs every cell through the parallel driver with this many
	// worker goroutines. 0 or 1 = sequential (the paper's setting).
	Workers int
	// JSON, when non-nil, receives one machine-readable JSON line per timed
	// run (see runRecord) in addition to the rendered tables.
	JSON io.Writer
	// CacheDir, when non-empty, backs dataset construction with .hbg
	// snapshots in that directory (dataset.Spec.BuildCached), so repeated
	// harness processes skip the synthetic generation entirely.
	CacheDir string
}

// buildSpec materialises one dataset, through the snapshot cache when
// configured.
func (c Config) buildSpec(s dataset.Spec) (*graph.Graph, error) {
	if c.CacheDir == "" {
		return s.Build(), nil
	}
	return s.BuildCached(c.CacheDir)
}

// runRecord is the JSON line emitted per timed run when Config.JSON (or
// FigureConfig.JSON) is set.
type runRecord struct {
	Dataset string      `json:"dataset"`
	Config  string      `json:"config"`
	Rep     int         `json:"rep"`
	Seconds float64     `json:"seconds"`
	Stats   *core.Stats `json:"stats"`
}

func writeRecord(w io.Writer, rec runRecord) {
	if w == nil {
		return
	}
	// Encode errors (closed pipe etc.) must not abort the experiment; the
	// tables remain authoritative.
	_ = json.NewEncoder(w).Encode(rec)
}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 1
	}
	return c.Reps
}

func (c Config) specs() ([]dataset.Spec, error) {
	names := c.Datasets
	if len(names) == 0 {
		names = dataset.Names()
	}
	specs := make([]dataset.Spec, 0, len(names))
	for _, n := range names {
		s, ok := dataset.ByName(n)
		if !ok {
			return nil, fmt.Errorf("benchharness: unknown dataset %q", n)
		}
		specs = append(specs, s)
	}
	return specs, nil
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title))); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// cell is one timed algorithm run.
type cell struct {
	seconds float64
	stats   *core.Stats
}

// run times one cold session query (NewSession + Count, so the timing
// still covers preprocessing as the paper's measurements do), repeating
// reps times and keeping the fastest run (standard benchmarking practice
// for cold-cache noise). workers > 1 folds into Options.Workers and runs
// the parallel driver. Each repetition is reported to jsonw when set.
func run(g *graph.Graph, opts core.Options, reps, workers int, jsonw io.Writer, ds, config string) (cell, error) {
	best := cell{seconds: math.Inf(1)}
	opts.Workers = workers
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		sess, err := core.NewSession(g, opts)
		if err != nil {
			return cell{}, err
		}
		_, stats, err := sess.Count(context.Background())
		if err != nil {
			return cell{}, err
		}
		// The cell timing is end-to-end; expose the split through the
		// stats so the JSON stream stays self-describing.
		stats.OrderingTime = sess.PrepTime()
		sec := time.Since(t0).Seconds()
		writeRecord(jsonw, runRecord{Dataset: ds, Config: config, Rep: i, Seconds: sec, Stats: stats})
		if sec < best.seconds {
			best = cell{seconds: sec, stats: stats}
		}
	}
	return best, nil
}

// runQuery is run for the session's non-enumeration workloads: it times one
// cold query (NewSession + the supplied query, so the timing covers
// preprocessing like every other cell), repeating reps times and keeping
// the fastest run.
func runQuery(g *graph.Graph, opts core.Options, reps, workers int, jsonw io.Writer, ds, config string,
	query func(*core.Session) (*core.Stats, error)) (cell, error) {
	best := cell{seconds: math.Inf(1)}
	opts.Workers = workers
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		sess, err := core.NewSession(g, opts)
		if err != nil {
			return cell{}, err
		}
		stats, err := query(sess)
		if err != nil {
			return cell{}, err
		}
		stats.OrderingTime = sess.PrepTime()
		sec := time.Since(t0).Seconds()
		writeRecord(jsonw, runRecord{Dataset: ds, Config: config, Rep: i, Seconds: sec, Stats: stats})
		if sec < best.seconds {
			best = cell{seconds: sec, stats: stats}
		}
	}
	return best, nil
}

// namedOption pairs a column label with an algorithm configuration.
type namedOption struct {
	name string
	opts core.Options
}

// paper-named configurations
func hbbmcPP() core.Options { return core.Options{Algorithm: core.HBBMC, ET: 3, GR: true} }
func hbbmcP() core.Options  { return core.Options{Algorithm: core.HBBMC, ET: 0, GR: true} }
func rRef() core.Options    { return core.Options{Algorithm: core.BKRef, GR: true} }
func rDegen() core.Options  { return core.Options{Algorithm: core.BKDegen, GR: true} }
func rRcd() core.Options    { return core.Options{Algorithm: core.BKRcd, GR: true} }
func rFac() core.Options    { return core.Options{Algorithm: core.BKFac, GR: true} }

// runGrid times each configuration on each dataset, verifying that all
// configurations agree on the clique count.
func runGrid(cfg Config, options []namedOption, mkRow func(ds string, cells []cell) []string) (*Table, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	table := &Table{}
	for _, spec := range specs {
		g, err := cfg.buildSpec(spec)
		if err != nil {
			return nil, err
		}
		cells := make([]cell, len(options))
		for i, opt := range options {
			c, err := run(g, opt.opts, cfg.reps(), cfg.Workers, cfg.JSON, spec.Name, opt.name)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %v", spec.Name, opt.name, err)
			}
			cells[i] = c
			if i > 0 && c.stats.Cliques != cells[0].stats.Cliques {
				return nil, fmt.Errorf("%s: %s found %d cliques but %s found %d",
					spec.Name, opt.name, c.stats.Cliques, options[0].name, cells[0].stats.Cliques)
			}
		}
		table.Rows = append(table.Rows, mkRow(spec.Name, cells))
	}
	return table, nil
}

func secs(s float64) string { return fmt.Sprintf("%.3f", s) }
func calls(n int64) string  { return humanCount(n) }
func humanCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.0fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// Table1 reports the dataset statistics of the stand-ins (paper Table I)
// plus the hybrid-condition verdict discussed in Section III-C.
func Table1(cfg Config) (*Table, error) {
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table I: dataset statistics (synthetic stand-ins)",
		Header: []string{"Graph", "Category", "|V|", "|E|", "δ", "τ", "ρ", "δ≥τ+3lnρ/ln3"},
		Notes: []string{
			"stand-ins for the network-repository graphs; see DESIGN.md §4 for the substitution rationale",
		},
	}
	for _, spec := range specs {
		g, err := cfg.buildSpec(spec)
		if err != nil {
			return nil, err
		}
		delta := order.DegeneracyOrdering(g).Value
		tau := truss.Decompose(g).Tau
		rho := g.Density()
		threshold := float64(tau) + 3*math.Log(rho)/math.Log(3)
		holds := float64(delta) >= math.Max(3, threshold)
		t.Rows = append(t.Rows, []string{
			spec.Name, spec.Category,
			fmt.Sprintf("%d", g.NumVertices()), fmt.Sprintf("%d", g.NumEdges()),
			fmt.Sprintf("%d", delta), fmt.Sprintf("%d", tau), fmt.Sprintf("%.1f", rho),
			fmt.Sprintf("%v", holds),
		})
	}
	return t, nil
}

// Table2 compares HBBMC++ with the four state-of-the-art baselines of [15]
// (paper Table II; unit: seconds).
func Table2(cfg Config) (*Table, error) {
	options := []namedOption{
		{"HBBMC++", hbbmcPP()},
		{"RRef", rRef()},
		{"RDegen", rDegen()},
		{"RRcd", rRcd()},
		{"RFac", rFac()},
	}
	t, err := runGrid(cfg, options, func(ds string, cells []cell) []string {
		row := []string{ds}
		for _, c := range cells {
			row = append(row, secs(c.seconds))
		}
		return row
	})
	if err != nil {
		return nil, err
	}
	t.Title = "Table II: comparison with baselines (unit: second)"
	t.Header = []string{"Graph", "HBBMC++", "RRef", "RDegen", "RRcd", "RFac"}
	return t, nil
}

// Table3 is the ablation study plus the hybrid-inner-engine comparison
// (paper Table III): HBBMC++ vs HBBMC+ (no ET) vs RDegen, and the hybrid
// with Ref/Rcd/Fac inner recursions.
func Table3(cfg Config) (*Table, error) {
	refPP := core.Options{Algorithm: core.HBBMC, Inner: core.InnerRef, ET: 3, GR: true}
	rcdPP := core.Options{Algorithm: core.HBBMC, Inner: core.InnerRcd, ET: 3, GR: true}
	facPP := core.Options{Algorithm: core.HBBMC, Inner: core.InnerFac, ET: 3, GR: true}
	options := []namedOption{
		{"HBBMC++", hbbmcPP()},
		{"HBBMC+", hbbmcP()},
		{"RDegen", rDegen()},
		{"Ref++", refPP},
		{"Rcd++", rcdPP},
		{"Fac++", facPP},
	}
	t, err := runGrid(cfg, options, func(ds string, cells []cell) []string {
		row := []string{ds}
		for _, c := range cells {
			row = append(row, secs(c.seconds))
		}
		return row
	})
	if err != nil {
		return nil, err
	}
	t.Title = "Table III: ablation and hybrid inner-engine variants (unit: second)"
	t.Header = []string{"Graph", "HBBMC++", "HBBMC+", "RDegen", "Ref++", "Rcd++", "Fac++"}
	return t, nil
}

// Table4 varies the depth d at which HBBMC switches from edge-oriented to
// vertex-oriented branching (paper Table IV): time and #Calls per d.
func Table4(cfg Config) (*Table, error) {
	var options []namedOption
	for d := 1; d <= 3; d++ {
		opts := hbbmcPP()
		opts.SwitchDepth = d
		options = append(options, namedOption{fmt.Sprintf("d=%d", d), opts})
	}
	t, err := runGrid(cfg, options, func(ds string, cells []cell) []string {
		row := []string{ds}
		for _, c := range cells {
			row = append(row, secs(c.seconds), calls(c.stats.Calls))
		}
		return row
	})
	if err != nil {
		return nil, err
	}
	t.Title = "Table IV: effect of the edge→vertex switch depth d"
	t.Header = []string{"Graph", "d=1 Time(s)", "d=1 #Calls", "d=2 Time(s)", "d=2 #Calls", "d=3 Time(s)", "d=3 #Calls"}
	return t, nil
}

// Table5 varies the early-termination threshold t (paper Table V): time,
// #Calls, and the ratio b0/b for t in 0..3 (t=0 disables ET).
func Table5(cfg Config) (*Table, error) {
	var options []namedOption
	for tt := 0; tt <= 3; tt++ {
		opts := hbbmcPP()
		opts.ET = tt
		options = append(options, namedOption{fmt.Sprintf("t=%d", tt), opts})
	}
	t, err := runGrid(cfg, options, func(ds string, cells []cell) []string {
		row := []string{ds}
		for i, c := range cells {
			row = append(row, secs(c.seconds), calls(c.stats.VertexCalls))
			if i > 0 {
				row = append(row, fmt.Sprintf("%.2f%%", 100*c.stats.ETRatio()))
			}
		}
		return row
	})
	if err != nil {
		return nil, err
	}
	t.Title = "Table V: effect of the early-termination threshold t (ratio = b0/b)"
	t.Header = []string{"Graph",
		"t=0 Time(s)", "t=0 #Calls",
		"t=1 Time(s)", "t=1 #Calls", "t=1 Ratio",
		"t=2 Time(s)", "t=2 #Calls", "t=2 Ratio",
		"t=3 Time(s)", "t=3 #Calls", "t=3 Ratio"}
	return t, nil
}

// Table7 times the session's non-enumeration workloads (not a paper table;
// it gates the job-type diversity work): the exact maximum-clique solver,
// the top-10 largest maximal cliques, and 5-clique counting, all on the
// HBBMC++ configuration. The cells cross-check each other — the BnB witness
// size and the size of the first top-k clique must both equal ω.
func Table7(cfg Config) (*Table, error) {
	const topK, kCount = 10, 5
	specs, err := cfg.specs()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table VII: session workload queries (unit: second)",
		Header: []string{"Graph", "MaxClique(s)", "ω", "BnB", "Top-10(s)", "Count-5(s)", "#5-cliques"},
		Notes: []string{
			fmt.Sprintf("MaxClique = exact BnB witness, Top-10 = %d largest maximal cliques, Count-5 = %d-clique count; all HBBMC++", topK, kCount),
		},
	}
	ctx := context.Background()
	for _, spec := range specs {
		g, err := cfg.buildSpec(spec)
		if err != nil {
			return nil, err
		}
		var omega, topFirst int
		var kCliques int64
		mc, err := runQuery(g, hbbmcPP(), cfg.reps(), cfg.Workers, cfg.JSON, spec.Name, "MaxClique",
			func(s *core.Session) (*core.Stats, error) {
				clique, stats, err := s.MaxClique(ctx, core.QueryOptions{})
				omega = len(clique)
				return stats, err
			})
		if err != nil {
			return nil, fmt.Errorf("%s/MaxClique: %v", spec.Name, err)
		}
		tk, err := runQuery(g, hbbmcPP(), cfg.reps(), cfg.Workers, cfg.JSON, spec.Name, "Top10",
			func(s *core.Session) (*core.Stats, error) {
				cliques, stats, err := s.TopK(ctx, topK, core.QueryOptions{})
				if len(cliques) > 0 {
					topFirst = len(cliques[0])
				}
				return stats, err
			})
		if err != nil {
			return nil, fmt.Errorf("%s/Top10: %v", spec.Name, err)
		}
		if topFirst != omega {
			return nil, fmt.Errorf("%s: MaxClique found ω=%d but the largest top-k clique has %d vertices",
				spec.Name, omega, topFirst)
		}
		kc, err := runQuery(g, hbbmcPP(), cfg.reps(), cfg.Workers, cfg.JSON, spec.Name, "Count5",
			func(s *core.Session) (*core.Stats, error) {
				n, stats, err := s.CountKCliques(ctx, kCount, core.QueryOptions{})
				kCliques = n
				return stats, err
			})
		if err != nil {
			return nil, fmt.Errorf("%s/Count5: %v", spec.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			spec.Name,
			secs(mc.seconds), fmt.Sprintf("%d", omega), calls(mc.stats.BnBCalls),
			secs(tk.seconds),
			secs(kc.seconds), humanCount(kCliques),
		})
	}
	return t, nil
}

// Table6 compares edge orderings for the initial branch (paper Table VI):
// HBBMC++ (truss) vs a vertex-oriented split (VBBMC-dgn) vs edge orderings
// derived from degeneracy positions and minimum degrees.
func Table6(cfg Config) (*Table, error) {
	vbbmcDgn := core.Options{Algorithm: core.BKDegen, ET: 3, GR: true}
	hbbmcDgn := hbbmcPP()
	hbbmcDgn.EdgeOrder = core.EdgeOrderDegeneracy
	hbbmcMdg := hbbmcPP()
	hbbmcMdg.EdgeOrder = core.EdgeOrderMinDegree
	options := []namedOption{
		{"HBBMC++", hbbmcPP()},
		{"VBBMC-dgn", vbbmcDgn},
		{"HBBMC-dgn", hbbmcDgn},
		{"HBBMC-mdg", hbbmcMdg},
	}
	t, err := runGrid(cfg, options, func(ds string, cells []cell) []string {
		row := []string{ds}
		for _, c := range cells {
			row = append(row, secs(c.seconds))
		}
		return row
	})
	if err != nil {
		return nil, err
	}
	t.Title = "Table VI: effect of the truss-based edge ordering (unit: second)"
	t.Header = []string{"Graph", "HBBMC++", "VBBMC-dgn", "HBBMC-dgn", "HBBMC-mdg"}
	return t, nil
}
