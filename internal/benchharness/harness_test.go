package benchharness

import (
	"bytes"
	"github.com/graphmining/hbbmc/internal/core"
	"github.com/graphmining/hbbmc/internal/dataset"
	"strconv"
	"strings"
	"testing"
)

// quickCfg runs harness tests on the three smallest stand-ins.
func quickCfg() Config {
	return Config{Datasets: []string{"NA", "WE", "YO"}}
}

func parseSecs(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q as seconds: %v", s, err)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row width %d != header width %d", len(row), len(tab.Header))
		}
	}
	// WE is the τ=δ−1 stand-in: the condition column must read false.
	for _, row := range tab.Rows {
		if row[0] == "WE" && row[len(row)-1] != "false" {
			t.Errorf("WE should fail the hybrid condition, row = %v", row)
		}
		if row[0] == "NA" && row[len(row)-1] != "true" {
			t.Errorf("NA should satisfy the hybrid condition, row = %v", row)
		}
	}
}

func TestTable2RunsAndAgrees(t *testing.T) {
	tab, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 || len(tab.Header) != 6 {
		t.Fatalf("unexpected shape %dx%d", len(tab.Rows), len(tab.Header))
	}
	// At the stand-ins' reduced scale the branch-setup cost dominates and
	// the paper's wall-clock headline need not reproduce (see
	// EXPERIMENTS.md); HBBMC++ must however stay within a small factor of
	// the best baseline everywhere.
	for _, row := range tab.Rows {
		h := parseSecs(t, row[1])
		best := h
		for _, c := range row[2:] {
			if v := parseSecs(t, c); v < best {
				best = v
			}
		}
		if h > 4*best+0.005 {
			t.Errorf("%s: HBBMC++ %.3fs is more than 4x the best baseline %.3fs", row[0], h, best)
		}
	}
}

// TestHybridCallReduction asserts the mechanism behind the paper's headline
// on a recursion-heavy dataset: the hybrid framework explores far fewer
// branches than the vertex-oriented state of the art.
func TestHybridCallReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("recursion-heavy dataset is slow in short mode")
	}
	spec, _ := dataset.ByName("DG")
	g := spec.Build()
	_, hs, err := core.Count(g, hbbmcPP())
	if err != nil {
		t.Fatal(err)
	}
	_, ds, err := core.Count(g, rDegen())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Cliques != ds.Cliques {
		t.Fatalf("count mismatch: %d vs %d", hs.Cliques, ds.Cliques)
	}
	if float64(hs.Calls) > 0.8*float64(ds.Calls) {
		t.Errorf("hybrid should need far fewer calls: HBBMC++ %d vs RDegen %d", hs.Calls, ds.Calls)
	}
}

func TestTable4DepthTrend(t *testing.T) {
	tab, err := Table4(Config{Datasets: []string{"NA"}})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	// Columns: Graph, d1 time, d1 calls, d2 time, d2 calls, d3 time, d3 calls.
	d1 := parseSecs(t, row[1])
	d3 := parseSecs(t, row[5])
	if d3 < d1/2 {
		t.Errorf("deeper edge branching should not be dramatically faster: d1=%v d3=%v", d1, d3)
	}
}

func TestTable5RatioColumns(t *testing.T) {
	tab, err := Table5(Config{Datasets: []string{"NA"}})
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	if len(row) != len(tab.Header) {
		t.Fatalf("row width %d != header %d", len(row), len(tab.Header))
	}
	// Ratios are percentages ending in '%'.
	for _, idx := range []int{5, 8, 11} {
		if !strings.HasSuffix(row[idx], "%") {
			t.Errorf("column %d should be a ratio, got %q", idx, row[idx])
		}
	}
	// #Calls must not increase as t grows (ET only prunes).
	c0 := row[2]
	c3 := row[10]
	if c0 == "" || c3 == "" {
		t.Fatal("missing call counts")
	}
}

func TestTable6Runs(t *testing.T) {
	tab, err := Table6(Config{Datasets: []string{"NA", "WE"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Header) != 5 {
		t.Fatalf("unexpected shape %dx%d", len(tab.Rows), len(tab.Header))
	}
}

func TestFigureSweeps(t *testing.T) {
	fc := FigureConfig{
		Sizes:     []int{300, 600},
		Densities: []int{5, 10},
		FixedRho:  8,
		FixedN:    400,
		Seeds:     1,
	}
	for name, f := range map[string]func(FigureConfig) (*Table, error){
		"5a": Figure5a, "5b": Figure5b, "5c": Figure5c, "5d": Figure5d,
	} {
		tab, err := f(fc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tab.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2", name, len(tab.Rows))
		}
		var buf bytes.Buffer
		if err := tab.Fprint(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "HBBMC++") {
			t.Errorf("%s: rendered table missing algorithm column", name)
		}
	}
}

func TestDegeneracyConcentratesAtFixedDensity(t *testing.T) {
	// Deviation from the paper, recorded in EXPERIMENTS.md: for the stated
	// G(n, m=ρn) generator, degeneracy CONCENTRATES as n grows at fixed ρ
	// (the paper's Appendix D reports growth, which is inconsistent with
	// that generator). Both models must stay within a narrow band here.
	fc := FigureConfig{Sizes: []int{500, 4000}, FixedRho: 10, Seeds: 1}
	for name, fig := range map[string]func(FigureConfig) (*Table, error){
		"ER": Figure5a, "BA": Figure5b,
	} {
		tab, err := fig(fc)
		if err != nil {
			t.Fatal(err)
		}
		dSmall := parseSecs(t, tab.Rows[0][1])
		dBig := parseSecs(t, tab.Rows[1][1])
		if dBig > 2*dSmall+2 || dSmall > 2*dBig+2 {
			t.Errorf("%s degeneracy should concentrate at fixed ρ: %v -> %v", name, dSmall, dBig)
		}
	}
}

func TestUnknownDatasetRejected(t *testing.T) {
	if _, err := Table1(Config{Datasets: []string{"nope"}}); err == nil {
		t.Error("unknown dataset must be rejected")
	}
}

func TestFprintRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"hello"},
	}
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "1", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}
