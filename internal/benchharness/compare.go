package benchharness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Compare implements the CI benchmark-regression gate: it reads two
// `mcebench -json` streams (one runRecord JSON line per timed run), groups
// the records by (dataset, config), and compares the median enumeration
// time of each cell. A cell whose candidate median is more than
// thresholdPct percent slower than its baseline median is a regression.
//
// The returned table lists every comparable cell with its delta; the
// regression slice names the failing cells (empty = gate passes). Cells
// present on only one side are reported in the table notes and never fail
// the gate, so adding or retiring datasets does not require regenerating
// the baseline in the same commit.
func Compare(baseline, candidate io.Reader, thresholdPct float64) (*Table, []string, error) {
	base, err := readRuns(baseline)
	if err != nil {
		return nil, nil, fmt.Errorf("benchharness: baseline: %v", err)
	}
	cand, err := readRuns(candidate)
	if err != nil {
		return nil, nil, fmt.Errorf("benchharness: candidate: %v", err)
	}

	t := &Table{
		Title:  fmt.Sprintf("Benchmark comparison (median enumerate time, fail at +%.0f%%)", thresholdPct),
		Header: []string{"Graph", "Config", "Baseline(s)", "Candidate(s)", "Delta", "Verdict"},
	}
	var regressions []string
	common := 0
	for _, key := range sortedKeys(base) {
		cRuns, ok := cand[key]
		if !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: in baseline only", key.dataset, key.config))
			continue
		}
		common++
		b, c := median(base[key]), median(cRuns)
		deltaPct := 100 * (c - b) / b
		verdict := "ok"
		if deltaPct > thresholdPct {
			verdict = "REGRESSED"
			regressions = append(regressions, fmt.Sprintf("%s/%s: %.3fs -> %.3fs (%+.1f%%)",
				key.dataset, key.config, b, c, deltaPct))
		}
		t.Rows = append(t.Rows, []string{
			key.dataset, key.config,
			fmt.Sprintf("%.3f", b), fmt.Sprintf("%.3f", c),
			fmt.Sprintf("%+.1f%%", deltaPct), verdict,
		})
	}
	for _, key := range sortedKeys(cand) {
		if _, ok := base[key]; !ok {
			t.Notes = append(t.Notes, fmt.Sprintf("%s/%s: in candidate only (refresh the baseline to gate it)", key.dataset, key.config))
		}
	}
	if common == 0 {
		return nil, nil, errors.New("benchharness: baseline and candidate share no (dataset, config) cells")
	}
	return t, regressions, nil
}

// cellKey identifies one benchmark cell across runs.
type cellKey struct {
	dataset, config string
}

// readRuns parses a stream of runRecord JSON lines into per-cell samples of
// enumeration seconds. Stats.EnumTime isolates the quantity the gate
// protects (the enumeration hot path); records without stats fall back to
// the wall-clock cell time.
func readRuns(r io.Reader) (map[cellKey][]float64, error) {
	dec := json.NewDecoder(r)
	runs := make(map[cellKey][]float64)
	for {
		var rec runRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing run record: %v", err)
		}
		if rec.Dataset == "" || rec.Config == "" {
			return nil, fmt.Errorf("run record without dataset/config")
		}
		sec := rec.Seconds
		if rec.Stats != nil && rec.Stats.EnumTime > 0 {
			sec = rec.Stats.EnumTime.Seconds()
		}
		key := cellKey{rec.Dataset, rec.Config}
		runs[key] = append(runs[key], sec)
	}
	if len(runs) == 0 {
		return nil, errors.New("no run records")
	}
	return runs, nil
}

func sortedKeys(m map[cellKey][]float64) []cellKey {
	keys := make([]cellKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dataset != keys[j].dataset {
			return keys[i].dataset < keys[j].dataset
		}
		return keys[i].config < keys[j].config
	})
	return keys
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
