package benchharness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/service"
)

// BenchmarkServiceOverhead tracks the cost the HTTP service layer adds on
// top of a warm in-process Session.Count: job creation, admission, the run
// goroutine, the long-poll status fetch, and JSON both ways. The graph is
// small on purpose — the absolute gap between the two sub-benchmarks IS the
// per-job overhead; on production-sized graphs it amortises into noise, and
// a regression here flags service-layer bloat long before it would show up
// in end-to-end numbers.
func BenchmarkServiceOverhead(b *testing.B) {
	g := hbbmc.GenerateER(500, 3000, 42)
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	want, _, err := sess.Count(context.Background())
	if err != nil {
		b.Fatal(err)
	}

	b.Run("inprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, _, err := sess.Count(context.Background())
			if err != nil || n != want {
				b.Fatalf("count = %d (err %v), want %d", n, err, want)
			}
		}
	})

	b.Run("http", func(b *testing.B) {
		srv := service.New(service.Config{})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		path := filepath.Join(b.TempDir(), "bench.hbg")
		if err := g.SaveBinaryFile(path); err != nil {
			b.Fatal(err)
		}
		reg, _ := json.Marshal(map[string]string{"name": "bench", "path": path})
		resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(reg))
		if err != nil || resp.StatusCode != http.StatusCreated {
			b.Fatalf("register: %v %v", err, resp.Status)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()

		jobBody, _ := json.Marshal(map[string]any{"dataset": "bench", "mode": "count"})
		runOne := func() {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(jobBody))
			if err != nil {
				b.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				b.Fatalf("job: %s %s", resp.Status, data)
			}
			var v service.JobView
			if err := json.Unmarshal(data, &v); err != nil {
				b.Fatal(err)
			}
			for v.State != service.StateDone {
				if v.State == service.StateFailed || v.State == service.StateStopped {
					b.Fatalf("job ended %s: %s", v.State, v.Error)
				}
				resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=5s", ts.URL, v.ID))
				if err != nil {
					b.Fatal(err)
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err := json.Unmarshal(data, &v); err != nil {
					b.Fatal(err)
				}
			}
			if v.Stats == nil || v.Stats.Cliques != want {
				b.Fatalf("http count = %+v, want %d cliques", v.Stats, want)
			}
		}
		runOne() // warm the session cache outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runOne()
		}
	})
}
