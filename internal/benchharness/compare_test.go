package benchharness

import (
	"strings"
	"testing"
	"time"

	"github.com/graphmining/hbbmc/internal/core"
)

// lines renders runRecord JSON lines for one cell with the given
// enumeration times in milliseconds.
func lines(t *testing.T, ds, config string, ms ...int) string {
	t.Helper()
	var sb strings.Builder
	for i, v := range ms {
		writeRecord(&sb, runRecord{
			Dataset: ds, Config: config, Rep: i,
			Seconds: float64(v) / 1000 * 1.5, // wall time noisier than enum time
			Stats:   &core.Stats{EnumTime: time.Duration(v) * time.Millisecond},
		})
	}
	return sb.String()
}

func TestCompareMedians(t *testing.T) {
	// Candidate medians: NA/H 100→110 (+10%, ok), NA/R 100→200 (+100%,
	// regressed), WE/H 50→40 (faster, ok). Odd rep counts make the median
	// unambiguous; the outlier reps must not trip the gate.
	base := lines(t, "NA", "HBBMC++", 100, 100, 900) + lines(t, "NA", "RRef", 100) + lines(t, "WE", "HBBMC++", 50)
	cand := lines(t, "NA", "HBBMC++", 110, 5000, 90) + lines(t, "NA", "RRef", 200) + lines(t, "WE", "HBBMC++", 40)

	table, regressions, err := Compare(strings.NewReader(base), strings.NewReader(cand), 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(table.Rows))
	}
	if len(regressions) != 1 || !strings.Contains(regressions[0], "NA/RRef") {
		t.Fatalf("regressions = %v, want exactly NA/RRef", regressions)
	}
	var sb strings.Builder
	if err := table.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "+100.0%") {
		t.Fatalf("table misses the regression row:\n%s", out)
	}
}

func TestCompareDisjointCells(t *testing.T) {
	base := lines(t, "NA", "HBBMC++", 100) + lines(t, "OLD", "HBBMC++", 10)
	cand := lines(t, "NA", "HBBMC++", 100) + lines(t, "NEW", "HBBMC++", 10)
	table, regressions, err := Compare(strings.NewReader(base), strings.NewReader(cand), 25)
	if err != nil || len(regressions) != 0 {
		t.Fatalf("err=%v regressions=%v", err, regressions)
	}
	if len(table.Rows) != 1 || len(table.Notes) != 2 {
		t.Fatalf("rows=%d notes=%v", len(table.Rows), table.Notes)
	}

	// Fully disjoint streams cannot gate anything.
	if _, _, err := Compare(strings.NewReader(lines(t, "A", "x", 1)), strings.NewReader(lines(t, "B", "x", 1)), 25); err == nil {
		t.Fatal("disjoint cells must error")
	}
}

func TestCompareBadInput(t *testing.T) {
	good := lines(t, "NA", "HBBMC++", 100)
	for name, bad := range map[string]string{
		"empty":      "",
		"not json":   "hello\n",
		"no dataset": `{"config":"x","seconds":1}` + "\n",
	} {
		if _, _, err := Compare(strings.NewReader(bad), strings.NewReader(good), 25); err == nil {
			t.Errorf("%s baseline: expected error", name)
		}
		if _, _, err := Compare(strings.NewReader(good), strings.NewReader(bad), 25); err == nil {
			t.Errorf("%s candidate: expected error", name)
		}
	}
}

func TestCompareFallsBackToSeconds(t *testing.T) {
	// Records without stats (foreign producers) gate on wall seconds.
	base := `{"dataset":"NA","config":"H","rep":0,"seconds":1.0}` + "\n"
	cand := `{"dataset":"NA","config":"H","rep":0,"seconds":2.0}` + "\n"
	_, regressions, err := Compare(strings.NewReader(base), strings.NewReader(cand), 25)
	if err != nil || len(regressions) != 1 {
		t.Fatalf("err=%v regressions=%v", err, regressions)
	}
}
