package benchharness

import (
	"fmt"
	"io"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/truss"
)

// FigureConfig controls the synthetic sweeps of Figure 5. The paper sweeps
// n ∈ {100K..10M} at ρ=20 and ρ ∈ {5..40} at n=1M over 10 random graphs per
// point; the defaults below keep the same relative spans at laptop scale.
type FigureConfig struct {
	// Sizes is the n sweep for figures 5(a)/(b).
	Sizes []int
	// Densities is the ρ sweep for figures 5(c)/(d).
	Densities []int
	// FixedRho is ρ for the size sweep (paper: 20).
	FixedRho int
	// FixedN is n for the density sweep (paper: 1M).
	FixedN int
	// Seeds is the number of random graphs averaged per point (paper: 10).
	Seeds int
	// Workers runs every cell through the parallel driver with this many
	// worker goroutines. 0 or 1 = sequential (the paper's setting).
	Workers int
	// JSON, when non-nil, receives one machine-readable JSON line per timed
	// run (see runRecord) in addition to the rendered tables.
	JSON io.Writer
}

// DefaultFigureConfig returns the laptop-scale sweep: the same 100× size
// span and 8× density span as the paper at ~1/250 scale.
func DefaultFigureConfig() FigureConfig {
	return FigureConfig{
		Sizes:     []int{1000, 2000, 5000, 10000, 20000},
		Densities: []int{5, 10, 20, 30, 40},
		FixedRho:  20,
		FixedN:    5000,
		Seeds:     3,
	}
}

func (fc FigureConfig) normalized() FigureConfig {
	def := DefaultFigureConfig()
	if len(fc.Sizes) == 0 {
		fc.Sizes = def.Sizes
	}
	if len(fc.Densities) == 0 {
		fc.Densities = def.Densities
	}
	if fc.FixedRho == 0 {
		fc.FixedRho = def.FixedRho
	}
	if fc.FixedN == 0 {
		fc.FixedN = def.FixedN
	}
	if fc.Seeds <= 0 {
		fc.Seeds = def.Seeds
	}
	return fc
}

// figureOptions is the algorithm panel of Figure 5.
func figureOptions() []namedOption {
	return []namedOption{
		{"HBBMC++", hbbmcPP()},
		{"RRef", rRef()},
		{"RDegen", rDegen()},
		{"RRcd", rRcd()},
		{"RFac", rFac()},
	}
}

// makeGraph builds one sweep point: ER samples G(n, nρ); BA attaches ρ
// edges per arrival, so its edge density m/n ≈ ρ — matching the paper's use
// of ρ = m/n for both models.
func makeGraph(model string, n, rho int, seed int64) (*graph.Graph, error) {
	switch model {
	case "er":
		return gen.ER(n, n*rho, seed), nil
	case "ba":
		return gen.BA(n, rho, seed), nil
	}
	return nil, fmt.Errorf("benchharness: unknown model %q", model)
}

// sweep runs the algorithm panel over points, averaging Seeds graphs per
// point, and reports per-point δ and τ alongside the timings.
func sweep(fc FigureConfig, model string, points []int, mkGraph func(p int, seed int64) (*graph.Graph, error), pointLabel string) (*Table, error) {
	options := figureOptions()
	t := &Table{
		Header: []string{pointLabel, "δ", "τ"},
	}
	for _, o := range options {
		t.Header = append(t.Header, o.name+"(s)")
	}
	for _, p := range points {
		sums := make([]float64, len(options))
		var deltaSum, tauSum int
		var want int64 = -1
		for s := 0; s < fc.Seeds; s++ {
			g, err := mkGraph(p, int64(1000*p+s))
			if err != nil {
				return nil, err
			}
			deltaSum += order.DegeneracyOrdering(g).Value
			tauSum += truss.Decompose(g).Tau
			for i, o := range options {
				c, err := run(g, o.opts, 1, fc.Workers, fc.JSON,
					fmt.Sprintf("%s/%s=%d/seed=%d", model, pointLabel, p, s), o.name)
				if err != nil {
					return nil, fmt.Errorf("%s n=%d %s: %v", model, p, o.name, err)
				}
				sums[i] += c.seconds
				if i == 0 {
					want = c.stats.Cliques
				} else if c.stats.Cliques != want {
					return nil, fmt.Errorf("%s point %d: %s found %d cliques, %s found %d",
						model, p, o.name, c.stats.Cliques, options[0].name, want)
				}
			}
		}
		row := []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.0f", float64(deltaSum)/float64(fc.Seeds)),
			fmt.Sprintf("%.0f", float64(tauSum)/float64(fc.Seeds)),
		}
		for _, s := range sums {
			row = append(row, secs(s/float64(fc.Seeds)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure5a is the ER-model scalability sweep (paper Figure 5(a)).
func Figure5a(fc FigureConfig) (*Table, error) {
	fc = fc.normalized()
	t, err := sweep(fc, "er", fc.Sizes, func(n int, seed int64) (*graph.Graph, error) {
		return makeGraph("er", n, fc.FixedRho, seed)
	}, "n")
	if err != nil {
		return nil, err
	}
	t.Title = fmt.Sprintf("Figure 5(a): scalability on ER graphs (ρ=%d, mean of %d seeds)", fc.FixedRho, fc.Seeds)
	return t, nil
}

// Figure5b is the BA-model scalability sweep (paper Figure 5(b)).
func Figure5b(fc FigureConfig) (*Table, error) {
	fc = fc.normalized()
	t, err := sweep(fc, "ba", fc.Sizes, func(n int, seed int64) (*graph.Graph, error) {
		return makeGraph("ba", n, fc.FixedRho, seed)
	}, "n")
	if err != nil {
		return nil, err
	}
	t.Title = fmt.Sprintf("Figure 5(b): scalability on BA graphs (ρ=%d, mean of %d seeds)", fc.FixedRho, fc.Seeds)
	return t, nil
}

// Figure5c is the ER-model density sweep (paper Figure 5(c)).
func Figure5c(fc FigureConfig) (*Table, error) {
	fc = fc.normalized()
	t, err := sweep(fc, "er", fc.Densities, func(rho int, seed int64) (*graph.Graph, error) {
		return makeGraph("er", fc.FixedN, rho, seed)
	}, "ρ")
	if err != nil {
		return nil, err
	}
	t.Title = fmt.Sprintf("Figure 5(c): varying density on ER graphs (n=%d, mean of %d seeds)", fc.FixedN, fc.Seeds)
	return t, nil
}

// Figure5d is the BA-model density sweep (paper Figure 5(d)).
func Figure5d(fc FigureConfig) (*Table, error) {
	fc = fc.normalized()
	t, err := sweep(fc, "ba", fc.Densities, func(rho int, seed int64) (*graph.Graph, error) {
		return makeGraph("ba", fc.FixedN, rho, seed)
	}, "ρ")
	if err != nil {
		return nil, err
	}
	t.Title = fmt.Sprintf("Figure 5(d): varying density on BA graphs (n=%d, mean of %d seeds)", fc.FixedN, fc.Seeds)
	return t, nil
}
