package benchharness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/service"
)

// BenchmarkDistributedOverhead pins the cost the coordinator adds per
// shard: descriptor planning, the peer dispatch round trip (POST + status
// poll), retry bookkeeping and the stats merge. The cluster is in-process
// (one worker node, one coordinator) and the graph small, so enumeration
// itself is noise and the inprocess/sharded gap divided by the shard count
// IS the per-shard dispatch+merge overhead — reported as ns/shard.
func BenchmarkDistributedOverhead(b *testing.B) {
	g := hbbmc.GenerateER(500, 3000, 42)
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	want, _, err := sess.Count(context.Background())
	if err != nil {
		b.Fatal(err)
	}

	newNode := func(cfg service.Config) (*service.Server, *httptest.Server) {
		srv := service.New(cfg)
		ts := httptest.NewServer(srv)
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			ts.Close()
		})
		path := filepath.Join(b.TempDir(), "bench.hbg")
		if err := g.SaveBinaryFile(path); err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Registry().Register("bench", path, "auto"); err != nil {
			b.Fatal(err)
		}
		return srv, ts
	}

	runCount := func(ts *httptest.Server) *hbbmc.Stats {
		body, _ := json.Marshal(map[string]any{"dataset": "bench", "mode": "count"})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("job: %s %s", resp.Status, data)
		}
		var v service.JobView
		if err := json.Unmarshal(data, &v); err != nil {
			b.Fatal(err)
		}
		for v.State != service.StateDone {
			if v.State == service.StateFailed || v.State == service.StateStopped {
				b.Fatalf("job ended %s: %s", v.State, v.Error)
			}
			resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s?wait=5s", ts.URL, v.ID))
			if err != nil {
				b.Fatal(err)
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err := json.Unmarshal(data, &v); err != nil {
				b.Fatal(err)
			}
		}
		if v.Stats == nil || v.Stats.Cliques != want {
			b.Fatalf("count = %+v, want %d cliques", v.Stats, want)
		}
		return v.Stats
	}

	b.Run("inprocess", func(b *testing.B) {
		_, ts := newNode(service.Config{})
		runCount(ts) // warm the session cache outside the timer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCount(ts)
		}
	})

	b.Run("sharded", func(b *testing.B) {
		_, workerTS := newNode(service.Config{})
		_, coordTS := newNode(service.Config{
			Peers: []string{workerTS.URL},
			// A fixed shard size makes the fan-out deterministic, so the
			// ns/shard metric divides by a stable count.
			ShardMaxBranches: 256,
			ShardTimeout:     time.Minute,
		})
		stats := runCount(coordTS) // warm both nodes' session caches
		if stats.ShardsDispatched < 2 {
			b.Fatalf("only %d shards dispatched; the overhead metric needs a fan-out", stats.ShardsDispatched)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stats = runCount(coordTS)
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(stats.ShardsDispatched), "ns/shard")
	})
}
