package core

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/verify"
)

// hookCall is one recorded BranchDone invocation.
type hookCall struct {
	lo, hi    int
	cliques   int64
	max       int
	delivered int // visitor calls completed before the hook fired
}

// runHooked runs one hooked, ordered enumeration and returns the delivered
// cliques (in delivery order) and the recorded hook calls (in firing order).
func runHooked(t *testing.T, s *Session, workers int, chunk int) ([][]int32, []hookCall, *Stats) {
	t.Helper()
	var got [][]int32
	var calls []hookCall
	stats, err := s.EnumerateWith(context.Background(), QueryOptions{
		Workers:           workers,
		ParallelChunkSize: chunk,
		BranchDone: func(lo, hi int, cliques int64, max int) {
			calls = append(calls, hookCall{lo: lo, hi: hi, cliques: cliques, max: max, delivered: len(got)})
		},
		OrderedEmit: true,
	}, func(c []int32) bool {
		got = append(got, append([]int32(nil), c...))
		return true
	})
	if err != nil {
		t.Fatalf("hooked run w=%d: %v", workers, err)
	}
	return got, calls, stats
}

// TestBranchDoneExactlyOnceResume is the invariant the crash-recovery layer
// is built on: at the moment BranchDone reports the unit ending at W, the
// visitor has received exactly the cliques of residue + branches [0, W) —
// so a run resumed with BranchLo=W delivers precisely the complement, and
// prefix + resume is the full clique multiset with no duplicates.
func TestBranchDoneExactlyOnceResume(t *testing.T) {
	withProcs(t, 4)
	g := gen.NoisyCliques(48, 6, 4, 90, 7)
	for _, algo := range []Algorithm{HBBMC, BKDegen} {
		s, err := NewSession(g, Options{Algorithm: algo, ET: 3, GR: true})
		if err != nil {
			t.Fatal(err)
		}
		want := referenceFor(g)
		branches := s.NumTopBranches()
		for _, workers := range []int{1, 4} {
			// A small fixed chunk keeps many resume points on the parallel path.
			got, calls, stats := runHooked(t, s, workers, 3)
			label := fmt.Sprintf("%v/w%d", algo, workers)
			if d := verify.Diff(got, want); d != "" {
				t.Fatalf("%s full hooked run: %s", label, d)
			}
			if len(calls) == 0 || calls[0].lo != 0 || calls[0].hi != 0 {
				t.Fatalf("%s: first hook call %+v is not the residue call", label, calls[0])
			}
			// Intervals must be contiguous and ascending from 0, and the
			// deltas must sum to the run's clique count.
			next := 0
			var sum int64
			for i, c := range calls {
				if i > 0 && (c.lo != next || c.hi <= c.lo) {
					t.Fatalf("%s: hook call %d is [%d,%d), want lo=%d", label, i, c.lo, c.hi, next)
				}
				next = c.hi
				sum += c.cliques
			}
			if next != branches {
				t.Fatalf("%s: hooks covered [0,%d) of %d branches", label, next, branches)
			}
			if sum != stats.Cliques || int64(len(got)) != stats.Cliques {
				t.Fatalf("%s: hook deltas sum %d, delivered %d, stats %d", label, sum, len(got), stats.Cliques)
			}
			// Every hook call with hi >= 1 is a valid resume point: what was
			// delivered before it, plus a run over [hi, branches), is the
			// full set. (The residue call's W=0 is not one — resuming with
			// BranchLo=0 re-emits the residue, which is why checkpoints are
			// only taken at W >= 1.)
			for _, ci := range []int{1, len(calls) / 2, len(calls) - 1} {
				c := calls[ci]
				resumed := collectRange(t, s, c.hi, branches, workers)
				combined := append(append([][]int32{}, got[:c.delivered]...), resumed...)
				if d := verify.Diff(combined, want); d != "" {
					t.Fatalf("%s resume at W=%d (delivered %d): %s", label, c.hi, c.delivered, d)
				}
			}
		}
	}
}

// TestBranchDoneCountWatermark covers the unordered counting path: hook
// calls arrive out of order from parallel workers, the consumer merges them
// into a contiguous-prefix watermark, and a count resumed from any such
// watermark plus the prefix's clique sum reproduces the full count.
func TestBranchDoneCountWatermark(t *testing.T) {
	withProcs(t, 4)
	g := gen.NoisyCliques(48, 6, 4, 90, 8)
	s, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3, GR: true})
	if err != nil {
		t.Fatal(err)
	}
	branches := s.NumTopBranches()
	var calls []hookCall
	total, _, err := s.CountWith(context.Background(), QueryOptions{
		Workers:           4,
		ParallelChunkSize: 3,
		BranchDone: func(lo, hi int, cliques int64, max int) {
			calls = append(calls, hookCall{lo: lo, hi: hi, cliques: cliques, max: max})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The hook is documented single-goroutine-at-a-time but unordered here;
	// sort by lo and check the intervals tile [0, branches) exactly.
	sort.Slice(calls, func(i, j int) bool {
		if calls[i].lo != calls[j].lo {
			return calls[i].lo < calls[j].lo
		}
		return calls[i].hi < calls[j].hi
	})
	if calls[0].lo != 0 || calls[0].hi != 0 {
		t.Fatalf("missing residue call: %+v", calls[0])
	}
	next := 0
	var sum int64
	for _, c := range calls[1:] {
		if c.lo != next {
			t.Fatalf("intervals do not tile: [%d,%d) after %d", c.lo, c.hi, next)
		}
		next = c.hi
		sum += c.cliques
	}
	if next != branches {
		t.Fatalf("intervals cover [0,%d) of %d", next, branches)
	}
	if sum+calls[0].cliques != total {
		t.Fatalf("deltas sum %d + residue %d != total %d", sum, calls[0].cliques, total)
	}
	// Resume from a few mid-run watermarks: prefix sum + ranged recount.
	for _, cut := range []int{1, len(calls) / 2, len(calls) - 1} {
		w := calls[cut].hi
		prefix := calls[0].cliques
		for _, c := range calls[1 : cut+1] {
			prefix += c.cliques
		}
		rest, _, err := s.CountWith(context.Background(), QueryOptions{
			Workers: 4, BranchLo: w, BranchHi: branches,
		})
		if err != nil && w < branches {
			t.Fatalf("resume count from %d: %v", w, err)
		}
		if prefix+rest != total {
			t.Fatalf("watermark %d: prefix %d + rest %d != total %d", w, prefix, rest, total)
		}
	}
}

// TestBranchDoneSkippedWhenStopped: a visitor refusal stops the run; no
// hook call may claim an interval whose delivery was cut short, so the
// claimed prefix is always resumable without loss.
func TestBranchDoneSkippedWhenStopped(t *testing.T) {
	withProcs(t, 4)
	g := gen.NoisyCliques(48, 6, 4, 90, 9)
	s, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3, GR: true})
	if err != nil {
		t.Fatal(err)
	}
	want := referenceFor(g)
	branches := s.NumTopBranches()
	for _, workers := range []int{1, 4} {
		var got [][]int32
		var calls []hookCall
		stop := len(want) / 2
		_, err := s.EnumerateWith(context.Background(), QueryOptions{
			Workers:           workers,
			ParallelChunkSize: 3,
			BranchDone: func(lo, hi int, cliques int64, max int) {
				calls = append(calls, hookCall{lo: lo, hi: hi, cliques: cliques, delivered: len(got)})
			},
		}, func(c []int32) bool {
			got = append(got, append([]int32(nil), c...))
			return len(got) < stop
		})
		if err == nil {
			t.Fatalf("w=%d: stopped run returned nil error", workers)
		}
		if len(calls) == 0 {
			continue // stopped before the residue hook: nothing claimed
		}
		last := calls[len(calls)-1]
		resumed := collectRange(t, s, last.hi, branches, workers)
		combined := append(append([][]int32{}, got[:last.delivered]...), resumed...)
		if d := verify.Diff(combined, want); d != "" {
			t.Fatalf("w=%d: claimed prefix at W=%d not resumable: %s", workers, last.hi, d)
		}
	}
}
