package core

import (
	"context"
	"math"
	"sort"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/reduce"
)

// TestPairwiseCheaperNoOverflow is the regression test for the break-even
// estimate of setUniverse: rowCount·universe·8 overflows 32-bit arithmetic
// already at ~16k-vertex universes (16500² · 8 ≈ 2.2·10⁹ > MaxInt32), and a
// wrapped negative product would pick the pairwise strategy on exactly the
// hub branches where it is quadratically more expensive. The estimate must
// be computed in int64.
func TestPairwiseCheaperNoOverflow(t *testing.T) {
	// 16500²·8 wraps negative in int32; any positive degree sum then
	// looks larger, flipping the decision.
	rowCount, universe := 16500, 16500
	degSum := int64(100_000)
	if got := int64(rowCount) * int64(universe) * 8; got <= math.MaxInt32 {
		t.Fatalf("test vector too small to overflow int32: %d", got)
	}
	if pairwiseCheaper(rowCount, universe, degSum) {
		t.Fatal("pairwise strategy chosen although its estimated cost exceeds the degree sum")
	}
	// Sanity in the small regime: a degree sum far above the pairwise
	// estimate must pick pairwise.
	if !pairwiseCheaper(4, 8, 10_000) {
		t.Fatal("pairwise strategy rejected although the scan estimate is larger")
	}
	// And at 32-bit scale with a genuinely enormous degree sum the pairwise
	// side must win again.
	if !pairwiseCheaper(rowCount, universe, math.MaxInt64/2) {
		t.Fatal("pairwise strategy rejected on a huge degree sum")
	}
}

// TestLocalEpochMembership exercises the epoch-stamped residual→local map
// across universe installs: stale entries from an earlier universe must
// read as absent without any clearing pass.
func TestLocalEpochMembership(t *testing.T) {
	g := gen.Path(8) // 0-1-2-...-7
	e := newEngine(g, reduce.Identity(g), Options{}, &Stats{}, nil, newRunControl(context.Background(), Options{}))
	e.installUniverse([]int32{1, 3, 5}, -1, 0)
	for v, want := range map[int32]int32{1: 0, 3: 1, 5: 2, 0: -1, 2: -1, 7: -1} {
		if got := e.localOf(v); got != want {
			t.Fatalf("localOf(%d) = %d, want %d", v, got, want)
		}
	}
	e.installUniverse([]int32{2, 5}, -1, 0)
	for v, want := range map[int32]int32{2: 0, 5: 1, 1: -1, 3: -1} {
		if got := e.localOf(v); got != want {
			t.Fatalf("after reinstall: localOf(%d) = %d, want %d", v, got, want)
		}
	}
	// The membership bitmap must track the same story.
	for v, want := range map[int]bool{2: true, 5: true, 1: false, 3: false} {
		if got := e.univ.Has(v); got != want {
			t.Fatalf("univ.Has(%d) = %v, want %v", v, got, want)
		}
	}
	// Epoch wrap: a full uint32 cycle must not resurrect stale entries.
	e.localEpoch = ^uint32(0)
	e.installUniverse([]int32{4}, -1, 0)
	if e.localEpoch == 0 {
		t.Fatal("epoch wrap must skip the zero stamp")
	}
	if got := e.localOf(4); got != 0 {
		t.Fatalf("localOf(4) after wrap = %d, want 0", got)
	}
	if got := e.localOf(2); got != -1 {
		t.Fatalf("stale localOf(2) after wrap = %d, want -1", got)
	}
}

// TestWorkQueueRampUpCoversEveryItemOnce checks the cost-ordered chunking
// mode: single branches at the expensive head, growing chunks toward the
// cheap tail, every item claimed exactly once.
func TestWorkQueueRampUpCoversEveryItemOnce(t *testing.T) {
	const n, workers = 3000, 4
	q := newWorkQueue(n, workers, 0)
	q.rampUp = true
	seen := make([]int, n)
	first := -1
	var sizes []int
	for {
		begin, end, ok := q.next()
		if !ok {
			break
		}
		if first < 0 {
			first = end - begin
		}
		sizes = append(sizes, end-begin)
		for i := begin; i < end; i++ {
			seen[i]++
		}
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d claimed %d times", i, c)
		}
	}
	if first != 1 {
		t.Fatalf("ramp-up queue must start with single-item chunks, got %d", first)
	}
	if last := sizes[len(sizes)-1]; last <= 1 && n > workers*guidedDivisor*2 {
		t.Fatalf("ramp-up chunks never grew (last=%d over %d pops)", last, len(sizes))
	}
}

// TestBranchScheduleIsDescendingCostPermutation validates the parallel
// driver's cost-ordered schedule on both framework families.
func TestBranchScheduleIsDescendingCostPermutation(t *testing.T) {
	g := gen.NoisyCliques(400, 30, 8, 900, 7)
	for _, opts := range []Options{
		{Algorithm: HBBMC, ET: 3},
		{Algorithm: BKDegen},
	} {
		s, err := NewSession(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		sched := s.branchSchedule()
		items := len(s.vertOrd)
		edgeDriven := opts.Algorithm == HBBMC
		if edgeDriven {
			items = len(s.eo.Order)
		}
		if len(sched) != items {
			t.Fatalf("%v: schedule has %d entries, want %d", opts.Algorithm, len(sched), items)
		}
		seen := make([]bool, items)
		for _, p := range sched {
			if p < 0 || int(p) >= items || seen[p] {
				t.Fatalf("%v: invalid or duplicate position %d", opts.Algorithm, p)
			}
			seen[p] = true
		}
		cost := func(p int32) int32 {
			if edgeDriven {
				return s.inc.Count(s.eo.Order[p])
			}
			v := s.vertOrd[p]
			later := int32(0)
			for _, w := range s.res.Neighbors(v) {
				if s.vertPos[w] > s.vertPos[v] {
					later++
				}
			}
			return later
		}
		if !sort.SliceIsSorted(sched, func(a, b int) bool {
			ca, cb := cost(sched[a]), cost(sched[b])
			if ca != cb {
				return ca > cb
			}
			return sched[a] < sched[b]
		}) {
			t.Fatalf("%v: schedule not in descending cost order", opts.Algorithm)
		}
	}
}

// TestCostOrderEquivalence cross-checks that the cost-ordered parallel
// schedule enumerates exactly the cliques of the raw-order schedule.
func TestCostOrderEquivalence(t *testing.T) {
	g := gen.NoisyCliques(300, 20, 8, 600, 11)
	for _, algo := range []Algorithm{HBBMC, EBBMC, BKDegen, BKRcd} {
		opts := Options{Algorithm: algo, ET: 3, Workers: 4}
		s, err := NewSession(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := s.Collect(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ablateCostOrder = true
		s2, err := NewSession(g, opts)
		if err != nil {
			ablateCostOrder = false
			t.Fatal(err)
		}
		got, _, err := s2.Collect(context.Background())
		ablateCostOrder = false
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: cost-ordered run found %d cliques, raw order %d", algo, len(want), len(got))
		}
	}
}

// TestFusedKernelPathsMatchUnfused runs the cross-validation grid with the
// fused word-parallel scans ablated, pinning the two implementations of
// every hot scan to identical output.
func TestFusedKernelPathsMatchUnfused(t *testing.T) {
	ablateUnfusedKernels = true
	defer func() { ablateUnfusedKernels = false }()
	for _, seed := range []int64{1, 2, 3} {
		g := gen.NoisyCliques(90, 9, 7, 90, seed)
		want := referenceFor(g)
		for _, algo := range []Algorithm{HBBMC, EBBMC, BKDegen, BKRef, BKRcd, BKFac} {
			for _, et := range []int{0, 3} {
				checkAgainstReference(t, "unfused", g, Options{Algorithm: algo, ET: et, GR: seed%2 == 0}, want)
			}
		}
	}
}

// TestPhaseTimersPopulate checks that Options.PhaseTimers fills the phase
// counters and that they stay zero when disabled.
func TestPhaseTimersPopulate(t *testing.T) {
	g := gen.NoisyCliques(300, 25, 8, 500, 5)
	for _, workers := range []int{1, 4} {
		s, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3, PhaseTimers: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := s.Count(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if stats.UniverseTime == 0 || stats.PivotTime == 0 {
			t.Fatalf("workers=%d: phase timers not populated: universe=%v pivot=%v", workers, stats.UniverseTime, stats.PivotTime)
		}
	}
	s, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.UniverseTime != 0 || stats.PivotTime != 0 || stats.ETTime != 0 || stats.EmitTime != 0 {
		t.Fatalf("phase timers populated although disabled: %+v", stats)
	}
}

// BenchmarkPivotScan isolates the fused pivot-selection scan on a dense
// branch universe, with the unfused per-bit baseline alongside.
func BenchmarkPivotScan(b *testing.B) {
	g := gen.NoisyCliques(2000, 120, 11, 6000, 21)
	run := func(b *testing.B, unfused bool) {
		if unfused {
			ablateUnfusedKernels = true
			defer func() { ablateUnfusedKernels = false }()
		}
		want, _, err := Count(g, Options{Algorithm: BKDegen})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, _, err := Count(g, Options{Algorithm: BKDegen})
			if err != nil {
				b.Fatal(err)
			}
			if got != want {
				b.Fatalf("got %d cliques, want %d", got, want)
			}
		}
	}
	b.Run("fused", func(b *testing.B) { run(b, false) })
	b.Run("unfused", func(b *testing.B) { run(b, true) })
}
