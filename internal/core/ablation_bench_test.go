package core

// Ablation benchmarks for the engineering decisions DESIGN.md calls out.
// Each benchmark pair runs HBBMC++ with one optimisation disabled so
// `go test -bench=Ablation` quantifies its contribution. Counts are also
// cross-checked, so these double as correctness tests for the ablated
// (pure-paper) code paths.

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
)

// ablationGraph is triangle-rich with planted communities: every ablated
// path (tiny branches, masked candidates, X-domination) is exercised.
func ablationGraph() *graph.Graph {
	return gen.NoisyCliques(4000, 220, 11, 12000, 404)
}

func runAblation(b *testing.B, flag *bool) {
	g := ablationGraph()
	want, _, err := Count(g, Defaults())
	if err != nil {
		b.Fatal(err)
	}
	if flag != nil {
		*flag = true
		defer func() { *flag = false }()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := Count(g, Defaults())
		if err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatalf("ablated run found %d cliques, want %d", got, want)
		}
	}
}

func BenchmarkAblationBaseline(b *testing.B)         { runAblation(b, nil) }
func BenchmarkAblationNoTinyBranch(b *testing.B)     { runAblation(b, &ablateTinyBranch) }
func BenchmarkAblationNoMaskFreeCheck(b *testing.B)  { runAblation(b, &ablateMaskFree) }
func BenchmarkAblationNoMaskDropping(b *testing.B)   { runAblation(b, &ablateMaskDrop) }
func BenchmarkAblationNoXDominationCut(b *testing.B) { runAblation(b, &ablateXDomination) }

// BenchmarkAblationUnfusedKernels reverts the hot recursion scans to their
// per-bit, composed two-pass forms (and BK_Rcd to full per-step degree
// rescans). Each framework runs fused and unfused back to back: the
// hybrid's branches are universe-setup-bound, so the gap is a few percent;
// the vertex-oriented recursions live in their pivot scans, where the fused
// word-parallel path is worth ~25%.
func BenchmarkAblationUnfusedKernels(b *testing.B) {
	g := ablationGraph()
	for _, cfg := range []struct {
		name string
		opts Options
	}{
		{"HBBMCpp", Defaults()},
		{"RDegen", Options{Algorithm: BKDegen, GR: true}},
		{"RRcd", Options{Algorithm: BKRcd, GR: true}},
	} {
		want, _, err := Count(g, cfg.opts)
		if err != nil {
			b.Fatal(err)
		}
		run := func(b *testing.B, unfused bool) {
			if unfused {
				ablateUnfusedKernels = true
				defer func() { ablateUnfusedKernels = false }()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, _, err := Count(g, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				if got != want {
					b.Fatalf("unfused=%v found %d cliques, want %d", unfused, got, want)
				}
			}
		}
		b.Run(cfg.name+"/fused", func(b *testing.B) { run(b, false) })
		b.Run(cfg.name+"/unfused", func(b *testing.B) { run(b, true) })
	}
}

// runParallelAblation measures EnumerateParallel end to end — emit
// callback included, so lock traffic counts — on a skewed hub-heavy graph
// where static striding suffers its worst load imbalance.
func runParallelAblation(b *testing.B, static bool, workers int) {
	if old := runtime.GOMAXPROCS(0); old < workers {
		runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(old)
	}
	g := gen.BA(30000, 24, 99)
	opts := Options{Algorithm: HBBMC, ET: 3, GR: true}
	want, _, err := Count(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	if static {
		ablateStaticStride = true
		defer func() { ablateStaticStride = false }()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got int64
		stats, err := EnumerateParallel(g, opts, workers, func([]int32) { got++ })
		if err != nil {
			b.Fatal(err)
		}
		if got != want || stats.Cliques != want {
			b.Fatalf("found %d cliques (stats %d), want %d", got, stats.Cliques, want)
		}
	}
}

// BenchmarkParallelScheduler compares the dynamic work queue plus batched
// emit ("dynamic") against the seed's static modulo striding with a
// per-clique emit lock ("staticstride").
func BenchmarkParallelScheduler(b *testing.B) {
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("dynamic/w%d", workers), func(b *testing.B) { runParallelAblation(b, false, workers) })
		b.Run(fmt.Sprintf("staticstride/w%d", workers), func(b *testing.B) { runParallelAblation(b, true, workers) })
	}
}

// TestAblatedPathsStillCorrect runs the cross-validation grid with every
// optimisation disabled — the closest configuration to the paper's plain
// pseudo-code.
func TestAblatedPathsStillCorrect(t *testing.T) {
	ablateTinyBranch = true
	ablateMaskFree = true
	ablateMaskDrop = true
	ablateXDomination = true
	defer func() {
		ablateTinyBranch = false
		ablateMaskFree = false
		ablateMaskDrop = false
		ablateXDomination = false
	}()
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		g := gen.NoisyCliques(80, 8, 7, 80, seed)
		want := referenceFor(g)
		for _, algo := range []Algorithm{HBBMC, EBBMC} {
			for _, et := range []int{0, 3} {
				checkAgainstReference(t, "ablated", g, Options{Algorithm: algo, ET: et, GR: seed%2 == 0}, want)
			}
		}
	}
}
