package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/verify"
)

// collectRange runs one branch-range query and returns its cliques.
func collectRange(t *testing.T, s *Session, lo, hi, workers int) [][]int32 {
	t.Helper()
	var out [][]int32
	_, err := s.EnumerateWith(context.Background(), QueryOptions{
		Workers:  workers,
		BranchLo: lo,
		BranchHi: hi,
	}, func(c []int32) bool {
		out = append(out, append([]int32(nil), c...))
		return true
	})
	if err != nil {
		t.Fatalf("range [%d,%d) w=%d: %v", lo, hi, workers, err)
	}
	return out
}

// TestBranchRangePartitionEquivalence is the core contract the distributed
// coordinator relies on: for every algorithm, any partition of
// [0, NumTopBranches()) into branch-range queries yields, across the
// shards' streams, exactly the clique multiset of an unranged run —
// reduction cliques and isolated vertices included once, via the shard
// holding position 0.
func TestBranchRangePartitionEquivalence(t *testing.T) {
	withProcs(t, 4)
	rng := rand.New(rand.NewSource(701))
	algos := []Algorithm{BK, BKPivot, BKRef, BKDegen, BKDegree, BKRcd, BKFac, EBBMC, HBBMC}
	for iter := 0; iter < 12; iter++ {
		n := 1 + rng.Intn(36)
		g := randomGraph(rng, n, rng.Intn(5*n))
		want := referenceFor(g)
		for _, algo := range algos {
			opts := Options{Algorithm: algo, ET: 3, GR: iter%2 == 0}
			s, err := NewSession(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			branches := s.NumTopBranches()
			for _, shards := range []int{1, 2, 3} {
				for _, workers := range []int{1, 3} {
					// Random cut points partition [0, branches).
					cuts := make([]int, 0, shards+1)
					cuts = append(cuts, 0)
					for i := 1; i < shards; i++ {
						cuts = append(cuts, rng.Intn(branches+1))
					}
					cuts = append(cuts, branches)
					// Insertion-sort the few cut points.
					for i := 1; i < len(cuts); i++ {
						for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
							cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
						}
					}
					var got [][]int32
					if branches == 0 {
						// No branch space to partition; the [0,0) descriptor
						// (the QueryOptions full-run sentinel) still owns the
						// preprocessing residue — reduction cliques on a
						// fully-reduced graph.
						got = collectRange(t, s, 0, 0, workers)
					} else {
						for i := 0; i+1 < len(cuts); i++ {
							lo, hi := cuts[i], cuts[i+1]
							if lo == 0 && hi == 0 {
								// Empty leading interval: nothing to dispatch
								// (and [0,0) would read as the full-run
								// sentinel); the next interval starts at 0
								// and owns the residue.
								continue
							}
							got = append(got, collectRange(t, s, lo, hi, workers)...)
						}
					}
					label := fmt.Sprintf("iter%d/%v/shards%d/w%d cuts=%v", iter, algo, shards, workers, cuts)
					if d := verify.Diff(got, want); d != "" {
						t.Fatalf("%s: %s", label, d)
					}
				}
			}
		}
	}
}

// TestBranchRangeResidueOwnership pins the residue rule on a graph with
// both reduction cliques and isolated vertices: only the shard containing
// position 0 emits them.
func TestBranchRangeResidueOwnership(t *testing.T) {
	// A path plus isolated vertices: reduction removes degree-1 chains, and
	// vertices 6..9 are isolated 1-cliques.
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.MustBuild()
	for _, algo := range []Algorithm{BKDegen, HBBMC} {
		s, err := NewSession(g, Options{Algorithm: algo, ET: 3, GR: true})
		if err != nil {
			t.Fatal(err)
		}
		branches := s.NumTopBranches()
		want := referenceFor(g)
		full := collectRange(t, s, 0, branches, 1)
		if d := verify.Diff(full, want); d != "" {
			t.Fatalf("%v full range: %s", algo, d)
		}
		if branches >= 2 {
			head := collectRange(t, s, 0, 1, 1)
			tail := collectRange(t, s, 1, branches, 1)
			if d := verify.Diff(append(head, tail...), want); d != "" {
				t.Fatalf("%v head+tail: %s", algo, d)
			}
		}
	}
}

// TestBranchRangeValidation checks the two rejection paths: a malformed
// interval and one that exceeds the session's branch space.
func TestBranchRangeValidation(t *testing.T) {
	g := gen.NoisyCliques(40, 5, 4, 60, 3)
	s, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EnumerateWith(context.Background(), QueryOptions{BranchLo: 3, BranchHi: 1}, nil); err == nil {
		t.Fatal("inverted branch range accepted")
	}
	if _, err := s.EnumerateWith(context.Background(), QueryOptions{BranchLo: -1, BranchHi: 1}, nil); err == nil {
		t.Fatal("negative branch range accepted")
	}
	over := s.NumTopBranches() + 1
	if _, err := s.EnumerateWith(context.Background(), QueryOptions{BranchLo: 0, BranchHi: over}, nil); err == nil {
		t.Fatal("out-of-bounds branch range accepted")
	}
}

// TestOrderingFingerprintDiscriminates: sessions over the same graph with
// different orderings (and over different graphs) disagree, identical
// sessions agree.
func TestOrderingFingerprintDiscriminates(t *testing.T) {
	g := gen.NoisyCliques(60, 6, 5, 100, 11)
	a1, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a1.OrderingFingerprint() != a2.OrderingFingerprint() {
		t.Fatal("identical sessions disagree on OrderingFingerprint")
	}
	if a1.GraphFingerprint() != a2.GraphFingerprint() {
		t.Fatal("identical sessions disagree on GraphFingerprint")
	}
	b, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3, EdgeOrder: EdgeOrderMinDegree})
	if err != nil {
		t.Fatal(err)
	}
	if a1.OrderingFingerprint() == b.OrderingFingerprint() {
		t.Fatal("different edge orders share an OrderingFingerprint")
	}
	g2 := gen.NoisyCliques(60, 6, 5, 100, 12)
	c, err := NewSession(g2, Options{Algorithm: HBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a1.GraphFingerprint() == c.GraphFingerprint() {
		t.Fatal("different graphs share a GraphFingerprint")
	}
}

// TestRampUpChunkMatchesQueue: the exported policy and the work queue's
// ramp-up mode must hand out identical chunk sequences — the property that
// makes remote shard streams and local worker claims the same decomposition.
func TestRampUpChunkMatchesQueue(t *testing.T) {
	const n, workers = 500, 3
	q := newWorkQueue(n, workers, 0)
	q.rampUp = true
	pos := 0
	for {
		begin, end, ok := q.next()
		if !ok {
			break
		}
		want := RampUpChunk(pos, n-pos, workers)
		if begin != pos || end-begin != want {
			t.Fatalf("queue gave [%d,%d) at pos %d, policy says chunk %d", begin, end, pos, want)
		}
		pos = end
	}
	if pos != n {
		t.Fatalf("queue drained at %d of %d", pos, n)
	}
	if RampUpChunk(0, 0, workers) != 0 {
		t.Fatal("RampUpChunk(remaining=0) must be 0")
	}
}
