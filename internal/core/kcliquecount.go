package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/graphmining/hbbmc/internal/bitset"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/reduce"
)

// This file implements k-clique counting (Session.CountKCliques), promoted
// from the standalone internal/kclique seed onto the session kernels: the
// branches come from the session's cached orderings (the truss edge order
// with masked adjacency rows for the edge-driven algorithms, the vertex
// ordering otherwise), the candidate sets live in the engine's epoch-
// stamped universes, and the recursion counts through the fused
// intersect+popcount kernels with arena scratch — the same machinery the
// enumerator runs on.
//
// Correctness note on graph reduction: k-clique counting is defined over
// the *input* graph, but a GR session's cached orderings cover only the
// residual graph — the reduction peels vertices whose maximal cliques are
// known, which is sound for MCE but drops their k-cliques. Sessions whose
// reduction removed nothing (and whose algorithm has an ordering) count on
// the cached preprocessing; any other session lazily builds — once, cached
// like the branch schedule — a degeneracy ordering of the source graph and
// counts over that instead.

// kcliqueRec counts the cliques of exactly `need` vertices inside the
// candidate set C (cSize = |C|), accumulating into Stats.KCliques.
// Uniqueness is by consume-ascending iteration: once a candidate's subtree
// is explored the candidate leaves C, so no clique is reachable through two
// of its members. adj carries the branch's adjacency rows (masked inside
// edge branches).
//
//hbbmc:noalloc
func (e *engine) kcliqueRec(adj []bitset.Set, C bitset.Set, cSize, need int) {
	if need == 1 {
		e.stats.KCliques += int64(cSize)
		return
	}
	if cSize < need {
		return
	}
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	if need == 2 {
		// Bottom level fused: the edges among C, counted consume-ascending
		// without materialising child sets.
		for v := C.First(); v >= 0; v = C.First() {
			C.Unset(v)
			e.stats.KCliques += int64(C.AndCount(adj[v]))
		}
		return
	}
	mark := e.setArena.Mark()
	childC := e.setArena.GetUnzeroed()
	for v := C.First(); v >= 0 && cSize >= need; v = C.First() {
		C.Unset(v)
		cSize--
		cnt := childC.AndIntoCount(C, adj[v])
		e.kcliqueRec(adj, childC, cnt, need-1)
	}
	e.setArena.Release(mark)
}

// runVertexKBranch counts the k-cliques whose earliest-ordered vertex is
// ord[p]: candidates are the later-ordered neighbors, and the inner
// recursion needs k-1 of them.
//
//hbbmc:noalloc
func (e *engine) runVertexKBranch(ord, pos []int32, p, k int) {
	v := ord[p]
	e.stats.TopBranches++
	pv := pos[v]
	e.listBuf = e.listBuf[:0]
	for _, w := range e.g.Neighbors(v) {
		if pos[w] > pv {
			e.listBuf = append(e.listBuf, w)
		}
	}
	inC := len(e.listBuf)
	if inC < k-1 {
		return
	}
	e.setUniverse(e.listBuf, -1, inC)
	C := e.setArena.Get()
	for j := 0; j < inC; j++ {
		C.Set(j)
	}
	e.kcliqueRec(e.adjG, C, inC, k-1)
}

// runEdgeKBranch counts the k-cliques whose minimum-rank edge is eid
// (k >= 3; the driver resolves smaller k without branching): candidates are
// the common neighbors whose triangle side edges both rank later, exactly
// the EBBkC classification of the kclique seed, and the recursion runs on
// the masked adjacency so every remaining edge of a counted clique ranks
// later too — each k-clique is counted at exactly one edge branch. For
// k == 3 the candidates themselves are the count and no universe is built.
//
//hbbmc:noalloc
func (e *engine) runEdgeKBranch(eid int32, k int) {
	r := e.eo.Rank[eid]
	e.stats.TopBranches++
	if e.inc.Count(eid) == 0 {
		return
	}
	e.listBuf = e.listBuf[:0]
	e.sideBuf = e.sideBuf[:0]
	lo, hi := e.inc.Range(eid)
	if k == 3 {
		n := int64(0)
		for t := lo; t < hi; t++ {
			if e.eo.Rank[e.inc.CoSrc(t)] > r && e.eo.Rank[e.inc.CoDst(t)] > r {
				n++
			}
		}
		e.stats.KCliques += n
		return
	}
	for t := lo; t < hi; t++ {
		cn := commonNeighbor{w: e.inc.Third(t), ea: e.inc.CoSrc(t), eb: e.inc.CoDst(t)}
		if e.eo.Rank[cn.ea] > r && e.eo.Rank[cn.eb] > r {
			e.listBuf = append(e.listBuf, cn.w)
			e.sideBuf = append(e.sideBuf, e.cheapSide(cn))
		}
	}
	inC := len(e.listBuf)
	if inC < k-2 {
		return
	}
	t0 := e.now()
	e.installUniverse(e.listBuf, r, inC)
	e.fillRowsFromIncidence(r, inC)
	e.addUniverse(t0)
	C := e.setArena.Get()
	for j := 0; j < inC; j++ {
		C.Set(j)
	}
	e.kcliqueRec(e.adjH, C, inC, k-2)
}

// kcBasis is the branch basis one CountKCliques query runs on: a graph, the
// reduction result the engine is built with, and either a vertex ordering
// or the session's edge order (edgeDriven).
type kcBasis struct {
	g          *kcGraph
	edgeDriven bool
	ord, pos   []int32
	sched      []int32 // cost-ordered schedule positions, nil = raw order
}

// kcGraph bundles the graph and reduction an engine needs; split out so the
// session-preprocessing path and the source-graph fallback share one shape.
type kcGraph struct {
	res *graph.Graph
	red *reduce.Result
}

// ensureKCBasis lazily builds the source-graph fallback basis: a degeneracy
// ordering of s.src plus an identity reduction, computed once and cached on
// the session like the branch schedule is.
func (s *Session) ensureKCBasis() {
	s.kcOnce.Do(func() {
		d := order.DegeneracyOrdering(s.src)
		s.kcOrd, s.kcPos = d.Order, d.Pos
		s.kcRed = reduce.Identity(s.src)
		s.kcBytes.Store(int64(len(s.kcOrd)+len(s.kcPos))*4 + s.kcRed.MemoryFootprint())
	})
}

// kcBasisFor resolves which branch basis a CountKCliques query runs on.
func (s *Session) kcBasisFor() kcBasis {
	sessionUsable := s.red.NumRemoved == 0 &&
		s.opts.Algorithm != BK && s.opts.Algorithm != BKPivot
	if !sessionUsable {
		s.ensureKCBasis()
		return kcBasis{
			g:   &kcGraph{res: s.src, red: s.kcRed},
			ord: s.kcOrd, pos: s.kcPos,
		}
	}
	if s.opts.Algorithm == EBBMC || s.opts.Algorithm == HBBMC {
		return kcBasis{
			g:          &kcGraph{res: s.res, red: s.red},
			edgeDriven: true,
			sched:      s.branchSchedule(),
		}
	}
	return kcBasis{
		g:   &kcGraph{res: s.res, red: s.red},
		ord: s.vertOrd, pos: s.vertPos,
		sched: s.branchSchedule(),
	}
}

// CountKCliques returns the number of k-vertex cliques of the session's
// input graph (not just the maximal ones — every clique of exactly k
// vertices counts once). k = 1 counts vertices, k = 2 edges; larger k runs
// the EBBkC-style branch recursion on the session kernels, in parallel when
// opts.Workers > 1. The count is also available as Stats.KCliques, which is
// how the partial counts of workers — and of an interrupted run — compose.
//
// A cancelled or deadline-exceeded query returns the partial count together
// with an error wrapping ctx.Err(). QueryOptions branch ranges and clique
// budgets apply to enumeration queries only (ranges are rejected).
func (s *Session) CountKCliques(ctx context.Context, k int, q QueryOptions) (int64, *Stats, error) {
	if k <= 0 {
		return 0, nil, fmt.Errorf("core: CountKCliques needs k >= 1, got %d", k)
	}
	opts, err := q.apply(s.opts)
	if err != nil {
		return 0, nil, err
	}
	if q.rng().set {
		return 0, nil, errors.New("core: branch ranges apply to enumeration queries only")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts.MaxCliques = 0
	rc := newRunControl(ctx, opts)

	requested := opts.Workers
	workers := resolveWorkers(requested)
	stats := s.baseStats(workers)
	enum := time.Now()

	switch k {
	case 1:
		stats.KCliques = int64(s.src.NumVertices())
		stats.Workers = 1
		stats.EnumTime = time.Since(enum)
		return stats.KCliques, stats, nil
	case 2:
		stats.KCliques = int64(s.src.NumEdges())
		stats.Workers = 1
		stats.EnumTime = time.Since(enum)
		return stats.KCliques, stats, nil
	}

	basis := s.kcBasisFor()
	items := len(basis.ord)
	if basis.edgeDriven {
		items = len(s.eo.Order)
	}

	if workers <= 1 {
		stats.Workers = 1
		e := newEngine(basis.g.res, basis.g.red, opts, stats, nil, rc)
		e.eo, e.inc = s.eo, s.inc
		s.runKCRange(rc, e, basis, 0, items, k)
		if requested > 1 || requested == UseAllCores {
			stats.ParallelFallback = "single worker"
		}
		stats.EnumTime = time.Since(enum)
		return stats.KCliques, stats, rc.err()
	}

	queue := newWorkQueueRange(0, items, workers, opts.ParallelChunkSize)
	queue.rampUp = basis.sched != nil && opts.ParallelChunkSize <= 0
	workerStats := make([]*Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := &Stats{}
		workerStats[w] = ws
		e := newEngine(basis.g.res, basis.g.red, opts, ws, nil, rc)
		e.eo, e.inc = s.eo, s.inc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !rc.halted() {
				begin, end, ok := queue.next()
				if !ok {
					return
				}
				s.runKCRange(rc, e, basis, begin, end, k)
			}
		}()
	}
	wg.Wait()
	for _, ws := range workerStats {
		stats.merge(ws)
	}
	stats.EnumTime = time.Since(enum)
	return stats.KCliques, stats, rc.err()
}

// runKCRange executes the branch positions [begin, end) of one
// CountKCliques query (schedule positions when the basis carries a cost
// schedule, raw ordering positions otherwise).
//
//hbbmc:ctxpoll
func (s *Session) runKCRange(rc *runControl, e *engine, basis kcBasis, begin, end, k int) {
	for i := begin; i < end; i++ {
		if rc.halted() {
			return
		}
		p := i
		if basis.sched != nil {
			p = int(basis.sched[i])
		}
		if basis.edgeDriven {
			e.runEdgeKBranch(s.eo.Order[p], k)
		} else {
			e.runVertexKBranch(basis.ord, basis.pos, p, k)
		}
	}
}
