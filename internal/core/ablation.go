package core

// Ablation switches for the engineering decisions layered on top of the
// paper's algorithms. They exist so the benchmark suite can measure each
// optimisation's contribution (see ablation_bench_test.go); all default to
// false (optimisation enabled) and are only mutated from benchmarks, which
// run sequentially.
var (
	// ablateTinyBranch disables the inline resolution of top-level edge
	// branches with at most two common neighbors.
	ablateTinyBranch bool
	// ablateMaskFree disables the branch-level "no masked candidate edge"
	// detection that downgrades hybrid branches to the unmasked recursion.
	ablateMaskFree bool
	// ablateMaskDrop disables the per-node hereditary mask dropping inside
	// the pivot/refined recursions.
	ablateMaskDrop bool
	// ablateXDomination disables the exclusion-dominator subtree prune in
	// the pivot recursion.
	ablateXDomination bool
	// ablateStaticStride reverts EnumerateParallel to the legacy static
	// modulo striding with one emit-lock round-trip per clique, the
	// baseline the dynamic scheduler and batched emit are measured against.
	ablateStaticStride bool
	// ablateUnfusedKernels reverts the hot recursion scans to their
	// composed, per-bit forms: First/NextAfter iteration instead of the
	// word iterator, separate intersect-then-count passes instead of the
	// fused kernels, and BK_Rcd's full per-step degree rescan instead of
	// incremental count maintenance.
	ablateUnfusedKernels bool
	// ablateCostOrder disables the descending-cost ordering of top-level
	// branches in the parallel scheduler, reverting to raw edge/vertex
	// ordering positions.
	ablateCostOrder bool
)
