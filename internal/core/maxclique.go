package core

import (
	"context"
	"errors"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphmining/hbbmc/internal/bitset"
	"github.com/graphmining/hbbmc/internal/graph"
)

// This file implements the exact maximum-clique query (Session.MaxClique):
// branch and bound over the session's top-level branch space, in the style
// of the bit-parallel BnB solvers (San Segundo et al.; Pattabiraman et al.,
// see PAPERS.md). The search reuses the enumeration engine's universes,
// adjacency rows and arenas; what changes is the recursion — no exclusion
// set (maximality is irrelevant, only size), a greedy-coloring upper bound
// per node, and an incumbent shared atomically by every worker so one
// worker's improvement immediately tightens every other worker's bound.

// mcShared is the incumbent state shared by every engine of one MaxClique
// query. The size is an atomic so the recursion's bound checks are a plain
// load on the hot path; the witness clique is updated under the mutex only
// when the size actually improves — O(ω) times per run.
type mcShared struct {
	best atomic.Int64 // incumbent size, read lock-free by bound checks
	mu   sync.Mutex
	//hbbmc:guardedby mu
	clique []int32 // incumbent witness, original vertex ids
}

// offer installs clique (original ids; the slice is copied) as the
// incumbent when it is strictly larger than the current one, and reports
// whether it did. The double check under the mutex makes concurrent offers
// of equal size idempotent.
func (m *mcShared) offer(clique []int32) bool {
	n := int64(len(clique))
	if n <= m.best.Load() {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if n <= m.best.Load() {
		return false
	}
	m.clique = append(m.clique[:0], clique...)
	m.best.Store(n)
	return true
}

// snapshot returns a sorted copy of the incumbent witness.
func (m *mcShared) snapshot() []int32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]int32(nil), m.clique...)
	slices.Sort(out)
	return out
}

// offerS maps the engine's current partial clique S to original ids and
// offers it as the incumbent. Deliberately outside the noalloc recursion:
// the incumbent copy may allocate, but improvements happen at most ω times
// per worker while leaves are reached exponentially often.
func (e *engine) offerS(mc *mcShared) {
	e.emitBuf = e.emitBuf[:0]
	for _, v := range e.S {
		e.emitBuf = append(e.emitBuf, e.red.OrigID[v])
	}
	if mc.offer(e.emitBuf) {
		e.stats.IncumbentUpdates++
	}
	if len(e.S) > e.stats.MaxCliqueSize {
		e.stats.MaxCliqueSize = len(e.S)
	}
}

// colorOrder fills order and colors (both of length |C|) with a greedy
// coloring of the candidate graph: vertices grouped into independent color
// classes, appended in ascending class number. A clique can use at most one
// vertex per class, so depth + colors[i] bounds every clique reachable
// through order[i] — and because the array is ascending in color, one
// failed bound check prunes the entire remaining prefix at once.
//
//hbbmc:noalloc
func (e *engine) colorOrder(adj []bitset.Set, C bitset.Set, order, colors []int32) {
	mark := e.setArena.Mark()
	uncolored := e.setArena.GetUnzeroed()
	uncolored.CopyFrom(C)
	q := e.setArena.GetUnzeroed()
	idx := 0
	for color := int32(1); ; color++ {
		v := uncolored.First()
		if v < 0 {
			break
		}
		// One pass per color class: greedily take mutually non-adjacent
		// vertices from the uncolored pool.
		q.CopyFrom(uncolored)
		for v >= 0 {
			q.Unset(v)
			q.AndNotWith(adj[v])
			uncolored.Unset(v)
			order[idx] = int32(v)
			colors[idx] = color
			idx++
			v = q.First()
		}
	}
	e.setArena.Release(mark)
}

// maxCliqueRec is the branch-and-bound recursion: S (implicit in e.S) is
// the current clique, C the candidates (all adjacent to every member of S),
// cSize = |C|. adj carries the candidate adjacency rows — the masked rows
// inside edge branches, the full rows otherwise. Candidates are branched in
// descending greedy-color order; a node whose depth + color bound cannot
// beat the shared incumbent is cut, and the cut covers every remaining
// candidate of the loop because the order is ascending in color.
//
//hbbmc:noalloc
func (e *engine) maxCliqueRec(adj []bitset.Set, C bitset.Set, cSize int, mc *mcShared) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.BnBCalls++
	depth := len(e.S)
	if depth+cSize <= int(mc.best.Load()) {
		e.stats.BnBPrunes++
		return
	}
	smark := e.setArena.Mark()
	cmark := e.cntArena.mark()
	order := e.cntArena.get(cSize)
	colors := e.cntArena.get(cSize)
	e.colorOrder(adj, C, order, colors)
	childC := e.setArena.GetUnzeroed()
	for i := cSize - 1; i >= 0; i-- {
		if depth+int(colors[i]) <= int(mc.best.Load()) {
			// order is ascending in color: every remaining candidate has an
			// equal or lower bound, so the rest of the loop is pruned too.
			e.stats.BnBPrunes++
			break
		}
		v := int(order[i])
		cnt := childC.AndIntoCount(C, adj[v])
		e.S = append(e.S, e.verts[v])
		if cnt == 0 {
			e.offerS(mc)
		} else {
			e.maxCliqueRec(adj, childC, cnt, mc)
		}
		e.S = e.S[:depth]
		C.Unset(v)
	}
	e.setArena.Release(smark)
	e.cntArena.release(cmark)
}

// runVertexMaxBranch evaluates one vertex-ordered top-level branch of a
// max-clique query: S = {v}, candidates the later-ordered neighbors of v.
// Every maximal clique — the maximum one included — is reachable from the
// branch of its earliest-ordered vertex, so coverage is exact. Unlike the
// enumeration driver no exclusion side is materialised, and a branch whose
// whole candidate set cannot beat the incumbent is skipped before any
// universe is installed.
//
//hbbmc:noalloc
func (e *engine) runVertexMaxBranch(ord, pos []int32, p int, mc *mcShared) {
	v := ord[p]
	e.stats.TopBranches++
	pv := pos[v]
	e.listBuf = e.listBuf[:0]
	for _, w := range e.g.Neighbors(v) {
		if pos[w] > pv {
			e.listBuf = append(e.listBuf, w)
		}
	}
	inC := len(e.listBuf)
	if 1+inC <= int(mc.best.Load()) {
		e.stats.BnBPrunes++
		return
	}
	e.S = append(e.S[:0], v)
	if inC == 0 {
		e.offerS(mc)
		return
	}
	e.setUniverse(e.listBuf, -1, inC)
	C := e.setArena.Get()
	for j := 0; j < inC; j++ {
		C.Set(j)
	}
	e.maxCliqueRec(e.adjG, C, inC, mc)
}

// runEdgeMaxBranch is runVertexMaxBranch's edge-oriented sibling for the
// EBBMC/HBBMC sessions: S = {a, b}, candidates the common neighbors whose
// triangle side edges both rank later (runEdgeBranch's classification). The
// recursion runs on the masked adjacency: at the branch of a clique's
// minimum-rank edge every other member pair also ranks later, so the
// maximum clique survives the mask, while duplicated work in higher-rank
// branches is cut.
//
//hbbmc:noalloc
func (e *engine) runEdgeMaxBranch(eid int32, mc *mcShared) {
	a, b := e.g.EdgeEndpoints(eid)
	r := e.eo.Rank[eid]
	e.stats.TopBranches++
	best := int(mc.best.Load())
	if 2+int(e.inc.Count(eid)) <= best {
		// Even all common neighbors together cannot beat the incumbent;
		// skip before scanning the incidence list.
		e.stats.BnBPrunes++
		return
	}
	e.S = append(e.S[:0], a, b)
	e.listBuf = e.listBuf[:0]
	e.sideBuf = e.sideBuf[:0]
	lo, hi := e.inc.Range(eid)
	for t := lo; t < hi; t++ {
		cn := commonNeighbor{w: e.inc.Third(t), ea: e.inc.CoSrc(t), eb: e.inc.CoDst(t)}
		if e.eo.Rank[cn.ea] > r && e.eo.Rank[cn.eb] > r {
			e.listBuf = append(e.listBuf, cn.w)
			e.sideBuf = append(e.sideBuf, e.cheapSide(cn))
		}
	}
	inC := len(e.listBuf)
	if 2+inC <= best {
		e.stats.BnBPrunes++
		return
	}
	if inC == 0 {
		e.offerS(mc)
		return
	}
	t0 := e.now()
	e.installUniverse(e.listBuf, r, inC)
	e.fillRowsFromIncidence(r, inC)
	e.addUniverse(t0)
	C := e.setArena.Get()
	for j := 0; j < inC; j++ {
		C.Set(j)
	}
	e.maxCliqueRec(e.adjH, C, inC, mc)
}

// runWholeMaxBranch runs the single whole-graph branch of the BK/BKPivot
// sessions: S empty, candidates every residual vertex.
func (e *engine) runWholeMaxBranch(mc *mcShared) {
	n := e.g.NumVertices()
	e.stats.TopBranches++
	if n == 0 {
		return
	}
	e.listBuf = e.listBuf[:0]
	for v := int32(0); v < int32(n); v++ {
		e.listBuf = append(e.listBuf, v)
	}
	e.S = e.S[:0]
	e.setUniverse(e.listBuf, -1, n)
	C := e.setArena.Get()
	for j := 0; j < n; j++ {
		C.Set(j)
	}
	e.maxCliqueRec(e.adjG, C, n, mc)
}

// greedyClique builds a maximal clique of g greedily — start from a
// maximum-degree vertex, repeatedly add the candidate with the most
// neighbors inside the shrinking candidate set — the classic heuristic
// incumbent of the BnB literature. Exact size does not matter; any
// reasonable lower bound lets the first branches prune, and the search
// itself recovers whatever the heuristic missed.
func greedyClique(g *graph.Graph) []int32 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	start := int32(0)
	for v := int32(1); v < int32(n); v++ {
		if g.Degree(v) > g.Degree(start) {
			start = v
		}
	}
	cand := bitset.New(n)
	candN := 0
	for _, w := range g.Neighbors(start) {
		cand.Set(int(w))
		candN++
	}
	clique := []int32{start}
	row := bitset.New(n)
	for candN > 0 {
		bestV, bestCnt := int32(-1), -1
		for i := cand.First(); i >= 0; i = cand.NextAfter(i) {
			cnt := 0
			for _, w := range g.Neighbors(int32(i)) {
				if cand.Has(int(w)) {
					cnt++
				}
			}
			if cnt > bestCnt {
				bestCnt, bestV = cnt, int32(i)
			}
		}
		clique = append(clique, bestV)
		cand.Unset(int(bestV))
		row.Clear()
		for _, w := range g.Neighbors(bestV) {
			row.Set(int(w))
		}
		cand.AndWith(row)
		candN = cand.Count()
	}
	return clique
}

// MaxClique solves the exact maximum-clique problem on the session's graph:
// branch and bound over the session's cost-ordered top-level branches with
// a greedy-coloring upper bound per node and an incumbent seeded by the
// reduction cliques plus a greedy heuristic clique. With opts.Workers > 1
// the branches run on worker goroutines sharing the incumbent bound
// atomically, so one worker's improvement prunes every other worker's
// subtrees. It returns the maximum clique (original vertex ids, sorted
// ascending) and the query Stats; Stats.MaxCliqueSize is ω,
// Stats.BnBCalls/BnBPrunes describe the search.
//
// A cancelled or deadline-exceeded query returns the best incumbent found
// so far together with an error wrapping ctx.Err(). QueryOptions branch
// ranges and clique budgets apply to enumeration queries only and are
// ignored here (ranges are rejected: a range-restricted incumbent would be
// silently wrong).
func (s *Session) MaxClique(ctx context.Context, q QueryOptions) ([]int32, *Stats, error) {
	opts, err := q.apply(s.opts)
	if err != nil {
		return nil, nil, err
	}
	if q.rng().set {
		return nil, nil, errors.New("core: branch ranges apply to enumeration queries only")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts.MaxCliques = 0 // a clique budget is an enumeration concept
	rc := newRunControl(ctx, opts)

	mc := &mcShared{}
	seeds := 0
	// Reduction cliques are maximal cliques of the input graph (original
	// ids already); the largest one seeds the incumbent.
	bestRed := -1
	for i, c := range s.red.Cliques {
		if bestRed < 0 || len(c) > len(s.red.Cliques[bestRed]) {
			bestRed = i
		}
	}
	if bestRed >= 0 && mc.offer(s.red.Cliques[bestRed]) {
		seeds++
	}
	// The greedy heuristic clique of the residual graph (mapped back to
	// original ids) is the classic initial incumbent.
	if h := greedyClique(s.res); len(h) > 0 {
		for i, v := range h {
			h[i] = s.red.OrigID[v]
		}
		if mc.offer(h) {
			seeds++
		}
	}

	requested := opts.Workers
	workers := resolveWorkers(requested)
	var stats *Stats
	if workers <= 1 || sequentialFallback(opts, workers) != "" {
		stats = s.runMaxCliqueSeq(rc, opts, mc)
		if fb := sequentialFallback(opts, workers); fb != "" && workers > 1 {
			stats.ParallelFallback = fb
		} else if requested > 1 || requested == UseAllCores {
			stats.ParallelFallback = "single worker"
		}
	} else {
		stats = s.runMaxCliquePar(rc, opts, workers, mc)
	}
	stats.IncumbentUpdates += int64(seeds)
	if best := int(mc.best.Load()); best > stats.MaxCliqueSize {
		stats.MaxCliqueSize = best
	}
	return mc.snapshot(), stats, rc.err()
}

// runMaxCliqueSeq executes the branch-and-bound on a single goroutine.
//
//hbbmc:ctxpoll
func (s *Session) runMaxCliqueSeq(rc *runControl, opts Options, mc *mcShared) *Stats {
	stats := s.baseStats(1)
	enum := time.Now()
	e := newEngine(s.res, s.red, opts, stats, nil, rc)
	e.eo, e.inc = s.eo, s.inc
	switch opts.Algorithm {
	case BK, BKPivot:
		if !rc.halted() {
			e.runWholeMaxBranch(mc)
		}
	case EBBMC, HBBMC:
		for _, eid := range s.eo.Order {
			if rc.halted() {
				break
			}
			e.runEdgeMaxBranch(eid, mc)
		}
	default:
		for p := range s.vertOrd {
			if rc.halted() {
				break
			}
			e.runVertexMaxBranch(s.vertOrd, s.vertPos, p, mc)
		}
	}
	stats.EnumTime = time.Since(enum)
	return stats
}

// runMaxCliquePar distributes the top-level branches over workers through
// the same cost-ordered dynamic queue the parallel enumerator uses; the
// shared incumbent is the only cross-worker state, so the LPT-style
// schedule (expensive branches first) doubles as a bound-tightening
// schedule — the big branches that establish ω run before the cheap tail
// that then prunes against it.
func (s *Session) runMaxCliquePar(rc *runControl, opts Options, workers int, mc *mcShared) *Stats {
	stats := s.baseStats(workers)
	enum := time.Now()
	edgeDriven := opts.Algorithm == EBBMC || opts.Algorithm == HBBMC
	items := len(s.vertOrd)
	if edgeDriven {
		items = len(s.eo.Order)
	}
	sched := s.branchSchedule()
	queue := newWorkQueueRange(0, items, workers, opts.ParallelChunkSize)
	queue.rampUp = sched != nil && opts.ParallelChunkSize <= 0

	workerStats := make([]*Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := &Stats{}
		workerStats[w] = ws
		e := newEngine(s.res, s.red, opts, ws, nil, rc)
		e.eo, e.inc = s.eo, s.inc
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !rc.halted() {
				begin, end, ok := queue.next()
				if !ok {
					return
				}
				for i := begin; i < end; i++ {
					p := i
					if sched != nil {
						p = int(sched[i])
					}
					if edgeDriven {
						e.runEdgeMaxBranch(s.eo.Order[p], mc)
					} else {
						e.runVertexMaxBranch(s.vertOrd, s.vertPos, p, mc)
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, ws := range workerStats {
		stats.merge(ws)
	}
	stats.EnumTime = time.Since(enum)
	return stats
}
