package core

import (
	"sync"
	"sync/atomic"
)

// guidedDivisor controls the guided self-scheduling decay: each queue pop
// claims remaining/(workers·guidedDivisor) items, so chunks start large
// (low contention while every worker is busy) and shrink geometrically to
// single items toward the tail, where the skew of the truss/degeneracy
// order concentrates the imbalance.
const guidedDivisor = 4

// RampUpChunk is the guided ramp-up chunk policy for cost-ordered branch
// queues: position pos counts branches already claimed off the expensive
// head, so chunks start at one branch (the LPT heuristic needs the costly
// head handed out singly) and grow linearly toward the cheap tail, where
// batching only saves per-claim traffic. consumers is the number of parties
// pulling from the queue — local workers for the in-process scheduler,
// peers for the distributed shard splitter (internal/distrib), which is the
// point: both consume the same descriptor stream shape. The result is
// clamped to remaining and always at least 1 (0 when remaining is 0).
func RampUpChunk(pos, remaining, consumers int) int {
	if remaining <= 0 {
		return 0
	}
	if consumers < 1 {
		consumers = 1
	}
	chunk := pos/(consumers*guidedDivisor) + 1
	if chunk > remaining {
		chunk = remaining
	}
	return chunk
}

// workQueue distributes the top-level branch indices [lo, n) to workers via
// a single atomic cursor. Workers pull half-open ranges with next(); the
// chunk size is either fixed (fixed > 0) or guided (see guidedDivisor).
type workQueue struct {
	cursor  atomic.Int64 // branches claimed so far, relative to lo
	lo      int64
	n       int64 // absolute exclusive end, n >= lo
	workers int64
	fixed   int64
	// rampUp inverts the guided decay for cost-ordered queues: the head of
	// the queue holds the most expensive branches, which must be handed out
	// singly (the LPT heuristic) while chunks grow toward the cheap tail,
	// where batching only saves queue traffic. See RampUpChunk.
	rampUp bool
}

func newWorkQueue(n, workers, fixed int) *workQueue {
	return newWorkQueueRange(0, n, workers, fixed)
}

// newWorkQueueRange restricts the queue to the branch interval [lo, hi) —
// the shape a distributed shard executes. The ramp-up position is relative
// to lo: within a shard the schedule's cost order still decays, so the
// shard-local head is handed out in small chunks.
func newWorkQueueRange(lo, hi, workers, fixed int) *workQueue {
	if workers < 1 {
		workers = 1
	}
	return &workQueue{lo: int64(lo), n: int64(hi), workers: int64(workers), fixed: int64(fixed)}
}

// next claims the next chunk of branch indices, returning the half-open
// range [begin, end). ok is false once the queue is drained.
func (q *workQueue) next() (begin, end int, ok bool) {
	for {
		cur := q.cursor.Load()
		remaining := q.n - q.lo - cur
		if remaining <= 0 {
			return 0, 0, false
		}
		var chunk int64
		if q.fixed > 0 {
			chunk = q.fixed
			if chunk > remaining {
				chunk = remaining
			}
		} else if q.rampUp {
			chunk = int64(RampUpChunk(int(cur), int(remaining), int(q.workers)))
		} else {
			chunk = remaining / (q.workers * guidedDivisor)
			if chunk < 1 {
				chunk = 1
			}
		}
		if q.cursor.CompareAndSwap(cur, cur+chunk) {
			return int(q.lo + cur), int(q.lo + cur + chunk), true
		}
	}
}

// emitSink serialises flushes of the per-worker emit batchers onto the user
// visitor, preserving the "the visitor is never called concurrently"
// contract. Once any visitor call returns false, stopped latches under mu
// and no further visitor calls are made — cliques still buffered in other
// workers' batches are dropped (their counts were already recorded by the
// workers that found them). batches counts flushes for Stats.EmitBatches.
type emitSink struct {
	mu    sync.Mutex
	visit Visitor
	rc    *runControl
	//hbbmc:guardedby mu
	stopped bool
	// dropped counts cliques a worker had already recorded in its Stats
	// when the stop latched, so they were never delivered; the driver
	// subtracts them to keep Stats.Cliques = cliques actually reported.
	//hbbmc:guardedby mu
	dropped int64
	batches atomic.Int64
}

// deliverLocked is the single deliver-or-drop protocol every path shares;
// the caller holds mu. A stopped sink records the clique as dropped (the
// finding worker already counted it); a visitor refusal latches the sink
// and the run's stop flag.
func (s *emitSink) deliverLocked(c []int32) bool {
	if s.stopped {
		s.dropped++
		return false
	}
	if !s.visit(c) {
		s.stopped = true
		if s.rc != nil { // unit tests build bare sinks without a run
			s.rc.stop.Store(true)
		}
		return false
	}
	return true
}

// emitLocking delivers one clique, taking the sink lock itself — the
// seed's per-clique locking, kept for the static-stride ablation. Unlike
// the *Locked helpers it does not require the caller to hold the lock.
func (s *emitSink) emitLocking(c []int32) bool {
	s.mu.Lock()
	ok := s.deliverLocked(c)
	s.mu.Unlock()
	return ok
}

// droppedCount reads the undelivered-clique count under the sink lock;
// callers use it after the workers join, when the lock is uncontended.
func (s *emitSink) droppedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// direct returns the delivery Visitor for single-goroutine phases after
// the workers have joined (the isolated-vertex pass); the sink lock is
// uncontended then, so the same locked protocol serves. nil when there is
// no visitor.
func (s *emitSink) direct() Visitor {
	if s.visit == nil {
		return nil
	}
	return s.emitLocking
}

// emitBatchDataCap bounds the flattened vertex-id buffer of one batcher so
// graphs with huge cliques cannot grow per-worker buffers without bound: a
// batcher flushes when it holds EmitBatchSize cliques or this many ids,
// whichever comes first.
const emitBatchDataCap = 1 << 15

// emitBatcher buffers the cliques of one worker and hands them to the sink
// in batches, cutting the cross-worker lock traffic from one acquisition
// per clique to one per batch. Cliques are stored flattened (lens + data)
// so buffering costs no per-clique allocation in steady state.
type emitBatcher struct {
	sink  *emitSink
	limit int
	lens  []int32
	data  []int32
}

func newEmitBatcher(sink *emitSink, limit int) *emitBatcher {
	if limit < 1 {
		limit = 1
	}
	return &emitBatcher{sink: sink, limit: limit}
}

// add buffers one clique (copying it — the caller reuses the slice) and
// flushes when the batch is full. It always reports true: a visitor stop is
// propagated through the run's stop latch at flush time instead.
func (b *emitBatcher) add(c []int32) bool {
	b.lens = append(b.lens, int32(len(c)))
	b.data = append(b.data, c...)
	if len(b.lens) >= b.limit || len(b.data) >= emitBatchDataCap {
		b.flush()
	}
	return true
}

// flush drains the buffered cliques to the user visitor under the sink
// lock. The slices handed to the visitor alias the batch buffer and are
// invalid after the visitor returns, matching the streaming reuse contract.
// A visitor returning false latches the sink and the run's stop flag; the
// rest of the batch is discarded.
func (b *emitBatcher) flush() {
	if len(b.lens) == 0 {
		return
	}
	b.sink.mu.Lock()
	off := 0
	for _, l := range b.lens {
		c := b.data[off : off+int(l) : off+int(l)]
		off += int(l)
		b.sink.deliverLocked(c)
	}
	b.sink.mu.Unlock()
	b.sink.batches.Add(1)
	b.lens = b.lens[:0]
	b.data = b.data[:0]
}
