package core

import (
	"context"

	"github.com/graphmining/hbbmc/internal/graph"
)

// adaptEmit lifts a legacy fire-and-forget callback to a Visitor.
func adaptEmit(emit func([]int32)) Visitor {
	if emit == nil {
		return nil
	}
	return func(c []int32) bool {
		emit(c)
		return true
	}
}

// Enumerate runs the configured algorithm over g and calls emit once per
// maximal clique with the clique's vertex ids (the slice is reused between
// calls — copy it to retain it). emit may be nil to count only. Returns the
// run's statistics.
//
// Deprecated: Enumerate redoes the O(δm) preprocessing on every call and
// cannot be cancelled. Use NewSession and Session.Enumerate, which cache
// the preprocessing and accept a context and a stop-capable Visitor.
func Enumerate(g *graph.Graph, opts Options, emit func([]int32)) (*Stats, error) {
	s, err := NewSession(g, opts)
	if err != nil {
		return nil, err
	}
	seqOpts := s.opts
	seqOpts.Workers = 1
	stats, err := s.enumerate(context.Background(), seqOpts, adaptEmit(emit))
	stats.OrderingTime = s.prepTime
	return stats, err
}

// Count enumerates without reporting cliques and returns their number.
//
// Deprecated: use NewSession and Session.Count.
func Count(g *graph.Graph, opts Options) (int64, *Stats, error) {
	stats, err := Enumerate(g, opts, nil)
	if err != nil {
		if stats != nil {
			return stats.Cliques, stats, err
		}
		return 0, nil, err
	}
	return stats.Cliques, stats, nil
}

// Collect returns all maximal cliques as freshly allocated slices. Intended
// for tests and small graphs; production callers should stream through a
// Visitor.
//
// Deprecated: use NewSession and Session.Collect.
func Collect(g *graph.Graph, opts Options) ([][]int32, *Stats, error) {
	var out [][]int32
	stats, err := Enumerate(g, opts, func(c []int32) {
		out = append(out, append([]int32(nil), c...))
	})
	if err != nil {
		return nil, nil, err
	}
	return out, stats, nil
}

// runWholeGraph evaluates the entire residual graph as a single branch
// (S=∅, C=V, X=∅) — the shape of the original BK and BK_Pivot algorithms.
// Being one branch, it is also the cancellation granule: a context
// cancellation is only observed before it starts.
func (e *engine) runWholeGraph() {
	n := e.g.NumVertices()
	if n == 0 || e.rc.halted() {
		return
	}
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	e.setUniverse(all, -1, n)
	C := e.setArena.Get()
	for i := 0; i < n; i++ {
		C.Set(i)
	}
	X := e.setArena.Get()
	e.S = e.S[:0]
	e.stats.TopBranches++
	e.vertexRec(nil, C, X)
}

// runVertexOrdered performs the ordered top-level split (Eq. 1 with the
// given ordering): each vertex v branches with C = later neighbors and
// X = earlier neighbors, the universe being N(v).
func (e *engine) runVertexOrdered(ord, pos []int32) {
	e.runVertexOrderedRange(ord, pos, 0, len(ord), 1)
}

// runEdgeOrdered performs the edge-oriented top-level split of EBBMC/HBBMC
// (Algorithms 3 and 4): one branch per edge in edge-order, candidates being
// the common neighbors whose triangle edges both rank later. The branch
// universes come from the precomputed triangle incidence, so no adjacency
// merging happens here; tiny branches (at most two candidates, empty
// exclusion side) are resolved inline without materialising a universe.
func (e *engine) runEdgeOrdered() {
	e.runEdgeOrderedRange(0, len(e.eo.Order), 1)
	e.runIsolatedVertices()
}

// runIsolatedVertices closes the edge-oriented split: isolated vertices are
// covered by no edge branch (Eq. 3 at the initial branch), so each is a
// maximal 1-clique. The parallel driver runs it once after the workers
// join; the sequential driver after the last edge branch.
//
//hbbmc:ctxpoll
func (e *engine) runIsolatedVertices() {
	for v := int32(0); v < int32(e.g.NumVertices()); v++ {
		if e.rc.stopped() {
			return
		}
		if e.g.Degree(v) == 0 {
			e.S = append(e.S[:0], v)
			e.emit(nil)
		}
	}
}

// cheapSide picks the member's triangle side edge with the shorter
// incidence list, so row filling scans the fewest triangles.
//
//hbbmc:noalloc
func (e *engine) cheapSide(cn commonNeighbor) int32 {
	if e.inc.Count(cn.eb) < e.inc.Count(cn.ea) {
		return cn.eb
	}
	return cn.ea
}

// runEdgeBranch evaluates the top-level branch of one edge: candidates are
// the common neighbors whose triangle edges both rank later (Algorithms 3
// and 4). The branch universe comes from the precomputed triangle
// incidence, so no adjacency merging happens here; tiny branches (at most
// two common neighbors) are resolved inline without materialising a
// universe.
//
//hbbmc:noalloc
func (e *engine) runEdgeBranch(eid int32) {
	g := e.g
	a, b := g.EdgeEndpoints(eid)
	r := e.eo.Rank[eid]
	e.stats.TopBranches++
	e.S = append(e.S[:0], a, b)
	if e.inc.Count(eid) == 0 {
		// No triangles through the edge: {a,b} is maximal.
		e.emit(nil)
		return
	}
	common := e.cnBuf[:0]
	inC := 0
	lo, hi := e.inc.Range(eid)
	for t := lo; t < hi; t++ {
		cn := commonNeighbor{w: e.inc.Third(t), ea: e.inc.CoSrc(t), eb: e.inc.CoDst(t)}
		cn.cand = e.eo.Rank[cn.ea] > r && e.eo.Rank[cn.eb] > r
		if cn.cand {
			inC++
		}
		common = append(common, cn)
	}
	e.cnBuf = common
	if inC == 0 {
		// Every common neighbor blocks maximality and no candidate remains:
		// the branch cannot produce any clique. Skipping it avoids
		// materialising a universe for the two low-rank sides of every
		// triangle.
		return
	}
	if e.switchDepth <= 1 && !ablateTinyBranch && e.resolveTinyBranch(common, inC, r) {
		return
	}
	// Candidates first. sideBuf keeps, per member, the cheaper of its two
	// triangle side edges; rows are then filled from the incidence lists of
	// those side edges instead of global adjacency scans. Exclusion members
	// get rows too when the branch is recursion-heavy (they restore full
	// Tomita pivot quality); on branch-setup-bound graphs the candidate rows
	// alone are cheaper and sufficient.
	e.listBuf = e.listBuf[:0]
	e.sideBuf = e.sideBuf[:0]
	for _, cn := range common {
		if cn.cand {
			e.listBuf = append(e.listBuf, cn.w)
			e.sideBuf = append(e.sideBuf, e.cheapSide(cn))
		}
	}
	rowCount := inC
	if withXRows(inC, len(common)) {
		rowCount = len(common)
	}
	for _, cn := range common {
		if !cn.cand {
			e.listBuf = append(e.listBuf, cn.w)
			if rowCount > inC {
				e.sideBuf = append(e.sideBuf, e.cheapSide(cn))
			}
		}
	}
	t0 := e.now()
	e.installUniverse(e.listBuf, r, rowCount)
	e.fillRowsFromIncidence(r, rowCount)
	e.addUniverse(t0)
	C := e.setArena.Get()
	X := e.setArena.Get()
	for j := range common {
		if j < inC {
			C.Set(j)
		} else {
			X.Set(j)
		}
	}
	if e.switchDepth <= 1 {
		// HBBMC default: one edge level, then the vertex phase with the
		// precomputed masked adjacency (mask threshold = this edge). When no
		// candidate edge is masked — the common case under the truss
		// ordering — the masked and full adjacencies agree on the candidate
		// region and agree hereditarily as C shrinks, so the whole branch
		// can run the cheaper unmasked recursion.
		if !ablateMaskFree && e.maskFreeCandidates(inC) {
			e.vertexRec(nil, C, X)
		} else {
			e.vertexRec(e.adjH, C, X)
		}
	} else {
		e.edgeRec(C, X, r, 1)
	}
}

// resolveTinyBranch closes top-level branches with at most two common
// neighbors directly; they are by far the most frequent case on sparse
// graphs and need no universe. Returns false when the general machinery
// must take over. e.S is the branch's {a,b}.
//
//hbbmc:noalloc
func (e *engine) resolveTinyBranch(common []commonNeighbor, inC int, r int32) bool {
	if len(common) > 2 {
		return false
	}
	if len(common) == 1 {
		// Single candidate (inC == 1 here — inC == 0 was handled earlier):
		// S ∪ {w} has no possible extension or blocker.
		e.S = append(e.S, common[0].w)
		e.emit(nil)
		e.S = e.S[:len(e.S)-1]
		return true
	}
	w1, w2 := common[0], common[1]
	we := e.g.EdgeID(w1.w, w2.w)
	switch {
	case inC == 2:
		if we >= 0 && e.eo.Rank[we] > r {
			// Candidate edge present: S ∪ {w1,w2} is the unique maximal
			// clique of the branch.
			e.S = append(e.S, w1.w, w2.w)
			e.emit(nil)
			e.S = e.S[:len(e.S)-2]
		} else if we < 0 {
			// Independent candidates: each extends S maximally. Unrolled —
			// a slice literal here would allocate on every tiny branch.
			e.S = append(e.S, w1.w)
			e.emit(nil)
			e.S[len(e.S)-1] = w2.w
			e.emit(nil)
			e.S = e.S[:len(e.S)-1]
		}
		// Masked candidate edge (rank ≤ r): both extensions are dominated
		// in G and the containing cliques belong to the earlier branch.
	default: // inC == 1: one candidate, one exclusion vertex
		cand, excl := w1, w2
		if !cand.cand {
			cand, excl = w2, w1
		}
		if we < 0 {
			// The exclusion vertex is not adjacent to the candidate, so it
			// does not block S ∪ {cand}.
			e.S = append(e.S, cand.w)
			e.emit(nil)
			e.S = e.S[:len(e.S)-1]
		}
		_ = excl
	}
	return true
}

// commonNeighbor is a common neighbor w of an edge (a,b) along with the
// edge ids of (a,w) and (b,w) and its candidate-vs-exclusion classification.
type commonNeighbor struct {
	w      int32
	ea, eb int32
	cand   bool
}
