package core

import (
	"sync"
	"sync/atomic"
)

// This file implements ordered emission for the parallel driver: workers
// buffer each work-queue chunk's cliques locally and a sequencer releases
// the buffers to the user visitor in ascending schedule-position order.
// The point is a resumable stream — everything the visitor saw before the
// progress hook reported chunk [lo, hi) belongs to residue + branches
// [0, hi), so a checkpoint written in the hook never claims an undelivered
// clique and a resume from it never re-delivers a claimed one.

// orderedChunk buffers the cliques one worker found in one work-queue chunk
// of schedule positions [begin, end), flattened (lens + data) like an
// emitBatcher batch so buffering costs no per-clique allocation.
type orderedChunk struct {
	begin, end int
	lens       []int32
	data       []int32
	max        int
}

func (c *orderedChunk) add(cl []int32) {
	c.lens = append(c.lens, int32(len(cl)))
	c.data = append(c.data, cl...)
	if len(cl) > c.max {
		c.max = len(cl)
	}
}

// orderedWriter is one worker's emit target in ordered mode; the driver
// points cur at a fresh chunk before running it.
type orderedWriter struct{ cur *orderedChunk }

// add buffers one clique (copying it — the engine reuses the slice). It
// always reports true: a visitor stop propagates through the run's stop
// latch when the sequencer later delivers the chunk.
func (w *orderedWriter) add(c []int32) bool {
	w.cur.add(c)
	return true
}

// orderedSeq re-sequences completed chunks into ascending schedule order.
// Workers hand finished chunks to complete(); whichever worker finds the
// next-in-order chunk present becomes the releaser and delivers pending
// chunks (and fires the progress hook, when set) until it hits a gap — the
// combining-lock pattern, so delivery and the hook run on one goroutine at
// a time while other workers only pay a map insert.
type orderedSeq struct {
	visit Visitor
	rc    *runControl
	hook  func(lo, hi int, cliques int64, maxCliqueSize int)

	mu sync.Mutex
	// next is the schedule position the sequencer is waiting on: every
	// chunk below it was delivered (or the run stopped).
	//hbbmc:guardedby mu
	next int
	// pending holds completed, not-yet-released chunks keyed by begin.
	//hbbmc:guardedby mu
	pending map[int]*orderedChunk
	// releasing marks a worker inside the release loop; others just insert.
	//hbbmc:guardedby mu
	releasing bool
	// refused latches when the visitor returned false: no further visitor
	// calls are allowed (the streaming contract), so later chunks drop.
	//hbbmc:guardedby mu
	refused bool
	// dropped counts buffered cliques that were never delivered — their
	// finding workers already counted them, so the driver subtracts this to
	// keep Stats.Cliques = cliques actually reported.
	//hbbmc:guardedby mu
	dropped int64

	// released counts delivered chunks for Stats.EmitBatches.
	released atomic.Int64
}

func newOrderedSeq(visit Visitor, rc *runControl, hook func(lo, hi int, cliques int64, maxCliqueSize int), lo int) *orderedSeq {
	return &orderedSeq{visit: visit, rc: rc, hook: hook, next: lo, pending: make(map[int]*orderedChunk)}
}

// complete hands a finished chunk to the sequencer. A chunk completed after
// the stop latch is dropped whole — the latch may mean the chunk was cut
// short mid-run, so neither its cliques nor its interval may be claimed; a
// resume re-runs it.
func (s *orderedSeq) complete(c *orderedChunk) {
	s.mu.Lock()
	if s.rc.stopped() || s.refused {
		s.dropped += int64(len(c.lens))
		s.mu.Unlock()
		return
	}
	s.pending[c.begin] = c
	if s.releasing {
		s.mu.Unlock()
		return
	}
	s.releasing = true
	for !s.refused {
		nc, ok := s.pending[s.next]
		if !ok {
			break
		}
		delete(s.pending, s.next)
		s.mu.Unlock()
		delivered, full := s.deliver(nc)
		s.released.Add(1)
		if full && s.hook != nil {
			// The chunk's cliques reached the visitor: the prefix up to
			// nc.end is now claimable. Firing here, on the single releasing
			// goroutine, is what lets the hook both persist a checkpoint and
			// inject a marker into the same stream with nothing out of order
			// on either side of it.
			s.hook(nc.begin, nc.end, delivered, nc.max)
		}
		s.mu.Lock()
		if !full {
			s.refused = true
			s.dropped += int64(len(nc.lens)) - delivered
		}
		s.next = nc.end
	}
	s.releasing = false
	s.mu.Unlock()
}

// deliver walks one chunk's buffered cliques into the visitor. The slices
// alias the chunk buffer, matching the streaming reuse contract. A visitor
// refusal latches the run's stop flag and aborts the chunk.
func (s *orderedSeq) deliver(c *orderedChunk) (delivered int64, full bool) {
	off := 0
	for _, l := range c.lens {
		cl := c.data[off : off+int(l) : off+int(l)]
		off += int(l)
		if !s.visit(cl) {
			s.rc.stop.Store(true)
			return delivered, false
		}
		delivered++
	}
	return delivered, true
}

// abandon drops every still-pending chunk; the driver calls it after the
// workers join so the dropped count is final before stats are merged.
func (s *orderedSeq) abandon() {
	s.mu.Lock()
	for _, c := range s.pending {
		s.dropped += int64(len(c.lens))
	}
	clear(s.pending)
	s.mu.Unlock()
}

// droppedCount reads the undelivered-clique count; callers use it after the
// workers join, when the lock is uncontended.
func (s *orderedSeq) droppedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
