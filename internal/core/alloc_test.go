package core

import (
	"context"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
)

// warmEngine builds a session for opts over a planted-clique graph and
// returns an engine that has already completed one full enumeration, so
// every lazily grown buffer (universe rows, arenas, scratch slices) sits at
// its high-water mark.
func warmEngine(t *testing.T, opts Options) (*Session, *engine) {
	t.Helper()
	g := gen.NoisyCliques(300, 20, 8, 600, 11)
	s, err := NewSession(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	rc := newRunControl(context.Background(), s.opts)
	e := newEngine(s.res, s.red, s.opts, &Stats{}, nil, rc)
	configureEngine(e, s.opts)
	e.eo, e.inc = s.eo, s.inc
	return s, e
}

// TestRecursionAllocFree pins the warm enumeration hot path — the PR-4
// claim the //hbbmc:noalloc annotations encode — at exactly zero heap
// allocations per full run, for both the ordered vertex recursion and the
// hybrid edge-driven recursion with early termination enabled.
func TestRecursionAllocFree(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"BKDegen", Options{Algorithm: BKDegen}},
		{"HBBMC_ET3", Options{Algorithm: HBBMC, ET: 3}},
		{"EBBMC", Options{Algorithm: EBBMC}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, e := warmEngine(t, tc.opts)
			run := func() {
				switch tc.opts.Algorithm {
				case EBBMC, HBBMC:
					e.runEdgeOrdered()
				default:
					e.runVertexOrdered(s.vertOrd, s.vertPos)
				}
			}
			run() // warm: grow every buffer to its high-water mark
			if got := testing.AllocsPerRun(5, run); got != 0 {
				t.Errorf("warm %s enumeration: %v allocs per run, want 0", tc.name, got)
			}
		})
	}
}
