package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/verify"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for iter := 0; iter < 30; iter++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(5*n))
		want := referenceFor(g)
		for _, algo := range []Algorithm{BKDegen, BKRcd, BKFac, BKRef, BKDegree, EBBMC, HBBMC} {
			for _, workers := range []int{2, 4} {
				opts := Options{Algorithm: algo, ET: 3, GR: iter%2 == 0}
				var got [][]int32
				stats, err := EnumerateParallel(g, opts, workers, func(c []int32) {
					got = append(got, append([]int32(nil), c...))
				})
				if err != nil {
					t.Fatalf("iter %d %v w=%d: %v", iter, algo, workers, err)
				}
				label := fmt.Sprintf("iter%d/%v/w%d", iter, algo, workers)
				if d := verify.Diff(got, want); d != "" {
					t.Fatalf("%s: %s", label, d)
				}
				if stats.Cliques != int64(len(got)) {
					t.Fatalf("%s: stats.Cliques=%d, emitted %d", label, stats.Cliques, len(got))
				}
			}
		}
	}
}

func TestParallelFallsBackForWholeGraph(t *testing.T) {
	g := gen.Complete(6)
	n, _, err := countParallel(g, Options{Algorithm: BKPivot}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("K6 must have 1 maximal clique, got %d", n)
	}
}

func TestParallelDeepSwitchFallsBack(t *testing.T) {
	g := gen.NoisyCliques(60, 6, 7, 50, 5)
	a, _, err := countParallel(g, Options{Algorithm: HBBMC, SwitchDepth: 2, ET: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Count(g, Options{Algorithm: HBBMC, SwitchDepth: 2, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fallback mismatch: %d vs %d", a, b)
	}
}

func TestParallelStatsMerged(t *testing.T) {
	g := gen.NoisyCliques(200, 20, 9, 400, 6)
	_, ps, err := countParallel(g, Options{Algorithm: HBBMC, ET: 3, GR: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, ss, err := Count(g, Options{Algorithm: HBBMC, ET: 3, GR: true})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Cliques != ss.Cliques {
		t.Fatalf("cliques: parallel %d vs sequential %d", ps.Cliques, ss.Cliques)
	}
	if ps.Calls != ss.Calls {
		t.Fatalf("calls: parallel %d vs sequential %d", ps.Calls, ss.Calls)
	}
	if ps.TopBranches != ss.TopBranches {
		t.Fatalf("branches: parallel %d vs sequential %d", ps.TopBranches, ss.TopBranches)
	}
	if ps.MaxCliqueSize != ss.MaxCliqueSize {
		t.Fatalf("ω: parallel %d vs sequential %d", ps.MaxCliqueSize, ss.MaxCliqueSize)
	}
}

func TestParallelNilEmit(t *testing.T) {
	g := gen.ER(300, 1500, 7)
	n, _, err := countParallel(g, Defaults(), 3)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Count(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if n != m {
		t.Fatalf("nil-emit parallel count %d != sequential %d", n, m)
	}
}

func countParallel(g *graph.Graph, opts Options, workers int) (int64, *Stats, error) {
	stats, err := EnumerateParallel(g, opts, workers, nil)
	if err != nil {
		return 0, nil, err
	}
	return stats.Cliques, stats, nil
}
