package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/verify"
)

// withProcs raises GOMAXPROCS to n for the duration of the test, so the
// multi-worker scheduler paths are exercised even on single-core CI
// machines (EnumerateParallel clamps workers to GOMAXPROCS).
func withProcs(t *testing.T, n int) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < n {
		runtime.GOMAXPROCS(n)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	withProcs(t, 4)
	rng := rand.New(rand.NewSource(301))
	for iter := 0; iter < 30; iter++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(5*n))
		want := referenceFor(g)
		for _, algo := range []Algorithm{BKDegen, BKRcd, BKFac, BKRef, BKDegree, EBBMC, HBBMC} {
			for _, workers := range []int{2, 4} {
				opts := Options{Algorithm: algo, ET: 3, GR: iter%2 == 0}
				var got [][]int32
				stats, err := EnumerateParallel(g, opts, workers, func(c []int32) {
					got = append(got, append([]int32(nil), c...))
				})
				if err != nil {
					t.Fatalf("iter %d %v w=%d: %v", iter, algo, workers, err)
				}
				label := fmt.Sprintf("iter%d/%v/w%d", iter, algo, workers)
				if d := verify.Diff(got, want); d != "" {
					t.Fatalf("%s: %s", label, d)
				}
				if stats.Cliques != int64(len(got)) {
					t.Fatalf("%s: stats.Cliques=%d, emitted %d", label, stats.Cliques, len(got))
				}
			}
		}
	}
}

func TestParallelFallsBackForWholeGraph(t *testing.T) {
	g := gen.Complete(6)
	n, _, err := countParallel(g, Options{Algorithm: BKPivot}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("K6 must have 1 maximal clique, got %d", n)
	}
}

func TestParallelDeepSwitchRunsParallel(t *testing.T) {
	withProcs(t, 2)
	g := gen.NoisyCliques(60, 6, 7, 50, 5)
	for _, depth := range []int{2, 3} {
		opts := Options{Algorithm: HBBMC, SwitchDepth: depth, ET: 3}
		a, ps, err := countParallel(g, opts, 2)
		if err != nil {
			t.Fatal(err)
		}
		if ps.ParallelFallback != "" {
			t.Fatalf("d=%d fell back: %q", depth, ps.ParallelFallback)
		}
		if ps.Workers != 2 {
			t.Fatalf("d=%d ran %d workers, want 2", depth, ps.Workers)
		}
		b, _, err := Count(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("d=%d mismatch: parallel %d vs sequential %d", depth, a, b)
		}
	}
}

// TestParallelWorkerCountEquivalence is the cross-worker-count grid: every
// parallelisable algorithm (including deep-switch HBBMC) must produce the
// exact clique set of the sequential driver at 1, 2 and 8 workers.
func TestParallelWorkerCountEquivalence(t *testing.T) {
	withProcs(t, 8)
	g := gen.NoisyCliques(300, 24, 9, 700, 42)
	configs := []struct {
		name string
		opts Options
	}{
		{"BKRef", Options{Algorithm: BKRef}},
		{"BKDegen", Options{Algorithm: BKDegen}},
		{"BKDegree", Options{Algorithm: BKDegree}},
		{"BKRcd", Options{Algorithm: BKRcd}},
		{"BKFac", Options{Algorithm: BKFac}},
		{"EBBMC", Options{Algorithm: EBBMC, ET: 3}},
		{"HBBMC_d1", Options{Algorithm: HBBMC, ET: 3, GR: true}},
		{"HBBMC_d2", Options{Algorithm: HBBMC, SwitchDepth: 2, ET: 3, GR: true}},
		{"HBBMC_d3", Options{Algorithm: HBBMC, SwitchDepth: 3, ET: 3}},
	}
	for _, cfg := range configs {
		want, _, err := Collect(g, cfg.opts)
		if err != nil {
			t.Fatalf("%s sequential: %v", cfg.name, err)
		}
		for _, workers := range []int{1, 2, 8} {
			var got [][]int32
			stats, err := EnumerateParallel(g, cfg.opts, workers, func(c []int32) {
				got = append(got, append([]int32(nil), c...))
			})
			if err != nil {
				t.Fatalf("%s w=%d: %v", cfg.name, workers, err)
			}
			if d := verify.Diff(got, want); d != "" {
				t.Fatalf("%s w=%d: %s", cfg.name, workers, d)
			}
			if stats.Cliques != int64(len(want)) {
				t.Fatalf("%s w=%d: stats.Cliques=%d, want %d", cfg.name, workers, stats.Cliques, len(want))
			}
		}
	}
}

func TestParallelStatsObservability(t *testing.T) {
	withProcs(t, 2)
	g := gen.NoisyCliques(120, 10, 8, 200, 9)

	// Whole-graph algorithms report why they fell back.
	stats, err := EnumerateParallel(g, Options{Algorithm: BKPivot}, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParallelFallback == "" || stats.Workers != 1 {
		t.Fatalf("BKPivot: Workers=%d ParallelFallback=%q, want sequential fallback", stats.Workers, stats.ParallelFallback)
	}

	// A single-worker request is a recorded fallback, not a silent one.
	stats, err = EnumerateParallel(g, Defaults(), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParallelFallback == "" || stats.Workers != 1 {
		t.Fatalf("w=1: Workers=%d ParallelFallback=%q", stats.Workers, stats.ParallelFallback)
	}

	// Absurd worker counts are clamped to GOMAXPROCS — observably.
	stats, err = EnumerateParallel(g, Defaults(), 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if max := runtime.GOMAXPROCS(0); stats.Workers != max {
		t.Fatalf("w=1<<20: Workers=%d, want clamp to %d", stats.Workers, max)
	}

	// Options.Workers supplies the default when the argument is ≤ 0.
	opts := Defaults()
	opts.Workers = 2
	stats, err = EnumerateParallel(g, opts, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 2 {
		t.Fatalf("Options.Workers=2: ran %d workers", stats.Workers)
	}

	// The sequential driver reports a single worker.
	_, sstats, err := Count(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Workers != 1 || sstats.ParallelFallback != "" {
		t.Fatalf("sequential: Workers=%d ParallelFallback=%q", sstats.Workers, sstats.ParallelFallback)
	}
}

// TestParallelEmitNeverConcurrent hammers the batched emit path with many
// workers and a tiny batch size; run under -race (as CI does) it also
// exercises the batcher/sink synchronisation.
func TestParallelEmitNeverConcurrent(t *testing.T) {
	withProcs(t, 8)
	g := gen.NoisyCliques(400, 40, 8, 900, 77)
	opts := Defaults()
	opts.EmitBatchSize = 2
	var inEmit atomic.Int32
	var emitted int64
	stats, err := EnumerateParallel(g, opts, 8, func(c []int32) {
		if n := inEmit.Add(1); n != 1 {
			t.Errorf("emit entered concurrently (%d active)", n)
		}
		if len(c) == 0 {
			t.Error("empty clique emitted")
		}
		emitted++
		inEmit.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cliques != emitted {
		t.Fatalf("stats.Cliques=%d, emitted %d", stats.Cliques, emitted)
	}
	if stats.Workers > 1 && stats.EmitBatches == 0 {
		t.Fatal("parallel emit run recorded no batches")
	}
}

// TestParallelEmitBatchSizes checks that the batch size is invisible in the
// results: every size yields the same clique set.
func TestParallelEmitBatchSizes(t *testing.T) {
	withProcs(t, 4)
	g := gen.NoisyCliques(200, 18, 8, 400, 11)
	want, _, err := Collect(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 3, 256, 1 << 20} {
		opts := Defaults()
		opts.EmitBatchSize = batch
		var got [][]int32
		if _, err := EnumerateParallel(g, opts, 4, func(c []int32) {
			got = append(got, append([]int32(nil), c...))
		}); err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if d := verify.Diff(got, want); d != "" {
			t.Fatalf("batch=%d: %s", batch, d)
		}
	}
}

// TestParallelChunkSizes checks that fixed work-queue chunking is likewise
// invisible in the results.
func TestParallelChunkSizes(t *testing.T) {
	withProcs(t, 4)
	g := gen.NoisyCliques(200, 18, 8, 400, 12)
	want, _, err := Count(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 5, 4096} {
		opts := Defaults()
		opts.ParallelChunkSize = chunk
		got, _, err := countParallel(g, opts, 4)
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if got != want {
			t.Fatalf("chunk=%d: %d cliques, want %d", chunk, got, want)
		}
	}
}

func TestParallelStatsMerged(t *testing.T) {
	withProcs(t, 4)
	g := gen.NoisyCliques(200, 20, 9, 400, 6)
	_, ps, err := countParallel(g, Options{Algorithm: HBBMC, ET: 3, GR: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, ss, err := Count(g, Options{Algorithm: HBBMC, ET: 3, GR: true})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Cliques != ss.Cliques {
		t.Fatalf("cliques: parallel %d vs sequential %d", ps.Cliques, ss.Cliques)
	}
	if ps.Calls != ss.Calls {
		t.Fatalf("calls: parallel %d vs sequential %d", ps.Calls, ss.Calls)
	}
	if ps.TopBranches != ss.TopBranches {
		t.Fatalf("branches: parallel %d vs sequential %d", ps.TopBranches, ss.TopBranches)
	}
	if ps.MaxCliqueSize != ss.MaxCliqueSize {
		t.Fatalf("ω: parallel %d vs sequential %d", ps.MaxCliqueSize, ss.MaxCliqueSize)
	}
}

func TestParallelNilEmit(t *testing.T) {
	withProcs(t, 3)
	g := gen.ER(300, 1500, 7)
	n, _, err := countParallel(g, Defaults(), 3)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := Count(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if n != m {
		t.Fatalf("nil-emit parallel count %d != sequential %d", n, m)
	}
}

func countParallel(g *graph.Graph, opts Options, workers int) (int64, *Stats, error) {
	stats, err := EnumerateParallel(g, opts, workers, nil)
	if err != nil {
		return 0, nil, err
	}
	return stats.Cliques, stats, nil
}
