package core

import (
	"sort"

	"github.com/graphmining/hbbmc/internal/bitset"
)

// localEdge is an edge of the branch-local candidate graph, carrying its
// global edge-order rank.
type localEdge struct {
	a, b int32
	rank int32
}

// edgeRec is the edge-oriented BK recursion (Eqs. 2 and 3 of the paper).
// State: the implicit partial clique e.S, candidate vertices C, exclusion
// vertices X, and maxRank — the rank of the last branched edge on the path.
// The branch's candidate graph consists of the edges inside C whose rank
// exceeds maxRank (the edge-set exclusion of Eq. 2); candidates without such
// an edge are the zero-degree vertices of Eq. 3.
//
// depth counts edge-branching levels consumed so far; at e.switchDepth the
// recursion hands over to the vertex-oriented phase with a freshly built
// masked adjacency.
func (e *engine) edgeRec(C, X bitset.Set, maxRank int32, depth int) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.EdgeCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	k := len(e.verts)
	mark := e.setArena.Mark()
	tmp := e.setArena.Get()

	// Collect the candidate-graph edges: pairs inside C with rank > maxRank.
	var edges []localEdge
	hDeg := make([]int32, k)
	cSize, minG := 0, int(^uint(0)>>1)
	e.ensureCnt()
	for i := C.First(); i >= 0; i = C.NextAfter(i) {
		cSize++
		cnt := e.adjG[i].AndCount(C)
		e.cntBuf[i] = int32(cnt)
		if cnt < minG {
			minG = cnt
		}
		tmp.AndInto(C, e.adjG[i])
		for j := tmp.NextAfter(i); j >= 0; j = tmp.NextAfter(j) {
			if r := e.rankOfLocal(i, j); r > maxRank {
				edges = append(edges, localEdge{int32(i), int32(j), r})
				hDeg[i]++
				hDeg[j]++
			}
		}
	}

	// Early termination: the candidate graph is dense enough and carries no
	// masked edge iff every candidate's G-degree equals its H-degree.
	if e.opts.ET > 0 && minG >= cSize-e.opts.ET {
		e.stats.PlexBranches++
		if X.IsEmpty() && edgeDegreesMatch(e, C, hDeg) {
			before := e.stats.Cliques + e.stats.SuppressedLeaves
			if e.emitPlexDirect(C, cSize) {
				e.stats.EarlyTerminations++
				e.stats.ETCliques += (e.stats.Cliques + e.stats.SuppressedLeaves) - before
				e.setArena.Release(mark)
				return
			}
		}
	}

	sort.Slice(edges, func(i, j int) bool { return edges[i].rank < edges[j].rank })

	childC := e.setArena.Get()
	childX := e.setArena.Get()
	for _, f := range edges {
		x, y := int(f.a), int(f.b)
		// Candidates of the sub-branch: common neighbors whose edges to
		// both x and y rank after f (Eq. 2); common neighbors failing the
		// rank test still block maximality and join X.
		tmp.AndInto(C, e.adjG[x])
		tmp.AndWith(e.adjG[y])
		childC.Clear()
		childX.AndInto(X, e.adjG[x])
		childX.AndWith(e.adjG[y])
		for w := tmp.First(); w >= 0; w = tmp.NextAfter(w) {
			if e.rankOfLocal(x, w) > f.rank && e.rankOfLocal(y, w) > f.rank {
				childC.Set(w)
			} else {
				childX.Set(w)
			}
		}
		e.S = append(e.S, e.verts[x], e.verts[y])
		if depth+1 >= e.switchDepth {
			e.switchToVertex(childC, childX, f.rank)
		} else {
			e.edgeRec(childC, childX, f.rank, depth+1)
		}
		e.S = e.S[:len(e.S)-2]
	}

	// Zero-degree candidates (Eq. 3): S ∪ {v} is maximal iff v is isolated
	// in G[C ∪ X] — any neighbor either extends the clique (so S ∪ {v} is
	// not maximal) or was covered by an earlier edge branch.
	for v := C.First(); v >= 0; v = C.NextAfter(v) {
		if hDeg[v] != 0 {
			continue
		}
		if e.adjG[v].AndAny(X) || e.adjG[v].AndCount(C) > 0 {
			continue
		}
		e.S = append(e.S, e.verts[v])
		e.emit(nil)
		e.S = e.S[:len(e.S)-1]
	}
	e.setArena.Release(mark)
}

// edgeDegreesMatch reports whether every candidate's full-graph degree in C
// equals its candidate-graph degree, i.e. no edge inside C is masked.
func edgeDegreesMatch(e *engine, C bitset.Set, hDeg []int32) bool {
	for i := C.First(); i >= 0; i = C.NextAfter(i) {
		if int(hDeg[i]) != e.adjG[i].AndCount(C) {
			return false
		}
	}
	return true
}

// switchToVertex transitions a hybrid branch from edge-oriented to
// vertex-oriented branching: the candidate graph's masked adjacency (edges
// with rank > maxRank) is materialised for the current candidates and the
// configured inner recursion takes over.
func (e *engine) switchToVertex(C, X bitset.Set, maxRank int32) {
	// Fast path: at the top switch (depth 1) the universe-wide masked rows
	// built by setUniverse already encode rank > baseRank; they are only
	// valid when maxRank equals that base rank, which the driver guarantees
	// by calling vertexRec directly. Reaching here means a deeper switch, so
	// build rows for the current candidates.
	mark := e.setArena.Mark()
	rows := make([]bitset.Set, len(e.verts))
	for i := C.First(); i >= 0; i = C.NextAfter(i) {
		row := e.setArena.Get()
		rows[i] = row
		for j := C.First(); j >= 0; j = C.NextAfter(j) {
			if j == i || !e.adjG[i].Has(j) {
				continue
			}
			if e.rankOfLocal(i, j) > maxRank {
				row.Set(j)
			}
		}
	}
	e.vertexRec(rows, C, X)
	e.setArena.Release(mark)
}
