package core

import (
	"math"
	"math/bits"
	"slices"

	"github.com/graphmining/hbbmc/internal/bitset"
)

// localEdge is an edge of the branch-local candidate graph, carrying its
// global edge-order rank.
type localEdge struct {
	a, b int32
	rank int32
}

// edgeRec is the edge-oriented BK recursion (Eqs. 2 and 3 of the paper).
// State: the implicit partial clique e.S, candidate vertices C, exclusion
// vertices X, and maxRank — the rank of the last branched edge on the path.
// The branch's candidate graph consists of the edges inside C whose rank
// exceeds maxRank (the edge-set exclusion of Eq. 2); candidates without such
// an edge are the zero-degree vertices of Eq. 3.
//
// depth counts edge-branching levels consumed so far; at e.switchDepth the
// recursion hands over to the vertex-oriented phase with a freshly built
// masked adjacency.
//
// The recursion allocates nothing in steady state: candidate edges stack in
// e.edgeBuf across levels (each call appends past its parent's segment and
// truncates on exit) and the per-level degree tallies come from the
// cntArena.
//
//hbbmc:noalloc
func (e *engine) edgeRec(C, X bitset.Set, maxRank int32, depth int) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.EdgeCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	k := len(e.verts)
	mark := e.setArena.Mark()
	imark := e.cntArena.mark()
	tmp := e.setArena.GetUnzeroed()

	// Collect the candidate-graph edges: pairs inside C with rank > maxRank.
	edgeBase := len(e.edgeBuf)
	hDeg := e.cntArena.getZeroed(k)
	t0 := e.now()
	cSize, minG := 0, math.MaxInt
	e.ensureCnt()
	for wi, cw := range C {
		base := wi * 64
		for ; cw != 0; cw &= cw - 1 {
			i := base + bits.TrailingZeros64(cw)
			cnt := e.adjG[i].AndCount(C)
			e.cntBuf[i] = int32(cnt)
			cSize++
			if cnt < minG {
				minG = cnt
			}
			tmp.AndInto(C, e.adjG[i])
			// Only pairs j > i: mask off bit i and everything below it in
			// its word, then walk the remaining words.
			wj := i / 64
			w := tmp[wj] &^ (^uint64(0) >> (63 - uint(i)%64))
			for jb := wj * 64; ; {
				for ; w != 0; w &= w - 1 {
					j := jb + bits.TrailingZeros64(w)
					if r := e.rankOfLocal(i, j); r > maxRank {
						e.edgeBuf = append(e.edgeBuf, localEdge{int32(i), int32(j), r})
						hDeg[i]++
						hDeg[j]++
					}
				}
				wj++
				if wj >= len(tmp) {
					break
				}
				jb, w = wj*64, tmp[wj]
			}
		}
	}
	e.addPivot(t0)
	edges := e.edgeBuf[edgeBase:]

	// Early termination: the candidate graph is dense enough and carries no
	// masked edge iff every candidate's G-degree equals its H-degree.
	if e.opts.ET > 0 && minG >= cSize-e.opts.ET {
		e.stats.PlexBranches++
		if X.IsEmpty() && edgeDegreesMatch(e, C, hDeg) {
			before := e.stats.Cliques + e.stats.SuppressedLeaves
			if e.emitPlexDirect(C, cSize) {
				e.stats.EarlyTerminations++
				e.stats.ETCliques += (e.stats.Cliques + e.stats.SuppressedLeaves) - before
				e.setArena.Release(mark)
				e.cntArena.release(imark)
				e.edgeBuf = e.edgeBuf[:edgeBase]
				return
			}
		}
	}

	slices.SortFunc(edges, func(x, y localEdge) int { return int(x.rank - y.rank) })

	childC := e.setArena.GetUnzeroed()
	childX := e.setArena.GetUnzeroed()
	for _, f := range edges {
		x, y := int(f.a), int(f.b)
		// Candidates of the sub-branch: common neighbors whose edges to
		// both x and y rank after f (Eq. 2); common neighbors failing the
		// rank test still block maximality and join X.
		tmp.AndInto(C, e.adjG[x])
		tmp.AndWith(e.adjG[y])
		childC.Clear()
		childX.AndInto(X, e.adjG[x])
		childX.AndWith(e.adjG[y])
		for wi, w := range tmp {
			base := wi * 64
			for ; w != 0; w &= w - 1 {
				v := base + bits.TrailingZeros64(w)
				if e.rankOfLocal(x, v) > f.rank && e.rankOfLocal(y, v) > f.rank {
					childC.Set(v)
				} else {
					childX.Set(v)
				}
			}
		}
		e.S = append(e.S, e.verts[x], e.verts[y])
		if depth+1 >= e.switchDepth {
			e.switchToVertex(childC, childX, f.rank)
		} else {
			e.edgeRec(childC, childX, f.rank, depth+1)
		}
		e.S = e.S[:len(e.S)-2]
	}

	// Zero-degree candidates (Eq. 3): S ∪ {v} is maximal iff v is isolated
	// in G[C ∪ X] — any neighbor either extends the clique (so S ∪ {v} is
	// not maximal) or was covered by an earlier edge branch.
	for wi, cw := range C {
		base := wi * 64
		for ; cw != 0; cw &= cw - 1 {
			v := base + bits.TrailingZeros64(cw)
			if hDeg[v] != 0 {
				continue
			}
			if e.adjG[v].AndAny(X) || e.adjG[v].AndAny(C) {
				continue
			}
			e.S = append(e.S, e.verts[v])
			e.emit(nil)
			e.S = e.S[:len(e.S)-1]
		}
	}
	e.setArena.Release(mark)
	e.cntArena.release(imark)
	e.edgeBuf = e.edgeBuf[:edgeBase]
}

// edgeDegreesMatch reports whether every candidate's full-graph degree in C
// equals its candidate-graph degree, i.e. no edge inside C is masked. The
// caller's scan left the full degrees in cntBuf.
func edgeDegreesMatch(e *engine, C bitset.Set, hDeg []int32) bool {
	for wi, cw := range C {
		base := wi * 64
		for ; cw != 0; cw &= cw - 1 {
			i := base + bits.TrailingZeros64(cw)
			if hDeg[i] != e.cntBuf[i] {
				return false
			}
		}
	}
	return true
}

// switchToVertex transitions a hybrid branch from edge-oriented to
// vertex-oriented branching: the candidate graph's masked adjacency (edges
// with rank > maxRank) is materialised for the current candidates and the
// configured inner recursion takes over.
func (e *engine) switchToVertex(C, X bitset.Set, maxRank int32) {
	// Fast path: at the top switch (depth 1) the universe-wide masked rows
	// built by setUniverse already encode rank > baseRank; they are only
	// valid when maxRank equals that base rank, which the driver guarantees
	// by calling vertexRec directly. Reaching here means a deeper switch, so
	// build rows for the current candidates.
	//
	// The row table is an engine-level scratch slice: the vertex phase never
	// re-enters the edge phase, so two switchToVertex frames are never live
	// at once, and the recursion below only ever reads rows of vertices in
	// its (shrinking) candidate set — stale entries outside C are never
	// touched.
	mark := e.setArena.Mark()
	if cap(e.maskRow) < len(e.verts) {
		e.maskRow = make([]bitset.Set, len(e.verts))
	}
	rows := e.maskRow[:len(e.verts)]
	C.ForEachWord(func(base int, cw uint64) {
		for ; cw != 0; cw &= cw - 1 {
			i := base + bits.TrailingZeros64(cw)
			row := e.setArena.Get()
			rows[i] = row
			adj := e.adjG[i]
			for wj, w := range C {
				jb := wj * 64
				w &= adj[wj]
				for ; w != 0; w &= w - 1 {
					j := jb + bits.TrailingZeros64(w)
					if j != i && e.rankOfLocal(i, j) > maxRank {
						row.Set(j)
					}
				}
			}
		}
	})
	e.vertexRec(rows, C, X)
	e.setArena.Release(mark)
}
