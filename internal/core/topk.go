package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
)

// This file implements the top-k-largest-cliques query (Session.TopK): a
// full enumeration filtered through a size-threshold visitor. The visitor
// keeps the k best cliques seen so far in a min-heap ordered worst-first;
// once the heap is full its worst entry's size becomes the admission
// threshold, and the threshold only tightens as larger cliques arrive —
// the overwhelming majority of cliques are then rejected by a single
// length comparison. The enumeration itself is untouched, so the query
// parallelises and cancels exactly like Enumerate does.

// cliqueLess is the total order the top-k query ranks cliques by: larger
// size first, then lexicographically smaller vertex sequence (both sides
// sorted ascending). The tie-break makes the result set deterministic
// across worker counts and delivery orders.
func cliqueLess(a, b []int32) bool {
	if len(a) != len(b) {
		return len(a) > len(b)
	}
	return slices.Compare(a, b) < 0
}

// topKAccum accumulates the k best cliques under cliqueLess. It is used as
// an enumeration Visitor, which the drivers guarantee never runs
// concurrently, so no lock is needed. The heap is worst-first: heap[0] is
// the entry the next better clique evicts.
type topKAccum struct {
	k        int
	heap     [][]int32
	rejected int64 // cliques cut by the size threshold alone
}

// worse is the heap predicate: a sorts below b when a is the worse clique.
func (t *topKAccum) worse(a, b []int32) bool { return cliqueLess(b, a) }

func (t *topKAccum) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[parent]) {
			break
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *topKAccum) siftDown(i int) {
	n := len(t.heap)
	for {
		worst := i
		if l := 2*i + 1; l < n && t.worse(t.heap[l], t.heap[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.worse(t.heap[r], t.heap[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}

// visit is the enumeration Visitor. The fast path is the tightening size
// threshold: once k cliques are held, anything strictly smaller than the
// worst kept clique is rejected on length alone, before the clique is even
// copied or sorted.
func (t *topKAccum) visit(c []int32) bool {
	if len(t.heap) == t.k && len(c) < len(t.heap[0]) {
		t.rejected++
		return true
	}
	cc := append([]int32(nil), c...)
	slices.Sort(cc)
	if len(t.heap) < t.k {
		t.heap = append(t.heap, cc)
		t.siftUp(len(t.heap) - 1)
		return true
	}
	if cliqueLess(cc, t.heap[0]) {
		t.heap[0] = cc
		t.siftDown(0)
	} else {
		t.rejected++
	}
	return true
}

// sorted drains the accumulator, best clique first.
func (t *topKAccum) sorted() [][]int32 {
	out := append([][]int32(nil), t.heap...)
	slices.SortFunc(out, func(a, b []int32) int {
		switch {
		case cliqueLess(a, b):
			return -1
		case cliqueLess(b, a):
			return 1
		}
		return 0
	})
	return out
}

// threshold returns the current admission bound: the size a clique must
// reach to enter the result set (0 until k cliques were seen).
func (t *topKAccum) threshold() int {
	if len(t.heap) < t.k {
		return 0
	}
	return len(t.heap[0])
}

// TopK returns the k largest maximal cliques of the session's graph,
// ordered by size descending (ties broken by lexicographically smaller
// sorted vertex sequence, so the result is deterministic across worker
// counts). Each returned clique is a fresh sorted slice of original vertex
// ids. Fewer than k cliques are returned when the graph has fewer maximal
// cliques.
//
// The query is a full enumeration behind a size-threshold visitor whose
// bound tightens as results arrive; it runs, parallelises and cancels
// exactly like Session.Enumerate, and the returned Stats are the
// enumeration's. A cancelled query returns the best k found so far with an
// error wrapping ctx.Err(). A session-level clique budget is ignored — a
// truncated enumeration could silently miss the true top-k.
func (s *Session) TopK(ctx context.Context, k int, q QueryOptions) ([][]int32, *Stats, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("core: TopK needs k >= 1, got %d", k)
	}
	opts, err := q.apply(s.opts)
	if err != nil {
		return nil, nil, err
	}
	if q.rng().set {
		return nil, nil, errors.New("core: branch ranges apply to enumeration queries only")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts.MaxCliques = 0 // a clique budget would truncate below the true top-k
	acc := &topKAccum{k: k}
	stats, err := s.enumerateRange(ctx, opts, branchRange{}, progress{}, acc.visit)
	return acc.sorted(), stats, err
}
