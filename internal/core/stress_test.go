package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/verify"
)

// TestStressGrid sweeps a large randomized configuration grid. It runs a
// reduced sweep under -short.
func TestStressGrid(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 25
	}
	rng := rand.New(rand.NewSource(999))
	for iter := 0; iter < iters; iter++ {
		var g = randomGraph(rng, 1+rng.Intn(45), rng.Intn(260))
		switch iter % 5 {
		case 1:
			g = gen.NoisyCliques(20+rng.Intn(30), 2+rng.Intn(6), 4+rng.Intn(5), rng.Intn(60), rng.Int63())
		case 2:
			g = gen.BA(10+rng.Intn(40), 1+rng.Intn(4), rng.Int63())
		case 3:
			g = gen.SBM(gen.SBMConfig{Communities: 2 + rng.Intn(3), Size: 4 + rng.Intn(8),
				PIn: 0.3 + 0.5*rng.Float64(), POut: 0.1 * rng.Float64()}, rng.Int63())
		case 4:
			g = gen.PowerLawCluster(10+rng.Intn(40), 1+rng.Intn(4), rng.Float64(), rng.Int63())
		}
		want := referenceFor(g)
		opts := Options{
			Algorithm:   allAlgorithms[rng.Intn(len(allAlgorithms))],
			ET:          rng.Intn(4),
			GR:          rng.Intn(2) == 0,
			GRMaxDegree: rng.Intn(6),
			SwitchDepth: 1 + rng.Intn(4),
			EdgeOrder:   EdgeOrderKind(rng.Intn(3)),
			Inner:       InnerAlgorithm(rng.Intn(4)),
		}
		label := fmt.Sprintf("iter%d/%+v", iter, opts)
		checkAgainstReference(t, label, g, opts, want)
	}
}

// TestMaskedPathsExercised asserts that the stress surface actually reaches
// the subtle code paths: masked adjacency with nonempty X at edge branches,
// early termination inside hybrid branches, deep edge branching, and leaf
// suppression under reduction.
func TestMaskedPathsExercised(t *testing.T) {
	g := gen.NoisyCliques(120, 14, 9, 300, 33)

	_, hd2, err := Count(g, Options{Algorithm: HBBMC, SwitchDepth: 2, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hd2.EdgeCalls == 0 {
		t.Error("SwitchDepth=2 must go through edgeRec")
	}
	if hd2.VertexCalls == 0 {
		t.Error("SwitchDepth=2 must still reach the vertex phase")
	}

	_, he, err := Count(g, Options{Algorithm: EBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if he.VertexCalls != 0 {
		t.Error("pure EBBMC must never enter the vertex phase")
	}
	if he.EdgeCalls == 0 {
		t.Error("pure EBBMC must recurse on edges")
	}

	_, hgr, err := Count(g, Options{Algorithm: HBBMC, GR: true, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hgr.ReducedVertices == 0 {
		t.Error("reduction should remove low-degree noise vertices")
	}

	_, h1, err := Count(g, Options{Algorithm: HBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if h1.EarlyTerminations == 0 {
		t.Error("planted cliques should early-terminate")
	}
	if h1.ETCliques == 0 {
		t.Error("early terminations should emit cliques")
	}

	// All configurations agree on the count.
	if hd2.Cliques != he.Cliques || he.Cliques != hgr.Cliques || hgr.Cliques != h1.Cliques {
		t.Errorf("counts diverge: d2=%d ebbmc=%d gr=%d h1=%d",
			hd2.Cliques, he.Cliques, hgr.Cliques, h1.Cliques)
	}
}

// TestLargerSmoke runs the default configuration on a moderately large graph
// and cross-checks the count against BKDegen (an independent engine path).
func TestLargerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large smoke test skipped in short mode")
	}
	g := gen.BA(3000, 8, 77)
	c1, s1, err := Count(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := Count(g, Options{Algorithm: BKDegen, GR: true})
	if err != nil {
		t.Fatal(err)
	}
	c3, _, err := Count(g, Options{Algorithm: BKRcd})
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 || c2 != c3 {
		t.Fatalf("counts diverge on BA graph: hbbmc=%d degen=%d rcd=%d", c1, c2, c3)
	}
	if s1.Tau <= 0 || s1.Cliques == 0 {
		t.Errorf("suspicious stats: %+v", s1)
	}
}

// TestEmittedCliquesAreValidOnMediumGraphs checks the structural invariants
// (clique, maximal, distinct) without a full reference comparison, on graphs
// too large for the reference enumerator's comfort.
func TestEmittedCliquesAreValidOnMediumGraphs(t *testing.T) {
	g := gen.SBM(gen.SBMConfig{Communities: 6, Size: 20, PIn: 0.5, POut: 0.02}, 55)
	cliques, _, err := Collect(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckAllMaximal(g, cliques); err != nil {
		t.Fatal(err)
	}
	if len(cliques) == 0 {
		t.Fatal("no cliques found")
	}
}
