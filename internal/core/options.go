// Package core implements the paper's maximal clique enumeration
// algorithms: the vertex-oriented Bron–Kerbosch family (BK, BK_Pivot,
// BK_Ref, BK_Degen, BK_Degree, BK_Rcd, BK_Fac), the edge-oriented framework
// EBBMC, and the hybrid framework HBBMC, together with the orthogonal
// early-termination (ET) and graph-reduction (GR) techniques.
//
// All engines share a two-phase design: a top-level split driven by a
// vertex or edge ordering, and a branch-local recursion over dense bitset
// adjacency. See DESIGN.md §2 for the correctness argument, in particular
// for the masked-adjacency treatment of edge-oriented branches.
//
// A Session caches the preprocessing of one (graph, options) pair and
// serves every query type against it: maximal-clique enumeration
// (Session.Enumerate and friends), the exact maximum-clique solver
// (Session.MaxClique — branch and bound over the same cost-ordered
// branches, greedy-coloring upper bound, atomically shared incumbent;
// maxclique.go), the k largest maximal cliques (Session.TopK — the
// unchanged enumeration through a tightening worst-first heap; topk.go),
// and k-clique counting (Session.CountKCliques — the edge/vertex kernels
// without maximality filtering; kcliquecount.go). ARCHITECTURE.md's
// "Where to add a new job type" section walks through the pattern these
// share.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Algorithm selects the enumeration framework.
type Algorithm int

const (
	// BK is the original Bron–Kerbosch recursion without pivoting, run on
	// the whole graph as a single branch. Exponential fan-out; only suitable
	// for small graphs.
	BK Algorithm = iota
	// BKPivot is Tomita's pivot algorithm run on the whole graph
	// (O(n·3^{n/3})).
	BKPivot
	// BKRef is Naudé's refined pivot selection. Following [15]'s reduction
	// framework, the implementation splits the top level with the
	// degeneracy ordering and applies the refined pivot inside each branch.
	BKRef
	// BKDegen is Eppstein–Löffler–Strash: degeneracy-ordered top-level
	// split, Tomita pivot inside (O(nδ·3^{δ/3})).
	BKDegen
	// BKDegree splits the top level with the degree ordering (O(hn·3^{h/3})).
	BKDegree
	// BKRcd is the top-down removal algorithm of Li et al. [11]: repeatedly
	// branch at the minimum-degree candidate until the candidate graph is a
	// clique.
	BKRcd
	// BKFac is the fast adaptive pivot algorithm of Jin et al. [18].
	BKFac
	// EBBMC is the pure edge-oriented BK framework with a truss-based edge
	// ordering (Section III-B of the paper).
	EBBMC
	// HBBMC is the hybrid framework (Section III-C): truss-ordered
	// edge-oriented branching for SwitchDepth levels, then vertex-oriented
	// branching with pivoting.
	HBBMC
)

var algorithmNames = map[Algorithm]string{
	BK:       "BK",
	BKPivot:  "BK_Pivot",
	BKRef:    "BK_Ref",
	BKDegen:  "BK_Degen",
	BKDegree: "BK_Degree",
	BKRcd:    "BK_Rcd",
	BKFac:    "BK_Fac",
	EBBMC:    "EBBMC",
	HBBMC:    "HBBMC",
}

func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Flag spellings shared by every front end (cmd/mce flags, the service's
// JSON job options): lower-case, no underscores.
var (
	algorithmFlags = map[string]Algorithm{
		"bk":       BK,
		"bkpivot":  BKPivot,
		"bkref":    BKRef,
		"bkdegen":  BKDegen,
		"bkdegree": BKDegree,
		"bkrcd":    BKRcd,
		"bkfac":    BKFac,
		"ebbmc":    EBBMC,
		"hbbmc":    HBBMC,
	}
	innerFlags = map[string]InnerAlgorithm{
		"pivot": InnerPivot,
		"ref":   InnerRef,
		"rcd":   InnerRcd,
		"fac":   InnerFac,
	}
	edgeOrderFlags = map[string]EdgeOrderKind{
		"truss":      EdgeOrderTruss,
		"degeneracy": EdgeOrderDegeneracy,
		"mindegree":  EdgeOrderMinDegree,
	}
)

func sortedKeys[V any](m map[string]V) string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return strings.Join(ks, "|")
}

// AlgorithmChoices returns the accepted ParseAlgorithm spellings as a
// "a|b|c" list for flag usage strings.
func AlgorithmChoices() string { return sortedKeys(algorithmFlags) }

// InnerChoices returns the accepted ParseInnerAlgorithm spellings.
func InnerChoices() string { return sortedKeys(innerFlags) }

// EdgeOrderChoices returns the accepted ParseEdgeOrder spellings.
func EdgeOrderChoices() string { return sortedKeys(edgeOrderFlags) }

// ParseAlgorithm maps a case-insensitive flag spelling ("hbbmc", "bkdegen",
// ...) to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	if a, ok := algorithmFlags[strings.ToLower(s)]; ok {
		return a, nil
	}
	return 0, fmt.Errorf("core: unknown algorithm %q (choose from %s)", s, AlgorithmChoices())
}

// ParseInnerAlgorithm maps a case-insensitive flag spelling ("pivot",
// "rcd", ...) to an InnerAlgorithm.
func ParseInnerAlgorithm(s string) (InnerAlgorithm, error) {
	if a, ok := innerFlags[strings.ToLower(s)]; ok {
		return a, nil
	}
	return 0, fmt.Errorf("core: unknown inner recursion %q (choose from %s)", s, InnerChoices())
}

// ParseEdgeOrder maps a case-insensitive flag spelling ("truss",
// "degeneracy", "mindegree") to an EdgeOrderKind.
func ParseEdgeOrder(s string) (EdgeOrderKind, error) {
	if k, ok := edgeOrderFlags[strings.ToLower(s)]; ok {
		return k, nil
	}
	return 0, fmt.Errorf("core: unknown edge order %q (choose from %s)", s, EdgeOrderChoices())
}

// InnerAlgorithm selects the vertex-oriented recursion used inside hybrid
// branches (Table III's Ref++/Rcd++/Fac++ ablation).
type InnerAlgorithm int

const (
	// InnerPivot is the classic Tomita pivot — the paper's default, the only
	// choice with the O(δm + τm·3^{τ/3}) guarantee.
	InnerPivot InnerAlgorithm = iota
	// InnerRef applies Naudé's refined pivot inside hybrid branches.
	InnerRef
	// InnerRcd applies BK_Rcd's min-degree removal inside hybrid branches.
	InnerRcd
	// InnerFac applies BK_Fac's adaptive pivot inside hybrid branches.
	InnerFac
)

func (a InnerAlgorithm) String() string {
	switch a {
	case InnerPivot:
		return "Pivot"
	case InnerRef:
		return "Ref"
	case InnerRcd:
		return "Rcd"
	case InnerFac:
		return "Fac"
	}
	return fmt.Sprintf("InnerAlgorithm(%d)", int(a))
}

// EdgeOrderKind selects the edge ordering for EBBMC/HBBMC top-level splits
// (Table VI ablation).
type EdgeOrderKind int

const (
	// EdgeOrderTruss is the truss-based ordering of [19], bounding each
	// top-level candidate graph by τ. The default.
	EdgeOrderTruss EdgeOrderKind = iota
	// EdgeOrderDegeneracy orders edges lexicographically by the degeneracy
	// positions of their endpoints (HBBMC-dgn).
	EdgeOrderDegeneracy
	// EdgeOrderMinDegree orders edges by the minimum endpoint degree
	// (HBBMC-mdg).
	EdgeOrderMinDegree
)

func (k EdgeOrderKind) String() string {
	switch k {
	case EdgeOrderTruss:
		return "truss"
	case EdgeOrderDegeneracy:
		return "degeneracy"
	case EdgeOrderMinDegree:
		return "mindegree"
	}
	return fmt.Sprintf("EdgeOrderKind(%d)", int(k))
}

// UseAllCores is the Options.Workers value that selects one worker per
// available core (GOMAXPROCS).
const UseAllCores = -1

// Options configures an enumeration run. The zero value runs plain BK
// without reductions; use Defaults() for the paper's HBBMC++ configuration.
type Options struct {
	// Algorithm selects the framework.
	Algorithm Algorithm
	// ET is the early-termination threshold t: candidate graphs that are
	// t-plexes with an empty exclusion graph are closed by direct
	// construction. 0 disables ET; the paper's default is 3. Values above 3
	// are rejected (the complement-structure argument needs max degree ≤ 2).
	ET int
	// GR enables the graph-reduction preprocessing of [15].
	GR bool
	// GRMaxDegree caps the residual degree considered by reduction rules
	// (0 = default 2). Degrees above 2 only reduce simplicial vertices.
	GRMaxDegree int
	// SwitchDepth is the number of edge-oriented branching levels in HBBMC
	// before switching to vertex-oriented branching (Table IV's d).
	// 0 = default 1. Ignored by other algorithms.
	SwitchDepth int
	// EdgeOrder selects the edge ordering for EBBMC/HBBMC.
	EdgeOrder EdgeOrderKind
	// Inner selects the vertex-oriented recursion inside HBBMC branches.
	Inner InnerAlgorithm
	// MaxWholeGraphVertices guards the whole-graph algorithms (BK, BKPivot),
	// whose branch universe is the entire vertex set; 0 = default 20000.
	MaxWholeGraphVertices int

	// Workers selects the enumeration driver for Session queries: 0 or 1
	// runs the sequential driver, n > 1 distributes the top-level branches
	// over up to n goroutines (clamped to GOMAXPROCS), and UseAllCores (-1)
	// uses one worker per core. The deprecated EnumerateParallel treats its
	// positional workers argument as an override of this field (a ≤ 0
	// argument there falls back to this field, then to all cores); the
	// deprecated sequential Enumerate ignores it.
	Workers int
	// MaxCliques stops the run once this many maximal cliques have been
	// reported (0 = unlimited). A run that hits the cap returns ErrStopped
	// together with the partial Stats; exactly MaxCliques cliques are
	// counted and delivered regardless of worker count (which cliques is
	// nondeterministic under parallelism).
	MaxCliques int64
	// EmitBatchSize is the number of cliques each parallel worker buffers
	// before flushing them to the user callback in one locked batch
	// (0 = default 256, 1 = flush every clique). Larger batches cut lock
	// traffic but delay delivery; the callback is never called
	// concurrently either way. Ignored by the sequential Enumerate.
	EmitBatchSize int
	// ParallelChunkSize fixes the number of top-level branches a parallel
	// worker claims per work-queue pop. 0 (the default) selects guided
	// chunking: chunks start at remaining/(workers·4) and decay to single
	// branches toward the tail of the ordering, where branch costs are
	// most skewed. Ignored by the sequential Enumerate.
	ParallelChunkSize int
	// PhaseTimers accumulates per-phase nanosecond counters into Stats
	// (UniverseTime, PivotTime, ETTime, EmitTime). The clock reads add a
	// few percent to hot branches, so the timers are opt-in; when false
	// the counters stay zero at no measurable cost.
	PhaseTimers bool
}

// Defaults returns the paper's HBBMC++ configuration: hybrid branching with
// truss ordering, early termination at t=3 and graph reduction.
func Defaults() Options {
	return Options{
		Algorithm: HBBMC,
		ET:        3,
		GR:        true,
	}
}

// normalized fills in defaults and validates ranges.
func (o Options) normalized() (Options, error) {
	if o.ET < 0 || o.ET > 3 {
		return o, fmt.Errorf("core: ET threshold %d out of range [0,3]", o.ET)
	}
	if o.SwitchDepth < 0 {
		return o, fmt.Errorf("core: negative SwitchDepth %d", o.SwitchDepth)
	}
	if o.SwitchDepth == 0 {
		o.SwitchDepth = 1
	}
	if o.GRMaxDegree < 0 {
		return o, fmt.Errorf("core: negative GRMaxDegree %d", o.GRMaxDegree)
	}
	if o.MaxWholeGraphVertices == 0 {
		o.MaxWholeGraphVertices = 20000
	}
	if o.Workers < UseAllCores {
		return o, fmt.Errorf("core: invalid Workers %d (use UseAllCores for all cores)", o.Workers)
	}
	if o.MaxCliques < 0 {
		return o, fmt.Errorf("core: negative MaxCliques %d", o.MaxCliques)
	}
	if o.EmitBatchSize < 0 {
		return o, fmt.Errorf("core: negative EmitBatchSize %d", o.EmitBatchSize)
	}
	if o.EmitBatchSize == 0 {
		o.EmitBatchSize = 256
	}
	if o.ParallelChunkSize < 0 {
		return o, fmt.Errorf("core: negative ParallelChunkSize %d", o.ParallelChunkSize)
	}
	if _, ok := algorithmNames[o.Algorithm]; !ok {
		return o, fmt.Errorf("core: unknown algorithm %d", int(o.Algorithm))
	}
	switch o.Inner {
	case InnerPivot, InnerRef, InnerRcd, InnerFac:
	default:
		return o, fmt.Errorf("core: unknown inner algorithm %d", int(o.Inner))
	}
	switch o.EdgeOrder {
	case EdgeOrderTruss, EdgeOrderDegeneracy, EdgeOrderMinDegree:
	default:
		return o, fmt.Errorf("core: unknown edge order %d", int(o.EdgeOrder))
	}
	return o, nil
}

// SessionKey returns a canonical string over the fields that determine a
// Session's cached preprocessing and recursion behavior: the algorithm, the
// ET threshold, the reduction settings, the hybrid switch depth, the edge
// ordering, the inner recursion and the whole-graph guard. Two Options with
// equal SessionKeys can share one Session; the per-run knobs (Workers,
// MaxCliques, EmitBatchSize, ParallelChunkSize, PhaseTimers) are excluded —
// they vary per query through QueryOptions. The key is computed on the
// normalized options, so default spellings (SwitchDepth 0 vs 1) collide as
// they should; invalid options yield a key that simply never matches a
// buildable session.
func (o Options) SessionKey() string {
	if n, err := o.normalized(); err == nil {
		o = n
	}
	return fmt.Sprintf("algo=%s,et=%d,gr=%t,grmax=%d,d=%d,eo=%s,inner=%s,maxwhole=%d",
		o.Algorithm, o.ET, o.GR, o.GRMaxDegree, o.SwitchDepth, o.EdgeOrder, o.Inner, o.MaxWholeGraphVertices)
}
