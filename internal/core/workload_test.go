package core

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/verify"
)

// workloadAlgorithms covers every top-level branch shape the workload
// queries dispatch on: whole-graph (BK, BKPivot), vertex-ordered (BKDegen,
// BKDegree) and edge-ordered (EBBMC, HBBMC).
var workloadAlgorithms = []Algorithm{BK, BKPivot, BKDegen, BKDegree, EBBMC, HBBMC}

var workloadWorkers = []int{1, 2, 8}

// omega returns the maximum clique size of the reference enumeration.
func omega(ref [][]int32) int {
	best := 0
	for _, c := range ref {
		if len(c) > best {
			best = len(c)
		}
	}
	return best
}

// topKOracle sorts the full reference enumeration under the query's total
// order (size descending, then lexicographically ascending on the sorted
// vertices) and keeps the first k.
func topKOracle(ref [][]int32, k int) [][]int32 {
	sorted := make([][]int32, 0, len(ref))
	for _, c := range ref {
		cc := append([]int32(nil), c...)
		slices.Sort(cc)
		sorted = append(sorted, cc)
	}
	slices.SortFunc(sorted, func(a, b []int32) int {
		switch {
		case cliqueLess(a, b):
			return -1
		case cliqueLess(b, a):
			return 1
		}
		return 0
	})
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	return sorted
}

// bruteForceKCliques counts the k-vertex cliques of g by extending
// ascending vertex combinations, each candidate checked against every
// chosen member.
func bruteForceKCliques(g *graph.Graph, k int) int64 {
	n := int32(g.NumVertices())
	cur := make([]int32, 0, k)
	var rec func(next int32) int64
	rec = func(next int32) int64 {
		if len(cur) == k {
			return 1
		}
		var total int64
		for v := next; v < n; v++ {
			ok := true
			for _, u := range cur {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				cur = append(cur, v)
				total += rec(v + 1)
				cur = cur[:len(cur)-1]
			}
		}
		return total
	}
	if k == 0 {
		return 1
	}
	return rec(0)
}

func checkMaxClique(t *testing.T, label string, g *graph.Graph, s *Session, want int) {
	t.Helper()
	for _, w := range workloadWorkers {
		clique, stats, err := s.MaxClique(context.Background(), QueryOptions{Workers: w})
		if err != nil {
			t.Fatalf("%s/w=%d: %v", label, w, err)
		}
		if len(clique) != want {
			t.Fatalf("%s/w=%d: |clique|=%d, want ω=%d (witness %v)", label, w, len(clique), want, clique)
		}
		if want > 0 && !g.IsClique(clique) {
			t.Fatalf("%s/w=%d: witness %v is not a clique of the input graph", label, w, clique)
		}
		if stats.MaxCliqueSize != want {
			t.Fatalf("%s/w=%d: stats.MaxCliqueSize=%d, want %d", label, w, stats.MaxCliqueSize, want)
		}
		if want > 0 && stats.IncumbentUpdates == 0 {
			t.Fatalf("%s/w=%d: no incumbent updates despite ω=%d", label, w, want)
		}
	}
}

func TestMaxCliqueOnFixedShapes(t *testing.T) {
	shapes := map[string]*graph.Graph{
		"empty":    graph.NewBuilder(0).MustBuild(),
		"isolated": graph.NewBuilder(4).MustBuild(),
		"edge":     gen.Path(2),
		"path6":    gen.Path(6),
		"cycle7":   gen.Cycle(7),
		"star8":    gen.Star(8),
		"K6":       gen.Complete(6),
		"mm3":      gen.MoonMoser(3),
	}
	for name, g := range shapes {
		want := omega(verify.MaximalCliques(g))
		for _, algo := range workloadAlgorithms {
			for _, gr := range []bool{false, true} {
				s, err := NewSession(g, Options{Algorithm: algo, GR: gr})
				if err != nil {
					t.Fatal(err)
				}
				checkMaxClique(t, fmt.Sprintf("%s/%v/gr=%v", name, algo, gr), g, s, want)
			}
		}
	}
}

func TestMaxCliqueOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for iter := 0; iter < 25; iter++ {
		n := 1 + rng.Intn(40)
		g := randomGraph(rng, n, rng.Intn(5*n))
		want := omega(verify.MaximalCliques(g))
		for _, algo := range workloadAlgorithms {
			s, err := NewSession(g, Options{Algorithm: algo, GR: iter%2 == 0, ET: 3})
			if err != nil {
				t.Fatal(err)
			}
			checkMaxClique(t, fmt.Sprintf("iter%d/%v", iter, algo), g, s, want)
		}
	}
}

func TestMaxCliqueBnBCounters(t *testing.T) {
	g := gen.NoisyCliques(120, 12, 7, 200, 13)
	s, err := NewSession(g, Options{Algorithm: HBBMC})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := s.MaxClique(context.Background(), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// On a clique-planted graph the incumbent seeds may already reach ω, in
	// which case every branch is cut before the recursion even starts — the
	// search does *some* bounded work either way.
	if stats.BnBCalls+stats.BnBPrunes == 0 {
		t.Error("BnB counters should be populated")
	}
	if stats.BnBPrunes == 0 {
		t.Error("a clique-planted graph should trigger bound prunes")
	}
	if stats.Workers != 1 {
		t.Errorf("sequential query reported %d workers", stats.Workers)
	}
}

func TestTopKMatchesSortedEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for iter := 0; iter < 15; iter++ {
		n := 5 + rng.Intn(35)
		g := randomGraph(rng, n, rng.Intn(5*n))
		ref := verify.MaximalCliques(g)
		for _, algo := range workloadAlgorithms {
			s, err := NewSession(g, Options{Algorithm: algo, GR: iter%2 == 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 3, 7, len(ref) + 5} {
				want := topKOracle(ref, k)
				for _, w := range workloadWorkers {
					got, stats, err := s.TopK(context.Background(), k, QueryOptions{Workers: w})
					if err != nil {
						t.Fatalf("iter%d/%v/k=%d/w=%d: %v", iter, algo, k, w, err)
					}
					if !slices.EqualFunc(got, want, slices.Equal) {
						t.Fatalf("iter%d/%v/k=%d/w=%d:\n got %v\nwant %v", iter, algo, k, w, got, want)
					}
					if stats.Cliques != int64(len(ref)) {
						t.Fatalf("iter%d/%v/k=%d/w=%d: enumerated %d cliques, want %d",
							iter, algo, k, w, stats.Cliques, len(ref))
					}
				}
			}
		}
	}
}

func TestTopKIgnoresSessionCliqueBudget(t *testing.T) {
	// A session-level MaxCliques budget must not truncate the enumeration
	// behind a top-k query: the result would silently miss the true top-k.
	g := gen.NoisyCliques(80, 10, 6, 100, 17)
	s, err := NewSession(g, Options{Algorithm: HBBMC, MaxCliques: 2})
	if err != nil {
		t.Fatal(err)
	}
	total, _, err := s.CountWith(context.Background(), QueryOptions{MaxCliques: NoCliqueLimit})
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := s.TopK(context.Background(), 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cliques != total {
		t.Fatalf("TopK enumerated %d cliques, want the full %d despite the session budget", stats.Cliques, total)
	}
	if len(got) != 3 {
		t.Fatalf("TopK returned %d cliques, want 3", len(got))
	}
}

func TestTopKAccumThreshold(t *testing.T) {
	acc := &topKAccum{k: 2}
	if acc.threshold() != 0 {
		t.Fatalf("empty accumulator threshold = %d, want 0", acc.threshold())
	}
	acc.visit([]int32{1, 2, 3})
	acc.visit([]int32{4, 5})
	if acc.threshold() != 2 {
		t.Fatalf("threshold = %d, want 2 (worst kept clique)", acc.threshold())
	}
	// A clique below the threshold is rejected on length alone...
	acc.visit([]int32{9})
	if acc.rejected != 1 {
		t.Fatalf("rejected = %d, want 1", acc.rejected)
	}
	// ...and a larger one evicts the worst entry and tightens the bound.
	acc.visit([]int32{6, 7, 8, 9})
	if acc.threshold() != 3 {
		t.Fatalf("threshold = %d, want 3 after eviction", acc.threshold())
	}
	got := acc.sorted()
	want := [][]int32{{6, 7, 8, 9}, {1, 2, 3}}
	if !slices.EqualFunc(got, want, slices.Equal) {
		t.Fatalf("sorted() = %v, want %v", got, want)
	}
}

func TestCountKCliquesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for iter := 0; iter < 15; iter++ {
		n := 1 + rng.Intn(25)
		g := randomGraph(rng, n, rng.Intn(5*n))
		for _, algo := range workloadAlgorithms {
			// GR on odd iterations exercises the source-graph fallback basis
			// whenever the reduction removes vertices.
			s, err := NewSession(g, Options{Algorithm: algo, GR: iter%2 == 1})
			if err != nil {
				t.Fatal(err)
			}
			for k := 1; k <= 5; k++ {
				want := bruteForceKCliques(g, k)
				for _, w := range workloadWorkers {
					got, stats, err := s.CountKCliques(context.Background(), k, QueryOptions{Workers: w})
					if err != nil {
						t.Fatalf("iter%d/%v/k=%d/w=%d: %v", iter, algo, k, w, err)
					}
					if got != want {
						t.Fatalf("iter%d/%v/k=%d/w=%d: count=%d, want %d", iter, algo, k, w, got, want)
					}
					if stats.KCliques != want {
						t.Fatalf("iter%d/%v/k=%d/w=%d: stats.KCliques=%d, want %d",
							iter, algo, k, w, stats.KCliques, want)
					}
				}
			}
		}
	}
}

func TestCountKCliquesKnownCounts(t *testing.T) {
	// MoonMoser(p) is the complete p-partite graph with parts of size 3: a
	// j-clique picks j parts and one vertex from each, so the count is
	// C(p,j) * 3^j.
	mm := gen.MoonMoser(3)
	s, err := NewSession(mm, Options{Algorithm: HBBMC})
	if err != nil {
		t.Fatal(err)
	}
	wants := map[int]int64{1: 9, 2: 27, 3: 27, 4: 0}
	for k, want := range wants {
		got, _, err := s.CountKCliques(context.Background(), k, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("MoonMoser(3) k=%d: count=%d, want %d", k, got, want)
		}
	}
	// K6 has C(6,k) k-cliques.
	s6, err := NewSession(gen.Complete(6), Options{Algorithm: EBBMC})
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range map[int]int64{3: 20, 4: 15, 5: 6, 6: 1, 7: 0} {
		got, _, err := s6.CountKCliques(context.Background(), k, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("K6 k=%d: count=%d, want %d", k, got, want)
		}
	}
}

func TestWorkloadQueryValidation(t *testing.T) {
	s, err := NewSession(gen.Complete(4), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := s.TopK(ctx, 0, QueryOptions{}); err == nil {
		t.Error("TopK(0) should be rejected")
	}
	if _, _, err := s.CountKCliques(ctx, -1, QueryOptions{}); err == nil {
		t.Error("CountKCliques(-1) should be rejected")
	}
	rangeQ := QueryOptions{BranchLo: 0, BranchHi: 1}
	if _, _, err := s.MaxClique(ctx, rangeQ); err == nil {
		t.Error("MaxClique with a branch range should be rejected")
	}
	if _, _, err := s.TopK(ctx, 1, rangeQ); err == nil {
		t.Error("TopK with a branch range should be rejected")
	}
	if _, _, err := s.CountKCliques(ctx, 3, rangeQ); err == nil {
		t.Error("CountKCliques with a branch range should be rejected")
	}
}
