package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/verify"
)

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

// allAlgorithms is the full framework grid.
var allAlgorithms = []Algorithm{BK, BKPivot, BKRef, BKDegen, BKDegree, BKRcd, BKFac, EBBMC, HBBMC}

// checkAgainstReference enumerates g under opts and fails the test unless
// the result matches the reference exactly.
func checkAgainstReference(t *testing.T, label string, g *graph.Graph, opts Options, want [][]int32) {
	t.Helper()
	got, stats, err := Collect(g, opts)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if d := verify.Diff(got, want); d != "" {
		t.Fatalf("%s: %s", label, d)
	}
	if stats.Cliques != int64(len(got)) {
		t.Fatalf("%s: stats.Cliques=%d but %d cliques emitted", label, stats.Cliques, len(got))
	}
	if err := verify.CheckAllMaximal(g, got); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
}

func referenceFor(g *graph.Graph) [][]int32 {
	if g.NumVertices() == 0 {
		return nil
	}
	return verify.MaximalCliques(g)
}

func TestAllAlgorithmsOnFixedShapes(t *testing.T) {
	shapes := map[string]*graph.Graph{
		"empty":      graph.NewBuilder(0).MustBuild(),
		"isolated":   graph.NewBuilder(4).MustBuild(),
		"edge":       gen.Path(2),
		"path6":      gen.Path(6),
		"cycle7":     gen.Cycle(7),
		"star8":      gen.Star(8),
		"K6":         gen.Complete(6),
		"moonmoser3": gen.MoonMoser(3),
		"triangle+pendant": func() *graph.Graph {
			b := graph.NewBuilder(4)
			b.AddEdge(0, 1)
			b.AddEdge(1, 2)
			b.AddEdge(0, 2)
			b.AddEdge(2, 3)
			return b.MustBuild()
		}(),
	}
	for name, g := range shapes {
		want := referenceFor(g)
		for _, algo := range allAlgorithms {
			for _, gr := range []bool{false, true} {
				for _, et := range []int{0, 3} {
					label := fmt.Sprintf("%s/%v/gr=%v/et=%d", name, algo, gr, et)
					checkAgainstReference(t, label, g, Options{Algorithm: algo, GR: gr, ET: et}, want)
				}
			}
		}
	}
}

func TestAllAlgorithmsOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 60; iter++ {
		n := 1 + rng.Intn(40)
		m := rng.Intn(4 * n)
		g := randomGraph(rng, n, m)
		want := referenceFor(g)
		for _, algo := range allAlgorithms {
			label := fmt.Sprintf("iter%d/%v", iter, algo)
			checkAgainstReference(t, label, g, Options{Algorithm: algo}, want)
		}
	}
}

func TestAllAlgorithmsWithETAndGROnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(35)
		g := randomGraph(rng, n, rng.Intn(5*n))
		want := referenceFor(g)
		for _, algo := range allAlgorithms {
			for _, et := range []int{1, 2, 3} {
				label := fmt.Sprintf("iter%d/%v/et=%d", iter, algo, et)
				checkAgainstReference(t, label, g, Options{Algorithm: algo, ET: et, GR: iter%2 == 0}, want)
			}
		}
	}
}

func TestHBBMCSwitchDepths(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(35)
		g := randomGraph(rng, n, rng.Intn(6*n))
		want := referenceFor(g)
		for d := 1; d <= 4; d++ {
			for _, et := range []int{0, 3} {
				label := fmt.Sprintf("iter%d/d=%d/et=%d", iter, d, et)
				checkAgainstReference(t, label, g,
					Options{Algorithm: HBBMC, SwitchDepth: d, ET: et}, want)
			}
		}
	}
}

func TestHBBMCInnerVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(35)
		g := randomGraph(rng, n, rng.Intn(6*n))
		want := referenceFor(g)
		for _, inner := range []InnerAlgorithm{InnerPivot, InnerRef, InnerRcd, InnerFac} {
			label := fmt.Sprintf("iter%d/inner=%v", iter, inner)
			checkAgainstReference(t, label, g,
				Options{Algorithm: HBBMC, Inner: inner, ET: 3, GR: true}, want)
		}
	}
}

func TestHBBMCEdgeOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for iter := 0; iter < 40; iter++ {
		n := 1 + rng.Intn(35)
		g := randomGraph(rng, n, rng.Intn(6*n))
		want := referenceFor(g)
		for _, eo := range []EdgeOrderKind{EdgeOrderTruss, EdgeOrderDegeneracy, EdgeOrderMinDegree} {
			for _, algo := range []Algorithm{EBBMC, HBBMC} {
				label := fmt.Sprintf("iter%d/%v/order=%v", iter, algo, eo)
				checkAgainstReference(t, label, g,
					Options{Algorithm: algo, EdgeOrder: eo}, want)
			}
		}
	}
}

func TestStructuredGenerators(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":    gen.ER(60, 200, 7),
		"ba":    gen.BA(60, 4, 7),
		"sbm":   gen.SBM(gen.SBMConfig{Communities: 3, Size: 15, PIn: 0.6, POut: 0.05}, 7),
		"noisy": gen.NoisyCliques(50, 6, 7, 40, 7),
		"plc":   gen.PowerLawCluster(60, 4, 0.7, 7),
	}
	for name, g := range graphs {
		want := referenceFor(g)
		for _, algo := range []Algorithm{BKDegen, BKRcd, BKFac, BKRef, EBBMC, HBBMC} {
			label := fmt.Sprintf("%s/%v", name, algo)
			checkAgainstReference(t, label, g, Options{Algorithm: algo, ET: 3, GR: true}, want)
		}
	}
}

func TestCountMatchesCollect(t *testing.T) {
	g := gen.ER(80, 400, 9)
	count, stats, err := Count(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	cliques, _, err := Collect(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if count != int64(len(cliques)) {
		t.Fatalf("Count=%d, Collect found %d", count, len(cliques))
	}
	if stats.MaxCliqueSize <= 1 {
		t.Errorf("suspicious max clique size %d", stats.MaxCliqueSize)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := gen.Path(3)
	bad := []Options{
		{Algorithm: HBBMC, ET: 4},
		{Algorithm: HBBMC, ET: -1},
		{Algorithm: HBBMC, SwitchDepth: -2},
		{Algorithm: Algorithm(99)},
		{Algorithm: HBBMC, Inner: InnerAlgorithm(9)},
		{Algorithm: HBBMC, EdgeOrder: EdgeOrderKind(9)},
		{Algorithm: HBBMC, GRMaxDegree: -1},
	}
	for i, opts := range bad {
		if _, err := Enumerate(g, opts, nil); err == nil {
			t.Errorf("options %d should be rejected: %+v", i, opts)
		}
	}
}

func TestWholeGraphGuard(t *testing.T) {
	g := gen.Path(50)
	opts := Options{Algorithm: BKPivot, MaxWholeGraphVertices: 10}
	if _, err := Enumerate(g, opts, nil); err == nil {
		t.Error("whole-graph guard should reject large graphs")
	}
	// With GR the path reduces away entirely, so the guard passes.
	opts.GR = true
	if _, err := Enumerate(g, opts, nil); err != nil {
		t.Errorf("reduced graph should fit the guard: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	g := gen.NoisyCliques(60, 8, 8, 60, 11)
	_, stats, err := Count(g, Options{Algorithm: HBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Calls == 0 || stats.TopBranches == 0 {
		t.Error("call counters should be populated")
	}
	if stats.EarlyTerminations == 0 {
		t.Error("a clique-planted graph should trigger early terminations")
	}
	if stats.EarlyTerminations > stats.PlexBranches {
		t.Error("b0 cannot exceed b")
	}
	if stats.Tau <= 0 {
		t.Error("truss parameter should be positive on a clique-planted graph")
	}
	_, statsOff, err := Count(g, Options{Algorithm: HBBMC, ET: 0})
	if err != nil {
		t.Fatal(err)
	}
	if statsOff.EarlyTerminations != 0 || statsOff.PlexBranches != 0 {
		t.Error("ET counters must stay zero when ET is disabled")
	}
	if statsOff.VertexCalls <= stats.VertexCalls {
		t.Error("ET should reduce the number of vertex-phase calls")
	}
}

func TestEmitBufferIsReused(t *testing.T) {
	// The emit callback's slice must be copied by callers that retain it;
	// verify the engine actually reuses the buffer (documented behaviour).
	g := gen.Complete(4)
	var first []int32
	calls := 0
	_, err := Enumerate(g, Options{Algorithm: BKDegen}, func(c []int32) {
		if calls == 0 {
			first = c
		}
		calls++
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = first // single clique here; just ensure no panic and one call
	if calls != 1 {
		t.Fatalf("K4 has 1 maximal clique, emit called %d times", calls)
	}
}

func TestDegreeZeroAndOneGraphs(t *testing.T) {
	// Regression guard for top-level corner cases: graphs whose maximal
	// cliques are all of size 1 or 2.
	b := graph.NewBuilder(7)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.MustBuild() // vertices 0,5,6 isolated; two disjoint edges
	want := referenceFor(g)
	for _, algo := range allAlgorithms {
		checkAgainstReference(t, fmt.Sprintf("deg01/%v", algo), g, Options{Algorithm: algo}, want)
		checkAgainstReference(t, fmt.Sprintf("deg01gr/%v", algo), g, Options{Algorithm: algo, GR: true}, want)
	}
}
