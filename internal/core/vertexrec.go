package core

import "github.com/graphmining/hbbmc/internal/bitset"

// This file contains the vertex-oriented recursions. All share the same
// contract: (S implicit in e.S, C, X) is a branch; C and X are bitsets over
// the current local universe owned by the callee (they may be mutated);
// adjH is the masked candidate adjacency inside hybrid branches (nil
// otherwise — then the full adjacency e.adjG applies to candidates too).

// pivotRec is the classic Tomita pivot recursion used by BK_Pivot, BK_Degen,
// BK_Degree and as the default inner recursion of HBBMC: pick the vertex of
// C ∪ X with the most candidate neighbors and branch only on its
// non-neighbors in C.
func (e *engine) pivotRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	cSize, minDeg, pivot := e.scanPivot(C, X)
	// Masked-ness is hereditary: C only shrinks, so once no candidate edge
	// is masked the entire subtree can run the cheaper unmasked recursion.
	if adjH != nil && !ablateMaskDrop && !e.maskedEdgesIn(adjH, C) {
		adjH = nil
	}
	if e.tryEarlyTerminate(adjH, C, X, cSize, minDeg) {
		return
	}
	// An exclusion vertex covering every candidate makes all descendants
	// non-maximal; pruning here costs |C| word-ANDs and skips the subtree.
	if !ablateXDomination && e.xDominated(C, X) {
		return
	}
	mark := e.setArena.Mark()
	P := e.setArena.Get()
	P.AndNotInto(C, e.adjG[pivot])
	childC := e.setArena.Get()
	childX := e.setArena.Get()
	tmp := e.setArena.Get()
	for v := P.First(); v >= 0; v = P.NextAfter(v) {
		e.deriveChild(adjH, C, X, v, childC, childX, tmp)
		e.S = append(e.S, e.verts[v])
		e.pivotRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		C.Unset(v)
		X.Set(v)
	}
	e.setArena.Release(mark)
}

// scanPivot computes |C|, the minimum candidate degree inside C (full
// adjacency — used by the t-plex test) and the Tomita pivot over C ∪ X.
// Exclusion vertices without adjacency rows (the edge-oriented top level
// skips building them) are not considered as pivots; candidates always
// provide a valid pivot.
func (e *engine) scanPivot(C, X bitset.Set) (cSize, minDeg, pivot int) {
	cSize, minDeg, pivot = 0, int(^uint(0)>>1), -1
	best := -1
	e.ensureCnt()
	for i := C.First(); i >= 0; i = C.NextAfter(i) {
		cSize++
		cnt := e.adjG[i].AndCount(C)
		e.cntBuf[i] = int32(cnt)
		if cnt > best {
			best, pivot = cnt, i
		}
		if cnt < minDeg {
			minDeg = cnt
		}
	}
	for i := X.First(); i >= 0; i = X.NextAfter(i) {
		if e.adjG[i] == nil {
			continue
		}
		if cnt := e.adjG[i].AndCount(C); cnt > best {
			best, pivot = cnt, i
		}
	}
	return cSize, minDeg, pivot
}

// maskedEdgesIn reports whether any candidate-candidate edge is masked:
// some candidate's masked row differs from its full row on C.
func (e *engine) maskedEdgesIn(adjH []bitset.Set, C bitset.Set) bool {
	for i := C.First(); i >= 0; i = C.NextAfter(i) {
		rowG, rowH := e.adjG[i], adjH[i]
		for w := range C {
			if (rowG[w]^rowH[w])&C[w] != 0 {
				return true
			}
		}
	}
	return false
}

// ensureCnt sizes the per-local-id candidate-count cache. Every scan that
// may lead into tryEarlyTerminate stores its counts here so the plex
// decomposition can reuse them instead of recounting.
func (e *engine) ensureCnt() {
	if cap(e.cntBuf) < len(e.verts) {
		e.cntBuf = make([]int32, len(e.verts))
	}
	e.cntBuf = e.cntBuf[:len(e.verts)]
}

// xDominated reports whether some exclusion vertex is adjacent to every
// candidate — in which case no maximal clique exists below the branch. It
// folds candidate rows over X, so it needs no X-side adjacency rows. The
// scratch set is carved from the caller's arena mark.
func (e *engine) xDominated(C, X bitset.Set) bool {
	if X.IsEmpty() {
		return false
	}
	mark := e.setArena.Mark()
	fold := e.setArena.Get()
	fold.CopyFrom(X)
	for c := C.First(); c >= 0; c = C.NextAfter(c) {
		fold.AndWith(e.adjG[c])
		if fold.IsEmpty() {
			e.setArena.Release(mark)
			return false
		}
	}
	e.setArena.Release(mark)
	return true
}

// refRec is the Naudé-style refined recursion (BK_Ref, [12]): the Tomita
// pivot augmented with two domination rules — a branch dies when some
// exclusion vertex covers all of C, and a candidate adjacent to every other
// candidate is moved into S without branching.
func (e *engine) refRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	// Rule 1: an exclusion vertex adjacent to all candidates dominates the
	// branch — no clique below can be maximal.
	if e.xDominated(C, X) {
		return
	}
	cSize := C.Count()
	minDeg, universal := int(^uint(0)>>1), -1
	best, pivot := -1, -1
	e.ensureCnt()
	for i := C.First(); i >= 0; i = C.NextAfter(i) {
		cnt := e.adjG[i].AndCount(C)
		e.cntBuf[i] = int32(cnt)
		if cnt > best {
			best, pivot = cnt, i
		}
		if cnt < minDeg {
			minDeg = cnt
		}
		if cnt == cSize-1 && universal < 0 {
			universal = i
		}
	}
	if adjH != nil && !ablateMaskDrop && !e.maskedEdgesIn(adjH, C) {
		adjH = nil
	}
	if e.tryEarlyTerminate(adjH, C, X, cSize, minDeg) {
		return
	}
	// Rule 2 (unmasked branches only): a candidate adjacent to every other
	// candidate belongs to every maximal clique of the branch. In masked
	// branches full adjacency does not imply candidate adjacency, so the
	// move would be unsound.
	if adjH == nil && universal >= 0 {
		mark := e.setArena.Mark()
		childC := e.setArena.Get()
		childX := e.setArena.Get()
		childC.CopyFrom(C)
		childC.Unset(universal)
		childX.AndInto(X, e.adjG[universal])
		e.S = append(e.S, e.verts[universal])
		e.refRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		e.setArena.Release(mark)
		return
	}
	mark := e.setArena.Mark()
	P := e.setArena.Get()
	P.AndNotInto(C, e.adjG[pivot])
	childC := e.setArena.Get()
	childX := e.setArena.Get()
	tmp := e.setArena.Get()
	for v := P.First(); v >= 0; v = P.NextAfter(v) {
		e.deriveChild(adjH, C, X, v, childC, childX, tmp)
		e.S = append(e.S, e.verts[v])
		e.refRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		C.Unset(v)
		X.Set(v)
	}
	e.setArena.Release(mark)
}

// rcdRec is BK_Rcd (Algorithm 9 of the paper, from [11]): repeatedly branch
// at the candidate of minimum candidate-graph degree until the candidate
// graph becomes a clique, then report S ∪ C if no exclusion vertex covers C.
func (e *engine) rcdRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	mark := e.setArena.Mark()
	childC := e.setArena.Get()
	childX := e.setArena.Get()
	tmp := e.setArena.Get()
	cSize := 0
	for {
		// Scan C: candidate-graph degrees (masked adjacency in hybrid
		// branches) drive the clique test and the branching choice; full
		// degrees drive the t-plex test.
		cSize = 0
		minH, minV := int(^uint(0)>>1), -1
		minG := int(^uint(0) >> 1)
		e.ensureCnt()
		for i := C.First(); i >= 0; i = C.NextAfter(i) {
			cSize++
			var cntH int
			cntG := e.adjG[i].AndCount(C)
			e.cntBuf[i] = int32(cntG)
			if adjH != nil {
				cntH = adjH[i].AndCount(C)
			} else {
				cntH = cntG
			}
			if cntH < minH {
				minH, minV = cntH, i
			}
			if cntG < minG {
				minG = cntG
			}
		}
		if cSize == 0 {
			// All candidates were branched away; the vertices now in X
			// block maximality of S itself.
			e.setArena.Release(mark)
			return
		}
		if e.tryEarlyTerminate(adjH, C, X, cSize, minG) {
			e.setArena.Release(mark)
			return
		}
		if minH == cSize-1 {
			break // candidate graph is a clique
		}
		e.deriveChild(adjH, C, X, minV, childC, childX, tmp)
		e.S = append(e.S, e.verts[minV])
		e.rcdRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		C.Unset(minV)
		X.Set(minV)
	}
	// C is a candidate-graph clique; S ∪ C is maximal unless some exclusion
	// vertex is adjacent to all of C.
	if !e.xDominated(C, X) {
		e.emitSet(C)
	}
	e.setArena.Release(mark)
}

// facRec is BK_Fac (Algorithm 10 of the paper, from [18]): start from an
// arbitrary pivot and opportunistically adopt a better one whenever a
// just-branched vertex would have produced fewer sub-branches.
func (e *engine) facRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	if e.opts.ET > 0 {
		cSize, minDeg := 0, int(^uint(0)>>1)
		e.ensureCnt()
		for i := C.First(); i >= 0; i = C.NextAfter(i) {
			cSize++
			cnt := e.adjG[i].AndCount(C)
			e.cntBuf[i] = int32(cnt)
			if cnt < minDeg {
				minDeg = cnt
			}
		}
		if e.tryEarlyTerminate(adjH, C, X, cSize, minDeg) {
			return
		}
	}
	mark := e.setArena.Mark()
	P := e.setArena.Get()
	v := C.First()
	P.AndNotInto(C, e.adjG[v])
	pCount := P.Count()
	childC := e.setArena.Get()
	childX := e.setArena.Get()
	tmp := e.setArena.Get()
	for {
		u := P.First()
		if u < 0 {
			break
		}
		e.deriveChild(adjH, C, X, u, childC, childX, tmp)
		e.S = append(e.S, e.verts[u])
		e.facRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		C.Unset(u)
		X.Set(u)
		P.Unset(u)
		pCount--
		// Adopt u as the new pivot when that shrinks the branch set.
		if alt := C.Count() - C.AndCount(e.adjG[u]); alt < pCount {
			P.AndNotInto(C, e.adjG[u])
			pCount = alt
		}
	}
	e.setArena.Release(mark)
}

// plainRec is the original Bron–Kerbosch recursion without pivoting,
// branching on every candidate.
func (e *engine) plainRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	if e.opts.ET > 0 {
		cSize, minDeg := 0, int(^uint(0)>>1)
		e.ensureCnt()
		for i := C.First(); i >= 0; i = C.NextAfter(i) {
			cSize++
			cnt := e.adjG[i].AndCount(C)
			e.cntBuf[i] = int32(cnt)
			if cnt < minDeg {
				minDeg = cnt
			}
		}
		if e.tryEarlyTerminate(adjH, C, X, cSize, minDeg) {
			return
		}
	}
	mark := e.setArena.Mark()
	childC := e.setArena.Get()
	childX := e.setArena.Get()
	tmp := e.setArena.Get()
	snapshot := C.Clone()
	for v := snapshot.First(); v >= 0; v = snapshot.NextAfter(v) {
		e.deriveChild(adjH, C, X, v, childC, childX, tmp)
		e.S = append(e.S, e.verts[v])
		e.plainRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		C.Unset(v)
		X.Set(v)
	}
	e.setArena.Release(mark)
}
