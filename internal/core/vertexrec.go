package core

import (
	"math"
	"math/bits"

	"github.com/graphmining/hbbmc/internal/bitset"
)

// This file contains the vertex-oriented recursions. All share the same
// contract: (S implicit in e.S, C, X) is a branch; C and X are bitsets over
// the current local universe owned by the callee (they may be mutated);
// adjH is the masked candidate adjacency inside hybrid branches (nil
// otherwise — then the full adjacency e.adjG applies to candidates too).
//
// Hot loops iterate bitsets word-by-word (TrailingZeros64 + w&(w-1)) rather
// than through per-bit First/NextAfter calls, and compute candidate degrees
// with the fused intersect+popcount kernels of internal/bitset. The
// ablateUnfusedKernels toggle reverts the scans to the per-bit composed
// forms so the fused path's contribution stays measurable.

// pivotRec is the classic Tomita pivot recursion used by BK_Pivot, BK_Degen,
// BK_Degree and as the default inner recursion of HBBMC: pick the vertex of
// C ∪ X with the most candidate neighbors and branch only on its
// non-neighbors in C.
//
//hbbmc:noalloc
func (e *engine) pivotRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	cSize, minDeg, pivot := e.scanPivot(C, X)
	// Masked-ness is hereditary: C only shrinks, so once no candidate edge
	// is masked the entire subtree can run the cheaper unmasked recursion.
	if adjH != nil && !ablateMaskDrop && !e.maskedEdgesIn(adjH, C) {
		adjH = nil
	}
	if e.tryEarlyTerminate(adjH, C, X, cSize, minDeg) {
		return
	}
	// An exclusion vertex covering every candidate makes all descendants
	// non-maximal; pruning here costs |C| word-ANDs and skips the subtree.
	if !ablateXDomination && e.xDominated(C, X) {
		return
	}
	mark := e.setArena.Mark()
	P := e.setArena.GetUnzeroed()
	P.AndNotInto(C, e.adjG[pivot])
	childC := e.setArena.GetUnzeroed()
	childX := e.setArena.GetUnzeroed()
	tmp := e.setArena.GetUnzeroed()
	// P is never mutated inside the loop (only C and X are), so the word
	// snapshot iteration is safe.
	for wi, w := range P {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			v := base + bits.TrailingZeros64(w)
			e.deriveChild(adjH, C, X, v, childC, childX, tmp)
			e.S = append(e.S, e.verts[v])
			e.pivotRec(adjH, childC, childX)
			e.S = e.S[:len(e.S)-1]
			C.Unset(v)
			X.Set(v)
		}
	}
	e.setArena.Release(mark)
}

// scanPivot computes |C|, the minimum candidate degree inside C (full
// adjacency — used by the t-plex test) and the Tomita pivot over C ∪ X.
// Exclusion vertices without adjacency rows (the edge-oriented top level
// skips building them) are not considered as pivots; candidates always
// provide a valid pivot.
//
//hbbmc:noalloc
func (e *engine) scanPivot(C, X bitset.Set) (cSize, minDeg, pivot int) {
	t0 := e.now()
	cSize, minDeg, pivot = 0, math.MaxInt, -1
	best := -1
	e.ensureCnt()
	if ablateUnfusedKernels {
		for i := C.First(); i >= 0; i = C.NextAfter(i) {
			cSize++
			cnt := e.adjG[i].AndCount(C)
			e.cntBuf[i] = int32(cnt)
			if cnt > best {
				best, pivot = cnt, i
			}
			if cnt < minDeg {
				minDeg = cnt
			}
		}
		for i := X.First(); i >= 0; i = X.NextAfter(i) {
			if e.adjG[i] == nil {
				continue
			}
			if cnt := e.adjG[i].AndCount(C); cnt > best {
				best, pivot = cnt, i
			}
		}
		e.addPivot(t0)
		return cSize, minDeg, pivot
	}
	adj := e.adjG
	cnt := e.cntBuf
	for wi, w := range C {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			i := base + bits.TrailingZeros64(w)
			c := adj[i].AndCount(C)
			cnt[i] = int32(c)
			cSize++
			if c > best {
				best, pivot = c, i
			}
			if c < minDeg {
				minDeg = c
			}
		}
	}
	for wi, w := range X {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			i := base + bits.TrailingZeros64(w)
			if adj[i] == nil {
				continue
			}
			if c := adj[i].AndCount(C); c > best {
				best, pivot = c, i
			}
		}
	}
	e.addPivot(t0)
	return cSize, minDeg, pivot
}

// maskedEdgesIn reports whether any candidate-candidate edge is masked:
// some candidate's masked row differs from its full row on C.
//
//hbbmc:noalloc
func (e *engine) maskedEdgesIn(adjH []bitset.Set, C bitset.Set) bool {
	for wi, cw := range C {
		base := wi * 64
		for ; cw != 0; cw &= cw - 1 {
			i := base + bits.TrailingZeros64(cw)
			rowG, rowH := e.adjG[i], adjH[i]
			for w := range C {
				if (rowG[w]^rowH[w])&C[w] != 0 {
					return true
				}
			}
		}
	}
	return false
}

// ensureCnt sizes the per-local-id candidate-count cache. Every scan that
// may lead into tryEarlyTerminate stores its counts here so the plex
// decomposition can reuse them instead of recounting.
func (e *engine) ensureCnt() {
	if cap(e.cntBuf) < len(e.verts) {
		e.cntBuf = make([]int32, len(e.verts))
	}
	e.cntBuf = e.cntBuf[:len(e.verts)]
}

// xDominated reports whether some exclusion vertex is adjacent to every
// candidate — in which case no maximal clique exists below the branch. It
// folds candidate rows over X, so it needs no X-side adjacency rows. The
// scratch set is carved from the caller's arena mark.
//
//hbbmc:noalloc
func (e *engine) xDominated(C, X bitset.Set) bool {
	if X.IsEmpty() {
		return false
	}
	mark := e.setArena.Mark()
	fold := e.setArena.GetUnzeroed()
	fold.CopyFrom(X)
	for wi, w := range C {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			c := base + bits.TrailingZeros64(w)
			// Fold and test emptiness in one pass (aliasing fold as both
			// destination and operand is safe: same-index read then write).
			if fold.AndIntoCount(fold, e.adjG[c]) == 0 {
				e.setArena.Release(mark)
				return false
			}
		}
	}
	e.setArena.Release(mark)
	return true
}

// refRec is the Naudé-style refined recursion (BK_Ref, [12]): the Tomita
// pivot augmented with two domination rules — a branch dies when some
// exclusion vertex covers all of C, and a candidate adjacent to every other
// candidate is moved into S without branching.
//
//hbbmc:noalloc
func (e *engine) refRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	// Rule 1: an exclusion vertex adjacent to all candidates dominates the
	// branch — no clique below can be maximal.
	if e.xDominated(C, X) {
		return
	}
	t0 := e.now()
	cSize := C.Count()
	minDeg, universal := math.MaxInt, -1
	best, pivot := -1, -1
	e.ensureCnt()
	if ablateUnfusedKernels {
		for i := C.First(); i >= 0; i = C.NextAfter(i) {
			cnt := e.adjG[i].AndCount(C)
			e.cntBuf[i] = int32(cnt)
			if cnt > best {
				best, pivot = cnt, i
			}
			if cnt < minDeg {
				minDeg = cnt
			}
			if cnt == cSize-1 && universal < 0 {
				universal = i
			}
		}
	} else {
		adj := e.adjG
		cnt := e.cntBuf
		for wi, w := range C {
			base := wi * 64
			for ; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				c := adj[i].AndCount(C)
				cnt[i] = int32(c)
				if c > best {
					best, pivot = c, i
				}
				if c < minDeg {
					minDeg = c
				}
				if c == cSize-1 && universal < 0 {
					universal = i
				}
			}
		}
	}
	e.addPivot(t0)
	if adjH != nil && !ablateMaskDrop && !e.maskedEdgesIn(adjH, C) {
		adjH = nil
	}
	if e.tryEarlyTerminate(adjH, C, X, cSize, minDeg) {
		return
	}
	// Rule 2 (unmasked branches only): a candidate adjacent to every other
	// candidate belongs to every maximal clique of the branch. In masked
	// branches full adjacency does not imply candidate adjacency, so the
	// move would be unsound.
	if adjH == nil && universal >= 0 {
		mark := e.setArena.Mark()
		childC := e.setArena.GetUnzeroed()
		childX := e.setArena.GetUnzeroed()
		childC.CopyFrom(C)
		childC.Unset(universal)
		childX.AndInto(X, e.adjG[universal])
		e.S = append(e.S, e.verts[universal])
		e.refRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		e.setArena.Release(mark)
		return
	}
	mark := e.setArena.Mark()
	P := e.setArena.GetUnzeroed()
	P.AndNotInto(C, e.adjG[pivot])
	childC := e.setArena.GetUnzeroed()
	childX := e.setArena.GetUnzeroed()
	tmp := e.setArena.GetUnzeroed()
	for wi, w := range P {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			v := base + bits.TrailingZeros64(w)
			e.deriveChild(adjH, C, X, v, childC, childX, tmp)
			e.S = append(e.S, e.verts[v])
			e.refRec(adjH, childC, childX)
			e.S = e.S[:len(e.S)-1]
			C.Unset(v)
			X.Set(v)
		}
	}
	e.setArena.Release(mark)
}

// rcdRec is BK_Rcd (Algorithm 9 of the paper, from [11]): repeatedly branch
// at the candidate of minimum candidate-graph degree until the candidate
// graph becomes a clique, then report S ∪ C if no exclusion vertex covers C.
//
// Candidate degrees are scanned once per call and then maintained
// incrementally: branching vertex v away only decrements the counts of v's
// neighbors inside C, so each removal step costs one row intersection plus
// an O(|C|) integer min-scan instead of |C| full row intersections. The
// counts live in the per-level cntArena, so the recursive call's own scan
// cannot clobber the parent's.
//
//hbbmc:noalloc
func (e *engine) rcdRec(adjH []bitset.Set, C, X bitset.Set) {
	if ablateUnfusedKernels {
		e.rcdRecRescan(adjH, C, X)
		return
	}
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	k := len(e.verts)
	mark := e.setArena.Mark()
	imark := e.cntArena.mark()
	childC := e.setArena.GetUnzeroed()
	childX := e.setArena.GetUnzeroed()
	tmp := e.setArena.GetUnzeroed()

	// One full scan: candidate-graph degrees (masked adjacency in hybrid
	// branches) drive the clique test and the branching choice; full
	// degrees drive the t-plex test. Min tracking rides along, so the first
	// loop iteration needs no extra pass.
	cntG := e.cntArena.get(k)
	cntH := cntG
	if adjH != nil {
		cntH = e.cntArena.get(k)
	}
	t0 := e.now()
	cSize := 0
	minH, minV := math.MaxInt, -1
	minG := math.MaxInt
	for wi, w := range C {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			i := base + bits.TrailingZeros64(w)
			cSize++
			g := int(e.adjG[i].AndCount(C))
			cntG[i] = int32(g)
			h := g
			if adjH != nil {
				h = int(adjH[i].AndCount(C))
				cntH[i] = int32(h)
			}
			if h < minH {
				minH, minV = h, i
			}
			if g < minG {
				minG = g
			}
		}
	}
	e.addPivot(t0)
	for {
		// tryEarlyTerminate reads the candidate counts from cntBuf; alias
		// the maintained counts in (read-only below emitPlexDirect) when
		// the t-plex precondition can actually hold — the same condition
		// tryEarlyTerminate checks first.
		if t := e.opts.ET; t != 0 && minG >= cSize-t {
			saved := e.cntBuf
			e.cntBuf = cntG //hbbmc:allowescape aliased only for the tryEarlyTerminate call, restored on the next line
			closed := e.tryEarlyTerminate(adjH, C, X, cSize, minG)
			e.cntBuf = saved
			if closed {
				e.setArena.Release(mark)
				e.cntArena.release(imark)
				return
			}
		}
		if minH == cSize-1 {
			break // candidate graph is a clique
		}
		e.deriveChild(adjH, C, X, minV, childC, childX, tmp)
		e.S = append(e.S, e.verts[minV])
		e.rcdRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		C.Unset(minV)
		X.Set(minV)
		cSize--
		if cSize == 0 {
			// All candidates were branched away; the vertices now in X
			// block maximality of S itself.
			e.setArena.Release(mark)
			e.cntArena.release(imark)
			return
		}
		// Removing minV from C decrements the candidate degree of exactly
		// its neighbors inside C — one row intersection instead of the
		// |C| full-row rescans of the composed form.
		tmp.AndInto(C, e.adjG[minV])
		for wi, w := range tmp {
			base := wi * 64
			for ; w != 0; w &= w - 1 {
				cntG[base+bits.TrailingZeros64(w)]--
			}
		}
		if adjH != nil {
			tmp.AndInto(C, adjH[minV])
			for wi, w := range tmp {
				base := wi * 64
				for ; w != 0; w &= w - 1 {
					cntH[base+bits.TrailingZeros64(w)]--
				}
			}
		}
		// Min-rescan over the maintained counts: O(|C|) integer reads.
		minH, minV, minG = math.MaxInt, -1, math.MaxInt
		for wi, w := range C {
			base := wi * 64
			for ; w != 0; w &= w - 1 {
				i := base + bits.TrailingZeros64(w)
				if h := int(cntH[i]); h < minH {
					minH, minV = h, i
				}
				if g := int(cntG[i]); g < minG {
					minG = g
				}
			}
		}
	}
	// C is a candidate-graph clique; S ∪ C is maximal unless some exclusion
	// vertex is adjacent to all of C.
	if !e.xDominated(C, X) {
		e.emitSet(C)
	}
	e.setArena.Release(mark)
	e.cntArena.release(imark)
}

// rcdRecRescan is the pre-fused BK_Rcd inner loop — a full candidate-degree
// rescan per removal step — kept verbatim for the ablateUnfusedKernels
// measurement.
//
//hbbmc:noalloc
func (e *engine) rcdRecRescan(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	mark := e.setArena.Mark()
	childC := e.setArena.Get()
	childX := e.setArena.Get()
	tmp := e.setArena.Get()
	cSize := 0
	for {
		cSize = 0
		minH, minV := math.MaxInt, -1
		minG := math.MaxInt
		e.ensureCnt()
		for i := C.First(); i >= 0; i = C.NextAfter(i) {
			cSize++
			var cntH int
			cntG := e.adjG[i].AndCount(C)
			e.cntBuf[i] = int32(cntG)
			if adjH != nil {
				cntH = adjH[i].AndCount(C)
			} else {
				cntH = cntG
			}
			if cntH < minH {
				minH, minV = cntH, i
			}
			if cntG < minG {
				minG = cntG
			}
		}
		if cSize == 0 {
			e.setArena.Release(mark)
			return
		}
		if e.tryEarlyTerminate(adjH, C, X, cSize, minG) {
			e.setArena.Release(mark)
			return
		}
		if minH == cSize-1 {
			break
		}
		e.deriveChild(adjH, C, X, minV, childC, childX, tmp)
		e.S = append(e.S, e.verts[minV])
		e.rcdRecRescan(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		C.Unset(minV)
		X.Set(minV)
	}
	if !e.xDominated(C, X) {
		e.emitSet(C)
	}
	e.setArena.Release(mark)
}

// facRec is BK_Fac (Algorithm 10 of the paper, from [18]): start from an
// arbitrary pivot and opportunistically adopt a better one whenever a
// just-branched vertex would have produced fewer sub-branches.
//
//hbbmc:noalloc
func (e *engine) facRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	if e.opts.ET > 0 {
		cSize, minDeg := e.scanDegrees(C)
		if e.tryEarlyTerminate(adjH, C, X, cSize, minDeg) {
			return
		}
	}
	mark := e.setArena.Mark()
	P := e.setArena.GetUnzeroed()
	v := C.First()
	pCount := P.AndNotIntoCount(C, e.adjG[v])
	childC := e.setArena.GetUnzeroed()
	childX := e.setArena.GetUnzeroed()
	tmp := e.setArena.GetUnzeroed()
	for {
		u := P.First()
		if u < 0 {
			break
		}
		e.deriveChild(adjH, C, X, u, childC, childX, tmp)
		e.S = append(e.S, e.verts[u])
		e.facRec(adjH, childC, childX)
		e.S = e.S[:len(e.S)-1]
		C.Unset(u)
		X.Set(u)
		P.Unset(u)
		pCount--
		// Adopt u as the new pivot when that shrinks the branch set
		// (|C \ N(u)| in one fused pass).
		if alt := C.AndNotCount(e.adjG[u]); alt < pCount {
			pCount = P.AndNotIntoCount(C, e.adjG[u])
		}
	}
	e.setArena.Release(mark)
}

// scanDegrees fills cntBuf with the candidate degrees inside C and returns
// |C| and the minimum degree — the inputs of the t-plex test for recursions
// that do not need a pivot.
//
//hbbmc:noalloc
func (e *engine) scanDegrees(C bitset.Set) (cSize, minDeg int) {
	t0 := e.now()
	cSize, minDeg = 0, math.MaxInt
	e.ensureCnt()
	if ablateUnfusedKernels {
		for i := C.First(); i >= 0; i = C.NextAfter(i) {
			cSize++
			cnt := e.adjG[i].AndCount(C)
			e.cntBuf[i] = int32(cnt)
			if cnt < minDeg {
				minDeg = cnt
			}
		}
		e.addPivot(t0)
		return cSize, minDeg
	}
	adj := e.adjG
	cnt := e.cntBuf
	for wi, w := range C {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			i := base + bits.TrailingZeros64(w)
			c := adj[i].AndCount(C)
			cnt[i] = int32(c)
			cSize++
			if c < minDeg {
				minDeg = c
			}
		}
	}
	e.addPivot(t0)
	return cSize, minDeg
}

// plainRec is the original Bron–Kerbosch recursion without pivoting,
// branching on every candidate.
//
//hbbmc:noalloc
func (e *engine) plainRec(adjH []bitset.Set, C, X bitset.Set) {
	if e.rc.stopped() {
		return
	}
	e.stats.Calls++
	e.stats.VertexCalls++
	if C.IsEmpty() {
		if X.IsEmpty() {
			e.emit(nil)
		}
		return
	}
	if e.opts.ET > 0 {
		cSize, minDeg := e.scanDegrees(C)
		if e.tryEarlyTerminate(adjH, C, X, cSize, minDeg) {
			return
		}
	}
	mark := e.setArena.Mark()
	childC := e.setArena.GetUnzeroed()
	childX := e.setArena.GetUnzeroed()
	tmp := e.setArena.GetUnzeroed()
	snapshot := e.setArena.GetUnzeroed()
	snapshot.CopyFrom(C)
	for wi, w := range snapshot {
		base := wi * 64
		for ; w != 0; w &= w - 1 {
			v := base + bits.TrailingZeros64(w)
			e.deriveChild(adjH, C, X, v, childC, childX, tmp)
			e.S = append(e.S, e.verts[v])
			e.plainRec(adjH, childC, childX)
			e.S = e.S[:len(e.S)-1]
			C.Unset(v)
			X.Set(v)
		}
	}
	e.setArena.Release(mark)
}
