package core

import (
	"testing"
	"testing/quick"

	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/verify"
)

// graphFromBits builds a graph on n vertices whose edge set is drawn from a
// bit stream, letting testing/quick explore graph space directly.
func graphFromBits(n int, bits []byte) *graph.Graph {
	b := graph.NewBuilder(n)
	idx := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if idx/8 < len(bits) && bits[idx/8]&(1<<(idx%8)) != 0 {
				b.AddEdge(int32(i), int32(j))
			}
			idx++
		}
	}
	return b.MustBuild()
}

// TestQuickHBBMCMatchesReference drives the full HBBMC++ configuration with
// quick-generated graphs and compares against the independent reference.
func TestQuickHBBMCMatchesReference(t *testing.T) {
	f := func(nRaw uint8, bits []byte) bool {
		n := 1 + int(nRaw%18)
		g := graphFromBits(n, bits)
		got, _, err := Collect(g, Defaults())
		if err != nil {
			return false
		}
		want := verify.MaximalCliques(g)
		return verify.Diff(got, want) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickAlgorithmsAgreePairwise checks that two differently-structured
// engines always agree, across quick-generated graphs and configurations.
func TestQuickAlgorithmsAgreePairwise(t *testing.T) {
	f := func(nRaw, algoRaw, etRaw uint8, grRaw bool, bits []byte) bool {
		n := 1 + int(nRaw%16)
		g := graphFromBits(n, bits)
		algos := []Algorithm{BKPivot, BKRef, BKDegen, BKDegree, BKRcd, BKFac, EBBMC, HBBMC}
		algo := algos[int(algoRaw)%len(algos)]
		opts := Options{Algorithm: algo, ET: int(etRaw % 4), GR: grRaw}
		a, _, err := Count(g, opts)
		if err != nil {
			return false
		}
		b, _, err := Count(g, Options{Algorithm: BKDegen})
		if err != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickStatsInvariants checks counter invariants that must hold for any
// input: b0 ≤ b, clique totals include reduction cliques, ET never changes
// the result.
func TestQuickStatsInvariants(t *testing.T) {
	f := func(nRaw uint8, bits []byte) bool {
		n := 1 + int(nRaw%20)
		g := graphFromBits(n, bits)
		_, withET, err := Count(g, Options{Algorithm: HBBMC, ET: 3, GR: true})
		if err != nil {
			return false
		}
		_, noET, err := Count(g, Options{Algorithm: HBBMC, ET: 0, GR: true})
		if err != nil {
			return false
		}
		if withET.EarlyTerminations > withET.PlexBranches {
			return false
		}
		if withET.Cliques != noET.Cliques {
			return false
		}
		if noET.PlexBranches != 0 || noET.EarlyTerminations != 0 {
			return false
		}
		if withET.ETRatio() < 0 || withET.ETRatio() > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
