package core

import (
	"fmt"
	"time"
)

// Stats aggregates counters for one enumeration run. The branch counters
// mirror the quantities reported in the paper's Tables IV and V. The JSON
// struct tags make runs machine-readable (durations serialise as
// nanoseconds); String renders a one-line human summary.
type Stats struct {
	// Cliques is the number of maximal cliques reported — delivered to the
	// Visitor when one was set, counted when not — on every path, including
	// runs stopped early by a Visitor, Options.MaxCliques or cancellation.
	Cliques int64 `json:"cliques"`
	// MaxCliqueSize is the size ω of the largest clique found. When a
	// parallel run is stopped by its Visitor, it may reflect a clique
	// another worker found but never delivered.
	MaxCliqueSize int `json:"max_clique_size"`

	// Calls counts every recursive branch evaluation (vertex- plus
	// edge-oriented); VertexCalls and EdgeCalls split it by phase.
	Calls       int64 `json:"calls"`
	VertexCalls int64 `json:"vertex_calls"`
	EdgeCalls   int64 `json:"edge_calls"`
	// TopBranches counts the branches created by the top-level split.
	TopBranches int64 `json:"top_branches"`

	// PlexBranches is b of Table V: branches whose candidate graph is a
	// t-plex for the configured threshold.
	PlexBranches int64 `json:"plex_branches"`
	// EarlyTerminations is b0 of Table V: branches actually closed by the
	// early-termination construction (t-plex candidate graph, empty
	// exclusion graph and, in hybrid branches, no masked candidate edge).
	EarlyTerminations int64 `json:"early_terminations"`
	// ETCliques is the number of cliques found by early termination. Like
	// MaxCliqueSize it counts at discovery: when a parallel run is stopped
	// by its Visitor, it may include cliques that were never delivered and
	// can then exceed Cliques.
	ETCliques int64 `json:"et_cliques"`

	// ReducedVertices and ReductionCliques summarise the GR preprocessing.
	// The reduction runs once on the coordinator before workers fork, so
	// worker stats never carry them.
	//hbbmc:nomerge coordinator-only, set by the preprocessing pass
	ReducedVertices int `json:"reduced_vertices"`
	//hbbmc:nomerge coordinator-only, set by the preprocessing pass
	ReductionCliques int64 `json:"reduction_cliques"`
	// SuppressedLeaves counts residual-graph cliques rejected because a
	// removed vertex dominated them.
	SuppressedLeaves int64 `json:"suppressed_leaves"`

	// Delta, Tau and HIndex are the structural parameters of the (reduced)
	// graph when the run computed them (δ for vertex orderings, τ for the
	// truss ordering, h for the degree ordering). They describe the shared
	// input graph, not per-worker progress, and are seeded into the
	// coordinator's stats before the merge.
	//hbbmc:nomerge graph property computed once during ordering
	Delta int `json:"delta"`
	//hbbmc:nomerge graph property computed once during ordering
	Tau int `json:"tau"`
	//hbbmc:nomerge graph property computed once during ordering
	HIndex int `json:"h_index"`

	// OrderingTime covers reduction plus ordering construction; EnumTime
	// covers the recursive enumeration. Total run time is their sum.
	// Session queries report zero OrderingTime — the preprocessing was paid
	// once in NewSession (see Session.PrepTime). Both are wall-clock spans
	// measured by the coordinator around the whole run, not per-worker
	// durations, so summing them across workers would inflate them.
	//hbbmc:nomerge coordinator wall-clock, measured around the fork/join
	OrderingTime time.Duration `json:"ordering_time_ns"`
	//hbbmc:nomerge coordinator wall-clock, measured around the fork/join
	EnumTime time.Duration `json:"enum_time_ns"`

	// Per-phase counters, populated only when Options.PhaseTimers is set:
	// UniverseTime covers branch-local universe installation and adjacency
	// row building, PivotTime the pivot-selection / candidate-degree
	// scans, ETTime the early-termination checks and plex construction,
	// EmitTime clique assembly and visitor delivery. Phases nest (an ET
	// closure times the emits it performs), so they overlap and do not sum
	// to EnumTime; parallel runs accumulate wall time across workers.
	UniverseTime time.Duration `json:"universe_time_ns,omitempty"`
	PivotTime    time.Duration `json:"pivot_time_ns,omitempty"`
	ETTime       time.Duration `json:"et_time_ns,omitempty"`
	EmitTime     time.Duration `json:"emit_time_ns,omitempty"`

	// Workers is the number of goroutines that actually executed the
	// enumeration: 1 for the sequential driver (including parallel
	// fallbacks), the effective post-clamp count for parallel runs.
	//hbbmc:nomerge set once by the coordinator after clamping
	Workers int `json:"workers"`
	// ParallelFallback is non-empty when a parallel run delegated to the
	// sequential driver, and states why (whole-graph algorithm, single
	// worker).
	ParallelFallback string `json:"parallel_fallback,omitempty"`
	// EmitBatches counts the batched-emit flushes of a parallel run
	// (0 when emit was nil or the run was sequential). The sink counts
	// flushes globally; the coordinator copies the total after the join.
	//hbbmc:nomerge read from the shared emit sink after workers join
	EmitBatches int64 `json:"emit_batches"`

	// Workload-query counters (Session.MaxClique, Session.TopK and
	// Session.CountKCliques). BnBCalls counts the branch-and-bound
	// recursion nodes of a maximum-clique query and BnBPrunes the subtrees
	// cut by the greedy-coloring upper bound or the shared incumbent;
	// IncumbentUpdates counts improvements of the incumbent clique
	// (including the heuristic seed). KCliques is the k-clique count of a
	// CountKCliques query — workers sum their per-branch partial counts, so
	// the field merges like Cliques does.
	BnBCalls         int64 `json:"bnb_calls,omitempty"`
	BnBPrunes        int64 `json:"bnb_prunes,omitempty"`
	IncumbentUpdates int64 `json:"incumbent_updates,omitempty"`
	KCliques         int64 `json:"k_cliques,omitempty"`

	// Shard counters of the distributed coordinator (internal/distrib and
	// the mced -peers mode): branch-range descriptors dispatched to peer
	// nodes, dispatch attempts that failed and were re-dispatched or
	// re-split, and descriptors abandoned after the retry budget. They
	// describe the fan-out itself, not any single node's enumeration, so
	// worker shards never carry them and merging them would double-count
	// across coordinator tiers.
	//hbbmc:nomerge distributed-coordinator only, set after the shard fan-out
	ShardsDispatched int64 `json:"shards_dispatched,omitempty"`
	//hbbmc:nomerge distributed-coordinator only, set after the shard fan-out
	ShardsRetried int64 `json:"shards_retried,omitempty"`
	//hbbmc:nomerge distributed-coordinator only, set after the shard fan-out
	ShardsFailed int64 `json:"shards_failed,omitempty"`
}

// PhaseTime names one per-phase timer of a run — the machine-readable
// form the service's metrics layer and cmd/mce's -json output consume.
type PhaseTime struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// PhaseTimes returns the four per-phase timers in their fixed order
// (universe, pivot, et, emit). All four are zero unless the run set
// Options.PhaseTimers.
func (s *Stats) PhaseTimes() [4]PhaseTime {
	return [4]PhaseTime{
		{Name: "universe", Duration: s.UniverseTime},
		{Name: "pivot", Duration: s.PivotTime},
		{Name: "et", Duration: s.ETTime},
		{Name: "emit", Duration: s.EmitTime},
	}
}

// MergeStats folds src's per-worker counters into dst — the cross-shard
// aggregation entry point of the distributed coordinator, which sums the
// Stats of remote branch-range shards exactly like the parallel driver sums
// per-worker Stats. Fields annotated //hbbmc:nomerge (wall-clock spans,
// graph properties, the shard counters themselves) are left for the caller
// to seed; see the field comments in Stats.
func MergeStats(dst, src *Stats) { dst.merge(src) }

// ETRatio returns b0/b of Table V (0 when no plex branches were seen).
func (s *Stats) ETRatio() float64 {
	if s.PlexBranches == 0 {
		return 0
	}
	return float64(s.EarlyTerminations) / float64(s.PlexBranches)
}

// TotalTime returns ordering plus enumeration time.
func (s *Stats) TotalTime() time.Duration {
	return s.OrderingTime + s.EnumTime
}

// String renders a one-line summary of the run.
func (s *Stats) String() string {
	return fmt.Sprintf("cliques=%d ω=%d branches=%d calls=%d et=%d/%d workers=%d ordering=%v enum=%v",
		s.Cliques, s.MaxCliqueSize, s.TopBranches, s.Calls,
		s.EarlyTerminations, s.PlexBranches, s.Workers,
		s.OrderingTime.Round(time.Microsecond), s.EnumTime.Round(time.Microsecond))
}
