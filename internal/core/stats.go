package core

import "time"

// Stats aggregates counters for one enumeration run. The branch counters
// mirror the quantities reported in the paper's Tables IV and V.
type Stats struct {
	// Cliques is the number of maximal cliques reported.
	Cliques int64
	// MaxCliqueSize is the size ω of the largest clique reported.
	MaxCliqueSize int

	// Calls counts every recursive branch evaluation (vertex- plus
	// edge-oriented); VertexCalls and EdgeCalls split it by phase.
	Calls       int64
	VertexCalls int64
	EdgeCalls   int64
	// TopBranches counts the branches created by the top-level split.
	TopBranches int64

	// PlexBranches is b of Table V: branches whose candidate graph is a
	// t-plex for the configured threshold.
	PlexBranches int64
	// EarlyTerminations is b0 of Table V: branches actually closed by the
	// early-termination construction (t-plex candidate graph, empty
	// exclusion graph and, in hybrid branches, no masked candidate edge).
	EarlyTerminations int64
	// ETCliques is the number of cliques emitted by early termination.
	ETCliques int64

	// ReducedVertices and ReductionCliques summarise the GR preprocessing.
	ReducedVertices  int
	ReductionCliques int64
	// SuppressedLeaves counts residual-graph cliques rejected because a
	// removed vertex dominated them.
	SuppressedLeaves int64

	// Delta, Tau and HIndex are the structural parameters of the (reduced)
	// graph when the run computed them (δ for vertex orderings, τ for the
	// truss ordering, h for the degree ordering).
	Delta  int
	Tau    int
	HIndex int

	// OrderingTime covers reduction plus ordering construction; EnumTime
	// covers the recursive enumeration. Total run time is their sum.
	OrderingTime time.Duration
	EnumTime     time.Duration

	// Workers is the number of goroutines that actually executed the
	// enumeration: 1 for the sequential driver (including parallel
	// fallbacks), the effective post-clamp count for EnumerateParallel.
	Workers int
	// ParallelFallback is non-empty when EnumerateParallel delegated to
	// the sequential driver, and states why (whole-graph algorithm,
	// single worker).
	ParallelFallback string
	// EmitBatches counts the batched-emit flushes of a parallel run
	// (0 when emit was nil or the run was sequential).
	EmitBatches int64
}

// ETRatio returns b0/b of Table V (0 when no plex branches were seen).
func (s *Stats) ETRatio() float64 {
	if s.PlexBranches == 0 {
		return 0
	}
	return float64(s.EarlyTerminations) / float64(s.PlexBranches)
}

// TotalTime returns ordering plus enumeration time.
func (s *Stats) TotalTime() time.Duration {
	return s.OrderingTime + s.EnumTime
}
