package core

import (
	"reflect"
	"testing"
)

// mergeExempt is this test's own list of Stats fields that merge must NOT
// fold — coordinator-only values a worker never owns. It deliberately
// duplicates the //hbbmc:nomerge annotations rather than parsing them, so
// the runtime gate and the static analyzer (internal/analysis/statsmerge)
// fail independently: a field added to Stats without a merge line trips
// both; an annotation silently dropped from stats.go trips only the
// analyzer; a merge line silently dropped trips only this test.
var mergeExempt = map[string]bool{
	"ReducedVertices":  true,
	"ReductionCliques": true,
	"Delta":            true,
	"Tau":              true,
	"HIndex":           true,
	"OrderingTime":     true,
	"EnumTime":         true,
	"Workers":          true,
	"EmitBatches":      true,
	"ShardsDispatched": true,
	"ShardsRetried":    true,
	"ShardsFailed":     true,
}

// TestMergeCoversEveryNumericField sets every numeric field of a worker
// Stats to a distinct sentinel, merges it into a zero coordinator Stats,
// and requires each non-exempt field to have arrived (summed or maxed into
// the zero value, either way equal to the sentinel) and each exempt field
// to have stayed zero.
func TestMergeCoversEveryNumericField(t *testing.T) {
	var s, o Stats
	ov := reflect.ValueOf(&o).Elem()
	st := ov.Type()

	numeric := 0
	for i := 0; i < st.NumField(); i++ {
		f := ov.Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(int64(i + 1)) // distinct non-zero sentinel per field
			numeric++
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(uint64(i + 1))
			numeric++
		case reflect.Float32, reflect.Float64:
			f.SetFloat(float64(i + 1))
			numeric++
		}
	}
	if numeric == 0 {
		t.Fatal("no numeric fields found in Stats — reflection walk is broken")
	}

	s.merge(&o)

	sv := reflect.ValueOf(&s).Elem()
	seen := map[string]bool{}
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		got, want := sv.Field(i), ov.Field(i)
		switch got.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64:
		default:
			continue
		}
		seen[name] = true
		if mergeExempt[name] {
			if !got.IsZero() {
				t.Errorf("coordinator-only field %s was merged (got %v)", name, got)
			}
			continue
		}
		if !reflect.DeepEqual(got.Interface(), want.Interface()) {
			t.Errorf("field %s not folded by merge: coordinator has %v, worker had %v", name, got, want)
		}
	}
	for name := range mergeExempt {
		if !seen[name] {
			t.Errorf("mergeExempt lists %s, which is not a numeric field of Stats — stale entry", name)
		}
	}
}
