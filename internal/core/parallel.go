package core

import (
	"runtime"
	"sync"
	"time"

	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/reduce"
	"github.com/graphmining/hbbmc/internal/truss"
)

// EnumerateParallel runs the configured algorithm with the top-level
// branches distributed over min(workers, GOMAXPROCS) goroutines. It is an
// extension beyond the paper's (sequential) evaluation, exploiting the same
// property the parallel MCE literature does: top-level branches of the
// ordered frameworks are independent.
//
// emit is called from multiple goroutines but never concurrently (an
// internal mutex serialises it); the clique order is nondeterministic.
// Only the ordered algorithms parallelise (BKRef, BKDegen, BKDegree, BKRcd,
// BKFac, EBBMC, HBBMC with SwitchDepth 1); whole-graph BK/BKPivot and deep
// hybrid switches fall back to the sequential driver.
func EnumerateParallel(g *graph.Graph, opts Options, workers int, emit func([]int32)) (*Stats, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	sequentialOnly := opts.Algorithm == BK || opts.Algorithm == BKPivot ||
		(opts.Algorithm == HBBMC && opts.SwitchDepth > 1)
	if workers == 1 || sequentialOnly {
		return Enumerate(g, opts, emit)
	}

	stats := &Stats{}
	prep := time.Now()
	var red *reduce.Result
	if opts.GR {
		red = reduce.Apply(g, reduce.Options{MaxDegree: opts.GRMaxDegree})
	} else {
		red = reduce.Identity(g)
	}
	stats.ReducedVertices = red.NumRemoved
	stats.ReductionCliques = int64(len(red.Cliques))
	for _, c := range red.Cliques {
		stats.Cliques++
		if len(c) > stats.MaxCliqueSize {
			stats.MaxCliqueSize = len(c)
		}
		if emit != nil {
			emit(c)
		}
	}
	res := red.Residual

	// Shared, read-only ordering state.
	var (
		vertOrd, vertPos []int32
		eo               truss.EdgeOrder
		inc              *truss.Incidence
	)
	switch opts.Algorithm {
	case BKRef, BKDegen, BKRcd, BKFac:
		d := order.DegeneracyOrdering(res)
		stats.Delta = d.Value
		vertOrd, vertPos = d.Order, d.Pos
	case BKDegree:
		vertOrd, vertPos = order.DegreeOrdering(res)
		stats.HIndex = order.HIndex(res)
	case EBBMC, HBBMC:
		switch opts.EdgeOrder {
		case EdgeOrderTruss:
			dec := truss.Decompose(res)
			stats.Tau = dec.Tau
			eo, inc = dec.EdgeOrder, dec.Inc
		case EdgeOrderDegeneracy:
			d := order.DegeneracyOrdering(res)
			stats.Delta = d.Value
			eo, inc = truss.DegeneracyEdgeOrder(res, d.Pos), truss.BuildIncidence(res)
		case EdgeOrderMinDegree:
			eo, inc = truss.MinDegreeEdgeOrder(res), truss.BuildIncidence(res)
		}
	}
	stats.OrderingTime = time.Since(prep)
	enum := time.Now()

	var emitMu sync.Mutex
	mkEmit := func() func([]int32) {
		if emit == nil {
			return nil
		}
		return func(c []int32) {
			emitMu.Lock()
			emit(c)
			emitMu.Unlock()
		}
	}

	workerStats := make([]*Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := &Stats{}
		workerStats[w] = ws
		e := newEngine(res, red, opts, ws, mkEmit())
		configureEngine(e, opts)
		e.eo, e.inc = eo, inc
		stride, offset := workers, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch opts.Algorithm {
			case BKRef, BKDegen, BKDegree, BKRcd, BKFac:
				e.runVertexOrderedSlice(vertOrd, vertPos, offset, stride)
			case EBBMC, HBBMC:
				e.runEdgeOrderedSlice(offset, stride)
			}
		}()
	}
	wg.Wait()
	// Isolated vertices of the edge-ordered drivers are handled once,
	// outside the workers.
	if opts.Algorithm == EBBMC || opts.Algorithm == HBBMC {
		e := newEngine(res, red, opts, stats, mkEmit())
		configureEngine(e, opts)
		e.eo, e.inc = eo, inc
		for v := int32(0); v < int32(res.NumVertices()); v++ {
			if res.Degree(v) == 0 {
				e.S = append(e.S[:0], v)
				e.emit(nil)
			}
		}
	}
	for _, ws := range workerStats {
		stats.merge(ws)
	}
	stats.EnumTime = time.Since(enum)
	return stats, nil
}

// configureEngine applies the per-algorithm recursion selection shared with
// the sequential driver.
func configureEngine(e *engine, opts Options) {
	switch opts.Algorithm {
	case BK:
		e.inner = innerPlain
	case BKPivot, BKDegen, BKDegree:
		e.inner = InnerPivot
	case BKRef:
		e.inner = InnerRef
	case BKRcd:
		e.inner = InnerRcd
	case BKFac:
		e.inner = InnerFac
	case HBBMC:
		e.inner = opts.Inner
		e.switchDepth = opts.SwitchDepth
	case EBBMC:
		e.inner = InnerPivot
		e.switchDepth = 1 << 30
	}
}

// runVertexOrderedSlice is runVertexOrdered restricted to ordering
// positions ≡ offset (mod stride).
func (e *engine) runVertexOrderedSlice(ord, pos []int32, offset, stride int) {
	for i := offset; i < len(ord); i += stride {
		v := ord[i]
		nbrs := e.g.Neighbors(v)
		e.setUniverse(nbrs, -1, len(nbrs))
		C := e.setArena.Get()
		X := e.setArena.Get()
		for j, w := range nbrs {
			if pos[w] > pos[v] {
				C.Set(j)
			} else {
				X.Set(j)
			}
		}
		e.S = append(e.S[:0], v)
		e.stats.TopBranches++
		e.vertexRec(nil, C, X)
		e.clearUniverse()
	}
}

// runEdgeOrderedSlice is the per-worker variant of runEdgeOrdered: it
// processes edge-order positions ≡ offset (mod stride) and leaves isolated
// vertices to the caller.
func (e *engine) runEdgeOrderedSlice(offset, stride int) {
	for i := offset; i < len(e.eo.Order); i += stride {
		e.runEdgeBranch(e.eo.Order[i])
	}
}

// merge folds worker counters into s.
func (s *Stats) merge(o *Stats) {
	s.Cliques += o.Cliques
	if o.MaxCliqueSize > s.MaxCliqueSize {
		s.MaxCliqueSize = o.MaxCliqueSize
	}
	s.Calls += o.Calls
	s.VertexCalls += o.VertexCalls
	s.EdgeCalls += o.EdgeCalls
	s.TopBranches += o.TopBranches
	s.PlexBranches += o.PlexBranches
	s.EarlyTerminations += o.EarlyTerminations
	s.ETCliques += o.ETCliques
	s.SuppressedLeaves += o.SuppressedLeaves
}
