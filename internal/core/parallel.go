package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/reduce"
	"github.com/graphmining/hbbmc/internal/truss"
)

// EnumerateParallel runs the configured algorithm with the top-level
// branches distributed over worker goroutines. It is an extension beyond
// the paper's (sequential) evaluation, exploiting the same property the
// parallel MCE literature does: top-level branches of the ordered
// frameworks are independent.
//
// Branches are handed out through a dynamic work queue (an atomic cursor
// with guided chunking: large chunks while the queue is full, single
// branches toward the skewed tail of the truss/degeneracy order), so a
// worker that draws a cheap region keeps pulling work instead of idling —
// the load imbalance that static striding suffers on power-law graphs.
//
// emit is called from multiple goroutines but never concurrently; each
// worker buffers its cliques and flushes them in batches under one lock
// (Options.EmitBatchSize), so the clique order is nondeterministic and a
// clique may be reported a short time after it was found. Workers resolve
// as workers arg > Options.Workers > GOMAXPROCS, clamped to GOMAXPROCS.
//
// All ordered algorithms parallelise, including HBBMC at any SwitchDepth;
// only the whole-graph algorithms (BK, BKPivot) consist of a single
// top-level branch and fall back to the sequential driver. The effective
// worker count and any fallback reason are recorded in Stats.Workers and
// Stats.ParallelFallback.
func EnumerateParallel(g *graph.Graph, opts Options, workers int, emit func([]int32)) (*Stats, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = opts.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if reason := sequentialFallback(opts, workers); reason != "" {
		stats, err := Enumerate(g, opts, emit)
		if err != nil {
			return nil, err
		}
		stats.ParallelFallback = reason
		return stats, nil
	}

	stats := &Stats{Workers: workers}
	prep := time.Now()
	var red *reduce.Result
	if opts.GR {
		red = reduce.Apply(g, reduce.Options{MaxDegree: opts.GRMaxDegree})
	} else {
		red = reduce.Identity(g)
	}
	stats.ReducedVertices = red.NumRemoved
	stats.ReductionCliques = int64(len(red.Cliques))
	for _, c := range red.Cliques {
		stats.Cliques++
		if len(c) > stats.MaxCliqueSize {
			stats.MaxCliqueSize = len(c)
		}
		if emit != nil {
			emit(c)
		}
	}
	res := red.Residual

	// Shared, read-only ordering state.
	var (
		vertOrd, vertPos []int32
		eo               truss.EdgeOrder
		inc              *truss.Incidence
	)
	switch opts.Algorithm {
	case BKRef, BKDegen, BKRcd, BKFac:
		d := order.DegeneracyOrdering(res)
		stats.Delta = d.Value
		vertOrd, vertPos = d.Order, d.Pos
	case BKDegree:
		vertOrd, vertPos = order.DegreeOrdering(res)
		stats.HIndex = order.HIndex(res)
	case EBBMC, HBBMC:
		switch opts.EdgeOrder {
		case EdgeOrderTruss:
			dec := truss.Decompose(res)
			stats.Tau = dec.Tau
			eo, inc = dec.EdgeOrder, dec.Inc
		case EdgeOrderDegeneracy:
			d := order.DegeneracyOrdering(res)
			stats.Delta = d.Value
			eo, inc = truss.DegeneracyEdgeOrder(res, d.Pos), truss.BuildIncidence(res)
		case EdgeOrderMinDegree:
			eo, inc = truss.MinDegreeEdgeOrder(res), truss.BuildIncidence(res)
		}
	}
	stats.OrderingTime = time.Since(prep)
	enum := time.Now()

	edgeDriven := opts.Algorithm == EBBMC || opts.Algorithm == HBBMC
	items := len(vertOrd)
	if edgeDriven {
		items = len(eo.Order)
	}
	queue := newWorkQueue(items, workers, opts.ParallelChunkSize)
	sink := &emitSink{emit: emit}

	workerStats := make([]*Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := &Stats{}
		workerStats[w] = ws
		var batcher *emitBatcher
		var workerEmit func([]int32)
		if emit != nil {
			if ablateStaticStride {
				// Seed behavior under ablation: one lock round-trip per clique.
				workerEmit = func(c []int32) {
					sink.mu.Lock()
					sink.emit(c)
					sink.mu.Unlock()
				}
			} else {
				batcher = newEmitBatcher(sink, opts.EmitBatchSize)
				workerEmit = batcher.add
			}
		}
		e := newEngine(res, red, opts, ws, workerEmit)
		configureEngine(e, opts)
		e.eo, e.inc = eo, inc
		offset := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ablateStaticStride {
				if edgeDriven {
					e.runEdgeOrderedRange(offset, items, workers)
				} else {
					e.runVertexOrderedRange(vertOrd, vertPos, offset, items, workers)
				}
			} else {
				for {
					begin, end, ok := queue.next()
					if !ok {
						break
					}
					if edgeDriven {
						e.runEdgeOrderedRange(begin, end, 1)
					} else {
						e.runVertexOrderedRange(vertOrd, vertPos, begin, end, 1)
					}
				}
			}
			if batcher != nil {
				batcher.flush()
			}
		}()
	}
	wg.Wait()
	// Isolated vertices of the edge-ordered drivers are handled once,
	// outside the workers; with the workers joined, emit needs no lock.
	if edgeDriven {
		e := newEngine(res, red, opts, stats, emit)
		configureEngine(e, opts)
		e.eo, e.inc = eo, inc
		for v := int32(0); v < int32(res.NumVertices()); v++ {
			if res.Degree(v) == 0 {
				e.S = append(e.S[:0], v)
				e.emit(nil)
			}
		}
	}
	for _, ws := range workerStats {
		stats.merge(ws)
	}
	stats.EmitBatches = sink.batches.Load()
	stats.EnumTime = time.Since(enum)
	return stats, nil
}

// sequentialFallback returns the reason EnumerateParallel must delegate to
// the sequential driver, or "" when the parallel scheduler applies.
func sequentialFallback(opts Options, workers int) string {
	if opts.Algorithm == BK || opts.Algorithm == BKPivot {
		return fmt.Sprintf("%v runs as a single whole-graph branch", opts.Algorithm)
	}
	if workers == 1 {
		return "single worker"
	}
	return ""
}

// configureEngine applies the per-algorithm recursion selection shared by
// the sequential and parallel drivers.
func configureEngine(e *engine, opts Options) {
	switch opts.Algorithm {
	case BK:
		e.inner = innerPlain
	case BKPivot, BKDegen, BKDegree:
		e.inner = InnerPivot
	case BKRef:
		e.inner = InnerRef
	case BKRcd:
		e.inner = InnerRcd
	case BKFac:
		e.inner = InnerFac
	case HBBMC:
		e.inner = opts.Inner
		e.switchDepth = opts.SwitchDepth
	case EBBMC:
		e.inner = InnerPivot // unused: the recursion stays edge-oriented
		e.switchDepth = neverSwitch
	}
}

// runVertexOrderedRange is runVertexOrdered restricted to ordering
// positions begin, begin+stride, ... below end. The dynamic scheduler
// passes contiguous chunks (stride 1); the static-stride ablation passes
// the legacy modulo slicing.
func (e *engine) runVertexOrderedRange(ord, pos []int32, begin, end, stride int) {
	for i := begin; i < end; i += stride {
		v := ord[i]
		nbrs := e.g.Neighbors(v)
		e.setUniverse(nbrs, -1, len(nbrs))
		C := e.setArena.Get()
		X := e.setArena.Get()
		for j, w := range nbrs {
			if pos[w] > pos[v] {
				C.Set(j)
			} else {
				X.Set(j)
			}
		}
		e.S = append(e.S[:0], v)
		e.stats.TopBranches++
		e.vertexRec(nil, C, X)
		e.clearUniverse()
	}
}

// runEdgeOrderedRange is the per-worker variant of runEdgeOrdered: it
// processes edge-order positions begin, begin+stride, ... below end and
// leaves isolated vertices to the caller.
func (e *engine) runEdgeOrderedRange(begin, end, stride int) {
	for i := begin; i < end; i += stride {
		e.runEdgeBranch(e.eo.Order[i])
	}
}

// merge folds worker counters into s.
func (s *Stats) merge(o *Stats) {
	s.Cliques += o.Cliques
	if o.MaxCliqueSize > s.MaxCliqueSize {
		s.MaxCliqueSize = o.MaxCliqueSize
	}
	s.Calls += o.Calls
	s.VertexCalls += o.VertexCalls
	s.EdgeCalls += o.EdgeCalls
	s.TopBranches += o.TopBranches
	s.PlexBranches += o.PlexBranches
	s.EarlyTerminations += o.EarlyTerminations
	s.ETCliques += o.ETCliques
	s.SuppressedLeaves += o.SuppressedLeaves
}
