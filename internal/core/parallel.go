package core

import (
	"context"
	"fmt"

	"github.com/graphmining/hbbmc/internal/graph"
)

// EnumerateParallel runs the configured algorithm with the top-level
// branches distributed over worker goroutines. It is an extension beyond
// the paper's (sequential) evaluation, exploiting the same property the
// parallel MCE literature does: top-level branches of the ordered
// frameworks are independent.
//
// Branches are handed out through a dynamic work queue (an atomic cursor
// with guided chunking: large chunks while the queue is full, single
// branches toward the skewed tail of the truss/degeneracy order), so a
// worker that draws a cheap region keeps pulling work instead of idling —
// the load imbalance that static striding suffers on power-law graphs.
//
// emit is called from multiple goroutines but never concurrently; each
// worker buffers its cliques and flushes them in batches under one lock
// (Options.EmitBatchSize), so the clique order is nondeterministic and a
// clique may be reported a short time after it was found. Workers resolve
// as workers arg > Options.Workers > GOMAXPROCS, clamped to GOMAXPROCS.
//
// All ordered algorithms parallelise, including HBBMC at any SwitchDepth;
// only the whole-graph algorithms (BK, BKPivot) consist of a single
// top-level branch and fall back to the sequential driver. The effective
// worker count and any fallback reason are recorded in Stats.Workers and
// Stats.ParallelFallback.
//
// Deprecated: the positional workers argument is folded into
// Options.Workers. Use NewSession and Session.Enumerate (or
// Session.EnumerateParallel), which also cache the preprocessing across
// queries and accept a context and a stop-capable Visitor.
func EnumerateParallel(g *graph.Graph, opts Options, workers int, emit func([]int32)) (*Stats, error) {
	if workers <= 0 {
		workers = opts.Workers
	}
	if workers <= 0 {
		// Legacy contract: with no explicit count anywhere, use all cores.
		workers = UseAllCores
	}
	s, err := NewSession(g, opts)
	if err != nil {
		return nil, err
	}
	parOpts := s.opts
	parOpts.Workers = workers
	stats, err := s.enumerate(context.Background(), parOpts, adaptEmit(emit))
	stats.OrderingTime = s.prepTime
	if workers == 1 && stats.ParallelFallback == "" {
		// An explicit workers=1 request through this parallel entry point is
		// a recorded fallback, not a silent one.
		stats.ParallelFallback = "single worker"
	}
	return stats, err
}

// sequentialFallback returns the reason a parallel query must delegate to
// the sequential driver, or "" when the parallel scheduler applies.
func sequentialFallback(opts Options, workers int) string {
	if opts.Algorithm == BK || opts.Algorithm == BKPivot {
		return fmt.Sprintf("%v runs as a single whole-graph branch", opts.Algorithm)
	}
	if workers == 1 {
		return "single worker"
	}
	return ""
}

// configureEngine applies the per-algorithm recursion selection shared by
// the sequential and parallel drivers.
func configureEngine(e *engine, opts Options) {
	switch opts.Algorithm {
	case BK:
		e.inner = innerPlain
	case BKPivot, BKDegen, BKDegree:
		e.inner = InnerPivot
	case BKRef:
		e.inner = InnerRef
	case BKRcd:
		e.inner = InnerRcd
	case BKFac:
		e.inner = InnerFac
	case HBBMC:
		e.inner = opts.Inner
		e.switchDepth = opts.SwitchDepth
	case EBBMC:
		e.inner = InnerPivot // unused: the recursion stays edge-oriented
		e.switchDepth = neverSwitch
	}
}

// runVertexOrderedRange is the ordered top-level split (Eq. 1) restricted
// to ordering positions begin, begin+stride, ... below end. The sequential
// driver passes the whole range, the dynamic scheduler contiguous chunks
// (stride 1), and the static-stride ablation the legacy modulo slicing.
// Cancellation and early stops are observed once per top-level branch.
//
// Each branch universe is laid out candidates-first (later neighbors of v,
// then earlier ones), mirroring the edge-oriented top level: exclusion
// members only need adjacency rows of their own to compete as Tomita
// pivots, so their rows — the dominant share of the build cost around hubs,
// whose earlier-neighbor side is unbounded by δ — are built only when the
// branch is recursion-heavy enough for pivot quality to pay for them.
//
//hbbmc:ctxpoll
func (e *engine) runVertexOrderedRange(ord, pos []int32, begin, end, stride int) {
	for i := begin; i < end; i += stride {
		if e.rc.halted() {
			return
		}
		v := ord[i]
		nbrs := e.g.Neighbors(v)
		pv := pos[v]
		e.listBuf = e.listBuf[:0]
		for _, w := range nbrs {
			if pos[w] > pv {
				e.listBuf = append(e.listBuf, w)
			}
		}
		inC := len(e.listBuf)
		for _, w := range nbrs {
			if pos[w] <= pv {
				e.listBuf = append(e.listBuf, w)
			}
		}
		rowCount := inC
		if withXRows(inC, len(nbrs)) {
			rowCount = len(nbrs)
		}
		e.setUniverse(e.listBuf, -1, rowCount)
		C := e.setArena.Get()
		X := e.setArena.Get()
		for j := 0; j < inC; j++ {
			C.Set(j)
		}
		for j := inC; j < len(nbrs); j++ {
			X.Set(j)
		}
		e.S = append(e.S[:0], v)
		e.stats.TopBranches++
		e.vertexRec(nil, C, X)
	}
}

// runEdgeOrderedRange processes edge-order positions begin, begin+stride,
// ... below end and leaves isolated vertices to the caller. Cancellation
// and early stops are observed once per top-level branch.
//
//hbbmc:ctxpoll
func (e *engine) runEdgeOrderedRange(begin, end, stride int) {
	for i := begin; i < end; i += stride {
		if e.rc.halted() {
			return
		}
		e.runEdgeBranch(e.eo.Order[i])
	}
}

// runEdgeOrderedSched processes the edge-order positions sched[begin:end]
// (raw positions [begin, end) when sched is nil) — the cost-ordered variant
// the dynamic scheduler feeds with contiguous chunks.
//
//hbbmc:ctxpoll
func (e *engine) runEdgeOrderedSched(sched []int32, begin, end int) {
	for i := begin; i < end; i++ {
		if e.rc.halted() {
			return
		}
		p := i
		if sched != nil {
			p = int(sched[i])
		}
		e.runEdgeBranch(e.eo.Order[p])
	}
}

// runVertexOrderedSched is runEdgeOrderedSched's vertex-ordered sibling.
//
//hbbmc:ctxpoll
func (e *engine) runVertexOrderedSched(ord, pos, sched []int32, begin, end int) {
	for i := begin; i < end; i++ {
		if e.rc.halted() {
			return
		}
		p := i
		if sched != nil {
			p = int(sched[i])
		}
		e.runVertexOrderedRange(ord, pos, p, p+1, 1)
	}
}

// merge folds worker counters into s.
func (s *Stats) merge(o *Stats) {
	s.Cliques += o.Cliques
	if o.MaxCliqueSize > s.MaxCliqueSize {
		s.MaxCliqueSize = o.MaxCliqueSize
	}
	s.Calls += o.Calls
	s.VertexCalls += o.VertexCalls
	s.EdgeCalls += o.EdgeCalls
	s.TopBranches += o.TopBranches
	s.PlexBranches += o.PlexBranches
	s.EarlyTerminations += o.EarlyTerminations
	s.ETCliques += o.ETCliques
	s.SuppressedLeaves += o.SuppressedLeaves
	s.BnBCalls += o.BnBCalls
	s.BnBPrunes += o.BnBPrunes
	s.IncumbentUpdates += o.IncumbentUpdates
	s.KCliques += o.KCliques
	s.UniverseTime += o.UniverseTime
	s.PivotTime += o.PivotTime
	s.ETTime += o.ETTime
	s.EmitTime += o.EmitTime
}
