package core

import "time"

// i32Arena carves per-recursion-level []int32 scratch (candidate-degree
// counts, edge-degree tallies) from one backing slab, mirroring
// bitset.Arena's mark/release discipline. Unlike a single shared buffer it
// survives recursion: a child level carves its own counts and the parent's
// stay intact behind the mark.
type i32Arena struct {
	slab []int32
	used int
}

func (a *i32Arena) reset()        { a.used = 0 }
func (a *i32Arena) mark() int     { return a.used }
func (a *i32Arena) release(m int) { a.used = m }

// get carves n int32s of unspecified content; the caller must write before
// reading (or use getZeroed).
func (a *i32Arena) get(n int) []int32 {
	if a.used+n > len(a.slab) {
		grow := 2 * len(a.slab)
		if grow < a.used+n {
			grow = a.used + n
		}
		if grow < 1024 {
			grow = 1024
		}
		ns := make([]int32, grow)
		copy(ns, a.slab[:a.used])
		a.slab = ns
	}
	s := a.slab[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// getZeroed carves n zeroed int32s.
func (a *i32Arena) getZeroed(n int) []int32 {
	s := a.get(n)
	clear(s)
	return s
}

// Phase clock: when Options.PhaseTimers is set, the engine accumulates
// nanoseconds per hot-path phase (universe build, pivot scans, early
// termination, emit) into Stats. When disabled (the default) now() returns
// the zero time and no clock is read, so the counters cost two predictable
// branches per phase. Phases nest — an ET closure times the emits it
// performs — so the counters overlap and do not partition EnumTime.

func (e *engine) now() time.Time {
	if !e.timed {
		return time.Time{}
	}
	return time.Now()
}

func (e *engine) addUniverse(t0 time.Time) {
	if e.timed {
		e.stats.UniverseTime += time.Since(t0)
	}
}

func (e *engine) addPivot(t0 time.Time) {
	if e.timed {
		e.stats.PivotTime += time.Since(t0)
	}
}

func (e *engine) addET(t0 time.Time) {
	if e.timed {
		e.stats.ETTime += time.Since(t0)
	}
}

func (e *engine) addEmit(t0 time.Time) {
	if e.timed {
		e.stats.EmitTime += time.Since(t0)
	}
}
