package core

import (
	"math"

	"github.com/graphmining/hbbmc/internal/bitset"
	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/plex"
	"github.com/graphmining/hbbmc/internal/reduce"
	"github.com/graphmining/hbbmc/internal/truss"
)

// innerPlain is the internal sentinel for the pivot-less BK recursion.
const innerPlain InnerAlgorithm = -1

// neverSwitch is the switchDepth sentinel that keeps EBBMC's recursion
// edge-oriented forever; it exceeds any reachable recursion depth. Both
// drivers must use it so they cannot drift apart.
const neverSwitch = math.MaxInt32

// engine holds the state of one enumeration run over the residual graph.
// Each top-level branch installs a local universe (a relabelled vertex set
// with bitset adjacency rows); the per-algorithm recursions then operate on
// C/X bitsets over that universe.
type engine struct {
	g           *graph.Graph // residual graph
	red         *reduce.Result
	opts        Options
	stats       *Stats
	emitFn      Visitor
	rc          *runControl
	inner       InnerAlgorithm
	switchDepth int

	// Local universe of the current top-level branch. The residual→local
	// map is epoch-stamped: local[v] packs (epoch, id) in one word and an
	// entry is live only while its epoch matches the engine's. Installing a
	// universe bumps the epoch, which invalidates every stale entry at once —
	// engine setup stays O(universe), with no teardown pass and no O(n)
	// refill.
	verts      []int32      // local id -> residual id
	local      []uint64     // residual id -> epoch<<32 | local id
	localEpoch uint32       // current universe's stamp
	univ       bitset.Set   // residual-id membership bitmap of the universe
	adjG       []bitset.Set // full residual adjacency within the universe
	adjH       []bitset.Set // masked adjacency (edge rank > branch base rank)
	masked     bool

	rowArena *bitset.Arena // adjacency rows; reset per top-level branch
	setArena *bitset.Arena // recursion sets; mark/release per node
	cntArena i32Arena      // per-level int32 scratch; mark/release per node

	S       []int32          // current partial clique (residual ids)
	resBuf  []int32          // residual-id assembly buffer for emits
	emitBuf []int32          // original-id buffer handed to emitFn
	listBuf []int32          // scratch for materialised candidate lists
	sideBuf []int32          // per-candidate side-edge ids for incidence row fills
	cnBuf   []commonNeighbor // per-branch common-neighbor scratch
	edgeBuf []localEdge      // edgeRec candidate-edge scratch, stacked across levels
	maskRow []bitset.Set     // switchToVertex masked-row table (never nested)

	// Early-termination scratch (see et.go).
	cntBuf       []int32 // per-local-id candidate counts from the caller's scan
	plexScratch  plex.Scratch
	compA, compB []int32
	compVisited  []bool
	fBuf, nonF   []int32
	walkBuf      []int32
	// etEmit adapts plex.Scratch.Emit to e.emit. Built once in newEngine:
	// constructing the closure at the emitPlexDirect call site would
	// allocate on every early termination.
	etEmit func([]int32)

	// timed enables the per-phase nanosecond counters in Stats
	// (Options.PhaseTimers); when false the clock is never read.
	timed bool

	// Edge-ordering context for EBBMC/HBBMC.
	eo  truss.EdgeOrder
	inc *truss.Incidence
}

// newEngine builds one per-goroutine engine. rc is required: the engine's
// emit and recursion paths rely on the query's shared run control for the
// stop latch and the clique budget.
func newEngine(res *graph.Graph, red *reduce.Result, opts Options, stats *Stats, emit Visitor, rc *runControl) *engine {
	e := &engine{
		g:        res,
		red:      red,
		opts:     opts,
		stats:    stats,
		emitFn:   emit,
		rc:       rc,
		timed:    opts.PhaseTimers,
		local:    make([]uint64, res.NumVertices()),
		univ:     bitset.New(res.NumVertices()),
		rowArena: bitset.NewArena(0),
		setArena: bitset.NewArena(0),
	}
	e.etEmit = func(cl []int32) { e.emit(cl) }
	return e
}

// localOf returns the local id of residual vertex v in the current universe,
// or -1 when v is not a member. The epoch compare makes stale entries from
// earlier universes read as absent without any per-branch cleanup.
func (e *engine) localOf(v int32) int32 {
	x := e.local[v]
	if uint32(x>>32) != e.localEpoch {
		return -1
	}
	return int32(uint32(x))
}

// bumpEpoch advances the universe stamp. On the (theoretical) uint32 wrap
// the whole map is cleared so entries stamped a full cycle ago cannot read
// as live.
func (e *engine) bumpEpoch() {
	e.localEpoch++
	if e.localEpoch == 0 {
		clear(e.local)
		e.localEpoch = 1
	}
}

// setUniverse installs vs (residual ids) as the branch-local universe and
// builds adjacency rows for its first rowCount members. When baseRank >= 0
// a masked adjacency adjH is built alongside, containing only edges whose
// rank exceeds baseRank.
//
// The edge-oriented top level orders each universe candidates-first and
// passes rowCount = |C|: exclusion vertices need no rows of their own (every
// refinement reads candidate rows, and the X-domination checks fold
// candidate rows over X), which skips the dominant share of the build cost
// on triangle-dense graphs.
//
// Rows are built by whichever of two strategies is cheaper for this branch:
// scanning each member's full adjacency (good when members have small
// degrees) or probing member pairs with binary searches (good for small
// universes around high-degree hubs).
func (e *engine) setUniverse(vs []int32, baseRank int32, rowCount int) {
	t0 := e.now()
	degSum := e.installUniverse(vs, baseRank, rowCount)
	if pairwiseCheaper(rowCount, len(vs), degSum) {
		e.fillRowsPairwise(baseRank, rowCount)
	} else {
		e.fillRowsByScan(baseRank, rowCount)
	}
	e.addUniverse(t0)
}

// withXRows is the shared break-even heuristic of the two top-level
// drivers: exclusion members get adjacency rows of their own (restoring
// full Tomita pivot quality over C ∪ X) only when the branch is
// recursion-heavy — enough candidates absolutely, and candidates not
// dwarfed by the exclusion side whose rows would dominate the build cost.
func withXRows(inC, universe int) bool {
	return inC >= 12 && 4*inC >= universe
}

// pairwiseCheaper is the row-filling strategy choice of setUniverse:
// ~8 comparisons per binary-search probe is the break-even estimate against
// scanning the full adjacency of every row-bearing member. The product is
// computed in int64 — rowCount·universe·8 overflows 32-bit ints already at
// ~16k-vertex universes, and a wrapped negative estimate would silently
// force the pairwise strategy on exactly the branches where it is most
// expensive.
func pairwiseCheaper(rowCount, universe int, degSum int64) bool {
	return int64(rowCount)*int64(universe)*8 < degSum
}

// installUniverse performs the bookkeeping shared by all row-filling
// strategies: local-id mapping, arena resets and zeroed rows for the first
// rowCount members. It returns the degree sum of the row-bearing members.
func (e *engine) installUniverse(vs []int32, baseRank int32, rowCount int) int64 {
	k := len(vs)
	// The membership bitmap is the cache-resident first-level filter of the
	// row-fill probes (1 bit per residual vertex vs 8 bytes in the id map);
	// clear the previous universe's bits before vs overwrites verts.
	for _, v := range e.verts {
		e.univ.Unset(int(v))
	}
	e.verts = append(e.verts[:0], vs...)
	e.masked = baseRank >= 0
	e.rowArena.Reset(k)
	e.setArena.Reset(k)
	e.cntArena.reset()
	e.bumpEpoch()
	if cap(e.adjG) < k {
		e.adjG = make([]bitset.Set, k)
		e.adjH = make([]bitset.Set, k)
	}
	e.adjG = e.adjG[:k]
	e.adjH = e.adjH[:k]
	degSum := int64(0)
	stamp := uint64(e.localEpoch) << 32
	for i, v := range vs {
		e.local[v] = stamp | uint64(uint32(i))
		e.univ.Set(int(v))
		if i < rowCount {
			degSum += int64(e.g.Degree(v))
		}
	}
	for i := range vs {
		if i < rowCount {
			e.adjG[i] = e.rowArena.Get()
		} else {
			e.adjG[i] = nil
		}
		if e.masked && i < rowCount {
			e.adjH[i] = e.rowArena.Get()
		} else {
			e.adjH[i] = nil
		}
	}
	return degSum
}

// fillRowsFromIncidence builds the candidate rows of an edge branch from
// the triangle incidence lists of each candidate's side edge: for side edge
// (s,w) every triangle (s,w,x) names a neighbor x of w inside N(s) ⊇
// universe, together with the edge id (w,x) that carries the mask rank.
// The work per candidate is its side-edge support — never more than its
// degree, and usually far less on hub-heavy graphs.
//
//hbbmc:noalloc
func (e *engine) fillRowsFromIncidence(baseRank int32, rowCount int) {
	for i := 0; i < rowCount; i++ {
		w := e.verts[i]
		rowG := e.adjG[i]
		rowH := e.adjH[i]
		se := e.sideBuf[i]
		_, dst := e.g.EdgeEndpoints(se)
		wIsDst := w == dst
		lo, hi := e.inc.Range(se)
		for t := lo; t < hi; t++ {
			third := e.inc.Third(t)
			if !e.univ.Has(int(third)) {
				continue
			}
			j := e.localOf(third)
			rowG.Set(int(j))
			var wx int32
			if wIsDst {
				wx = e.inc.CoDst(t)
			} else {
				wx = e.inc.CoSrc(t)
			}
			if e.eo.Rank[wx] > baseRank {
				rowH.Set(int(j))
			}
		}
	}
}

//
//hbbmc:noalloc
func (e *engine) fillRowsByScan(baseRank int32, rowCount int) {
	for i := 0; i < rowCount; i++ {
		v := e.verts[i]
		rowG := e.adjG[i]
		rowH := e.adjH[i]
		nbrs := e.g.Neighbors(v)
		eids := e.g.IncidentEdgeIDs(v)
		for t, w := range nbrs {
			// Bitmap first: most neighbors are outside the universe, and the
			// bit probe stays in cache where the id-map load would miss.
			if !e.univ.Has(int(w)) {
				continue
			}
			j := e.localOf(w)
			rowG.Set(int(j))
			if e.masked && e.eo.Rank[eids[t]] > baseRank {
				rowH.Set(int(j))
			}
		}
	}
}

//
//hbbmc:noalloc
func (e *engine) fillRowsPairwise(baseRank int32, rowCount int) {
	k := len(e.verts)
	for i := 0; i < rowCount; i++ {
		for j := i + 1; j < k; j++ {
			eid := e.g.EdgeID(e.verts[i], e.verts[j])
			if eid < 0 {
				continue
			}
			e.adjG[i].Set(j)
			if j < rowCount {
				e.adjG[j].Set(i)
			}
			if e.masked && e.eo.Rank[eid] > baseRank {
				e.adjH[i].Set(j)
				if j < rowCount {
					e.adjH[j].Set(i)
				}
			}
		}
	}
}

// maskFreeCandidates reports whether no candidate-candidate edge of the
// current universe is masked. The candidates occupy local ids [0, inC), so
// the check compares each candidate's full and masked rows on that prefix.
//
//hbbmc:noalloc
func (e *engine) maskFreeCandidates(inC int) bool {
	fullWords := inC / 64
	restBits := uint(inC % 64)
	for i := 0; i < inC; i++ {
		rowG, rowH := e.adjG[i], e.adjH[i]
		for w := 0; w < fullWords; w++ {
			if rowG[w] != rowH[w] {
				return false
			}
		}
		if restBits != 0 {
			mask := (uint64(1) << restBits) - 1
			if (rowG[fullWords]^rowH[fullWords])&mask != 0 {
				return false
			}
		}
	}
	return true
}

// rankOfLocal returns the edge-order rank of the residual edge between two
// local universe vertices, or -1 when the edge does not exist.
func (e *engine) rankOfLocal(i, j int) int32 {
	eid := e.g.EdgeID(e.verts[i], e.verts[j])
	if eid < 0 {
		return -1
	}
	return e.eo.Rank[eid]
}

// emit reports the clique formed by the current partial clique S plus the
// given local universe vertices. It applies the removed-dominator filter of
// the graph reduction, consumes the clique budget, maps residual ids back
// to original ids and invokes the user visitor; a visitor returning false
// latches the run's stop flag.
//
//hbbmc:noalloc
func (e *engine) emit(extraLocal []int32) {
	// A latched stop must silence every later emit, including ones from the
	// same recursion frame (ET plex bursts, tiny-branch multi-emits) that
	// no entry-level stop check can intercept — the visitor contract
	// promises no calls after it returned false.
	if e.rc.stopped() {
		return
	}
	t0 := e.now()
	defer e.addEmit(t0)
	e.resBuf = append(e.resBuf[:0], e.S...)
	for _, li := range extraLocal {
		e.resBuf = append(e.resBuf, e.verts[li])
	}
	if e.red.NumRemoved > 0 && e.red.HasRemovedDominator(e.resBuf) {
		e.stats.SuppressedLeaves++
		return
	}
	if !e.rc.take() {
		return
	}
	e.stats.Cliques++
	if len(e.resBuf) > e.stats.MaxCliqueSize {
		e.stats.MaxCliqueSize = len(e.resBuf)
	}
	if e.emitFn != nil {
		e.emitBuf = e.emitBuf[:0]
		for _, r := range e.resBuf {
			e.emitBuf = append(e.emitBuf, e.red.OrigID[r])
		}
		if !e.emitFn(e.emitBuf) {
			e.rc.stop.Store(true)
		}
	}
}

// emitSet is emit for a bitset of local vertices.
func (e *engine) emitSet(set bitset.Set) {
	e.listBuf = set.AppendTo(e.listBuf[:0])
	e.emit(e.listBuf)
}

// tryEarlyTerminate applies the early-termination construction of Section
// IV. The caller supplies the candidate-set size and the minimum full-graph
// degree inside C, both computed during its pivot scan. adjH is the masked
// adjacency of the surrounding recursion (nil when unmasked).
//
// Returns true when the branch was closed (all its maximal cliques have been
// emitted).
//
//hbbmc:noalloc
func (e *engine) tryEarlyTerminate(adjH []bitset.Set, C, X bitset.Set, cSize, minDeg int) bool {
	t := e.opts.ET
	if t == 0 || cSize == 0 || minDeg < cSize-t {
		return false
	}
	// b of Table V: the candidate graph is a t-plex.
	e.stats.PlexBranches++
	if !X.IsEmpty() {
		return false
	}
	t0 := e.now()
	if adjH != nil && e.maskedEdgesIn(adjH, C) {
		// A masked candidate edge would make cliques of G[C] differ from
		// cliques of the branch's candidate graph; the construction only
		// applies when the two adjacencies agree on C. Masked rows are
		// subsets of the full rows, so agreement is exactly "no masked
		// candidate edge" — one word-level XOR pass instead of two
		// popcount passes per candidate.
		e.addET(t0)
		return false
	}
	before := e.stats.Cliques + e.stats.SuppressedLeaves
	if !e.emitPlexDirect(C, cSize) {
		// Defensive: unreachable when the t ≤ 3 plex check passed.
		e.addET(t0)
		return false
	}
	e.stats.EarlyTerminations++
	e.stats.ETCliques += (e.stats.Cliques + e.stats.SuppressedLeaves) - before
	e.addET(t0)
	return true
}

// vertexRec dispatches to the configured vertex-oriented recursion. Every
// recursion polls the run's stop latch on entry, so a stopped run (visitor
// returned false, clique budget exhausted, or a cancellation observed at a
// top-branch check) unwinds without evaluating further branches.
//
//hbbmc:noalloc
func (e *engine) vertexRec(adjH []bitset.Set, C, X bitset.Set) {
	switch e.inner {
	case innerPlain:
		e.plainRec(adjH, C, X)
	case InnerPivot:
		e.pivotRec(adjH, C, X)
	case InnerRef:
		e.refRec(adjH, C, X)
	case InnerRcd:
		e.rcdRec(adjH, C, X)
	case InnerFac:
		e.facRec(adjH, C, X)
	}
}

// deriveChild computes the sub-branch sets for branching at local vertex v:
// childC gets the candidates that remain candidates (masked adjacency when
// in a hybrid branch) and childX the exclusion vertices, including
// candidates reachable from v only through a masked edge — those cannot
// join the clique but still block maximality.
//
//hbbmc:noalloc
func (e *engine) deriveChild(adjH []bitset.Set, C, X bitset.Set, v int, childC, childX, tmp bitset.Set) {
	if adjH == nil {
		childC.AndInto(C, e.adjG[v])
		childX.AndInto(X, e.adjG[v])
		return
	}
	childC.AndInto(C, adjH[v])
	childX.AndInto(X, e.adjG[v])
	tmp.AndInto(C, e.adjG[v])
	tmp.AndNotWith(adjH[v])
	childX.OrWith(tmp)
}
