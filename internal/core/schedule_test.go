package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkQueueCoversEveryItemOnce(t *testing.T) {
	const n, workers = 5000, 8
	q := newWorkQueue(n, workers, 0)
	seen := make([]atomic.Int32, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				begin, end, ok := q.next()
				if !ok {
					return
				}
				for i := begin; i < end; i++ {
					seen[i].Add(1)
				}
			}
		}()
	}
	wg.Wait()
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("item %d claimed %d times", i, c)
		}
	}
}

func TestWorkQueueGuidedChunksShrink(t *testing.T) {
	const n, workers = 1024, 4
	q := newWorkQueue(n, workers, 0)
	var chunks []int
	for {
		begin, end, ok := q.next()
		if !ok {
			break
		}
		chunks = append(chunks, end-begin)
	}
	if chunks[0] != n/(workers*guidedDivisor) {
		t.Fatalf("first chunk %d, want %d", chunks[0], n/(workers*guidedDivisor))
	}
	for i := 1; i < len(chunks); i++ {
		if chunks[i] > chunks[i-1] {
			t.Fatalf("chunk %d grew: %v", i, chunks)
		}
	}
	if last := chunks[len(chunks)-1]; last != 1 {
		t.Fatalf("tail chunk %d, want 1", last)
	}
}

func TestWorkQueueFixedChunks(t *testing.T) {
	q := newWorkQueue(20, 4, 7)
	var got []int
	for {
		begin, end, ok := q.next()
		if !ok {
			break
		}
		got = append(got, end-begin)
	}
	want := []int{7, 7, 6}
	if len(got) != len(want) {
		t.Fatalf("chunks %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunks %v, want %v", got, want)
		}
	}
}

func TestWorkQueueEmpty(t *testing.T) {
	q := newWorkQueue(0, 3, 0)
	if _, _, ok := q.next(); ok {
		t.Fatal("empty queue handed out work")
	}
}

func TestEmitBatcherFlushesAtLimit(t *testing.T) {
	var got [][]int32
	sink := &emitSink{visit: func(c []int32) bool {
		got = append(got, append([]int32(nil), c...))
		return true
	}}
	b := newEmitBatcher(sink, 3)
	b.add([]int32{1})
	b.add([]int32{2, 3})
	if len(got) != 0 {
		t.Fatalf("flushed %d cliques before the batch filled", len(got))
	}
	b.add([]int32{4, 5, 6})
	if len(got) != 3 {
		t.Fatalf("batch of 3 flushed %d cliques", len(got))
	}
	b.add([]int32{7})
	b.flush()
	if len(got) != 4 {
		t.Fatalf("final flush delivered %d cliques, want 4", len(got))
	}
	want := [][]int32{{1}, {2, 3}, {4, 5, 6}, {7}}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("clique %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("clique %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if n := sink.batches.Load(); n != 2 {
		t.Fatalf("sink counted %d batches, want 2", n)
	}
}

func TestEmitBatcherDataCapForcesFlush(t *testing.T) {
	flushes := 0
	sink := &emitSink{visit: func([]int32) bool { return true }}
	b := newEmitBatcher(sink, 1<<30) // clique limit never reached
	big := make([]int32, emitBatchDataCap/4)
	for i := 0; i < 8; i++ {
		b.add(big)
		if sink.batches.Load() > int64(flushes) {
			flushes = int(sink.batches.Load())
			if len(b.data) != 0 {
				t.Fatal("flush left data buffered")
			}
		}
	}
	if flushes == 0 {
		t.Fatal("data cap never forced a flush")
	}
}
