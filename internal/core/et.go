package core

import (
	"math/bits"

	"github.com/graphmining/hbbmc/internal/bitset"
)

// This file implements the early-termination construction (Section IV of
// the paper) on the engine's bitset universes: when a branch's candidate
// graph is a t-plex (t ≤ 3) with an empty exclusion graph — and, inside
// hybrid branches, no masked candidate edge — all its maximal cliques are
// built directly from the complement structure instead of branching.
//
// The complement of the candidate graph is decomposed with word arithmetic
// (a vertex's complement neighbors are C &^ N(v)), and the streaming
// emitter in internal/plex walks the F × paths × cycles product without
// allocating.

// emitPlexDirect decomposes the complement of G[C] (C must be a t-plex,
// t ≤ 3) and emits S ∪ each maximal clique. cSize is |C|. It returns false
// without emitting anything when some vertex has more than two complement
// neighbors — impossible when the caller's t-plex check passed, but cheap
// to guard.
//
//hbbmc:noalloc
func (e *engine) emitPlexDirect(C bitset.Set, cSize int) bool {
	k := len(e.verts)
	if cap(e.compA) < k { //hbbmc:allowalloc amortised growth to the largest universe seen
		e.compA = make([]int32, k)
		e.compB = make([]int32, k)
		e.compVisited = make([]bool, k)
	}
	e.compA = e.compA[:k]
	e.compB = e.compB[:k]
	e.compVisited = e.compVisited[:k]

	mark := e.setArena.Mark()
	tmp := e.setArena.Get()

	// Every caller has just filled cntBuf for this C (see ensureCnt sites).
	e.fBuf = e.fBuf[:0]
	e.nonF = e.nonF[:0]
	for wi, cw := range C {
		base := wi * 64
		for ; cw != 0; cw &= cw - 1 {
			v := base + bits.TrailingZeros64(cw)
			cnt := int(e.cntBuf[v])
			if cnt == cSize-1 {
				e.fBuf = append(e.fBuf, int32(v))
				continue
			}
			// At most two complement neighbors (t ≤ 3 guarantees it).
			tmp.AndNotInto(C, e.adjG[v])
			tmp.Unset(v)
			if tmp.CountCapped(3) > 2 {
				e.setArena.Release(mark)
				return false
			}
			first := tmp.First()
			second := tmp.NextAfter(first)
			e.compA[v] = int32(first)
			e.compB[v] = int32(second) // -1 when complement degree is 1
			e.compVisited[v] = false
			e.nonF = append(e.nonF, int32(v))
		}
	}

	s := &e.plexScratch
	s.Begin(e.fBuf)

	// Paths first: walk from complement-degree-1 endpoints.
	for _, v := range e.nonF {
		if e.compVisited[v] || e.compB[v] >= 0 {
			continue
		}
		e.walkBuf = e.walkBuf[:0]
		prev, cur := int32(-1), v
		for {
			e.compVisited[cur] = true
			e.walkBuf = append(e.walkBuf, cur)
			next := e.compA[cur]
			if next == prev {
				next = e.compB[cur]
			}
			if next < 0 {
				break
			}
			prev, cur = cur, next
		}
		s.AddPath(e.walkBuf)
	}
	// Remaining unvisited non-F vertices lie on cycles.
	for _, v := range e.nonF {
		if e.compVisited[v] {
			continue
		}
		e.walkBuf = e.walkBuf[:0]
		prev, cur := int32(-1), v
		for {
			e.compVisited[cur] = true
			e.walkBuf = append(e.walkBuf, cur)
			next := e.compA[cur]
			if next == prev {
				next = e.compB[cur]
			}
			prev, cur = cur, next
			if cur == v {
				break
			}
		}
		s.AddCycle(e.walkBuf)
	}
	s.Emit(e.etEmit)
	e.setArena.Release(mark)
	return true
}
