package core

import (
	"context"
	"errors"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
)

// TestQueryOptionsOverrides pins the per-query override contract: one
// shared Session serves queries with different worker counts and clique
// budgets, and the overrides never leak back into the session.
func TestQueryOptionsOverrides(t *testing.T) {
	g := gen.NoisyCliques(200, 16, 7, 400, 5)
	s, err := NewSession(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	total, _, err := s.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if total < 20 {
		t.Fatalf("test graph too small: %d cliques", total)
	}

	// A budget override stops at the budget...
	n, _, err := s.CountWith(context.Background(), QueryOptions{MaxCliques: 5})
	if n != 5 || !errors.Is(err, ErrStopped) {
		t.Fatalf("MaxCliques=5 override counted %d (err %v), want 5 with ErrStopped", n, err)
	}
	// ...a worker override runs parallel with the same result...
	n, stats, err := s.CountWith(context.Background(), QueryOptions{Workers: 4})
	if err != nil || n != total {
		t.Fatalf("Workers=4 override counted %d (err %v), want %d", n, err, total)
	}
	if stats.Workers < 1 {
		t.Fatalf("Workers=4 override reported %d workers", stats.Workers)
	}
	// ...and the session's own defaults are untouched afterwards.
	n, _, err = s.Count(context.Background())
	if err != nil || n != total {
		t.Fatalf("after overrides the session counted %d (err %v), want %d", n, err, total)
	}

	// NoCliqueLimit removes a session-level budget for one query.
	limited, err2 := NewSession(g, Options{Algorithm: HBBMC, ET: 3, GR: true, MaxCliques: 3})
	if err2 != nil {
		t.Fatal(err2)
	}
	n, _, err = limited.CountWith(context.Background(), QueryOptions{MaxCliques: NoCliqueLimit})
	if err != nil || n != total {
		t.Fatalf("NoCliqueLimit query counted %d (err %v), want full %d", n, err, total)
	}
	n, _, err = limited.Count(context.Background())
	if n != 3 || !errors.Is(err, ErrStopped) {
		t.Fatalf("session budget no longer applies after override: %d (err %v)", n, err)
	}

	// Invalid overrides are rejected up front.
	if _, err := s.EnumerateWith(context.Background(), QueryOptions{Workers: -2}, nil); err == nil {
		t.Error("Workers below UseAllCores must be rejected")
	}
	if _, err := s.EnumerateWith(context.Background(), QueryOptions{MaxCliques: -2}, nil); err == nil {
		t.Error("MaxCliques below NoCliqueLimit must be rejected")
	}
	if _, err := s.EnumerateWith(context.Background(), QueryOptions{EmitBatchSize: -1}, nil); err == nil {
		t.Error("negative EmitBatchSize must be rejected")
	}
}

// TestQueryOptionsPhaseTimers checks that a phase-timer override populates
// the per-phase counters for that query only.
func TestQueryOptionsPhaseTimers(t *testing.T) {
	g := gen.NoisyCliques(150, 12, 6, 300, 9)
	s, err := NewSession(g, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.EnumerateWith(context.Background(), QueryOptions{PhaseTimers: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.UniverseTime == 0 {
		t.Error("PhaseTimers override left UniverseTime at zero")
	}
	plain, err := s.Enumerate(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plain.UniverseTime != 0 {
		t.Error("phase timers leaked into a non-timed query")
	}
}

func TestSessionMemoryEstimate(t *testing.T) {
	small := gen.ER(200, 800, 3)
	big := gen.ER(2000, 16000, 3)
	for _, opts := range []Options{
		Defaults(),
		{Algorithm: BKDegen},
		{Algorithm: BKDegree},
		{Algorithm: EBBMC, ET: 3},
	} {
		ss, err := NewSession(small, opts)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewSession(big, opts)
		if err != nil {
			t.Fatal(err)
		}
		es, eb := ss.MemoryEstimate(), sb.MemoryEstimate()
		if es <= 0 || eb <= 0 {
			t.Fatalf("%v: non-positive estimates %d / %d", opts.Algorithm, es, eb)
		}
		if eb <= es {
			t.Fatalf("%v: estimate did not grow with the graph (%d ≤ %d)", opts.Algorithm, eb, es)
		}
		// The residual CSR graph is always part of the estimate.
		if es < ss.res.MemoryFootprint() {
			t.Fatalf("%v: estimate %d below the residual graph's %d bytes",
				opts.Algorithm, es, ss.res.MemoryFootprint())
		}
	}

	// The edge-oriented frameworks retain the triangle incidence on top of
	// the CSR graph; their sessions must account it.
	vert, err := NewSession(small, Options{Algorithm: BKDegen})
	if err != nil {
		t.Fatal(err)
	}
	edge, err := NewSession(small, Options{Algorithm: EBBMC, ET: 3})
	if err != nil {
		t.Fatal(err)
	}
	if edge.MemoryEstimate() < vert.MemoryEstimate()+edge.inc.MemoryFootprint()/2 {
		t.Fatalf("edge session estimate %d does not reflect the %d-byte incidence (vertex session: %d)",
			edge.MemoryEstimate(), edge.inc.MemoryFootprint(), vert.MemoryEstimate())
	}
}

func TestOptionsSessionKey(t *testing.T) {
	base := Defaults()
	same := base
	same.Workers = 8           // per-run knob: must not change the key
	same.MaxCliques = 100      // per-run knob
	same.EmitBatchSize = 7     // per-run knob
	same.ParallelChunkSize = 3 // per-run knob
	same.PhaseTimers = true    // per-run knob
	if base.SessionKey() != same.SessionKey() {
		t.Fatalf("per-run knobs changed the session key:\n%s\n%s", base.SessionKey(), same.SessionKey())
	}

	// Normalized defaults collide with their explicit spellings.
	explicit := base
	explicit.SwitchDepth = 1
	if base.SessionKey() != explicit.SessionKey() {
		t.Fatalf("SwitchDepth 0 and 1 must share a key:\n%s\n%s", base.SessionKey(), explicit.SessionKey())
	}

	for name, change := range map[string]func(*Options){
		"Algorithm":   func(o *Options) { o.Algorithm = BKDegen },
		"ET":          func(o *Options) { o.ET = 0 },
		"GR":          func(o *Options) { o.GR = false },
		"SwitchDepth": func(o *Options) { o.SwitchDepth = 2 },
		"EdgeOrder":   func(o *Options) { o.EdgeOrder = EdgeOrderMinDegree },
		"Inner":       func(o *Options) { o.Inner = InnerRcd },
	} {
		o := base
		change(&o)
		if o.SessionKey() == base.SessionKey() {
			t.Errorf("changing %s did not change the session key %q", name, base.SessionKey())
		}
	}
}
