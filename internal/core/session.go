package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"iter"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphmining/hbbmc/internal/graph"
	"github.com/graphmining/hbbmc/internal/order"
	"github.com/graphmining/hbbmc/internal/reduce"
	"github.com/graphmining/hbbmc/internal/truss"
)

// ErrStopped is returned (possibly wrapped) when an enumeration ended early
// because a Visitor returned false or Options.MaxCliques was reached. The
// accompanying Stats cover the work done up to the stop.
var ErrStopped = errors.New("core: enumeration stopped early")

// Visitor receives one maximal clique per call. The slice is reused between
// calls — copy it to retain it. Returning false stops the enumeration; the
// run then finishes with ErrStopped and no further Visitor calls are made.
type Visitor func(clique []int32) bool

// Session caches the preprocessing of one (graph, options) pair — the
// reduction result, the vertex or edge ordering and the triangle incidence —
// and serves any number of enumeration queries against it without repeating
// that O(δm) work. A Session is immutable after NewSession and safe for
// concurrent queries from multiple goroutines.
type Session struct {
	opts Options // normalized
	red  *reduce.Result
	res  *graph.Graph // residual graph after reduction
	src  *graph.Graph // the input graph, retained for GraphFingerprint

	// Ordering state; only the fields the configured algorithm needs are set.
	vertOrd, vertPos []int32
	eo               truss.EdgeOrder
	inc              *truss.Incidence

	// Parallel branch schedule: top-level ordering positions sorted by
	// descending estimated cost, built lazily on the first parallel query
	// and shared by all of them (a Session is immutable otherwise).
	// scheduleBytes mirrors the schedule's size for MemoryEstimate, which
	// must not race the lazy build by touching the slice itself.
	scheduleOnce  sync.Once
	schedule      []int32
	scheduleBytes atomic.Int64

	// Lazy source-graph basis for CountKCliques when the session's cached
	// orderings cannot count k-cliques exactly (a reduction removed vertices,
	// or the algorithm has no top-level ordering): a degeneracy ordering of
	// src plus an identity reduction. kcBytes mirrors its size for
	// MemoryEstimate, like scheduleBytes does for the schedule.
	kcOnce       sync.Once
	kcOrd, kcPos []int32
	kcRed        *reduce.Result
	kcBytes      atomic.Int64

	// Lazily computed identity of the session's work decomposition, used by
	// the distributed coordinator (internal/distrib) to verify that a peer
	// would enumerate the exact same branch space before handing it a range.
	fpOnce  sync.Once
	fp      uint32
	ordOnce sync.Once
	ordFP   uint32

	delta, tau, hIndex int
	prepTime           time.Duration
}

// branchSchedule returns the order in which the parallel driver hands
// top-level branches to the work queue: ordering positions sorted by
// descending estimated branch cost, so the expensive branches start first
// and cannot strand the run's tail on one worker (the LPT heuristic of the
// shared-memory parallel MCE literature). The estimate is the size of the
// branch's candidate universe — the triangle count of the edge for the
// edge-oriented frameworks, the later-neighbor count of the vertex for the
// ordered vertex frameworks. Returns nil (raw ordering positions) when cost
// ordering is ablated.
func (s *Session) branchSchedule() []int32 {
	if ablateCostOrder {
		return nil
	}
	s.scheduleOnce.Do(func() {
		var cost []int32
		switch s.opts.Algorithm {
		case EBBMC, HBBMC:
			cost = make([]int32, len(s.eo.Order))
			for i, eid := range s.eo.Order {
				cost[i] = s.inc.Count(eid)
			}
		default:
			cost = make([]int32, len(s.vertOrd))
			for i, v := range s.vertOrd {
				later := int32(0)
				pv := s.vertPos[v]
				for _, w := range s.res.Neighbors(v) {
					if s.vertPos[w] > pv {
						later++
					}
				}
				cost[i] = later
			}
		}
		perm := make([]int32, len(cost))
		for i := range perm {
			perm[i] = int32(i)
		}
		// One entry per edge on the edge-driven frameworks — use the
		// non-reflective generic sort.
		slices.SortFunc(perm, func(a, b int32) int {
			if ca, cb := cost[a], cost[b]; ca != cb {
				return int(cb - ca) // descending cost
			}
			return int(a - b) // deterministic tie-break
		})
		s.schedule = perm
		s.scheduleBytes.Store(int64(len(perm)) * 4)
	})
	return s.schedule
}

// NewSession validates opts and computes the preprocessing for g once:
// graph reduction (when Options.GR is set), the top-level vertex or edge
// ordering, and the triangle incidence of the edge-oriented frameworks.
// Every subsequent query reuses these artifacts, so their Stats report zero
// OrderingTime; PrepTime returns the cached cost.
func NewSession(g *graph.Graph, opts Options) (*Session, error) {
	opts, err := opts.normalized()
	if err != nil {
		return nil, err
	}
	s := &Session{opts: opts, src: g}
	start := time.Now()
	if opts.GR {
		s.red = reduce.Apply(g, reduce.Options{MaxDegree: opts.GRMaxDegree})
	} else {
		s.red = reduce.Identity(g)
	}
	s.res = s.red.Residual
	switch opts.Algorithm {
	case BK, BKPivot:
		if s.res.NumVertices() > opts.MaxWholeGraphVertices {
			return nil, fmt.Errorf("core: %v runs on a single whole-graph branch and is limited to %d vertices (graph has %d after reduction); use an ordered algorithm such as BKDegen or HBBMC",
				opts.Algorithm, opts.MaxWholeGraphVertices, s.res.NumVertices())
		}
	case BKRef, BKDegen, BKRcd, BKFac:
		d := order.DegeneracyOrdering(s.res)
		s.delta = d.Value
		s.vertOrd, s.vertPos = d.Order, d.Pos
	case BKDegree:
		s.vertOrd, s.vertPos = order.DegreeOrdering(s.res)
		s.hIndex = order.HIndex(s.res)
	case EBBMC, HBBMC:
		switch opts.EdgeOrder {
		case EdgeOrderTruss:
			dec := truss.Decompose(s.res)
			s.tau = dec.Tau
			s.eo, s.inc = dec.EdgeOrder, dec.Inc
		case EdgeOrderDegeneracy:
			d := order.DegeneracyOrdering(s.res)
			s.delta = d.Value
			s.eo, s.inc = truss.DegeneracyEdgeOrder(s.res, d.Pos), truss.BuildIncidence(s.res)
		case EdgeOrderMinDegree:
			s.eo, s.inc = truss.MinDegreeEdgeOrder(s.res), truss.BuildIncidence(s.res)
		}
	}
	s.prepTime = time.Since(start)
	return s, nil
}

// Options returns the session's normalized options.
func (s *Session) Options() Options { return s.opts }

// NumTopBranches returns the size of the session's top-level branch space —
// the domain of QueryOptions branch ranges: one branch per edge-order
// position for the edge-oriented frameworks, one per ordering position for
// the ordered vertex frameworks, and a single whole-graph branch for BK and
// BKPivot. A distributed coordinator splits [0, NumTopBranches()) into the
// intervals it dispatches.
func (s *Session) NumTopBranches() int {
	switch s.opts.Algorithm {
	case BK, BKPivot:
		return 1
	case EBBMC, HBBMC:
		return len(s.eo.Order)
	default:
		return len(s.vertOrd)
	}
}

// fpCRCTable is the Castagnoli polynomial shared by every fingerprint in
// the module (the .hbg snapshot header uses the same one).
var fpCRCTable = crc32.MakeTable(crc32.Castagnoli)

// crcInt32s folds a []int32 into a running CRC-32C without materialising a
// byte serialisation of the whole slice.
func crcInt32s(crc uint32, xs []int32) uint32 {
	var buf [4096]byte
	fill := 0
	for _, x := range xs {
		if fill+4 > len(buf) {
			crc = crc32.Update(crc, fpCRCTable, buf[:fill])
			fill = 0
		}
		binary.LittleEndian.PutUint32(buf[fill:], uint32(x))
		fill += 4
	}
	return crc32.Update(crc, fpCRCTable, buf[:fill])
}

// GraphFingerprint returns the CRC-32C fingerprint of the session's input
// graph — the value SaveBinary writes into a .hbg header (see
// graph.Graph.Fingerprint) — computed once and cached. Together with
// Options.SessionKey it identifies the dataset side of a distributed work
// descriptor: two nodes agreeing on both hold byte-identical CSR graphs and
// build identical preprocessing from them.
func (s *Session) GraphFingerprint() uint32 {
	s.fpOnce.Do(func() { s.fp = s.src.Fingerprint() })
	return s.fp
}

// OrderingFingerprint identifies the session's branch enumeration basis: a
// CRC-32C over the algorithm name, the top-level ordering (edge order or
// vertex order) and the cost-ordered branch schedule. Branch ranges are
// intervals of schedule positions, so two nodes may only exchange them when
// their OrderingFingerprints agree — equality means position i names the
// same branch on both. The orderings are deterministic functions of the
// graph and options, so in practice this only disagrees when the dataset or
// options already do; it exists to turn that silent corruption into a hard
// dispatch error.
func (s *Session) OrderingFingerprint() uint32 {
	s.ordOnce.Do(func() {
		crc := crc32.Update(0, fpCRCTable, []byte(s.opts.Algorithm.String()))
		switch s.opts.Algorithm {
		case EBBMC, HBBMC:
			crc = crcInt32s(crc, s.eo.Order)
		default:
			crc = crcInt32s(crc, s.vertOrd)
		}
		crc = crcInt32s(crc, s.branchSchedule())
		s.ordFP = crc
	})
	return s.ordFP
}

// PrepTime returns the cost of the cached preprocessing (reduction plus
// ordering construction), paid once in NewSession.
func (s *Session) PrepTime() time.Duration { return s.prepTime }

// MemoryEstimate returns the number of bytes retained by the session's
// cached artifacts: the residual CSR graph, the reduction mapping and
// emitted cliques, the vertex or edge ordering, the triangle incidence of
// the edge-oriented frameworks and the lazily built parallel branch
// schedule. Cache budgets (the service registry's LRU) evict on this
// estimate; it tracks the dominant slice payloads and ignores struct
// overheads.
func (s *Session) MemoryEstimate() int64 {
	b := s.res.MemoryFootprint()
	b += s.red.MemoryFootprint()
	b += int64(len(s.vertOrd)+len(s.vertPos)) * 4
	b += int64(len(s.eo.Rank)+len(s.eo.Order)) * 4
	if s.inc != nil {
		b += s.inc.MemoryFootprint()
	}
	b += s.scheduleBytes.Load()
	b += s.kcBytes.Load()
	return b
}

// NoCliqueLimit is the QueryOptions.MaxCliques value that removes a clique
// budget configured in the session's Options for one query (a zero field
// inherits the session's budget instead).
const NoCliqueLimit int64 = -1

// QueryOptions override, for a single query, the per-run knobs of a
// Session's Options without rebuilding the cached preprocessing. The zero
// value inherits every session setting. The algorithm-defining fields
// (Algorithm, ET, GR, SwitchDepth, EdgeOrder, Inner) are fixed at
// NewSession and cannot be overridden per query — they determine the cached
// orderings.
type QueryOptions struct {
	// Workers overrides Options.Workers when non-zero (UseAllCores = one
	// worker per core; values above GOMAXPROCS are clamped).
	Workers int
	// MaxCliques overrides Options.MaxCliques when non-zero; NoCliqueLimit
	// removes a session-level budget for this query.
	MaxCliques int64
	// EmitBatchSize overrides Options.EmitBatchSize when non-zero.
	EmitBatchSize int
	// ParallelChunkSize overrides Options.ParallelChunkSize when non-zero.
	ParallelChunkSize int
	// PhaseTimers enables per-phase timers for this query. It cannot turn
	// off timers enabled in the session's Options.
	PhaseTimers bool
	// BranchDone, when non-nil, observes durable enumeration progress: it is
	// invoked once per completed unit of top-level work with the unit's
	// half-open schedule-position interval [lo, hi), the number of cliques
	// the unit delivered to the visitor, and a running maximum clique size
	// that is at least the unit's own maximum. One degenerate call with
	// lo == hi == 0 reports the preprocessing residue (reduction cliques and,
	// for the edge-oriented frameworks, isolated vertices), which a hooked
	// run emits before any branch so that "residue plus branches [0, W)" is a
	// well-defined resumable prefix. Units are branches on the sequential
	// driver and work-queue chunks on the parallel one; a unit whose
	// completion or delivery is uncertain (the run was stopped or cancelled
	// mid-unit) is never reported, so a checkpoint built from these calls
	// only ever under-claims. The hook is called from at most one goroutine
	// at a time but not always the caller's; it must not call back into the
	// session.
	BranchDone func(lo, hi int, cliques int64, maxCliqueSize int)
	// OrderedEmit makes a parallel enumeration deliver cliques to the
	// visitor in ascending schedule-position order (residue first, then each
	// branch chunk in turn), trading emit pipelining for a deterministic,
	// resumable stream: everything delivered before BranchDone reports unit
	// [lo, hi) belongs to residue + branches [0, hi). Implied by BranchDone
	// when a visitor is set. No effect on sequential runs, which are already
	// ordered.
	OrderedEmit bool
	// BranchLo and BranchHi restrict the query to the half-open interval
	// [BranchLo, BranchHi) of top-level branch schedule positions — the
	// execution side of a distributed work descriptor (internal/distrib).
	// Both zero (the zero value) runs the full branch space. Positions index
	// the session's cost-ordered branch schedule, so a set of queries whose
	// intervals partition [0, NumTopBranches()) reports exactly the full
	// run's clique set across their streams; the preprocessing residue
	// (reduction cliques, isolated vertices of the edge-oriented split)
	// belongs to the interval containing position 0. BranchHi beyond
	// NumTopBranches() is an error: it means the range was computed against
	// different preprocessing than this session's.
	BranchLo, BranchHi int
}

// apply folds the overrides into the session's normalized options and
// re-validates the overridden fields.
func (q QueryOptions) apply(base Options) (Options, error) {
	o := base
	if q.Workers != 0 {
		if q.Workers < UseAllCores {
			return o, fmt.Errorf("core: invalid QueryOptions.Workers %d (use UseAllCores for all cores)", q.Workers)
		}
		o.Workers = q.Workers
	}
	switch {
	case q.MaxCliques == NoCliqueLimit:
		o.MaxCliques = 0
	case q.MaxCliques < NoCliqueLimit:
		return o, fmt.Errorf("core: invalid QueryOptions.MaxCliques %d", q.MaxCliques)
	case q.MaxCliques > 0:
		o.MaxCliques = q.MaxCliques
	}
	if q.EmitBatchSize < 0 {
		return o, fmt.Errorf("core: negative QueryOptions.EmitBatchSize %d", q.EmitBatchSize)
	}
	if q.EmitBatchSize > 0 {
		o.EmitBatchSize = q.EmitBatchSize
	}
	if q.ParallelChunkSize < 0 {
		return o, fmt.Errorf("core: negative QueryOptions.ParallelChunkSize %d", q.ParallelChunkSize)
	}
	if q.ParallelChunkSize > 0 {
		o.ParallelChunkSize = q.ParallelChunkSize
	}
	if q.PhaseTimers {
		o.PhaseTimers = true
	}
	if q.BranchLo < 0 || q.BranchHi < q.BranchLo {
		return o, fmt.Errorf("core: invalid branch range [%d,%d)", q.BranchLo, q.BranchHi)
	}
	return o, nil
}

// branchRange is the resolved form of QueryOptions.BranchLo/BranchHi: a
// half-open interval of branch schedule positions, or the full branch space
// when set is false. The distinction matters beyond bounds: an unranged
// sequential run iterates the raw ordering (the historical, cache-friendly
// order), while any set range iterates schedule positions so that interval
// arithmetic on descriptors stays valid.
type branchRange struct {
	lo, hi int
	set    bool
}

// rng converts the query's range fields to a branchRange; [0,0) is the
// full-run sentinel.
func (q QueryOptions) rng() branchRange {
	if q.BranchLo == 0 && q.BranchHi == 0 {
		return branchRange{}
	}
	return branchRange{lo: q.BranchLo, hi: q.BranchHi, set: true}
}

// EnumerateWith is Enumerate with per-query overrides of the run knobs
// (worker count, clique budget, emit batching, phase timers). It is the
// query entry point for services that share one cached Session across
// requests with different per-request limits.
func (s *Session) EnumerateWith(ctx context.Context, q QueryOptions, visit Visitor) (*Stats, error) {
	opts, err := q.apply(s.opts)
	if err != nil {
		return nil, err
	}
	return s.enumerateRange(ctx, opts, q.rng(), progress{hook: q.BranchDone, ordered: q.OrderedEmit}, visit)
}

// CountWith is Count with per-query overrides; see EnumerateWith.
func (s *Session) CountWith(ctx context.Context, q QueryOptions) (int64, *Stats, error) {
	stats, err := s.EnumerateWith(ctx, q, nil)
	if err != nil && stats == nil {
		return 0, nil, err
	}
	return stats.Cliques, stats, err
}

// Enumerate runs one query, invoking visit once per maximal clique (visit
// may be nil to only collect statistics). Options.Workers selects the
// driver: 0 or 1 sequential, n > 1 parallel over up to n goroutines,
// UseAllCores every core.
//
// ctx is checked cooperatively at top-branch granularity: after a
// cancellation or deadline the run returns within one top-level branch,
// with the partial Stats and an error wrapping ctx.Err(). A visit callback
// returning false, or Options.MaxCliques being reached, stops the run the
// same way with ErrStopped.
func (s *Session) Enumerate(ctx context.Context, visit Visitor) (*Stats, error) {
	return s.enumerate(ctx, s.opts, visit)
}

// EnumerateParallel is Enumerate with an explicit worker count overriding
// Options.Workers (0 = all cores, clamped to GOMAXPROCS).
func (s *Session) EnumerateParallel(ctx context.Context, workers int, visit Visitor) (*Stats, error) {
	opts := s.opts
	if workers <= 0 {
		workers = UseAllCores
	}
	opts.Workers = workers
	return s.enumerate(ctx, opts, visit)
}

// Count runs one query and returns the number of maximal cliques without
// materialising them. On an interrupted or stopped run it returns the
// partial count together with the error.
func (s *Session) Count(ctx context.Context) (int64, *Stats, error) {
	stats, err := s.Enumerate(ctx, nil)
	return stats.Cliques, stats, err
}

// Collect runs one query and returns every maximal clique as a fresh slice.
// Convenient for small graphs; large graphs should stream through Enumerate
// or Cliques.
func (s *Session) Collect(ctx context.Context) ([][]int32, *Stats, error) {
	var out [][]int32
	stats, err := s.Enumerate(ctx, func(c []int32) bool {
		out = append(out, append([]int32(nil), c...))
		return true
	})
	return out, stats, err
}

// Cliques returns a range-over-func iterator over the maximal cliques:
//
//	for c := range sess.Cliques(ctx) { ... }
//
// Breaking out of the loop stops the enumeration (the Visitor-returns-false
// path); cancelling ctx stops it at top-branch granularity. The yielded
// slice is reused between iterations — copy it to retain it. Use Enumerate
// directly when the run's Stats or error are needed.
func (s *Session) Cliques(ctx context.Context) iter.Seq[[]int32] {
	return func(yield func([]int32) bool) {
		_, _ = s.Enumerate(ctx, Visitor(yield))
	}
}

// resolveWorkers maps an Options.Workers-style value to an effective worker
// count: 0 and 1 are sequential, UseAllCores is GOMAXPROCS, and anything
// larger than GOMAXPROCS is clamped to it.
func resolveWorkers(w int) int {
	max := runtime.GOMAXPROCS(0)
	switch {
	case w == UseAllCores:
		return max
	case w <= 1:
		return 1
	case w > max:
		return max
	}
	return w
}

// enumerate dispatches one query to the sequential or parallel driver.
// opts is the effective per-query option set: the session's normalized
// options, possibly with the run knobs overridden by QueryOptions. The
// algorithm-defining fields always equal the session's, so the cached
// orderings stay valid. Resolving opts.Workers here (rather than in the
// callers) lets a parallel request that clamps down to one worker still
// record its fallback reason in Stats.ParallelFallback.
func (s *Session) enumerate(ctx context.Context, opts Options, visit Visitor) (*Stats, error) {
	return s.enumerateRange(ctx, opts, branchRange{}, progress{}, visit)
}

// progress bundles the per-query durability hooks of QueryOptions: the
// branch-completion observer and the ordered-emission request. The zero
// value is a plain query.
type progress struct {
	hook    func(lo, hi int, cliques int64, maxCliqueSize int)
	ordered bool
}

// enumerateRange is enumerate restricted to a branch interval; rng's zero
// value runs the full branch space.
func (s *Session) enumerateRange(ctx context.Context, opts Options, rng branchRange, prog progress, visit Visitor) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rng.set {
		if n := s.NumTopBranches(); rng.hi > n {
			return nil, fmt.Errorf("core: branch range [%d,%d) exceeds the session's %d top-level branches", rng.lo, rng.hi, n)
		}
	}
	if prog.hook != nil && !rng.set {
		// Progress intervals are schedule positions, so a hooked run must
		// iterate the schedule even when unranged — otherwise a checkpoint
		// taken now would name different branches than the ranged resume.
		rng = branchRange{lo: 0, hi: s.NumTopBranches(), set: true}
	}
	rc := newRunControl(ctx, opts)
	requested := opts.Workers
	workers := resolveWorkers(requested)
	var stats *Stats
	switch {
	case workers <= 1:
		stats = s.runSequential(rc, opts, rng, prog, visit)
		if requested > 1 || requested == UseAllCores {
			stats.ParallelFallback = "single worker"
		}
	default:
		if reason := sequentialFallback(opts, workers); reason != "" {
			stats = s.runSequential(rc, opts, rng, prog, visit)
			stats.ParallelFallback = reason
		} else {
			stats = s.runParallel(rc, opts, workers, rng, prog, visit)
		}
	}
	return stats, rc.err()
}

// baseStats seeds a query's Stats with the cached preprocessing summary.
// OrderingTime stays zero: the session already paid it (see PrepTime).
func (s *Session) baseStats(workers int) *Stats {
	return &Stats{
		Workers:          workers,
		ReducedVertices:  s.red.NumRemoved,
		ReductionCliques: int64(len(s.red.Cliques)),
		Delta:            s.delta,
		Tau:              s.tau,
		HIndex:           s.hIndex,
	}
}

// emitReduced reports the cliques found by the reduction preprocessing,
// honouring the clique budget and the visitor's stop signal. The visitor
// sees a scratch copy, never the session's cached slices — the streaming
// contract lets callers scribble on the slice until the call returns, and
// that must not corrupt the cache that later queries reuse.
//
//hbbmc:ctxpoll
func emitReduced(rc *runControl, stats *Stats, cliques [][]int32, visit Visitor) {
	var buf []int32
	for _, c := range cliques {
		if rc.halted() || !rc.take() {
			return
		}
		stats.Cliques++
		if len(c) > stats.MaxCliqueSize {
			stats.MaxCliqueSize = len(c)
		}
		if visit != nil {
			buf = append(buf[:0], c...)
			if !visit(buf) {
				rc.stop.Store(true)
				return
			}
		}
	}
}

// runSequential executes one query on a single goroutine. A set rng
// restricts the run to its branch interval: ranged runs iterate schedule
// positions (unranged sequential runs keep the historical raw-order
// iteration) and the preprocessing residue — reduction cliques, isolated
// vertices of the edge-oriented split — is emitted only by the interval
// containing position 0, so shards that partition the branch space
// partition the clique set too.
func (s *Session) runSequential(rc *runControl, opts Options, rng branchRange, prog progress, visit Visitor) *Stats {
	stats := s.baseStats(1)
	enum := time.Now()
	if rng.lo == 0 {
		emitReduced(rc, stats, s.red.Cliques, visit)
	}
	if !rc.halted() {
		e := newEngine(s.res, s.red, opts, stats, visit, rc)
		configureEngine(e, opts)
		e.eo, e.inc = s.eo, s.inc
		edgeDriven := opts.Algorithm == EBBMC || opts.Algorithm == HBBMC
		if prog.hook != nil {
			// Residue first under a progress hook: the isolated-vertex pass
			// of the edge-oriented split moves ahead of the branch loop so a
			// checkpoint at watermark W covers exactly residue + [0, W).
			if edgeDriven && rng.lo == 0 {
				e.runIsolatedVertices()
			}
			if !rc.halted() && rng.lo == 0 {
				prog.hook(0, 0, stats.Cliques, stats.MaxCliqueSize)
			}
		}
		switch opts.Algorithm {
		case BK, BKPivot:
			// The single whole-graph branch is position 0 of a one-branch
			// schedule; an interval excluding it has nothing to run.
			if !rng.set || (rng.lo == 0 && rng.hi > 0) {
				before := stats.Cliques
				e.runWholeGraph()
				if prog.hook != nil && !rc.halted() {
					prog.hook(0, 1, stats.Cliques-before, stats.MaxCliqueSize)
				}
			}
		case BKRef, BKDegen, BKRcd, BKFac, BKDegree:
			switch {
			case !rng.set:
				e.runVertexOrdered(s.vertOrd, s.vertPos)
			case prog.hook == nil:
				e.runVertexOrderedSched(s.vertOrd, s.vertPos, s.branchSchedule(), rng.lo, rng.hi)
			default:
				sched := s.branchSchedule()
				for i := rng.lo; i < rng.hi && !rc.halted(); i++ {
					before := stats.Cliques
					e.runVertexOrderedSched(s.vertOrd, s.vertPos, sched, i, i+1)
					if !rc.halted() {
						prog.hook(i, i+1, stats.Cliques-before, stats.MaxCliqueSize)
					}
				}
			}
		case EBBMC, HBBMC:
			switch {
			case !rng.set:
				e.runEdgeOrdered()
			case prog.hook == nil:
				e.runEdgeOrderedSched(s.branchSchedule(), rng.lo, rng.hi)
				if rng.lo == 0 && !rc.halted() {
					e.runIsolatedVertices()
				}
			default:
				// Isolated vertices already ran above, residue-first.
				sched := s.branchSchedule()
				for i := rng.lo; i < rng.hi && !rc.halted(); i++ {
					before := stats.Cliques
					e.runEdgeOrderedSched(sched, i, i+1)
					if !rc.halted() {
						prog.hook(i, i+1, stats.Cliques-before, stats.MaxCliqueSize)
					}
				}
			}
		}
	}
	stats.EnumTime = time.Since(enum)
	return stats
}

// runParallel executes one query with the top-level branches distributed
// over worker goroutines through the dynamic work queue. Workers observe
// cancellation and early stops at top-branch granularity, so the call
// returns within one branch granule of the signal with all goroutines
// joined.
func (s *Session) runParallel(rc *runControl, opts Options, workers int, rng branchRange, prog progress, visit Visitor) *Stats {
	stats := s.baseStats(workers)
	enum := time.Now()
	if rng.lo == 0 {
		emitReduced(rc, stats, s.red.Cliques, visit)
	}
	if rc.halted() {
		stats.EnumTime = time.Since(enum)
		return stats
	}

	edgeDriven := opts.Algorithm == EBBMC || opts.Algorithm == HBBMC
	items := len(s.vertOrd)
	if edgeDriven {
		items = len(s.eo.Order)
	}
	lo, hi := 0, items
	if rng.set {
		lo, hi = rng.lo, rng.hi
	}
	var sched []int32
	if !ablateStaticStride {
		sched = s.branchSchedule()
	}
	ordered := visit != nil && !ablateStaticStride && (prog.ordered || prog.hook != nil)
	if prog.hook != nil || ordered {
		// Residue first under a progress hook or ordered emission: the
		// isolated-vertex pass moves ahead of the workers (the sink does not
		// exist yet, so the engine delivers straight to the visitor) and the
		// degenerate residue call anchors the checkpoint protocol before
		// branch 0.
		if edgeDriven && lo == 0 {
			e := newEngine(s.res, s.red, opts, stats, visit, rc)
			configureEngine(e, opts)
			e.eo, e.inc = s.eo, s.inc
			e.runIsolatedVertices()
		}
		if rc.halted() {
			stats.EnumTime = time.Since(enum)
			return stats
		}
		if prog.hook != nil && lo == 0 {
			prog.hook(0, 0, stats.Cliques, stats.MaxCliqueSize)
		}
	}
	queue := newWorkQueueRange(lo, hi, workers, opts.ParallelChunkSize)
	queue.rampUp = sched != nil && opts.ParallelChunkSize <= 0
	sink := &emitSink{visit: visit, rc: rc}
	var oseq *orderedSeq
	if ordered {
		oseq = newOrderedSeq(visit, rc, prog.hook, lo)
	}

	workerStats := make([]*Stats, workers)
	// hookMu upholds BranchDone's one-goroutine-at-a-time contract on the
	// counting path, where chunks complete concurrently (the ordered path
	// fires the hook from the single releasing goroutine instead).
	var hookMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		ws := &Stats{}
		workerStats[w] = ws
		var batcher *emitBatcher
		var writer *orderedWriter
		var workerEmit Visitor
		switch {
		case visit == nil:
		case oseq != nil:
			writer = &orderedWriter{}
			workerEmit = writer.add
		case ablateStaticStride:
			// Seed behavior under ablation: one lock round-trip per clique.
			workerEmit = sink.emitLocking
		default:
			batcher = newEmitBatcher(sink, opts.EmitBatchSize)
			workerEmit = batcher.add
		}
		e := newEngine(s.res, s.red, opts, ws, workerEmit, rc)
		configureEngine(e, opts)
		e.eo, e.inc = s.eo, s.inc
		offset := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if ablateStaticStride {
				if edgeDriven {
					e.runEdgeOrderedRange(lo+offset, hi, workers)
				} else {
					e.runVertexOrderedRange(s.vertOrd, s.vertPos, lo+offset, hi, workers)
				}
			} else {
				for !rc.halted() {
					begin, end, ok := queue.next()
					if !ok {
						break
					}
					before := ws.Cliques
					if writer != nil {
						writer.cur = &orderedChunk{begin: begin, end: end}
					}
					if edgeDriven {
						e.runEdgeOrderedSched(sched, begin, end)
					} else {
						e.runVertexOrderedSched(s.vertOrd, s.vertPos, sched, begin, end)
					}
					switch {
					case oseq != nil:
						oseq.complete(writer.cur)
					case prog.hook != nil && !rc.stopped():
						// Counting run: no delivery to sequence, so report
						// each completed chunk as soon as its counts are
						// certain. The hook consumer merges the intervals
						// into a contiguous-prefix watermark itself.
						hookMu.Lock()
						prog.hook(begin, end, ws.Cliques-before, ws.MaxCliqueSize)
						hookMu.Unlock()
					}
				}
			}
			if batcher != nil {
				batcher.flush()
			}
		}()
	}
	wg.Wait()
	if oseq != nil {
		oseq.abandon()
	}
	// Isolated vertices of the edge-ordered drivers are handled once,
	// outside the workers; with the workers joined, the sink lock is
	// uncontended. Like the reduction cliques they belong to the branch
	// interval containing position 0. Hooked runs already emitted them
	// before the workers, residue-first.
	if edgeDriven && lo == 0 && !rc.halted() && prog.hook == nil && !ordered {
		e := newEngine(s.res, s.red, opts, stats, sink.direct(), rc)
		configureEngine(e, opts)
		e.eo, e.inc = s.eo, s.inc
		e.runIsolatedVertices()
	}
	for _, ws := range workerStats {
		stats.merge(ws)
	}
	// Workers count a clique when they find it, before it is batched; ones
	// the stop latch kept from being delivered come off again so Cliques
	// means "reported to the caller" on every path.
	stats.Cliques -= sink.droppedCount()
	stats.EmitBatches = sink.batches.Load()
	if oseq != nil {
		stats.Cliques -= oseq.droppedCount()
		stats.EmitBatches = oseq.released.Load()
	}
	stats.EnumTime = time.Since(enum)
	return stats
}

// runControl carries the cooperative run-state shared by every engine of
// one query: the context's done channel, the one-way stop latch observed by
// the recursions, and the optional clique budget of Options.MaxCliques.
type runControl struct {
	ctx  context.Context
	done <-chan struct{}
	// stop latches true when a Visitor returns false, the clique budget is
	// exhausted, or a halted() check observes the context done. Recursions
	// poll it (a plain atomic load) to unwind promptly.
	stop atomic.Bool
	// cancelled latches true only when a halted() check actually observed
	// the done context — the run really was cut short by it. err() must not
	// consult ctx.Err() directly: a deadline expiring after the last branch
	// would misreport a complete run (or a budget stop) as interrupted.
	cancelled atomic.Bool
	// budget is the remaining clique allowance when limited; taking it below
	// zero rejects the clique, so exactly MaxCliques cliques are counted and
	// delivered regardless of worker count.
	budget  atomic.Int64
	limited bool
}

func newRunControl(ctx context.Context, opts Options) *runControl {
	rc := &runControl{ctx: ctx, done: ctx.Done()}
	if opts.MaxCliques > 0 {
		rc.limited = true
		rc.budget.Store(opts.MaxCliques)
	}
	return rc
}

// stopped reports the stop latch alone — the cheap check recursions poll.
func (rc *runControl) stopped() bool { return rc.stop.Load() }

// halted additionally polls the context; drivers call it once per top-level
// branch. Observing a done context latches stop so in-flight recursions of
// other workers unwind too.
func (rc *runControl) halted() bool {
	if rc.stop.Load() {
		return true
	}
	select {
	case <-rc.done:
		rc.cancelled.Store(true)
		rc.stop.Store(true)
		return true
	default:
		return false
	}
}

// take consumes one clique from the budget; false means the clique must not
// be counted or delivered.
func (rc *runControl) take() bool {
	if !rc.limited {
		return true
	}
	if rc.budget.Add(-1) < 0 {
		rc.stop.Store(true)
		return false
	}
	return true
}

// err translates the final control state into the query's error: a wrapped
// context error when a cancellation or deadline was observed mid-run,
// ErrStopped for visitor- or budget-initiated stops, nil for complete runs
// (even if the context happens to expire between the last branch and this
// call).
func (rc *runControl) err() error {
	if rc.cancelled.Load() {
		return fmt.Errorf("core: enumeration interrupted: %w", rc.ctx.Err())
	}
	if rc.stop.Load() {
		return ErrStopped
	}
	return nil
}
