package core

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"github.com/graphmining/hbbmc/internal/gen"
)

func TestRunControlBudget(t *testing.T) {
	rc := newRunControl(context.Background(), Options{MaxCliques: 3})
	for i := 0; i < 3; i++ {
		if !rc.take() {
			t.Fatalf("take %d refused within budget", i)
		}
	}
	if rc.stopped() {
		t.Fatal("stop latched before the budget was exceeded")
	}
	if rc.take() {
		t.Fatal("take succeeded beyond the budget")
	}
	if !rc.stopped() {
		t.Fatal("exhausted budget must latch the stop flag")
	}
	if err := rc.err(); !errors.Is(err, ErrStopped) {
		t.Fatalf("err() = %v, want ErrStopped", err)
	}
}

func TestRunControlUnlimited(t *testing.T) {
	rc := newRunControl(context.Background(), Options{})
	for i := 0; i < 1000; i++ {
		if !rc.take() {
			t.Fatal("unlimited control refused a clique")
		}
	}
	if rc.halted() || rc.err() != nil {
		t.Fatal("unlimited, uncancelled control reported a stop")
	}
}

func TestRunControlCancelLatches(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rc := newRunControl(ctx, Options{})
	if rc.halted() {
		t.Fatal("halted before cancellation")
	}
	cancel()
	if !rc.halted() {
		t.Fatal("halted() missed the cancellation")
	}
	if !rc.stopped() {
		t.Fatal("observing a done context must latch stop for the recursions")
	}
	if err := rc.err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err() = %v, want wrapped context.Canceled", err)
	}
}

// TestRunControlLateCancelNotMisreported pins err() to what the run
// actually observed: a context expiring after the work finished (or after
// a budget stop) must not repaint the outcome as an interruption.
func TestRunControlLateCancelNotMisreported(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rc := newRunControl(ctx, Options{})
	cancel() // cancellation never observed by halted()
	if err := rc.err(); err != nil {
		t.Fatalf("unobserved late cancel reported %v, want nil (complete run)", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	rc2 := newRunControl(ctx2, Options{MaxCliques: 1})
	rc2.take()
	rc2.take() // exhausts the budget and latches stop
	cancel2()
	if err := rc2.err(); !errors.Is(err, ErrStopped) {
		t.Fatalf("budget stop with late cancel reported %v, want ErrStopped", err)
	}
}

func TestSessionValidatesLikeOneShot(t *testing.T) {
	g := gen.ER(100, 400, 1)
	if _, err := NewSession(g, Options{Algorithm: HBBMC, ET: 9}); err == nil {
		t.Error("invalid ET must fail at session construction")
	}
	if _, err := NewSession(g, Options{Algorithm: HBBMC, MaxCliques: -1}); err == nil {
		t.Error("negative MaxCliques must fail at session construction")
	}
	if _, err := NewSession(g, Options{Algorithm: HBBMC, Workers: -2}); err == nil {
		t.Error("Workers below UseAllCores must fail at session construction")
	}
	if _, err := NewSession(g, Options{Algorithm: BK, MaxWholeGraphVertices: 10}); err == nil {
		t.Error("oversized whole-graph run must fail at session construction")
	}
}

// TestSessionClampRecordsFallback pins the observability contract: a
// parallel request that GOMAXPROCS clamps down to one worker must say so
// in Stats.ParallelFallback, exactly like the legacy entry point does.
func TestSessionClampRecordsFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	g := gen.ER(200, 800, 2)
	for _, workers := range []int{8, UseAllCores} {
		s, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3, GR: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := s.Enumerate(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Workers != 1 || stats.ParallelFallback == "" {
			t.Fatalf("Workers=%d on 1 proc: Workers=%d ParallelFallback=%q, want recorded sequential fallback",
				workers, stats.Workers, stats.ParallelFallback)
		}
	}
	s, err := NewSession(g, Options{Algorithm: HBBMC, ET: 3, GR: true})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Enumerate(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParallelFallback != "" {
		t.Fatalf("sequential-by-default query recorded fallback %q", stats.ParallelFallback)
	}
}

func TestSessionQueriesMatchLegacyDrivers(t *testing.T) {
	g := gen.NoisyCliques(200, 16, 7, 400, 5)
	for _, opts := range []Options{
		Defaults(),
		{Algorithm: BKDegen},
		{Algorithm: EBBMC, ET: 3},
		{Algorithm: HBBMC, SwitchDepth: 2, ET: 3, GR: true},
	} {
		want, _, err := Count(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if n, _, err := s.Count(context.Background()); err != nil || n != want {
			t.Fatalf("%v: session counted %d (err %v), legacy %d", opts.Algorithm, n, err, want)
		}
		cliques, stats, err := s.Collect(context.Background())
		if err != nil || int64(len(cliques)) != want || stats.Cliques != want {
			t.Fatalf("%v: session collected %d (stats %d, err %v), legacy %d",
				opts.Algorithm, len(cliques), stats.Cliques, err, want)
		}
	}
}
