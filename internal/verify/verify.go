// Package verify provides independent reference implementations and
// clique-set checking utilities used by the test suites of every other
// package. The reference enumerator is deliberately written in a different
// style (sorted-slice sets, no bit tricks, no orderings) from the optimised
// engines in internal/core so that agreement between the two is meaningful.
package verify

import (
	"fmt"
	"sort"

	"github.com/graphmining/hbbmc/internal/graph"
)

// MaximalCliques enumerates all maximal cliques of g with a plain
// Bron–Kerbosch recursion using Tomita pivoting over sorted-slice sets.
// Exponential in the worst case; intended for tests and small graphs.
func MaximalCliques(g *graph.Graph) [][]int32 {
	n := g.NumVertices()
	C := make([]int32, n)
	for i := range C {
		C[i] = int32(i)
	}
	var out [][]int32
	var S []int32
	bk(g, S, C, nil, &out)
	return out
}

func bk(g *graph.Graph, S, C, X []int32, out *[][]int32) {
	if len(C) == 0 && len(X) == 0 {
		*out = append(*out, append([]int32(nil), S...))
		return
	}
	// Tomita pivot: u in C ∪ X maximising |N(u) ∩ C|.
	var pivot int32 = -1
	best := -1
	for _, u := range C {
		if c := countIntersect(g.Neighbors(u), C); c > best {
			best, pivot = c, u
		}
	}
	for _, u := range X {
		if c := countIntersect(g.Neighbors(u), C); c > best {
			best, pivot = c, u
		}
	}
	branch := subtractSorted(C, g.Neighbors(pivot))
	for _, v := range branch {
		newC := intersectSorted(C, g.Neighbors(v))
		newX := intersectSorted(X, g.Neighbors(v))
		bk(g, append(S, v), newC, newX, out)
		C = deleteSorted(C, v)
		X = insertSorted(X, v)
	}
}

func countIntersect(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

func intersectSorted(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func subtractSorted(a, b []int32) []int32 {
	var out []int32
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

func deleteSorted(a []int32, x int32) []int32 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	if i < len(a) && a[i] == x {
		out := make([]int32, 0, len(a)-1)
		out = append(out, a[:i]...)
		return append(out, a[i+1:]...)
	}
	return a
}

func insertSorted(a []int32, x int32) []int32 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= x })
	out := make([]int32, 0, len(a)+1)
	out = append(out, a[:i]...)
	out = append(out, x)
	return append(out, a[i:]...)
}

// BruteForceMaximalCliques enumerates maximal cliques by subset search.
// Only usable for graphs with at most ~20 vertices.
func BruteForceMaximalCliques(g *graph.Graph) [][]int32 {
	n := g.NumVertices()
	if n > 22 {
		panic(fmt.Sprintf("verify: brute force limited to 22 vertices, got %d", n))
	}
	isClique := func(mask uint32) bool {
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			for j := i + 1; j < n; j++ {
				if mask&(1<<j) != 0 && !g.HasEdge(int32(i), int32(j)) {
					return false
				}
			}
		}
		return true
	}
	var out [][]int32
	for mask := uint32(1); mask < 1<<n; mask++ {
		if !isClique(mask) {
			continue
		}
		maximal := true
		for j := 0; j < n; j++ {
			if mask&(1<<j) == 0 && isClique(mask|1<<j) {
				maximal = false
				break
			}
		}
		if !maximal {
			continue
		}
		var c []int32
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				c = append(c, int32(i))
			}
		}
		out = append(out, c)
	}
	return out
}

// Canonicalize sorts each clique ascending and the clique list
// lexicographically, returning a fresh slice.
func Canonicalize(cliques [][]int32) [][]int32 {
	out := make([][]int32, len(cliques))
	for i, c := range cliques {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		out[i] = cc
	}
	sort.Slice(out, func(a, b int) bool { return lessSlice(out[a], out[b]) })
	return out
}

func lessSlice(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Diff compares two clique sets up to ordering. It returns "" when they are
// equal and a human-readable description of the first difference otherwise.
func Diff(got, want [][]int32) string {
	cg, cw := Canonicalize(got), Canonicalize(want)
	if len(cg) != len(cw) {
		return fmt.Sprintf("clique count mismatch: got %d, want %d\ngot:  %v\nwant: %v",
			len(cg), len(cw), preview(cg), preview(cw))
	}
	for i := range cg {
		if !equalSlice(cg[i], cw[i]) {
			return fmt.Sprintf("clique %d mismatch: got %v, want %v", i, cg[i], cw[i])
		}
	}
	return ""
}

func preview(cs [][]int32) [][]int32 {
	if len(cs) > 12 {
		return cs[:12]
	}
	return cs
}

func equalSlice(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// CheckAllMaximal validates that cliques is exactly a set of distinct
// maximal cliques of g (each member is a clique, each is maximal, and there
// are no duplicates). It does NOT check completeness; combine with Diff
// against a reference for that.
func CheckAllMaximal(g *graph.Graph, cliques [][]int32) error {
	seen := make(map[string]bool, len(cliques))
	for _, c := range cliques {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(a, b int) bool { return cc[a] < cc[b] })
		key := fmt.Sprint(cc)
		if seen[key] {
			return fmt.Errorf("duplicate clique %v", cc)
		}
		seen[key] = true
		for i := range cc {
			if i > 0 && cc[i] == cc[i-1] {
				return fmt.Errorf("repeated vertex in clique %v", cc)
			}
		}
		if !g.IsClique(cc) {
			return fmt.Errorf("set %v is not a clique", cc)
		}
		if ext := findExtension(g, cc); ext >= 0 {
			return fmt.Errorf("clique %v is not maximal: vertex %d extends it", cc, ext)
		}
	}
	return nil
}

func findExtension(g *graph.Graph, c []int32) int32 {
	if len(c) == 0 {
		if g.NumVertices() > 0 {
			return 0
		}
		return -1
	}
	min := c[0]
	for _, v := range c[1:] {
		if g.Degree(v) < g.Degree(min) {
			min = v
		}
	}
	for _, z := range g.Neighbors(min) {
		inC := false
		for _, u := range c {
			if u == z {
				inC = true
				break
			}
		}
		if inC {
			continue
		}
		ok := true
		for _, u := range c {
			if u != min && !g.HasEdge(z, u) {
				ok = false
				break
			}
		}
		if ok {
			return z
		}
	}
	return -1
}
