package verify

import (
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.MustBuild()
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

// moonMoser builds the complete 3-partite graph K_{3,3,...}: s parts of size
// 3, which has exactly 3^s maximal cliques.
func moonMoser(s int) *graph.Graph {
	n := 3 * s
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i/3 != j/3 {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.MustBuild()
}

func TestMaximalCliquesKnownCounts(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.NewBuilder(0).MustBuild(), 1}, // the empty clique
		{"isolated3", graph.NewBuilder(3).MustBuild(), 3},
		{"K4", complete(4), 1},
		{"moonmoser2", moonMoser(2), 9},
		{"moonmoser3", moonMoser(3), 27},
	}
	for _, c := range cases {
		got := MaximalCliques(c.g)
		if len(got) != c.want {
			t.Errorf("%s: %d cliques, want %d", c.name, len(got), c.want)
		}
		if c.g.NumVertices() > 0 {
			if err := CheckAllMaximal(c.g, got); err != nil {
				t.Errorf("%s: %v", c.name, err)
			}
		}
	}
}

func TestReferenceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(12)
		g := randomGraph(rng, n, rng.Intn(3*n))
		got := MaximalCliques(g)
		want := BruteForceMaximalCliques(g)
		if d := Diff(got, want); d != "" {
			t.Fatalf("iter %d (n=%d m=%d): %s", iter, n, g.NumEdges(), d)
		}
	}
}

func TestDiff(t *testing.T) {
	a := [][]int32{{2, 1}, {3}}
	b := [][]int32{{1, 2}, {3}}
	if d := Diff(a, b); d != "" {
		t.Errorf("order-insensitive compare failed: %s", d)
	}
	if d := Diff(a, [][]int32{{1, 2}}); d == "" {
		t.Error("count mismatch not detected")
	}
	if d := Diff(a, [][]int32{{1, 2}, {4}}); d == "" {
		t.Error("content mismatch not detected")
	}
}

func TestCheckAllMaximalCatchesErrors(t *testing.T) {
	g := complete(3) // triangle
	if err := CheckAllMaximal(g, [][]int32{{0, 1, 2}}); err != nil {
		t.Errorf("valid clique flagged: %v", err)
	}
	if err := CheckAllMaximal(g, [][]int32{{0, 1}}); err == nil {
		t.Error("non-maximal clique not detected")
	}
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g2 := b.MustBuild()
	if err := CheckAllMaximal(g2, [][]int32{{0, 1, 2}}); err == nil {
		t.Error("non-clique not detected")
	}
	if err := CheckAllMaximal(g2, [][]int32{{0, 1}, {1, 0}}); err == nil {
		t.Error("duplicate not detected")
	}
	if err := CheckAllMaximal(g2, [][]int32{{0, 0, 1}}); err == nil {
		t.Error("repeated vertex not detected")
	}
}

func TestCanonicalize(t *testing.T) {
	in := [][]int32{{3, 1}, {2}, {1, 0}}
	out := Canonicalize(in)
	if len(out) != 3 || out[0][0] != 0 || out[1][0] != 1 || out[2][0] != 2 {
		t.Errorf("Canonicalize = %v", out)
	}
	// Input must be untouched.
	if in[0][0] != 3 {
		t.Error("Canonicalize mutated its input")
	}
}

func TestBruteForcePanicsOnLargeInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for oversized brute force input")
		}
	}()
	BruteForceMaximalCliques(graph.NewBuilder(30).MustBuild())
}
