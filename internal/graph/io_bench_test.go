package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// The ingestion benchmarks contrast the three ways a graph enters the
// process on the same ≥1M-edge input:
//
//	BenchmarkParseText     — LoadEdgeList, the line-by-line text parser
//	BenchmarkParseParallel — ParseEdgeList on 1/2/4/8 workers
//	BenchmarkParseBinary   — LoadBinary on the .hbg snapshot
//
// Acceptance targets (ISSUE 3): parallel/8 ≥ 2× over text, binary ≥ 5× over
// both.

const (
	benchVertices = 200_000
	benchEdges    = 1_000_000
)

var benchInput struct {
	once sync.Once
	text []byte // edge-list rendering
	hbg  []byte // binary snapshot of the parsed graph
}

func benchData(b *testing.B) ([]byte, []byte) {
	benchInput.once.Do(func() {
		rng := rand.New(rand.NewSource(1234))
		var buf bytes.Buffer
		buf.Grow(benchEdges * 14)
		for i := 0; i < benchEdges; i++ {
			fmt.Fprintf(&buf, "%d %d\n", rng.Intn(benchVertices), rng.Intn(benchVertices))
		}
		benchInput.text = buf.Bytes()
		g, err := ParseEdgeList(benchInput.text, 0)
		if err != nil {
			panic(err)
		}
		var bin bytes.Buffer
		if err := g.SaveBinary(&bin); err != nil {
			panic(err)
		}
		benchInput.hbg = bin.Bytes()
	})
	return benchInput.text, benchInput.hbg
}

func BenchmarkParseText(b *testing.B) {
	text, _ := benchData(b)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LoadEdgeList(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseParallel(b *testing.B) {
	text, _ := benchData(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(text)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ParseEdgeList(text, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParseBinary(b *testing.B) {
	_, hbg := benchData(b)
	b.SetBytes(int64(len(hbg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LoadBinary(bytes.NewReader(hbg)); err != nil {
			b.Fatal(err)
		}
	}
}
