package graph

import (
	"bytes"
	"fmt"
	"path/filepath"
	"slices"
	"strings"
)

// Format identifies a supported graph input format.
type Format int

const (
	// FormatAuto sniffs the format from content and file extension.
	FormatAuto Format = iota
	// FormatEdgeList is the SNAP/plain "u v" edge-list dialect ('#'/'%'
	// comments, optional ignored third column), parsed by the parallel
	// ParseEdgeList: ids are plain digit runs (no '+' sign) separated by
	// ASCII whitespace. The sequential LoadEdgeList remains available for
	// the lenient strconv-based dialect.
	FormatEdgeList
	// FormatDIMACS is the DIMACS clique/coloring format ("p edge n m").
	FormatDIMACS
	// FormatMatrixMarket is the MatrixMarket coordinate format
	// ("%%MatrixMarket matrix coordinate ...", 1-based indices).
	FormatMatrixMarket
	// FormatMETIS is the METIS/Chaco adjacency format ("n m [fmt]" header,
	// one 1-based neighbor line per vertex).
	FormatMETIS
	// FormatBinary is the .hbg binary CSR snapshot.
	FormatBinary
)

// String returns the canonical flag spelling of f.
func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatEdgeList:
		return "edgelist"
	case FormatDIMACS:
		return "dimacs"
	case FormatMatrixMarket:
		return "mtx"
	case FormatMETIS:
		return "metis"
	case FormatBinary:
		return "hbg"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// ParseFormat maps a flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return FormatAuto, nil
	case "edgelist", "el", "snap", "txt":
		return FormatEdgeList, nil
	case "dimacs", "col", "clq":
		return FormatDIMACS, nil
	case "mtx", "matrixmarket", "mm":
		return FormatMatrixMarket, nil
	case "metis", "chaco":
		return FormatMETIS, nil
	case "hbg", "binary", "bin":
		return FormatBinary, nil
	}
	return FormatAuto, fmt.Errorf("graph: unknown format %q (auto|edgelist|dimacs|mtx|metis|hbg)", s)
}

var gzipMagic = []byte{0x1f, 0x8b}

// mtxBanner is the mandatory MatrixMarket header prefix (case-insensitive).
const mtxBanner = "%%matrixmarket"

// DetectFormat sniffs the format of (already decompressed) data, using path
// as a tie-breaker for formats without a content signature. Unambiguous
// markers win: the .hbg magic, the MatrixMarket banner, DIMACS c/p/e
// records. METIS adjacency is indistinguishable from a plain edge list by
// content, so it is only detected via the .metis/.graph extension; anything
// else falls back to FormatEdgeList.
func DetectFormat(data []byte, path string) Format {
	if bytes.HasPrefix(data, []byte(hbgMagic)) {
		return FormatBinary
	}
	if len(data) >= len(mtxBanner) && strings.EqualFold(string(data[:len(mtxBanner)]), mtxBanner) {
		return FormatMatrixMarket
	}
	switch ext(path) {
	case ".hbg":
		return FormatBinary
	case ".mtx", ".mm":
		return FormatMatrixMarket
	case ".metis", ".graph", ".chaco":
		return FormatMETIS
	case ".dimacs", ".col", ".clq":
		return FormatDIMACS
	}
	// First record decides between DIMACS and an edge list: '#'/'%' comment
	// lines are skipped, a 'c'/'p'/'e' record (letter + space) is DIMACS.
	rest := data
	for len(rest) > 0 {
		var line []byte
		if nl := bytes.IndexByte(rest, '\n'); nl >= 0 {
			line, rest = rest[:nl], rest[nl+1:]
		} else {
			line, rest = rest, nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			continue
		}
		if len(line) > 1 && (line[0] == 'c' || line[0] == 'p' || line[0] == 'e') && isSpace(line[1]) {
			return FormatDIMACS
		}
		break
	}
	return FormatEdgeList
}

// ext returns the lower-cased path extension with any trailing ".gz"
// stripped, so compressed files detect as their inner format.
func ext(path string) string {
	e := strings.ToLower(filepath.Ext(path))
	if e == ".gz" {
		e = strings.ToLower(filepath.Ext(path[:len(path)-len(e)]))
	}
	return e
}

// ParseMatrixMarket parses the MatrixMarket coordinate format using up to
// workers goroutines for the entry body (0 = all cores). The matrix must be
// square; entries are treated as undirected edges regardless of the
// declared symmetry, values (real/integer/complex) are ignored, and
// diagonal entries are dropped. The declared dimension fixes the vertex
// count even when trailing vertices are isolated.
func ParseMatrixMarket(data []byte, workers int) (*Graph, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		nl = len(data)
	}
	banner := bytes.Fields(data[:nl])
	if len(banner) < 3 || !strings.EqualFold(string(banner[0]), "%%MatrixMarket") {
		return nil, fmt.Errorf("graph: missing %%%%MatrixMarket banner")
	}
	if !strings.EqualFold(string(banner[1]), "matrix") || !strings.EqualFold(string(banner[2]), "coordinate") {
		return nil, fmt.Errorf("graph: unsupported MatrixMarket header %q (only \"matrix coordinate\")", banner[1:])
	}
	rest := data[min(nl+1, len(data)):]
	lineNo := 1
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		var line []byte
		if nl < 0 {
			line, nl = rest, len(rest)-1
		} else {
			line = rest[:nl]
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '%' {
			rest = rest[nl+1:]
			continue
		}
		// The size line: "rows cols nnz".
		f := bytes.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("graph: line %d: malformed MatrixMarket size line %q", lineNo, line)
		}
		rows, _, okR := scanID(f[0], 0)
		cols, _, okC := scanID(f[1], 0)
		nnz, _, okZ := scanID(f[2], 0)
		if !okR || !okC || !okZ {
			return nil, fmt.Errorf("graph: line %d: bad MatrixMarket size line %q", lineNo, line)
		}
		if rows != cols {
			return nil, fmt.Errorf("graph: %dx%d MatrixMarket matrix is not square (not an adjacency matrix)", rows, cols)
		}
		g, entries, err := parseEdgeBytes(rest[nl+1:], workers, 1, int(rows))
		if err != nil {
			return nil, fmt.Errorf("%v (MatrixMarket entries start at line %d)", err, lineNo+1)
		}
		if entries != int64(nnz) {
			// A count mismatch almost always means a truncated download or a
			// corrupt file; silently returning the partial graph would give
			// wrong enumeration results with no warning.
			return nil, fmt.Errorf("graph: MatrixMarket size line declares %d entries, body has %d", nnz, entries)
		}
		if nv := g.NumVertices(); nv > int(rows) {
			return nil, fmt.Errorf("graph: MatrixMarket entry index %d exceeds declared dimension %d", nv, rows)
		}
		return g, nil
	}
	return nil, fmt.Errorf("graph: MatrixMarket input has no size line")
}

// ParseMETIS parses the METIS/Chaco adjacency format: a "n m [fmt] [ncon]"
// header, then one line per vertex listing its 1-based neighbors. The fmt
// code's digits (vertex sizes / vertex weights / edge weights) are honored
// and all weights are skipped; '%' lines are comments and a blank line is
// an isolated vertex.
func ParseMETIS(data []byte) (*Graph, error) {
	var (
		n, m, fmtCode, ncon int
		haveHeader          bool
		vertex              int
		keys                []uint64
		lineNo              int
	)
	for i := 0; i < len(data); {
		var line []byte
		if nl := bytes.IndexByte(data[i:], '\n'); nl >= 0 {
			line = data[i : i+nl]
			i += nl + 1
		} else {
			line = data[i:]
			i = len(data)
		}
		lineNo++
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 && trimmed[0] == '%' {
			continue
		}
		if !haveHeader {
			if len(trimmed) == 0 {
				continue
			}
			f := bytes.Fields(trimmed)
			if len(f) < 2 || len(f) > 4 {
				return nil, fmt.Errorf("graph: line %d: malformed METIS header %q (want \"n m [fmt] [ncon]\")", lineNo, clip(trimmed))
			}
			vals := make([]int, len(f))
			for k, fld := range f {
				v, next, ok := scanID(fld, 0)
				if !ok || next != len(fld) {
					return nil, fmt.Errorf("graph: line %d: bad METIS header value %q", lineNo, fld)
				}
				vals[k] = int(v)
			}
			n, m = vals[0], vals[1]
			if len(vals) > 2 {
				fmtCode = vals[2]
			}
			if len(vals) > 3 {
				ncon = vals[3]
			}
			if fmtCode > 111 || fmtCode%10 > 1 || (fmtCode/10)%10 > 1 {
				return nil, fmt.Errorf("graph: line %d: bad METIS fmt code %03d", lineNo, fmtCode)
			}
			if ncon == 0 && (fmtCode/10)%10 == 1 {
				ncon = 1
			}
			haveHeader = true
			continue
		}
		if vertex >= n {
			if len(trimmed) == 0 {
				continue
			}
			return nil, fmt.Errorf("graph: line %d: adjacency line beyond the %d declared vertices", lineNo, n)
		}
		v := int32(vertex)
		vertex++
		// Token layout per line: [size] [ncon weights] nb [w] nb [w] ...
		skip := 0
		if fmtCode/100 == 1 {
			skip++
		}
		if (fmtCode/10)%10 == 1 {
			skip += ncon
		}
		edgeWeights := fmtCode%10 == 1
		tok := 0
		for j := 0; j < len(trimmed); {
			for j < len(trimmed) && isSpace(trimmed[j]) {
				j++
			}
			if j >= len(trimmed) {
				break
			}
			val, next, ok := scanID(trimmed, j)
			if !ok || (next < len(trimmed) && !isSpace(trimmed[next])) {
				return nil, fmt.Errorf("graph: line %d: bad METIS value in %q", lineNo, clip(trimmed))
			}
			j = next
			defTok := tok
			tok++
			if defTok < skip {
				continue // vertex size / vertex weights
			}
			if edgeWeights && (defTok-skip)%2 == 1 {
				continue // edge weight
			}
			if val < 1 || int(val) > n {
				return nil, fmt.Errorf("graph: line %d: METIS neighbor %d out of range 1..%d", lineNo, val, n)
			}
			w := val - 1
			if w == v {
				continue
			}
			a, b := v, w
			if a > b {
				a, b = b, a
			}
			keys = append(keys, uint64(a)<<32|uint64(uint32(b)))
		}
	}
	if !haveHeader {
		return nil, fmt.Errorf("graph: METIS input has no header line")
	}
	if vertex < n {
		return nil, fmt.Errorf("graph: METIS input has %d adjacency lines, header declares %d vertices", vertex, n)
	}
	slices.Sort(keys)
	keys = slices.Compact(keys)
	if m > 0 && len(keys) != m {
		// The header's edge count is advisory in many writers; only a hard
		// mismatch against distinct undirected edges is worth flagging.
		return nil, fmt.Errorf("graph: METIS header declares %d edges, adjacency lists encode %d", m, len(keys))
	}
	return fromSortedKeys(n, keys), nil
}
