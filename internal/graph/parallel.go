package graph

import (
	"bytes"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
)

// Parallel edge-list ingestion. The input is split into byte-range shards at
// line boundaries; every shard is parsed on its own goroutine with the
// allocation-free scanID scanner into packed (u,v) edge keys, the per-shard
// key slices are sorted in parallel and merged, and the CSR is materialised
// directly from the sorted unique keys. The result is bit-for-bit identical
// to the Builder/FromEdges path: edge ids are the lexicographic rank of the
// normalised (min,max) pair in both.

// minShardBytes keeps tiny inputs on a single goroutine; below this size the
// fan-out costs more than the parse.
const minShardBytes = 64 << 10

// ParseEdgeList parses a whitespace-separated "u v" edge list held in
// memory, using up to workers goroutines (0 = all cores). It accepts the
// same dialect as LoadEdgeList — '#'/'%' comments, blank lines, a third
// column ignored — except that vertex ids must be plain digit runs (no '+'
// sign) and field separators must be ASCII whitespace. Lines may be
// arbitrarily long.
func ParseEdgeList(data []byte, workers int) (*Graph, error) {
	g, _, err := parseEdgeBytes(data, workers, 0, 0)
	return g, err
}

// shardResult is one shard's parse output: packed edge keys, the largest
// vertex id, the number of lines consumed and of data lines among them,
// and the shard-local error with its shard-local line number (made global
// once all shards finish).
type shardResult struct {
	keys    []uint64
	maxID   int32
	lines   int
	entries int64
	err     error
	errLine int
}

// parseEdgeBytes is the shared core of ParseEdgeList and the MatrixMarket
// body parser: base is the id origin (0 or 1; 1-based inputs reject id 0)
// and minN a lower bound on the vertex count (declared header sizes). The
// second result is the number of data lines parsed — entries before
// self-loop dropping and deduplication — which MatrixMarket checks against
// its declared nnz.
func parseEdgeBytes(data []byte, workers, base, minN int) (*Graph, int64, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := len(data)/minShardBytes + 1; workers > max {
		workers = max
	}
	bounds := shardBounds(data, workers)
	results := make([]shardResult, len(bounds)-1)
	var wg sync.WaitGroup
	for i := 0; i < len(results); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = parseShard(data[bounds[i]:bounds[i+1]], base)
			slices.Sort(results[i].keys)
		}(i)
	}
	wg.Wait()

	line := 0
	maxID := int32(-1)
	entries := int64(0)
	lists := make([][]uint64, 0, len(results))
	for _, res := range results {
		if res.err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: %v", line+res.errLine, res.err)
		}
		line += res.lines
		entries += res.entries
		if res.maxID > maxID {
			maxID = res.maxID
		}
		if len(res.keys) > 0 {
			lists = append(lists, res.keys)
		}
	}
	n := int(maxID) + 1
	if n < minN {
		n = minN
	}
	keys := slices.Compact(mergeKeyLists(lists))
	if len(keys) > math.MaxInt32 {
		return nil, 0, fmt.Errorf("graph: %d edges exceed the int32 edge-id space", len(keys))
	}
	return fromSortedKeys(n, keys), entries, nil
}

// shardBounds cuts data into at most shards byte ranges, each ending just
// past a '\n' (the last ends at len(data)). Ranges may be empty.
func shardBounds(data []byte, shards int) []int {
	bounds := make([]int, 1, shards+1)
	for i := 1; i < shards; i++ {
		pos := len(data) * i / shards
		if pos <= bounds[len(bounds)-1] {
			continue
		}
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			break
		}
		bounds = append(bounds, pos+nl+1)
	}
	return append(bounds, len(data))
}

// parseShard parses one byte range of complete lines into packed edge keys.
func parseShard(data []byte, base int) shardResult {
	res := shardResult{maxID: -1}
	fail := func(format string, args ...any) shardResult {
		res.err = fmt.Errorf(format, args...)
		res.errLine = res.lines
		return res
	}
	for i := 0; i < len(data); {
		var line []byte
		if nl := bytes.IndexByte(data[i:], '\n'); nl >= 0 {
			line = data[i : i+nl]
			i += nl + 1
		} else {
			line = data[i:]
			i = len(data)
		}
		res.lines++

		j := 0
		for j < len(line) && isSpace(line[j]) {
			j++
		}
		if j == len(line) || line[j] == '#' || line[j] == '%' {
			continue
		}
		u, j, ok := scanID(line, j)
		if !ok || (j < len(line) && !isSpace(line[j])) {
			return fail("bad vertex id in %q", clip(line))
		}
		for j < len(line) && isSpace(line[j]) {
			j++
		}
		v, j, ok := scanID(line, j)
		if !ok || (j < len(line) && !isSpace(line[j])) {
			return fail("expected two vertex ids, got %q", clip(line))
		}
		// Anything after the second id (weights, timestamps) is ignored,
		// matching LoadEdgeList.
		res.entries++
		if base == 1 {
			if u == 0 || v == 0 {
				return fail("vertex id 0 in 1-based input %q", clip(line))
			}
			u, v = u-1, v-1
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if v > res.maxID {
			res.maxID = v
		}
		res.keys = append(res.keys, uint64(u)<<32|uint64(uint32(v)))
	}
	return res
}

// clip bounds a line echoed in an error message.
func clip(line []byte) string {
	const max = 60
	if len(line) > max {
		return string(line[:max]) + "..."
	}
	return string(line)
}

// mergeKeyLists merges sorted key slices into one sorted slice by pairwise
// parallel merge rounds.
func mergeKeyLists(lists [][]uint64) []uint64 {
	for len(lists) > 1 {
		next := make([][]uint64, 0, (len(lists)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(lists); i += 2 {
			dst := make([]uint64, len(lists[i])+len(lists[i+1]))
			next = append(next, dst)
			wg.Add(1)
			go func(a, b, dst []uint64) {
				defer wg.Done()
				mergeSorted(a, b, dst)
			}(lists[i], lists[i+1], dst)
		}
		if len(lists)%2 == 1 {
			next = append(next, lists[len(lists)-1])
		}
		wg.Wait()
		lists = next
	}
	if len(lists) == 0 {
		return nil
	}
	return lists[0]
}

func mergeSorted(a, b, dst []uint64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// fromSortedKeys materialises the CSR from sorted unique packed edge keys
// (u<<32|v with u < v < n). Scattering in global lexicographic key order
// leaves every adjacency slice sorted — for vertex x, edges (u,x) with u<x
// all precede edges (x,w) and both runs arrive in ascending order — so no
// per-vertex sort is needed, and edge id i is the i-th key, exactly the rank
// FromEdges assigns.
func fromSortedKeys(n int, keys []uint64) *Graph {
	m := len(keys)
	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]int32, 2*m),
		eids:    make([]int32, 2*m),
		srcs:    make([]int32, m),
		dsts:    make([]int32, m),
	}
	deg := make([]int32, n)
	for _, k := range keys {
		deg[k>>32]++
		deg[uint32(k)]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + int64(deg[v])
	}
	cur := make([]int64, n)
	copy(cur, g.offsets[:n])
	for i, k := range keys {
		u, v := int32(k>>32), int32(uint32(k))
		g.srcs[i], g.dsts[i] = u, v
		g.adj[cur[u]], g.eids[cur[u]] = v, int32(i)
		cur[u]++
		g.adj[cur[v]], g.eids[cur[v]] = u, int32(i)
		cur[v]++
	}
	return g
}
