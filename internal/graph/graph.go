// Package graph provides the immutable undirected-graph substrate shared by
// every algorithm in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form with sorted
// adjacency, int32 vertex identifiers and a canonical undirected edge
// numbering (edge (u,v), u < v, carries one id used from both directions).
// The representation is immutable after construction; the enumeration
// engines build their own per-branch structures on top of it.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form.
type Graph struct {
	offsets []int64 // len n+1; offsets[v]..offsets[v+1] index adj/eids
	adj     []int32 // sorted neighbor lists, 2m entries
	eids    []int32 // undirected edge id parallel to adj
	srcs    []int32 // edge id -> smaller endpoint
	dsts    []int32 // edge id -> larger endpoint
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns |E| (undirected edges).
func (g *Graph) NumEdges() int { return len(g.srcs) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the sorted neighbor list of v. The returned slice aliases
// internal storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// IncidentEdgeIDs returns, parallel to Neighbors(v), the undirected edge ids
// of v's incident edges. The slice aliases internal storage.
func (g *Graph) IncidentEdgeIDs(v int32) []int32 {
	return g.eids[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge (u,v) exists.
func (g *Graph) HasEdge(u, v int32) bool {
	return g.EdgeID(u, v) >= 0
}

// EdgeID returns the undirected edge id of (u,v), or -1 if the edge does not
// exist or u == v.
func (g *Graph) EdgeID(u, v int32) int32 {
	if u == v {
		return -1
	}
	// Search the shorter adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	if i < len(nb) && nb[i] == v {
		return g.eids[g.offsets[u]+int64(i)]
	}
	return -1
}

// EdgeEndpoints returns the endpoints (u,v), u < v, of edge id e.
func (g *Graph) EdgeEndpoints(e int32) (int32, int32) {
	return g.srcs[e], g.dsts[e]
}

// Density returns the paper's edge density ρ = m/n (0 for the empty graph).
func (g *Graph) Density() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumVertices())
}

// MaxDegree returns the largest vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// CommonNeighbors appends the sorted common neighborhood of u and v to dst
// and returns it.
func (g *Graph) CommonNeighbors(u, v int32, dst []int32) []int32 {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IsClique reports whether every pair of the given vertices is adjacent. The
// vertices must be distinct.
func (g *Graph) IsClique(vs []int32) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// Equal reports whether g and h have identical representations: the same
// CSR offsets, adjacency, edge ids and edge endpoint arrays. Since the
// representation is canonical (sorted adjacency, lexicographic edge ids),
// equal representations mean equal graphs and vice versa; the loaders'
// round-trip tests rely on this being exact.
func (g *Graph) Equal(h *Graph) bool {
	return slices.Equal(g.offsets, h.offsets) &&
		slices.Equal(g.adj, h.adj) &&
		slices.Equal(g.eids, h.eids) &&
		slices.Equal(g.srcs, h.srcs) &&
		slices.Equal(g.dsts, h.dsts)
}

// MemoryFootprint returns the number of bytes held by the CSR arrays:
// offsets, adjacency, edge ids and the edge endpoint tables. It is the
// retained-size estimate used by cache budgets (slice headers and the
// struct itself are negligible and excluded).
func (g *Graph) MemoryFootprint() int64 {
	return int64(len(g.offsets))*8 +
		int64(len(g.adj)+len(g.eids)+len(g.srcs)+len(g.dsts))*4
}

// Validate checks internal invariants (sorted unique adjacency, symmetric
// edges, consistent edge ids). It exists for tests and loaders.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	for v := int32(0); v < int32(n); v++ {
		nb := g.Neighbors(v)
		ids := g.IncidentEdgeIDs(v)
		for i, w := range nb {
			if w < 0 || int(w) >= n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
			}
			if w == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && nb[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", v)
			}
			e := ids[i]
			if e < 0 || int(e) >= g.NumEdges() {
				return fmt.Errorf("graph: edge id %d out of range at (%d,%d)", e, v, w)
			}
			a, b := g.EdgeEndpoints(e)
			lo, hi := v, w
			if lo > hi {
				lo, hi = hi, lo
			}
			if a != lo || b != hi {
				return fmt.Errorf("graph: edge id %d maps to (%d,%d), expected (%d,%d)", e, a, b, lo, hi)
			}
		}
	}
	return nil
}
