package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomEdgeText renders a random multigraph (duplicates, both orientations,
// self-loops, comments, padding, a weight column) as edge-list text.
func randomEdgeText(rng *rand.Rand, n, lines int) []byte {
	var buf bytes.Buffer
	for i := 0; i < lines; i++ {
		switch rng.Intn(10) {
		case 0:
			fmt.Fprintf(&buf, "# comment %d\n", i)
		case 1:
			buf.WriteString("\n")
		case 2:
			fmt.Fprintf(&buf, "  %% indented comment\n")
		case 3:
			fmt.Fprintf(&buf, "\t%d\t %d \t0.%d\n", rng.Intn(n), rng.Intn(n), rng.Intn(100))
		default:
			fmt.Fprintf(&buf, "%d %d\n", rng.Intn(n), rng.Intn(n))
		}
	}
	return buf.Bytes()
}

// TestParseEdgeListMatchesSequential is the core property: the parallel
// parser and the line-by-line loader produce identical CSR representations,
// at every worker count, with and without a trailing newline.
func TestParseEdgeListMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		text := randomEdgeText(rng, 1+rng.Intn(300), rng.Intn(2000))
		if trial%2 == 0 {
			text = bytes.TrimSuffix(text, []byte("\n"))
		}
		want, err := LoadEdgeList(bytes.NewReader(text))
		if err != nil {
			t.Fatalf("trial %d: sequential parse failed: %v", trial, err)
		}
		for _, workers := range []int{1, 2, 3, 8, 17} {
			got, err := ParseEdgeList(text, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d workers %d: parallel parse differs from sequential", trial, workers)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
		}
	}
}

func TestParseEdgeListEmptyAndTiny(t *testing.T) {
	for _, text := range []string{"", "\n", "# only comments\n% more\n", "0 0\n"} {
		g, err := ParseEdgeList([]byte(text), 4)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if g.NumEdges() != 0 {
			t.Fatalf("%q: expected no edges, got %d", text, g.NumEdges())
		}
	}
	g, err := ParseEdgeList([]byte("5 5\n5 6"), 4)
	if err != nil || g.NumVertices() != 7 || g.NumEdges() != 1 {
		t.Fatalf("self-loop + edge: g=%v err=%v", g, err)
	}
}

func TestParseEdgeListErrors(t *testing.T) {
	cases := []struct {
		in   string
		line int // expected global line number in the message
	}{
		{"0 1\n0 x\n", 2},
		{"0 1\n2\n", 2},
		{"-1 2\n", 1},
		{"0 1\n1 2\n3 99999999999\n", 3},
		{"12x 3\n", 1},
		{"1 2y 3\n", 1},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			_, err := ParseEdgeList([]byte(c.in), workers)
			if err == nil {
				t.Fatalf("%q workers %d: expected error", c.in, workers)
			}
			if want := fmt.Sprintf("line %d", c.line); !strings.Contains(err.Error(), want) {
				t.Fatalf("%q: error %q does not name %s", c.in, err, want)
			}
		}
	}
}

// TestParseEdgeListLongLines is the regression test for the former 1 MiB
// bufio.Scanner cap: multi-MiB comment and padded edge lines must parse in
// both the sequential and the parallel parser.
func TestParseEdgeListLongLines(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("0 1\n")
	buf.WriteString("# " + strings.Repeat("x", 3<<20) + "\n")
	buf.WriteString("1 2" + strings.Repeat(" ", 2<<20) + "7\n") // huge padded weight column
	buf.WriteString("2 3\n")
	text := buf.Bytes()

	seq, err := LoadEdgeList(bytes.NewReader(text))
	if err != nil {
		t.Fatalf("LoadEdgeList still fails on long lines: %v", err)
	}
	if seq.NumEdges() != 3 {
		t.Fatalf("expected 3 edges, got %d", seq.NumEdges())
	}
	par, err := ParseEdgeList(text, 4)
	if err != nil {
		t.Fatalf("ParseEdgeList fails on long lines: %v", err)
	}
	if !par.Equal(seq) {
		t.Fatal("long-line parse differs between sequential and parallel")
	}
}

func TestShardBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		data := randomEdgeText(rng, 50, rng.Intn(200))
		for _, shards := range []int{1, 2, 5, 16} {
			bounds := shardBounds(data, shards)
			if bounds[0] != 0 || bounds[len(bounds)-1] != len(data) {
				t.Fatalf("bounds %v do not cover [0,%d]", bounds, len(data))
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] < bounds[i-1] {
					t.Fatalf("bounds %v not monotone", bounds)
				}
				// Every interior boundary sits just past a newline.
				if i < len(bounds)-1 && bounds[i] > 0 && data[bounds[i]-1] != '\n' {
					t.Fatalf("boundary %d at %d not after a newline", i, bounds[i])
				}
			}
		}
	}
}

// TestFromSortedKeysMatchesFromEdges locks the invariant the parallel
// builder and the binary loader rely on: scattering lexicographically
// sorted unique edges yields FromEdges's exact representation.
func TestFromSortedKeysMatchesFromEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(60)
		var edges []Edge
		for i := 0; i < rng.Intn(4*n); i++ {
			edges = append(edges, Edge{int32(rng.Intn(n)), int32(rng.Intn(n))})
		}
		want, err := FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		var keys []uint64
		for _, e := range edges {
			u, v := e.U, e.V
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			k := uint64(u)<<32 | uint64(uint32(v))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		sortKeys(keys)
		got := fromSortedKeys(n, keys)
		if !got.Equal(want) {
			t.Fatalf("trial %d: fromSortedKeys differs from FromEdges", trial)
		}
	}
}

func TestMergeKeyLists(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		var all []uint64
		lists := make([][]uint64, rng.Intn(6))
		for i := range lists {
			for j := 0; j < rng.Intn(40); j++ {
				k := uint64(rng.Intn(100))
				lists[i] = append(lists[i], k)
				all = append(all, k)
			}
			sortKeys(lists[i])
		}
		sortKeys(all)
		got := mergeKeyLists(lists)
		if len(got) != len(all) {
			t.Fatalf("merge lost elements: %d vs %d", len(got), len(all))
		}
		for i := range got {
			if got[i] != all[i] {
				t.Fatalf("merge misordered at %d", i)
			}
		}
	}
}

func sortKeys(keys []uint64) {
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}
