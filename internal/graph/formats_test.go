package graph

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDetectFormat(t *testing.T) {
	hbg := snapshotBytes(t, NewBuilder(3).MustBuild())
	cases := []struct {
		data string
		path string
		want Format
	}{
		{"0 1\n1 2\n", "g.txt", FormatEdgeList},
		{"# snap comment\n0 1\n", "", FormatEdgeList},
		{"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n", "whatever.bin", FormatMatrixMarket},
		{"%%matrixmarket matrix coordinate real general\n2 2 1\n1 2 0.5\n", "", FormatMatrixMarket},
		{"c dimacs comment\np edge 3 2\ne 1 2\n", "", FormatDIMACS},
		{"e 1 2\n", "", FormatDIMACS},
		{"0 1\n", "g.col", FormatDIMACS},
		{"3 2\n2 3\n1 3\n1 2\n", "g.metis", FormatMETIS},
		{"3 2\n2 3\n1 3\n1 2\n", "g.graph", FormatMETIS},
		{"3 2\n2 3\n1 3\n1 2\n", "g.txt", FormatEdgeList}, // METIS needs the extension
		{"0 1\n", "g.mtx", FormatMatrixMarket},
		{"0 1\n", "g.mtx.gz", FormatMatrixMarket}, // .gz stripped for the hint
		{string(hbg), "g.txt", FormatBinary},      // magic beats extension
		{"", "g.hbg", FormatBinary},
	}
	for _, c := range cases {
		if got := DetectFormat([]byte(c.data), c.path); got != c.want {
			t.Errorf("DetectFormat(%.20q, %q) = %v, want %v", c.data, c.path, got, c.want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"auto": FormatAuto, "": FormatAuto,
		"edgelist": FormatEdgeList, "EL": FormatEdgeList, "snap": FormatEdgeList,
		"dimacs": FormatDIMACS,
		"mtx":    FormatMatrixMarket, "MatrixMarket": FormatMatrixMarket,
		"metis": FormatMETIS,
		"hbg":   FormatBinary, "binary": FormatBinary,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFormat("nope"); err == nil {
		t.Error("ParseFormat(nope) should fail")
	}
	// Round-trip: every format's String spelling parses back to itself.
	for _, f := range []Format{FormatAuto, FormatEdgeList, FormatDIMACS, FormatMatrixMarket, FormatMETIS, FormatBinary} {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFormat(%v.String()) = %v, %v", f, got, err)
		}
	}
}

func TestParseMatrixMarket(t *testing.T) {
	// A symmetric pattern file with comments between header and size line.
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n" +
		"% generated\n\n" +
		"5 5 4\n" +
		"2 1\n3 1\n4 3\n3 3\n" // includes one diagonal entry, dropped
	g, err := ParseMatrixMarket([]byte(in), 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d, want 5/3", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || !g.HasEdge(2, 3) {
		t.Fatal("missing expected edges")
	}

	// General real file: both orientations collapse, values ignored.
	in = "%%MatrixMarket matrix coordinate real general\n3 3 4\n1 2 0.5\n2 1 0.5\n2 3 1.25\n3 3 9\n"
	g, err = ParseMatrixMarket([]byte(in), 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d, want 3/2", g.NumVertices(), g.NumEdges())
	}

	// Declared dimension beyond the largest index keeps isolated vertices.
	g, err = ParseMatrixMarket([]byte("%%MatrixMarket matrix coordinate pattern general\n9 9 1\n1 2\n"), 1)
	if err != nil || g.NumVertices() != 9 {
		t.Fatalf("isolated tail: n=%d err=%v", g.NumVertices(), err)
	}

	for name, bad := range map[string]string{
		"no banner":                     "1 2\n",
		"array format":                  "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"not square":                    "%%MatrixMarket matrix coordinate pattern general\n3 4 1\n1 2\n",
		"no size line":                  "%%MatrixMarket matrix coordinate pattern general\n% nothing\n",
		"zero index":                    "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n0 2\n",
		"index over n":                  "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 4\n",
		"bad size line":                 "%%MatrixMarket matrix coordinate pattern general\nx y z\n",
		"truncated body (nnz mismatch)": "%%MatrixMarket matrix coordinate pattern general\n5 5 4\n1 2\n2 3\n",
		"excess body (nnz mismatch)":    "%%MatrixMarket matrix coordinate pattern general\n5 5 1\n1 2\n2 3\n",
	} {
		if _, err := ParseMatrixMarket([]byte(bad), 2); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func TestParseMETIS(t *testing.T) {
	// The METIS manual's example graph: 7 vertices, 11 edges.
	in := "% the manual's example\n7 11\n5 3 2\n1 3 4\n5 4 2 1\n2 3 6 7\n1 3 6\n5 4 7\n6 4\n"
	g, err := ParseMETIS([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 7 || g.NumEdges() != 11 {
		t.Fatalf("n=%d m=%d, want 7/11", g.NumVertices(), g.NumEdges())
	}

	// fmt=1: edge weights interleaved; fmt=11 adds one vertex weight.
	in = "3 2 1\n2 7 3 9\n1 7\n1 9\n"
	g, err = ParseMETIS([]byte(in))
	if err != nil || g.NumEdges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatalf("edge weights: g=%v err=%v", g, err)
	}
	in = "3 2 11 1\n10 2 7 3 9\n20 1 7\n30 1 9\n"
	g, err = ParseMETIS([]byte(in))
	if err != nil || g.NumEdges() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(0, 2) {
		t.Fatalf("vertex+edge weights: g=%v err=%v", g, err)
	}

	// Blank lines are isolated vertices; comments don't consume a vertex.
	in = "3 1\n2\n1\n% trailing comment\n\n"
	g, err = ParseMETIS([]byte(in))
	if err != nil || g.NumVertices() != 3 || g.NumEdges() != 1 || g.Degree(2) != 0 {
		t.Fatalf("isolated vertex: g=%v err=%v", g, err)
	}

	for name, bad := range map[string]string{
		"no header":       "",
		"header junk":     "x y\n",
		"too few lines":   "3 1\n2\n1\n",      // declares 3 vertices, has 2 lines
		"extra data line": "2 1\n2\n1\n1 2\n", // line beyond n
		"neighbor 0":      "2 1\n2\n0\n",      // ids are 1-based
		"neighbor over n": "2 1\n2\n9\n",      //
		"edge miscount":   "3 5\n2 3\n1\n1\n", // header m=5, lists 2
		"bad fmt code":    "2 1 7\n2\n1\n",    //
		"bad value":       "2 1\n2x\n1\n",     //
	} {
		if _, err := ParseMETIS([]byte(bad)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadGzip(t *testing.T) {
	text := []byte("0 1\n1 2\n2 3\n")
	want, err := ParseEdgeList(text, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Load(bytes.NewReader(gzipBytes(t, text)), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("gzip edge list differs from plain parse")
	}
	// Gzip around a binary snapshot also sniffs correctly.
	g, err = Load(bytes.NewReader(gzipBytes(t, snapshotBytes(t, want))), LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(want) {
		t.Fatal("gzip .hbg differs")
	}
	if _, err := Load(bytes.NewReader([]byte{0x1f, 0x8b, 0xff}), LoadOptions{}); err == nil {
		t.Error("corrupt gzip should fail")
	}
}

func TestLoadFileFormats(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	want, _ := ParseEdgeList([]byte("0 1\n1 2\n"), 1)

	el := write("g.txt", []byte("0 1\n1 2\n"))
	mtx := write("g.mtx", []byte("%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n2 3\n"))
	metis := write("g.metis", []byte("3 2\n2\n1 3\n2\n"))
	elgz := write("g2.txt.gz", gzipBytes(t, []byte("0 1\n1 2\n")))
	hbg := write("g.hbg", snapshotBytes(t, want))
	dimacs := write("g.col", []byte("p edge 3 2\ne 1 2\ne 2 3\n"))

	for _, p := range []string{el, mtx, metis, elgz, hbg, dimacs} {
		g, err := LoadFile(p, LoadOptions{})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if !g.Equal(want) {
			t.Fatalf("%s: auto-detected load differs from the reference", p)
		}
	}
	// Forcing a wrong format must fail, not misparse.
	if _, err := LoadFile(mtx, LoadOptions{Format: FormatBinary}); err == nil {
		t.Error("forcing hbg on a mtx file should fail")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing"), LoadOptions{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadFileCached(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(src, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g1, fromCache, err := LoadFileCached(src, LoadOptions{})
	if err != nil || fromCache {
		t.Fatalf("first load: fromCache=%v err=%v", fromCache, err)
	}
	if _, err := os.Stat(CachePath(src, FormatAuto)); err != nil {
		t.Fatalf("sidecar not written: %v", err)
	}
	// The sidecar serves only when strictly newer than the source; age the
	// source so the comparison is deterministic on coarse filesystems.
	past := time.Now().Add(-time.Hour)
	if err := os.Chtimes(src, past, past); err != nil {
		t.Fatal(err)
	}
	g2, fromCache, err := LoadFileCached(src, LoadOptions{})
	if err != nil || !fromCache {
		t.Fatalf("second load: fromCache=%v err=%v", fromCache, err)
	}
	if !g2.Equal(g1) {
		t.Fatal("cached load differs from parsed load")
	}

	// Updating the source invalidates the sidecar.
	time.Sleep(10 * time.Millisecond)
	if err := os.WriteFile(src, []byte("0 1\n1 2\n2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(src, future, future); err != nil {
		t.Fatal(err)
	}
	g3, fromCache, err := LoadFileCached(src, LoadOptions{})
	if err != nil || fromCache {
		t.Fatalf("stale sidecar: fromCache=%v err=%v", fromCache, err)
	}
	if g3.NumEdges() != 3 {
		t.Fatalf("stale sidecar served: %d edges", g3.NumEdges())
	}

	// A corrupt sidecar falls back to parsing (and is rewritten), even when
	// its timestamp says fresh.
	if err := os.WriteFile(CachePath(src, FormatAuto), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresher := future.Add(time.Hour)
	if err := os.Chtimes(CachePath(src, FormatAuto), fresher, fresher); err != nil {
		t.Fatal(err)
	}
	g4, fromCache, err := LoadFileCached(src, LoadOptions{})
	if err != nil || fromCache || g4.NumEdges() != 3 {
		t.Fatalf("corrupt sidecar: fromCache=%v err=%v", fromCache, err)
	}

	// A .hbg input never gets a second sidecar.
	hbg := filepath.Join(dir, "direct.hbg")
	if err := g3.SaveBinaryFile(hbg); err != nil {
		t.Fatal(err)
	}
	g5, fromCache, err := LoadFileCached(hbg, LoadOptions{})
	if err != nil || !g5.Equal(g3) {
		t.Fatalf("hbg input: %v (fromCache=%v)", err, fromCache)
	}
	if _, err := os.Stat(hbg + ".hbg"); !os.IsNotExist(err) {
		t.Error("binary input must not spawn a sidecar")
	}

	// CachePath keeps the full name — including .gz — and infixes a forced
	// format, so compressed/uncompressed copies and different format
	// interpretations of one file all use distinct sidecars.
	if got := CachePath("x/y/graph.txt.gz", FormatAuto); got != "x/y/graph.txt.gz.hbg" {
		t.Errorf("CachePath gz = %q", got)
	}
	if got := CachePath("graph.mtx", FormatAuto); got != "graph.mtx.hbg" {
		t.Errorf("CachePath = %q", got)
	}
	if got := CachePath("g.graph", FormatMETIS); got != "g.graph.metis.hbg" {
		t.Errorf("CachePath metis = %q", got)
	}
}

// TestLoadFileCachedFormatIsolation pins the fix for the METIS/edge-list
// ambiguity: the same file cached under one forced format must never be
// served to a load that forces the other.
func TestLoadFileCachedFormatIsolation(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "g.graph")
	// Valid under both dialects, but different graphs: as METIS, the header
	// "3 3" declares 3 vertices; as an edge list the same line is the edge
	// (3,3) (a dropped self-loop) and ids run to 3, so n=4.
	if err := os.WriteFile(src, []byte("3 3\n2 3\n1 3\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	el, fromCache, err := LoadFileCached(src, LoadOptions{Format: FormatEdgeList})
	if err != nil || fromCache || el.NumVertices() != 4 {
		t.Fatalf("edgelist: n=%d fromCache=%v err=%v", el.NumVertices(), fromCache, err)
	}
	me, fromCache, err := LoadFileCached(src, LoadOptions{Format: FormatMETIS})
	if err != nil || fromCache || me.NumVertices() != 3 {
		t.Fatalf("metis after edgelist cache: n=%d fromCache=%v err=%v", me.NumVertices(), fromCache, err)
	}
}

// TestLongLineMETIS covers the real-world long-line case: one vertex whose
// whole adjacency sits on a single multi-megabyte line.
func TestLongLineMETIS(t *testing.T) {
	const n = 200000
	var sb strings.Builder
	sb.WriteString("200001 200000\n")
	for v := 2; v <= n+1; v++ {
		sb.WriteString(" ")
		sb.WriteString(itoa(v))
	}
	sb.WriteString("\n")
	for v := 2; v <= n+1; v++ {
		sb.WriteString("1\n")
	}
	g, err := ParseMETIS([]byte(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != n {
		t.Fatalf("hub degree %d, want %d", g.Degree(0), n)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
