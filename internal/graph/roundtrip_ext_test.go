package graph_test

import (
	"bytes"
	"testing"

	"github.com/graphmining/hbbmc/internal/dataset"
	"github.com/graphmining/hbbmc/internal/graph"
)

// TestDatasetsRoundTrip is the acceptance property over the paper's 16
// stand-in datasets: the text rendering parses identically through the
// sequential and the parallel parser, and the binary snapshot reproduces
// the same representation bit for bit.
func TestDatasetsRoundTrip(t *testing.T) {
	specs := dataset.All()
	if testing.Short() {
		specs = specs[:4]
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			g := spec.Build()
			var text bytes.Buffer
			if err := g.WriteEdgeList(&text); err != nil {
				t.Fatal(err)
			}

			seq, err := graph.LoadEdgeList(bytes.NewReader(text.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 8} {
				par, err := graph.ParseEdgeList(text.Bytes(), workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !par.Equal(seq) {
					t.Fatalf("workers=%d: parallel parse differs from sequential", workers)
				}
			}

			var bin bytes.Buffer
			if err := seq.SaveBinary(&bin); err != nil {
				t.Fatal(err)
			}
			reloaded, err := graph.LoadBinary(bytes.NewReader(bin.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if !reloaded.Equal(seq) {
				t.Fatal("binary snapshot round trip changed the representation")
			}
		})
	}
}
