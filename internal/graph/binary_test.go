package graph

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	graphs := []*Graph{
		NewBuilder(0).MustBuild(), // empty
		NewBuilder(5).MustBuild(), // isolated vertices only
		randomGraph(rng, 2, 4),    // single edge territory
		randomGraph(rng, 40, 200),
		randomGraph(rng, 500, 3000),
	}
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := g.SaveBinary(&buf); err != nil {
			t.Fatalf("graph %d: save: %v", i, err)
		}
		got, err := LoadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("graph %d: load: %v", i, err)
		}
		if !got.Equal(g) {
			t.Fatalf("graph %d: binary round trip changed the representation", i)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(9)), 100, 500)
	path := filepath.Join(t.TempDir(), "g.hbg")
	if err := g.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g) {
		t.Fatal("file round trip changed the representation")
	}
	// The atomic save must not leave temp files behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want just the snapshot", len(entries))
	}
}

func snapshotBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadBinaryRejectsCorruption(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), 30, 120)
	good := snapshotBytes(t, g)

	corrupt := func(name string, mutate func(b []byte) []byte) {
		b := mutate(append([]byte(nil), good...))
		if _, err := LoadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad version", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("truncated header", func(b []byte) []byte { return b[:10] })
	corrupt("truncated payload", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("trailing garbage", func(b []byte) []byte { return append(b, 0xFF) })
	corrupt("flipped payload bit", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b })
	corrupt("checksum mismatch", func(b []byte) []byte { b[24] ^= 0xFF; return b })
	corrupt("giant n", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[8:16], 1<<40)
		return b
	})
	corrupt("giant m", func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:24], 1<<40)
		return b
	})
	corrupt("empty", func(b []byte) []byte { return nil })
}

// TestLoadBinaryRejectsInvalidStructure crafts checksummed payloads whose
// CSR arrays are structurally wrong; csrToGraph must reject each.
func TestLoadBinaryRejectsInvalidStructure(t *testing.T) {
	mk := func(offsets []int64, adj []int32) []byte {
		g := &Graph{offsets: offsets, adj: adj,
			eids: make([]int32, len(adj)), srcs: make([]int32, len(adj)/2), dsts: make([]int32, len(adj)/2)}
		var buf bytes.Buffer
		if err := g.SaveBinary(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"asymmetric adjacency":   mk([]int64{0, 1, 2, 2}, []int32{1, 2}), // 0→1 but 1→2
		"self loop":              mk([]int64{0, 1, 2}, []int32{0, 1}),
		"unsorted adjacency":     mk([]int64{0, 2, 3, 4}, []int32{2, 1, 0, 0}),
		"out-of-range neighbor":  mk([]int64{0, 1, 2}, []int32{5, 0}),
		"negative neighbor":      mk([]int64{0, 1, 2}, []int32{-1, 0}),
		"decreasing offsets":     mk([]int64{0, 2, 1, 4}, []int32{1, 2, 0, 0}),
		"offsets overshoot":      mk([]int64{0, 1, 2, 5}, []int32{1, 0, 2, 2}),
		"duplicate one-way edge": mk([]int64{0, 2, 2, 2}, []int32{1, 1}),
	}
	for name, b := range cases {
		if _, err := LoadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// TestBinaryAfterEveryLoader ties the formats together: parse each format,
// snapshot, reload, compare.
func TestBinaryAfterEveryLoader(t *testing.T) {
	inputs := map[string]func() (*Graph, error){
		"edgelist": func() (*Graph, error) { return ParseEdgeList([]byte("0 1\n1 2\n2 0\n3 1\n"), 2) },
		"dimacs": func() (*Graph, error) {
			return LoadDIMACS(bytes.NewReader([]byte("p edge 4 3\ne 1 2\ne 2 3\ne 3 4\n")))
		},
		"mtx": func() (*Graph, error) {
			return ParseMatrixMarket([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n4 4 3\n2 1\n3 2\n4 1\n"), 2)
		},
		"metis": func() (*Graph, error) { return ParseMETIS([]byte("4 3\n2 3\n1 3\n1 2\n\n")) },
	}
	for name, parse := range inputs {
		g, err := parse()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadBinary(bytes.NewReader(snapshotBytes(t, g)))
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		if !got.Equal(g) {
			t.Fatalf("%s: snapshot round trip changed the representation", name)
		}
	}
}

// TestFingerprintMatchesSnapshotCRC pins Fingerprint to its contract: it is
// exactly the CRC-32C SaveBinary writes into the .hbg header, and it
// survives a snapshot round trip (same graph, same identity).
func TestFingerprintMatchesSnapshotCRC(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	graphs := []*Graph{
		NewBuilder(0).MustBuild(),
		NewBuilder(7).MustBuild(),
		randomGraph(rng, 40, 200),
		randomGraph(rng, 3000, 9000), // payload larger than the 8 KiB CRC buffer
	}
	for i, g := range graphs {
		var buf bytes.Buffer
		if err := g.SaveBinary(&buf); err != nil {
			t.Fatalf("graph %d: save: %v", i, err)
		}
		headerCRC := binary.LittleEndian.Uint32(buf.Bytes()[24:28])
		if fp := g.Fingerprint(); fp != headerCRC {
			t.Fatalf("graph %d: Fingerprint %08x != snapshot header CRC %08x", i, fp, headerCRC)
		}
		back, err := LoadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("graph %d: load: %v", i, err)
		}
		if back.Fingerprint() != g.Fingerprint() {
			t.Fatalf("graph %d: fingerprint changed across a snapshot round trip", i)
		}
	}
	if a, b := randomGraph(rng, 50, 220), randomGraph(rng, 50, 221); a.Fingerprint() == b.Fingerprint() {
		t.Fatal("distinct random graphs collided — Fingerprint is likely constant")
	}
}
