package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList asserts the parser never panics and that any
// successfully parsed graph is internally consistent and round-trips.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n3 4 0.5\n")
	f.Add("")
	f.Add("9999999999 1")
	f.Add("-3 4")
	f.Add("a b c")
	f.Add("0 0\n0 1\n1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		g2, err := LoadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzLoadDIMACS asserts the DIMACS parser never panics and validates its
// successful parses.
func FuzzLoadDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c only a comment")
	f.Add("p edge 0 0\n")
	f.Add("e 1 2")
	f.Add("p edge -1 5")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed DIMACS graph invalid: %v\ninput: %q", err, input)
		}
	})
}
