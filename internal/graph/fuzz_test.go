package graph

import (
	"bytes"
	"strings"
	"testing"
)

// hugeIDs reports whether the input names a vertex id large enough to make
// the O(max id) CSR allocation dominate the fuzz run. The parsers accept
// such inputs by contract (the vertex count is 1 + the largest id), so the
// harness skips them instead of letting the fuzzer chase out-of-memory
// kills: anything at or under this bound allocates a few dozen MiB at most.
func hugeIDs(input string) bool {
	const maxDigits = 6 // ids < 10^6
	run := 0
	for i := 0; i < len(input); i++ {
		if c := input[i]; c >= '0' && c <= '9' {
			run++
			if run > maxDigits {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// FuzzLoadEdgeList asserts the parser never panics and that any
// successfully parsed graph is internally consistent and round-trips.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# comment\n% other\n3 4 0.5\n")
	f.Add("")
	f.Add("9999999999 1")
	f.Add("-3 4")
	f.Add("a b c")
	f.Add("0 0\n0 1\n1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		if hugeIDs(input) {
			t.Skip()
		}
		g, err := LoadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		g2, err := LoadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count %d -> %d", g.NumEdges(), g2.NumEdges())
		}
	})
}

// FuzzParseEdgeList asserts the parallel parser never panics, validates its
// successful parses, and round-trips them through the binary snapshot.
func FuzzParseEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n", uint8(3))
	f.Add("# c\n5 5\n5 6 0.25\n", uint8(1))
	f.Add("", uint8(0))
	f.Add("1 2x 3", uint8(2))
	f.Add("0 1\n"+strings.Repeat(" ", 256)+"\n2 3", uint8(9))
	f.Fuzz(func(t *testing.T, input string, workers uint8) {
		if hugeIDs(input) {
			t.Skip()
		}
		g, err := ParseEdgeList([]byte(input), int(workers%16))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v\ninput: %q", err, input)
		}
		var buf bytes.Buffer
		if err := g.SaveBinary(&buf); err != nil {
			t.Fatalf("snapshot failed: %v", err)
		}
		g2, err := LoadBinary(&buf)
		if err != nil {
			t.Fatalf("snapshot reload failed: %v", err)
		}
		if !g2.Equal(g) {
			t.Fatalf("snapshot round trip changed the graph\ninput: %q", input)
		}
	})
}

// FuzzLoadDIMACS asserts the DIMACS parser never panics and validates its
// successful parses.
func FuzzLoadDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c only a comment")
	f.Add("p edge 0 0\n")
	f.Add("e 1 2")
	f.Add("p edge -1 5")
	f.Fuzz(func(t *testing.T, input string) {
		if hugeIDs(input) {
			t.Skip()
		}
		g, err := LoadDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed DIMACS graph invalid: %v\ninput: %q", err, input)
		}
	})
}

// FuzzLoadBinary is the robustness gate for the .hbg loader: truncated,
// bit-flipped or adversarial snapshots must produce an error, never a panic
// or an invalid Graph. Allocation is bounded by the input length, so no id
// guard is needed.
func FuzzLoadBinary(f *testing.F) {
	var buf bytes.Buffer
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	if err := b.MustBuild().SaveBinary(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)-3]) // truncated payload
	f.Add(good[:10])          // truncated header
	f.Add([]byte("HBGF"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0x80
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, input []byte) {
		g, err := LoadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("loaded snapshot invalid: %v", err)
		}
	})
}

// FuzzParseMETIS asserts the METIS parser never panics and validates its
// successful parses.
func FuzzParseMETIS(f *testing.F) {
	f.Add("3 2\n2 3\n1 3\n1 2\n")
	f.Add("3 2 1\n2 9\n1 9 3 4\n2 4\n")
	f.Add("% comment\n2 0\n\n\n")
	f.Add("2 1 11 2\n")
	f.Fuzz(func(t *testing.T, input string) {
		if hugeIDs(input) {
			t.Skip()
		}
		g, err := ParseMETIS([]byte(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed METIS graph invalid: %v\ninput: %q", err, input)
		}
	})
}
