package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"
)

// The .hbg binary CSR snapshot format. A parsed graph serialises to one
// header plus two flat arrays and reloads in a single sequential read —
// no line scanning, no sorting, no deduplication:
//
//	[0:4]   magic "HBGF"
//	[4:8]   format version, uint32 little-endian (currently 1)
//	[8:16]  vertex count n, uint64 little-endian
//	[16:24] undirected edge count m, uint64 little-endian
//	[24:28] CRC-32C (Castagnoli) of the payload
//	[28:]   payload: n+1 CSR offsets (int64 LE), then 2m neighbors (int32 LE)
//
// Edge ids, sources and destinations are not stored: the CSR already
// encodes the lexicographic (min,max) edge order, so csrToGraph recomputes
// them in one pass, which doubles as a full structural validation — a
// corrupt or adversarial payload yields an error, never a panic or an
// inconsistent Graph.

const (
	hbgMagic     = "HBGF"
	hbgVersion   = 1
	hbgHeaderLen = 28
)

var hbgCRCTable = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian gates the zero-copy decode: on little-endian hosts the
// payload bytes alias directly as the offset and adjacency arrays.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Fingerprint returns the CRC-32C checksum of the graph's canonical .hbg
// payload — the exact value SaveBinary writes into the snapshot header —
// computed incrementally without materialising the payload. Because the CSR
// form is canonical (sorted adjacency, lexicographic edge numbering), two
// graphs fingerprint equal exactly when they are the same graph, regardless
// of which input format or edge order they were parsed from. The distributed
// coordinator uses this as the dataset identity when dispatching branch
// ranges to peers. O(n+m); callers cache it (see Session.GraphFingerprint).
func (g *Graph) Fingerprint() uint32 {
	var buf [8192]byte
	crc, fill := uint32(0), 0
	flush := func() {
		crc = crc32.Update(crc, hbgCRCTable, buf[:fill])
		fill = 0
	}
	for _, o := range g.offsets {
		if fill+8 > len(buf) {
			flush()
		}
		binary.LittleEndian.PutUint64(buf[fill:], uint64(o))
		fill += 8
	}
	for _, a := range g.adj {
		if fill+4 > len(buf) {
			flush()
		}
		binary.LittleEndian.PutUint32(buf[fill:], uint32(a))
		fill += 4
	}
	flush()
	return crc
}

// SaveBinary writes g as a .hbg snapshot.
func (g *Graph) SaveBinary(w io.Writer) error {
	n, m := g.NumVertices(), g.NumEdges()
	payload := make([]byte, 8*(n+1)+8*m)
	off := 0
	for _, o := range g.offsets {
		binary.LittleEndian.PutUint64(payload[off:], uint64(o))
		off += 8
	}
	for _, a := range g.adj {
		binary.LittleEndian.PutUint32(payload[off:], uint32(a))
		off += 4
	}
	var hdr [hbgHeaderLen]byte
	copy(hdr[0:4], hbgMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], hbgVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(m))
	binary.LittleEndian.PutUint32(hdr[24:28], crc32.Checksum(payload, hbgCRCTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("graph: writing .hbg header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("graph: writing .hbg payload: %w", err)
	}
	return nil
}

// SaveBinaryFile writes the snapshot atomically: to a temporary file in the
// target directory, then renamed over path, so concurrent readers never see
// a partial snapshot.
func (g *Graph) SaveBinaryFile(path string) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	if err := g.SaveBinary(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadBinary reads a .hbg snapshot. Truncated, oversized, corrupt or
// structurally invalid inputs return an error; allocation is bounded by the
// bytes actually present, not by the header's claimed sizes.
func LoadBinary(r io.Reader) (*Graph, error) {
	var hdr [hbgHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading .hbg header: %w", err)
	}
	n, m, sum, err := parseHbgHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	payload, err := readPayload(r, hbgPayloadLen(n, m))
	if err != nil {
		return nil, err
	}
	return decodeSnapshot(n, m, sum, payload)
}

// loadBinaryBytes is LoadBinary over an in-memory snapshot: no second
// buffer, and on little-endian hosts the graph arrays alias data directly.
func loadBinaryBytes(data []byte) (*Graph, error) {
	if len(data) < hbgHeaderLen {
		return nil, fmt.Errorf("graph: truncated .hbg header: %d of %d bytes", len(data), hbgHeaderLen)
	}
	n, m, sum, err := parseHbgHeader(data[:hbgHeaderLen])
	if err != nil {
		return nil, err
	}
	payload := data[hbgHeaderLen:]
	switch want := hbgPayloadLen(n, m); {
	case int64(len(payload)) < want:
		return nil, fmt.Errorf("graph: truncated .hbg payload: %d of %d bytes", len(payload), want)
	case int64(len(payload)) > want:
		return nil, fmt.Errorf("graph: trailing data after .hbg payload")
	}
	return decodeSnapshot(n, m, sum, payload)
}

// parseHbgHeader validates the fixed-size header, returning the claimed
// dimensions and the payload checksum.
func parseHbgHeader(hdr []byte) (n, m uint64, sum uint32, err error) {
	if string(hdr[0:4]) != hbgMagic {
		return 0, 0, 0, fmt.Errorf("graph: not a .hbg snapshot (bad magic %q)", hdr[0:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != hbgVersion {
		return 0, 0, 0, fmt.Errorf("graph: unsupported .hbg version %d (want %d)", v, hbgVersion)
	}
	n = binary.LittleEndian.Uint64(hdr[8:16])
	m = binary.LittleEndian.Uint64(hdr[16:24])
	if n > math.MaxInt32 || m > math.MaxInt32 {
		return 0, 0, 0, fmt.Errorf("graph: .hbg header claims n=%d m=%d, beyond the int32 id space", n, m)
	}
	return n, m, binary.LittleEndian.Uint32(hdr[24:28]), nil
}

func hbgPayloadLen(n, m uint64) int64 { return int64(8*(n+1) + 8*m) }

// decodeSnapshot checks the payload checksum and materialises the graph.
func decodeSnapshot(n, m uint64, sum uint32, payload []byte) (*Graph, error) {
	if crc32.Checksum(payload, hbgCRCTable) != sum {
		return nil, fmt.Errorf("graph: .hbg checksum mismatch")
	}
	var offsets []int64
	var adj []int32
	if hostLittleEndian && uintptr(unsafe.Pointer(&payload[0]))%8 == 0 {
		// Zero-copy: the payload already is the arrays' memory layout. The
		// Graph retains the views, keeping the payload alive. Both sections
		// are 8-byte aligned once the payload base is (8*(n+1) preserves
		// it); readPayload buffers always are, but a payload sliced out of a
		// larger buffer at the 28-byte header offset is not and takes the
		// decode-copy path below.
		offsets = unsafe.Slice((*int64)(unsafe.Pointer(&payload[0])), n+1)
		if m > 0 {
			adj = unsafe.Slice((*int32)(unsafe.Pointer(&payload[8*(n+1)])), 2*m)
		}
	} else if hostLittleEndian {
		// Misaligned little-endian payload: one bulk byte copy into fresh
		// aligned arrays (memmove tolerates any source alignment).
		offsets = make([]int64, n+1)
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&offsets[0])), 8*(n+1)), payload)
		adj = make([]int32, 2*m)
		if m > 0 {
			copy(unsafe.Slice((*byte)(unsafe.Pointer(&adj[0])), 8*m), payload[8*(n+1):])
		}
	} else {
		offsets = make([]int64, n+1)
		off := 0
		for i := range offsets {
			offsets[i] = int64(binary.LittleEndian.Uint64(payload[off:]))
			off += 8
		}
		adj = make([]int32, 2*m)
		for i := range adj {
			adj[i] = int32(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
		}
	}
	return csrToGraph(int(n), offsets, adj)
}

// readPayload reads exactly want bytes and requires EOF right after.
// Capacity grows by doubling from 8 MiB, so a crafted header claiming a
// huge payload allocates at most a constant plus twice the bytes actually
// supplied; a real snapshot up to 8 MiB reads in one exact allocation.
func readPayload(r io.Reader, want int64) ([]byte, error) {
	buf := make([]byte, 0, min(want, 8<<20))
	for int64(len(buf)) < want {
		if len(buf) == cap(buf) {
			grown := make([]byte, len(buf), min(want, int64(cap(buf))*2))
			copy(grown, buf)
			buf = grown
		}
		limit := min(int64(cap(buf)), want)
		k, err := io.ReadFull(r, buf[len(buf):limit])
		buf = buf[:len(buf)+k]
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("graph: reading .hbg payload: %w", err)
		}
	}
	if int64(len(buf)) < want {
		return nil, fmt.Errorf("graph: truncated .hbg payload: %d of %d bytes", len(buf), want)
	}
	var one [1]byte
	if k, _ := io.ReadFull(r, one[:]); k > 0 {
		return nil, fmt.Errorf("graph: trailing data after .hbg payload")
	}
	return buf, nil
}

// LoadBinaryFile opens path and parses it with LoadBinary.
func LoadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := LoadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return g, nil
}

// csrToGraph adopts raw CSR arrays, validating every invariant Validate
// checks (monotone offsets, sorted loop-free adjacency in range, symmetry)
// while reconstructing the canonical edge numbering: scanning vertices in
// ascending order and their neighbors w > v in adjacency order visits edges
// exactly in lexicographic (min,max) order, the id assignment of FromEdges.
// cur[w] tracks the next smaller-neighbor slot of w — those slots form the
// sorted prefix of w's adjacency, filled in the same ascending order the
// outer scan produces — so the mirror entry of each edge is located in O(1)
// and any asymmetry is caught by the cur[w] check. This is the hot path of
// every snapshot load; the loop is written index-int and allocation-free.
func csrToGraph(n int, offsets []int64, adj []int32) (*Graph, error) {
	if len(offsets) != n+1 || len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: inconsistent CSR array lengths")
	}
	m := len(adj) / 2
	if offsets[0] != 0 || offsets[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: CSR offsets span [%d,%d], want [0,%d]", offsets[0], offsets[n], len(adj))
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, fmt.Errorf("graph: CSR offsets decrease at vertex %d", v)
		}
	}
	eids := make([]int32, len(adj))
	srcs := make([]int32, m)
	dsts := make([]int32, m)
	// Positions fit uint32 (2m < 2^32 since m ≤ MaxInt32); packing each
	// vertex's cursor and range end into one 8-byte struct makes the random
	// per-mirror lookup touch a single cache line instead of two arrays.
	ws := make([]wstate, n)
	for v := 0; v < n; v++ {
		ws[v] = wstate{cur: uint32(offsets[v]), end: uint32(offsets[v+1])}
	}
	eid := 0
	// Only the larger-neighbor suffix of each adjacency slice is scanned
	// directly. The smaller-neighbor prefix is validated implicitly: its
	// slots are consumed in ascending order by the mirror matches of earlier
	// vertices, so when the outer loop reaches v, cur[v] points at the first
	// slot no such match consumed — a value < v there is an unmatched (hence
	// asymmetric, duplicated or unsorted) entry, caught by the prev check
	// seeded to v-1. A crafted self-loop can transiently self-match (q == p
	// when adj[p] == v at the scan frontier), but every self-match consumes
	// one slot where a real edge consumes two, so a run that accepted k > 0
	// self-loops ends with eid = m + k/2... ≠ m (all 2m slots are consumed
	// exactly once: prefix slots by matches, the rest by the scan); the
	// final edge-count check therefore rejects it.
	for v := 0; v < n; v++ {
		hi := int(ws[v].end)
		prev := int32(v - 1)
		for p := int(ws[v].cur); p < hi; p++ {
			w := adj[p]
			if w <= prev || int(w) >= n {
				return nil, csrEntryError(n, int32(v), w, prev)
			}
			prev = w
			s := &ws[w]
			q := int(s.cur)
			if eid == m || q == int(s.end) || adj[q] != int32(v) {
				return nil, fmt.Errorf("graph: asymmetric adjacency: edge (%d,%d) has no mirror", v, w)
			}
			srcs[eid], dsts[eid] = int32(v), w
			eids[p] = int32(eid)
			eids[q] = int32(eid)
			s.cur = uint32(q + 1)
			eid++
		}
	}
	if eid != m {
		return nil, fmt.Errorf("graph: CSR arrays encode %d edges, header claims %d", eid, m)
	}
	return &Graph{offsets: offsets, adj: adj, eids: eids, srcs: srcs, dsts: dsts}, nil
}

// wstate is csrToGraph's per-vertex scan state: the next unconsumed
// adjacency slot and the end of the vertex's range, as uint32 positions.
type wstate struct{ cur, end uint32 }

// csrEntryError names which adjacency invariant an entry broke.
func csrEntryError(n int, v, w, prev int32) error {
	switch {
	case w < 0 || int(w) >= n:
		return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, w)
	case w == v:
		return fmt.Errorf("graph: self-loop at vertex %d", v)
	case w < v:
		return fmt.Errorf("graph: asymmetric or unsorted adjacency at vertex %d (unmatched neighbor %d)", v, w)
	}
	return fmt.Errorf("graph: adjacency of %d not strictly sorted (%d after %d)", v, w, prev)
}
