package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
)

// LoadEdgeList parses whitespace-separated "u v" pairs, one edge per line.
// Lines starting with '#' or '%' are comments. Vertex ids are non-negative
// integers; the vertex count is 1 + the largest id seen. Directions, weights
// (a third column, ignored) and self-loops are dropped, matching the paper's
// preprocessing of the real datasets. Lines may be arbitrarily long (the
// former 1 MiB scanner cap is gone). For in-memory inputs, ParseEdgeList
// parses the same dialect on all cores.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	b := NewBuilder(0)
	lineNo := 0
	var buf []byte
	for {
		line, readErr := appendLine(br, buf[:0])
		buf = line[:0]
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			return nil, fmt.Errorf("graph: reading edge list: %v", readErr)
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := bytes.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: expected two vertex ids, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(string(fields[0]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(string(fields[1]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex id %q: %v", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		b.AddEdge(int32(u), int32(v))
	}
	return b.Build()
}

// LoadEdgeListFile opens path and parses it with LoadEdgeList.
func LoadEdgeListFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := LoadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return g, nil
}

// WriteEdgeList writes the graph as "u v" lines, one undirected edge per
// line, in edge-id order.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.EdgeEndpoints(int32(e))
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadDIMACS parses the DIMACS clique/coloring format: a "p edge n m" header
// followed by "e u v" lines with 1-based vertex ids. "c" lines are comments.
func LoadDIMACS(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var b *Builder
	lineNo := 0
	var buf []byte
	for {
		line, readErr := appendLine(br, buf[:0])
		buf = line[:0]
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			return nil, fmt.Errorf("graph: reading DIMACS input: %v", readErr)
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == 'c' {
			continue
		}
		fields := bytes.Fields(line)
		switch string(fields[0]) {
		case "p":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed problem line %q", lineNo, line)
			}
			n, err := strconv.Atoi(string(fields[2]))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex count %q", lineNo, fields[2])
			}
			b = NewBuilder(n)
		case "e":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: malformed edge line %q", lineNo, line)
			}
			u, err := strconv.ParseInt(string(fields[1]), 10, 32)
			if err != nil || u < 1 {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", lineNo, fields[1])
			}
			v, err := strconv.ParseInt(string(fields[2]), 10, 32)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", lineNo, fields[2])
			}
			b.AddEdge(int32(u-1), int32(v-1))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if b == nil {
		return nil, fmt.Errorf("graph: DIMACS input has no problem line")
	}
	return b.Build()
}
