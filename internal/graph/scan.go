package graph

import (
	"bufio"
	"io"
	"math"
)

// Hand-rolled byte scanning shared by the text parsers. The sequential
// loaders used bufio.Scanner with a fixed 1 MiB cap, which made graphs with
// very long lines (huge comments, METIS adjacency rows, heavily padded edge
// lists) fail with "token too long"; appendLine grows without limit. The
// parallel parser goes further and avoids per-line allocations entirely with
// scanID over raw byte ranges.

// isSpace reports whether c is ASCII line-internal whitespace. Newlines are
// line terminators, not field separators, and are handled by the callers.
func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// appendLine appends the next line of br (without the trailing '\n') to buf
// and returns the extended slice. Unlike bufio.Scanner there is no length
// cap: fragments are accumulated across ErrBufferFull. The error is io.EOF
// only when no bytes remain at all; a final unterminated line is returned
// with a nil error.
func appendLine(br *bufio.Reader, buf []byte) ([]byte, error) {
	for {
		frag, err := br.ReadSlice('\n')
		buf = append(buf, frag...)
		switch err {
		case bufio.ErrBufferFull:
			continue
		case nil:
			return buf[:len(buf)-1], nil // drop the '\n'
		case io.EOF:
			if len(buf) > 0 {
				return buf, nil
			}
			return buf, io.EOF
		default:
			return buf, err
		}
	}
}

// scanID parses a non-negative decimal int32 in data starting at i,
// returning the value and the index one past the last digit. ok is false
// when no digit is present or the value overflows int32. Unlike
// strconv.ParseInt it accepts plain digit runs only (no sign).
func scanID(data []byte, i int) (v int32, next int, ok bool) {
	start := i
	var x int64
	for i < len(data) {
		c := data[i]
		if c < '0' || c > '9' {
			break
		}
		x = x*10 + int64(c-'0')
		if x > math.MaxInt32 {
			return 0, i, false
		}
		i++
	}
	if i == start {
		return 0, i, false
	}
	return int32(x), i, true
}
