package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func triangleWithTail(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := triangleWithTail(t)
	if g.NumVertices() != 4 {
		t.Fatalf("NumVertices = %d, want 4", g.NumVertices())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("Degree(2) = %d, want 0 (self-loop dropped)", g.Degree(2))
	}
}

func TestBuilderExtendsVertexCount(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.MustBuild()
	if g.NumVertices() != 10 {
		t.Fatalf("NumVertices = %d, want 10", g.NumVertices())
	}
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("FromEdges(-1) should fail")
	}
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Error("edge exceeding vertex count should fail")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}); err == nil {
		t.Error("negative id should fail")
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := triangleWithTail(t)
	wantDeg := []int{2, 2, 3, 1}
	for v, want := range wantDeg {
		if got := g.Degree(int32(v)); got != want {
			t.Errorf("Degree(%d) = %d, want %d", v, got, want)
		}
	}
	if got := g.Neighbors(2); !reflect.DeepEqual(got, []int32{0, 1, 3}) {
		t.Errorf("Neighbors(2) = %v, want [0 1 3]", got)
	}
}

func TestHasEdgeAndEdgeID(t *testing.T) {
	g := triangleWithTail(t)
	cases := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {0, 2, true}, {2, 3, true},
		{0, 3, false}, {1, 3, false}, {0, 0, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	id := g.EdgeID(3, 2)
	if id < 0 {
		t.Fatal("EdgeID(3,2) missing")
	}
	u, v := g.EdgeEndpoints(id)
	if u != 2 || v != 3 {
		t.Errorf("EdgeEndpoints(%d) = (%d,%d), want (2,3)", id, u, v)
	}
}

func TestEdgeIDsAreCanonicalAndDistinct(t *testing.T) {
	g := triangleWithTail(t)
	seen := map[int32]bool{}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ids := g.IncidentEdgeIDs(v)
		nb := g.Neighbors(v)
		for i := range nb {
			a, bb := g.EdgeEndpoints(ids[i])
			lo, hi := v, nb[i]
			if lo > hi {
				lo, hi = hi, lo
			}
			if a != lo || bb != hi {
				t.Fatalf("edge id %d endpoints (%d,%d), want (%d,%d)", ids[i], a, bb, lo, hi)
			}
			seen[ids[i]] = true
		}
	}
	if len(seen) != g.NumEdges() {
		t.Errorf("saw %d distinct edge ids, want %d", len(seen), g.NumEdges())
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := triangleWithTail(t)
	got := g.CommonNeighbors(0, 1, nil)
	if !reflect.DeepEqual(got, []int32{2}) {
		t.Errorf("CommonNeighbors(0,1) = %v, want [2]", got)
	}
	if got := g.CommonNeighbors(0, 3, nil); len(got) != 1 || got[0] != 2 {
		t.Errorf("CommonNeighbors(0,3) = %v, want [2]", got)
	}
}

func TestIsClique(t *testing.T) {
	g := triangleWithTail(t)
	if !g.IsClique([]int32{0, 1, 2}) {
		t.Error("0,1,2 should be a clique")
	}
	if g.IsClique([]int32{0, 1, 3}) {
		t.Error("0,1,3 should not be a clique")
	}
	if !g.IsClique([]int32{3}) || !g.IsClique(nil) {
		t.Error("singleton and empty sets are cliques")
	}
}

func TestDensityAndMaxDegree(t *testing.T) {
	g := triangleWithTail(t)
	if got := g.Density(); got != 1.0 {
		t.Errorf("Density = %v, want 1.0", got)
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree = %d, want 3", got)
	}
	empty, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Density() != 0 || empty.MaxDegree() != 0 {
		t.Error("empty graph should report zero density and degree")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangleWithTail(t)
	sub, back, err := g.InducedSubgraph([]int32{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced triangle has n=%d m=%d", sub.NumVertices(), sub.NumEdges())
	}
	if !reflect.DeepEqual(back, []int32{2, 0, 1}) {
		t.Errorf("back map = %v", back)
	}
	if _, _, err := g.InducedSubgraph([]int32{0, 0}); err == nil {
		t.Error("duplicate vertices should fail")
	}
	if _, _, err := g.InducedSubgraph([]int32{99}); err == nil {
		t.Error("out-of-range vertex should fail")
	}
}

func TestLoadEdgeList(t *testing.T) {
	in := `# comment
% another comment
0 1
1 2 0.5
2 0

3 2
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("loaded n=%d m=%d, want 4/4", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"0", "a b", "0 b", "-1 2"} {
		if _, err := LoadEdgeList(strings.NewReader(bad)); err == nil {
			t.Errorf("input %q should fail", bad)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := triangleWithTail(t)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed size: n %d->%d m %d->%d",
			g.NumVertices(), g2.NumVertices(), g.NumEdges(), g2.NumEdges())
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.EdgeEndpoints(int32(e))
		if !g2.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) lost in round trip", u, v)
		}
	}
}

func TestLoadDIMACS(t *testing.T) {
	in := `c sample
p edge 4 3
e 1 2
e 2 3
e 3 4
`
	g, err := LoadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("loaded n=%d m=%d, want 4/3", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(2, 3) {
		t.Error("DIMACS 1-based ids not shifted")
	}
}

func TestLoadDIMACSErrors(t *testing.T) {
	for _, bad := range []string{
		"e 1 2",              // edge before header
		"p edge x 1",         // bad n
		"p edge 2 1\ne 0 1",  // 0-based id
		"p edge 2 1\ne 1",    // short edge
		"p edge 2 1\nq 1 2",  // unknown record
		"",                   // no header
		"p edge 2 1\ne 1 a",  // bad id
		"p edge 2 1\ne -1 2", // negative
	} {
		if _, err := LoadDIMACS(strings.NewReader(bad)); err == nil {
			t.Errorf("DIMACS input %q should fail", bad)
		}
	}
}

// randomGraph builds a reproducible ER-style graph for property tests.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

func TestRandomGraphsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(4*n))
		if err := g.Validate(); err != nil {
			t.Fatalf("random graph %d invalid: %v", i, err)
		}
		// Degree sum equals 2m.
		sum := 0
		for v := int32(0); v < int32(n); v++ {
			sum += g.Degree(v)
		}
		if sum != 2*g.NumEdges() {
			t.Fatalf("degree sum %d != 2m %d", sum, 2*g.NumEdges())
		}
	}
}

func TestQuickHasEdgeSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 40, 160)
	f := func(a, b uint8) bool {
		u, v := int32(a%40), int32(b%40)
		return g.HasEdge(u, v) == g.HasEdge(v, u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCommonNeighborsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 30, 120)
	f := func(a, b uint8) bool {
		u, v := int32(a%30), int32(b%30)
		got := g.CommonNeighbors(u, v, nil)
		var want []int32
		for w := int32(0); w < 30; w++ {
			if g.HasEdge(u, w) && g.HasEdge(v, w) {
				want = append(want, w)
			}
		}
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
