package graph

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
)

// LoadOptions configures the multi-format loader.
type LoadOptions struct {
	// Format forces a specific input format; FormatAuto (the zero value)
	// sniffs content and file extension via DetectFormat.
	Format Format
	// Workers bounds the parser parallelism for formats that support it
	// (edge lists and MatrixMarket bodies); 0 = all cores.
	Workers int
}

// Load reads a graph in any supported format from r. Gzip-compressed input
// is detected by its magic bytes and decompressed transparently. Reader
// input carries no path hint, so FormatAuto cannot distinguish METIS from a
// plain edge list here; set Format explicitly for METIS streams.
func Load(r io.Reader, opts LoadOptions) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading input: %w", err)
	}
	return parseData(data, "", opts)
}

// LoadFile reads the graph file at path in any supported format,
// decompressing gzip transparently and using the extension as a detection
// hint (".mtx.gz" detects as MatrixMarket, and so on).
func LoadFile(path string, opts LoadOptions) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	g, err := parseData(data, path, opts)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return g, nil
}

// CachePath returns the sidecar snapshot path LoadFileCached uses for a
// text input: the full path with ".hbg" appended, or with the format name
// infixed when a format is forced ("g.graph" -> "g.graph.hbg" under auto
// detection, "g.graph.metis.hbg" under Format: FormatMETIS). The full name
// is deliberately kept ("g.txt.gz" -> "g.txt.gz.hbg") and the forced
// format is part of the key, so a compressed and an uncompressed copy, or
// two format interpretations of one ambiguous file (METIS vs edge list),
// never collide on one sidecar.
func CachePath(path string, format Format) string {
	if format == FormatAuto {
		return path + ".hbg"
	}
	return path + "." + format.String() + ".hbg"
}

// LoadFileCached is LoadFile backed by a binary sidecar snapshot: when
// CachePath(path) exists and is at least as new as path it is loaded
// instead of parsing (fromCache = true); otherwise the file is parsed and
// the snapshot is written best-effort (a read-only directory does not fail
// the load). Inputs that already are .hbg snapshots load directly and never
// get a sidecar. A corrupt or stale sidecar falls back to a fresh parse.
func LoadFileCached(path string, opts LoadOptions) (g *Graph, fromCache bool, err error) {
	// The binary/sidecar decision needs only the 4-byte magic and the file
	// mtimes — a cache hit must not pay for reading a huge text source.
	isBinary := opts.Format == FormatBinary ||
		(opts.Format == FormatAuto && fileHasHbgMagic(path))
	if !isBinary {
		side, sideErr := os.Stat(CachePath(path, opts.Format))
		src, srcErr := os.Stat(path)
		// Strictly newer, not just not-older: with coarse filesystem
		// timestamps a source rewritten in the sidecar's own second would
		// otherwise be served stale. The cost is one extra parse (and a
		// sidecar rewrite) within that window.
		if sideErr == nil && srcErr == nil && side.ModTime().After(src.ModTime()) {
			if g, err := LoadBinaryFile(CachePath(path, opts.Format)); err == nil {
				return g, true, nil
			}
		}
	}
	g, err = LoadFile(path, opts)
	if err != nil {
		return nil, false, err
	}
	if !isBinary {
		_ = g.SaveBinaryFile(CachePath(path, opts.Format)) // best-effort cache fill
	}
	return g, false, nil
}

// fileHasHbgMagic sniffs the leading snapshot magic; any read problem is
// deferred to the real load for a proper error.
func fileHasHbgMagic(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == hbgMagic
}

// parseData decompresses, detects and dispatches.
func parseData(data []byte, pathHint string, opts LoadOptions) (*Graph, error) {
	if bytes.HasPrefix(data, gzipMagic) {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("graph: opening gzip stream: %w", err)
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, fmt.Errorf("graph: decompressing gzip stream: %w", err)
		}
		if err := zr.Close(); err != nil {
			return nil, fmt.Errorf("graph: closing gzip stream: %w", err)
		}
	}
	format := opts.Format
	if format == FormatAuto {
		format = DetectFormat(data, pathHint)
	}
	switch format {
	case FormatEdgeList:
		g, _, err := parseEdgeBytes(data, opts.Workers, 0, 0)
		return g, err
	case FormatDIMACS:
		return LoadDIMACS(bytes.NewReader(data))
	case FormatMatrixMarket:
		return ParseMatrixMarket(data, opts.Workers)
	case FormatMETIS:
		return ParseMETIS(data)
	case FormatBinary:
		return loadBinaryBytes(data)
	}
	return nil, fmt.Errorf("graph: unsupported format %v", format)
}
