package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge for graph construction; orientation is ignored.
type Edge struct {
	U, V int32
}

// Builder accumulates edges and materialises an immutable Graph. Self-loops
// and duplicate edges (in either orientation) are dropped.
type Builder struct {
	n     int32
	edges []Edge
}

// NewBuilder returns a Builder for a graph with at least n vertices. Vertices
// mentioned by AddEdge extend the count automatically.
func NewBuilder(n int) *Builder {
	return &Builder{n: int32(n)}
}

// AddEdge records the undirected edge (u,v).
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v+1 > b.n {
		b.n = v + 1
	}
	b.edges = append(b.edges, Edge{u, v})
}

// Build materialises the graph. The Builder remains usable afterwards.
func (b *Builder) Build() (*Graph, error) {
	return FromEdges(int(b.n), b.edges)
}

// MustBuild is Build panicking on error; construction only fails on negative
// ids, so generators and tests use this form.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges constructs a Graph with n vertices from an undirected edge list.
// Self-loops and duplicates are removed; edge orientation is normalised.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	norm := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: negative vertex id in edge (%d,%d)", e.U, e.V)
		}
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) exceeds vertex count %d", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		norm = append(norm, e)
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].U != norm[j].U {
			return norm[i].U < norm[j].U
		}
		return norm[i].V < norm[j].V
	})
	// Deduplicate in place.
	uniq := norm[:0]
	for i, e := range norm {
		if i > 0 && e == norm[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	m := len(uniq)

	g := &Graph{
		offsets: make([]int64, n+1),
		adj:     make([]int32, 2*m),
		eids:    make([]int32, 2*m),
		srcs:    make([]int32, m),
		dsts:    make([]int32, m),
	}
	deg := make([]int32, n)
	for i, e := range uniq {
		g.srcs[i] = e.U
		g.dsts[i] = e.V
		deg[e.U]++
		deg[e.V]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] = g.offsets[v] + int64(deg[v])
	}
	cursor := make([]int64, n)
	copy(cursor, g.offsets[:n])
	for i, e := range uniq {
		g.adj[cursor[e.U]] = e.V
		g.eids[cursor[e.U]] = int32(i)
		cursor[e.U]++
		g.adj[cursor[e.V]] = e.U
		g.eids[cursor[e.V]] = int32(i)
		cursor[e.V]++
	}
	// Edges are inserted in lexicographic order of (min,max); each vertex's
	// list of larger neighbors is therefore sorted, but the earlier smaller
	// neighbors are interleaved. Sort each adjacency slice with its edge ids.
	for v := 0; v < n; v++ {
		lo, hi := g.offsets[v], g.offsets[v+1]
		sortAdj(g.adj[lo:hi], g.eids[lo:hi])
	}
	return g, nil
}

// sortAdj sorts the neighbor slice ascending, permuting ids identically.
func sortAdj(nb, ids []int32) {
	s := adjSorter{nb, ids}
	sort.Sort(s)
}

type adjSorter struct {
	nb  []int32
	ids []int32
}

func (s adjSorter) Len() int           { return len(s.nb) }
func (s adjSorter) Less(i, j int) bool { return s.nb[i] < s.nb[j] }
func (s adjSorter) Swap(i, j int) {
	s.nb[i], s.nb[j] = s.nb[j], s.nb[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// InducedSubgraph returns the subgraph induced by the given vertices together
// with the mapping from new ids (0..len-1) back to the original ids. The
// input may be unsorted; duplicates are an error.
func (g *Graph) InducedSubgraph(vs []int32) (*Graph, []int32, error) {
	local := make(map[int32]int32, len(vs))
	back := make([]int32, len(vs))
	for i, v := range vs {
		if v < 0 || int(v) >= g.NumVertices() {
			return nil, nil, fmt.Errorf("graph: induced vertex %d out of range", v)
		}
		if _, dup := local[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		local[v] = int32(i)
		back[i] = v
	}
	b := NewBuilder(len(vs))
	for i, v := range vs {
		for _, w := range g.Neighbors(v) {
			if j, ok := local[w]; ok && int32(i) < j {
				b.AddEdge(int32(i), j)
			}
		}
	}
	sub, err := b.Build()
	return sub, back, err
}
