package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/distrib"
	"github.com/graphmining/hbbmc/internal/obs"
)

// This file is the coordinator half of mced's distributed mode. A node
// started with peers (Config.Peers) does not execute plain jobs locally:
// it splits the session's top-level branch space into descriptors
// (distrib.Plan — the same guided ramp-up chunks the in-process work queue
// hands to local workers), dispatches each descriptor to a peer as a
// POST /v1/jobs with branch_range, and merges the peers' NDJSON clique
// streams into the one stream the client reads. Failed or straggling
// shards are re-dispatched (with jittered backoff, to a rotated peer) or
// re-split into halves; a fingerprint mismatch (HTTP 409) fails the job —
// no retry can make an incompatible node compatible.

// shardHTTPClient is shared by every coordinator run so connections to
// peers pool across jobs; per-attempt contexts bound each request.
var shardHTTPClient = &http.Client{}

// shardVerdict classifies one dispatch attempt.
type shardVerdict int

const (
	shardOK    shardVerdict = iota
	shardRetry              // transient: re-dispatch after backoff
	shardSplit              // straggler: the shard deadline expired, halve it
	shardFatal              // incompatible or invalid: fail the whole job
)

// shardResult is one successful shard: its buffered cliques (empty in count
// mode), the counters from its stream trailer or terminal status, and the
// worker's span timeline to merge under the coordinator's trace.
type shardResult struct {
	cliques [][]int32
	stats   *hbbmc.Stats
	peer    string
	trace   *obs.TraceView
}

// coordinator is the per-job fan-out state.
type coordinator struct {
	s    *Server
	j    *Job
	req  jobRequest // the client's request; algorithm fields ride into every shard
	tmpl distrib.Descriptor
	rc   *retryClient
	// traceparent is the propagation header value every shard dispatch
	// carries, computed once from the job's trace ID — the workers adopt it,
	// so their spans come back under this job's trace.
	traceparent string

	peers []string     // verified peer base URLs
	next  atomic.Int64 // round-robin peer cursor

	cancel context.CancelFunc // stops the whole fan-out

	dispatched, retried, failed atomic.Int64

	// failOnce latches the first hard failure and cancels the run; firstErr
	// is written inside it and read only after the fan-out joins.
	failOnce sync.Once
	firstErr error

	limitHit atomic.Bool // the global MaxCliques budget was reached

	deliverMu sync.Mutex
	//hbbmc:guardedby deliverMu
	delivered int64
	//hbbmc:guardedby deliverMu
	shardStats []*hbbmc.Stats
}

// startCoordinatedJob admits a coordinator job. It skips worker-slot
// admission entirely: the enumeration runs on the peers, and holding local
// slots for the merge loop would let coordinator jobs starve the node's own
// shard work.
func (s *Server) startCoordinatedJob(w http.ResponseWriter, req *jobRequest, sess *hbbmc.Session, cached bool, timeout time.Duration, buffer int, tr *obs.Trace) {
	q := hbbmc.QueryOptions{MaxCliques: req.MaxCliques}
	j := s.jobs.create(req.Dataset, req.Mode, 0, sess.Options(), q, 0, buffer, tr)
	j.mu.Lock()
	j.sessionCached = cached
	j.prepTime = sess.PrepTime()
	j.sharded = true
	j.mu.Unlock()

	runCtx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, timeout)
	} else {
		runCtx, cancel = context.WithCancel(runCtx)
	}
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	// A DELETE that landed before j.cancel existed was recorded but not
	// acted on; honour it now that the context exists.
	if j.cancelReason.Load() != nil {
		cancel()
	}
	s.jobs.markRunning(j)
	go s.runCoordinator(runCtx, cancel, j, sess, *req)
	writeJSON(w, http.StatusAccepted, j.View())
}

// runCoordinator drives one coordinated job to a terminal state, mirroring
// runJob's outcome handling (minus the slot release — coordinator jobs hold
// none).
func (s *Server) runCoordinator(ctx context.Context, cancel context.CancelFunc, j *Job, sess *hbbmc.Session, req jobRequest) {
	defer cancel()
	co := &coordinator{
		s:           s,
		j:           j,
		req:         req,
		tmpl:        distrib.ForSession(req.Dataset, sess),
		rc:          newRetryClient(shardHTTPClient, 3, 25*time.Millisecond, 500*time.Millisecond),
		traceparent: obs.FormatTraceparent(j.trace.ID()),
	}
	co.rc.onRetry = func() {
		s.m.shardsRetried.Add(1)
		co.retried.Add(1)
	}
	stats, runErr := co.run(ctx)
	if runErr != nil && stats == nil {
		s.jobs.markFailed(j, runErr.Error())
	} else {
		if j.cliques == nil && stats != nil {
			s.m.cliquesEmitted.Add(stats.Cliques)
		}
		s.jobs.finish(j, stats, runErr, ctx)
	}
	if j.cliques != nil {
		close(j.cliques)
	}
}

// run verifies the peers, plans the shards and joins the fan-out.
func (co *coordinator) run(ctx context.Context) (*hbbmc.Stats, error) {
	start := time.Now()
	peers, err := co.verifyPeers(ctx)
	if err != nil {
		return nil, err
	}
	co.peers = peers
	plan := distrib.Plan(co.tmpl, len(peers), co.s.cfg.ShardMaxBranches)

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	co.cancel = cancelRun

	// Bounded in-flight: every shard goroutine holds a semaphore slot while
	// dispatched (retries included). A split releases its slot before
	// launching the halves, so re-splitting can never deadlock the pool.
	sem := make(chan struct{}, co.s.cfg.ShardInflight)
	var wg sync.WaitGroup
	var launch func(d distrib.Descriptor)
	launch = func(d distrib.Descriptor) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-runCtx.Done():
				// Nothing recorded this cancellation yet if it came from
				// outside (client DELETE, job deadline); latch it so the
				// outcome is not silently "done".
				co.fail(runCtx.Err())
				return
			}
			co.runShard(runCtx, d, launch, func() { <-sem })
		}()
	}
	for _, d := range plan {
		launch(d)
	}
	wg.Wait()

	stats := co.mergedStats(time.Since(start))
	switch {
	case co.limitHit.Load():
		return stats, hbbmc.ErrStopped
	case co.firstErr != nil:
		return stats, co.firstErr
	}
	return stats, nil
}

// fail latches the first hard failure and stops the fan-out.
func (co *coordinator) fail(err error) {
	if err == nil {
		return
	}
	co.failOnce.Do(func() {
		co.firstErr = err
		co.cancel()
	})
}

// peerFor maps a shard's dispatch attempt to a peer: the shard's base slot
// (drawn from the global round-robin cursor, spreading initial load) plus
// the attempt index. The attempt offset is the failover guarantee — a
// shard's consecutive attempts visit distinct peers, so one dead node can
// never eat a whole retry budget while a healthy one sits idle. Peers whose
// circuit breaker is open are skipped; if every breaker refuses, the
// natural slot is used anyway (dispatching into an open breaker beats
// stalling the shard — its failure feeds the breaker's cooldown clock).
func (co *coordinator) peerFor(base, attempt int) string {
	n := len(co.peers)
	if bs := co.s.breakers; bs != nil {
		for off := 0; off < n; off++ {
			peer := co.peers[(base+attempt+off)%n]
			if bs.allow(peer) {
				return peer
			}
			// A zero-duration marker in the timeline: this peer was skipped
			// because its breaker was open when the shard looked for a home.
			co.j.trace.Add(obs.Span{Name: "breaker_skip", Peer: peer, Start: time.Now().UnixNano()})
		}
	}
	return co.peers[(base+attempt)%n]
}

// reportShard feeds one dispatch outcome into the peer's circuit breaker.
// Only clean successes and transient failures count: a fatal verdict
// condemns the job (not the peer) and a split blames the shard's size.
func (co *coordinator) reportShard(peer string, verdict shardVerdict) {
	bs := co.s.breakers
	if bs == nil {
		return
	}
	switch verdict {
	case shardOK:
		bs.success(peer)
	case shardRetry:
		bs.failure(peer)
	}
}

// runShard resolves one descriptor: dispatch, retry with jittered backoff,
// re-split on straggle, or latch a job-level failure. The semaphore slot is
// held for the attempt loop and released exactly once.
func (co *coordinator) runShard(ctx context.Context, d distrib.Descriptor, launch func(distrib.Descriptor), release func()) {
	released := false
	defer func() {
		if !released {
			release()
		}
	}()
	co.s.m.shardsDispatched.Add(1)
	co.dispatched.Add(1)
	attempts := co.s.cfg.ShardRetries + 1
	base := int(co.next.Add(1) - 1)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			co.fail(ctx.Err())
			return
		}
		if attempt > 0 {
			co.s.m.shardsRetried.Add(1)
			co.retried.Add(1)
			if err := sleepContext(ctx, jitterBackoff(co.rc.baseDelay, co.rc.maxDelay, attempt)); err != nil {
				co.fail(err)
				return
			}
		}
		peer := co.peerFor(base, attempt)
		attemptStart := time.Now()
		res, verdict, err := co.tryShard(ctx, d, peer)
		co.reportShard(peer, verdict)
		switch verdict {
		case shardOK:
			co.j.trace.Add(obs.Span{
				Name: "shard_dispatch", Peer: peer, Lo: d.Lo, Hi: d.Hi,
				Start: attemptStart.UnixNano(), Dur: int64(time.Since(attemptStart)),
			})
			co.deliver(ctx, res)
			return
		case shardFatal:
			co.s.m.shardsFailed.Add(1)
			co.failed.Add(1)
			co.fail(err)
			return
		case shardRetry:
			co.j.trace.Add(obs.Span{
				Name: "shard_retry", Peer: peer, Lo: d.Lo, Hi: d.Hi,
				Start: attemptStart.UnixNano(), Dur: int64(time.Since(attemptStart)),
			})
		case shardSplit:
			co.j.trace.Add(obs.Span{
				Name: "shard_halve", Peer: peer, Lo: d.Lo, Hi: d.Hi,
				Start: attemptStart.UnixNano(), Dur: int64(time.Since(attemptStart)),
			})
			if a, b, ok := d.Halve(); ok {
				// Straggler: halving follows the guided-chunking shape back
				// down — each half is a fresh descriptor with a fresh retry
				// budget, and the slow peer's still-running job has been
				// cancelled (its cliques were never forwarded, so the
				// halves cannot duplicate them).
				co.s.m.shardsRetried.Add(1)
				co.retried.Add(1)
				released = true
				release()
				launch(a)
				launch(b)
				return
			}
			// A singleton interval cannot split; re-dispatch it instead.
		}
		lastErr = err
	}
	co.s.m.shardsFailed.Add(1)
	co.failed.Add(1)
	co.fail(fmt.Errorf("coordinator: shard [%d,%d): %d dispatch attempts exhausted: %w", d.Lo, d.Hi, attempts, lastErr))
}

// deliver forwards one successful shard into the client stream and the
// stats merge. Buffer-then-forward is the duplicate barrier: a shard's
// cliques enter the merged stream only after its trailer confirmed success,
// so a re-dispatched straggler contributes exactly once no matter how many
// attempts ran. The single deliverMu writer also makes the global
// MaxCliques cut exact.
func (co *coordinator) deliver(ctx context.Context, res *shardResult) {
	limit := co.req.MaxCliques
	co.deliverMu.Lock()
	defer co.deliverMu.Unlock()
	if res.stats != nil {
		co.shardStats = append(co.shardStats, res.stats)
	}
	if res.trace != nil {
		// Merge the worker's spans under this job's trace, each tagged with
		// the peer it ran on (worker-local spans carry no peer themselves).
		for _, sv := range res.trace.Spans {
			sp := sv.Span()
			if sp.Peer == "" {
				sp.Peer = res.peer
			}
			co.j.trace.Add(sp)
		}
	}
	if co.j.cliques != nil {
		for _, c := range res.cliques {
			if limit > 0 && co.delivered >= limit {
				break
			}
			select {
			case co.j.cliques <- streamItem{c: c}:
				co.delivered++
			case <-ctx.Done():
				return
			}
		}
	} else if res.stats != nil {
		co.delivered += res.stats.Cliques
		if limit > 0 && co.delivered > limit {
			co.delivered = limit
		}
	}
	if limit > 0 && co.delivered >= limit {
		co.limitHit.Store(true)
		co.cancel()
	}
}

// mergedStats folds the successful shards' counters into the coordinator
// job's Stats: mergeable counters sum (hbbmc.MergeStats), the preprocessing
// descriptors (δ, τ, h-index, reduction) are identical on every shard and
// seed from the first, and the coordinator-only shard counters land in the
// //hbbmc:nomerge fields.
func (co *coordinator) mergedStats(elapsed time.Duration) *hbbmc.Stats {
	co.deliverMu.Lock()
	defer co.deliverMu.Unlock()
	total := &hbbmc.Stats{}
	for i, st := range co.shardStats {
		if i == 0 {
			total.Delta, total.Tau, total.HIndex = st.Delta, st.Tau, st.HIndex
			total.ReducedVertices, total.ReductionCliques = st.ReducedVertices, st.ReductionCliques
		}
		hbbmc.MergeStats(total, st)
	}
	// Cliques reflects what actually reached (or, in count mode, what was
	// accounted toward) the client, not the shard sum — the two differ when
	// the MaxCliques cut or a cancellation landed mid-merge.
	total.Cliques = co.delivered
	total.Workers = len(co.peers)
	total.EnumTime = elapsed
	total.ShardsDispatched = co.dispatched.Load()
	total.ShardsRetried = co.retried.Load()
	total.ShardsFailed = co.failed.Load()
	return total
}

// verifyPeers probes every configured peer's /v1/info: it must answer, have
// the dataset registered and — when the peer has already loaded the graph —
// agree on the dataset fingerprint. Peers failing the probe are excluded
// (the job proceeds on the rest); no usable peer fails the job. A peer that
// has not loaded the graph yet passes the probe: the POST-side 409 check
// still guards compatibility at dispatch.
func (co *coordinator) verifyPeers(ctx context.Context) ([]string, error) {
	var usable []string
	var reasons []string
	for _, raw := range co.s.cfg.Peers {
		base := strings.TrimRight(raw, "/")
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		info, err := co.fetchInfo(pctx, base)
		cancel()
		if err != nil {
			if co.s.breakers != nil {
				co.s.breakers.failure(base)
			}
			reasons = append(reasons, fmt.Sprintf("%s: %v", base, err))
			continue
		}
		if co.s.breakers != nil {
			co.s.breakers.success(base)
		}
		var ds *DatasetInfo
		for i := range info.Datasets {
			if info.Datasets[i].Name == co.tmpl.Dataset {
				ds = &info.Datasets[i]
				break
			}
		}
		switch {
		case ds == nil:
			reasons = append(reasons, fmt.Sprintf("%s: dataset %q not registered", base, co.tmpl.Dataset))
		case ds.Fingerprint != "" && ds.Fingerprint != co.tmpl.GraphCRC:
			reasons = append(reasons, fmt.Sprintf("%s: dataset fingerprint %s, want %s", base, ds.Fingerprint, co.tmpl.GraphCRC))
		default:
			usable = append(usable, base)
		}
	}
	if len(usable) == 0 {
		return nil, fmt.Errorf("coordinator: no usable peer for dataset %q: %s", co.tmpl.Dataset, strings.Join(reasons, "; "))
	}
	return usable, nil
}

func (co *coordinator) fetchInfo(ctx context.Context, base string) (*nodeInfo, error) {
	resp, err := co.rc.Do(ctx, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+"/v1/info", nil)
	})
	if err != nil {
		return nil, err
	}
	var info nodeInfo
	err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&info)
	drainClose(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("decoding /v1/info: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/v1/info: status %d", resp.StatusCode)
	}
	return &info, nil
}

// shardRequest is the POST body dispatching descriptor d: the client's
// request with the shard identity spliced in.
func (co *coordinator) shardRequest(d distrib.Descriptor) *jobRequest {
	sr := co.req
	sr.Mode = co.j.Mode
	sr.BranchRange = &[2]int{d.Lo, d.Hi}
	sr.GraphCRC = d.GraphCRC
	sr.Ordering = d.Ordering
	// The remote job's own deadline mirrors the coordinator's attempt
	// bound, so an orphaned shard (coordinator gone before its DELETE)
	// cancels itself instead of burning the worker forever.
	sr.Timeout = co.s.cfg.ShardTimeout.String()
	sr.Buffer = 0
	return &sr
}

// remoteCancel best-effort DELETEs a shard's remote job. It runs on a fresh
// short context: the shard's own context is typically already dead when a
// cleanup is needed.
func (co *coordinator) remoteCancel(peer, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, peer+"/v1/jobs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := shardHTTPClient.Do(req); err == nil {
		drainClose(resp.Body)
	}
}

// classifyDispatchErr maps a transport-level failure: the shard deadline
// expiring is the straggler signal (split), everything else — including the
// coordinator's own context ending, which the retry loop notices first — is
// transient.
func classifyDispatchErr(ctx, shCtx context.Context) shardVerdict {
	if ctx.Err() == nil && shCtx.Err() != nil {
		return shardSplit
	}
	return shardRetry
}

// shardLine decodes one NDJSON record of a shard stream: a clique line
// ({"c":[...]}), a checkpoint marker ({"ckpt":W}) or the trailer
// ({"done":true,...}).
type shardLine struct {
	C          []int32        `json:"c"`
	Ckpt       int            `json:"ckpt,omitempty"`
	Done       bool           `json:"done"`
	State      JobState       `json:"state"`
	StopReason string         `json:"stop_reason"`
	Error      string         `json:"error"`
	Stats      *hbbmc.Stats   `json:"stats"`
	Trace      *obs.TraceView `json:"trace"`
}

// tryShard runs one dispatch attempt of d against peer: POST the shard job,
// consume its result (NDJSON stream for enumerate, terminal status for
// count) and classify the outcome. Whatever goes wrong after the remote job
// exists, it is best-effort cancelled so no orphan keeps burning the peer.
func (co *coordinator) tryShard(ctx context.Context, d distrib.Descriptor, peer string) (*shardResult, shardVerdict, error) {
	shCtx, cancel := context.WithTimeout(ctx, co.s.cfg.ShardTimeout)
	defer cancel()

	body, err := json.Marshal(co.shardRequest(d))
	if err != nil {
		return nil, shardFatal, err
	}
	rttStart := time.Now()
	resp, err := co.rc.Do(shCtx, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, peer+"/v1/jobs", bytes.NewReader(body))
		if err == nil {
			req.Header.Set("Content-Type", "application/json")
			if co.traceparent != "" {
				req.Header.Set(obs.TraceparentHeader, co.traceparent)
			}
		}
		return req, err
	})
	co.s.obs.shardRTT.ObserveDuration(time.Since(rttStart))
	if err != nil {
		return nil, classifyDispatchErr(ctx, shCtx), fmt.Errorf("peer %s: dispatching shard [%d,%d): %w", peer, d.Lo, d.Hi, err)
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	drainClose(resp.Body)
	switch {
	case resp.StatusCode == http.StatusConflict:
		var eb errorBody
		_ = json.Unmarshal(raw, &eb)
		return nil, shardFatal, fmt.Errorf("peer %s rejected shard [%d,%d): %s", peer, d.Lo, d.Hi, eb.Error)
	case resp.StatusCode != http.StatusAccepted:
		return nil, shardRetry, fmt.Errorf("peer %s: POST /v1/jobs: status %d", peer, resp.StatusCode)
	}
	var view JobView
	if err := json.Unmarshal(raw, &view); err != nil || view.ID == "" {
		return nil, shardRetry, fmt.Errorf("peer %s: undecodable job response", peer)
	}

	// From here a remote job exists; anything but a clean success cancels it.
	finished := false
	defer func() {
		if !finished {
			co.remoteCancel(peer, view.ID)
		}
	}()

	var res *shardResult
	var verdict shardVerdict
	if co.j.Mode == "count" {
		res, verdict, err = co.awaitCount(ctx, shCtx, peer, view.ID)
	} else {
		res, verdict, err = co.consumeStream(ctx, shCtx, peer, view.ID)
	}
	finished = verdict == shardOK
	return res, verdict, err
}

// consumeStream reads a shard's NDJSON clique stream to its trailer,
// buffering every clique. Only a trailer reporting a complete run (done, or
// stopped by its own max_cliques budget) counts as success; a truncated or
// corrupt stream is a transient failure and the buffer is discarded.
func (co *coordinator) consumeStream(ctx, shCtx context.Context, peer, id string) (*shardResult, shardVerdict, error) {
	req, err := http.NewRequestWithContext(shCtx, http.MethodGet, peer+"/v1/jobs/"+id+"/cliques", nil)
	if err != nil {
		return nil, shardFatal, err
	}
	resp, err := shardHTTPClient.Do(req)
	if err != nil {
		return nil, classifyDispatchErr(ctx, shCtx), fmt.Errorf("peer %s job %s: opening stream: %w", peer, id, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, shardRetry, fmt.Errorf("peer %s job %s: stream status %d", peer, id, resp.StatusCode)
	}
	res := &shardResult{peer: peer}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec shardLine
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, shardRetry, fmt.Errorf("peer %s job %s: corrupt stream record: %v", peer, id, err)
		}
		switch {
		case rec.Done:
			if rec.State == StateDone || (rec.State == StateStopped && rec.StopReason == "max_cliques") {
				res.stats = rec.Stats
				res.trace = rec.Trace
				return res, shardOK, nil
			}
			return nil, shardRetry, fmt.Errorf("peer %s job %s ended %s (%s%s)", peer, id, rec.State, rec.StopReason, rec.Error)
		case rec.C != nil:
			res.cliques = append(res.cliques, rec.C)
		case rec.Ckpt > 0:
			// A journaled worker's checkpoint marker. The coordinator's own
			// buffer-then-forward barrier already guarantees exactly-once,
			// so markers are simply skipped.
		default:
			return nil, shardRetry, fmt.Errorf("peer %s job %s: stream record is neither clique nor trailer", peer, id)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, classifyDispatchErr(ctx, shCtx), fmt.Errorf("peer %s job %s: stream broke: %w", peer, id, err)
	}
	return nil, classifyDispatchErr(ctx, shCtx), fmt.Errorf("peer %s job %s: stream ended without trailer", peer, id)
}

// fetchTrace best-effort fetches a terminal shard job's span timeline from
// its worker node (count shards have no stream trailer to carry it). A
// failure returns nil — the coordinator's timeline just lacks that shard's
// worker-side spans.
func (co *coordinator) fetchTrace(ctx context.Context, peer, id string) *obs.TraceView {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return nil
	}
	resp, err := shardHTTPClient.Do(req)
	if err != nil {
		return nil
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var tv obs.TraceView
	if json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&tv) != nil {
		return nil
	}
	return &tv
}

// awaitCount long-polls a count shard's status until it is terminal.
func (co *coordinator) awaitCount(ctx, shCtx context.Context, peer, id string) (*shardResult, shardVerdict, error) {
	for {
		resp, err := co.rc.Do(shCtx, func() (*http.Request, error) {
			return http.NewRequest(http.MethodGet, peer+"/v1/jobs/"+id+"?wait=1s", nil)
		})
		if err != nil {
			return nil, classifyDispatchErr(ctx, shCtx), fmt.Errorf("peer %s job %s: polling: %w", peer, id, err)
		}
		var view JobView
		err = json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&view)
		drainClose(resp.Body)
		if err != nil {
			return nil, shardRetry, fmt.Errorf("peer %s job %s: undecodable status", peer, id)
		}
		switch view.State {
		case StateDone:
			return &shardResult{stats: view.Stats, peer: peer, trace: co.fetchTrace(shCtx, peer, id)}, shardOK, nil
		case StateStopped:
			if view.StopReason == "max_cliques" {
				return &shardResult{stats: view.Stats, peer: peer, trace: co.fetchTrace(shCtx, peer, id)}, shardOK, nil
			}
			return nil, shardRetry, fmt.Errorf("peer %s job %s stopped: %s", peer, id, view.StopReason)
		case StateFailed:
			return nil, shardRetry, fmt.Errorf("peer %s job %s failed: %s", peer, id, view.Error)
		}
	}
}
