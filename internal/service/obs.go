package service

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/graphmining/hbbmc/internal/obs"
)

// serverObs bundles the server's Prometheus-facing instrumentation: the
// latency histograms fed by the job lifecycle, the function metrics
// mirroring the expvar counter set, and the Go runtime collectors. One
// serverObs belongs to one Server (nothing registers globally), so tests
// and embedders can run servers side by side with independent scrapes.
type serverObs struct {
	reg *obs.Registry

	// jobLatency observes submission→terminal wall time of every job.
	jobLatency *obs.Histogram
	// queueWait observes the admission wait until worker slots were granted
	// (admitted jobs only — rejected requests never hold slots).
	queueWait *obs.Histogram
	// phases observe the per-phase enumeration timers of jobs that ran with
	// phase timers enabled, indexed like core.Stats.PhaseTimes.
	phases [4]*obs.Histogram
	// streamStall observes how long the enumeration blocked on the full
	// clique channel waiting for the streaming client.
	streamStall *obs.Histogram
	// sessionBuild observes cache-miss session construction (parse-free
	// preprocessing); cache hits cost nothing and are not observed.
	sessionBuild *obs.Histogram
	// journalFsync observes the write-ahead journal's per-append fsync.
	journalFsync *obs.Histogram
	// shardRTT observes the coordinator's dispatch POST round trip per
	// shard attempt.
	shardRTT *obs.Histogram

	// slowLast is the unix-nanosecond timestamp of the last slow-query dump;
	// at most one dump per second survives the rate limit.
	slowLast atomic.Int64
}

// phaseNames indexes serverObs.phases, matching core.Stats.PhaseTimes.
var phaseNames = [4]string{"universe", "pivot", "et", "emit"}

func newServerObs(m *metrics) *serverObs {
	r := obs.NewRegistry()
	o := &serverObs{reg: r}
	o.jobLatency = r.Histogram("mced_job_duration_seconds",
		"End-to-end job latency from submission to terminal state.", "", obs.LatencyBuckets())
	o.queueWait = r.Histogram("mced_queue_wait_seconds",
		"Admission-queue wait until worker slots were granted.", "", obs.FineBuckets())
	for i, phase := range phaseNames {
		o.phases[i] = r.Histogram("mced_phase_seconds",
			"Per-phase enumeration time of jobs run with phase timers.",
			`phase="`+phase+`"`, obs.FineBuckets())
	}
	o.streamStall = r.Histogram("mced_stream_stall_seconds",
		"Time the enumeration blocked on a full clique channel waiting for the streaming client.",
		"", obs.FineBuckets())
	o.sessionBuild = r.Histogram("mced_session_build_seconds",
		"Session construction time on cache misses (ordering preprocessing).", "", obs.LatencyBuckets())
	o.journalFsync = r.Histogram("mced_journal_fsync_seconds",
		"Write-ahead journal fsync latency per appended record.", "", obs.FineBuckets())
	o.shardRTT = r.Histogram("mced_shard_rtt_seconds",
		"Coordinator shard dispatch round-trip time per attempt.", "", obs.FineBuckets())
	for _, kv := range m.vars() {
		kind, help := obs.KindCounter, "Cumulative counter from the mced metrics set."
		if kv.gauge {
			kind, help = obs.KindGauge, "Gauge from the mced metrics set."
		}
		v := kv.v
		r.Func("mced_"+kv.name, help, "", kind, func() float64 { return float64(v.Value()) })
	}
	r.RegisterGoRuntime()
	return o
}

// jobTerminal is the jobManager's terminal hook, invoked on every terminal
// transition before the job's done channel closes: it feeds the latency and
// per-phase histograms, closes the trace timeline with its "run" span, logs
// the outcome and emits the sampled slow-query report.
func (s *Server) jobTerminal(j *Job) {
	j.mu.Lock()
	created, started, finished := j.created, j.started, j.finished
	state, reason, errMsg := j.state, j.stopReason, j.errMsg
	stats := j.stats
	wait := j.queueWait
	j.mu.Unlock()

	e2e := finished.Sub(created)
	s.obs.jobLatency.ObserveDuration(e2e)
	if !started.IsZero() {
		j.trace.Record("run", started, finished.Sub(started))
	}
	if stats != nil {
		for i, pt := range stats.PhaseTimes() {
			if pt.Duration > 0 {
				s.obs.phases[i].ObserveDuration(pt.Duration)
			}
		}
	}

	log := s.log.With(
		slog.String("job", j.ID),
		slog.String("trace", j.trace.ID()),
		slog.String("dataset", j.Dataset),
		slog.String("type", j.Mode),
		slog.String("state", string(state)))
	attrs := []any{
		slog.Duration("duration", e2e),
		slog.Duration("queue_wait", wait),
		slog.Int64("cliques_delivered", j.delivered.Load()),
	}
	if reason != "" {
		attrs = append(attrs, slog.String("stop_reason", reason))
	}
	if errMsg != "" {
		attrs = append(attrs, slog.String("error", errMsg))
	}
	if stats != nil {
		attrs = append(attrs, slog.Int64("cliques", stats.Cliques), slog.Int("max_clique_size", stats.MaxCliqueSize))
	}
	log.Info("job finished", attrs...)

	if s.cfg.SlowQuery <= 0 || e2e < s.cfg.SlowQuery {
		return
	}
	// Sampled: at most one full dump per second, so a saturated server with
	// a pathological dataset cannot turn its own slow-query log into load.
	now := time.Now().UnixNano()
	last := s.obs.slowLast.Load()
	if now-last < int64(time.Second) || !s.obs.slowLast.CompareAndSwap(last, now) {
		s.m.slowQueriesSuppressed.Add(1)
		return
	}
	s.m.slowQueries.Add(1)
	slow := []any{
		slog.Duration("duration", e2e),
		slog.Duration("threshold", s.cfg.SlowQuery),
		slog.Any("timeline", j.trace.View()),
	}
	if stats != nil {
		slow = append(slow, slog.Any("stats", stats))
	}
	log.Warn("slow query", slow...)
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the job's span timeline
// under its trace ID. For a coordinator job the timeline includes the spans
// merged back from its worker peers, each tagged with the peer's base URL.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.trace.View())
}
