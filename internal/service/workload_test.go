package service_test

import (
	"net/http"
	"slices"
	"testing"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/service"
)

// sortedCliques enumerates every maximal clique of g in-process and sorts
// them under the top-k total order (size descending, then lexicographically
// ascending on the sorted vertices).
func sortedCliques(t *testing.T, g *hbbmc.Graph) [][]int32 {
	t.Helper()
	all, _, err := hbbmc.Collect(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all {
		slices.Sort(c)
	}
	slices.SortFunc(all, func(a, b []int32) int {
		if len(a) != len(b) {
			return len(b) - len(a)
		}
		return slices.Compare(a, b)
	})
	return all
}

// bruteTriangles counts the 3-cliques of g directly.
func bruteTriangles(g *hbbmc.Graph) int64 {
	n := int32(g.NumVertices())
	var count int64
	for u := int32(0); u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w > v && g.HasEdge(u, w) {
					count++
				}
			}
		}
	}
	return count
}

func TestMaxCliqueJob(t *testing.T) {
	withTestProcs(t, 2)
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(300, 2400, 21)
	e.registerGraph("er", g)
	want := len(sortedCliques(t, g)[0])

	v := e.startJob(map[string]any{"dataset": "er", "type": "max_clique", "workers": 2})
	if v.Type != "max_clique" || v.Mode != "max_clique" {
		t.Fatalf("job view type=%q mode=%q, want max_clique for both", v.Type, v.Mode)
	}
	v = e.waitJob(v.ID)
	if v.State != service.StateDone || v.Stats == nil {
		t.Fatalf("max_clique job: state=%s stats=%v", v.State, v.Stats)
	}
	if len(v.MaxClique) != want || v.Stats.MaxCliqueSize != want {
		t.Fatalf("witness %v (ω reported %d), want size %d", v.MaxClique, v.Stats.MaxCliqueSize, want)
	}
	if !g.IsClique(v.MaxClique) {
		t.Fatalf("witness %v is not a clique", v.MaxClique)
	}
	// The scalar-result job has no clique stream.
	resp, _ := e.do("GET", "/v1/jobs/"+v.ID+"/cliques", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stream on a max_clique job = %d, want 400", resp.StatusCode)
	}
	if e.metric("jobs_type_max_clique") != 1 {
		t.Fatalf("jobs_type_max_clique = %d, want 1", e.metric("jobs_type_max_clique"))
	}
}

func TestTopKJobStreamsLargestCliques(t *testing.T) {
	withTestProcs(t, 2)
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(300, 2400, 22)
	e.registerGraph("er", g)
	const k = 5
	want := sortedCliques(t, g)
	if len(want) > k {
		want = want[:k]
	}

	v := e.startJob(map[string]any{"dataset": "er", "type": "top_k", "k": k, "workers": 2})
	if v.K != k {
		t.Fatalf("job view k=%d, want %d", v.K, k)
	}
	cliques, trailer := streamJob(t, e, v.ID)
	if trailer == nil || trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}
	if !slices.EqualFunc(cliques, want, slices.Equal) {
		t.Fatalf("streamed top-%d:\n got %v\nwant %v", k, cliques, want)
	}
	if e.metric("jobs_type_top_k") != 1 {
		t.Fatalf("jobs_type_top_k = %d, want 1", e.metric("jobs_type_top_k"))
	}
}

func TestKCliqueCountJob(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(200, 1600, 23)
	e.registerGraph("er", g)
	want := bruteTriangles(g)

	v := e.startJob(map[string]any{"dataset": "er", "type": "kclique_count", "k": 3})
	v = e.waitJob(v.ID)
	if v.State != service.StateDone || v.Stats == nil {
		t.Fatalf("kclique_count job: state=%s stats=%v", v.State, v.Stats)
	}
	if v.Stats.KCliques != want {
		t.Fatalf("Stats.KCliques = %d, want %d triangles", v.Stats.KCliques, want)
	}
	resp, _ := e.do("GET", "/v1/jobs/"+v.ID+"/cliques", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stream on a kclique_count job = %d, want 400", resp.StatusCode)
	}
	if e.metric("jobs_type_kclique_count") != 1 {
		t.Fatalf("jobs_type_kclique_count = %d, want 1", e.metric("jobs_type_kclique_count"))
	}
}

func TestJobTypeValidation(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(100, 300, 24)
	e.registerGraph("er", g)
	for name, req := range map[string]map[string]any{
		"unknown type":             {"dataset": "er", "type": "biggest"},
		"top_k without k":          {"dataset": "er", "type": "top_k"},
		"kclique_count k=0":        {"dataset": "er", "type": "kclique_count", "k": 0},
		"negative k":               {"dataset": "er", "type": "top_k", "k": -2},
		"k on enumerate":           {"dataset": "er", "type": "enumerate", "k": 3},
		"k on count":               {"dataset": "er", "mode": "count", "k": 3},
		"type/mode disagree":       {"dataset": "er", "type": "count", "mode": "enumerate"},
		"branch_range on max":      {"dataset": "er", "type": "max_clique", "branch_range": []int{0, 4}},
		"branch_range on top_k":    {"dataset": "er", "type": "top_k", "k": 2, "branch_range": []int{0, 4}},
		"branch_range on kcliques": {"dataset": "er", "type": "kclique_count", "k": 3, "branch_range": []int{0, 4}},
	} {
		resp, data := e.do("POST", "/v1/jobs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, data)
		}
	}
	// "type" and "mode" agreeing (or either alone) are all accepted.
	for _, req := range []map[string]any{
		{"dataset": "er", "type": "count"},
		{"dataset": "er", "mode": "count"},
		{"dataset": "er", "type": "count", "mode": "count"},
	} {
		v := e.startJob(req)
		if v.Type != "count" {
			t.Fatalf("job view type = %q, want count (req %v)", v.Type, req)
		}
		e.waitJob(v.ID)
	}
}
