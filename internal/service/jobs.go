package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/obs"
	"github.com/graphmining/hbbmc/internal/service/journal"
)

// JobState is one step of the job lifecycle:
//
//	queued -> running -> done | stopped | failed
//
// "done" is a complete enumeration, "stopped" an intentional early exit
// (clique budget, cancellation, deadline), "failed" an error — including a
// 429'd admission, so rejected jobs remain observable.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateStopped JobState = "stopped"
	StateFailed  JobState = "failed"
)

func (s JobState) terminal() bool {
	return s == StateDone || s == StateStopped || s == StateFailed
}

// streamItem is one element of a job's clique channel: either a clique on
// its way to the NDJSON stream, or (ckpt > 0) a checkpoint marker telling
// the client that every clique of residue + branches [0, ckpt) has been
// delivered and the watermark is durable — the cursor a reconnecting client
// hands back as ?resume_after=.
type streamItem struct {
	c    []int32
	ckpt int
}

// Job is one enumeration or count run against a registered dataset. The
// mutable fields are guarded by mu; the clique channel is the bounded pipe
// between the enumeration's Visitor and the NDJSON stream handler — a full
// channel blocks the workers, which is the service's backpressure.
type Job struct {
	ID      string
	Dataset string
	// Mode is the resolved job type: "enumerate", "count", "max_clique",
	// "top_k" or "kclique_count" (the request's "type" and legacy "mode"
	// fields are aliases for it).
	Mode    string
	K       int // the k of a top_k or kclique_count job
	Opts    hbbmc.Options
	Query   hbbmc.QueryOptions
	Workers int // worker slots held while running
	// trace is the job's span timeline: assigned at creation (a coordinator
	// dispatch adopts the propagated trace ID), immutable afterwards, and
	// internally synchronized — recorded into without holding mu.
	trace *obs.Trace

	mu sync.Mutex
	//hbbmc:guardedby mu
	state JobState
	//hbbmc:guardedby mu
	stopReason string
	//hbbmc:guardedby mu
	errMsg string
	//hbbmc:guardedby mu
	stats *hbbmc.Stats
	// maxClique is the witness clique of a finished max_clique job.
	//hbbmc:guardedby mu
	maxClique []int32
	//hbbmc:guardedby mu
	created time.Time
	//hbbmc:guardedby mu
	started time.Time
	//hbbmc:guardedby mu
	finished time.Time

	//hbbmc:guardedby mu
	sessionCached bool
	//hbbmc:guardedby mu
	prepTime time.Duration
	// queueWait is the admission wait this job paid before its worker slots
	// were granted (zero for coordinator jobs, which hold no local slots).
	//hbbmc:guardedby mu
	queueWait time.Duration
	// sharded marks a coordinator job: its branch intervals ran on peer
	// nodes and it held no local worker slots.
	//hbbmc:guardedby mu
	sharded bool
	// journaled marks a job recorded in the write-ahead journal; its
	// terminal state (except a server-shutdown stop, which must stay
	// resumable) is appended there too.
	//hbbmc:guardedby mu
	journaled bool
	// resume holds the journal-replayed progress of a restored job until a
	// resume run consumes it; nil on fresh jobs.
	//hbbmc:guardedby mu
	resume *resumeState
	// ckptBase is the durable prefix a resumed run starts from: its totals
	// are folded into the run's final Stats so the job reports the whole
	// logical enumeration, not just the re-run suffix.
	//hbbmc:guardedby mu
	ckptBase journal.Ckpt

	//hbbmc:guardedby mu
	cancel       context.CancelFunc
	cancelReason atomic.Pointer[string]
	// cancelled closes on the first requestCancel, before j.cancel exists:
	// it is the signal that reaches a job still waiting in admission.
	cancelled   chan struct{}
	cancelOnce  sync.Once
	cliques     chan streamItem // nil for count jobs
	streamClaim atomic.Bool
	delivered   atomic.Int64
	done        chan struct{} // closed when the state turns terminal
}

// resumeState is the journal-replayed progress of one restored job.
type resumeState struct {
	req       jobRequest // the original submission, replayed verbatim
	crc       string     // graph fingerprint the job ran against ("" = never ran)
	branches  int        // NumTopBranches of the original session
	watermark int        // highest durable checkpoint (0 = none)
	ckpts     map[int]journal.Ckpt
}

// JobView is the JSON representation of a Job. Type and Mode carry the same
// value — Type is the canonical name, Mode the pre-workload-query alias kept
// for older clients.
type JobView struct {
	ID      string `json:"id"`
	Dataset string `json:"dataset"`
	Type    string `json:"type"`
	Mode    string `json:"mode"`
	// K is the k of a top_k or kclique_count job.
	K          int      `json:"k,omitempty"`
	Algorithm  string   `json:"algorithm"`
	State      JobState `json:"state"`
	StopReason string   `json:"stop_reason,omitempty"`
	Error      string   `json:"error,omitempty"`
	Workers    int      `json:"workers"`
	// SessionCached reports whether the job reused a warm session (its
	// query paid zero ordering time); PrepTimeNS is the cached
	// preprocessing cost either way.
	SessionCached bool          `json:"session_cached"`
	PrepTimeNS    time.Duration `json:"prep_time_ns"`
	// Sharded marks a coordinator job (work fanned out to peers);
	// BranchRange is the [lo, hi) schedule interval of a shard job running
	// on behalf of a remote coordinator. A plain local job has neither.
	Sharded     bool    `json:"sharded,omitempty"`
	BranchRange *[2]int `json:"branch_range,omitempty"`
	// Delivered counts cliques handed to the streaming client so far.
	Delivered int64 `json:"cliques_delivered"`
	// TraceID identifies the job's span timeline (GET /v1/jobs/{id}/trace);
	// a shard job dispatched by a coordinator carries the coordinator's ID.
	TraceID string `json:"trace_id,omitempty"`
	// QueueWaitMS is the admission wait the job paid before its worker
	// slots were granted, in milliseconds.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// MaxClique is the witness of a finished max_clique job (sorted original
	// vertex ids); its size is Stats.MaxCliqueSize. A kclique_count job's
	// count is Stats.KCliques.
	MaxClique []int32      `json:"max_clique,omitempty"`
	Stats     *hbbmc.Stats `json:"stats,omitempty"`
	CreatedAt string       `json:"created_at"`
	StartedAt string       `json:"started_at,omitempty"`
	DoneAt    string       `json:"finished_at,omitempty"`
}

// View snapshots the job for JSON rendering.
func (j *Job) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:            j.ID,
		Dataset:       j.Dataset,
		Type:          j.Mode,
		Mode:          j.Mode,
		K:             j.K,
		MaxClique:     j.maxClique,
		Algorithm:     j.Opts.Algorithm.String(),
		State:         j.state,
		StopReason:    j.stopReason,
		Error:         j.errMsg,
		Workers:       j.Workers,
		SessionCached: j.sessionCached,
		PrepTimeNS:    j.prepTime,
		Sharded:       j.sharded,
		Delivered:     j.delivered.Load(),
		TraceID:       j.trace.ID(),
		QueueWaitMS:   float64(j.queueWait) / float64(time.Millisecond),
		Stats:         j.stats,
		CreatedAt:     j.created.UTC().Format(time.RFC3339Nano),
	}
	if j.Query.BranchLo != 0 || j.Query.BranchHi != 0 {
		v.BranchRange = &[2]int{j.Query.BranchLo, j.Query.BranchHi}
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.DoneAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	return v
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns the channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// requestCancel asks a job to stop; reason is recorded as the stop reason
// ("cancelled", "client disconnected"). The first reason wins. It works in
// every non-terminal state: a running job's context is cancelled, and a job
// still queued in admission observes the cancelled channel and never runs.
func (j *Job) requestCancel(reason string) {
	j.cancelReason.CompareAndSwap(nil, &reason)
	j.cancelOnce.Do(func() { close(j.cancelled) })
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// jobManager tracks every job the server admitted (and the rejected ones,
// kept as failed for observability) and prunes terminal jobs beyond the
// history limit.
type jobManager struct {
	mu sync.Mutex
	//hbbmc:guardedby mu
	jobs map[string]*Job
	//hbbmc:guardedby mu
	order []string // creation order, for listing and pruning
	//hbbmc:guardedby mu
	seq        int64
	maxHistory int
	m          *metrics
	// jnl is the write-ahead journal (nil when the server runs without one);
	// terminal transitions of journaled jobs are appended to it.
	jnl *journal.Journal
	// onTerminal runs on every terminal transition, after the terminal state
	// is recorded and before the done channel closes — the server's
	// observability hook (latency histograms, trace closure, logging).
	onTerminal func(*Job)
}

func newJobManager(maxHistory int, m *metrics) *jobManager {
	return &jobManager{jobs: make(map[string]*Job), maxHistory: maxHistory, m: m}
}

func (jm *jobManager) create(dataset, typ string, k int, opts hbbmc.Options, q hbbmc.QueryOptions, workers, buffer int, tr *obs.Trace) *Job {
	if tr == nil {
		tr = obs.NewTrace()
	}
	jm.mu.Lock()
	jm.seq++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", jm.seq),
		Dataset:   dataset,
		Mode:      typ,
		K:         k,
		Opts:      opts,
		Query:     q,
		Workers:   workers,
		trace:     tr,
		state:     StateQueued,
		created:   time.Now(),
		cancelled: make(chan struct{}),
		done:      make(chan struct{}),
	}
	if typ == "enumerate" || typ == "top_k" {
		// The job types that deliver cliques over /cliques get a stream
		// channel; the scalar-result types report through Stats instead.
		j.cliques = make(chan streamItem, buffer)
	}
	jm.jobs[j.ID] = j
	jm.order = append(jm.order, j.ID)
	jm.pruneLocked()
	jm.mu.Unlock()
	jm.m.jobsQueued.Add(1)
	if c := jm.m.jobsByType(typ); c != nil {
		c.Add(1)
	}
	return j
}

// restore inserts a journal-replayed job under its original ID and bumps
// the sequence past it, so fresh submissions never collide with restored
// history. Terminal restores are history only; non-terminal ones re-enter
// the queued gauge.
func (jm *jobManager) restore(j *Job) {
	jm.mu.Lock()
	if _, ok := jm.jobs[j.ID]; ok {
		jm.mu.Unlock()
		return
	}
	jm.jobs[j.ID] = j
	jm.order = append(jm.order, j.ID)
	var n int64
	if _, err := fmt.Sscanf(j.ID, "j%06d", &n); err == nil && n > jm.seq {
		jm.seq = n
	}
	jm.mu.Unlock()
	if !j.State().terminal() {
		jm.m.jobsQueued.Add(1)
	}
}

// journalTerminal appends a journaled job's terminal record. A stop caused
// by the server's own shutdown is deliberately not recorded: the job must
// replay as interrupted so the restarted daemon resumes it.
func (jm *jobManager) journalTerminal(j *Job) {
	if jm.jnl == nil {
		return
	}
	j.mu.Lock()
	journaled := j.journaled
	state, reason, errMsg := j.state, j.stopReason, j.errMsg
	stats := j.stats
	j.mu.Unlock()
	if !journaled || reason == "server shutdown" {
		return
	}
	var raw json.RawMessage
	if stats != nil {
		raw, _ = json.Marshal(stats)
	}
	// Best-effort: a wedged (crash-injected) or failing journal must not
	// change the job's outcome, only what a restart can recover.
	_ = jm.jnl.AppendTerminal(j.ID, string(state), reason, errMsg, raw)
}

// pruneLocked drops the oldest terminal jobs beyond the history limit so a
// long-running daemon's job table stays bounded. Live jobs are never
// dropped.
func (jm *jobManager) pruneLocked() {
	excess := len(jm.jobs) - jm.maxHistory
	if excess <= 0 {
		return
	}
	kept := jm.order[:0]
	for _, id := range jm.order {
		j := jm.jobs[id]
		if j == nil {
			continue
		}
		if excess > 0 && j.State().terminal() {
			delete(jm.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	jm.order = append([]string(nil), kept...)
}

func (jm *jobManager) get(id string) (*Job, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	return j, ok
}

func (jm *jobManager) list() []*Job {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	out := make([]*Job, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// markRunning moves a queued job to running.
func (jm *jobManager) markRunning(j *Job) {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	jm.m.jobsQueued.Add(-1)
	jm.m.jobsRunning.Add(1)
}

// markStopped records a job cancelled before it ever ran (still queued in
// admission when the cancel landed).
func (jm *jobManager) markStopped(j *Job, reason string) {
	j.mu.Lock()
	j.state = StateStopped
	j.stopReason = reason
	j.finished = time.Now()
	j.mu.Unlock()
	jm.m.jobsQueued.Add(-1)
	jm.m.jobsStopped.Add(1)
	jm.journalTerminal(j)
	if jm.onTerminal != nil {
		jm.onTerminal(j)
	}
	close(j.done)
}

// markFailed moves a job to failed from any non-terminal state (admission
// rejections fail from queued; run errors fail from running).
func (jm *jobManager) markFailed(j *Job, msg string) {
	j.mu.Lock()
	wasRunning := j.state == StateRunning
	j.state = StateFailed
	j.errMsg = msg
	j.finished = time.Now()
	j.mu.Unlock()
	if wasRunning {
		jm.m.jobsRunning.Add(-1)
	} else {
		jm.m.jobsQueued.Add(-1)
	}
	jm.m.jobsFailed.Add(1)
	jm.journalTerminal(j)
	if jm.onTerminal != nil {
		jm.onTerminal(j)
	}
	close(j.done)
}

// finish records a terminal state from the enumeration's outcome. The state
// and stats are set before the clique channel is closed (the caller closes
// it after finish returns), so a streaming reader that drains the channel
// always observes the terminal state.
func (jm *jobManager) finish(j *Job, stats *hbbmc.Stats, runErr error, ctx context.Context) {
	state := StateDone
	reason := ""
	msg := ""
	switch {
	case runErr == nil:
		// Complete run; a cancellation that raced the final branch and was
		// never observed by the driver does not repaint the outcome.
	case errors.Is(runErr, context.Canceled), errors.Is(runErr, context.DeadlineExceeded),
		errors.Is(runErr, hbbmc.ErrStopped):
		state = StateStopped
		switch {
		case j.cancelReason.Load() != nil:
			reason = *j.cancelReason.Load()
		case errors.Is(runErr, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
			reason = "deadline"
		case errors.Is(runErr, hbbmc.ErrStopped):
			reason = "max_cliques"
		default:
			reason = "cancelled"
		}
	default:
		state = StateFailed
		msg = runErr.Error()
	}
	j.mu.Lock()
	j.state = state
	j.stopReason = reason
	j.errMsg = msg
	j.stats = stats
	j.finished = time.Now()
	j.mu.Unlock()
	jm.m.jobsRunning.Add(-1)
	switch state {
	case StateDone:
		jm.m.jobsDone.Add(1)
	case StateStopped:
		jm.m.jobsStopped.Add(1)
	default:
		jm.m.jobsFailed.Add(1)
	}
	jm.journalTerminal(j)
	if jm.onTerminal != nil {
		jm.onTerminal(j)
	}
	close(j.done)
}
