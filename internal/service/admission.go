package service

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// ErrSaturated is returned by slotSem.Acquire when the request cannot be
// admitted: the admission queue is full, or the queue wait expired before
// enough worker slots freed up. The HTTP layer maps it to 429.
var ErrSaturated = errors.New("service: worker slots saturated")

// slotSem is a FIFO weighted semaphore over the server's global worker
// slots. Every job acquires as many slots as the worker goroutines its
// query will run, so N concurrent jobs can never oversubscribe the machine
// the way N independent GOMAXPROCS-wide queries would. Admission is strictly
// FIFO — a small request does not jump a large one at the head of the queue,
// so wide jobs cannot starve.
type slotSem struct {
	mu  sync.Mutex
	cap int // total slots
	//hbbmc:guardedby mu
	avail int // currently free slots
	//hbbmc:guardedby mu
	queue    *list.List // of *slotWaiter, FIFO
	maxQueue int        // waiters beyond this are rejected immediately
}

type slotWaiter struct {
	n     int
	ready chan struct{} // closed on grant
}

func newSlotSem(capacity, maxQueue int) *slotSem {
	return &slotSem{cap: capacity, avail: capacity, queue: list.New(), maxQueue: maxQueue}
}

// Capacity returns the total number of worker slots.
func (s *slotSem) Capacity() int { return s.cap }

// InUse returns the number of slots currently held.
func (s *slotSem) InUse() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap - s.avail
}

// Queued returns the number of requests waiting for slots.
func (s *slotSem) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.Len()
}

// Acquire claims n slots (clamped to the capacity), queueing FIFO behind
// earlier requests while the slots are busy. It returns nil once the slots
// are held, and ErrSaturated when the queue is full on arrival or ctx
// expires first; the caller's ctx deadline is the admission wait.
func (s *slotSem) Acquire(ctx context.Context, n int) error {
	if n < 1 {
		n = 1
	}
	if n > s.cap {
		n = s.cap
	}
	s.mu.Lock()
	if s.queue.Len() == 0 && s.avail >= n {
		s.avail -= n
		s.mu.Unlock()
		return nil
	}
	if s.queue.Len() >= s.maxQueue {
		s.mu.Unlock()
		return ErrSaturated
	}
	w := &slotWaiter{n: n, ready: make(chan struct{})}
	elem := s.queue.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with the timeout: keep the slots; the
			// caller observes success.
			s.mu.Unlock()
			return nil
		default:
		}
		s.queue.Remove(elem)
		// Removing a wide waiter from the head may unblock narrower ones
		// behind it.
		s.grantLocked()
		s.mu.Unlock()
		return ErrSaturated
	}
}

// Release returns n slots and hands them to queued waiters in FIFO order.
// n must match a prior Acquire's effective (clamped) count.
func (s *slotSem) Release(n int) {
	s.mu.Lock()
	s.avail += n
	if s.avail > s.cap {
		s.avail = s.cap
	}
	s.grantLocked()
	s.mu.Unlock()
}

// grantLocked satisfies queued waiters from the front while slots last.
// Strict FIFO: the head waiter blocks everyone behind it until it fits.
func (s *slotSem) grantLocked() {
	for e := s.queue.Front(); e != nil; e = s.queue.Front() {
		w := e.Value.(*slotWaiter)
		if s.avail < w.n {
			return
		}
		s.avail -= w.n
		s.queue.Remove(e)
		close(w.ready)
	}
}
