package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// retryEnv is a handler whose first fail responses return code, the rest
// 200; it counts every request it sees.
type retryEnv struct {
	calls atomic.Int64
	fail  int64
	code  int
}

func (h *retryEnv) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	if h.calls.Add(1) <= h.fail {
		w.WriteHeader(h.code)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func getBuilder(url string) func() (*http.Request, error) {
	return func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	}
}

func TestRetryClientEventualSuccess(t *testing.T) {
	h := &retryEnv{fail: 2, code: http.StatusInternalServerError}
	ts := httptest.NewServer(h)
	defer ts.Close()

	var retries atomic.Int64
	rc := newRetryClient(ts.Client(), 4, time.Millisecond, 4*time.Millisecond)
	rc.onRetry = func() { retries.Add(1) }
	resp, err := rc.Do(context.Background(), getBuilder(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", resp.StatusCode)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two 500s, one 200)", got)
	}
	if got := retries.Load(); got != 2 {
		t.Fatalf("onRetry fired %d times, want 2", got)
	}
}

func TestRetryClient429Retried(t *testing.T) {
	h := &retryEnv{fail: 1, code: http.StatusTooManyRequests}
	ts := httptest.NewServer(h)
	defer ts.Close()

	rc := newRetryClient(ts.Client(), 3, time.Millisecond, 4*time.Millisecond)
	resp, err := rc.Do(context.Background(), getBuilder(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK || h.calls.Load() != 2 {
		t.Fatalf("status %d after %d calls, want 200 after 2", resp.StatusCode, h.calls.Load())
	}
}

func TestRetryClientNonRetryableStatusReturnsImmediately(t *testing.T) {
	h := &retryEnv{fail: 10, code: http.StatusConflict}
	ts := httptest.NewServer(h)
	defer ts.Close()

	rc := newRetryClient(ts.Client(), 5, time.Millisecond, 4*time.Millisecond)
	resp, err := rc.Do(context.Background(), getBuilder(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want the 409 passed through", resp.StatusCode)
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests for a non-retryable status, want 1", got)
	}
}

func TestRetryClientExhaustionReturnsLastResponse(t *testing.T) {
	// When every attempt gets a retryable status, the final attempt's
	// response is returned rather than swallowed: the caller decides what a
	// persistent 500 means (the coordinator classifies it as shardRetry).
	h := &retryEnv{fail: 100, code: http.StatusInternalServerError}
	ts := httptest.NewServer(h)
	defer ts.Close()

	rc := newRetryClient(ts.Client(), 3, time.Millisecond, 4*time.Millisecond)
	resp, err := rc.Do(context.Background(), getBuilder(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want the final 500 returned", resp.StatusCode)
	}
	if got := h.calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want exactly maxAttempts=3", got)
	}
}

func TestRetryClientTransportErrorExhaustion(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close() // every attempt now fails at the transport

	rc := newRetryClient(&http.Client{}, 3, time.Millisecond, 4*time.Millisecond)
	resp, err := rc.Do(context.Background(), getBuilder(url))
	if err == nil {
		drainClose(resp.Body)
		t.Fatal("Do succeeded against a closed server")
	}
	if !strings.Contains(err.Error(), "3 attempts exhausted") {
		t.Fatalf("err = %v, want the attempts-exhausted wrap", err)
	}
}

func TestRetryClientContextCancelDuringBackoff(t *testing.T) {
	h := &retryEnv{fail: 100, code: http.StatusInternalServerError}
	ts := httptest.NewServer(h)
	defer ts.Close()

	// First attempt fails fast; the deadline then lands inside the long
	// backoff, which must abort the wait instead of sleeping it out.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rc := newRetryClient(ts.Client(), 3, time.Second, 2*time.Second)
	start := time.Now()
	_, err := rc.Do(ctx, getBuilder(ts.URL))
	if err == nil {
		t.Fatal("Do succeeded past a dead context")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("Do took %v, the backoff sleep ignored the context", elapsed)
	}
	if got := h.calls.Load(); got != 1 {
		t.Fatalf("server saw %d requests, want 1 (cancel landed in backoff)", got)
	}
}

func TestRetryClientBuildFreshPerAttempt(t *testing.T) {
	h := &retryEnv{fail: 2, code: http.StatusInternalServerError}
	ts := httptest.NewServer(h)
	defer ts.Close()

	var builds atomic.Int64
	rc := newRetryClient(ts.Client(), 4, time.Millisecond, 4*time.Millisecond)
	resp, err := rc.Do(context.Background(), func() (*http.Request, error) {
		builds.Add(1)
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	drainClose(resp.Body)
	if got := builds.Load(); got != 3 {
		t.Fatalf("build ran %d times, want once per attempt (3)", got)
	}
}

func TestJitterBackoffBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	for attempt := 1; attempt <= 6; attempt++ {
		want := base << (attempt - 1)
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 50; i++ {
			d := jitterBackoff(base, max, attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}
