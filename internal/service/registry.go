package service

import (
	"container/list"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/obs"
)

// Registry maps dataset names to graph files, loads each graph once
// (through the .hbg sidecar snapshot cache) and keeps warm Sessions — one
// per (dataset, algorithm-relevant options) pair — under an LRU byte
// budget measured by Session.MemoryEstimate. It is the component that
// turns the per-query cost of the service from parse+preprocess into pure
// enumeration: the first job on a (dataset, options) pair pays NewSession,
// every later one starts enumerating immediately.
type Registry struct {
	mu sync.Mutex
	//hbbmc:guardedby mu
	datasets map[string]*dataset
	//hbbmc:guardedby mu
	sessions map[string]*sessionEntry // dataset name + "\x00" + Options.SessionKey()
	//hbbmc:guardedby mu
	lru *list.List // of *sessionEntry; front = most recently used
	//hbbmc:guardedby mu
	used   int64 // bytes of built sessions
	budget int64
	m      *metrics
	// buildHist observes cache-miss session construction time (nil-safe:
	// obs histograms ignore observations on a nil receiver).
	buildHist *obs.Histogram
}

type dataset struct {
	name   string
	path   string
	format hbbmc.Format

	// The graph loads once, outside any registry lock — a multi-second
	// parse must not stall unrelated registry operations. The fields below
	// are written only inside once and read only after observing
	// loaded=true (or from within graph()), so no mutex is needed.
	once      sync.Once
	loaded    atomic.Bool
	g         *hbbmc.Graph
	fp        uint32 // .hbg payload CRC, computed once at load
	loadTime  time.Duration
	fromCache bool
	loadErr   error
}

type sessionEntry struct {
	key     string
	dataset string
	elem    *list.Element

	once sync.Once
	sess *hbbmc.Session
	size int64
	err  error
}

// DatasetInfo is the JSON view of one registered dataset.
type DatasetInfo struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Format string `json:"format"`
	// Loaded reports whether the graph is resident; Vertices/Edges and the
	// load timings are only meaningful when it is.
	Loaded    bool  `json:"loaded"`
	Vertices  int   `json:"vertices,omitempty"`
	Edges     int   `json:"edges,omitempty"`
	GraphSize int64 `json:"graph_bytes,omitempty"`
	// Fingerprint is the graph's .hbg payload CRC-32C (8 hex digits), the
	// dataset identity the distributed coordinator matches shards against;
	// present only once the graph is loaded.
	Fingerprint string `json:"fingerprint,omitempty"`
	// FromCache reports whether the load was served by a .hbg sidecar
	// snapshot instead of a text parse.
	FromCache  bool          `json:"from_cache,omitempty"`
	LoadTimeNS time.Duration `json:"load_time_ns,omitempty"`
	// Sessions is the number of warm sessions cached for this dataset.
	Sessions int `json:"sessions"`
}

func newRegistry(budget int64, m *metrics, buildHist *obs.Histogram) *Registry {
	return &Registry{
		datasets:  make(map[string]*dataset),
		sessions:  make(map[string]*sessionEntry),
		lru:       list.New(),
		budget:    budget,
		m:         m,
		buildHist: buildHist,
	}
}

// Register adds a dataset under name. The file must exist; the graph itself
// is loaded lazily on the first job (or an explicit load), through the .hbg
// sidecar cache.
func (r *Registry) Register(name, path, format string) (DatasetInfo, error) {
	f, err := hbbmc.ParseFormat(format)
	if err != nil {
		return DatasetInfo{}, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return DatasetInfo{}, fmt.Errorf("service: dataset %q: %w", name, err)
	}
	if fi.IsDir() {
		return DatasetInfo{}, fmt.Errorf("service: dataset %q: %s is a directory", name, path)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.datasets[name]; ok {
		return DatasetInfo{}, fmt.Errorf("service: dataset %q already registered", name)
	}
	d := &dataset{name: name, path: path, format: f}
	r.datasets[name] = d
	r.m.datasets.Set(int64(len(r.datasets)))
	return r.infoLocked(d), nil
}

// Remove unregisters a dataset and evicts its cached sessions. Jobs already
// running on those sessions keep their references and finish normally.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.datasets[name]; !ok {
		return false
	}
	delete(r.datasets, name)
	for key, e := range r.sessions {
		if e.dataset == name {
			r.dropLocked(key, e)
		}
	}
	r.m.datasets.Set(int64(len(r.datasets)))
	return true
}

// Datasets returns the registered datasets sorted by name.
func (r *Registry) Datasets() []DatasetInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]DatasetInfo, 0, len(r.datasets))
	for _, d := range r.datasets {
		out = append(out, r.infoLocked(d))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dataset returns one dataset's info.
func (r *Registry) Dataset(name string) (DatasetInfo, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.datasets[name]
	if !ok {
		return DatasetInfo{}, false
	}
	return r.infoLocked(d), true
}

func (r *Registry) infoLocked(d *dataset) DatasetInfo {
	info := DatasetInfo{Name: d.name, Path: d.path, Format: d.format.String()}
	for _, e := range r.sessions {
		if e.dataset == d.name {
			info.Sessions++
		}
	}
	// A load still in flight reports Loaded=false rather than blocking the
	// registry lock behind it; observing loaded=true orders the reads of
	// the load-once fields.
	if d.loaded.Load() && d.loadErr == nil {
		info.Loaded = true
		info.Vertices = d.g.NumVertices()
		info.Edges = d.g.NumEdges()
		info.GraphSize = d.g.MemoryFootprint()
		info.Fingerprint = fmt.Sprintf("%08x", d.fp)
		info.FromCache = d.fromCache
		info.LoadTimeNS = d.loadTime
	}
	return info
}

// graph loads the dataset's graph once; concurrent callers share the load.
func (d *dataset) graph() (*hbbmc.Graph, error) {
	d.once.Do(func() {
		start := time.Now()
		g, fromCache, err := hbbmc.LoadFileCached(d.path, hbbmc.LoadOptions{Format: d.format})
		if err != nil {
			d.loadErr = fmt.Errorf("service: dataset %q: %w", d.name, err)
		} else {
			d.g, d.fromCache, d.loadTime = g, fromCache, time.Since(start)
			d.fp = g.Fingerprint()
		}
		d.loaded.Store(true)
	})
	return d.g, d.loadErr
}

// Session returns the warm Session for (dataset, opts), building it on the
// first request and reusing it afterwards. The bool reports a cache hit — a
// job served by an already-built session, the signal that its query paid
// zero preprocessing. Concurrent requests for the same key share one build.
func (r *Registry) Session(name string, opts hbbmc.Options) (*hbbmc.Session, bool, error) {
	r.mu.Lock()
	d, ok := r.datasets[name]
	if !ok {
		r.mu.Unlock()
		return nil, false, fmt.Errorf("service: unknown dataset %q", name)
	}
	key := name + "\x00" + opts.SessionKey()
	e, hit := r.sessions[key]
	if hit {
		r.lru.MoveToFront(e.elem)
		r.m.sessionHits.Add(1)
	} else {
		e = &sessionEntry{key: key, dataset: name}
		e.elem = r.lru.PushFront(e)
		r.sessions[key] = e
		r.m.sessionMisses.Add(1)
	}
	r.mu.Unlock()

	e.once.Do(func() {
		g, err := d.graph()
		if err != nil {
			e.err = err
			return
		}
		buildStart := time.Now()
		sess, err := hbbmc.NewSession(g, opts)
		if err != nil {
			e.err = err
			return
		}
		r.buildHist.ObserveDuration(time.Since(buildStart))
		e.sess = sess
		size := sess.MemoryEstimate()
		r.mu.Lock()
		// The entry may have been dropped (dataset removed, LRU evicted)
		// while building; only account it if it is still cached. e.size is
		// written under r.mu so dropLocked always sees the accounted value.
		if r.sessions[key] == e {
			e.size = size
			r.used += size
			r.evictLocked(e)
			r.m.sessionBytes.Set(r.used)
		}
		r.mu.Unlock()
	})
	if e.err != nil {
		r.mu.Lock()
		if r.sessions[key] == e {
			r.dropLocked(key, e)
		}
		r.mu.Unlock()
		return nil, false, e.err
	}
	return e.sess, hit, nil
}

// evictLocked walks the LRU from the tail, dropping sessions until the
// budget holds. keep (the entry just built) is skipped, never evicted — a
// single session larger than the whole budget still serves its job, it
// just evicts everything else. Skipped rather than stopped at: a slow
// build can sink to the tail while other keys take hits, and stopping
// there would leave the budget exceeded forever.
func (r *Registry) evictLocked(keep *sessionEntry) {
	e := r.lru.Back()
	for r.used > r.budget && e != nil {
		prev := e.Prev()
		if entry := e.Value.(*sessionEntry); entry != keep {
			r.dropLocked(entry.key, entry)
			r.m.sessionEvictions.Add(1)
		}
		e = prev
	}
}

func (r *Registry) dropLocked(key string, e *sessionEntry) {
	delete(r.sessions, key)
	r.lru.Remove(e.elem)
	r.used -= e.size
	if r.used < 0 {
		r.used = 0
	}
	r.m.sessionBytes.Set(r.used)
}

// SessionBytes returns the bytes currently held by cached sessions.
func (r *Registry) SessionBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}
