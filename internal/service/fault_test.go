package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/service"
)

// wrappedWorker is a real worker node behind a fault-injecting interceptor:
// requests the interceptor declines fall through to the genuine mced
// handler, so the node behaves correctly except for the programmed fault.
type wrappedWorker struct {
	ts *httptest.Server
}

// intercept returns true when it fully handled the request.
type intercept func(w http.ResponseWriter, r *http.Request, inner http.Handler) bool

func newWrappedWorker(t *testing.T, name string, g *hbbmc.Graph, cfg service.Config, ic intercept) *wrappedWorker {
	t.Helper()
	srv := service.New(cfg)
	path := filepath.Join(t.TempDir(), name+".hbg")
	if err := g.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Registry().Register(name, path, "auto"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ic != nil && ic(w, r, srv) {
			return
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("wrapped worker shutdown: %v", err)
		}
		ts.Close()
	})
	return &wrappedWorker{ts: ts}
}

// newCoordinatorEnv starts a coordinator over the given peer URLs with the
// dataset registered locally (the coordinator needs its own session for
// planning).
func newCoordinatorEnv(t *testing.T, name string, g *hbbmc.Graph, peers []string, mut func(*service.Config)) *testEnv {
	t.Helper()
	cfg := service.Config{
		Peers:            peers,
		ShardTimeout:     30 * time.Second,
		ShardMaxBranches: 7,
	}
	if mut != nil {
		mut(&cfg)
	}
	e := newTestEnv(t, cfg)
	e.registerGraph(name, g)
	return e
}

// TestFaultPersistent500FailsOver: one peer 500s every job creation, the
// other is healthy. Every shard must fail over and the merged result stay
// exact — a hard peer outage costs retries, never cliques.
func TestFaultPersistent500FailsOver(t *testing.T) {
	g := hbbmc.GenerateER(150, 900, 21)
	want := refCliqueSet(t, g)

	// The dead peer still answers the /v1/info probe (so it is "usable")
	// but rejects every POST /v1/jobs with 500.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/info" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"version":"stub","gomaxprocs":1,"worker_slots":1,"datasets":[{"name":"er","path":"x","format":"auto","loaded":false,"sessions":0}]}`)
			return
		}
		http.Error(w, "injected outage", http.StatusInternalServerError)
	}))
	defer dead.Close()
	healthy := newWrappedWorker(t, "er", g, service.Config{}, nil)

	e := newCoordinatorEnv(t, "er", g, []string{dead.URL, healthy.ts.URL}, nil)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate"})
	cliques, trailer := streamJob(t, e, v.ID)
	if len(cliques) != len(want) {
		fin := e.waitJob(v.ID)
		t.Fatalf("failover: %d cliques, want %d; trailer=%v stats=%+v", len(cliques), len(want), trailer, fin.Stats)
	}
	sameCliqueSet(t, "failover", cliqueSet(t, cliques), want)
	if trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}
	fin := e.waitJob(v.ID)
	if fin.Stats == nil || fin.Stats.ShardsRetried < 1 {
		t.Fatalf("stats = %+v, want ShardsRetried ≥ 1 (half the dispatches hit the dead peer)", fin.Stats)
	}
	if retried := e.metric("shards_retried"); retried < 1 {
		t.Fatalf("shards_retried metric = %d, want ≥ 1", retried)
	}
}

// TestFault429ThenRecover: a worker sheds the first job creations with 429
// (admission pressure); the retry client must absorb the burst and the job
// complete without losing a clique.
func TestFault429ThenRecover(t *testing.T) {
	g := hbbmc.GenerateER(150, 900, 22)
	want := refCliqueSet(t, g)

	var mu sync.Mutex
	shed := 2
	w := newWrappedWorker(t, "er", g, service.Config{}, func(rw http.ResponseWriter, r *http.Request, _ http.Handler) bool {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			mu.Lock()
			defer mu.Unlock()
			if shed > 0 {
				shed--
				http.Error(rw, "injected admission pressure", http.StatusTooManyRequests)
				return true
			}
		}
		return false
	})

	e := newCoordinatorEnv(t, "er", g, []string{w.ts.URL}, nil)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate"})
	cliques, trailer := streamJob(t, e, v.ID)
	sameCliqueSet(t, "429", cliqueSet(t, cliques), want)
	if trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}
	if retried := e.metric("shards_retried"); retried < 1 {
		t.Fatalf("shards_retried = %d, want ≥ 1 (the 429s)", retried)
	}
}

// TestFaultGarbageStream: a worker's first clique stream is corrupt NDJSON
// cut off mid-record. The shard must be re-dispatched and its first
// attempt's partial output discarded — exactly once delivery.
func TestFaultGarbageStream(t *testing.T) {
	g := hbbmc.GenerateER(150, 900, 23)
	want := refCliqueSet(t, g)

	var mu sync.Mutex
	poisoned := false
	w := newWrappedWorker(t, "er", g, service.Config{}, func(rw http.ResponseWriter, r *http.Request, _ http.Handler) bool {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/cliques") {
			mu.Lock()
			defer mu.Unlock()
			if !poisoned {
				poisoned = true
				rw.Header().Set("Content-Type", "application/x-ndjson")
				fmt.Fprint(rw, "{\"c\":[1,2,3]}\n{\"c\":[4,5")
				return true
			}
		}
		return false
	})

	e := newCoordinatorEnv(t, "er", g, []string{w.ts.URL}, nil)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate"})
	cliques, trailer := streamJob(t, e, v.ID)
	sameCliqueSet(t, "garbage", cliqueSet(t, cliques), want)
	if trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}
	if retried := e.metric("shards_retried"); retried < 1 {
		t.Fatalf("shards_retried = %d, want ≥ 1 (the poisoned stream)", retried)
	}
}

// TestFaultTruncatedStream: a worker's stream dies mid-flight (connection
// drop with no trailer). The buffered half must be discarded and the shard
// re-run — the merged set has no gap and no duplicate.
func TestFaultTruncatedStream(t *testing.T) {
	g := hbbmc.GenerateER(150, 900, 24)
	want := refCliqueSet(t, g)

	var mu sync.Mutex
	truncated := false
	w := newWrappedWorker(t, "er", g, service.Config{}, func(rw http.ResponseWriter, r *http.Request, inner http.Handler) bool {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/cliques") {
			mu.Lock()
			hit := !truncated
			truncated = true
			mu.Unlock()
			if hit {
				// Run the real stream into a recorder, then forward only the
				// first half of the bytes: the connection "drops" without a
				// trailer.
				rec := httptest.NewRecorder()
				inner.ServeHTTP(rec, r)
				body := rec.Body.Bytes()
				rw.Header().Set("Content-Type", "application/x-ndjson")
				rw.Write(body[:len(body)/2])
				return true
			}
		}
		return false
	})

	e := newCoordinatorEnv(t, "er", g, []string{w.ts.URL}, nil)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate"})
	cliques, trailer := streamJob(t, e, v.ID)
	sameCliqueSet(t, "truncated", cliqueSet(t, cliques), want)
	if trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}
	if retried := e.metric("shards_retried"); retried < 1 {
		t.Fatalf("shards_retried = %d, want ≥ 1 (the truncated stream)", retried)
	}
}

// TestFaultStragglerHang: a worker accepts a shard, then its stream hangs
// past the shard deadline. The coordinator must classify it as a straggler,
// re-split or re-dispatch, and still deliver the exact set.
func TestFaultStragglerHang(t *testing.T) {
	g := hbbmc.GenerateER(150, 900, 25)
	want := refCliqueSet(t, g)

	var mu sync.Mutex
	hung := false
	w := newWrappedWorker(t, "er", g, service.Config{}, func(rw http.ResponseWriter, r *http.Request, _ http.Handler) bool {
		if r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/cliques") {
			mu.Lock()
			hit := !hung
			hung = true
			mu.Unlock()
			if hit {
				// Hold the stream open with no bytes until the coordinator
				// gives up (its shard deadline cancels the request).
				<-r.Context().Done()
				return true
			}
		}
		return false
	})

	e := newCoordinatorEnv(t, "er", g, []string{w.ts.URL}, func(cfg *service.Config) {
		cfg.ShardTimeout = 500 * time.Millisecond
	})
	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate"})
	cliques, trailer := streamJob(t, e, v.ID)
	sameCliqueSet(t, "straggler", cliqueSet(t, cliques), want)
	if trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}
	if retried := e.metric("shards_retried"); retried < 1 {
		t.Fatalf("shards_retried = %d, want ≥ 1 (the hung shard)", retried)
	}
}

// TestFaultFingerprintMismatchHardFail: a peer serving a different graph
// under the same dataset name must fail the job on the first 409 — a
// deterministic incompatibility is never retried.
func TestFaultFingerprintMismatchHardFail(t *testing.T) {
	g1 := hbbmc.GenerateER(150, 900, 26)
	g2 := hbbmc.GenerateER(150, 900, 27) // same shape, different content
	w := newWrappedWorker(t, "er", g2, service.Config{}, nil)
	e := newCoordinatorEnv(t, "er", g1, []string{w.ts.URL}, nil)

	v := e.startJob(map[string]any{"dataset": "er", "mode": "count"})
	fin := e.waitJob(v.ID)
	if fin.State != service.StateFailed {
		t.Fatalf("job ended %s, want failed", fin.State)
	}
	if !strings.Contains(fin.Error, "fingerprint mismatch") {
		t.Fatalf("error = %q, want the fingerprint-mismatch diagnosis", fin.Error)
	}
	if retried := e.metric("shards_retried"); retried != 0 {
		t.Fatalf("shards_retried = %d on a 409, want 0 (no retry storm)", retried)
	}
	if failed := e.metric("shards_failed"); failed < 1 {
		t.Fatalf("shards_failed = %d, want ≥ 1", failed)
	}
}

// TestFaultNoUsablePeer: when every configured peer flunks the probe the
// job fails up front with the per-peer reasons, not a retry loop.
func TestFaultNoUsablePeer(t *testing.T) {
	g := hbbmc.GenerateER(100, 500, 28)
	// A live HTTP server that has never heard of the dataset.
	empty := newTestEnv(t, service.Config{})
	e := newCoordinatorEnv(t, "er", g, []string{empty.ts.URL}, nil)

	v := e.startJob(map[string]any{"dataset": "er", "mode": "count"})
	fin := e.waitJob(v.ID)
	if fin.State != service.StateFailed {
		t.Fatalf("job ended %s, want failed", fin.State)
	}
	if !strings.Contains(fin.Error, "no usable peer") || !strings.Contains(fin.Error, "not registered") {
		t.Fatalf("error = %q, want the no-usable-peer diagnosis with reasons", fin.Error)
	}
}

// TestFaultCancelPropagatesDeleteToPeers records the coordinator's remote
// cleanup directly: every shard job it created on the (stalling) stub peer
// must receive a DELETE once the client cancels the coordinator job.
func TestFaultCancelPropagatesDeleteToPeers(t *testing.T) {
	g := hbbmc.GenerateER(150, 900, 29)

	var mu sync.Mutex
	var posted, deleted []string
	seq := 0
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/info":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"version":"stub","gomaxprocs":1,"worker_slots":1,"datasets":[{"name":"er","path":"x","format":"auto","loaded":false,"sessions":0}]}`)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			mu.Lock()
			seq++
			id := fmt.Sprintf("stub%03d", seq)
			posted = append(posted, id)
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]any{"id": id, "state": "running"})
		case r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/cliques"):
			// The shard never finishes: stall until the coordinator hangs up.
			<-r.Context().Done()
		case r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
			mu.Lock()
			deleted = append(deleted, strings.TrimPrefix(r.URL.Path, "/v1/jobs/"))
			mu.Unlock()
			w.WriteHeader(http.StatusAccepted)
		default:
			http.NotFound(w, r)
		}
	}))
	defer stub.Close()

	e := newCoordinatorEnv(t, "er", g, []string{stub.URL}, nil)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate"})

	// Wait until shards are actually in flight against the stub.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(posted)
		mu.Unlock()
		if n >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard reached the stub peer")
		}
		time.Sleep(10 * time.Millisecond)
	}

	e.do("DELETE", "/v1/jobs/"+v.ID, nil)
	fin := e.waitJob(v.ID)
	if fin.State != service.StateStopped || fin.StopReason != "cancelled" {
		t.Fatalf("job ended %s/%s, want stopped/cancelled", fin.State, fin.StopReason)
	}

	// Every remote job the coordinator created must be DELETEd.
	deadline = time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		missing := 0
		for _, id := range posted {
			found := false
			for _, d := range deleted {
				if d == id {
					found = true
					break
				}
			}
			if !found {
				missing++
			}
		}
		nPosted, nDeleted := len(posted), len(deleted)
		mu.Unlock()
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d of %d remote shard jobs never received a DELETE (%d deletes seen)", missing, nPosted, nDeleted)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
