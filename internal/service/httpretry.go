package service

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// retryClient wraps an http.Client with jittered exponential backoff over
// the transient failure classes of shard dispatch: transport errors, 429
// (a worker's admission queue is momentarily full) and 5xx. Everything else
// — including 409, the fingerprint-mismatch signal — returns immediately:
// a deterministic rejection never becomes a retry storm.
type retryClient struct {
	client      *http.Client
	maxAttempts int
	baseDelay   time.Duration
	maxDelay    time.Duration
	// onRetry, when set, observes every retry (the metrics hook).
	onRetry func()
}

func newRetryClient(client *http.Client, maxAttempts int, base, max time.Duration) *retryClient {
	if client == nil {
		client = http.DefaultClient
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	return &retryClient{client: client, maxAttempts: maxAttempts, baseDelay: base, maxDelay: max}
}

// retryableStatus reports whether a response status signals a transient
// condition worth another attempt.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// Do issues the request produced by build, retrying transient failures with
// jittered exponential backoff until an attempt succeeds, a non-retryable
// status arrives, the attempts are exhausted or ctx ends (the backoff sleep
// is context-aware). build runs once per attempt so request bodies are
// always fresh. A retried response's body is drained and closed here; the
// returned response (err == nil) is the caller's to close — any status,
// retryable or not, once the budget allows returning it.
func (rc *retryClient) Do(ctx context.Context, build func() (*http.Request, error)) (*http.Response, error) {
	var lastErr error
	for attempt := 0; attempt < rc.maxAttempts; attempt++ {
		if attempt > 0 {
			if rc.onRetry != nil {
				rc.onRetry()
			}
			if err := sleepContext(ctx, jitterBackoff(rc.baseDelay, rc.maxDelay, attempt)); err != nil {
				return nil, fmt.Errorf("service: retry abandoned after %d attempts: %w (last: %v)", attempt, err, lastErr)
			}
		}
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := rc.client.Do(req.WithContext(ctx))
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("service: %w (last attempt: %v)", ctx.Err(), err)
			}
			lastErr = err
			continue
		}
		if retryableStatus(resp.StatusCode) && attempt+1 < rc.maxAttempts {
			drainClose(resp.Body)
			lastErr = fmt.Errorf("%s %s: status %d", req.Method, req.URL, resp.StatusCode)
			continue
		}
		return resp, nil
	}
	return nil, fmt.Errorf("service: %d attempts exhausted: %w", rc.maxAttempts, lastErr)
}

// jitterBackoff returns the pause before retry `attempt` (1-based): uniform
// in [d/2, d] for d = base·2^(attempt-1) capped at max. The random half
// desynchronises concurrent shards retrying against the same peer.
func jitterBackoff(base, max time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)+1))
}

// sleepContext waits for d or until ctx ends, whichever comes first.
func sleepContext(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drainClose consumes (a bounded amount of) a response body and closes it,
// letting the transport reuse the connection.
func drainClose(body io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<16))
	_ = body.Close()
}
