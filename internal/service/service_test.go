package service_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/service"
)

// withTestProcs raises GOMAXPROCS for tests whose slot accounting depends
// on multi-worker jobs: the server clamps requested workers to GOMAXPROCS,
// so on a 1-core CI machine a 2-worker job would silently hold 1 slot.
func withTestProcs(t *testing.T, workers int) {
	t.Helper()
	if old := runtime.GOMAXPROCS(0); old < workers {
		runtime.GOMAXPROCS(workers)
		t.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// testEnv is one server over httptest with helpers for the JSON API.
type testEnv struct {
	t  *testing.T
	ts *httptest.Server
}

func newTestEnv(t *testing.T, cfg service.Config) *testEnv {
	t.Helper()
	srv := service.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
		ts.Close()
	})
	return &testEnv{t: t, ts: ts}
}

func (e *testEnv) do(method, path string, body any) (*http.Response, []byte) {
	e.t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			e.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, e.ts.URL+path, rd)
	if err != nil {
		e.t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		e.t.Fatal(err)
	}
	return resp, data
}

func (e *testEnv) registerGraph(name string, g *hbbmc.Graph) {
	e.t.Helper()
	path := filepath.Join(e.t.TempDir(), name+".hbg")
	if err := g.SaveBinaryFile(path); err != nil {
		e.t.Fatal(err)
	}
	resp, data := e.do("POST", "/v1/datasets", map[string]string{"name": name, "path": path})
	if resp.StatusCode != http.StatusCreated {
		e.t.Fatalf("register %s: %d %s", name, resp.StatusCode, data)
	}
}

func (e *testEnv) startJob(req map[string]any) service.JobView {
	e.t.Helper()
	resp, data := e.do("POST", "/v1/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		e.t.Fatalf("start job %v: %d %s", req, resp.StatusCode, data)
	}
	var v service.JobView
	if err := json.Unmarshal(data, &v); err != nil {
		e.t.Fatal(err)
	}
	return v
}

func (e *testEnv) waitJob(id string) service.JobView {
	e.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, data := e.do("GET", "/v1/jobs/"+id+"?wait=2s", nil)
		if resp.StatusCode != http.StatusOK {
			e.t.Fatalf("get job %s: %d %s", id, resp.StatusCode, data)
		}
		var v service.JobView
		if err := json.Unmarshal(data, &v); err != nil {
			e.t.Fatal(err)
		}
		switch v.State {
		case service.StateDone, service.StateStopped, service.StateFailed:
			return v
		}
		if time.Now().After(deadline) {
			e.t.Fatalf("job %s stuck in state %s", id, v.State)
		}
	}
}

func (e *testEnv) metric(name string) int64 {
	e.t.Helper()
	resp, data := e.do("GET", "/metrics?format=json", nil)
	if resp.StatusCode != http.StatusOK {
		e.t.Fatalf("/metrics: %d %s", resp.StatusCode, data)
	}
	var all map[string]int64
	if err := json.Unmarshal(data, &all); err != nil {
		e.t.Fatalf("metrics not JSON: %v\n%s", err, data)
	}
	return all["mced_"+name]
}

func TestDatasetCRUD(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(100, 400, 1)
	e.registerGraph("er", g)

	// Duplicate name conflicts.
	path := filepath.Join(t.TempDir(), "er2.hbg")
	if err := g.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	resp, _ := e.do("POST", "/v1/datasets", map[string]string{"name": "er", "path": path})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register = %d, want 409", resp.StatusCode)
	}
	// Bad path rejected.
	resp, _ = e.do("POST", "/v1/datasets", map[string]string{"name": "ghost", "path": path + ".missing"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing file register = %d, want 400", resp.StatusCode)
	}
	// Bad name rejected.
	resp, _ = e.do("POST", "/v1/datasets", map[string]string{"name": "../evil", "path": path})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad name register = %d, want 400", resp.StatusCode)
	}

	resp, data := e.do("GET", "/v1/datasets", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"er"`) {
		t.Fatalf("list datasets: %d %s", resp.StatusCode, data)
	}
	resp, _ = e.do("GET", "/v1/datasets/er", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get dataset = %d", resp.StatusCode)
	}
	resp, _ = e.do("DELETE", "/v1/datasets/er", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete dataset = %d", resp.StatusCode)
	}
	resp, _ = e.do("GET", "/v1/datasets/er", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get deleted dataset = %d, want 404", resp.StatusCode)
	}
	if e.metric("datasets") != 0 {
		t.Fatal("datasets gauge not back to 0")
	}
}

func TestCountJobAndWarmReuse(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(400, 2400, 7)
	e.registerGraph("er", g)

	want := countCliques(t, g)

	v := e.startJob(map[string]any{"dataset": "er", "mode": "count"})
	if v.SessionCached {
		t.Error("first job on a dataset reported a warm session")
	}
	v = e.waitJob(v.ID)
	if v.State != service.StateDone || v.Stats == nil || v.Stats.Cliques != want {
		t.Fatalf("count job: state=%s stats=%+v, want done with %d cliques", v.State, v.Stats, want)
	}
	if v.Stats.OrderingTime != 0 {
		t.Fatalf("session query reported OrderingTime %v, want 0", v.Stats.OrderingTime)
	}

	// Second job on the warm dataset: session reuse, zero ordering time.
	v2 := e.startJob(map[string]any{"dataset": "er", "mode": "count", "workers": 2})
	if !v2.SessionCached {
		t.Fatal("second job did not reuse the warm session")
	}
	v2 = e.waitJob(v2.ID)
	if v2.State != service.StateDone || v2.Stats.Cliques != want {
		t.Fatalf("warm count: state=%s cliques=%d, want done/%d", v2.State, v2.Stats.Cliques, want)
	}
	if v2.Stats.OrderingTime != 0 {
		t.Fatalf("warm query reported OrderingTime %v, want 0", v2.Stats.OrderingTime)
	}
	if hits := e.metric("session_cache_hits"); hits < 1 {
		t.Fatalf("session_cache_hits = %d, want ≥ 1", hits)
	}
	if done := e.metric("jobs_done"); done != 2 {
		t.Fatalf("jobs_done = %d, want 2", done)
	}
}

// streamLines reads a job's NDJSON stream, returning the clique lines and
// the trailer.
func streamJob(t *testing.T, e *testEnv, id string) (cliques [][]int32, trailer map[string]any) {
	t.Helper()
	resp, err := e.ts.Client().Get(e.ts.URL + "/v1/jobs/" + id + "/cliques")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			C    []int32 `json:"c"`
			Done bool    `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Done {
			trailer = map[string]any{}
			if err := json.Unmarshal(sc.Bytes(), &trailer); err != nil {
				t.Fatal(err)
			}
		} else {
			cliques = append(cliques, line.C)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return cliques, trailer
}

func TestEnumerateStreamDeliversAllCliques(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(300, 1800, 3)
	e.registerGraph("er", g)
	want := countCliques(t, g)

	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "workers": 2})
	cliques, trailer := streamJob(t, e, v.ID)
	if int64(len(cliques)) != want {
		t.Fatalf("streamed %d cliques, want %d", len(cliques), want)
	}
	if trailer == nil || trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}
	if got := int64(trailer["cliques"].(float64)); got != want {
		t.Fatalf("trailer cliques = %d, want %d", got, want)
	}
	for _, c := range cliques {
		if !g.IsClique(c) {
			t.Fatalf("streamed non-clique %v", c)
		}
	}
	if emitted := e.metric("cliques_emitted"); emitted < want {
		t.Fatalf("cliques_emitted = %d, want ≥ %d", emitted, want)
	}

	// A second streaming client on the same job conflicts.
	resp, _ := e.do("GET", "/v1/jobs/"+v.ID+"/cliques", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second stream = %d, want 409", resp.StatusCode)
	}
}

func TestEnumerateMaxCliquesExactDelivery(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(300, 1800, 4)
	e.registerGraph("er", g)
	const limit = 25
	for _, workers := range []int{1, 4} {
		v := e.startJob(map[string]any{
			"dataset": "er", "mode": "enumerate", "workers": workers, "max_cliques": limit,
		})
		cliques, trailer := streamJob(t, e, v.ID)
		if len(cliques) != limit {
			t.Fatalf("workers=%d: streamed %d cliques, want exactly %d", workers, len(cliques), limit)
		}
		if trailer["state"] != string(service.StateStopped) || trailer["stop_reason"] != "max_cliques" {
			t.Fatalf("workers=%d: trailer %v, want stopped/max_cliques", workers, trailer)
		}
	}
}

func TestJobDeadline(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	// Large enough that 1ns always expires first.
	g := hbbmc.GenerateER(2000, 30000, 5)
	e.registerGraph("er", g)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "count", "timeout": "1ns"})
	v = e.waitJob(v.ID)
	if v.State != service.StateStopped || v.StopReason != "deadline" {
		t.Fatalf("deadline job: state=%s reason=%q, want stopped/deadline", v.State, v.StopReason)
	}
}

func TestBadJobRequests(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(100, 300, 6)
	e.registerGraph("er", g)
	for name, req := range map[string]map[string]any{
		"unknown dataset": {"dataset": "nope"},
		"bad mode":        {"dataset": "er", "mode": "explode"},
		"bad algorithm":   {"dataset": "er", "algorithm": "quantum"},
		"bad timeout":     {"dataset": "er", "timeout": "later"},
		"negative budget": {"dataset": "er", "max_cliques": -3},
		"bad et":          {"dataset": "er", "et": 9},
		"bad edge order":  {"dataset": "er", "edge_order": "chaos"},
		"bad inner":       {"dataset": "er", "inner": "chaos"},
	} {
		resp, data := e.do("POST", "/v1/jobs", req)
		if resp.StatusCode == http.StatusAccepted {
			t.Errorf("%s: accepted (%s)", name, data)
		}
	}
	// BK on a small graph is fine (the guard permits it) — sanity-check the
	// last case actually exercised options validation, not the guard.
	resp, data := e.do("POST", "/v1/jobs", map[string]any{"dataset": "er", "algorithm": "bkpivot", "et": 0, "gr": false})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bkpivot job rejected: %s", data)
	}
	var v service.JobView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	e.waitJob(v.ID)
}

func TestHealthz(t *testing.T) {
	e := newTestEnv(t, service.Config{WorkerSlots: 3})
	resp, data := e.do("GET", "/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
	var h map[string]any
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["worker_slots"] != float64(3) {
		t.Fatalf("healthz = %v", h)
	}
}

// TestCancelFreesSlotsAndAdmits pins the acceptance flow: a cancelled
// streaming job frees its worker slots, verified by a follow-up job
// admitting immediately, and saturation returns 429.
func TestCancelFreesSlotsAndAdmits(t *testing.T) {
	withTestProcs(t, 2)
	e := newTestEnv(t, service.Config{WorkerSlots: 2, QueueWait: 100 * time.Millisecond})
	g := hbbmc.GenerateER(1500, 40000, 8) // enough cliques to outlast the test
	e.registerGraph("er", g)

	// Job 1 takes both slots and blocks: nobody drains its 1-clique buffer.
	v1 := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "workers": 2, "buffer": 1})

	// Saturation: a second job cannot be admitted and gets 429.
	resp, data := e.do("POST", "/v1/jobs", map[string]any{"dataset": "er", "mode": "count", "workers": 2})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d (%s), want 429", resp.StatusCode, data)
	}
	var rejected service.JobView
	if err := json.Unmarshal(data, &rejected); err != nil {
		t.Fatal(err)
	}
	if rejected.State != service.StateFailed {
		t.Fatalf("rejected job state = %s, want failed", rejected.State)
	}
	if e.metric("admission_rejected") != 1 {
		t.Fatal("admission_rejected did not move")
	}

	// Cancel job 1; its slots must free.
	resp, _ = e.do("DELETE", "/v1/jobs/"+v1.ID, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", resp.StatusCode)
	}
	v1 = e.waitJob(v1.ID)
	if v1.State != service.StateStopped || v1.StopReason != "cancelled" {
		t.Fatalf("cancelled job: state=%s reason=%q", v1.State, v1.StopReason)
	}

	// A follow-up job admits immediately (within the 100ms queue wait).
	v3 := e.startJob(map[string]any{"dataset": "er", "mode": "count", "workers": 2, "max_cliques": 10})
	v3 = e.waitJob(v3.ID)
	if v3.State != service.StateStopped { // max_cliques stop
		t.Fatalf("follow-up job state = %s", v3.State)
	}
	if stopped := e.metric("jobs_stopped"); stopped != 2 {
		t.Fatalf("jobs_stopped = %d, want 2", stopped)
	}
}

// TestClientDisconnectCancelsJob: dropping the lone streaming client stops
// the job instead of leaving it blocked on the full channel forever.
func TestClientDisconnectCancelsJob(t *testing.T) {
	e := newTestEnv(t, service.Config{WorkerSlots: 2})
	// The stream must still be mid-flight when the disconnect lands: kernel
	// socket buffers swallow a few hundred KB even with no reader, so the
	// graph's NDJSON output has to be far larger than that (a BA graph this
	// size has >100k maximal cliques, several MB of lines).
	g := hbbmc.GenerateBA(12000, 10, 9)
	e.registerGraph("ba", g)
	v := e.startJob(map[string]any{"dataset": "ba", "mode": "enumerate", "buffer": 1})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", e.ts.URL+"/v1/jobs/"+v.ID+"/cliques", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("never received stream data: %v", err)
	}
	cancel() // drop the client mid-stream
	resp.Body.Close()

	v = e.waitJob(v.ID)
	if v.State != service.StateStopped {
		t.Fatalf("job after client disconnect: %s, want stopped", v.State)
	}
	if v.StopReason != "client disconnected" {
		t.Fatalf("stop reason %q", v.StopReason)
	}
}

func TestStreamOnCountJobRejected(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(100, 300, 10)
	e.registerGraph("er", g)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "count"})
	resp, _ := e.do("GET", "/v1/jobs/"+v.ID+"/cliques", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stream on count job = %d, want 400", resp.StatusCode)
	}
	e.waitJob(v.ID)
}

func TestJobListAndUnknowns(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(100, 300, 11)
	e.registerGraph("er", g)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "count"})
	e.waitJob(v.ID)
	resp, data := e.do("GET", "/v1/jobs", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), v.ID) {
		t.Fatalf("list jobs: %d %s", resp.StatusCode, data)
	}
	for _, probe := range []struct{ method, path string }{
		{"GET", "/v1/jobs/jXXXXXX"},
		{"DELETE", "/v1/jobs/jXXXXXX"},
		{"GET", "/v1/jobs/jXXXXXX/cliques"},
	} {
		resp, _ := e.do(probe.method, probe.path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s = %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestCancelWhileQueuedNeverRuns pins the admission/cancel race: a DELETE
// landing while the job is still waiting for worker slots must stop it —
// the job never runs, its POST returns the stopped view, and it does not
// count as an admission rejection.
func TestCancelWhileQueuedNeverRuns(t *testing.T) {
	e := newTestEnv(t, service.Config{WorkerSlots: 1, QueueWait: 30 * time.Second})
	g := hbbmc.GenerateER(1500, 40000, 12)
	e.registerGraph("er", g)

	// Fill the only slot with a blocked job.
	blocker := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "buffer": 1})

	// POST a second job; it queues in admission. The response arrives only
	// after the cancel below, so run it from a goroutine.
	type postResult struct {
		status int
		view   service.JobView
	}
	posted := make(chan postResult, 1)
	go func() {
		resp, data := e.do("POST", "/v1/jobs", map[string]any{"dataset": "er", "mode": "count"})
		var v service.JobView
		_ = json.Unmarshal(data, &v)
		posted <- postResult{resp.StatusCode, v}
	}()

	// Find the queued job through the list API and cancel it.
	var queuedID string
	deadline := time.Now().Add(5 * time.Second)
	for queuedID == "" {
		if time.Now().After(deadline) {
			t.Fatal("second job never appeared as queued")
		}
		_, data := e.do("GET", "/v1/jobs", nil)
		var list struct {
			Jobs []service.JobView `json:"jobs"`
		}
		if err := json.Unmarshal(data, &list); err != nil {
			t.Fatal(err)
		}
		for _, v := range list.Jobs {
			if v.ID != blocker.ID && v.State == service.StateQueued {
				queuedID = v.ID
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, _ := e.do("DELETE", "/v1/jobs/"+queuedID, nil)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued job = %d", resp.StatusCode)
	}

	res := <-posted
	if res.status != http.StatusOK || res.view.State != service.StateStopped {
		t.Fatalf("cancelled-while-queued POST returned %d state=%s, want 200 stopped", res.status, res.view.State)
	}
	if v := e.waitJob(queuedID); v.State != service.StateStopped || v.StartedAt != "" {
		t.Fatalf("queued job ended state=%s started=%q, want stopped and never started", v.State, v.StartedAt)
	}
	if rej := e.metric("admission_rejected"); rej != 0 {
		t.Fatalf("admission_rejected = %d after a user cancel, want 0", rej)
	}

	// The blocker still owns its slot; clean it up and confirm drain.
	e.do("DELETE", "/v1/jobs/"+blocker.ID, nil)
	if v := e.waitJob(blocker.ID); v.State != service.StateStopped {
		t.Fatalf("blocker ended %s", v.State)
	}
}

// countCliques computes the expected clique count in-process.
func countCliques(t *testing.T, g *hbbmc.Graph) int64 {
	t.Helper()
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := sess.Count(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return n
}
