package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/chaos"
	"github.com/graphmining/hbbmc/internal/distrib"
	"github.com/graphmining/hbbmc/internal/obs"
	"github.com/graphmining/hbbmc/internal/service/journal"
)

// This file is the crash-recovery half of the journal: Open replays the
// write-ahead log into a fresh Server, re-registers the journaled datasets,
// restores the job table (terminal jobs as history, interrupted ones as
// queued with their durable progress attached) and resumes the interrupted
// work — scalar jobs autonomously from their branch watermark, streaming
// jobs lazily when a client reclaims the stream with ?resume_after=.

// Open builds a journaled Server from cfg: it replays cfg.JournalDir,
// restores datasets and jobs, and resumes interrupted jobs. With an empty
// JournalDir it is identical to New. While the replayed state is being
// applied the server reports 503 on /readyz and defers job submission.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if cfg.JournalDir == "" {
		if err := s.registerBootDatasets(cfg.BootDatasets); err != nil {
			return nil, err
		}
		return s, nil
	}
	jnl, rep, err := journal.Open(cfg.JournalDir, journal.Options{})
	if err != nil {
		return nil, err
	}
	s.jnl = jnl
	s.jobs.jnl = jnl
	jnl.SetSyncObserver(s.obs.journalFsync.ObserveDuration)
	if err := s.registerBootDatasets(cfg.BootDatasets); err != nil {
		_ = jnl.Close()
		return nil, err
	}
	s.m.journalReplays.Add(1)
	s.recovering.Store(true)
	s.restoreDatasets(rep)
	restored := s.restoreJobs(rep)
	go func() {
		// service.replay is the chaos point the readiness test arms with a
		// delay: /readyz answers 503 until recovery completes.
		_ = chaos.Inject("service.replay")
		s.resumeRestored(restored)
		s.recovering.Store(false)
	}()
	return s, nil
}

// registerBootDatasets applies cfg.BootDatasets before the journal replay
// can resume any job, journaling each like an API registration so a later
// restart without the boot flags still resolves them. Registry.Register
// rejects duplicate names, so a boot registration wins over a replayed one.
func (s *Server) registerBootDatasets(specs []DatasetSpec) error {
	for _, d := range specs {
		format := d.Format
		if format == "" {
			format = "auto"
		}
		info, err := s.reg.Register(d.Name, d.Path, format)
		if err != nil {
			return fmt.Errorf("boot dataset %q: %w", d.Name, err)
		}
		if s.jnl != nil {
			_ = s.jnl.AppendDataset(info.Name, info.Path, d.Format)
		}
	}
	return nil
}

// restoreDatasets re-registers the journaled datasets. A registration that
// fails (file moved, renamed) is skipped: the jobs referencing it fail at
// resume time with an actionable "unknown dataset" error instead of
// bricking the whole replay.
func (s *Server) restoreDatasets(rep *journal.Replay) {
	for _, d := range rep.Datasets {
		format := d.Format
		if format == "" {
			format = "auto"
		}
		_, _ = s.reg.Register(d.Name, d.Path, format)
	}
}

// restoreJobs rebuilds the job table from the replay: terminal jobs become
// plain history, interrupted ones re-enter as queued carrying their durable
// progress in j.resume. It returns the interrupted jobs.
func (s *Server) restoreJobs(rep *journal.Replay) []*Job {
	var restored []*Job
	for _, id := range rep.Order {
		jr := rep.Jobs[id]
		if jr == nil {
			continue
		}
		j, reqOK := s.restoreJob(jr)
		s.jobs.restore(j)
		if j.State().terminal() {
			continue
		}
		s.m.resumeJobsRestored.Add(1)
		if !reqOK {
			// The submission record did not decode (a journal written by an
			// incompatible daemon); the job cannot be re-run faithfully.
			s.failResume(j, fmt.Errorf("journal: job %s: undecodable submission record", j.ID))
			continue
		}
		restored = append(restored, j)
	}
	return restored
}

// restoreJob builds one Job from its replayed journal state.
func (s *Server) restoreJob(jr *journal.JobReplay) (*Job, bool) {
	var req jobRequest
	reqOK := json.Unmarshal(jr.Req, &req) == nil
	typ := req.Type
	if typ == "" {
		typ = "enumerate"
	}
	opts, err := req.options()
	if err != nil {
		opts = hbbmc.DefaultOptions()
		reqOK = false
	}
	j := &Job{
		ID:      jr.ID,
		Dataset: req.Dataset,
		Mode:    typ,
		K:       req.K,
		Opts:    opts,
		// The original trace died with the crashed process; the restored job
		// gets a fresh timeline covering its resume.
		trace:     obs.NewTrace(),
		created:   time.Now(), // submission time is not journaled; restore time stands in
		cancelled: make(chan struct{}),
		done:      make(chan struct{}),
	}
	streaming := typ == "enumerate" || typ == "top_k"
	j.mu.Lock()
	if jr.Terminal() {
		j.state = JobState(jr.State)
		j.stopReason = jr.Reason
		j.errMsg = jr.Err
		if len(jr.Stats) > 0 {
			var st hbbmc.Stats
			if json.Unmarshal(jr.Stats, &st) == nil {
				j.stats = &st
			}
		}
		j.mu.Unlock()
		if streaming {
			// A closed channel: streaming a finished restored job yields
			// just the trailer, same as streaming any finished job late.
			j.cliques = make(chan streamItem)
			close(j.cliques)
		}
		close(j.done)
		return j, reqOK
	}
	j.state = StateQueued
	j.journaled = true
	j.resume = &resumeState{
		req:       req,
		crc:       jr.CRC,
		branches:  jr.Branches,
		watermark: jr.Watermark,
		ckpts:     jr.Ckpts,
	}
	j.mu.Unlock()
	if streaming {
		j.cliques = make(chan streamItem, s.streamBufferFor(req.Buffer))
	}
	return j, reqOK
}

// resumeRestored kicks off the autonomous resumes. Scalar jobs (count,
// max_clique, kclique_count) need no client to deliver to, so they re-run
// immediately — count from its durable branch watermark, the others from
// scratch (their full re-run is idempotent). Streaming jobs (enumerate,
// top_k) stay queued until a client reclaims the stream, passing the last
// checkpoint marker it saw as ?resume_after=.
func (s *Server) resumeRestored(restored []*Job) {
	for _, j := range restored {
		switch j.Mode {
		case "count", "max_clique", "kclique_count":
			go s.resumeScalar(j)
		}
	}
}

// resumePlan is a validated, admissible resume: the session to run against
// and the narrowed query that re-runs only the branches past the cursor.
type resumePlan struct {
	sess    *hbbmc.Session
	cached  bool
	base    journal.Ckpt
	cursor  int
	workers int
	q       hbbmc.QueryOptions
	timeout time.Duration
	// budgetDone: the durable prefix already satisfies the job's original
	// MaxCliques budget; there is nothing left to run.
	budgetDone bool
}

// planResume validates a resume of j from cursor and builds the plan. The
// bool reports whether a failure is permanent (the job can never resume:
// fingerprint mismatch, vanished dataset) as opposed to a bad cursor the
// client can correct.
func (s *Server) planResume(j *Job, rs *resumeState, cursor int) (*resumePlan, bool, int, error) {
	var base journal.Ckpt
	if cursor > 0 {
		ck, ok := rs.ckpts[cursor]
		if !ok {
			return nil, false, http.StatusBadRequest,
				fmt.Errorf("job %s has no durable checkpoint at %d (highest watermark %d)", j.ID, cursor, rs.watermark)
		}
		base = ck
	}
	opts, err := rs.req.options()
	if err != nil {
		return nil, true, http.StatusConflict, fmt.Errorf("resume %s: %v", j.ID, err)
	}
	sess, cached, err := s.reg.Session(rs.req.Dataset, opts)
	if err != nil {
		return nil, true, http.StatusConflict, fmt.Errorf("resume %s: %v", j.ID, err)
	}
	// The fingerprints recorded at the original run gate every branch skip:
	// a changed graph or ordering makes the journaled watermark meaningless.
	if rs.crc != "" {
		if fp := distrib.FormatCRC(sess.GraphFingerprint()); fp != rs.crc {
			return nil, true, http.StatusConflict,
				fmt.Errorf("resume %s: dataset fingerprint %s, journal recorded %s", j.ID, fp, rs.crc)
		}
	}
	branches := sess.NumTopBranches()
	if rs.branches != 0 && rs.branches != branches {
		return nil, true, http.StatusConflict,
			fmt.Errorf("resume %s: session has %d top-level branches, journal recorded %d", j.ID, branches, rs.branches)
	}
	if cursor > branches {
		return nil, true, http.StatusConflict,
			fmt.Errorf("resume %s: cursor %d exceeds the session's %d top-level branches", j.ID, cursor, branches)
	}
	workers := rs.req.Workers
	if workers <= 0 {
		workers = 1
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > s.slots.Capacity() {
		workers = s.slots.Capacity()
	}
	q := hbbmc.QueryOptions{
		Workers:     workers,
		MaxCliques:  rs.req.MaxCliques,
		PhaseTimers: s.cfg.PhaseTimers || rs.req.PhaseTimers,
	}
	if cursor > 0 {
		q.BranchLo, q.BranchHi = cursor, branches
	}
	plan := &resumePlan{
		sess: sess, cached: cached, base: base, cursor: cursor, workers: workers,
	}
	if q.MaxCliques > 0 {
		rem := q.MaxCliques - base.Cliques
		if rem <= 0 {
			plan.budgetDone = true
			rem = 0
		}
		q.MaxCliques = rem
	}
	plan.q = q
	if rs.req.Timeout != "" {
		if d, err := time.ParseDuration(rs.req.Timeout); err == nil && d > 0 {
			plan.timeout = d
		}
	}
	return plan, false, 0, nil
}

// claimResume takes exclusive ownership of a restored job's pending
// resume. Exactly one claimant wins: the stream reclaim, the autonomous
// scalar resume, a cancellation or the shutdown sweep — whoever claims
// owns the job's next state transition.
func (s *Server) claimResume(j *Job) *resumeState {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return nil
	}
	rs := j.resume
	j.resume = nil
	return rs
}

// unclaimResume puts a claimed resume back (a transient failure such as a
// saturated admission leaves the job intact and resumable).
func (s *Server) unclaimResume(j *Job, rs *resumeState) {
	j.mu.Lock()
	if j.state == StateQueued {
		j.resume = rs
	}
	j.mu.Unlock()
}

// stopUnclaimedResume retires a restored job whose resume nobody has
// claimed: unlike a live queued job, no goroutine owns it, so the
// cancellation and shutdown paths must transition it directly.
func (s *Server) stopUnclaimedResume(j *Job, reason string) bool {
	rs := s.claimResume(j)
	if rs == nil {
		return false
	}
	s.jobs.markStopped(j, reason)
	if j.cliques != nil {
		close(j.cliques)
	}
	return true
}

// launchResume admits and starts a planned resume. wait bounds the slot
// admission (negative = wait until granted or cancelled). A cancellation
// during admission stops the job cleanly; a saturated admission under a
// bounded wait returns 429 with the job left intact and resumable. The
// caller holds the resume claim.
func (s *Server) launchResume(j *Job, plan *resumePlan, wait time.Duration) (int, error) {
	if plan.budgetDone {
		j.mu.Lock()
		j.ckptBase = plan.base
		j.stats = &hbbmc.Stats{Cliques: plan.base.Cliques, MaxCliqueSize: plan.base.MaxSize}
		j.mu.Unlock()
		s.jobs.markStopped(j, "max_cliques")
		if j.cliques != nil {
			close(j.cliques)
		}
		return 0, nil
	}
	admCtx := context.Background()
	var admCancel context.CancelFunc
	switch {
	case wait > 0:
		admCtx, admCancel = context.WithTimeout(admCtx, wait)
	case wait == 0:
		admCtx, admCancel = context.WithCancel(admCtx)
		admCancel() // no waiting: an immediate grant or nothing
	default:
		admCtx, admCancel = context.WithCancel(admCtx)
	}
	defer admCancel()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-j.cancelled:
			admCancel()
		case <-watchDone:
		}
	}()
	qStart := time.Now()
	err := s.slots.Acquire(admCtx, plan.workers)
	if err == nil && j.cancelReason.Load() != nil {
		s.slots.Release(plan.workers)
		err = ErrSaturated
	}
	if err != nil {
		if reason := j.cancelReason.Load(); reason != nil {
			s.jobs.markStopped(j, *reason)
			if j.cliques != nil {
				close(j.cliques)
			}
			return 0, nil
		}
		s.m.admissionRejected.Add(1)
		return http.StatusTooManyRequests,
			fmt.Errorf("resume %s: %d worker slots saturated (capacity %d)", j.ID, plan.workers, s.slots.Capacity())
	}

	runCtx := context.Background()
	var cancel context.CancelFunc
	if plan.timeout > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, plan.timeout)
	} else {
		runCtx, cancel = context.WithCancel(runCtx)
	}
	queueWait := time.Since(qStart)
	j.trace.Record("queued", qStart, queueWait)
	s.obs.queueWait.ObserveDuration(queueWait)
	j.mu.Lock()
	j.ckptBase = plan.base
	j.Query = plan.q
	j.Workers = plan.workers
	j.sessionCached = plan.cached
	j.prepTime = plan.sess.PrepTime()
	j.queueWait = queueWait
	j.cancel = cancel
	j.mu.Unlock()
	if j.cancelReason.Load() != nil {
		cancel()
	}
	s.jobs.markRunning(j)
	s.m.resumeBranchesSkipped.Add(int64(plan.cursor))
	go s.runJob(runCtx, cancel, j, plan.sess)
	return 0, nil
}

// startResume is the stream handler's resume entry: a client reclaiming a
// restored streaming job starts its re-run here, from the cursor of the
// last checkpoint marker it received (0 = from scratch).
func (s *Server) startResume(j *Job, cursor int) (int, error) {
	if s.draining.Load() {
		return http.StatusServiceUnavailable, errors.New("server is shutting down")
	}
	rs := s.claimResume(j)
	if rs == nil {
		// Lost the claim to a racing shutdown sweep or cancellation; the
		// stream loop handles whatever state the job ended up in.
		return 0, nil
	}
	plan, permanent, status, err := s.planResume(j, rs, cursor)
	if err != nil {
		if permanent {
			s.failResume(j, err)
		} else {
			s.unclaimResume(j, rs)
		}
		return status, err
	}
	status, err = s.launchResume(j, plan, s.cfg.QueueWait)
	if err != nil {
		s.unclaimResume(j, rs)
	}
	return status, err
}

// resumeScalar autonomously re-runs one restored scalar job: count resumes
// from its durable branch watermark, max_clique and kclique_count re-run
// from scratch (idempotent). It blocks on slot admission — a recovering
// daemon finishes its inherited work rather than 429-ing it.
func (s *Server) resumeScalar(j *Job) {
	rs := s.claimResume(j)
	if rs == nil {
		return
	}
	cursor := 0
	if j.Mode == "count" && rs.watermark > 0 {
		cursor = rs.watermark
	}
	plan, _, _, err := s.planResume(j, rs, cursor)
	if err != nil {
		s.failResume(j, err)
		return
	}
	if _, err := s.launchResume(j, plan, -1); err != nil {
		s.failResume(j, err)
	}
}

// failResume marks a restored job as permanently unresumable. The caller
// holds the resume claim (or the job never carried one).
func (s *Server) failResume(j *Job, err error) {
	s.jobs.markFailed(j, err.Error())
	if j.cliques != nil {
		close(j.cliques)
	}
}
