package service_test

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/obs"
	"github.com/graphmining/hbbmc/internal/service"
)

var traceIDRE = regexp.MustCompile(`^[0-9a-f]{32}$`)

// TestJobTraceEndpoint runs one streamed job and checks its observable
// timeline end to end: the JobView carries the trace ID and queue wait, the
// stream trailer embeds the span list, and GET /v1/jobs/{id}/trace serves
// the same timeline with the lifecycle spans in start order.
func TestJobTraceEndpoint(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(300, 1500, 3)
	e.registerGraph("er", g)

	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "phase_timers": true})
	if !traceIDRE.MatchString(v.TraceID) {
		t.Fatalf("JobView trace_id = %q, want 32 lowercase hex digits", v.TraceID)
	}
	if v.QueueWaitMS < 0 {
		t.Fatalf("queue_wait_ms = %v, want >= 0", v.QueueWaitMS)
	}
	cliques, trailer := streamJob(t, e, v.ID)
	if len(cliques) == 0 {
		t.Fatal("no cliques streamed")
	}
	if trailer["trace"] == nil {
		t.Fatal("stream trailer carries no trace")
	}

	resp, data := e.do("GET", "/v1/jobs/"+v.ID+"/trace", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: %d %s", resp.StatusCode, data)
	}
	var tv obs.TraceView
	if err := json.Unmarshal(data, &tv); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, data)
	}
	if tv.TraceID != v.TraceID {
		t.Fatalf("trace endpoint ID %q != JobView trace ID %q", tv.TraceID, v.TraceID)
	}
	if tv.RemoteParent {
		t.Fatal("locally created job reports a remote parent")
	}
	names := make(map[string]bool)
	for _, sp := range tv.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"session_acquire", "queued", "run", "drain"} {
		if !names[want] {
			t.Fatalf("trace lacks span %q; have %v", want, tv.Spans)
		}
	}
	if !sort.SliceIsSorted(tv.Spans, func(i, j int) bool {
		return tv.Spans[i].StartUnixNS < tv.Spans[j].StartUnixNS
	}) {
		t.Fatalf("spans not ordered by start time: %v", tv.Spans)
	}

	if _, data := e.do("GET", "/v1/jobs/nope/trace", nil); !strings.Contains(string(data), "unknown job") {
		t.Fatalf("missing job: %s", data)
	}
}

// TestMetricsPrometheus checks the /metrics content negotiation and the
// exposition itself: the default scrape is Prometheus text with typed
// families and populated serving histograms, ?format=json and an
// application/json Accept header return the sorted flat counter object.
func TestMetricsPrometheus(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(400, 3000, 4)
	e.registerGraph("er", g)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "count", "phase_timers": true})
	if got := e.waitJob(v.ID); got.State != service.StateDone {
		t.Fatalf("job ended %s", got.State)
	}

	resp, data := e.do("GET", "/metrics", nil)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("default content type %q, want Prometheus text exposition", ct)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE mced_job_duration_seconds histogram",
		"# TYPE mced_queue_wait_seconds histogram",
		"# TYPE mced_phase_seconds histogram",
		"# TYPE mced_shard_rtt_seconds histogram",
		"# TYPE mced_session_build_seconds histogram",
		`mced_job_duration_seconds_bucket{le="+Inf"} 1`,
		"mced_queue_wait_seconds_count 1",
		"mced_session_build_seconds_count 1",
		"# TYPE mced_jobs_done counter",
		"mced_jobs_done 1",
		"# TYPE mced_jobs_running gauge",
		"# TYPE go_goroutines gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	// The job ran with phase timers on a non-trivial graph: at least one
	// phase histogram observed a non-zero duration.
	var phaseObs int
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "mced_phase_seconds_count{") {
			n := line[strings.LastIndexByte(line, ' ')+1:]
			if n != "0" {
				phaseObs++
			}
		}
	}
	if phaseObs == 0 {
		t.Error("no phase histogram observed anything despite phase_timers")
	}
	// One TYPE line per family, even for the labelled phase variants.
	if n := strings.Count(text, "# TYPE mced_phase_seconds "); n != 1 {
		t.Errorf("%d TYPE lines for mced_phase_seconds, want 1", n)
	}

	fetchJSON := func(path, accept string) (*http.Response, []byte) {
		r, err := http.NewRequest("GET", e.ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		resp, err := e.ts.Client().Do(r)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	for _, variant := range []struct{ path, accept string }{
		{"/metrics?format=json", ""},
		{"/metrics", "application/json"},
	} {
		resp, body := fetchJSON(variant.path, variant.accept)
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%v: negotiated content type %q, want JSON", variant, ct)
		}
		var m map[string]int64
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("JSON metrics: %v\n%s", err, body)
		}
		if m["mced_jobs_done"] != 1 {
			t.Fatalf("mced_jobs_done = %d, want 1", m["mced_jobs_done"])
		}
		// Keys render sorted for stable diffs.
		var keys []string
		for _, line := range strings.Split(string(body), "\n") {
			if i := strings.Index(line, `"`); i >= 0 {
				if j := strings.Index(line[i+1:], `"`); j >= 0 {
					keys = append(keys, line[i+1:i+1+j])
				}
			}
		}
		if !sort.StringsAreSorted(keys) {
			t.Fatalf("JSON metric keys not sorted: %v", keys)
		}
	}
}

// TestDistributedTracePropagation runs a sharded job on a 3-worker cluster
// and checks cross-node trace stitching: every worker job adopted the
// coordinator's trace ID via the traceparent header, and the coordinator's
// merged timeline carries dispatch and worker spans from all three peers.
func TestDistributedTracePropagation(t *testing.T) {
	g := hbbmc.GenerateER(400, 3000, 5)
	c := newCluster(t, 3, "er", g, nil)

	v := c.coord.startJob(map[string]any{"dataset": "er", "mode": "enumerate"})
	cliques, trailer := streamJob(t, c.coord, v.ID)
	if len(cliques) == 0 || trailer["state"] != string(service.StateDone) {
		t.Fatalf("sharded job: %d cliques, trailer %v", len(cliques), trailer)
	}

	// Every worker saw at least one shard job, and each adopted the
	// coordinator's trace ID (propagated via the traceparent header).
	for i, w := range c.workers {
		resp, data := w.do("GET", "/v1/jobs", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("worker %d job list: %d", i, resp.StatusCode)
		}
		var list struct {
			Jobs []service.JobView `json:"jobs"`
		}
		if err := json.Unmarshal(data, &list); err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) == 0 {
			t.Fatalf("worker %d ran no shard jobs", i)
		}
		for _, wj := range list.Jobs {
			if wj.TraceID != v.TraceID {
				t.Fatalf("worker %d job %s trace %q, want coordinator trace %q",
					i, wj.ID, wj.TraceID, v.TraceID)
			}
		}
	}

	// The coordinator's merged timeline nests the shard work: dispatch
	// spans for every peer, and worker-side spans tagged with their peer.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, data := c.coord.do("GET", "/v1/jobs/"+v.ID+"/trace", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("coordinator trace: %d %s", resp.StatusCode, data)
		}
		var tv obs.TraceView
		if err := json.Unmarshal(data, &tv); err != nil {
			t.Fatal(err)
		}
		if tv.TraceID != v.TraceID {
			t.Fatalf("coordinator trace ID %q != job trace ID %q", tv.TraceID, v.TraceID)
		}
		dispatchPeers := make(map[string]bool)
		workerSpanPeers := make(map[string]bool)
		for _, sp := range tv.Spans {
			switch {
			case sp.Name == "shard_dispatch":
				dispatchPeers[sp.Peer] = true
				if sp.BranchHi <= sp.BranchLo {
					t.Fatalf("dispatch span with empty branch range: %+v", sp)
				}
			case sp.Peer != "":
				workerSpanPeers[sp.Peer] = true
			}
		}
		if len(dispatchPeers) == 3 && len(workerSpanPeers) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dispatch spans from %d peers, worker spans from %d peers, want 3 and 3\nspans: %v",
				len(dispatchPeers), len(workerSpanPeers), tv.Spans)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
