package service_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/service"
)

// cluster is an in-process distributed deployment: worker mced nodes plus
// one coordinator whose Peers point at them. Every node registers the same
// graph (each from its own .hbg copy — the dataset fingerprint is content
// derived, so the copies agree).
type cluster struct {
	coord   *testEnv
	workers []*testEnv
}

func newCluster(t *testing.T, workers int, name string, g *hbbmc.Graph, mut func(*service.Config)) *cluster {
	t.Helper()
	c := &cluster{}
	var peers []string
	for i := 0; i < workers; i++ {
		w := newTestEnv(t, service.Config{})
		w.registerGraph(name, g)
		c.workers = append(c.workers, w)
		peers = append(peers, w.ts.URL)
	}
	cfg := service.Config{
		Peers:        peers,
		ShardTimeout: 30 * time.Second,
		// Small shards so even test-sized graphs fan out into several
		// dispatches — the interesting paths (merge, rotation, bounded
		// in-flight) all need shard count > peer count.
		ShardMaxBranches: 7,
	}
	if mut != nil {
		mut(&cfg)
	}
	// The coordinator is created last so its t.Cleanup shutdown runs first
	// (LIFO): coordinator jobs reach a terminal state before the workers
	// they talk to disappear.
	c.coord = newTestEnv(t, cfg)
	c.coord.registerGraph(name, g)
	return c
}

// cliqueKey canonicalises one clique for set comparison.
func cliqueKey(c []int32) string {
	s := append([]int32(nil), c...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}

// cliqueSet builds the canonical set, failing on duplicates — a duplicate
// in a merged stream means a re-dispatched shard leaked its first attempt.
func cliqueSet(t *testing.T, cliques [][]int32) map[string]bool {
	t.Helper()
	set := make(map[string]bool, len(cliques))
	for _, c := range cliques {
		k := cliqueKey(c)
		if set[k] {
			t.Fatalf("duplicate clique %v in merged stream", c)
		}
		set[k] = true
	}
	return set
}

// refCliqueSet enumerates the graph in-process as the ground truth.
func refCliqueSet(t *testing.T, g *hbbmc.Graph) map[string]bool {
	t.Helper()
	sess, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cliques, _, err := sess.Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return cliqueSet(t, cliques)
}

func sameCliqueSet(t *testing.T, label string, got, want map[string]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cliques, want %d", label, len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("%s: clique {%s} missing from merged stream", label, k)
		}
	}
}

// parallelisableAlgos are the algorithms whose top-level branch space has
// more than one position — the ones a coordinator can actually shard. (BK
// and BKPivot are a single whole-graph branch: legal, but one shard.)
var parallelisableAlgos = []string{"bkref", "bkdegen", "bkdegree", "bkrcd", "bkfac", "ebbmc", "hbbmc"}

// TestDistributedCrossNodeEquivalence is the PR-1 cross-worker equivalence
// suite generalised across nodes: for 1-, 2- and 3-worker clusters and
// every parallelisable algorithm, the merged stream must carry exactly the
// clique set a local enumeration produces.
func TestDistributedCrossNodeEquivalence(t *testing.T) {
	withTestProcs(t, 2)
	g := hbbmc.GenerateER(200, 1200, 7)
	want := refCliqueSet(t, g)

	for _, nodes := range []int{1, 2, 3} {
		c := newCluster(t, nodes, "er", g, nil)
		for _, algo := range parallelisableAlgos {
			label := fmt.Sprintf("nodes=%d/%s", nodes, algo)
			v := c.coord.startJob(map[string]any{
				"dataset": "er", "mode": "enumerate", "algorithm": algo, "workers": 2,
			})
			if !v.Sharded {
				t.Fatalf("%s: coordinator job not marked sharded", label)
			}
			cliques, trailer := streamJob(t, c.coord, v.ID)
			sameCliqueSet(t, label, cliqueSet(t, cliques), want)
			if trailer == nil || trailer["state"] != string(service.StateDone) {
				t.Fatalf("%s: trailer = %v, want done", label, trailer)
			}
			fin := c.coord.waitJob(v.ID)
			if fin.Stats == nil || fin.Stats.Cliques != int64(len(want)) {
				t.Fatalf("%s: stats = %+v, want %d cliques", label, fin.Stats, len(want))
			}
			if fin.Stats.ShardsDispatched < 1 {
				t.Fatalf("%s: ShardsDispatched = %d, want ≥ 1", label, fin.Stats.ShardsDispatched)
			}
			if fin.Stats.Workers != nodes {
				t.Fatalf("%s: stats.Workers = %d, want the %d peers", label, fin.Stats.Workers, nodes)
			}
		}
		if dispatched := c.coord.metric("shards_dispatched"); dispatched < int64(len(parallelisableAlgos)) {
			t.Fatalf("nodes=%d: shards_dispatched = %d, want ≥ %d", nodes, dispatched, len(parallelisableAlgos))
		}
	}
}

// TestDistributedSingleBranchAlgorithms: BK and BKPivot expose one
// whole-graph branch; a coordinator must still run them (as one shard).
func TestDistributedSingleBranchAlgorithms(t *testing.T) {
	g := hbbmc.GenerateER(120, 600, 11)
	want := refCliqueSet(t, g)
	c := newCluster(t, 2, "er", g, nil)
	for _, algo := range []string{"bk", "bkpivot"} {
		v := c.coord.startJob(map[string]any{"dataset": "er", "algorithm": algo})
		cliques, trailer := streamJob(t, c.coord, v.ID)
		sameCliqueSet(t, algo, cliqueSet(t, cliques), want)
		if trailer["state"] != string(service.StateDone) {
			t.Fatalf("%s: trailer = %v, want done", algo, trailer)
		}
	}
}

// TestDistributedTinyGraph drives a near-degenerate graph (a path, which
// the greedy reduction may fully consume) through a cluster: the
// residue-owning shard must still deliver those cliques exactly once.
func TestDistributedTinyGraph(t *testing.T) {
	b := hbbmc.NewBuilder(6)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}} {
		b.AddEdge(e[0], e[1])
	}
	g := b.MustBuild()
	want := refCliqueSet(t, g)
	c := newCluster(t, 2, "path", g, nil)
	v := c.coord.startJob(map[string]any{"dataset": "path", "mode": "enumerate"})
	cliques, trailer := streamJob(t, c.coord, v.ID)
	sameCliqueSet(t, "path", cliqueSet(t, cliques), want)
	if trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}
}

// TestDistributedMaxCliquesExact: the global budget must cut the merged
// stream at exactly max_cliques even though shards complete concurrently
// and each buffers more than the remaining budget.
func TestDistributedMaxCliquesExact(t *testing.T) {
	g := hbbmc.GenerateER(200, 1200, 8)
	want := refCliqueSet(t, g)
	if len(want) < 40 {
		t.Fatalf("test graph too small: %d cliques", len(want))
	}
	c := newCluster(t, 2, "er", g, nil)

	const limit = 25
	v := c.coord.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "max_cliques": limit})
	cliques, trailer := streamJob(t, c.coord, v.ID)
	if len(cliques) != limit {
		t.Fatalf("streamed %d cliques, want exactly %d", len(cliques), limit)
	}
	got := cliqueSet(t, cliques)
	for k := range got {
		if !want[k] {
			t.Fatalf("stream delivered {%s}, not a maximal clique of the graph", k)
		}
	}
	if trailer["state"] != string(service.StateStopped) || trailer["stop_reason"] != "max_cliques" {
		t.Fatalf("trailer = %v, want stopped/max_cliques", trailer)
	}
	fin := c.coord.waitJob(v.ID)
	if fin.State != service.StateStopped || fin.StopReason != "max_cliques" {
		t.Fatalf("job ended %s/%s, want stopped/max_cliques", fin.State, fin.StopReason)
	}
	if fin.Stats == nil || fin.Stats.Cliques != limit {
		t.Fatalf("stats.Cliques = %+v, want %d", fin.Stats, limit)
	}
}

// TestDistributedCountMode: a count job fans out the same way but merges
// only counters — and the shard bookkeeping lands in the nomerge fields.
func TestDistributedCountMode(t *testing.T) {
	g := hbbmc.GenerateER(200, 1200, 9)
	want := countCliques(t, g)
	c := newCluster(t, 2, "er", g, nil)

	v := c.coord.startJob(map[string]any{"dataset": "er", "mode": "count"})
	fin := c.coord.waitJob(v.ID)
	if fin.State != service.StateDone {
		t.Fatalf("count job ended %s: %s", fin.State, fin.Error)
	}
	if !fin.Sharded {
		t.Fatal("count job not marked sharded")
	}
	if fin.Stats == nil || fin.Stats.Cliques != want {
		t.Fatalf("stats = %+v, want %d cliques", fin.Stats, want)
	}
	if fin.Stats.ShardsDispatched < 2 {
		t.Fatalf("ShardsDispatched = %d, want ≥ 2 (ShardMaxBranches forces a fan-out)", fin.Stats.ShardsDispatched)
	}
	if fin.Stats.ShardsFailed != 0 {
		t.Fatalf("ShardsFailed = %d on a healthy cluster", fin.Stats.ShardsFailed)
	}
	if emitted := c.coord.metric("cliques_emitted"); emitted != want {
		t.Fatalf("coordinator cliques_emitted = %d, want %d", emitted, want)
	}
	if dispatched := c.coord.metric("shards_dispatched"); dispatched < 2 {
		t.Fatalf("shards_dispatched metric = %d, want ≥ 2", dispatched)
	}
}

// TestDistributedCountMaxCliques: the budget applies to count jobs too —
// the merged count is clamped and the job reports the max_cliques stop.
func TestDistributedCountMaxCliques(t *testing.T) {
	g := hbbmc.GenerateER(200, 1200, 10)
	want := countCliques(t, g)
	if want < 30 {
		t.Fatalf("test graph too small: %d cliques", want)
	}
	c := newCluster(t, 2, "er", g, nil)
	v := c.coord.startJob(map[string]any{"dataset": "er", "mode": "count", "max_cliques": 20})
	fin := c.coord.waitJob(v.ID)
	if fin.State != service.StateStopped || fin.StopReason != "max_cliques" {
		t.Fatalf("job ended %s/%s, want stopped/max_cliques", fin.State, fin.StopReason)
	}
	if fin.Stats == nil || fin.Stats.Cliques != 20 {
		t.Fatalf("stats = %+v, want the clamped count 20", fin.Stats)
	}
}

// TestDistributedCancelNoOrphans: DELETE on the coordinator job must reach
// the remote side — afterwards no worker may be left with a queued or
// running job (the no-orphaned-remote-jobs guarantee).
func TestDistributedCancelNoOrphans(t *testing.T) {
	g := hbbmc.GenerateER(400, 4000, 12)
	c := newCluster(t, 2, "er", g, func(cfg *service.Config) {
		cfg.ShardMaxBranches = 3 // many small shards: some always in flight
	})

	// A one-slot stream buffer with no reader: the coordinator's merge
	// blocks on delivery, so the job cannot finish before the DELETE.
	v := c.coord.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "buffer": 1})
	time.Sleep(50 * time.Millisecond) // let shards reach the peers
	resp, data := c.coord.do("DELETE", "/v1/jobs/"+v.ID, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, data)
	}
	fin := c.coord.waitJob(v.ID)
	if fin.State != service.StateStopped || fin.StopReason != "cancelled" {
		t.Fatalf("job ended %s/%s, want stopped/cancelled", fin.State, fin.StopReason)
	}

	// Every job on every worker must reach a terminal state promptly: the
	// coordinator either consumed it, cancelled it (DELETE), or its own
	// shard deadline would eventually fire — but the test only waits on the
	// first two.
	deadline := time.Now().Add(10 * time.Second)
	for _, w := range c.workers {
		for {
			var list struct {
				Jobs []service.JobView `json:"jobs"`
			}
			resp, data := w.do("GET", "/v1/jobs", nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("worker job list: %d %s", resp.StatusCode, data)
			}
			if err := json.Unmarshal(data, &list); err != nil {
				t.Fatal(err)
			}
			live := 0
			for _, j := range list.Jobs {
				if j.State == service.StateQueued || j.State == service.StateRunning {
					live++
				}
			}
			if live == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %s still has %d live jobs after coordinator cancel: %+v", w.ts.URL, live, list.Jobs)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
}

// TestDistributedInfoEndpoint: /v1/info reports the node identity the
// coordinator's peer probe keys on, including per-dataset fingerprints
// once graphs are loaded.
func TestDistributedInfoEndpoint(t *testing.T) {
	g := hbbmc.GenerateER(100, 500, 13)
	c := newCluster(t, 1, "er", g, nil)

	// A job forces the worker to load the graph, which publishes its
	// fingerprint.
	v := c.coord.startJob(map[string]any{"dataset": "er", "mode": "count"})
	if fin := c.coord.waitJob(v.ID); fin.State != service.StateDone {
		t.Fatalf("count ended %s: %s", fin.State, fin.Error)
	}

	var coordInfo, workerInfo struct {
		Version     string                `json:"version"`
		GoMaxProcs  int                   `json:"gomaxprocs"`
		WorkerSlots int                   `json:"worker_slots"`
		Peers       []string              `json:"peers"`
		Datasets    []service.DatasetInfo `json:"datasets"`
	}
	resp, data := c.coord.do("GET", "/v1/info", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/info: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &coordInfo); err != nil {
		t.Fatal(err)
	}
	if coordInfo.Version != service.Version || coordInfo.GoMaxProcs < 1 || coordInfo.WorkerSlots < 1 {
		t.Fatalf("coordinator info = %+v", coordInfo)
	}
	if len(coordInfo.Peers) != 1 || coordInfo.Peers[0] != c.workers[0].ts.URL {
		t.Fatalf("coordinator peers = %v, want the one worker", coordInfo.Peers)
	}

	resp, data = c.workers[0].do("GET", "/v1/info", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("worker /v1/info: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &workerInfo); err != nil {
		t.Fatal(err)
	}
	if len(workerInfo.Datasets) != 1 || workerInfo.Datasets[0].Name != "er" {
		t.Fatalf("worker datasets = %+v", workerInfo.Datasets)
	}
	wantFP := fmt.Sprintf("%08x", g.Fingerprint())
	if got := workerInfo.Datasets[0].Fingerprint; got != wantFP {
		t.Fatalf("worker dataset fingerprint = %q, want %q", got, wantFP)
	}
	if len(workerInfo.Peers) != 0 {
		t.Fatalf("worker reports peers %v, want none", workerInfo.Peers)
	}
}

// TestShardJobViewExposesBranchRange: a worker executing a shard reports
// its interval, so operators can see which slice of the schedule a remote
// job owns.
func TestShardJobViewExposesBranchRange(t *testing.T) {
	g := hbbmc.GenerateER(100, 500, 14)
	e := newTestEnv(t, service.Config{})
	e.registerGraph("er", g)

	v := e.startJob(map[string]any{
		"dataset": "er", "mode": "count", "branch_range": []int{1, 4},
	})
	fin := e.waitJob(v.ID)
	if fin.State != service.StateDone {
		t.Fatalf("shard job ended %s: %s", fin.State, fin.Error)
	}
	if fin.BranchRange == nil || *fin.BranchRange != [2]int{1, 4} {
		t.Fatalf("BranchRange = %v, want [1,4)", fin.BranchRange)
	}
	if fin.Sharded {
		t.Fatal("a worker-side shard job must not be marked sharded (that flag is the coordinator's)")
	}
}
