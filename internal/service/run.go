package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/distrib"
	"github.com/graphmining/hbbmc/internal/obs"
	"github.com/graphmining/hbbmc/internal/service/journal"
)

// jobRequest is the POST /v1/jobs body. Omitted algorithm fields default to
// the paper's HBBMC++ configuration (hbbmc.DefaultOptions); omitted run
// fields default to one worker, no clique budget and no deadline.
type jobRequest struct {
	Dataset string `json:"dataset"`
	// Type selects the query the job runs:
	//
	//	enumerate      stream every maximal clique over /cliques
	//	count          count maximal cliques (statistics only)
	//	max_clique     exact maximum clique (witness in the job view)
	//	top_k          the k largest maximal cliques, streamed over /cliques
	//	kclique_count  the number of k-vertex cliques (Stats.KCliques)
	//
	// "" defaults to Mode (the pre-workload-query alias), then "enumerate".
	Type string `json:"type"`
	// Mode is the legacy name of Type ("enumerate" or "count"). Setting both
	// to different values is an error.
	Mode string `json:"mode"`
	// K is the k of a top_k or kclique_count job (required, >= 1); it is
	// rejected on the other types.
	K int `json:"k"`

	// Algorithm-relevant options; together with the dataset they select the
	// cached session.
	Algorithm   string `json:"algorithm"`    // "" = hbbmc
	ET          *int   `json:"et"`           // nil = 3
	GR          *bool  `json:"gr"`           // nil = true
	SwitchDepth int    `json:"switch_depth"` // 0 = 1
	EdgeOrder   string `json:"edge_order"`   // "" = truss
	Inner       string `json:"inner"`        // "" = pivot

	// Per-request run knobs; they never fragment the session cache.
	Workers    int    `json:"workers"`     // ≤0 = 1, clamped to the slot capacity
	MaxCliques int64  `json:"max_cliques"` // 0 = unlimited
	Timeout    string `json:"timeout"`     // Go duration, e.g. "30s"; "" = none
	Buffer     int    `json:"buffer"`      // stream channel capacity; 0 = server default
	// PhaseTimers opts this job into per-phase timers (universe/pivot/et/
	// emit), reported in Stats and fed to the mced_phase_seconds histograms;
	// Config.PhaseTimers turns them on server-wide instead.
	PhaseTimers bool `json:"phase_timers,omitempty"`

	// Distributed-shard fields (internal/distrib.Descriptor). BranchRange
	// restricts the run to branch schedule positions [lo, hi); [0, 0] is
	// only legal on a session whose branch space is empty (the residue-only
	// shard). GraphCRC and Ordering, when present, must match this node's
	// session fingerprints or the request is rejected with 409 — the hard
	// incompatibility signal a coordinator never retries. A request carrying
	// BranchRange always executes locally, even on a node that is itself a
	// coordinator.
	BranchRange *[2]int `json:"branch_range,omitempty"`
	GraphCRC    string  `json:"graph_crc,omitempty"`
	Ordering    string  `json:"ordering,omitempty"`
}

// streamBufferFor clamps a client-requested stream buffer. The buffer is
// eagerly allocated, so one request must not be able to force a giant
// allocation.
func (s *Server) streamBufferFor(requested int) int {
	const maxStreamBuffer = 1 << 16
	buffer := requested
	if buffer <= 0 {
		buffer = s.cfg.StreamBuffer
	}
	if buffer > maxStreamBuffer {
		buffer = maxStreamBuffer
	}
	return buffer
}

// options maps the request to the session-defining Options. The per-run
// knobs are deliberately excluded — MaxCliques and Workers travel through
// QueryOptions so that requests with different limits share one session.
func (req *jobRequest) options() (hbbmc.Options, error) {
	opts := hbbmc.DefaultOptions()
	if req.Algorithm != "" {
		a, err := hbbmc.ParseAlgorithm(req.Algorithm)
		if err != nil {
			return opts, err
		}
		opts.Algorithm = a
	}
	if req.ET != nil {
		opts.ET = *req.ET
	}
	if req.GR != nil {
		opts.GR = *req.GR
	}
	opts.SwitchDepth = req.SwitchDepth
	if req.EdgeOrder != "" {
		eo, err := hbbmc.ParseEdgeOrder(req.EdgeOrder)
		if err != nil {
			return opts, err
		}
		opts.EdgeOrder = eo
	}
	if req.Inner != "" {
		in, err := hbbmc.ParseInnerAlgorithm(req.Inner)
		if err != nil {
			return opts, err
		}
		opts.Inner = in
	}
	return opts, nil
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	if s.recovering.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is replaying its journal")
		return
	}
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	typ := req.Type
	if typ == "" {
		typ = req.Mode
	}
	if typ == "" {
		typ = "enumerate"
	}
	if req.Type != "" && req.Mode != "" && req.Type != req.Mode {
		writeError(w, http.StatusBadRequest, "type %q and mode %q disagree", req.Type, req.Mode)
		return
	}
	switch typ {
	case "enumerate", "count", "max_clique", "top_k", "kclique_count":
	default:
		writeError(w, http.StatusBadRequest,
			"invalid type %q (enumerate, count, max_clique, top_k or kclique_count)", typ)
		return
	}
	switch typ {
	case "top_k", "kclique_count":
		if req.K < 1 {
			writeError(w, http.StatusBadRequest, "%s jobs need k >= 1, got %d", typ, req.K)
			return
		}
	default:
		if req.K != 0 {
			writeError(w, http.StatusBadRequest, "k applies to top_k and kclique_count jobs only")
			return
		}
	}
	if req.BranchRange != nil && typ != "enumerate" && typ != "count" {
		writeError(w, http.StatusBadRequest, "branch_range applies to enumerate and count jobs only")
		return
	}
	if req.MaxCliques < 0 {
		writeError(w, http.StatusBadRequest, "negative max_cliques %d", req.MaxCliques)
		return
	}
	var timeout time.Duration
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "invalid timeout %q", req.Timeout)
			return
		}
		timeout = d
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The trace timeline starts here. A shard dispatch from a coordinator
	// carries a traceparent header; adopting its trace ID is what nests this
	// node's spans under the coordinator's job in the merged timeline.
	tr := obs.NewTrace()
	if h := r.Header.Get(obs.TraceparentHeader); h != "" {
		if id, ok := obs.ParseTraceparent(h); ok {
			tr = obs.NewTraceWithID(id, true)
		}
	}

	// Build (or fetch) the warm session first: preprocessing is not guarded
	// by worker slots — it is the cost the cache amortises away, and a miss
	// must not hold slots hostage while it runs.
	sessStart := time.Now()
	sess, cached, err := s.reg.Session(req.Dataset, opts)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.reg.Dataset(req.Dataset); !ok {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	tr.Record("session_acquire", sessStart, time.Since(sessStart))

	// A branch_range marks the request as a distributed shard: verify that
	// this node's graph, options and ordering agree with the coordinator's
	// fingerprints before narrowing the query to the interval. Disagreement
	// is a 409 — the descriptor simply is not executable here, no retry can
	// fix it.
	var branchLo, branchHi int
	if req.BranchRange != nil {
		lo, hi := req.BranchRange[0], req.BranchRange[1]
		if lo < 0 || hi < lo {
			writeError(w, http.StatusBadRequest, "invalid branch_range [%d,%d)", lo, hi)
			return
		}
		// Fingerprints first: when the graphs differ the branch counts
		// usually differ too, and "fingerprint mismatch" is the actionable
		// diagnosis, not the range arithmetic it breaks downstream.
		if req.GraphCRC != "" {
			if fp := distrib.FormatCRC(sess.GraphFingerprint()); fp != req.GraphCRC {
				writeError(w, http.StatusConflict, "dataset fingerprint mismatch: descriptor %s, this node %s", req.GraphCRC, fp)
				return
			}
		}
		if req.Ordering != "" {
			if fp := distrib.FormatCRC(sess.OrderingFingerprint()); fp != req.Ordering {
				writeError(w, http.StatusConflict, "ordering fingerprint mismatch: descriptor %s, this node %s", req.Ordering, fp)
				return
			}
		}
		branches := sess.NumTopBranches()
		switch {
		case lo == 0 && hi == 0 && branches > 0:
			writeError(w, http.StatusBadRequest, "empty branch_range on a session with %d top-level branches", branches)
			return
		case hi > branches:
			writeError(w, http.StatusConflict, "branch_range [%d,%d) exceeds this node's %d top-level branches", lo, hi, branches)
			return
		}
		branchLo, branchHi = lo, hi
	}

	buffer := s.streamBufferFor(req.Buffer)

	// Coordinator mode: a plain enumerate/count job on a node with peers is
	// not executed locally — it is split into branch-interval shards and
	// fanned out to the peers, the job here becoming the merge point of
	// their streams. The workload queries (max_clique, top_k, kclique_count)
	// have no branch-range decomposition protocol yet and run locally on the
	// coordinator instead.
	if len(s.cfg.Peers) > 0 && req.BranchRange == nil && (typ == "enumerate" || typ == "count") {
		req.Mode = typ
		s.startCoordinatedJob(w, &req, sess, cached, timeout, buffer, tr)
		return
	}

	// Clamp to what the job can actually use: the core driver never runs
	// more than GOMAXPROCS goroutines, so holding more slots than that
	// would starve other jobs off an idle machine.
	workers := req.Workers
	if workers <= 0 {
		workers = 1
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > s.slots.Capacity() {
		workers = s.slots.Capacity()
	}
	q := hbbmc.QueryOptions{
		Workers:     workers,
		MaxCliques:  req.MaxCliques,
		BranchLo:    branchLo,
		BranchHi:    branchHi,
		PhaseTimers: req.PhaseTimers || s.cfg.PhaseTimers,
	}

	j := s.jobs.create(req.Dataset, typ, req.K, sess.Options(), q, workers, buffer, tr)
	s.log.Info("job created",
		slog.String("job", j.ID), slog.String("trace", tr.ID()),
		slog.String("dataset", req.Dataset), slog.String("type", typ),
		slog.Int("workers", workers), slog.Bool("session_cached", cached))
	j.mu.Lock()
	j.sessionCached = cached
	j.prepTime = sess.PrepTime()
	// Shard jobs (explicit branch_range, run on behalf of a remote
	// coordinator) are not journaled: the coordinator re-dispatches them
	// itself, and journaling them here would resume work nobody owns.
	j.journaled = s.jnl != nil && req.BranchRange == nil
	journaled := j.journaled
	j.mu.Unlock()
	if journaled {
		// The submission is durable before admission: a crash from here on
		// replays the job as queued (or further along) instead of losing it.
		jr := req
		jr.Type, jr.Mode = typ, ""
		if body, err := json.Marshal(&jr); err == nil {
			_ = s.jnl.AppendSubmit(j.ID, body)
		}
	}

	// Admission: hold the request while slots are busy, bounded by the
	// configured queue wait; saturation is a 429, never an oversubscribed
	// run. A DELETE landing while the job is queued here aborts the wait
	// through j.cancelled; a client disconnect aborts it through
	// r.Context(). Neither counts as saturation.
	admCtx := r.Context()
	var admCancel context.CancelFunc
	if s.cfg.QueueWait > 0 {
		admCtx, admCancel = context.WithTimeout(admCtx, s.cfg.QueueWait)
	} else {
		admCtx, admCancel = context.WithCancel(admCtx)
		admCancel() // no waiting: an immediate grant or nothing
	}
	defer admCancel()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-j.cancelled:
			admCancel()
		case <-watchDone:
		}
	}()
	qStart := time.Now()
	err = s.slots.Acquire(admCtx, workers)
	if err == nil {
		wait := time.Since(qStart)
		j.mu.Lock()
		j.queueWait = wait
		j.mu.Unlock()
		j.trace.Record("queued", qStart, wait)
		s.obs.queueWait.ObserveDuration(wait)
	}
	if err == nil && j.cancelReason.Load() != nil {
		// Cancelled in the instant between the grant and here: give the
		// slots straight back and take the stopped path below.
		s.slots.Release(workers)
		err = ErrSaturated
	}
	if err != nil {
		switch {
		case j.cancelReason.Load() != nil:
			// Cancelled while queued: the job never runs.
			s.jobs.markStopped(j, *j.cancelReason.Load())
			if j.cliques != nil {
				close(j.cliques)
			}
			writeJSON(w, http.StatusOK, j.View())
		case r.Context().Err() != nil:
			// The client gave up mid-wait; don't let its impatience read
			// as saturation in the metrics.
			s.jobs.markFailed(j, "client disconnected during admission")
			if j.cliques != nil {
				close(j.cliques)
			}
		default:
			s.m.admissionRejected.Add(1)
			s.jobs.markFailed(j, fmt.Sprintf("admission: %d worker slots saturated (capacity %d)", workers, s.slots.Capacity()))
			if j.cliques != nil {
				close(j.cliques)
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.QueueWait/time.Second)+1))
			writeJSON(w, http.StatusTooManyRequests, j.View())
		}
		return
	}

	runCtx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, timeout)
	} else {
		runCtx, cancel = context.WithCancel(runCtx)
	}
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	// A DELETE that slipped in after the post-Acquire check found j.cancel
	// still nil and was a no-op; honour it now that the context exists —
	// the run then stops at its first cancellation poll.
	if j.cancelReason.Load() != nil {
		cancel()
	}
	s.jobs.markRunning(j)
	go s.runJob(runCtx, cancel, j, sess)
	writeJSON(w, http.StatusAccepted, j.View())
}

// enumerateHook builds the BranchDone hook of a journaled enumerate job.
// It runs on the core's single releasing goroutine, strictly after the
// cliques of the unit it reports reached the visitor (ordered emission), so
// it can append a durable checkpoint AND push the matching {"ckpt":W}
// marker into the same stream with nothing out of order on either side.
// base seeds the cumulative totals when the run resumes a durable prefix.
func (s *Server) enumerateHook(ctx context.Context, j *Job, base journal.Ckpt) func(lo, hi int, cliques int64, max int) {
	cum := base.Cliques
	maxSize := base.MaxSize
	last := time.Now()
	prevW := j.Query.BranchLo
	interval := s.cfg.CheckpointInterval
	done := ctx.Done()
	return func(lo, hi int, cliques int64, max int) {
		cum += cliques
		if max > maxSize {
			maxSize = max
		}
		// W=0 is not a valid resume point: resuming with BranchLo=0 would
		// re-emit the preprocessing residue the W=0 call reported.
		if hi < 1 || time.Since(last) < interval {
			return
		}
		if s.jnl.AppendCkpt(j.ID, hi, cum, maxSize) != nil {
			return // wedged or failing journal: keep enumerating, stop claiming
		}
		// The span covers the branch interval this checkpoint made durable,
		// timed from the previous durable point.
		j.trace.RecordRange("checkpoint", prevW, hi, last, time.Since(last))
		prevW = hi
		last = time.Now()
		select {
		case j.cliques <- streamItem{ckpt: hi}:
		case <-done:
		}
	}
}

// countHook builds the BranchDone hook of a journaled count job. Count runs
// are unordered — hook calls arrive out of schedule order from the workers
// (serialized, but interleaved) — so completed intervals are merged into a
// contiguous-prefix watermark and only the watermark is checkpointed.
func (s *Server) countHook(j *Job, base journal.Ckpt, lo int) func(lo, hi int, cliques int64, max int) {
	type interval struct {
		hi      int
		cliques int64
	}
	pending := make(map[int]interval)
	w := lo // contiguous watermark: residue + [lo, w) are accounted
	prevW := lo
	cum := base.Cliques
	maxSize := base.MaxSize
	last := time.Now()
	intervalMin := s.cfg.CheckpointInterval
	return func(clo, chi int, cliques int64, max int) {
		if max > maxSize {
			maxSize = max
		}
		if clo == 0 && chi == 0 {
			cum += cliques // the residue call; always first when lo == 0
		} else {
			pending[clo] = interval{hi: chi, cliques: cliques}
		}
		for {
			iv, ok := pending[w]
			if !ok {
				break
			}
			delete(pending, w)
			cum += iv.cliques
			w = iv.hi
		}
		if w < 1 || time.Since(last) < intervalMin {
			return
		}
		if s.jnl.AppendCkpt(j.ID, w, cum, maxSize) == nil {
			j.trace.RecordRange("checkpoint", prevW, w, last, time.Since(last))
			prevW = w
			last = time.Now()
		}
	}
}

// runJob executes one admitted job — dispatching on its type — and always
// releases its worker slots. Journaled jobs additionally record the
// running fingerprints and durable branch-progress checkpoints.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *Job, sess *hbbmc.Session) {
	defer cancel()
	j.mu.Lock()
	journaled := j.journaled
	base := j.ckptBase
	j.mu.Unlock()
	q := j.Query
	if journaled {
		// The running record anchors resume compatibility: the graph CRC and
		// branch count a restart must reproduce before skipping any branch.
		_ = s.jnl.AppendRunning(j.ID, distrib.FormatCRC(sess.GraphFingerprint()),
			j.Opts.SessionKey(), sess.NumTopBranches())
		switch j.Mode {
		case "enumerate":
			q.BranchDone = s.enumerateHook(ctx, j, base)
			q.OrderedEmit = true
		case "count":
			q.BranchDone = s.countHook(j, base, q.BranchLo)
		}
	}
	var stats *hbbmc.Stats
	var runErr error
	switch j.Mode {
	case "max_clique":
		var clique []int32
		clique, stats, runErr = sess.MaxClique(ctx, q)
		j.mu.Lock()
		j.maxClique = clique
		j.mu.Unlock()
	case "top_k":
		var cliques [][]int32
		cliques, stats, runErr = sess.TopK(ctx, j.K, q)
		// The results exist only after the full enumeration; push them into
		// the stream channel now. The channel may be smaller than k, so a
		// missing client still exerts backpressure here — bounded by k lines
		// rather than the whole enumeration.
		done := ctx.Done()
		for _, c := range cliques {
			select {
			case j.cliques <- streamItem{c: c}:
			case <-done:
			}
		}
	case "kclique_count":
		_, stats, runErr = sess.CountKCliques(ctx, j.K, q)
	default:
		var visit hbbmc.Visitor
		if j.cliques != nil {
			done := ctx.Done()
			stall := s.obs.streamStall
			visit = func(c []int32) bool {
				cp := append([]int32(nil), c...)
				// The bounded channel is the backpressure: a slow (or absent)
				// streaming client blocks the enumeration here until it drains
				// or the job is cancelled. The fast path (buffer has room)
				// stays un-instrumented; only actual stalls are timed.
				select {
				case j.cliques <- streamItem{c: cp}:
					return true
				default:
				}
				stallStart := time.Now()
				select {
				case j.cliques <- streamItem{c: cp}:
					stall.ObserveDuration(time.Since(stallStart))
					return true
				case <-done:
					stall.ObserveDuration(time.Since(stallStart))
					return false
				}
			}
		}
		stats, runErr = sess.EnumerateWith(ctx, q, visit)
	}
	if stats != nil && base != (journal.Ckpt{}) {
		// A resumed run enumerated only [cursor, N); fold the durable prefix
		// back in so the job reports the whole logical enumeration.
		stats.Cliques += base.Cliques
		if base.MaxSize > stats.MaxCliqueSize {
			stats.MaxCliqueSize = base.MaxSize
		}
	}
	s.slots.Release(j.Workers)
	if runErr != nil && stats == nil {
		s.jobs.markFailed(j, runErr.Error())
	} else {
		if j.cliques == nil && stats != nil {
			// Count jobs deliver their cliques as a number; account them
			// when the result is known.
			s.m.cliquesEmitted.Add(stats.Cliques)
		}
		s.jobs.finish(j, stats, runErr, ctx)
	}
	if j.cliques != nil {
		// Closed after the terminal state is recorded, so a reader that
		// drains the channel observes the final state and stats.
		close(j.cliques)
	}
}

// cliqueLine is one NDJSON record of the stream: the clique's vertex ids.
type cliqueLine struct {
	C []int32 `json:"c"`
}

// ckptLine is a checkpoint marker in the stream: every clique of residue +
// branches [0, W) has been delivered above this line and the watermark is
// durable in the journal. A client that loses the connection discards
// whatever it received after the last marker and reconnects with
// ?resume_after=W to see the remaining cliques exactly once.
type ckptLine struct {
	Ckpt int `json:"ckpt"`
}

// streamTrailer is the stream's final NDJSON record. Stats lets a
// distributed coordinator collect a shard's counters from the same stream
// that carried its cliques, without a follow-up status request; Trace does
// the same for the shard's span timeline, which the coordinator merges into
// its own job's trace.
type streamTrailer struct {
	Done       bool           `json:"done"`
	State      JobState       `json:"state"`
	StopReason string         `json:"stop_reason,omitempty"`
	Error      string         `json:"error,omitempty"`
	Cliques    int64          `json:"cliques"`
	Stats      *hbbmc.Stats   `json:"stats,omitempty"`
	Trace      *obs.TraceView `json:"trace,omitempty"`
}

// handleStreamCliques streams a job's cliques as NDJSON ({"c":[...]} per
// line, a {"done":true,...} trailer). Exactly one client may stream a job;
// the stream delivers every clique exactly once. Output is flushed every
// flushEvery lines and whenever the producer pauses, so a live client sees
// cliques promptly without a per-line flush syscall storm. A client
// disconnect cancels the job — without its one consumer the enumeration
// would otherwise block on the full channel until the deadline.
//
//hbbmc:ctxpoll
func (s *Server) handleStreamCliques(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.cliques == nil {
		writeError(w, http.StatusBadRequest, "job %s is a %s job; it has no clique stream", j.ID, j.Mode)
		return
	}
	cursor := 0
	if v := r.URL.Query().Get("resume_after"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid resume_after %q", v)
			return
		}
		cursor = n
	}
	if !j.streamClaim.CompareAndSwap(false, true) {
		writeError(w, http.StatusConflict, "job %s already has a streaming client", j.ID)
		return
	}
	j.mu.Lock()
	rs := j.resume
	j.mu.Unlock()
	switch {
	case rs != nil:
		// A journal-restored job has no producer yet: start its resume run
		// from the client's cursor before entering the stream loop.
		if status, err := s.startResume(j, cursor); err != nil {
			j.streamClaim.Store(false)
			writeError(w, status, "%v", err)
			return
		}
	case cursor != 0:
		j.streamClaim.Store(false)
		writeError(w, http.StatusBadRequest,
			"job %s has no journaled progress to resume; resume_after applies to restored jobs", j.ID)
		return
	}

	drainStart := time.Now()
	const flushEvery = 64
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)

	clientGone := r.Context().Done()
	pending := 0
	for {
		var it streamItem
		var open bool
		if pending > 0 {
			// Drain without blocking while lines are unflushed; flush on
			// the first pause so a slow producer's cliques are not held
			// back by the batch threshold.
			select {
			case it, open = <-j.cliques:
			default:
				flush()
				pending = 0
				select {
				case it, open = <-j.cliques:
				case <-clientGone:
					j.requestCancel("client disconnected")
					return
				}
			}
		} else {
			select {
			case it, open = <-j.cliques:
			case <-clientGone:
				j.requestCancel("client disconnected")
				return
			}
		}
		if !open {
			break
		}
		if it.ckpt > 0 {
			// A checkpoint marker: flushed immediately so the client's
			// resume cursor is never stuck behind the batch threshold.
			if err := enc.Encode(ckptLine{Ckpt: it.ckpt}); err != nil {
				j.requestCancel("client disconnected")
				return
			}
			flush()
			pending = 0
			continue
		}
		if err := enc.Encode(cliqueLine{C: it.c}); err != nil {
			j.requestCancel("client disconnected")
			return
		}
		j.delivered.Add(1)
		s.m.cliquesEmitted.Add(1)
		if pending++; pending >= flushEvery {
			flush()
			pending = 0
		}
	}

	// The channel closes only after the terminal state is recorded.
	<-j.Done()
	// The drain span covers the whole streaming handler; recorded before the
	// trailer snapshots the timeline so the client (and a coordinator
	// merging shard traces) sees it.
	j.trace.Record("drain", drainStart, time.Since(drainStart))
	v := j.View()
	tv := j.trace.View()
	_ = enc.Encode(streamTrailer{
		Done:       true,
		State:      v.State,
		StopReason: v.StopReason,
		Error:      v.Error,
		Cliques:    j.delivered.Load(),
		Stats:      v.Stats,
		Trace:      &tv,
	})
	flush()
}
