package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/distrib"
)

// jobRequest is the POST /v1/jobs body. Omitted algorithm fields default to
// the paper's HBBMC++ configuration (hbbmc.DefaultOptions); omitted run
// fields default to one worker, no clique budget and no deadline.
type jobRequest struct {
	Dataset string `json:"dataset"`
	// Type selects the query the job runs:
	//
	//	enumerate      stream every maximal clique over /cliques
	//	count          count maximal cliques (statistics only)
	//	max_clique     exact maximum clique (witness in the job view)
	//	top_k          the k largest maximal cliques, streamed over /cliques
	//	kclique_count  the number of k-vertex cliques (Stats.KCliques)
	//
	// "" defaults to Mode (the pre-workload-query alias), then "enumerate".
	Type string `json:"type"`
	// Mode is the legacy name of Type ("enumerate" or "count"). Setting both
	// to different values is an error.
	Mode string `json:"mode"`
	// K is the k of a top_k or kclique_count job (required, >= 1); it is
	// rejected on the other types.
	K int `json:"k"`

	// Algorithm-relevant options; together with the dataset they select the
	// cached session.
	Algorithm   string `json:"algorithm"`    // "" = hbbmc
	ET          *int   `json:"et"`           // nil = 3
	GR          *bool  `json:"gr"`           // nil = true
	SwitchDepth int    `json:"switch_depth"` // 0 = 1
	EdgeOrder   string `json:"edge_order"`   // "" = truss
	Inner       string `json:"inner"`        // "" = pivot

	// Per-request run knobs; they never fragment the session cache.
	Workers    int    `json:"workers"`     // ≤0 = 1, clamped to the slot capacity
	MaxCliques int64  `json:"max_cliques"` // 0 = unlimited
	Timeout    string `json:"timeout"`     // Go duration, e.g. "30s"; "" = none
	Buffer     int    `json:"buffer"`      // stream channel capacity; 0 = server default

	// Distributed-shard fields (internal/distrib.Descriptor). BranchRange
	// restricts the run to branch schedule positions [lo, hi); [0, 0] is
	// only legal on a session whose branch space is empty (the residue-only
	// shard). GraphCRC and Ordering, when present, must match this node's
	// session fingerprints or the request is rejected with 409 — the hard
	// incompatibility signal a coordinator never retries. A request carrying
	// BranchRange always executes locally, even on a node that is itself a
	// coordinator.
	BranchRange *[2]int `json:"branch_range,omitempty"`
	GraphCRC    string  `json:"graph_crc,omitempty"`
	Ordering    string  `json:"ordering,omitempty"`
}

// options maps the request to the session-defining Options. The per-run
// knobs are deliberately excluded — MaxCliques and Workers travel through
// QueryOptions so that requests with different limits share one session.
func (req *jobRequest) options() (hbbmc.Options, error) {
	opts := hbbmc.DefaultOptions()
	if req.Algorithm != "" {
		a, err := hbbmc.ParseAlgorithm(req.Algorithm)
		if err != nil {
			return opts, err
		}
		opts.Algorithm = a
	}
	if req.ET != nil {
		opts.ET = *req.ET
	}
	if req.GR != nil {
		opts.GR = *req.GR
	}
	opts.SwitchDepth = req.SwitchDepth
	if req.EdgeOrder != "" {
		eo, err := hbbmc.ParseEdgeOrder(req.EdgeOrder)
		if err != nil {
			return opts, err
		}
		opts.EdgeOrder = eo
	}
	if req.Inner != "" {
		in, err := hbbmc.ParseInnerAlgorithm(req.Inner)
		if err != nil {
			return opts, err
		}
		opts.Inner = in
	}
	return opts, nil
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	typ := req.Type
	if typ == "" {
		typ = req.Mode
	}
	if typ == "" {
		typ = "enumerate"
	}
	if req.Type != "" && req.Mode != "" && req.Type != req.Mode {
		writeError(w, http.StatusBadRequest, "type %q and mode %q disagree", req.Type, req.Mode)
		return
	}
	switch typ {
	case "enumerate", "count", "max_clique", "top_k", "kclique_count":
	default:
		writeError(w, http.StatusBadRequest,
			"invalid type %q (enumerate, count, max_clique, top_k or kclique_count)", typ)
		return
	}
	switch typ {
	case "top_k", "kclique_count":
		if req.K < 1 {
			writeError(w, http.StatusBadRequest, "%s jobs need k >= 1, got %d", typ, req.K)
			return
		}
	default:
		if req.K != 0 {
			writeError(w, http.StatusBadRequest, "k applies to top_k and kclique_count jobs only")
			return
		}
	}
	if req.BranchRange != nil && typ != "enumerate" && typ != "count" {
		writeError(w, http.StatusBadRequest, "branch_range applies to enumerate and count jobs only")
		return
	}
	if req.MaxCliques < 0 {
		writeError(w, http.StatusBadRequest, "negative max_cliques %d", req.MaxCliques)
		return
	}
	var timeout time.Duration
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "invalid timeout %q", req.Timeout)
			return
		}
		timeout = d
	}
	opts, err := req.options()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Build (or fetch) the warm session first: preprocessing is not guarded
	// by worker slots — it is the cost the cache amortises away, and a miss
	// must not hold slots hostage while it runs.
	sess, cached, err := s.reg.Session(req.Dataset, opts)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := s.reg.Dataset(req.Dataset); !ok {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}

	// A branch_range marks the request as a distributed shard: verify that
	// this node's graph, options and ordering agree with the coordinator's
	// fingerprints before narrowing the query to the interval. Disagreement
	// is a 409 — the descriptor simply is not executable here, no retry can
	// fix it.
	var branchLo, branchHi int
	if req.BranchRange != nil {
		lo, hi := req.BranchRange[0], req.BranchRange[1]
		if lo < 0 || hi < lo {
			writeError(w, http.StatusBadRequest, "invalid branch_range [%d,%d)", lo, hi)
			return
		}
		// Fingerprints first: when the graphs differ the branch counts
		// usually differ too, and "fingerprint mismatch" is the actionable
		// diagnosis, not the range arithmetic it breaks downstream.
		if req.GraphCRC != "" {
			if fp := distrib.FormatCRC(sess.GraphFingerprint()); fp != req.GraphCRC {
				writeError(w, http.StatusConflict, "dataset fingerprint mismatch: descriptor %s, this node %s", req.GraphCRC, fp)
				return
			}
		}
		if req.Ordering != "" {
			if fp := distrib.FormatCRC(sess.OrderingFingerprint()); fp != req.Ordering {
				writeError(w, http.StatusConflict, "ordering fingerprint mismatch: descriptor %s, this node %s", req.Ordering, fp)
				return
			}
		}
		branches := sess.NumTopBranches()
		switch {
		case lo == 0 && hi == 0 && branches > 0:
			writeError(w, http.StatusBadRequest, "empty branch_range on a session with %d top-level branches", branches)
			return
		case hi > branches:
			writeError(w, http.StatusConflict, "branch_range [%d,%d) exceeds this node's %d top-level branches", lo, hi, branches)
			return
		}
		branchLo, branchHi = lo, hi
	}

	// The buffer is client-controlled and eagerly allocated (24 bytes per
	// slot): clamp it so one request cannot force a giant allocation.
	const maxStreamBuffer = 1 << 16
	buffer := req.Buffer
	if buffer <= 0 {
		buffer = s.cfg.StreamBuffer
	}
	if buffer > maxStreamBuffer {
		buffer = maxStreamBuffer
	}

	// Coordinator mode: a plain enumerate/count job on a node with peers is
	// not executed locally — it is split into branch-interval shards and
	// fanned out to the peers, the job here becoming the merge point of
	// their streams. The workload queries (max_clique, top_k, kclique_count)
	// have no branch-range decomposition protocol yet and run locally on the
	// coordinator instead.
	if len(s.cfg.Peers) > 0 && req.BranchRange == nil && (typ == "enumerate" || typ == "count") {
		req.Mode = typ
		s.startCoordinatedJob(w, &req, sess, cached, timeout, buffer)
		return
	}

	// Clamp to what the job can actually use: the core driver never runs
	// more than GOMAXPROCS goroutines, so holding more slots than that
	// would starve other jobs off an idle machine.
	workers := req.Workers
	if workers <= 0 {
		workers = 1
	}
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > s.slots.Capacity() {
		workers = s.slots.Capacity()
	}
	q := hbbmc.QueryOptions{
		Workers:    workers,
		MaxCliques: req.MaxCliques,
		BranchLo:   branchLo,
		BranchHi:   branchHi,
	}

	j := s.jobs.create(req.Dataset, typ, req.K, sess.Options(), q, workers, buffer)
	j.mu.Lock()
	j.sessionCached = cached
	j.prepTime = sess.PrepTime()
	j.mu.Unlock()

	// Admission: hold the request while slots are busy, bounded by the
	// configured queue wait; saturation is a 429, never an oversubscribed
	// run. A DELETE landing while the job is queued here aborts the wait
	// through j.cancelled; a client disconnect aborts it through
	// r.Context(). Neither counts as saturation.
	admCtx := r.Context()
	var admCancel context.CancelFunc
	if s.cfg.QueueWait > 0 {
		admCtx, admCancel = context.WithTimeout(admCtx, s.cfg.QueueWait)
	} else {
		admCtx, admCancel = context.WithCancel(admCtx)
		admCancel() // no waiting: an immediate grant or nothing
	}
	defer admCancel()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-j.cancelled:
			admCancel()
		case <-watchDone:
		}
	}()
	err = s.slots.Acquire(admCtx, workers)
	if err == nil && j.cancelReason.Load() != nil {
		// Cancelled in the instant between the grant and here: give the
		// slots straight back and take the stopped path below.
		s.slots.Release(workers)
		err = ErrSaturated
	}
	if err != nil {
		switch {
		case j.cancelReason.Load() != nil:
			// Cancelled while queued: the job never runs.
			s.jobs.markStopped(j, *j.cancelReason.Load())
			if j.cliques != nil {
				close(j.cliques)
			}
			writeJSON(w, http.StatusOK, j.View())
		case r.Context().Err() != nil:
			// The client gave up mid-wait; don't let its impatience read
			// as saturation in the metrics.
			s.jobs.markFailed(j, "client disconnected during admission")
			if j.cliques != nil {
				close(j.cliques)
			}
		default:
			s.m.admissionRejected.Add(1)
			s.jobs.markFailed(j, fmt.Sprintf("admission: %d worker slots saturated (capacity %d)", workers, s.slots.Capacity()))
			if j.cliques != nil {
				close(j.cliques)
			}
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.QueueWait/time.Second)+1))
			writeJSON(w, http.StatusTooManyRequests, j.View())
		}
		return
	}

	runCtx := context.Background()
	var cancel context.CancelFunc
	if timeout > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, timeout)
	} else {
		runCtx, cancel = context.WithCancel(runCtx)
	}
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	// A DELETE that slipped in after the post-Acquire check found j.cancel
	// still nil and was a no-op; honour it now that the context exists —
	// the run then stops at its first cancellation poll.
	if j.cancelReason.Load() != nil {
		cancel()
	}
	s.jobs.markRunning(j)
	go s.runJob(runCtx, cancel, j, sess)
	writeJSON(w, http.StatusAccepted, j.View())
}

// runJob executes one admitted job — dispatching on its type — and always
// releases its worker slots.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *Job, sess *hbbmc.Session) {
	defer cancel()
	var stats *hbbmc.Stats
	var runErr error
	switch j.Mode {
	case "max_clique":
		var clique []int32
		clique, stats, runErr = sess.MaxClique(ctx, j.Query)
		j.mu.Lock()
		j.maxClique = clique
		j.mu.Unlock()
	case "top_k":
		var cliques [][]int32
		cliques, stats, runErr = sess.TopK(ctx, j.K, j.Query)
		// The results exist only after the full enumeration; push them into
		// the stream channel now. The channel may be smaller than k, so a
		// missing client still exerts backpressure here — bounded by k lines
		// rather than the whole enumeration.
		done := ctx.Done()
		for _, c := range cliques {
			select {
			case j.cliques <- c:
			case <-done:
			}
		}
	case "kclique_count":
		_, stats, runErr = sess.CountKCliques(ctx, j.K, j.Query)
	default:
		var visit hbbmc.Visitor
		if j.cliques != nil {
			done := ctx.Done()
			visit = func(c []int32) bool {
				cp := append([]int32(nil), c...)
				// The bounded channel is the backpressure: a slow (or absent)
				// streaming client blocks the enumeration here until it drains
				// or the job is cancelled.
				select {
				case j.cliques <- cp:
					return true
				case <-done:
					return false
				}
			}
		}
		stats, runErr = sess.EnumerateWith(ctx, j.Query, visit)
	}
	s.slots.Release(j.Workers)
	if runErr != nil && stats == nil {
		s.jobs.markFailed(j, runErr.Error())
	} else {
		if j.cliques == nil && stats != nil {
			// Count jobs deliver their cliques as a number; account them
			// when the result is known.
			s.m.cliquesEmitted.Add(stats.Cliques)
		}
		s.jobs.finish(j, stats, runErr, ctx)
	}
	if j.cliques != nil {
		// Closed after the terminal state is recorded, so a reader that
		// drains the channel observes the final state and stats.
		close(j.cliques)
	}
}

// cliqueLine is one NDJSON record of the stream: the clique's vertex ids.
type cliqueLine struct {
	C []int32 `json:"c"`
}

// streamTrailer is the stream's final NDJSON record. Stats lets a
// distributed coordinator collect a shard's counters from the same stream
// that carried its cliques, without a follow-up status request.
type streamTrailer struct {
	Done       bool         `json:"done"`
	State      JobState     `json:"state"`
	StopReason string       `json:"stop_reason,omitempty"`
	Error      string       `json:"error,omitempty"`
	Cliques    int64        `json:"cliques"`
	Stats      *hbbmc.Stats `json:"stats,omitempty"`
}

// handleStreamCliques streams a job's cliques as NDJSON ({"c":[...]} per
// line, a {"done":true,...} trailer). Exactly one client may stream a job;
// the stream delivers every clique exactly once. Output is flushed every
// flushEvery lines and whenever the producer pauses, so a live client sees
// cliques promptly without a per-line flush syscall storm. A client
// disconnect cancels the job — without its one consumer the enumeration
// would otherwise block on the full channel until the deadline.
//
//hbbmc:ctxpoll
func (s *Server) handleStreamCliques(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.cliques == nil {
		writeError(w, http.StatusBadRequest, "job %s is a %s job; it has no clique stream", j.ID, j.Mode)
		return
	}
	if !j.streamClaim.CompareAndSwap(false, true) {
		writeError(w, http.StatusConflict, "job %s already has a streaming client", j.ID)
		return
	}

	const flushEvery = 64
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)

	clientGone := r.Context().Done()
	pending := 0
	for {
		var c []int32
		var open bool
		if pending > 0 {
			// Drain without blocking while lines are unflushed; flush on
			// the first pause so a slow producer's cliques are not held
			// back by the batch threshold.
			select {
			case c, open = <-j.cliques:
			default:
				flush()
				pending = 0
				select {
				case c, open = <-j.cliques:
				case <-clientGone:
					j.requestCancel("client disconnected")
					return
				}
			}
		} else {
			select {
			case c, open = <-j.cliques:
			case <-clientGone:
				j.requestCancel("client disconnected")
				return
			}
		}
		if !open {
			break
		}
		if err := enc.Encode(cliqueLine{C: c}); err != nil {
			j.requestCancel("client disconnected")
			return
		}
		j.delivered.Add(1)
		s.m.cliquesEmitted.Add(1)
		if pending++; pending >= flushEvery {
			flush()
			pending = 0
		}
	}

	// The channel closes only after the terminal state is recorded.
	<-j.Done()
	v := j.View()
	_ = enc.Encode(streamTrailer{
		Done:       true,
		State:      v.State,
		StopReason: v.StopReason,
		Error:      v.Error,
		Cliques:    j.delivered.Load(),
		Stats:      v.Stats,
	})
	flush()
}
