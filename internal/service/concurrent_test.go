package service_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/service"
)

// waitForGoroutines polls until the goroutine count returns to the
// baseline, i.e. no job or stream goroutine leaked. The test client's
// pooled keep-alive connections each hold two net/http goroutines, so idle
// connections are dropped before every measurement.
func waitForGoroutines(t *testing.T, e *testEnv, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		e.ts.Client().CloseIdleConnections()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d now vs %d baseline\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestConcurrentMixedWorkload drives ≥8 simultaneous HTTP jobs — streamed
// enumerations with exact MaxCliques budgets, parallel counts, and
// cancellations mid-stream — against two datasets on one server, then
// asserts every job reached a terminal state, every worker slot was
// released, the limited streams delivered exactly their budget, and no
// goroutines leaked.
func TestConcurrentMixedWorkload(t *testing.T) {
	withTestProcs(t, 4)
	e := newTestEnv(t, service.Config{
		WorkerSlots: 4,
		QueueWait:   20 * time.Second, // nothing should 429 in this test
		MaxQueue:    64,
	})
	gA := hbbmc.GenerateER(600, 6000, 21)
	gB := hbbmc.GenerateBA(800, 6, 22)
	e.registerGraph("a", gA)
	e.registerGraph("b", gB)
	wantA := countCliques(t, gA)
	wantB := countCliques(t, gB)
	if wantA < 200 || wantB < 200 {
		t.Fatalf("test graphs too small: %d / %d cliques", wantA, wantB)
	}

	// Warm both sessions so the workload below measures serving, not
	// preprocessing, and leave the goroutine baseline to settle.
	e.waitJob(e.startJob(map[string]any{"dataset": "a", "mode": "count"}).ID)
	e.waitJob(e.startJob(map[string]any{"dataset": "b", "mode": "count"}).ID)
	e.ts.Client().CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	type jobSpec struct {
		dataset string
		kind    string // "stream-limited", "count", "cancel"
		want    int64  // expected cliques for count; budget for stream-limited
	}
	specs := []jobSpec{
		{"a", "stream-limited", 17},
		{"b", "stream-limited", 23},
		{"a", "count", wantA},
		{"b", "count", wantB},
		{"a", "cancel", 0},
		{"b", "cancel", 0},
		{"a", "stream-limited", 41},
		{"b", "count", wantB},
		{"a", "count", wantA},
		{"b", "cancel", 0},
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec jobSpec) {
			defer wg.Done()
			workers := 1 + i%3
			switch spec.kind {
			case "stream-limited":
				v := e.startJob(map[string]any{
					"dataset": spec.dataset, "mode": "enumerate",
					"workers": workers, "max_cliques": spec.want,
				})
				cliques, trailer := streamJob(t, e, v.ID)
				if int64(len(cliques)) != spec.want {
					errs <- fmt.Errorf("job %d (%s): streamed %d cliques, want exactly %d", i, spec.dataset, len(cliques), spec.want)
					return
				}
				if trailer == nil || trailer["state"] != string(service.StateStopped) {
					errs <- fmt.Errorf("job %d: trailer %v, want stopped", i, trailer)
				}
			case "count":
				v := e.startJob(map[string]any{"dataset": spec.dataset, "mode": "count", "workers": workers})
				v = e.waitJob(v.ID)
				if v.State != service.StateDone || v.Stats == nil || v.Stats.Cliques != spec.want {
					errs <- fmt.Errorf("job %d (%s): state=%s cliques=%v, want done/%d", i, spec.dataset, v.State, v.Stats, spec.want)
					return
				}
				if !v.SessionCached || v.Stats.OrderingTime != 0 {
					errs <- fmt.Errorf("job %d: warm dataset served cold (cached=%v ordering=%v)", i, v.SessionCached, v.Stats.OrderingTime)
				}
			case "cancel":
				// A tiny buffer and no stream reader: the job blocks until
				// the DELETE lands.
				v := e.startJob(map[string]any{
					"dataset": spec.dataset, "mode": "enumerate", "workers": workers, "buffer": 1,
				})
				time.Sleep(time.Duration(5+i) * time.Millisecond)
				resp, data := e.do("DELETE", "/v1/jobs/"+v.ID, nil)
				if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("job %d: cancel = %d %s", i, resp.StatusCode, data)
					return
				}
				v = e.waitJob(v.ID)
				if v.State != service.StateStopped {
					errs <- fmt.Errorf("job %d: cancelled job ended %s", i, v.State)
				}
			}
		}(i, spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every slot must be back; a blocked cancel job that failed to release
	// would hold the count up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, data := e.do("GET", "/healthz", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/healthz: %d", resp.StatusCode)
		}
		if string(data) != "" && !jsonHasNonZero(data, "slots_in_use") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker slots never drained: %s", data)
		}
		time.Sleep(10 * time.Millisecond)
	}

	waitForGoroutines(t, e, baseline)

	if q := e.metric("jobs_queued"); q != 0 {
		t.Fatalf("jobs_queued gauge = %d, want 0", q)
	}
	if r := e.metric("jobs_running"); r != 0 {
		t.Fatalf("jobs_running gauge = %d, want 0", r)
	}
	done, stopped := e.metric("jobs_done"), e.metric("jobs_stopped")
	if done < 6 || stopped < 6 { // 2 warmups + 4 counts; 3 limited + 3 cancels
		t.Fatalf("jobs_done=%d jobs_stopped=%d, want ≥6 each", done, stopped)
	}

	// The terminal counters must agree exactly with the job history: every
	// job the server remembers is terminal, counted once under its state,
	// and carries a trace ID.
	resp, data := e.do("GET", "/v1/jobs", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/jobs: %d", resp.StatusCode)
	}
	var list struct {
		Jobs []service.JobView `json:"jobs"`
	}
	if err := json.Unmarshal(data, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != len(specs)+2 { // the workload plus the two warmups
		t.Fatalf("job history holds %d jobs, want %d", len(list.Jobs), len(specs)+2)
	}
	byState := map[service.JobState]int64{}
	for _, v := range list.Jobs {
		byState[v.State]++
		if v.TraceID == "" {
			t.Errorf("job %s has no trace ID", v.ID)
		}
	}
	if failed := e.metric("jobs_failed"); done != byState[service.StateDone] ||
		stopped != byState[service.StateStopped] || failed != byState[service.StateFailed] {
		t.Fatalf("counters done=%d stopped=%d failed=%d, history %v",
			done, stopped, failed, byState)
	}
}

// jsonHasNonZero reports whether the flat JSON object data maps key to a
// non-zero number.
func jsonHasNonZero(data []byte, key string) bool {
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	v, ok := m[key].(float64)
	return ok && v != 0
}
