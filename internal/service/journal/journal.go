// Package journal is mced's write-ahead job journal: an fsync'd,
// CRC-framed, segmented append log recording dataset registrations, job
// submissions, state transitions, branch-progress checkpoints and terminal
// stats. A restarted daemon replays the segments to rebuild its dataset
// registry and job table and to resume interrupted jobs from their last
// durable branch watermark.
//
// On-disk format: segments named wal.NNNNNNNN, each a sequence of frames
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload JSON]
//
// Appends are fsync'd before they are acknowledged, so a record the caller
// saw succeed survives a kill -9. Replay verifies each frame's CRC and
// truncates the segment at the first bad or short frame — the torn tail a
// crash mid-append leaves — and counts the truncation instead of failing.
//
// Rotation doubles as compaction: when the active segment exceeds the size
// budget, the live state (datasets + non-terminal jobs with their
// checkpoints) is snapshotted into a fresh segment and the older segments
// are deleted. Terminal jobs age out of the journal at that moment.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/graphmining/hbbmc/internal/chaos"
)

// ErrWedged is returned by appends after an injected crash wedged the
// journal: the on-disk state is frozen at the crash point, exactly as a
// real process death would have left it, while the process (under test)
// keeps running.
var ErrWedged = errors.New("journal: wedged by injected crash")

// CrashPoints names every chaos injection site in the append/checkpoint/
// rotation path. The crash-matrix test arms each one in turn and proves
// that replay from the resulting on-disk state converges to the same
// results as an uninterrupted run.
func CrashPoints() []string {
	return []string{
		"journal.append",        // before anything is written: the record is lost
		"journal.append.torn",   // half the frame written: a torn tail to truncate
		"journal.append.synced", // record fully durable, crash before acknowledging
		"journal.ckpt",          // at a checkpoint append specifically
		"journal.terminal",      // at a terminal append specifically
		"journal.rotate",        // mid-rotation: snapshot written, old segments still present
	}
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8
	// maxRecordBytes guards replay against absurd lengths decoded from a
	// corrupt frame header.
	maxRecordBytes = 16 << 20
	segPrefix      = "wal."
)

// Counters is a snapshot of the journal's cumulative counters, polled by
// the service's /metrics handler.
type Counters struct {
	Records        int64 // records appended (snapshot records included)
	Bytes          int64 // frame bytes appended
	Rotations      int64 // segment rotations (each one compacts)
	TruncatedTails int64 // corrupt tails truncated during replay
	Segments       int64 // segments read by replay
}

// Journal is the open write-ahead log. Appends are serialized by mu and
// fsync'd; all methods are safe for concurrent use.
type Journal struct {
	dir         string
	maxSegBytes int64

	mu sync.Mutex
	//hbbmc:guardedby mu
	f *os.File
	//hbbmc:guardedby mu
	seq int
	//hbbmc:guardedby mu
	size int64
	// rotateAt is the size that triggers the next rotation: maxSegBytes,
	// raised to twice the last compacted snapshot when the live state itself
	// outgrows the budget. Without this a snapshot larger than the segment
	// cap would re-trigger rotation on every subsequent append, rewriting
	// the whole live state each time (a quadratic rotation storm).
	//hbbmc:guardedby mu
	rotateAt int64
	//hbbmc:guardedby mu
	wedged bool
	// live mirrors the on-disk state so rotation can write a compacted
	// snapshot without re-reading the segments.
	//hbbmc:guardedby mu
	live *Replay
	// syncObs, when set, observes the duration of each append's fsync —
	// the latency every durable acknowledgement pays.
	//hbbmc:guardedby mu
	syncObs func(time.Duration)

	records, bytes, rotations, truncated, segments atomic.Int64
}

// SetSyncObserver installs fn to be called with the duration of each
// append fsync. Pass nil to remove the observer. fn must be safe for
// concurrent use and must not block: it runs under the journal lock.
func (j *Journal) SetSyncObserver(fn func(time.Duration)) {
	j.mu.Lock()
	j.syncObs = fn
	j.mu.Unlock()
}

// Options sizes the journal. The zero value uses the defaults.
type Options struct {
	// MaxSegmentBytes triggers rotation + compaction when the active
	// segment grows past it (0 = 4 MiB).
	MaxSegmentBytes int64
}

// Open replays the journal in dir (creating it if needed) and opens the
// last segment for appending. The returned Replay is the reconstructed
// state; the journal's live tracker starts from a copy of it.
func Open(dir string, opts Options) (*Journal, *Replay, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = 4 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, maxSegBytes: opts.MaxSegmentBytes, rotateAt: opts.MaxSegmentBytes}
	// No caller can see j yet, but the guarded fields are initialized under
	// the lock anyway so the invariant holds everywhere.
	j.mu.Lock()
	defer j.mu.Unlock()
	j.live = newReplay()

	segs, err := j.listSegments()
	if err != nil {
		return nil, nil, err
	}
	for _, seq := range segs {
		if err := j.replaySegmentLocked(seq); err != nil {
			return nil, nil, err
		}
	}
	j.segments.Store(int64(len(segs)))

	j.seq = 1
	if n := len(segs); n > 0 {
		j.seq = segs[n-1]
	}
	f, err := os.OpenFile(j.segPath(j.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f, j.size = f, st.Size()

	// Hand the caller its own copy of the replayed state; the journal keeps
	// mutating live as records are appended.
	out := newReplay()
	for _, rec := range j.live.snapshot() {
		rec := rec
		_ = out.apply(&rec)
	}
	// snapshot drops terminal jobs (that is its point), but replay callers
	// want them for job history: copy them over directly.
	for _, id := range j.live.Order {
		jr := j.live.Jobs[id]
		if jr != nil && jr.Terminal() {
			if _, ok := out.Jobs[id]; !ok {
				out.Order = append(out.Order, id)
			}
			cp := *jr
			out.Jobs[id] = &cp
		}
	}
	sort.Strings(out.Order)
	return j, out, nil
}

func (j *Journal) segPath(seq int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s%08d", segPrefix, seq))
}

// listSegments returns the existing segment sequence numbers in order.
func (j *Journal) listSegments() ([]int, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), segPrefix+"%08d", &seq); err == nil && e.Name() == fmt.Sprintf("%s%08d", segPrefix, seq) {
			segs = append(segs, seq)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// replaySegmentLocked reads one segment into the live state, truncating a
// corrupt or short tail in place.
func (j *Journal) replaySegmentLocked(seq int) error {
	path := j.segPath(seq)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	off := 0
	for {
		n, rec, ok := decodeFrame(data[off:])
		if !ok {
			if off < len(data) {
				// Torn tail: a crash mid-append. Truncate to the last whole
				// frame so the next rotation does not re-trip on it.
				if err := os.Truncate(path, int64(off)); err != nil {
					return fmt.Errorf("journal: truncating corrupt tail of %s: %w", path, err)
				}
				j.truncated.Add(1)
			}
			return nil
		}
		if n == 0 {
			return nil // clean end
		}
		// Unknown or inconsistent records are skipped, not fatal: a journal
		// written by a newer daemon must not brick an older one.
		_ = j.live.apply(rec)
		off += n
	}
}

// decodeFrame decodes one frame from b. It returns (bytesConsumed, record,
// true) for a whole valid frame, (0, nil, true) for a clean end (empty b),
// and ok=false for a torn or corrupt frame.
func decodeFrame(b []byte) (int, *Record, bool) {
	if len(b) == 0 {
		return 0, nil, true
	}
	if len(b) < frameHeader {
		return 0, nil, false
	}
	length := binary.LittleEndian.Uint32(b)
	sum := binary.LittleEndian.Uint32(b[4:])
	if length == 0 || length > maxRecordBytes || frameHeader+int(length) > len(b) {
		return 0, nil, false
	}
	payload := b[frameHeader : frameHeader+int(length)]
	if crc32.Checksum(payload, crcTable) != sum {
		return 0, nil, false
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, nil, false
	}
	return frameHeader + int(length), &rec, true
}

func encodeFrame(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// fault translates a chaos injection outcome: an injected crash wedges the
// journal (the on-disk state freezes at the crash point), other injected
// errors pass through.
//
// callers hold mu.
func (j *Journal) faultLocked(err error) error {
	if errors.Is(err, chaos.ErrCrash) {
		j.wedged = true
		return ErrWedged
	}
	return err
}

// append frames, writes and fsyncs one record, applying it to the live
// state and rotating the segment when over budget. Chaos points cover the
// lost-record, torn-tail and durable-but-unacknowledged crash shapes.
func (j *Journal) append(rec *Record, extraPoints ...string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wedged {
		return ErrWedged
	}
	if j.f == nil {
		return errors.New("journal: closed")
	}
	for _, p := range extraPoints {
		if err := chaos.Inject(p); err != nil {
			return j.faultLocked(err)
		}
	}
	if err := chaos.Inject("journal.append"); err != nil {
		return j.faultLocked(err)
	}
	frame, err := encodeFrame(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := chaos.Inject("journal.append.torn"); err != nil {
		if errors.Is(err, chaos.ErrCrash) {
			// Simulate the torn write a crash mid-append leaves behind:
			// half the frame reaches the disk, then nothing ever again.
			_, _ = j.f.Write(frame[:len(frame)/2])
			_ = j.f.Sync()
		}
		return j.faultLocked(err)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	syncStart := time.Now()
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.syncObs != nil {
		j.syncObs(time.Since(syncStart))
	}
	j.size += int64(len(frame))
	j.records.Add(1)
	j.bytes.Add(int64(len(frame)))
	_ = j.live.apply(rec)
	if err := chaos.Inject("journal.append.synced"); err != nil {
		return j.faultLocked(err)
	}
	if j.size >= j.rotateAt {
		return j.rotateLocked()
	}
	return nil
}

// rotateLocked writes the live state's compacted snapshot into a fresh
// segment, switches appends to it, and deletes the older segments. A crash
// between the snapshot fsync and the deletes leaves both generations on
// disk; replay applies them in order, and snapshot records are idempotent,
// so the state converges either way.
func (j *Journal) rotateLocked() error {
	newSeq := j.seq + 1
	nf, err := os.OpenFile(j.segPath(newSeq), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	var size int64
	for _, rec := range j.live.snapshot() {
		rec := rec
		frame, err := encodeFrame(&rec)
		if err != nil {
			nf.Close()
			return fmt.Errorf("journal: rotate: %w", err)
		}
		if _, err := nf.Write(frame); err != nil {
			nf.Close()
			return fmt.Errorf("journal: rotate: %w", err)
		}
		size += int64(len(frame))
		j.records.Add(1)
		j.bytes.Add(int64(len(frame)))
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return fmt.Errorf("journal: rotate: %w", err)
	}
	if err := chaos.Inject("journal.rotate"); err != nil {
		nf.Close()
		return j.faultLocked(err)
	}
	oldSeq := j.seq
	j.f.Close()
	j.f, j.seq, j.size = nf, newSeq, size
	// Doubling the trigger whenever the snapshot itself fills the budget
	// keeps compaction amortized-linear even when one job accrues more
	// checkpoint state than maxSegBytes.
	j.rotateAt = j.maxSegBytes
	if min := 2 * size; j.rotateAt < min {
		j.rotateAt = min
	}
	// Terminal jobs age out here: the snapshot did not carry them, so drop
	// them from the live tracker too.
	for id, jr := range j.live.Jobs {
		if jr.Terminal() {
			delete(j.live.Jobs, id)
		}
	}
	kept := j.live.Order[:0]
	for _, id := range j.live.Order {
		if _, ok := j.live.Jobs[id]; ok {
			kept = append(kept, id)
		}
	}
	j.live.Order = kept
	for seq := oldSeq; seq >= 1; seq-- {
		path := j.segPath(seq)
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return fmt.Errorf("journal: rotate: %w", err)
		}
	}
	j.rotations.Add(1)
	return nil
}

// Close fsyncs and closes the active segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Counters snapshots the cumulative counters.
func (j *Journal) Counters() Counters {
	return Counters{
		Records:        j.records.Load(),
		Bytes:          j.bytes.Load(),
		Rotations:      j.rotations.Load(),
		TruncatedTails: j.truncated.Load(),
		Segments:       j.segments.Load(),
	}
}

// Wedged reports whether an injected crash froze the journal.
func (j *Journal) Wedged() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wedged
}

// AppendDataset journals a dataset registration.
func (j *Journal) AppendDataset(name, path, format string) error {
	return j.append(&Record{T: recDataset, Name: name, Path: path, Format: format})
}

// AppendDatasetRemove journals a dataset unregistration.
func (j *Journal) AppendDatasetRemove(name string) error {
	return j.append(&Record{T: recDatasetRemove, Name: name})
}

// AppendSubmit journals a job submission with its original request body.
func (j *Journal) AppendSubmit(id string, req json.RawMessage) error {
	return j.append(&Record{T: recSubmit, ID: id, Req: req})
}

// AppendRunning journals the queued→running transition with the session
// fingerprints resume will verify.
func (j *Journal) AppendRunning(id, crc, sessionKey string, branches int) error {
	return j.append(&Record{T: recRunning, ID: id, CRC: crc, SessionKey: sessionKey, Branches: branches})
}

// AppendCkpt journals a branch-progress checkpoint: cumulative cliques and
// max clique size over the residue plus branch positions [0, w).
func (j *Journal) AppendCkpt(id string, w int, cliques int64, maxSize int) error {
	return j.append(&Record{T: recCkpt, ID: id, W: w, Cliques: cliques, MaxSize: maxSize}, "journal.ckpt")
}

// AppendTerminal journals a terminal state with the final stats (opaque
// JSON owned by the service).
func (j *Journal) AppendTerminal(id, state, reason, errMsg string, stats json.RawMessage) error {
	return j.append(&Record{T: recTerminal, ID: id, State: state, Reason: reason, Err: errMsg, Stats: stats}, "journal.terminal")
}
