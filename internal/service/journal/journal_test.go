package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/graphmining/hbbmc/internal/chaos"
)

func openT(t *testing.T, dir string, opts Options) (*Journal, *Replay) {
	t.Helper()
	j, rep, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { j.Close() })
	return j, rep
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, rep := openT(t, dir, Options{})
	if len(rep.Jobs) != 0 || len(rep.Datasets) != 0 {
		t.Fatalf("fresh journal replayed state: %+v", rep)
	}
	if err := j.AppendDataset("g", "/tmp/g.hbg", "hbg"); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit("j000001", json.RawMessage(`{"type":"count","dataset":"g"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRunning("j000001", "crc32c:deadbeef", "skey", 128); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCkpt("j000001", 64, 1000, 7); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCkpt("j000001", 96, 1500, 9); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendSubmit("j000002", json.RawMessage(`{"type":"enumerate","dataset":"g"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTerminal("j000002", "done", "", "", json.RawMessage(`{"cliques":5}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	_, rep2 := openT(t, dir, Options{})
	if len(rep2.Datasets) != 1 || rep2.Datasets[0].Name != "g" || rep2.Datasets[0].Format != "hbg" {
		t.Fatalf("datasets = %+v", rep2.Datasets)
	}
	j1 := rep2.Jobs["j000001"]
	if j1 == nil || j1.State != "running" || j1.Branches != 128 || j1.CRC != "crc32c:deadbeef" {
		t.Fatalf("j000001 = %+v", j1)
	}
	if j1.Watermark != 96 || j1.Ckpts[64].Cliques != 1000 || j1.Ckpts[96].MaxSize != 9 {
		t.Fatalf("j000001 ckpts = %+v watermark %d", j1.Ckpts, j1.Watermark)
	}
	j2 := rep2.Jobs["j000002"]
	if j2 == nil || !j2.Terminal() || j2.State != "done" || string(j2.Stats) != `{"cliques":5}` {
		t.Fatalf("j000002 = %+v", j2)
	}
}

func TestCorruptTailTruncation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.AppendSubmit("j000001", json.RawMessage(`{"type":"count"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCkpt("j000001", 10, 42, 3); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Append garbage simulating a torn write.
	path := filepath.Join(dir, "wal.00000001")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(path)

	j2, rep := openT(t, dir, Options{})
	if rep.Jobs["j000001"] == nil || rep.Jobs["j000001"].Watermark != 10 {
		t.Fatalf("replay after torn tail: %+v", rep.Jobs["j000001"])
	}
	if got := j2.Counters().TruncatedTails; got != 1 {
		t.Fatalf("TruncatedTails = %d, want 1", got)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("tail not truncated: %d -> %d", before.Size(), after.Size())
	}
	// Appends continue cleanly after truncation.
	if err := j2.AppendCkpt("j000001", 20, 99, 4); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, rep3 := openT(t, dir, Options{})
	if rep3.Jobs["j000001"].Watermark != 20 {
		t.Fatalf("post-truncation append lost: %+v", rep3.Jobs["j000001"])
	}
}

func TestRotationCompacts(t *testing.T) {
	dir := t.TempDir()
	// Tiny segment budget so every few appends rotate.
	j, _ := openT(t, dir, Options{MaxSegmentBytes: 256})
	if err := j.AppendDataset("g", "/tmp/g.hbg", "hbg"); err != nil {
		t.Fatal(err)
	}
	// A terminal job that must age out at the next rotation...
	if err := j.AppendSubmit("j000001", json.RawMessage(`{"type":"count"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendTerminal("j000001", "done", "", "", json.RawMessage(`{"cliques":1}`)); err != nil {
		t.Fatal(err)
	}
	// ...and a live job whose checkpoints must survive every rotation.
	if err := j.AppendSubmit("j000002", json.RawMessage(`{"type":"enumerate"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRunning("j000002", "crc", "skey", 64); err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 20; w++ {
		if err := j.AppendCkpt("j000002", w, int64(w*10), w); err != nil {
			t.Fatal(err)
		}
	}
	if j.Counters().Rotations == 0 {
		t.Fatal("no rotation with 256-byte segments")
	}
	j.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "wal.*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("rotation left %d segments: %v", len(segs), segs)
	}

	_, rep := openT(t, dir, Options{})
	if rep.Jobs["j000001"] != nil {
		t.Fatal("terminal job survived compaction")
	}
	live := rep.Jobs["j000002"]
	if live == nil || live.State != "running" || live.Watermark != 20 {
		t.Fatalf("live job after compaction: %+v", live)
	}
	if len(live.Ckpts) != 20 || live.Ckpts[7].Cliques != 70 {
		t.Fatalf("checkpoints lost in compaction: %d retained", len(live.Ckpts))
	}
	if len(rep.Datasets) != 1 {
		t.Fatalf("dataset lost in compaction: %+v", rep.Datasets)
	}
}

func TestCrashWedgesJournal(t *testing.T) {
	t.Cleanup(chaos.Reset)
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.AppendSubmit("j000001", json.RawMessage(`{"type":"count"}`)); err != nil {
		t.Fatal(err)
	}
	if err := chaos.Arm("journal.ckpt", "crash"); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCkpt("j000001", 5, 50, 2); err != ErrWedged {
		t.Fatalf("crash-armed AppendCkpt returned %v, want ErrWedged", err)
	}
	if !j.Wedged() {
		t.Fatal("journal not wedged after injected crash")
	}
	chaos.Reset()
	// Every later append is dropped: on-disk state is frozen at the crash.
	if err := j.AppendCkpt("j000001", 6, 60, 2); err != ErrWedged {
		t.Fatalf("post-wedge append returned %v", err)
	}
	j.Close()

	_, rep := openT(t, dir, Options{})
	job := rep.Jobs["j000001"]
	if job == nil || job.Watermark != 0 || len(job.Ckpts) != 0 {
		t.Fatalf("wedged journal leaked checkpoint: %+v", job)
	}
}

func TestTornCrashLeavesTruncatableTail(t *testing.T) {
	t.Cleanup(chaos.Reset)
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.AppendSubmit("j000001", json.RawMessage(`{"type":"count"}`)); err != nil {
		t.Fatal(err)
	}
	if err := chaos.Arm("journal.append.torn", "crash"); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendCkpt("j000001", 5, 50, 2); err != ErrWedged {
		t.Fatalf("torn-armed append returned %v", err)
	}
	chaos.Reset()
	j.Close()

	j2, rep := openT(t, dir, Options{})
	if got := j2.Counters().TruncatedTails; got != 1 {
		t.Fatalf("TruncatedTails = %d, want 1 (half frame on disk)", got)
	}
	job := rep.Jobs["j000001"]
	if job == nil || job.Watermark != 0 {
		t.Fatalf("torn checkpoint applied: %+v", job)
	}
}

func TestCountersMove(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.AppendDataset("g", "p", "hbg"); err != nil {
		t.Fatal(err)
	}
	c := j.Counters()
	if c.Records != 1 || c.Bytes == 0 {
		t.Fatalf("counters after one append: %+v", c)
	}
}

// TestOversizedLiveStateDoesNotStormRotation pins the adaptive rotation
// trigger: when one job's retained checkpoints alone outgrow the segment
// budget, the compacted snapshot is bigger than the budget too, and a naive
// size check would re-rotate (and rewrite the whole live state) on every
// subsequent append. The trigger doubles past the snapshot size instead,
// keeping compaction amortized-linear.
func TestOversizedLiveStateDoesNotStormRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{MaxSegmentBytes: 2048})
	if err := j.AppendSubmit("j000001", json.RawMessage(`{"type":"enumerate","dataset":"g"}`)); err != nil {
		t.Fatal(err)
	}
	const n = 600 // ~70 bytes per ckpt frame: live state ≈ 20× the budget
	for w := 1; w <= n; w++ {
		if err := j.AppendCkpt("j000001", w, int64(w), 3); err != nil {
			t.Fatal(err)
		}
	}
	if rot := j.Counters().Rotations; rot < 1 || rot > 16 {
		t.Fatalf("rotations = %d, want a handful (1..16), not one per append", rot)
	}
	j.Close()

	_, rep := openT(t, dir, Options{MaxSegmentBytes: 2048})
	job := rep.Jobs["j000001"]
	if job == nil || job.Watermark != n || len(job.Ckpts) != n {
		t.Fatalf("replay after oversized compaction: %+v", job)
	}
	if job.Ckpts[n/2].Cliques != int64(n/2) {
		t.Fatalf("ckpt %d = %+v", n/2, job.Ckpts[n/2])
	}
}
