package journal

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Record types. One flat record struct (type-discriminated by T) keeps the
// frame codec and the replay switch trivial; unused fields are omitted from
// the JSON payload.
const (
	// recDataset journals a dataset registration (name, path, format) so a
	// restarted daemon can re-register it before resuming jobs.
	recDataset = "dataset"
	// recDatasetRemove journals an unregistration.
	recDatasetRemove = "dataset_rm"
	// recSubmit journals a job submission: the id and the original request
	// body, enough to rebuild the job verbatim.
	recSubmit = "submit"
	// recRunning journals the transition to running together with the
	// session fingerprints the job ran against (graph CRC, session key,
	// top-level branch count) — the compatibility anchor for resume.
	recRunning = "running"
	// recCkpt journals one branch-progress checkpoint: watermark W means
	// the preprocessing residue and every branch schedule position in
	// [0, W) completed and their cliques were handed to the visitor;
	// Cliques/MaxSize are the cumulative totals over exactly that prefix.
	recCkpt = "ckpt"
	// recTerminal journals a terminal state with the final Stats.
	recTerminal = "terminal"
)

// Record is one journal entry. Fields are shared across record types; T
// selects the meaning.
type Record struct {
	T string `json:"t"`

	// Dataset fields.
	Name   string `json:"name,omitempty"`
	Path   string `json:"path,omitempty"`
	Format string `json:"format,omitempty"`

	// Job identity and request (recSubmit carries the original POST body).
	ID  string          `json:"id,omitempty"`
	Req json.RawMessage `json:"req,omitempty"`

	// State transition fields.
	State  string `json:"state,omitempty"`
	Reason string `json:"reason,omitempty"`
	Err    string `json:"err,omitempty"`

	// Session fingerprints (recRunning).
	CRC        string `json:"crc,omitempty"`
	SessionKey string `json:"skey,omitempty"`
	Branches   int    `json:"branches,omitempty"`

	// Checkpoint fields (recCkpt): cumulative over residue + [0, W).
	W       int   `json:"w,omitempty"`
	Cliques int64 `json:"cliques,omitempty"`
	MaxSize int   `json:"max,omitempty"`

	// Terminal stats, opaque to the journal (the service owns the schema).
	Stats json.RawMessage `json:"stats,omitempty"`
}

// Ckpt is one durable branch-progress checkpoint: the cumulative clique
// count and max clique size over the residue plus branch positions [0, W).
type Ckpt struct {
	Cliques int64
	MaxSize int
}

// JobReplay is the replayed state of one journaled job.
type JobReplay struct {
	ID         string
	Req        json.RawMessage
	State      string
	Reason     string
	Err        string
	CRC        string
	SessionKey string
	Branches   int
	// Ckpts maps watermark W to the cumulative prefix totals at W. Every
	// durable checkpoint is retained (not just the latest) because a
	// streaming client may resume from any marker it received, and the
	// resumed run's stats must be seeded with the prefix totals at exactly
	// that cursor.
	Ckpts map[int]Ckpt
	// Watermark is the highest checkpointed W (0 = none).
	Watermark int
	Stats     json.RawMessage
}

// Terminal reports whether the replayed job had reached a terminal state.
func (j *JobReplay) Terminal() bool {
	switch j.State {
	case "done", "stopped", "failed":
		return true
	}
	return false
}

// DatasetReplay is one replayed dataset registration.
type DatasetReplay struct {
	Name   string
	Path   string
	Format string
}

// Replay is the state reconstructed from the journal's segments. The same
// structure doubles as the journal's live-state tracker: every append is
// applied to it, so segment rotation can write a compacted snapshot.
type Replay struct {
	Datasets []DatasetReplay
	Jobs     map[string]*JobReplay
	// Order preserves submission order (job IDs) for deterministic resume.
	Order []string
}

func newReplay() *Replay {
	return &Replay{Jobs: make(map[string]*JobReplay)}
}

// apply folds one record into the replay state.
func (r *Replay) apply(rec *Record) error {
	switch rec.T {
	case recDataset:
		for i := range r.Datasets {
			if r.Datasets[i].Name == rec.Name {
				r.Datasets[i] = DatasetReplay{Name: rec.Name, Path: rec.Path, Format: rec.Format}
				return nil
			}
		}
		r.Datasets = append(r.Datasets, DatasetReplay{Name: rec.Name, Path: rec.Path, Format: rec.Format})
	case recDatasetRemove:
		for i := range r.Datasets {
			if r.Datasets[i].Name == rec.Name {
				r.Datasets = append(r.Datasets[:i], r.Datasets[i+1:]...)
				break
			}
		}
	case recSubmit:
		if _, ok := r.Jobs[rec.ID]; !ok {
			r.Order = append(r.Order, rec.ID)
		}
		r.Jobs[rec.ID] = &JobReplay{ID: rec.ID, Req: rec.Req, State: "queued", Ckpts: make(map[int]Ckpt)}
	case recRunning:
		j, ok := r.Jobs[rec.ID]
		if !ok {
			return fmt.Errorf("journal: running record for unknown job %s", rec.ID)
		}
		j.State = "running"
		j.CRC, j.SessionKey, j.Branches = rec.CRC, rec.SessionKey, rec.Branches
	case recCkpt:
		j, ok := r.Jobs[rec.ID]
		if !ok {
			return fmt.Errorf("journal: checkpoint for unknown job %s", rec.ID)
		}
		j.Ckpts[rec.W] = Ckpt{Cliques: rec.Cliques, MaxSize: rec.MaxSize}
		if rec.W > j.Watermark {
			j.Watermark = rec.W
		}
	case recTerminal:
		j, ok := r.Jobs[rec.ID]
		if !ok {
			return fmt.Errorf("journal: terminal record for unknown job %s", rec.ID)
		}
		j.State, j.Reason, j.Err, j.Stats = rec.State, rec.Reason, rec.Err, rec.Stats
	default:
		return fmt.Errorf("journal: unknown record type %q", rec.T)
	}
	return nil
}

// snapshot renders the live state as the minimal record sequence that
// reconstructs it: every dataset, then every non-terminal job (submit,
// running fingerprints, all retained checkpoints). Terminal jobs are
// dropped — compaction is where finished history ages out of the journal.
func (r *Replay) snapshot() []Record {
	var recs []Record
	for _, d := range r.Datasets {
		recs = append(recs, Record{T: recDataset, Name: d.Name, Path: d.Path, Format: d.Format})
	}
	for _, id := range r.Order {
		j := r.Jobs[id]
		if j == nil || j.Terminal() {
			continue
		}
		recs = append(recs, Record{T: recSubmit, ID: j.ID, Req: j.Req})
		if j.State == "running" || j.CRC != "" {
			recs = append(recs, Record{T: recRunning, ID: j.ID, CRC: j.CRC, SessionKey: j.SessionKey, Branches: j.Branches})
		}
		ws := make([]int, 0, len(j.Ckpts))
		for w := range j.Ckpts {
			ws = append(ws, w)
		}
		sort.Ints(ws)
		for _, w := range ws {
			ck := j.Ckpts[w]
			recs = append(recs, Record{T: recCkpt, ID: j.ID, W: w, Cliques: ck.Cliques, MaxSize: ck.MaxSize})
		}
	}
	return recs
}
