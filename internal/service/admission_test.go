package service

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSlotSemImmediateGrantAndRelease(t *testing.T) {
	s := newSlotSem(4, 8)
	if err := s.Acquire(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if got := s.InUse(); got != 3 {
		t.Fatalf("InUse = %d, want 3", got)
	}
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	s.Release(3)
	s.Release(1)
	if got := s.InUse(); got != 0 {
		t.Fatalf("InUse after releases = %d, want 0", got)
	}
}

func TestSlotSemQueueWaitAndGrant(t *testing.T) {
	s := newSlotSem(2, 8)
	if err := s.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	granted := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		granted <- s.Acquire(ctx, 1)
	}()
	// The waiter must be queued, not granted.
	deadline := time.After(time.Second)
	for s.Queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	s.Release(2)
	if err := <-granted; err != nil {
		t.Fatalf("queued waiter not granted after release: %v", err)
	}
	if got := s.InUse(); got != 1 {
		t.Fatalf("InUse = %d, want 1", got)
	}
}

func TestSlotSemTimeoutIsSaturated(t *testing.T) {
	s := newSlotSem(1, 8)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Acquire(ctx, 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("timed-out acquire returned %v, want ErrSaturated", err)
	}
	if got := s.Queued(); got != 0 {
		t.Fatalf("timed-out waiter still queued (%d)", got)
	}
	// The held slot is unaffected and still releasable.
	s.Release(1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestSlotSemQueueFullRejectsImmediately(t *testing.T) {
	s := newSlotSem(1, 1)
	if err := s.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Acquire(ctx, 1) // fills the one queue slot
	}()
	deadline := time.After(time.Second)
	for s.Queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("first waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	start := time.Now()
	if err := s.Acquire(context.Background(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("full-queue acquire returned %v, want ErrSaturated", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("full-queue rejection was not immediate")
	}
	s.Release(1) // drain the queued waiter
}

// TestSlotSemFIFOHeadCancelUnblocksTail pins the strict-FIFO contract: a
// wide request at the head blocks narrower ones behind it, and removing the
// head (its wait expired) lets them through.
func TestSlotSemFIFOHeadCancelUnblocksTail(t *testing.T) {
	s := newSlotSem(4, 8)
	if err := s.Acquire(context.Background(), 3); err != nil { // 1 slot left
		t.Fatal(err)
	}
	headCtx, headCancel := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() { headErr <- s.Acquire(headCtx, 4) }() // cannot fit: 1 free
	deadline := time.After(time.Second)
	for s.Queued() == 0 {
		select {
		case <-deadline:
			t.Fatal("head waiter never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	tailErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		tailErr <- s.Acquire(ctx, 1) // would fit, but FIFO holds it behind the head
	}()
	select {
	case err := <-tailErr:
		t.Fatalf("tail overtook the queue head: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	headCancel()
	if err := <-headErr; !errors.Is(err, ErrSaturated) {
		t.Fatalf("cancelled head returned %v, want ErrSaturated", err)
	}
	if err := <-tailErr; err != nil {
		t.Fatalf("tail not granted after head removal: %v", err)
	}
}
