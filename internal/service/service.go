// Package service implements mced, the resident maximal-clique enumeration
// daemon: a dataset registry with a warm-session LRU, a job manager with
// NDJSON clique streaming, and admission control over a global worker-slot
// semaphore.
//
// The point of the daemon is to move the per-query cost of a clique query
// from parse+preprocess to pure enumeration. A cold CLI run pays text
// parsing and the O(δm) ordering preprocessing on every invocation; the
// registry pays the parse once per dataset (through the .hbg snapshot
// sidecar) and the preprocessing once per (dataset, algorithm options)
// pair, so every later job starts enumerating immediately and its Stats
// report OrderingTime of zero.
//
// HTTP API (JSON; see the README's "Serving" section for curl examples):
//
//	GET    /healthz                 liveness + uptime
//	GET    /metrics                 expvar-style counters
//	GET    /v1/info                 node identity: version, capacity, peers,
//	                                dataset fingerprints
//	GET    /v1/datasets             list registered datasets
//	POST   /v1/datasets             register {"name","path","format"}
//	GET    /v1/datasets/{name}      one dataset
//	DELETE /v1/datasets/{name}      unregister + evict its sessions
//	GET    /v1/jobs                 list jobs
//	POST   /v1/jobs                 start a job; 429 when saturated
//	GET    /v1/jobs/{id}            job status (+ ?wait=2s to long-poll)
//	GET    /v1/jobs/{id}/cliques    NDJSON clique stream (one reader)
//	DELETE /v1/jobs/{id}            cancel
//
// Job types: POST /v1/jobs takes a "type" field selecting the query —
// "enumerate" (default; stream every maximal clique), "count" (statistics
// only), "max_clique" (exact maximum clique; the witness appears as
// "max_clique" in the job view), "top_k" (the k largest maximal cliques,
// streamed like an enumeration) and "kclique_count" (the number of
// k-vertex cliques, reported as Stats.KCliques). top_k and kclique_count
// require "k" >= 1. All types run against the same cached session; the
// legacy "mode" field is an alias for "type".
//
// Admission control: every job holds as many worker slots as the worker
// goroutines its query runs, acquired FIFO from a global semaphore sized to
// Config.WorkerSlots. A request that cannot be admitted within
// Config.QueueWait (or that arrives to a full admission queue) is rejected
// with 429 instead of oversubscribing the machine.
//
// Distributed mode: with Config.Peers set the server becomes a coordinator —
// POST /v1/jobs without a branch_range is split into top-level branch
// intervals (internal/distrib) and fanned out to the peers, whose NDJSON
// clique streams merge into the one stream the client reads; see
// coordinator.go and the README's "Distributed serving" section.
package service

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/graphmining/hbbmc/internal/service/journal"
)

// Config sizes the server. The zero value is usable: all defaults below.
type Config struct {
	// WorkerSlots is the global enumeration worker budget shared by all
	// concurrent jobs (0 = GOMAXPROCS).
	WorkerSlots int
	// QueueWait bounds how long a job request may wait for worker slots
	// before being rejected with 429 (0 = 2s; negative = no waiting).
	QueueWait time.Duration
	// MaxQueue bounds the admission queue length; requests beyond it are
	// rejected immediately (0 = 4×WorkerSlots).
	MaxQueue int
	// SessionBudget is the LRU byte budget for cached sessions, measured by
	// Session.MemoryEstimate (0 = 1 GiB).
	SessionBudget int64
	// StreamBuffer is the default per-job clique channel capacity; a full
	// channel blocks the enumeration workers (backpressure) until the
	// streaming client catches up (0 = 1024).
	StreamBuffer int
	// MaxJobHistory bounds the retained terminal jobs (0 = 256).
	MaxJobHistory int

	// Peers lists the base URLs of worker mced nodes (http://host:port).
	// Non-empty Peers switches the server into coordinator mode: a job
	// without an explicit branch_range is split into branch-interval shards
	// (internal/distrib) and fanned out to the peers over the jobs API; the
	// fields below size that fan-out and are ignored otherwise.
	Peers []string
	// ShardInflight bounds the shards dispatched concurrently
	// (0 = 2×len(Peers)).
	ShardInflight int
	// ShardTimeout bounds one shard attempt, coordinator-side, and is also
	// sent as the remote job's own timeout so an orphaned shard self-cancels
	// (0 = 60s). A shard that exceeds it is re-split (guided-chunking halves)
	// or re-dispatched.
	ShardTimeout time.Duration
	// ShardRetries is how many times a failed shard is re-dispatched before
	// the job fails (0 = 3; negative = never retry).
	ShardRetries int
	// ShardMaxBranches caps the branch interval of one shard, bounding both
	// the coordinator's per-shard clique buffering and a straggler's blast
	// radius (0 = 4096).
	ShardMaxBranches int

	// JournalDir enables the write-ahead job journal: dataset registrations,
	// job submissions, branch-progress checkpoints and terminal stats are
	// fsync'd there, and a server built with Open replays the directory to
	// restore and resume interrupted jobs. "" = no journal (New ignores it).
	JournalDir string
	// CheckpointInterval is the minimum spacing between durable branch
	// checkpoints of one running job (0 = 2s; negative = checkpoint at every
	// completed branch chunk).
	CheckpointInterval time.Duration
	// BreakerThreshold is the consecutive shard-dispatch failures that trip
	// a peer's circuit breaker open (0 = 5).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped peer stays quarantined before a
	// half-open probe may test it again (0 = 10s).
	BreakerCooldown time.Duration

	// Logger receives the server's structured logs (job lifecycle, slow
	// queries). nil = discard.
	Logger *slog.Logger
	// SlowQuery is the end-to-end latency beyond which a finished job is
	// dumped to the log with its span timeline and statistics, sampled to at
	// most one dump per second (0 = disabled).
	SlowQuery time.Duration
	// PhaseTimers forces per-phase timers (universe/pivot/et/emit) on every
	// job, feeding the mced_phase_seconds histograms; individual requests
	// can also opt in per job with "phase_timers": true.
	PhaseTimers bool

	// BootDatasets are registered by Open at construction time, before any
	// journal replay resumes interrupted jobs, so a restored job can resolve
	// a dataset that was supplied by flag rather than over the API. Each is
	// journaled like an API registration; a boot registration wins over a
	// replayed one of the same name. A failing registration aborts Open.
	BootDatasets []DatasetSpec
}

// DatasetSpec names one dataset to register at boot (Format "" = auto).
type DatasetSpec struct {
	Name   string
	Path   string
	Format string
}

func (c Config) withDefaults() Config {
	if c.WorkerSlots <= 0 {
		c.WorkerSlots = runtime.GOMAXPROCS(0)
	}
	if c.QueueWait == 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.QueueWait < 0 {
		c.QueueWait = 0
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.WorkerSlots
	}
	if c.SessionBudget <= 0 {
		c.SessionBudget = 1 << 30
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 1024
	}
	if c.MaxJobHistory <= 0 {
		c.MaxJobHistory = 256
	}
	if len(c.Peers) > 0 && c.ShardInflight <= 0 {
		c.ShardInflight = 2 * len(c.Peers)
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = time.Minute
	}
	switch {
	case c.ShardRetries == 0:
		c.ShardRetries = 3
	case c.ShardRetries < 0:
		c.ShardRetries = 0
	}
	if c.ShardMaxBranches <= 0 {
		c.ShardMaxBranches = 4096
	}
	switch {
	case c.CheckpointInterval == 0:
		c.CheckpointInterval = 2 * time.Second
	case c.CheckpointInterval < 0:
		c.CheckpointInterval = 0
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	return c
}

// metrics holds the server's expvar counters. The vars are instance-local
// (never published to the process-global expvar registry) so tests and
// embedders can run several servers side by side; /metrics renders them.
type metrics struct {
	jobsQueued, jobsRunning           expvar.Int // gauges
	jobsDone, jobsStopped, jobsFailed expvar.Int // cumulative
	cliquesEmitted                    expvar.Int
	sessionHits, sessionMisses        expvar.Int
	sessionEvictions                  expvar.Int
	sessionBytes                      expvar.Int // gauge
	datasets                          expvar.Int // gauge
	admissionRejected                 expvar.Int
	// Per-type job submission counters, bumped when a job of that type is
	// created (admitted or not).
	jobsEnumerate, jobsCount                  expvar.Int
	jobsMaxClique, jobsTopK, jobsKCliqueCount expvar.Int
	// Coordinator-mode shard accounting: descriptors handed to the fan-out,
	// re-dispatch attempts (retries and straggler re-splits) and descriptors
	// that exhausted their retry budget.
	shardsDispatched, shardsRetried, shardsFailed expvar.Int
	// Journal accounting (gauges mirroring journal.Counters, polled at
	// render time) and resume accounting: replays performed, jobs restored
	// from a replay, and branch schedule positions a resume skipped because
	// a durable checkpoint already covered them.
	journalRecords, journalBytes, journalTruncatedTails expvar.Int
	journalReplays                                      expvar.Int
	resumeJobsRestored, resumeBranchesSkipped           expvar.Int
	// Peer circuit-breaker accounting: failed dispatch outcomes, breaker
	// trips, and the currently-open breaker count (gauge).
	peerFailures, peerBreakerTrips, peerBreakerOpen expvar.Int
	// Slow-query log accounting: dumps emitted, and dumps suppressed by the
	// one-per-second sampling rate limit.
	slowQueries, slowQueriesSuppressed expvar.Int
}

// metricVar is one named entry of the expvar set; gauge distinguishes
// point-in-time values from cumulative counters for the Prometheus TYPE
// headers the /metrics exposition emits.
type metricVar struct {
	name  string
	v     *expvar.Int
	gauge bool
}

func (m *metrics) vars() []metricVar {
	return []metricVar{
		{"jobs_queued", &m.jobsQueued, true},
		{"jobs_running", &m.jobsRunning, true},
		{"jobs_done", &m.jobsDone, false},
		{"jobs_stopped", &m.jobsStopped, false},
		{"jobs_failed", &m.jobsFailed, false},
		{"cliques_emitted", &m.cliquesEmitted, false},
		{"session_cache_hits", &m.sessionHits, false},
		{"session_cache_misses", &m.sessionMisses, false},
		{"session_cache_evictions", &m.sessionEvictions, false},
		{"session_cache_bytes", &m.sessionBytes, true},
		{"datasets", &m.datasets, true},
		{"admission_rejected", &m.admissionRejected, false},
		{"jobs_type_enumerate", &m.jobsEnumerate, false},
		{"jobs_type_count", &m.jobsCount, false},
		{"jobs_type_max_clique", &m.jobsMaxClique, false},
		{"jobs_type_top_k", &m.jobsTopK, false},
		{"jobs_type_kclique_count", &m.jobsKCliqueCount, false},
		{"shards_dispatched", &m.shardsDispatched, false},
		{"shards_retried", &m.shardsRetried, false},
		{"shards_failed", &m.shardsFailed, false},
		{"journal_records_appended", &m.journalRecords, false},
		{"journal_bytes_appended", &m.journalBytes, false},
		{"journal_truncated_tails", &m.journalTruncatedTails, false},
		{"journal_replays", &m.journalReplays, false},
		{"resume_jobs_restored", &m.resumeJobsRestored, false},
		{"resume_branches_skipped", &m.resumeBranchesSkipped, false},
		{"peer_failures", &m.peerFailures, false},
		{"peer_breaker_trips", &m.peerBreakerTrips, false},
		{"peer_breaker_open", &m.peerBreakerOpen, true},
		{"slow_queries", &m.slowQueries, false},
		{"slow_queries_suppressed", &m.slowQueriesSuppressed, false},
	}
}

// jobsByType returns the submission counter of one job type (nil for an
// unknown type, which validation upstream should have rejected).
func (m *metrics) jobsByType(typ string) *expvar.Int {
	switch typ {
	case "enumerate":
		return &m.jobsEnumerate
	case "count":
		return &m.jobsCount
	case "max_clique":
		return &m.jobsMaxClique
	case "top_k":
		return &m.jobsTopK
	case "kclique_count":
		return &m.jobsKCliqueCount
	}
	return nil
}

// Server is the mced HTTP service. Create one with New and mount it as an
// http.Handler; Shutdown cancels the jobs still running.
type Server struct {
	cfg      Config
	m        *metrics
	reg      *Registry
	jobs     *jobManager
	slots    *slotSem
	mux      *http.ServeMux
	started  time.Time
	draining atomic.Bool // set by Shutdown: no new jobs are admitted
	// jnl is the write-ahead job journal (nil when running without one);
	// recovering is true while a journal replay is being applied — /readyz
	// answers 503 and job submission is deferred until it clears.
	jnl        *journal.Journal
	recovering atomic.Bool
	// breakers quarantines flapping coordinator peers (nil without peers).
	breakers *breakerSet
	// obs is the Prometheus-facing instrumentation (histograms, runtime
	// collectors); log is the structured logger (a discard logger when
	// Config.Logger is nil, so call sites never nil-check).
	obs *serverObs
	log *slog.Logger
}

// New builds a Server from cfg (zero value = defaults). Config.JournalDir
// is ignored here — use Open for a journaled, crash-recovering server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := &metrics{}
	o := newServerObs(m)
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:     cfg,
		m:       m,
		obs:     o,
		log:     logger,
		reg:     newRegistry(cfg.SessionBudget, m, o.sessionBuild),
		jobs:    newJobManager(cfg.MaxJobHistory, m),
		slots:   newSlotSem(cfg.WorkerSlots, cfg.MaxQueue),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.jobs.onTerminal = s.jobTerminal
	if len(cfg.Peers) > 0 {
		s.breakers = newBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, m)
	}
	s.routes()
	return s
}

// Registry exposes the dataset registry (for preloading datasets at boot).
func (s *Server) Registry() *Registry { return s.reg }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.handleGetDataset)
	s.mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDeleteDataset)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("POST /v1/jobs", s.handleCreateJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/cliques", s.handleStreamCliques)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops admitting new jobs, cancels every live one and waits
// (bounded by ctx) for them to reach a terminal state and release their
// worker slots. The terminal-state wait matters for coordinator jobs, which
// hold zero local slots — their shards run on peers — yet must propagate
// the cancellation (best-effort remote DELETEs) before the process exits.
// The cancel sweep repeats each poll so a job that was mid-admission when
// the drain began cannot slip through and hang the shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		live := 0
		for _, j := range s.jobs.list() {
			if !j.State().terminal() {
				j.requestCancel("server shutdown")
				// A restored job nobody reclaimed has no goroutine to
				// observe the cancel; retire it directly. Its terminal
				// state is deliberately not journaled, so the next
				// restart restores and resumes it again.
				if s.stopUnclaimedResume(j, "server shutdown") {
					continue
				}
				live++
			}
		}
		if s.slots.InUse() == 0 && live == 0 {
			if s.jnl != nil {
				// Everything a restart needs is on disk (shutdown stops are
				// deliberately not journaled as terminal); fsync and close.
				_ = s.jnl.Close()
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// Version identifies the mced API generation; /v1/info reports it so
// operators (and the coordinator's peer probe) can spot skewed fleets.
const Version = "mced/0.8"

// nodeInfo is the GET /v1/info body: what a coordinator needs to know about
// a node before handing it work — capacity, peers and, for every loaded
// dataset, the .hbg payload fingerprint that anchors shard compatibility.
type nodeInfo struct {
	Version     string   `json:"version"`
	GoMaxProcs  int      `json:"gomaxprocs"`
	WorkerSlots int      `json:"worker_slots"`
	SlotsInUse  int      `json:"slots_in_use"`
	Peers       []string `json:"peers,omitempty"`
	// PeerBreakers maps each tracked peer to its circuit-breaker state
	// ("closed", "open", "half_open"); an open peer is quarantined from
	// shard rotation until its cooldown elapses.
	PeerBreakers map[string]string `json:"peer_breakers,omitempty"`
	Datasets     []DatasetInfo     `json:"datasets"`
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	info := nodeInfo{
		Version:     Version,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		WorkerSlots: s.slots.Capacity(),
		SlotsInUse:  s.slots.InUse(),
		Peers:       s.cfg.Peers,
		Datasets:    s.reg.Datasets(),
	}
	if s.breakers != nil {
		info.PeerBreakers = s.breakers.states()
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.started).Seconds(),
		"worker_slots":   s.slots.Capacity(),
		"slots_in_use":   s.slots.InUse(),
	})
}

// handleReadyz is the readiness probe: unlike /healthz (pure liveness) it
// answers 503 while a journal replay is still being applied and during a
// shutdown drain, so load balancers stop routing to a node that cannot
// accept jobs.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.recovering.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "recovering"})
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
	}
}

// handleMetrics renders the metrics in Prometheus text exposition format
// (text/plain; version=0.0.4) by default — histograms included — or, when
// the request asks for JSON (?format=json, or an Accept header naming
// application/json), the flat expvar counter set the smoke scripts and
// older tooling consume, keys sorted for stable diffs.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The journal and breaker counters live outside the expvar set (the
	// journal is its own package, breaker openness is derived); mirror them
	// into the gauges just before rendering.
	if s.jnl != nil {
		c := s.jnl.Counters()
		s.m.journalRecords.Set(c.Records)
		s.m.journalBytes.Set(c.Bytes)
		s.m.journalTruncatedTails.Set(c.TruncatedTails)
	}
	if s.breakers != nil {
		s.m.peerBreakerOpen.Set(s.breakers.openCount())
	}
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		vars := s.m.vars()
		sort.Slice(vars, func(i, j int) bool { return vars[i].name < vars[j].name })
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, "{")
		for i, kv := range vars {
			comma := ","
			if i == len(vars)-1 {
				comma = ""
			}
			fmt.Fprintf(w, "  %q: %s%s\n", "mced_"+kv.name, kv.v.String(), comma)
		}
		fmt.Fprintln(w, "}")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.reg.WritePrometheus(w)
}

var datasetNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

type registerDatasetRequest struct {
	Name   string `json:"name"`
	Path   string `json:"path"`
	Format string `json:"format"` // "" = auto
}

func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	var req registerDatasetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	if !datasetNameRE.MatchString(req.Name) {
		writeError(w, http.StatusBadRequest, "invalid dataset name %q", req.Name)
		return
	}
	if req.Format == "" {
		req.Format = "auto"
	}
	info, err := s.reg.Register(req.Name, req.Path, req.Format)
	if err != nil {
		status := http.StatusBadRequest
		if _, exists := s.reg.Dataset(req.Name); exists {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	if s.jnl != nil {
		_ = s.jnl.AppendDataset(info.Name, info.Path, req.Format)
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.reg.Datasets()})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	info, ok := s.reg.Dataset(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dataset %q", r.PathValue("name"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	// A journaled job that is not yet terminal still needs this dataset: a
	// restart would replay the job and fail its resume with a confusing
	// load error. Refuse the delete until the job finishes or is cancelled.
	if s.jnl != nil {
		for _, j := range s.jobs.list() {
			if j.Dataset != name || j.State().terminal() {
				continue
			}
			j.mu.Lock()
			journaled := j.journaled
			j.mu.Unlock()
			if journaled {
				writeError(w, http.StatusConflict,
					"dataset %q is referenced by journaled job %s (state %s); cancel it first",
					name, j.ID, j.State())
				return
			}
		}
	}
	if !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, "unknown dataset %q", name)
		return
	}
	if s.jnl != nil {
		_ = s.jnl.AppendDatasetRemove(name)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs.list()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil || wait < 0 {
			writeError(w, http.StatusBadRequest, "invalid wait %q", waitStr)
			return
		}
		if wait > time.Minute {
			wait = time.Minute
		}
		select {
		case <-j.Done():
		case <-time.After(wait):
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if j.State().terminal() {
		writeJSON(w, http.StatusOK, j.View())
		return
	}
	j.requestCancel("cancelled")
	// A journal-restored job awaiting its resume has no goroutine to observe
	// the cancellation; retire it here.
	s.stopUnclaimedResume(j, "cancelled")
	writeJSON(w, http.StatusAccepted, j.View())
}
