package service

import (
	"path/filepath"
	"testing"

	hbbmc "github.com/graphmining/hbbmc"
)

// writeGraph saves a generated graph as a .hbg snapshot the registry can
// load by name.
func writeGraph(t *testing.T, dir, name string, g *hbbmc.Graph) string {
	t.Helper()
	path := filepath.Join(dir, name+".hbg")
	if err := g.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegistrySessionReuseAndKeying(t *testing.T) {
	dir := t.TempDir()
	m := &metrics{}
	r := newRegistry(1<<30, m, nil)
	g := hbbmc.GenerateER(300, 1500, 1)
	if _, err := r.Register("er", writeGraph(t, dir, "er", g), "auto"); err != nil {
		t.Fatal(err)
	}

	opts := hbbmc.DefaultOptions()
	s1, hit, err := r.Session("er", opts)
	if err != nil || hit {
		t.Fatalf("first acquisition: hit=%v err=%v, want cold miss", hit, err)
	}
	// Per-run knobs must not fragment the cache.
	warm := opts
	warm.Workers = 8
	warm.MaxCliques = 10
	s2, hit, err := r.Session("er", warm)
	if err != nil || !hit || s2 != s1 {
		t.Fatalf("same-key acquisition: hit=%v same=%v err=%v, want warm hit on the same session", hit, s2 == s1, err)
	}
	// Algorithm-relevant changes build a distinct session.
	other := opts
	other.Algorithm = hbbmc.BKDegen
	s3, hit, err := r.Session("er", other)
	if err != nil || hit || s3 == s1 {
		t.Fatalf("different-key acquisition: hit=%v same=%v err=%v, want a fresh session", hit, s3 == s1, err)
	}
	if got := m.sessionHits.Value(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := m.sessionMisses.Value(); got != 2 {
		t.Fatalf("misses = %d, want 2", got)
	}
	if r.SessionBytes() <= 0 {
		t.Fatal("no session bytes accounted")
	}

	if _, _, err := r.Session("nope", opts); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	dir := t.TempDir()
	m := &metrics{}
	g := hbbmc.GenerateER(400, 2000, 2)
	path := writeGraph(t, dir, "er", g)

	// Budget for roughly one session: every new options key evicts the
	// previous session.
	probe, err := hbbmc.NewSession(g, hbbmc.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := newRegistry(probe.MemoryEstimate()*3/2, m, nil)
	if _, err := r.Register("er", path, "auto"); err != nil {
		t.Fatal(err)
	}

	keys := []hbbmc.Options{
		hbbmc.DefaultOptions(),
		{Algorithm: hbbmc.BKDegen},
		{Algorithm: hbbmc.EBBMC, ET: 3},
		{Algorithm: hbbmc.HBBMC, ET: 2, GR: true},
	}
	for _, opts := range keys {
		if _, _, err := r.Session("er", opts); err != nil {
			t.Fatal(err)
		}
		if used, budget := r.SessionBytes(), r.budget; used > budget*2 {
			t.Fatalf("session bytes %d far beyond budget %d", used, budget)
		}
	}
	if m.sessionEvictions.Value() == 0 {
		t.Fatal("no evictions despite exceeding the budget")
	}
	// The oldest key must have been evicted: re-acquiring it is a miss.
	before := m.sessionMisses.Value()
	if _, hit, err := r.Session("er", keys[0]); err != nil || hit {
		t.Fatalf("evicted key reported hit=%v err=%v", hit, err)
	}
	if m.sessionMisses.Value() != before+1 {
		t.Fatal("re-acquiring the evicted key did not count as a miss")
	}

	// Removing the dataset drops its sessions and their bytes.
	if !r.Remove("er") {
		t.Fatal("Remove returned false")
	}
	if got := r.SessionBytes(); got != 0 {
		t.Fatalf("bytes after removal = %d, want 0", got)
	}
}

// TestRegistryEvictSkipsJustBuiltAtTail pins the eviction walk: when the
// just-built entry has sunk to the LRU tail (its build was slow while
// another key took hits), eviction must skip past it and still drop older
// entries, not stop at the tail and leave the budget exceeded forever.
func TestRegistryEvictSkipsJustBuiltAtTail(t *testing.T) {
	dir := t.TempDir()
	m := &metrics{}
	r := newRegistry(1<<30, m, nil)
	g := hbbmc.GenerateER(300, 1200, 5)
	if _, err := r.Register("er", writeGraph(t, dir, "er", g), "auto"); err != nil {
		t.Fatal(err)
	}
	optsA, optsB := hbbmc.DefaultOptions(), hbbmc.Options{Algorithm: hbbmc.BKDegen}
	if _, _, err := r.Session("er", optsA); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Session("er", optsB); err != nil {
		t.Fatal(err)
	}
	keyA := "er\x00" + optsA.SessionKey()
	r.mu.Lock()
	eA := r.sessions[keyA]
	r.lru.MoveToBack(eA.elem) // the race's end state: just-built A at the tail
	r.budget = 1              // force over-budget
	r.evictLocked(eA)
	_, aKept := r.sessions[keyA]
	nLeft := len(r.sessions)
	r.mu.Unlock()
	if !aKept {
		t.Fatal("eviction dropped the just-built entry")
	}
	if nLeft != 1 {
		t.Fatalf("%d sessions left, want only the just-built one", nLeft)
	}
	if m.sessionEvictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", m.sessionEvictions.Value())
	}
}

// TestRegistryOversizedSessionStillServes pins the budget edge case: one
// session larger than the entire budget is cached anyway (evicting all
// others) rather than thrashing.
func TestRegistryOversizedSessionStillServes(t *testing.T) {
	dir := t.TempDir()
	m := &metrics{}
	r := newRegistry(1, m, nil) // 1 byte: everything is oversized
	g := hbbmc.GenerateER(200, 800, 3)
	if _, err := r.Register("er", writeGraph(t, dir, "er", g), "auto"); err != nil {
		t.Fatal(err)
	}
	s1, _, err := r.Session("er", hbbmc.DefaultOptions())
	if err != nil || s1 == nil {
		t.Fatalf("oversized session not served: %v", err)
	}
	s2, hit, err := r.Session("er", hbbmc.DefaultOptions())
	if err != nil || !hit || s2 != s1 {
		t.Fatalf("oversized session not reusable: hit=%v err=%v", hit, err)
	}
}
