package service_test

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/chaos"
	"github.com/graphmining/hbbmc/internal/service"
	"github.com/graphmining/hbbmc/internal/service/journal"
)

// jenv is a journaled server with explicit lifecycle control: crash() drops
// it without a graceful shutdown (the wedged journal on disk is the crash
// image a kill -9 would leave), stop() shuts down gracefully.
type jenv struct {
	*testEnv
	srv *service.Server
}

func openJournaled(t *testing.T, cfg service.Config) *jenv {
	t.Helper()
	srv, err := service.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close) // idempotent; crash()/stop() usually ran already
	return &jenv{testEnv: &testEnv{t: t, ts: ts}, srv: srv}
}

func (e *jenv) crash() { e.ts.Close() }

func (e *jenv) stop() {
	e.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.srv.Shutdown(ctx); err != nil {
		e.t.Errorf("graceful shutdown: %v", err)
	}
	e.ts.Close()
}

// waitReady polls /readyz until the journal replay has been applied.
func (e *jenv) waitReady() {
	e.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := e.do("GET", "/readyz", nil)
		if resp.StatusCode == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			e.t.Fatal("server never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// saveGraph writes g once so every server generation registers the same
// file (the journal re-registers datasets by path on replay).
func saveGraph(t *testing.T, g *hbbmc.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.hbg")
	if err := g.SaveBinaryFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func (e *jenv) registerPath(name, path string) {
	e.t.Helper()
	resp, data := e.do("POST", "/v1/datasets", map[string]string{"name": name, "path": path})
	if resp.StatusCode != http.StatusCreated {
		e.t.Fatalf("register %s: %d %s", name, resp.StatusCode, data)
	}
}

// markedStream is what a crash-aware streaming client retains: everything
// up to the last {"ckpt":W} marker is durable-confirmed (kept), everything
// after it (tail) is discarded when the connection dies, and cursor is the
// resume_after value for the reconnect.
type markedStream struct {
	kept    [][]int32
	tail    [][]int32
	cursor  int
	trailer map[string]any
}

// streamMarked consumes a clique stream tracking checkpoint markers.
// onMarker (optional) fires after each marker line.
func streamMarked(t *testing.T, e *testEnv, id, query string, onMarker func(cursor int)) *markedStream {
	t.Helper()
	resp, err := e.ts.Client().Get(e.ts.URL + "/v1/jobs/" + id + "/cliques" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream %s%s: %d %s", id, query, resp.StatusCode, body)
	}
	ms := &markedStream{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			C    []int32 `json:"c"`
			Ckpt int     `json:"ckpt"`
			Done bool    `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Done:
			ms.trailer = map[string]any{}
			if err := json.Unmarshal(sc.Bytes(), &ms.trailer); err != nil {
				t.Fatal(err)
			}
		case line.Ckpt > 0:
			ms.kept = append(ms.kept, ms.tail...)
			ms.tail = ms.tail[:0]
			ms.cursor = line.Ckpt
			if onMarker != nil {
				onMarker(line.Ckpt)
			}
		default:
			ms.tail = append(ms.tail, line.C)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return ms
}

// assertExactlyOnce verifies the union of clique batches covers the ground
// truth exactly once.
func assertExactlyOnce(t *testing.T, want map[string]bool, batches ...[][]int32) {
	t.Helper()
	got := make(map[string]bool, len(want))
	for _, batch := range batches {
		for _, c := range batch {
			k := cliqueKey(c)
			if got[k] {
				t.Fatalf("clique %v delivered twice", c)
			}
			if !want[k] {
				t.Fatalf("clique %v not in ground truth", c)
			}
			got[k] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d distinct cliques, want %d", len(got), len(want))
	}
}

// TestCrashPointMatrix kills the daemon (via the fault-injection harness:
// the journal wedges exactly as a kill -9 at that point would leave it) at
// every journal crash point, for every resumable job type, and proves the
// replayed+resumed results converge to the uninterrupted run's.
func TestCrashPointMatrix(t *testing.T) {
	withTestProcs(t, 2)
	g := hbbmc.GenerateER(260, 1560, 7)
	gpath := saveGraph(t, g)
	want := refCliqueSet(t, g)
	wantCount := int64(len(want))
	wantMax := 0
	for k := range want {
		n := 1
		for _, ch := range k {
			if ch == ',' {
				n++
			}
		}
		if n > wantMax {
			wantMax = n
		}
	}

	for _, point := range journal.CrashPoints() {
		for _, mode := range []string{"enumerate", "count", "max_clique"} {
			t.Run(point+"/"+mode, func(t *testing.T) {
				dir := t.TempDir()
				cfg := service.Config{JournalDir: dir, CheckpointInterval: -1}
				a := openJournaled(t, cfg)
				a.waitReady()
				a.registerPath("er", gpath)

				chaos.Reset()
				t.Cleanup(chaos.Reset)
				if err := chaos.Arm(point, "crash"); err != nil {
					t.Fatal(err)
				}

				var ms *markedStream
				v := a.startJob(map[string]any{"dataset": "er", "mode": mode, "workers": 2})
				if mode == "enumerate" {
					ms = streamMarked(t, a.testEnv, v.ID, "", nil)
				} else {
					a.waitJob(v.ID)
				}
				fired := chaos.Fired(point) > 0
				chaos.Reset()
				a.crash()

				b := openJournaled(t, cfg)
				defer b.stop()
				b.waitReady()

				resp, data := b.do("GET", "/v1/jobs/"+v.ID, nil)
				if !fired {
					// The crash point never triggered (e.g. no rotation
					// happened): the journal is complete and the job must be
					// restored terminal with its full stats.
					if resp.StatusCode != http.StatusOK {
						t.Fatalf("complete journal: job %s not restored: %d %s", v.ID, resp.StatusCode, data)
					}
					var view service.JobView
					if err := json.Unmarshal(data, &view); err != nil {
						t.Fatal(err)
					}
					if view.State != service.StateDone || view.Stats == nil {
						t.Fatalf("restored job = %s (stats %v), want done with stats", view.State, view.Stats)
					}
					assertRestoredStats(t, mode, view.Stats, wantCount, wantMax)
					return
				}

				switch {
				case resp.StatusCode == http.StatusNotFound:
					// The crash predated the durable submit: the job was
					// never acknowledged as journaled, so the client saw no
					// durable progress either. Re-submitting converges.
					if ms != nil && (len(ms.kept) > 0 || ms.cursor != 0) {
						t.Fatalf("job lost by the crash but client saw durable progress (cursor %d)", ms.cursor)
					}
					v2 := b.startJob(map[string]any{"dataset": "er", "mode": mode, "workers": 2})
					if mode == "enumerate" {
						rerun := streamMarked(t, b.testEnv, v2.ID, "", nil)
						assertExactlyOnce(t, want, rerun.kept, rerun.tail)
						if rerun.trailer == nil || rerun.trailer["state"] != string(service.StateDone) {
							t.Fatalf("re-run trailer %v", rerun.trailer)
						}
					} else {
						fv := b.waitJob(v2.ID)
						assertRestoredStats(t, mode, fv.Stats, wantCount, wantMax)
					}
				case resp.StatusCode == http.StatusOK:
					if mode == "enumerate" {
						query := ""
						if ms.cursor > 0 {
							query = "?resume_after=" + strconv.Itoa(ms.cursor)
						}
						rest := streamMarked(t, b.testEnv, v.ID, query, nil)
						if rest.trailer == nil || rest.trailer["state"] != string(service.StateDone) {
							t.Fatalf("resumed trailer %v, want done", rest.trailer)
						}
						// The trailer stats report the whole logical
						// enumeration (durable prefix folded back in), even
						// though this connection only carried the re-run.
						stats, _ := rest.trailer["stats"].(map[string]any)
						if stats == nil || int64(stats["cliques"].(float64)) != wantCount {
							t.Fatalf("resumed trailer stats = %v, want %d cliques", stats, wantCount)
						}
						assertExactlyOnce(t, want, ms.kept, rest.kept, rest.tail)
					} else {
						// Scalar jobs resume autonomously after replay.
						fv := b.waitJob(v.ID)
						if fv.State != service.StateDone {
							t.Fatalf("resumed %s job ended %s (%s%s)", mode, fv.State, fv.StopReason, fv.Error)
						}
						assertRestoredStats(t, mode, fv.Stats, wantCount, wantMax)
					}
				default:
					t.Fatalf("GET restored job: %d %s", resp.StatusCode, data)
				}
			})
		}
	}
}

func assertRestoredStats(t *testing.T, mode string, stats *hbbmc.Stats, wantCount int64, wantMax int) {
	t.Helper()
	if stats == nil {
		t.Fatal("terminal job has no stats")
	}
	switch mode {
	case "enumerate", "count":
		if stats.Cliques != wantCount {
			t.Fatalf("%s: stats.Cliques = %d, want %d", mode, stats.Cliques, wantCount)
		}
	case "max_clique":
		if stats.MaxCliqueSize != wantMax {
			t.Fatalf("max_clique: stats.MaxCliqueSize = %d, want %d", stats.MaxCliqueSize, wantMax)
		}
	}
}

// TestResumeCursorExactlyOnce is the client-kill scenario: the streaming
// connection dies mid-stream, the daemon dies before it can journal the
// cancellation, and the restarted daemon's reconnecting client — resuming
// from the last checkpoint marker it saw — receives each clique exactly
// once across both connections.
func TestResumeCursorExactlyOnce(t *testing.T) {
	withTestProcs(t, 2)
	g := hbbmc.GenerateER(400, 3200, 11)
	gpath := saveGraph(t, g)
	want := refCliqueSet(t, g)

	dir := t.TempDir()
	cfg := service.Config{JournalDir: dir, CheckpointInterval: -1}
	a := openJournaled(t, cfg)
	a.waitReady()
	a.registerPath("er", gpath)

	chaos.Reset()
	t.Cleanup(chaos.Reset)
	// The daemon "dies" before the client-disconnect cancellation reaches
	// the journal: the on-disk image ends at the last durable checkpoint.
	if err := chaos.Arm("journal.terminal", "crash"); err != nil {
		t.Fatal(err)
	}

	v := a.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "workers": 2})
	resp, err := a.ts.Client().Get(a.ts.URL + "/v1/jobs/" + v.ID + "/cliques")
	if err != nil {
		t.Fatal(err)
	}
	var kept, tail [][]int32
	cursor := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line struct {
			C    []int32 `json:"c"`
			Ckpt int     `json:"ckpt"`
			Done bool    `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		if line.Done {
			t.Fatal("stream finished before the simulated kill; use a larger graph")
		}
		if line.Ckpt > 0 {
			kept = append(kept, tail...)
			tail = tail[:0]
			cursor = line.Ckpt
			if cursor >= 2 && len(kept) > 0 {
				break // kill the connection mid-stream
			}
			continue
		}
		tail = append(tail, line.C)
	}
	resp.Body.Close()
	if cursor < 1 {
		t.Fatal("no checkpoint marker observed before the kill")
	}

	// Wait for the disconnected job to settle (cancelled server-side; its
	// terminal record is refused by the wedged journal).
	a.waitJob(v.ID)
	chaos.Reset()
	a.crash()

	b := openJournaled(t, cfg)
	defer b.stop()
	b.waitReady()
	if restored := b.metric("resume_jobs_restored"); restored < 1 {
		t.Fatalf("resume_jobs_restored = %d, want ≥ 1", restored)
	}
	rest := streamMarked(t, b.testEnv, v.ID, "?resume_after="+strconv.Itoa(cursor), nil)
	if rest.trailer == nil || rest.trailer["state"] != string(service.StateDone) {
		t.Fatalf("resumed trailer %v, want done", rest.trailer)
	}
	assertExactlyOnce(t, want, kept, rest.kept, rest.tail)
	if skipped := b.metric("resume_branches_skipped"); skipped < int64(cursor) {
		t.Fatalf("resume_branches_skipped = %d, want ≥ %d", skipped, cursor)
	}
}

// TestGracefulShutdownResume covers SIGTERM with running, mid-stream and
// queued jobs: shutdown stops are deliberately not journaled as terminal,
// so the restarted daemon resumes all of them to full results.
func TestGracefulShutdownResume(t *testing.T) {
	withTestProcs(t, 2)
	g := hbbmc.GenerateER(400, 3200, 13)
	gpath := saveGraph(t, g)
	want := refCliqueSet(t, g)
	wantCount := int64(len(want))

	dir := t.TempDir()
	cfg := service.Config{JournalDir: dir, CheckpointInterval: -1, WorkerSlots: 1, QueueWait: 30 * time.Second}
	a := openJournaled(t, cfg)
	a.waitReady()
	a.registerPath("er", gpath)

	// Mid-stream enumerate job holding the only worker slot.
	ev := a.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "workers": 1})

	// Queued count job: blocked in admission behind the enumerate job, its
	// submission already durable in the journal.
	countResp := make(chan []byte, 1)
	go func() {
		_, data := a.do("POST", "/v1/jobs", map[string]any{"dataset": "er", "mode": "count", "workers": 1})
		countResp <- data
	}()

	// Stream until the first checkpoint marker, then SIGTERM the daemon
	// while the stream is live.
	shutdownDone := make(chan struct{})
	shutdownStarted := false // onMarker runs on the one stream-reader goroutine
	ms := streamMarked(t, a.testEnv, ev.ID, "", func(cursor int) {
		if shutdownStarted {
			return
		}
		shutdownStarted = true
		go func() {
			defer close(shutdownDone)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := a.srv.Shutdown(ctx); err != nil {
				t.Errorf("graceful shutdown: %v", err)
			}
		}()
	})
	<-shutdownDone
	if ms.trailer == nil || ms.trailer["state"] != string(service.StateStopped) {
		t.Fatalf("shutdown trailer %v, want stopped", ms.trailer)
	}

	// The drained server answers 503 on /readyz until it exits.
	resp, data := a.do("GET", "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d %s", resp.StatusCode, data)
	}

	var queued service.JobView
	if err := json.Unmarshal(<-countResp, &queued); err != nil || queued.ID == "" {
		t.Fatalf("queued count job response undecodable: %v", err)
	}
	a.ts.Close()

	b := openJournaled(t, cfg)
	defer b.stop()
	b.waitReady()

	// The queued count job resumes autonomously to the exact total.
	cv := b.waitJob(queued.ID)
	if cv.State != service.StateDone || cv.Stats == nil || cv.Stats.Cliques != wantCount {
		t.Fatalf("resumed count job: state=%s stats=%v, want done with %d cliques", cv.State, cv.Stats, wantCount)
	}

	// The mid-stream enumerate job resumes from the client's cursor with
	// exactly-once delivery across the two connections.
	query := ""
	if ms.cursor > 0 {
		query = "?resume_after=" + strconv.Itoa(ms.cursor)
	}
	rest := streamMarked(t, b.testEnv, ev.ID, query, nil)
	if rest.trailer == nil || rest.trailer["state"] != string(service.StateDone) {
		t.Fatalf("resumed trailer %v, want done", rest.trailer)
	}
	assertExactlyOnce(t, want, ms.kept, rest.kept, rest.tail)
}

// TestReadyzDuringReplay holds recovery open with an injected delay and
// checks /readyz flips 503 → 200, and that job submission is deferred
// while the replay is applied.
func TestReadyzDuringReplay(t *testing.T) {
	chaos.Reset()
	t.Cleanup(chaos.Reset)
	if err := chaos.Arm("service.replay", "delay:1500ms"); err != nil {
		t.Fatal(err)
	}
	e := openJournaled(t, service.Config{JournalDir: t.TempDir()})
	defer e.stop()

	resp, data := e.do("GET", "/readyz", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during replay: %d %s", resp.StatusCode, data)
	}
	var body map[string]string
	if err := json.Unmarshal(data, &body); err != nil || body["status"] != "recovering" {
		t.Fatalf("/readyz body %s, want recovering", data)
	}
	if resp, data := e.do("POST", "/v1/jobs", map[string]any{"dataset": "er"}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job submission during replay: %d %s, want 503", resp.StatusCode, data)
	}
	e.waitReady()
	if replays := e.metric("journal_replays"); replays != 1 {
		t.Fatalf("journal_replays = %d, want 1", replays)
	}
}

// TestDeleteDatasetBlockedByJournaledJob: a dataset referenced by a
// journaled non-terminal job cannot be unregistered — neither live nor
// after a restart restores the job.
func TestDeleteDatasetBlockedByJournaledJob(t *testing.T) {
	g := hbbmc.GenerateER(300, 1800, 17)
	gpath := saveGraph(t, g)
	dir := t.TempDir()
	cfg := service.Config{JournalDir: dir}
	a := openJournaled(t, cfg)
	a.waitReady()
	a.registerPath("er", gpath)

	// A tiny stream buffer keeps the enumerate job running (producer
	// blocked on the unconsumed channel) while we poke the dataset API.
	v := a.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "buffer": 1})
	waitState(t, a.testEnv, v.ID, service.StateRunning)

	resp, data := a.do("DELETE", "/v1/datasets/er", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE dataset with live journaled job: %d %s, want 409", resp.StatusCode, data)
	}
	a.crash()

	b := openJournaled(t, cfg)
	b.waitReady()
	resp, data = b.do("DELETE", "/v1/datasets/er", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE dataset with restored job: %d %s, want 409", resp.StatusCode, data)
	}
	// Cancelling the restored job unblocks the delete.
	if resp, data := b.do("DELETE", "/v1/jobs/"+v.ID, nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel restored job: %d %s", resp.StatusCode, data)
	}
	b.waitJob(v.ID)
	if resp, data := b.do("DELETE", "/v1/datasets/er", nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE dataset after cancel: %d %s, want 204", resp.StatusCode, data)
	}
	// The removal is journaled too: another restart must not resurrect it.
	b.stop()
	c := openJournaled(t, cfg)
	defer c.stop()
	c.waitReady()
	if resp, data := c.do("DELETE", "/v1/datasets/er", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("dataset resurrected after journaled removal: %d %s", resp.StatusCode, data)
	}
}

func waitState(t *testing.T, e *testEnv, id string, want service.JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, data := e.do("GET", "/v1/jobs/"+id, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get job: %d %s", resp.StatusCode, data)
		}
		var v service.JobView
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalMetrics asserts the mced_journal_* counters move when jobs are
// journaled.
func TestJournalMetrics(t *testing.T) {
	g := hbbmc.GenerateER(120, 500, 19)
	gpath := saveGraph(t, g)
	e := openJournaled(t, service.Config{JournalDir: t.TempDir()})
	defer e.stop()
	e.waitReady()
	e.registerPath("er", gpath)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "count"})
	e.waitJob(v.ID)
	if n := e.metric("journal_records_appended"); n < 3 {
		t.Fatalf("journal_records_appended = %d, want ≥ 3 (dataset, submit, terminal)", n)
	}
	if n := e.metric("journal_bytes_appended"); n <= 0 {
		t.Fatalf("journal_bytes_appended = %d, want > 0", n)
	}
	if n := e.metric("journal_truncated_tails"); n != 0 {
		t.Fatalf("journal_truncated_tails = %d, want 0", n)
	}
}

// TestResumeAfterOnUnjournaledJob: the cursor is only meaningful for
// journal-restored jobs.
func TestResumeAfterOnUnjournaledJob(t *testing.T) {
	e := newTestEnv(t, service.Config{})
	g := hbbmc.GenerateER(100, 300, 23)
	e.registerGraph("er", g)
	v := e.startJob(map[string]any{"dataset": "er", "mode": "enumerate"})
	resp, data := e.do("GET", "/v1/jobs/"+v.ID+"/cliques?resume_after=3", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("resume_after on live job: %d %s, want 400", resp.StatusCode, data)
	}
	if _, trailer := streamJob(t, e, v.ID); trailer == nil {
		t.Fatal("plain stream after rejected resume failed")
	}
}

// TestResumeUnknownCursor: a cursor that is not a durable checkpoint is a
// client error and leaves the job resumable.
func TestResumeUnknownCursor(t *testing.T) {
	g := hbbmc.GenerateER(300, 1800, 29)
	gpath := saveGraph(t, g)
	want := refCliqueSet(t, g)
	dir := t.TempDir()
	cfg := service.Config{JournalDir: dir}
	a := openJournaled(t, cfg)
	a.waitReady()
	a.registerPath("er", gpath)
	v := a.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "buffer": 1})
	waitState(t, a.testEnv, v.ID, service.StateRunning)
	a.crash()

	b := openJournaled(t, cfg)
	defer b.stop()
	b.waitReady()
	resp, data := b.do("GET", "/v1/jobs/"+v.ID+"/cliques?resume_after=999999", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown cursor: %d %s, want 400", resp.StatusCode, data)
	}
	// The failed reclaim must not have consumed the job: a from-scratch
	// reclaim still yields the complete result.
	rest := streamMarked(t, b.testEnv, v.ID, "", nil)
	if rest.trailer == nil || rest.trailer["state"] != string(service.StateDone) {
		t.Fatalf("reclaim trailer %v, want done", rest.trailer)
	}
	assertExactlyOnce(t, want, rest.kept, rest.tail)
}
