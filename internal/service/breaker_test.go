package service

import (
	"testing"
	"time"
)

func TestBreakerTripAndRecover(t *testing.T) {
	bs := newBreakerSet(3, 40*time.Millisecond, &metrics{})
	const peer = "http://peer-a"

	// Closed: everything is allowed; failures below the threshold keep it so.
	for i := 0; i < 2; i++ {
		if !bs.allow(peer) {
			t.Fatalf("closed breaker denied dispatch after %d failures", i)
		}
		bs.failure(peer)
	}
	if st := bs.states()[peer]; st != breakerClosed {
		t.Fatalf("state after 2/3 failures = %s, want closed", st)
	}

	// The threshold-th consecutive failure trips it open.
	bs.failure(peer)
	if st := bs.states()[peer]; st != breakerOpen {
		t.Fatalf("state after 3/3 failures = %s, want open", st)
	}
	if bs.allow(peer) {
		t.Fatal("open breaker allowed a dispatch inside the cooldown")
	}
	if n := bs.openCount(); n != 1 {
		t.Fatalf("openCount = %d, want 1", n)
	}

	// After the cooldown exactly one probe goes through.
	time.Sleep(50 * time.Millisecond)
	if !bs.allow(peer) {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if st := bs.states()[peer]; st != breakerHalfOpen {
		t.Fatalf("state during probe = %s, want half_open", st)
	}
	if bs.allow(peer) {
		t.Fatal("second dispatch allowed while the probe is in flight")
	}

	// A failed probe re-opens; cooldown restarts.
	bs.failure(peer)
	if st := bs.states()[peer]; st != breakerOpen {
		t.Fatalf("state after failed probe = %s, want open", st)
	}
	if bs.allow(peer) {
		t.Fatal("re-opened breaker allowed a dispatch")
	}

	// A successful probe closes it fully.
	time.Sleep(50 * time.Millisecond)
	if !bs.allow(peer) {
		t.Fatal("second probe refused")
	}
	bs.success(peer)
	if st := bs.states()[peer]; st != breakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}
	for i := 0; i < 5; i++ {
		if !bs.allow(peer) {
			t.Fatal("closed breaker denied dispatch")
		}
	}
	if n := bs.openCount(); n != 0 {
		t.Fatalf("openCount after recovery = %d, want 0", n)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	bs := newBreakerSet(3, time.Minute, &metrics{})
	const peer = "http://peer-b"
	// Interleaved successes keep the consecutive-failure count from ever
	// reaching the threshold.
	for i := 0; i < 10; i++ {
		bs.failure(peer)
		bs.failure(peer)
		bs.success(peer)
	}
	if st := bs.states()[peer]; st != breakerClosed {
		t.Fatalf("state = %s, want closed", st)
	}
	if !bs.allow(peer) {
		t.Fatal("closed breaker denied dispatch")
	}
}

func TestBreakerTracksPeersIndependently(t *testing.T) {
	m := &metrics{}
	bs := newBreakerSet(1, time.Minute, m)
	bs.failure("http://dead")
	bs.success("http://live")
	states := bs.states()
	if states["http://dead"] != breakerOpen || states["http://live"] != breakerClosed {
		t.Fatalf("states = %v", states)
	}
	if bs.allow("http://dead") {
		t.Fatal("dead peer allowed")
	}
	if !bs.allow("http://live") {
		t.Fatal("live peer denied")
	}
	if got := m.peerBreakerTrips.Value(); got != 1 {
		t.Fatalf("peer_breaker_trips = %d, want 1", got)
	}
	if got := m.peerFailures.Value(); got != 1 {
		t.Fatalf("peer_failures = %d, want 1", got)
	}
}
