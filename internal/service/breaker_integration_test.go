package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	hbbmc "github.com/graphmining/hbbmc"
	"github.com/graphmining/hbbmc/internal/service"
)

// TestBreakerQuarantinesDeadPeer points a coordinator at one live worker
// and one dead address: the job must still deliver the exact clique set,
// the dead peer's circuit breaker must trip open, and the quarantine must
// be visible in /v1/info and the mced_peer_* metrics.
func TestBreakerQuarantinesDeadPeer(t *testing.T) {
	withTestProcs(t, 2)
	g := hbbmc.GenerateER(200, 1200, 31)
	want := refCliqueSet(t, g)

	// A listener that is already gone: every dial is refused instantly.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	c := newCluster(t, 1, "er", g, func(cfg *service.Config) {
		cfg.Peers = append(cfg.Peers, deadURL)
		cfg.BreakerThreshold = 1
		cfg.BreakerCooldown = time.Minute
	})

	v := c.coord.startJob(map[string]any{"dataset": "er", "mode": "enumerate", "workers": 2})
	cliques, trailer := streamJob(t, c.coord, v.ID)
	sameCliqueSet(t, "dead-peer cluster", cliqueSet(t, cliques), want)
	if trailer == nil || trailer["state"] != string(service.StateDone) {
		t.Fatalf("trailer = %v, want done", trailer)
	}

	resp, data := c.coord.do("GET", "/v1/info", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/info: %d %s", resp.StatusCode, data)
	}
	var info struct {
		PeerBreakers map[string]string `json:"peer_breakers"`
	}
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if st := info.PeerBreakers[deadURL]; st != "open" {
		t.Fatalf("dead peer breaker = %q, want open (all: %v)", st, info.PeerBreakers)
	}
	for peer, st := range info.PeerBreakers {
		if peer != deadURL && st != "closed" {
			t.Fatalf("live peer %s breaker = %q, want closed", peer, st)
		}
	}
	if n := c.coord.metric("peer_failures"); n < 1 {
		t.Fatalf("peer_failures = %d, want ≥ 1", n)
	}
	if n := c.coord.metric("peer_breaker_trips"); n < 1 {
		t.Fatalf("peer_breaker_trips = %d, want ≥ 1", n)
	}
	if n := c.coord.metric("peer_breaker_open"); n != 1 {
		t.Fatalf("peer_breaker_open = %d, want 1", n)
	}
}
