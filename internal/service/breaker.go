package service

import (
	"sync"
	"time"
)

// This file implements the coordinator's per-peer circuit breakers. A peer
// that keeps failing shard dispatches trips its breaker open and is skipped
// by peer rotation for a cooldown, instead of rotating back in and eating
// the retry budget of every shard that lands on it. After the cooldown one
// probe dispatch is allowed through (half-open); its outcome closes the
// breaker or re-opens it for another cooldown. The states are surfaced in
// /v1/info ("peer_breakers") and the mced_peer_* metrics.

// breaker states. The zero value is closed (healthy).
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half_open"
)

// peerBreaker is one peer's failure tracker.
type peerBreaker struct {
	state    string
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

// breakerSet tracks one breaker per peer URL. All methods are safe for
// concurrent use by the shard goroutines.
type breakerSet struct {
	threshold int
	cooldown  time.Duration
	m         *metrics

	mu sync.Mutex
	//hbbmc:guardedby mu
	peers map[string]*peerBreaker
}

func newBreakerSet(threshold int, cooldown time.Duration, m *metrics) *breakerSet {
	return &breakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		m:         m,
		peers:     make(map[string]*peerBreaker),
	}
}

func (b *breakerSet) peerLocked(peer string) *peerBreaker {
	p := b.peers[peer]
	if p == nil {
		p = &peerBreaker{state: breakerClosed}
		b.peers[peer] = p
	}
	return p
}

// allow reports whether a dispatch to peer may proceed. An open breaker
// whose cooldown has elapsed admits exactly one probe (half-open); further
// dispatches stay blocked until the probe's outcome is recorded.
func (b *breakerSet) allow(peer string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.peerLocked(peer)
	switch p.state {
	case breakerOpen:
		if time.Since(p.openedAt) < b.cooldown {
			return false
		}
		p.state = breakerHalfOpen
		p.probing = true
		return true
	case breakerHalfOpen:
		if p.probing {
			return false
		}
		p.probing = true
		return true
	}
	return true
}

// success records a successful dispatch: the breaker closes and the
// consecutive-failure count resets.
func (b *breakerSet) success(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	p := b.peerLocked(peer)
	p.state = breakerClosed
	p.fails = 0
	p.probing = false
}

// failure records a failed dispatch. A closed breaker trips after threshold
// consecutive failures; a half-open probe failure re-opens immediately.
func (b *breakerSet) failure(peer string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m.peerFailures.Add(1)
	p := b.peerLocked(peer)
	switch p.state {
	case breakerHalfOpen:
		b.tripLocked(p)
	default:
		p.fails++
		if p.fails >= b.threshold {
			b.tripLocked(p)
		}
	}
}

func (b *breakerSet) tripLocked(p *peerBreaker) {
	p.state = breakerOpen
	p.openedAt = time.Now()
	p.fails = 0
	p.probing = false
	b.m.peerBreakerTrips.Add(1)
}

// states snapshots every tracked peer's breaker state for /v1/info.
func (b *breakerSet) states() map[string]string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.peers) == 0 {
		return nil
	}
	out := make(map[string]string, len(b.peers))
	for peer, p := range b.peers {
		out[peer] = p.state
	}
	return out
}

// openCount counts the currently open breakers (the mced_peer_breaker_open
// gauge).
func (b *breakerSet) openCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, p := range b.peers {
		if p.state == breakerOpen {
			n++
		}
	}
	return n
}
