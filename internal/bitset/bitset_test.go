package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func fromInts(n int, xs ...int) Set {
	s := New(n)
	for _, x := range xs {
		s.Set(x)
	}
	return s
}

func TestWords(t *testing.T) {
	cases := []struct{ n, want int }{{0, 0}, {-3, 0}, {1, 1}, {64, 1}, {65, 2}, {200, 4}}
	for _, c := range cases {
		if got := Words(c.n); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSetUnsetHas(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 129} {
		if s.Has(i) {
			t.Errorf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Has(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := s.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	s.Unset(64)
	if s.Has(64) || s.Count() != 3 {
		t.Error("Unset(64) failed")
	}
}

func TestBinaryOps(t *testing.T) {
	a := fromInts(100, 1, 5, 70, 99)
	b := fromInts(100, 5, 70, 80)

	and := a.Clone()
	and.AndWith(b)
	if got := and.AppendTo(nil); !reflect.DeepEqual(got, []int32{5, 70}) {
		t.Errorf("And = %v", got)
	}

	or := a.Clone()
	or.OrWith(b)
	if got := or.Count(); got != 5 {
		t.Errorf("|Or| = %d, want 5", got)
	}

	diff := a.Clone()
	diff.AndNotWith(b)
	if got := diff.AppendTo(nil); !reflect.DeepEqual(got, []int32{1, 99}) {
		t.Errorf("AndNot = %v", got)
	}

	into := New(100)
	into.AndInto(a, b)
	if !into.Equal(and) {
		t.Error("AndInto disagrees with AndWith")
	}
	into.AndNotInto(a, b)
	if !into.Equal(diff) {
		t.Error("AndNotInto disagrees with AndNotWith")
	}

	if got := a.AndCount(b); got != 2 {
		t.Errorf("AndCount = %d, want 2", got)
	}
	if !a.AndAny(b) || !a.Intersects(b) {
		t.Error("AndAny should be true")
	}
	c := fromInts(100, 2)
	if a.AndAny(c) {
		t.Error("AndAny with disjoint set should be false")
	}
}

func TestSubsetEqualEmpty(t *testing.T) {
	a := fromInts(70, 3, 9)
	b := fromInts(70, 3, 9, 50)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if a.Equal(b) || !a.Equal(a.Clone()) {
		t.Error("Equal wrong")
	}
	if a.IsEmpty() {
		t.Error("a is not empty")
	}
	if !New(70).IsEmpty() {
		t.Error("fresh set should be empty")
	}
	if a.Equal(New(128)) {
		t.Error("different lengths are never equal")
	}
}

func TestIteration(t *testing.T) {
	s := fromInts(200, 0, 1, 63, 64, 65, 128, 199)
	if got := s.First(); got != 0 {
		t.Errorf("First = %d", got)
	}
	if got := New(10).First(); got != -1 {
		t.Errorf("First of empty = %d", got)
	}
	var walked []int
	for i := s.First(); i >= 0; i = s.NextAfter(i) {
		walked = append(walked, i)
	}
	want := []int{0, 1, 63, 64, 65, 128, 199}
	if !reflect.DeepEqual(walked, want) {
		t.Errorf("NextAfter walk = %v, want %v", walked, want)
	}
	if got := s.NextAfter(199); got != -1 {
		t.Errorf("NextAfter(last) = %d, want -1", got)
	}
	if got := s.NextAfter(-5); got != 0 {
		t.Errorf("NextAfter(-5) = %d, want 0", got)
	}

	var each []int
	s.ForEach(func(i int) { each = append(each, i) })
	if !reflect.DeepEqual(each, want) {
		t.Errorf("ForEach = %v, want %v", each, want)
	}
}

func TestCopyFromAndClear(t *testing.T) {
	a := fromInts(64, 1, 2, 3)
	b := New(64)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Error("CopyFrom failed")
	}
	b.Clear()
	if !b.IsEmpty() || a.IsEmpty() {
		t.Error("Clear should only affect the receiver")
	}
}

func TestArena(t *testing.T) {
	a := NewArena(100)
	if a.WordsPerSet() != 2 {
		t.Fatalf("WordsPerSet = %d, want 2", a.WordsPerSet())
	}
	mark := a.Mark()
	s1 := a.Get()
	s1.Set(5)
	s2 := a.Get()
	if s2.Has(5) {
		t.Error("arena sets should be independent")
	}
	s2.Set(99)
	a.Release(mark)
	s3 := a.Get()
	if !s3.IsEmpty() {
		t.Error("reused arena set not zeroed")
	}
	// Force slab growth.
	for i := 0; i < 100; i++ {
		s := a.Get()
		s.Set(i % 100)
	}
	if s3.Has(1) && s3.Has(2) && s3.Has(3) && s3.Has(4) {
		// s3 was recycled; its contents are unspecified after more Gets, so
		// no assertion here — this just documents the aliasing contract.
		_ = s3
	}
}

func TestArenaZeroCapacity(t *testing.T) {
	a := NewArena(0)
	s := a.Get()
	if len(s) != 0 || s.Count() != 0 {
		t.Error("zero-capacity arena should produce empty sets")
	}
}

// Property tests: set algebra laws against a reference map implementation.

func refOps(n int, xs, ys []int) (and, or, diff []int32) {
	inX := map[int]bool{}
	inY := map[int]bool{}
	for _, x := range xs {
		inX[x%n] = true
	}
	for _, y := range ys {
		inY[y%n] = true
	}
	for i := 0; i < n; i++ {
		if inX[i] && inY[i] {
			and = append(and, int32(i))
		}
		if inX[i] || inY[i] {
			or = append(or, int32(i))
		}
		if inX[i] && !inY[i] {
			diff = append(diff, int32(i))
		}
	}
	return
}

func TestQuickAlgebra(t *testing.T) {
	const n = 150
	f := func(xs, ys []uint16) bool {
		a, b := New(n), New(n)
		xi := make([]int, len(xs))
		yi := make([]int, len(ys))
		for i, x := range xs {
			xi[i] = int(x)
			a.Set(int(x) % n)
		}
		for i, y := range ys {
			yi[i] = int(y)
			b.Set(int(y) % n)
		}
		wantAnd, wantOr, wantDiff := refOps(n, xi, yi)

		and := a.Clone()
		and.AndWith(b)
		or := a.Clone()
		or.OrWith(b)
		diff := a.Clone()
		diff.AndNotWith(b)

		gotAnd := and.AppendTo(nil)
		gotOr := or.AppendTo(nil)
		gotDiff := diff.AppendTo(nil)
		return sliceEq(gotAnd, wantAnd) && sliceEq(gotOr, wantOr) && sliceEq(gotDiff, wantDiff) &&
			a.AndCount(b) == len(wantAnd) &&
			and.SubsetOf(a) && and.SubsetOf(b) && a.SubsetOf(or) && diff.SubsetOf(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sliceEq(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQuickDeMorgan(t *testing.T) {
	const n = 130
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		a, b, universe := New(n), New(n), New(n)
		for i := 0; i < n; i++ {
			universe.Set(i)
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		// U \ (a ∪ b) == (U \ a) ∩ (U \ b)
		or := a.Clone()
		or.OrWith(b)
		lhs := universe.Clone()
		lhs.AndNotWith(or)
		na := universe.Clone()
		na.AndNotWith(a)
		nb := universe.Clone()
		nb.AndNotWith(b)
		rhs := New(n)
		rhs.AndInto(na, nb)
		if !lhs.Equal(rhs) {
			t.Fatalf("De Morgan violated at iter %d", iter)
		}
	}
}
