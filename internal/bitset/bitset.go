// Package bitset provides dense fixed-capacity bit sets used by the
// branch-and-bound engines in internal/core.
//
// A Set is a plain []uint64 so that hot loops compile to word operations
// without pointer chasing. All binary operations require operands created
// with the same capacity; this is a deliberate contract (the enumeration
// engines allocate every set of a subproblem from a single arena with one
// word count) and is checked only in debug builds of the callers' tests.
package bitset

import "math/bits"

// Set is a dense bit set backed by 64-bit words.
type Set []uint64

const wordBits = 64

// Words returns the number of uint64 words needed to hold n bits.
func Words(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + wordBits - 1) / wordBits
}

// New returns a zeroed Set with capacity for n bits.
func New(n int) Set {
	return make(Set, Words(n))
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// CopyFrom overwrites s with the contents of o. The sets must have the same
// word length.
func (s Set) CopyFrom(o Set) {
	copy(s, o)
}

// Clear zeroes every bit.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Set sets bit i.
func (s Set) Set(i int) {
	s[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Unset clears bit i.
func (s Set) Unset(i int) {
	s[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether bit i is set.
func (s Set) Has(i int) bool {
	return s[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
//
//hbbmc:noalloc
func (s Set) Count() int {
	n := 0
	i := 0
	// 4-way unrolled: popcounts have no cross-iteration dependency, so the
	// four OnesCount64 chains retire in parallel.
	for ; i+4 <= len(s); i += 4 {
		n += bits.OnesCount64(s[i]) + bits.OnesCount64(s[i+1]) +
			bits.OnesCount64(s[i+2]) + bits.OnesCount64(s[i+3])
	}
	for ; i < len(s); i++ {
		n += bits.OnesCount64(s[i])
	}
	return n
}

// CountCapped returns min(Count, limit), scanning only until the limit is
// reached — the "are at least limit bits set?" threshold form of Count (the
// early-termination decomposition uses it to bound complement degrees).
//
//hbbmc:noalloc
func (s Set) CountCapped(limit int) int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
		if n >= limit {
			return limit
		}
	}
	return n
}

// IsEmpty reports whether no bit is set.
func (s Set) IsEmpty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// AndWith replaces s with s ∩ o.
func (s Set) AndWith(o Set) {
	for i := range s {
		s[i] &= o[i]
	}
}

// OrWith replaces s with s ∪ o.
func (s Set) OrWith(o Set) {
	for i := range s {
		s[i] |= o[i]
	}
}

// AndNotWith replaces s with s \ o.
func (s Set) AndNotWith(o Set) {
	for i := range s {
		s[i] &^= o[i]
	}
}

// AndInto stores a ∩ b into s. All three sets must share a word length.
//
//hbbmc:noalloc
func (s Set) AndInto(a, b Set) {
	for i := range s {
		s[i] = a[i] & b[i]
	}
}

// AndNotInto stores a \ b into s.
//
//hbbmc:noalloc
func (s Set) AndNotInto(a, b Set) {
	for i := range s {
		s[i] = a[i] &^ b[i]
	}
}

// AndIntoCount stores a ∩ b into s and returns its popcount — the fused form
// of AndInto followed by Count, touching every cache line once.
//
//hbbmc:noalloc
func (s Set) AndIntoCount(a, b Set) int {
	n := 0
	i := 0
	for ; i+4 <= len(s); i += 4 {
		w0 := a[i] & b[i]
		w1 := a[i+1] & b[i+1]
		w2 := a[i+2] & b[i+2]
		w3 := a[i+3] & b[i+3]
		s[i], s[i+1], s[i+2], s[i+3] = w0, w1, w2, w3
		n += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(s); i++ {
		w := a[i] & b[i]
		s[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// AndNotIntoCount stores a \ b into s and returns its popcount.
//
//hbbmc:noalloc
func (s Set) AndNotIntoCount(a, b Set) int {
	n := 0
	i := 0
	for ; i+4 <= len(s); i += 4 {
		w0 := a[i] &^ b[i]
		w1 := a[i+1] &^ b[i+1]
		w2 := a[i+2] &^ b[i+2]
		w3 := a[i+3] &^ b[i+3]
		s[i], s[i+1], s[i+2], s[i+3] = w0, w1, w2, w3
		n += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(s); i++ {
		w := a[i] &^ b[i]
		s[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns |s ∩ o| without materialising the intersection
// (intersect + popcount fused in one pass, 4-way unrolled).
//
//hbbmc:noalloc
func (s Set) AndCount(o Set) int {
	n := 0
	i := 0
	for ; i+4 <= len(s); i += 4 {
		n += bits.OnesCount64(s[i]&o[i]) + bits.OnesCount64(s[i+1]&o[i+1]) +
			bits.OnesCount64(s[i+2]&o[i+2]) + bits.OnesCount64(s[i+3]&o[i+3])
	}
	for ; i < len(s); i++ {
		n += bits.OnesCount64(s[i] & o[i])
	}
	return n
}

// AndNotCount returns |s \ o| without materialising the difference.
//
//hbbmc:noalloc
func (s Set) AndNotCount(o Set) int {
	n := 0
	i := 0
	for ; i+4 <= len(s); i += 4 {
		n += bits.OnesCount64(s[i]&^o[i]) + bits.OnesCount64(s[i+1]&^o[i+1]) +
			bits.OnesCount64(s[i+2]&^o[i+2]) + bits.OnesCount64(s[i+3]&^o[i+3])
	}
	for ; i < len(s); i++ {
		n += bits.OnesCount64(s[i] &^ o[i])
	}
	return n
}

// AndAny reports whether s ∩ o is non-empty.
//
//hbbmc:noalloc
func (s Set) AndAny(o Set) bool {
	for i := range s {
		if s[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Intersects is an alias for AndAny, reading better at call sites that test
// overlap rather than compute it.
func (s Set) Intersects(o Set) bool { return s.AndAny(o) }

// Equal reports whether s and o contain the same bits.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit of s is also set in o.
func (s Set) SubsetOf(o Set) bool {
	for i := range s {
		if s[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

// First returns the index of the lowest set bit, or -1 if the set is empty.
func (s Set) First() int {
	for i, w := range s {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the index of the lowest set bit strictly greater than i,
// or -1 if none exists. Pass -1 to start from the beginning.
func (s Set) NextAfter(i int) int {
	i++
	if i < 0 {
		i = 0
	}
	wi := i / wordBits
	if wi >= len(s) {
		return -1
	}
	w := s[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s); wi++ {
		if s[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s[wi])
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		base := wi * wordBits
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// ForEachWord calls fn once per non-zero word with the word's bit base
// (wordIndex*64) and its value. One callback per 64-bit word instead of one
// per set bit; hot callers drain the word with TrailingZeros64 + w&(w-1)
// themselves, replacing per-bit First/NextAfter scan loops:
//
//	s.ForEachWord(func(base int, w uint64) {
//	    for ; w != 0; w &= w - 1 {
//	        i := base + bits.TrailingZeros64(w)
//	        ...
//	    }
//	})
//
// Since Set is a plain slice, fully inlined callers can also range over it
// directly; ForEachWord exists for call sites outside this package that
// should not hard-code the word layout.
func (s Set) ForEachWord(fn func(base int, w uint64)) {
	for wi, w := range s {
		if w != 0 {
			fn(wi*wordBits, w)
		}
	}
}

// AppendTo appends the indices of the set bits to dst and returns it.
//
//hbbmc:noalloc
func (s Set) AppendTo(dst []int32) []int32 {
	for wi, w := range s {
		base := wi * wordBits
		for w != 0 {
			dst = append(dst, int32(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// Arena allocates many equally-sized Sets from large backing slabs. It keeps
// the per-recursion-level allocations of the enumeration engines off the
// garbage collector's radar: a branch checkpoints the arena, carves the sets
// it needs, and releases them all at once on backtrack.
type Arena struct {
	words int
	slab  []uint64
	used  int
}

// NewArena returns an arena producing sets of the given bit capacity.
func NewArena(bitCap int) *Arena {
	return &Arena{words: Words(bitCap)}
}

// Reset empties the arena and switches it to a new bit capacity, keeping the
// backing slab so repeated subproblems do not reallocate.
func (a *Arena) Reset(bitCap int) {
	a.words = Words(bitCap)
	a.used = 0
}

// WordsPerSet returns the word length of the sets this arena produces.
func (a *Arena) WordsPerSet() int { return a.words }

// Mark returns a checkpoint token for Release.
func (a *Arena) Mark() int { return a.used }

// Release returns the arena to a previous checkpoint obtained from Mark.
func (a *Arena) Release(mark int) { a.used = mark }

// Get carves a zeroed Set from the arena.
func (a *Arena) Get() Set {
	s := a.GetUnzeroed()
	for i := range s {
		s[i] = 0
	}
	return s
}

// GetUnzeroed carves a Set from the arena without clearing it; its contents
// are unspecified (typically the remains of a released set). Use it only
// when every word is overwritten before being read — the CopyFrom /
// AndInto / AndNotInto family — to keep the zeroing pass off the hot path.
func (a *Arena) GetUnzeroed() Set {
	if a.words == 0 {
		return Set{}
	}
	if a.used+a.words > len(a.slab) {
		grow := len(a.slab) * 2
		if grow < a.used+a.words {
			grow = a.used + a.words
		}
		if grow < 16*a.words {
			grow = 16 * a.words
		}
		ns := make([]uint64, grow)
		copy(ns, a.slab[:a.used])
		a.slab = ns
	}
	s := Set(a.slab[a.used : a.used+a.words])
	a.used += a.words
	return s
}
