package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The fused kernels must be observationally identical to their composed
// two-pass forms on every input. randomPair builds two same-capacity sets
// from raw word material so word boundaries, empty words and full words are
// all exercised.

func setsFromWords(aw, bw []uint64) (a, b Set, bits int) {
	n := len(aw)
	if len(bw) < n {
		n = len(bw)
	}
	if n == 0 {
		return Set{}, Set{}, 0
	}
	a = append(Set(nil), aw[:n]...)
	b = append(Set(nil), bw[:n]...)
	return a, b, n * wordBits
}

func TestQuickFusedKernels(t *testing.T) {
	f := func(aw, bw []uint64, limit uint8) bool {
		a, b, n := setsFromWords(aw, bw)

		// AndCount == AndInto ; Count
		and := New(n)
		and.AndInto(a, b)
		if a.AndCount(b) != and.Count() {
			return false
		}
		// AndNotCount == AndNotInto ; Count
		diff := New(n)
		diff.AndNotInto(a, b)
		if a.AndNotCount(b) != diff.Count() {
			return false
		}
		// AndIntoCount == AndInto ; Count, with identical contents
		fusedAnd := New(n)
		if fusedAnd.AndIntoCount(a, b) != and.Count() || !fusedAnd.Equal(and) {
			return false
		}
		// AndNotIntoCount == AndNotInto ; Count, with identical contents
		fusedDiff := New(n)
		if fusedDiff.AndNotIntoCount(a, b) != diff.Count() || !fusedDiff.Equal(diff) {
			return false
		}
		// Capped count agrees with min(full count, limit).
		lim := int(limit)
		if want := min(a.Count(), lim); a.CountCapped(lim) != want {
			return false
		}
		// ForEachWord visits exactly the set bits, in order.
		var words []int32
		a.ForEachWord(func(base int, w uint64) {
			for ; w != 0; w &= w - 1 {
				words = append(words, int32(base+trailing(w)))
			}
		})
		return sliceEq(words, a.AppendTo(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func trailing(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}

// TestFusedKernelsDense drives the unrolled paths across every length
// residue mod 4 with dense, empty and full words.
func TestFusedKernelsDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for words := 0; words <= 9; words++ {
		for iter := 0; iter < 50; iter++ {
			a, b := make(Set, words), make(Set, words)
			for i := range a {
				switch rng.Intn(4) {
				case 0:
					a[i] = 0
				case 1:
					a[i] = ^uint64(0)
				default:
					a[i] = rng.Uint64()
				}
				b[i] = rng.Uint64()
			}
			and := make(Set, words)
			and.AndInto(a, b)
			if got, want := a.AndCount(b), and.Count(); got != want {
				t.Fatalf("words=%d AndCount=%d want %d", words, got, want)
			}
			diff := make(Set, words)
			diff.AndNotInto(a, b)
			if got, want := a.AndNotCount(b), diff.Count(); got != want {
				t.Fatalf("words=%d AndNotCount=%d want %d", words, got, want)
			}
			dst := make(Set, words)
			if got := dst.AndIntoCount(a, b); got != and.Count() || !dst.Equal(and) {
				t.Fatalf("words=%d AndIntoCount mismatch", words)
			}
			if got := dst.AndNotIntoCount(a, b); got != diff.Count() || !dst.Equal(diff) {
				t.Fatalf("words=%d AndNotIntoCount mismatch", words)
			}
		}
	}
}

func TestArenaGetUnzeroed(t *testing.T) {
	a := NewArena(128)
	s := a.Get()
	s.Set(3)
	s.Set(100)
	a.Release(0)
	// GetUnzeroed returns the same slab region with unspecified contents;
	// a full overwrite must leave no trace of the previous occupant.
	u := a.GetUnzeroed()
	if len(u) != a.WordsPerSet() {
		t.Fatalf("GetUnzeroed length %d, want %d", len(u), a.WordsPerSet())
	}
	src := fromInts(128, 7)
	u.CopyFrom(src)
	if !u.Equal(src) {
		t.Error("overwritten GetUnzeroed set differs from source")
	}
	if a.GetUnzeroed(); a.Mark() != 2*a.WordsPerSet() {
		t.Error("GetUnzeroed must advance the arena cursor like Get")
	}
}

// FuzzBitsetFused feeds raw word material to every fused kernel and
// cross-checks it against the composed two-pass form.
func FuzzBitsetFused(f *testing.F) {
	f.Add([]byte{}, []byte{}, uint8(0))
	f.Add([]byte{0xff, 0x00, 0xaa}, []byte{0x0f, 0xf0}, uint8(3))
	f.Add(
		[]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17},
		[]byte{16, 15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0},
		uint8(200),
	)
	f.Fuzz(func(t *testing.T, araw, braw []byte, limit uint8) {
		a, b, n := setsFromWords(bytesToWords(araw), bytesToWords(braw))
		and := New(n)
		and.AndInto(a, b)
		diff := New(n)
		diff.AndNotInto(a, b)

		if got, want := a.AndCount(b), and.Count(); got != want {
			t.Fatalf("AndCount=%d, composed=%d", got, want)
		}
		if got, want := a.AndNotCount(b), diff.Count(); got != want {
			t.Fatalf("AndNotCount=%d, composed=%d", got, want)
		}
		dst := New(n)
		if got := dst.AndIntoCount(a, b); got != and.Count() || !dst.Equal(and) {
			t.Fatalf("AndIntoCount=%d contents-equal=%v, composed=%d", got, dst.Equal(and), and.Count())
		}
		if got := dst.AndNotIntoCount(a, b); got != diff.Count() || !dst.Equal(diff) {
			t.Fatalf("AndNotIntoCount=%d contents-equal=%v, composed=%d", got, dst.Equal(diff), diff.Count())
		}
		lim := int(limit)
		if got, want := a.CountCapped(lim), min(a.Count(), lim); got != want {
			t.Fatalf("CountCapped(%d)=%d, want %d", lim, got, want)
		}
		var walked []int32
		a.ForEachWord(func(base int, w uint64) {
			for ; w != 0; w &= w - 1 {
				walked = append(walked, int32(base+trailing(w)))
			}
		})
		if !sliceEq(walked, a.AppendTo(nil)) {
			t.Fatal("ForEachWord walk differs from AppendTo")
		}
	})
}

func bytesToWords(b []byte) []uint64 {
	words := make([]uint64, (len(b)+7)/8)
	for i, x := range b {
		words[i/8] |= uint64(x) << (8 * uint(i%8))
	}
	return words
}
