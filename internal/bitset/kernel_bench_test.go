package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
)

// Kernel microbenchmarks: regressions in the fused word-parallel kernels
// show up here directly, without the noise of the end-to-end benchmark gate.
// kernelWords ≈ a 4096-vertex branch universe — larger than the truss-bound
// universes of the paper's datasets, so per-word throughput dominates.
const kernelWords = 64

func kernelSets(density float64) (a, b Set) {
	rng := rand.New(rand.NewSource(1))
	a, b = make(Set, kernelWords), make(Set, kernelWords)
	for i := range a {
		for bit := 0; bit < 64; bit++ {
			if rng.Float64() < density {
				a[i] |= 1 << uint(bit)
			}
			if rng.Float64() < density {
				b[i] |= 1 << uint(bit)
			}
		}
	}
	return a, b
}

func BenchmarkKernelAndCount(b *testing.B) {
	x, y := kernelSets(0.3)
	b.SetBytes(kernelWords * 8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.AndCount(y)
	}
	_ = sink
}

// BenchmarkKernelAndCountComposed is the unfused baseline AndCount replaced:
// materialise the intersection, then count it.
func BenchmarkKernelAndCountComposed(b *testing.B) {
	x, y := kernelSets(0.3)
	tmp := make(Set, kernelWords)
	b.SetBytes(kernelWords * 8)
	var sink int
	for i := 0; i < b.N; i++ {
		tmp.AndInto(x, y)
		sink += tmp.Count()
	}
	_ = sink
}

func BenchmarkKernelAndNotCount(b *testing.B) {
	x, y := kernelSets(0.3)
	b.SetBytes(kernelWords * 8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += x.AndNotCount(y)
	}
	_ = sink
}

func BenchmarkKernelAndIntoCount(b *testing.B) {
	x, y := kernelSets(0.3)
	dst := make(Set, kernelWords)
	b.SetBytes(kernelWords * 8)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += dst.AndIntoCount(x, y)
	}
	_ = sink
}

// BenchmarkKernelWordIter iterates the set bits through the word-level path
// (range over words + TrailingZeros64), the pattern hot core loops use.
func BenchmarkKernelWordIter(b *testing.B) {
	x, _ := kernelSets(0.2)
	b.SetBytes(kernelWords * 8)
	var sink int
	for i := 0; i < b.N; i++ {
		for wi, w := range x {
			base := wi * 64
			for ; w != 0; w &= w - 1 {
				sink += base + bits.TrailingZeros64(w)
			}
		}
	}
	_ = sink
}

// BenchmarkKernelBitIter is the per-bit First/NextAfter scan the word
// iterator replaced; kept as the comparison baseline.
func BenchmarkKernelBitIter(b *testing.B) {
	x, _ := kernelSets(0.2)
	b.SetBytes(kernelWords * 8)
	var sink int
	for i := 0; i < b.N; i++ {
		for v := x.First(); v >= 0; v = x.NextAfter(v) {
			sink += v
		}
	}
	_ = sink
}
