package bitset

import "testing"

// TestKernelsAllocFree pins the fused kernels at exactly zero allocations
// per call. The engine's recursion budget (internal/core, //hbbmc:noalloc)
// assumes these are pure word loops; a stray escape or spill to the heap
// here would charge every node of every branch tree.
func TestKernelsAllocFree(t *testing.T) {
	const bits = 70 * 64 // several words, not a round power of two
	a, b, dst := New(bits), New(bits), New(bits)
	for i := 0; i < bits; i += 3 {
		a.Set(i)
	}
	for i := 0; i < bits; i += 5 {
		b.Set(i)
	}
	out := make([]int32, 0, bits)

	kernels := map[string]func(){
		"Count":           func() { _ = a.Count() },
		"CountCapped":     func() { _ = a.CountCapped(17) },
		"AndInto":         func() { dst.AndInto(a, b) },
		"AndNotInto":      func() { dst.AndNotInto(a, b) },
		"AndIntoCount":    func() { _ = dst.AndIntoCount(a, b) },
		"AndNotIntoCount": func() { _ = dst.AndNotIntoCount(a, b) },
		"AndCount":        func() { _ = a.AndCount(b) },
		"AndNotCount":     func() { _ = a.AndNotCount(b) },
		"AndAny":          func() { _ = a.AndAny(b) },
		"AppendTo":        func() { out = a.AppendTo(out[:0]) },
	}
	for name, fn := range kernels {
		if got := testing.AllocsPerRun(200, fn); got != 0 {
			t.Errorf("%s: %v allocs per call, want 0", name, got)
		}
	}
}

// TestArenaGetAllocFree pins arena handle churn inside a mark/release
// window at zero allocations once the arena has grown to its high-water
// mark — the property that makes per-node C/X sets free in steady state.
func TestArenaGetAllocFree(t *testing.T) {
	ar := NewArena(256)
	warm := ar.Mark()
	for i := 0; i < 8; i++ {
		ar.Get()
	}
	ar.Release(warm)

	if got := testing.AllocsPerRun(200, func() {
		m := ar.Mark()
		s := ar.Get()
		u := ar.GetUnzeroed()
		u.CopyFrom(s)
		ar.Release(m)
	}); got != 0 {
		t.Errorf("warm Mark/Get/Release cycle: %v allocs, want 0", got)
	}
}
