// Package order computes the vertex orderings used by the branch-and-bound
// frameworks: the degeneracy ordering (BK_Degen, [9][10]), the degree
// ordering (BK_Degree, [17]) and the graph h-index. All run in O(n + m).
package order

import (
	"sort"

	"github.com/graphmining/hbbmc/internal/graph"
)

// Degeneracy holds the result of a core decomposition.
type Degeneracy struct {
	// Order lists the vertices in degeneracy order (smallest-degree-first
	// peeling order).
	Order []int32
	// Pos[v] is v's position in Order.
	Pos []int32
	// Core[v] is the core number of v.
	Core []int32
	// Value is the graph degeneracy δ = max core number.
	Value int
}

// DegeneracyOrdering peels minimum-degree vertices with a bucket queue,
// producing the degeneracy ordering and core numbers in O(n + m).
func DegeneracyOrdering(g *graph.Graph) *Degeneracy {
	n := g.NumVertices()
	d := &Degeneracy{
		Order: make([]int32, 0, n),
		Pos:   make([]int32, n),
		Core:  make([]int32, n),
	}
	if n == 0 {
		return d
	}
	deg := make([]int32, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(int32(v)))
		if int(deg[v]) > maxDeg {
			maxDeg = int(deg[v])
		}
	}
	// Bucket sort vertices by degree.
	binStart := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		binStart[deg[v]+1]++
	}
	for i := 1; i < len(binStart); i++ {
		binStart[i] += binStart[i-1]
	}
	vert := make([]int32, n) // vertices sorted by current degree
	pos := make([]int32, n)  // position of v in vert
	cursor := make([]int32, maxDeg+1)
	copy(cursor, binStart[:maxDeg+1])
	for v := 0; v < n; v++ {
		p := cursor[deg[v]]
		vert[p] = int32(v)
		pos[v] = p
		cursor[deg[v]]++
	}
	bin := make([]int32, maxDeg+1)
	copy(bin, binStart[:maxDeg+1])

	removed := make([]bool, n)
	degeneracy := int32(0)
	for i := 0; i < n; i++ {
		v := vert[i]
		if deg[v] > degeneracy {
			degeneracy = deg[v]
		}
		d.Core[v] = degeneracy
		d.Pos[v] = int32(len(d.Order))
		d.Order = append(d.Order, v)
		removed[v] = true
		for _, w := range g.Neighbors(v) {
			if removed[w] {
				continue
			}
			dw := deg[w]
			// Swap w with the first vertex of its bucket, then shrink the
			// bucket boundary so w lands in bucket dw-1.
			pw := pos[w]
			ps := bin[dw]
			if int(ps) <= i {
				ps = int32(i + 1)
				bin[dw] = ps
			}
			u := vert[ps]
			if u != w {
				vert[ps], vert[pw] = w, u
				pos[w], pos[u] = ps, pw
			}
			bin[dw]++
			deg[w]--
		}
	}
	d.Value = int(degeneracy)
	return d
}

// DegreeOrdering returns the vertices sorted by non-decreasing degree (ties
// by id) together with the position index. This is the ordering used by
// BK_Degree.
func DegreeOrdering(g *graph.Graph) (order, pos []int32) {
	n := g.NumVertices()
	order = make([]int32, n)
	for v := range order {
		order[v] = int32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di < dj
		}
		return order[i] < order[j]
	})
	pos = make([]int32, n)
	for i, v := range order {
		pos[v] = int32(i)
	}
	return order, pos
}

// HIndex returns the graph h-index: the largest h such that at least h
// vertices have degree ≥ h.
func HIndex(g *graph.Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	// Counting sort of degrees, capped at n.
	count := make([]int, n+1)
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		if d > n {
			d = n
		}
		count[d]++
	}
	atLeast := 0
	for h := n; h >= 0; h-- {
		atLeast += count[h]
		if atLeast >= h {
			return h
		}
	}
	return 0
}
