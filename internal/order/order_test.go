package order

import (
	"math/rand"
	"testing"

	"github.com/graphmining/hbbmc/internal/graph"
)

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.MustBuild()
}

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.MustBuild()
}

func cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.MustBuild()
}

func star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.MustBuild()
}

func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.MustBuild()
}

func TestDegeneracyKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.NewBuilder(0).MustBuild(), 0},
		{"isolated", graph.NewBuilder(5).MustBuild(), 0},
		{"K5", complete(5), 4},
		{"K2", complete(2), 1},
		{"path10", path(10), 1},
		{"cycle10", cycle(10), 2},
		{"star10", star(10), 1},
	}
	for _, c := range cases {
		d := DegeneracyOrdering(c.g)
		if d.Value != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, d.Value, c.want)
		}
	}
}

// checkOrderingInvariant verifies the defining property of a degeneracy
// ordering: every vertex has at most δ neighbors later in the order.
func checkOrderingInvariant(t *testing.T, g *graph.Graph, d *Degeneracy) {
	t.Helper()
	if len(d.Order) != g.NumVertices() {
		t.Fatalf("ordering has %d vertices, want %d", len(d.Order), g.NumVertices())
	}
	seen := make([]bool, g.NumVertices())
	for i, v := range d.Order {
		if seen[v] {
			t.Fatalf("vertex %d repeated in ordering", v)
		}
		seen[v] = true
		if d.Pos[v] != int32(i) {
			t.Fatalf("Pos[%d] = %d, want %d", v, d.Pos[v], i)
		}
		later := 0
		for _, w := range g.Neighbors(v) {
			if d.Pos[w] > d.Pos[v] {
				later++
			}
		}
		if later > d.Value {
			t.Fatalf("vertex %d has %d later neighbors, exceeds degeneracy %d", v, later, d.Value)
		}
	}
}

func TestDegeneracyOrderingInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		n := 1 + rng.Intn(80)
		g := randomGraph(rng, n, rng.Intn(5*n))
		d := DegeneracyOrdering(g)
		checkOrderingInvariant(t, g, d)
		// Core numbers are monotone along the peeling order.
		for j := 1; j < len(d.Order); j++ {
			if d.Core[d.Order[j]] < d.Core[d.Order[j-1]] {
				t.Fatalf("core numbers not monotone along order")
			}
		}
	}
}

func TestCoreNumbersOnCompleteBipartite(t *testing.T) {
	// K_{3,3}: every vertex has core number 3.
	b := graph.NewBuilder(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	g := b.MustBuild()
	d := DegeneracyOrdering(g)
	if d.Value != 3 {
		t.Fatalf("degeneracy of K33 = %d, want 3", d.Value)
	}
	for v := int32(0); v < 6; v++ {
		if d.Core[v] != 3 {
			t.Errorf("Core[%d] = %d, want 3", v, d.Core[v])
		}
	}
}

func TestDegreeOrdering(t *testing.T) {
	g := star(5)
	ord, pos := DegreeOrdering(g)
	if ord[len(ord)-1] != 0 {
		t.Errorf("hub should be last in degree order, got %v", ord)
	}
	for i, v := range ord {
		if pos[v] != int32(i) {
			t.Errorf("pos[%d] = %d, want %d", v, pos[v], i)
		}
	}
	for i := 1; i < len(ord); i++ {
		if g.Degree(ord[i-1]) > g.Degree(ord[i]) {
			t.Error("degree ordering not non-decreasing")
		}
	}
}

func TestHIndex(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty", graph.NewBuilder(0).MustBuild(), 0},
		{"isolated", graph.NewBuilder(4).MustBuild(), 0},
		{"K5", complete(5), 4},
		{"path10", path(10), 2},
		{"star10", star(10), 1},
	}
	for _, c := range cases {
		if got := HIndex(c.g); got != c.want {
			t.Errorf("%s: h-index = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestHIndexAtLeastDegeneracy(t *testing.T) {
	// δ ≤ h for every graph (standard inequality).
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(60)
		g := randomGraph(rng, n, rng.Intn(4*n))
		if d, h := DegeneracyOrdering(g).Value, HIndex(g); d > h {
			t.Fatalf("degeneracy %d > h-index %d", d, h)
		}
	}
}
