// Package ctxpoll checks that long-running driver loops stay cancellable.
//
// Functions annotated //hbbmc:ctxpoll promise that every outermost loop in
// their body polls a cancellation signal somewhere in its subtree:
//
//   - a call to a stop-latch method (halted, stopped — the runControl
//     surface) or ctx.Err();
//   - a channel receive (bare or in a select) from a done/gone/cancel/
//     stop/ctx-named channel, e.g. <-ctx.Done(), <-clientGone;
//   - an atomic load of a stop/cancel/halt flag (stop.Load()).
//
// Only outermost loops are checked: an inner per-vertex loop is bounded by
// the work item, and demanding a poll per bit-row would put a branch in
// the kernel. A poll anywhere in the outer loop's body (including inside
// nested loops) satisfies it. Function literals are skipped — a worker
// body defined inline is a separate loop governed by its own function's
// annotation. The directive on a function with no loops at all is flagged
// as stale.
package ctxpoll

import (
	"go/ast"
	"strings"

	"github.com/graphmining/hbbmc/internal/analysis"
)

// Analyzer is the ctxpoll pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "//hbbmc:ctxpoll loops must poll the stop latch or ctx",
	Run:  run,
}

// pollMethods are stop-latch calls (runControl and context surfaces).
var pollMethods = map[string]bool{
	"halted": true, "Halted": true,
	"stopped": true, "Stopped": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncDirective(fn, "ctxpoll") {
				continue
			}
			if !checkLoops(pass, fn.Body) {
				pass.Reportf(fn.Name.Pos(),
					"%s carries //hbbmc:ctxpoll but contains no loops; drop the directive", fn.Name.Name)
			}
		}
	}
	return nil
}

// checkLoops reports non-polling outermost loops and returns whether any
// loop was found.
func checkLoops(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			found = true
			if !polls(pass, n.Body) && !condPolls(pass, n.Cond) {
				pass.Reportf(n.Pos(),
					"loop does not poll the stop latch or ctx; a cancelled run would spin here until completion")
			}
			return false // outermost only
		case *ast.RangeStmt:
			found = true
			if !polls(pass, n.Body) {
				pass.Reportf(n.Pos(),
					"loop does not poll the stop latch or ctx; a cancelled run would spin here until completion")
			}
			return false
		}
		return true
	})
	return found
}

func condPolls(pass *analysis.Pass, cond ast.Expr) bool {
	if cond == nil {
		return false
	}
	return pollsExpr(pass, cond)
}

func polls(pass *analysis.Pass, body *ast.BlockStmt) bool {
	return pollsExpr(pass, body)
}

func pollsExpr(pass *analysis.Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				recv := strings.ToLower(analysis.ExprKey(sel.X))
				switch {
				case pollMethods[name]:
					found = true
				case name == "Err" && strings.Contains(recv, "ctx"):
					found = true
				case name == "Load" && containsAny(recv, "stop", "cancel", "halt", "done"):
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				key := strings.ToLower(analysis.ExprKey(n.X))
				if containsAny(key, "done", "gone", "cancel", "stop", "ctx", "halt") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if strings.Contains(s, sub) {
			return true
		}
	}
	return false
}
