package ctxpolltest

import (
	"context"
	"sync/atomic"
)

type rc struct{ stop atomic.Bool }

func (r *rc) halted() bool { return r.stop.Load() }

type driver struct {
	rc    *rc
	items []int
}

func (d *driver) work(i int) {}

// goodLatch polls the stop latch once per item; inner loops ride on the
// outer poll.
//
//hbbmc:ctxpoll
func (d *driver) goodLatch() {
	for i := range d.items {
		if d.rc.halted() {
			return
		}
		for j := 0; j < i; j++ {
			d.work(j)
		}
	}
}

// goodCtx polls via the context's done channel in a select.
//
//hbbmc:ctxpoll
func (d *driver) goodCtx(ctx context.Context, in <-chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case v := <-in:
			d.work(v)
		}
	}
}

// goodAtomic polls a raw stop flag.
//
//hbbmc:ctxpoll
func (d *driver) goodAtomic(stop *atomic.Bool) {
	for i := range d.items {
		if stop.Load() {
			return
		}
		d.work(i)
	}
}

// goodCondPoll polls in the loop condition itself.
//
//hbbmc:ctxpoll
func (d *driver) goodCondPoll() {
	for !d.rc.halted() {
		d.work(0)
	}
}

//hbbmc:ctxpoll
func (d *driver) badSpin() {
	for i := range d.items { // want `loop does not poll the stop latch or ctx`
		d.work(i)
	}
}

//hbbmc:ctxpoll
func (d *driver) badInfinite(in <-chan int) {
	for { // want `loop does not poll the stop latch or ctx`
		v := <-in
		d.work(v)
	}
}

// badWorkerLit: the closure's loop does not inherit the enclosing
// function's annotation, but the enclosing range loop still needs a poll.
//
//hbbmc:ctxpoll
func (d *driver) badWorkerLit() {
	for range d.items { // want `loop does not poll the stop latch or ctx`
		f := func() {
			for !d.rc.halted() {
				d.work(0)
			}
		}
		f()
	}
}

//hbbmc:ctxpoll
func (d *driver) stale() int { // want `stale carries //hbbmc:ctxpoll but contains no loops`
	return len(d.items)
}

// unannotated loops are not checked.
func (d *driver) unannotated() {
	for i := range d.items {
		d.work(i)
	}
}
