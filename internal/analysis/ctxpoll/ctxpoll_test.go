package ctxpoll_test

import (
	"testing"

	"github.com/graphmining/hbbmc/internal/analysis/antest"
	"github.com/graphmining/hbbmc/internal/analysis/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	antest.Run(t, "testdata/src", ctxpoll.Analyzer, "ctxpolltest")
}
