// Package analysis is a minimal in-repo counterpart of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repo deliberately builds with a dependency-free go.mod (it must
// compile offline), so the x/tools framework is not imported. The subset
// implemented here — Analyzer, Pass, Diagnostic, the //hbbmc:* directive
// conventions and AST parent tracking — is exactly what the mcelint
// analyzers need, and keeps the same shape as x/tools so a later migration
// is mechanical: an Analyzer's Run receives a Pass with the package's
// parsed files, type information and a Report sink.
//
// Directives. The analyzers are driven by machine-readable comments of the
// form
//
//	//hbbmc:<name> [args...]
//
// attached to declarations (function docs, struct fields) or trailing a
// statement. See the individual analyzer packages for the directives they
// define (noalloc, nomerge, guardedby, locked, ctxpoll, allowalloc,
// allowescape).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one analysis pass and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a human-readable description; the first line is a summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package and
// collects the diagnostics it reports.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic. NewPass installs a collector.
	Report func(Diagnostic)
}

// A Diagnostic is one finding of an analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// NewPass builds a Pass for one analyzer over a loaded package, appending
// reported diagnostics to *sink.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, sink *[]Diagnostic) *Pass {
	p := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	p.Report = func(d Diagnostic) {
		d.Analyzer = a.Name
		*sink = append(*sink, d)
	}
	return p
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// DirectivePrefix introduces every machine-readable comment the suite
// understands.
const DirectivePrefix = "//hbbmc:"

// Directive scans the comment groups for a //hbbmc:<name> directive and
// returns its (possibly empty) argument string. Directives must start the
// comment line; anything after the name is the argument.
func Directive(name string, groups ...*ast.CommentGroup) (args string, ok bool) {
	prefix := DirectivePrefix + name
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := c.Text[len(prefix):]
			if rest == "" {
				return "", true
			}
			if rest[0] == ' ' || rest[0] == '\t' {
				return strings.TrimSpace(rest), true
			}
		}
	}
	return "", false
}

// FuncDirective reports whether fn carries the named directive in its doc
// comment.
func FuncDirective(fn *ast.FuncDecl, name string) bool {
	_, ok := Directive(name, fn.Doc)
	return ok
}

// DirectiveLines returns the set of file lines carrying the named directive
// anywhere in the file (doc comments and trailing line comments alike).
// Statement-level suppressions use it: a directive on line L covers the
// statement starting on L.
func DirectiveLines(fset *token.FileSet, file *ast.File, name string) map[int]bool {
	prefix := DirectivePrefix + name
	lines := map[int]bool{}
	for _, g := range file.Comments {
		for _, c := range g.List {
			if strings.HasPrefix(c.Text, prefix) {
				rest := c.Text[len(prefix):]
				if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
					lines[fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	return lines
}

// Parents maps every node under root to its parent, for analyses that need
// to classify the syntactic context of a leaf (x/tools gets this from the
// inspector package).
func Parents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// ExprKey renders an expression as a stable string key ("e.setArena",
// "jm.mu"), the textual identity used to match mutexes and arena handles
// across statements of one function.
func ExprKey(e ast.Expr) string { return types.ExprString(e) }

// ReceiverName returns the name of fn's receiver variable, or "".
func ReceiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}
