package lockedfieldstest

import "sync"

type job struct {
	id string // unguarded; free to read anywhere

	mu sync.Mutex
	//hbbmc:guardedby mu
	state string
	//hbbmc:guardedby mu
	count int
}

// good locks around every guarded access, across branches and defers.
func (j *job) good(n int) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n > 0 {
		j.count += n
	}
	return j.state
}

// goodBranches unlocks in both arms; accesses stay inside the window.
func (j *job) goodBranches(ok bool) string {
	_ = j.id
	j.mu.Lock()
	if ok {
		s := j.state
		j.mu.Unlock()
		return s
	}
	j.count++
	j.mu.Unlock()
	return ""
}

// setLocked follows the *Locked suffix convention: the caller holds j.mu.
func (j *job) setLocked(s string) {
	j.state = s
	j.count++
}

//hbbmc:locked
func (j *job) bumpHeld() {
	j.count++
}

// constructor writes happen before the value is shared; composite keys are
// exempt by design.
func newJob(id string) *job {
	return &job{id: id, state: "queued"}
}

func (j *job) badUnlocked() string {
	return j.state // want `j.state is guarded by j.mu but accessed without holding it`
}

func (j *job) badAfterUnlock() {
	j.mu.Lock()
	j.state = "running"
	j.mu.Unlock()
	j.count++ // want `j.count is guarded by j.mu but accessed without holding it`
}

// badBranch unlocks in one arm only; the join must drop the lock.
func (j *job) badBranch(ok bool) {
	j.mu.Lock()
	if ok {
		j.mu.Unlock()
	}
	j.state = "x" // want `j.state is guarded by j.mu but accessed without holding it`
}

// badGoroutine: the spawned goroutine does not inherit the critical
// section.
func (j *job) badGoroutine() {
	j.mu.Lock()
	defer j.mu.Unlock()
	go func() {
		j.count++ // want `j.count is guarded by j.mu but accessed without holding it`
	}()
}

// badNotLockedSuffix has no Locked suffix and no lock of its own.
func (j *job) bump() {
	j.count++ // want `j.count is guarded by j.mu but accessed without holding it`
}

type registry struct {
	mu sync.Mutex
	//hbbmc:guardedby mu
	entries map[string]*job
}

// goodSwitch keeps the lock through a switch join.
func (r *registry) goodSwitch(k string, mode int) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch mode {
	case 0:
		return r.entries[k]
	case 1:
		delete(r.entries, k)
	}
	return r.entries[k]
}

// wrongMutex locks a different instance's mutex.
func (r *registry) wrongMutex(other *registry, k string) *job {
	other.mu.Lock()
	defer other.mu.Unlock()
	return r.entries[k] // want `r.entries is guarded by r.mu but accessed without holding it`
}

type badDecl struct {
	mu sync.Mutex
	//hbbmc:guardedby lock
	x int // want `//hbbmc:guardedby names "lock", which is not a field of this struct`
}
