package lockedfields_test

import (
	"testing"

	"github.com/graphmining/hbbmc/internal/analysis/antest"
	"github.com/graphmining/hbbmc/internal/analysis/lockedfields"
)

func TestLockedFields(t *testing.T) {
	antest.Run(t, "testdata/src", lockedfields.Analyzer, "lockedfieldstest")
}
