// Package lockedfields enforces mutex guardianship declared on struct
// fields:
//
//	mu    sync.Mutex
//	//hbbmc:guardedby mu
//	state JobState
//
// Every read or write of a guarded field must occur while the declaring
// struct's named mutex is held. The analyzer tracks lock state through each
// function body with a small intraprocedural walk: Lock/RLock on an
// expression ("j.mu", "jm.mu") adds that key to the held set, Unlock/RUnlock
// removes it, `defer mu.Unlock()` pins it for the rest of the function, and
// at control-flow joins (if/else, switch, select) the held set is the
// intersection of the branches that fall through — branches ending in
// return/panic/break/continue don't constrain the join.
//
// Two idioms are recognised as already-locked entry points: functions whose
// name ends in "Locked" (the repo's convention for helpers that require the
// caller to hold the receiver's mutex) and functions annotated
// //hbbmc:locked. For those, every mutex field of the receiver is assumed
// held on entry.
//
// Composite-literal construction (&Job{state: ...}) writes fields of a
// value no other goroutine can reach yet, so literal keys are exempt (they
// are not SelectorExprs and never match). Function literals are analysed
// as separate bodies with an empty held set — a goroutine does not inherit
// its creator's critical section.
package lockedfields

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/graphmining/hbbmc/internal/analysis"
)

// Analyzer is the lockedfields pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockedfields",
	Doc:  "//hbbmc:guardedby fields may only be accessed under their mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	c := &checker{pass: pass, guards: guards, reported: map[*ast.SelectorExpr]bool{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.checkFunc(fn)
		}
	}
	return nil
}

// collectGuards maps each guarded field object to the name of its mutex
// field, validating that the struct actually has a field of that name.
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				mu, ok := analysis.Directive("guardedby", field.Doc, field.Comment)
				if !ok {
					continue
				}
				if mu == "" || !fieldNames[mu] {
					pass.Reportf(field.Pos(),
						"//hbbmc:guardedby names %q, which is not a field of this struct", mu)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

type checker struct {
	pass     *analysis.Pass
	guards   map[*types.Var]string
	reported map[*ast.SelectorExpr]bool
}

// held is the set of mutex keys ("j.mu") currently locked on this path.
type held map[string]bool

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func intersect(a, b held) held {
	out := held{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func (c *checker) checkFunc(fn *ast.FuncDecl) {
	state := held{}
	if recv := analysis.ReceiverName(fn); recv != "" && c.entersLocked(fn) {
		for _, mu := range c.receiverMutexes(fn) {
			state[recv+"."+mu] = true
		}
	}
	c.walkBody(fn.Body.List, state)
}

// entersLocked reports whether the function's contract is "caller holds the
// lock": the *Locked name suffix or an explicit //hbbmc:locked directive.
func (c *checker) entersLocked(fn *ast.FuncDecl) bool {
	return strings.HasSuffix(fn.Name.Name, "Locked") || analysis.FuncDirective(fn, "locked")
}

// receiverMutexes lists the mutex field names guarding any field of the
// receiver's struct type.
func (c *checker) receiverMutexes(fn *ast.FuncDecl) []string {
	obj := c.pass.TypesInfo.Defs[fn.Name]
	if obj == nil {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		if mu, ok := c.guards[st.Field(i)]; ok && !seen[mu] {
			seen[mu] = true
			out = append(out, mu)
		}
	}
	return out
}

// walkBody walks statements sequentially, mutating state, and reports
// whether the sequence terminates abruptly (return/panic/branch).
func (c *checker) walkBody(stmts []ast.Stmt, state held) (terminated bool) {
	for _, s := range stmts {
		if c.walkStmt(s, state) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, state held) (terminated bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.checkExpr(s.X, state)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if c.applyLockOp(call, state) {
				return false
			}
			if isPanic(call) {
				return true
			}
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() pins the lock for the function's remainder;
		// other defers are inspected for guarded accesses in their args.
		if _, op, ok := lockOp(c.pass, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return false // held until function exit; leave state untouched
		}
		c.checkExpr(s.Call, state)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, state)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, state)
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, state)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, state)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.checkExpr(s.Cond, state)
		thenState := state.clone()
		thenTerm := c.walkBody(s.Body.List, thenState)
		elseState := state.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(s.Else, elseState)
		}
		c.join(state, thenState, thenTerm, elseState, elseTerm)
		return thenTerm && elseTerm && s.Else != nil
	case *ast.BlockStmt:
		return c.walkBody(s.List, state)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, state)
		}
		bodyState := state.clone()
		c.walkBody(s.Body.List, bodyState)
		if s.Post != nil {
			c.walkStmt(s.Post, bodyState)
		}
		// The loop body may run zero times; keep only locks held both ways.
		merge := intersect(state, bodyState)
		replace(state, merge)
	case *ast.RangeStmt:
		c.checkExpr(s.X, state)
		bodyState := state.clone()
		c.walkBody(s.Body.List, bodyState)
		merge := intersect(state, bodyState)
		replace(state, merge)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, state)
		}
		c.walkClauses(s.Body.List, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.walkStmt(s.Assign, state)
		c.walkClauses(s.Body.List, state)
	case *ast.SelectStmt:
		c.walkClauses(s.Body.List, state)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, state)
	case *ast.GoStmt:
		// The goroutine runs outside this critical section; its FuncLit (if
		// any) is analysed with an empty held set via checkExpr.
		c.checkExpr(s.Call, state)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, state)
		c.checkExpr(s.Value, state)
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.checkExpr(e, state)
				return false
			}
			return true
		})
	}
	return false
}

// walkClauses analyses each case body from a clone of the entry state and
// joins the fall-through branches by intersection.
func (c *checker) walkClauses(clauses []ast.Stmt, state held) {
	var outs []held
	hasDefault := false
	for _, cl := range clauses {
		cs := state.clone()
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.checkExpr(e, cs)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.walkStmt(cl.Comm, cs)
			}
			body = cl.Body
		}
		if !c.walkBody(body, cs) {
			outs = append(outs, cs)
		}
	}
	if !hasDefault {
		// A switch with no default can match nothing and fall through with
		// the entry state intact.
		outs = append(outs, state.clone())
	}
	if len(outs) == 0 {
		return // every branch terminated
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersect(merged, o)
	}
	replace(state, merged)
}

func (c *checker) join(state, thenState held, thenTerm bool, elseState held, elseTerm bool) {
	switch {
	case thenTerm && elseTerm:
		// Both branches terminated; code after is reachable only when the
		// else was absent — state unchanged handled by caller.
	case thenTerm:
		replace(state, elseState)
	case elseTerm:
		replace(state, thenState)
	default:
		replace(state, intersect(thenState, elseState))
	}
}

func replace(dst, src held) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

// applyLockOp mutates state for mu.Lock/Unlock calls; returns true if the
// call was a lock operation.
func (c *checker) applyLockOp(call *ast.CallExpr, state held) bool {
	key, op, ok := lockOp(c.pass, call)
	if !ok {
		return false
	}
	switch op {
	case "Lock", "RLock":
		state[key] = true
	case "Unlock", "RUnlock":
		delete(state, key)
	}
	return true
}

// lockOp matches calls to Lock/Unlock/RLock/RUnlock on a sync.Mutex or
// sync.RWMutex-typed expression and returns the receiver's textual key.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okType := pass.TypesInfo.Types[sel.X]
	if !okType || !isMutexType(tv.Type) {
		return "", "", false
	}
	return analysis.ExprKey(sel.X), sel.Sel.Name, true
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkExpr reports guarded-field accesses in e not covered by state, and
// analyses any function literals with a fresh empty held set.
func (c *checker) checkExpr(e ast.Expr, state held) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			c.walkBody(lit.Body.List, held{})
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := c.pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		field, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, guarded := c.guards[field]
		if !guarded || c.reported[sel] {
			return true
		}
		key := analysis.ExprKey(sel.X) + "." + mu
		if !state[key] {
			c.reported[sel] = true
			c.pass.Reportf(sel.Sel.Pos(),
				"%s is guarded by %s but accessed without holding it",
				analysis.ExprKey(sel), key)
		}
		return true
	})
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
