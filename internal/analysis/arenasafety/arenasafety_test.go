package arenasafety_test

import (
	"testing"

	"github.com/graphmining/hbbmc/internal/analysis/antest"
	"github.com/graphmining/hbbmc/internal/analysis/arenasafety"
)

func TestArenaSafety(t *testing.T) {
	antest.Run(t, "testdata/src", arenasafety.Analyzer, "arenasafetytest")
}
