// Package arenasafety checks the mark/release discipline around the
// engine's arena allocators (bitset.Arena, core.i32Arena).
//
// An arena type is recognised structurally: a named type whose pointer
// method set has mark()/Mark() returning an int watermark and
// release(int)/Release(int) restoring it. Within each function that marks
// an arena, the analyzer enforces:
//
//   - every mark is released: by a deferred release, or a release on every
//     return path after the mark (checked per enclosing block), or a
//     release at the function's top level before falling off the end;
//   - slices obtained from the arena after the mark (get/Get/GetUnzeroed/
//     getZeroed results) must not escape the mark/release window: returning
//     one or storing one into a struct field is flagged — the memory is
//     recycled at release. Deliberate stores (e.g. temporarily swinging a
//     scratch field at an arena slice, restored before release) carry
//     `//hbbmc:allowescape <reason>` on the assignment's line;
//   - a GetUnzeroed/get result must be fully overwritten before it is
//     read: the first use must be a write — an indexed store, an overwrite
//     kernel call (CopyFrom, AndInto*, AndNotInto*), or passing it to a
//     callee as a destination. A first use that reads (ranging over it,
//     Count-style kernels, appearing on an RHS index read) is flagged.
//
// Arena handles themselves must not migrate: assigning an existing arena
// value into a struct field is flagged (constructing a fresh arena in a
// composite literal or from a New* call is fine — that is ownership, not
// migration).
package arenasafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/graphmining/hbbmc/internal/analysis"
)

// Analyzer is the arenasafety pass.
var Analyzer = &analysis.Analyzer{
	Name: "arenasafety",
	Doc:  "arena slices must not outlive their mark/release window",
	Run:  run,
}

// overwriteMethods are the kernel calls that fully overwrite their
// receiver, making them legal first uses of unzeroed arena memory.
var overwriteMethods = map[string]bool{
	"CopyFrom":        true,
	"AndInto":         true,
	"AndNotInto":      true,
	"AndIntoCount":    true,
	"AndNotIntoCount": true,
	"OrInto":          true,
	"Fill":            true,
	"Zero":            true,
	"Clear":           true,
}

func run(pass *analysis.Pass) error {
	var fns []funcScope
	for _, f := range pass.Files {
		allowLines := analysis.DirectiveLines(pass.Fset, f, "allowescape")
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				fns = append(fns, funcScope{body: fn.Body, allow: allowLines})
			}
		}
	}
	// Closures get their own scope: a mark in the enclosing function does
	// not license gets inside a literal that may run later.
	for i := 0; i < len(fns); i++ {
		scope := fns[i]
		ast.Inspect(scope.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && n != scope.body {
				fns = append(fns, funcScope{body: lit.Body, allow: scope.allow})
				return false
			}
			return true
		})
	}
	for _, scope := range fns {
		checkScope(pass, scope)
	}
	return nil
}

type funcScope struct {
	body  *ast.BlockStmt
	allow map[int]bool // lines carrying //hbbmc:allowescape
}

type markInfo struct {
	key string // textual arena expression, e.g. "e.setArena"
	pos token.Pos
}

type releaseInfo struct {
	key      string
	pos      token.Pos
	node     ast.Node // the CallExpr
	deferred bool
}

type trackedVar struct {
	obj      *types.Var
	key      string
	pos      token.Pos
	unzeroed bool
}

func checkScope(pass *analysis.Pass, scope funcScope) {
	body := scope.body
	parents := analysis.Parents(body)

	var marks []markInfo
	var releases []releaseInfo
	var tracked []trackedVar

	// Phase 1: collect marks, releases, and arena-slice bindings, skipping
	// nested closures (they are separate scopes).
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			if key, ok := releaseCall(pass, n.Call); ok {
				releases = append(releases, releaseInfo{key: key, pos: n.Pos(), node: n.Call, deferred: true})
			}
		case *ast.CallExpr:
			if key, ok := releaseCall(pass, n); ok {
				if p, isDefer := parents[n].(*ast.DeferStmt); !isDefer || p.Call != n {
					releases = append(releases, releaseInfo{key: key, pos: n.Pos(), node: n})
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if key, ok := markCall(pass, call); ok {
					marks = append(marks, markInfo{key: key, pos: n.Pos()})
					continue
				}
				if key, unzeroed, ok := getCall(pass, call); ok {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					obj, _ := pass.TypesInfo.Defs[id].(*types.Var)
					if obj == nil {
						obj, _ = pass.TypesInfo.Uses[id].(*types.Var)
					}
					if obj != nil && markedBefore(marks, key, n.Pos()) {
						tracked = append(tracked, trackedVar{obj: obj, key: key, pos: n.Pos(), unzeroed: unzeroed})
					}
				}
			}
		}
		return true
	})

	trackedObjs := map[*types.Var]*trackedVar{}
	for i := range tracked {
		trackedObjs[tracked[i].obj] = &tracked[i]
	}

	checkEscapes(pass, scope, parents, trackedObjs, marks)
	checkReleases(pass, body, parents, marks, releases)
	for i := range tracked {
		if tracked[i].unzeroed {
			checkFirstUse(pass, body, parents, &tracked[i])
		}
	}
}

// markedBefore reports whether the arena key was marked at an earlier
// position in this scope — gets before any mark (persistent rows filled at
// session build) are exempt from window tracking.
func markedBefore(marks []markInfo, key string, pos token.Pos) bool {
	for _, m := range marks {
		if m.key == key && m.pos < pos {
			return true
		}
	}
	return false
}

// arenaMethod matches a method call on an arena-typed receiver and returns
// the receiver's textual key plus the method name.
func arenaMethod(pass *analysis.Pass, call *ast.CallExpr) (key, method string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", "", false
	}
	if !isArenaType(s.Recv()) {
		return "", "", false
	}
	return analysis.ExprKey(sel.X), sel.Sel.Name, true
}

func markCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	key, m, ok := arenaMethod(pass, call)
	if !ok || strings.ToLower(m) != "mark" {
		return "", false
	}
	return key, true
}

func releaseCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	key, m, ok := arenaMethod(pass, call)
	if !ok || strings.ToLower(m) != "release" {
		return "", false
	}
	return key, true
}

// getCall matches arena slice handouts; unzeroed reports whether the
// memory comes back with stale contents (GetUnzeroed, and i32Arena's plain
// get). Zeroing handouts are Get/getZeroed.
func getCall(pass *analysis.Pass, call *ast.CallExpr) (key string, unzeroed, ok bool) {
	key, m, ok := arenaMethod(pass, call)
	if !ok || !strings.HasPrefix(strings.ToLower(m), "get") {
		return "", false, false
	}
	lower := strings.ToLower(m)
	unzeroed = strings.Contains(lower, "unzeroed") || lower == "get" && m == "get"
	return key, unzeroed, true
}

// isArenaType recognises arena allocators structurally: pointer method set
// with mark/Mark() int and release/Release(int).
func isArenaType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	var hasMark, hasRelease bool
	for i := 0; i < ms.Len(); i++ {
		obj := ms.At(i).Obj()
		sig, ok := obj.Type().(*types.Signature)
		if !ok {
			continue
		}
		switch strings.ToLower(obj.Name()) {
		case "mark":
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 && isInt(sig.Results().At(0).Type()) {
				hasMark = true
			}
		case "release":
			if sig.Params().Len() == 1 && sig.Results().Len() == 0 && isInt(sig.Params().At(0).Type()) {
				hasRelease = true
			}
		}
	}
	return hasMark && hasRelease
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// checkEscapes flags tracked arena slices (and arena handles) stored into
// struct fields or returned, skipping nested closures and lines annotated
// //hbbmc:allowescape.
func checkEscapes(pass *analysis.Pass, scope funcScope, parents map[ast.Node]ast.Node, tracked map[*types.Var]*trackedVar, marks []markInfo) {
	ast.Inspect(scope.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			line := pass.Fset.Position(n.Pos()).Line
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[min(i, len(n.Rhs)-1)]
				if !isFieldStore(pass, lhs) {
					continue
				}
				if scope.allow[line] {
					continue
				}
				if tv := trackedExpr(pass, rhs, tracked, marks); tv != "" {
					pass.Reportf(n.Pos(),
						"arena slice %s stored into struct field %s escapes its mark/release window (annotate //hbbmc:allowescape <reason> if the store is reverted before release)",
						tv, analysis.ExprKey(lhs))
				} else if isArenaHandle(pass, rhs) {
					pass.Reportf(n.Pos(),
						"arena handle %s stored into struct field %s; arenas are owned by the scope that created them",
						analysis.ExprKey(rhs), analysis.ExprKey(lhs))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if tv := trackedExpr(pass, res, tracked, marks); tv != "" {
					pass.Reportf(res.Pos(),
						"arena slice %s returned past its mark/release window; the memory is recycled at release", tv)
				}
			}
		}
		return true
	})
}

// trackedExpr reports the name of the tracked arena slice the expression
// roots at ("" if none): a tracked identifier, a slice/index of one, or a
// direct get call inside a marked window.
func trackedExpr(pass *analysis.Pass, e ast.Expr, tracked map[*types.Var]*trackedVar, marks []markInfo) string {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj, _ := pass.TypesInfo.Uses[x].(*types.Var)
			if obj == nil {
				return ""
			}
			if _, ok := tracked[obj]; ok {
				return x.Name
			}
			return ""
		case *ast.CallExpr:
			if key, _, ok := getCall(pass, x); ok && markedBefore(marks, key, x.Pos()) {
				return key + ".get result"
			}
			return ""
		default:
			return ""
		}
	}
}

// isFieldStore reports whether lhs writes through a struct field (x.f or
// x.f[i] roots).
func isFieldStore(pass *analysis.Pass, lhs ast.Expr) bool {
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			s := pass.TypesInfo.Selections[x]
			return s != nil && s.Kind() == types.FieldVal
		default:
			return false
		}
	}
}

// isArenaHandle reports whether e is a pre-existing arena value (ident or
// selector), as opposed to a fresh construction.
func isArenaHandle(pass *analysis.Pass, e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	return ok && isArenaType(tv.Type)
}

// checkReleases verifies every mark is balanced by a release on each exit
// path after it.
func checkReleases(pass *analysis.Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, marks []markInfo, releases []releaseInfo) {
	for _, m := range marks {
		var after []releaseInfo
		deferred := false
		for _, r := range releases {
			if r.key != m.key {
				continue
			}
			if r.deferred {
				deferred = true
			}
			if r.pos > m.pos {
				after = append(after, r)
			}
		}
		if deferred {
			continue
		}
		if len(after) == 0 {
			pass.Reportf(m.Pos(), "%s is marked but never released on this path", m.key)
			continue
		}
		// Every return after the mark needs a release earlier in one of its
		// enclosing blocks (still after the mark).
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || ret.Pos() < m.pos {
				return true
			}
			if !releasedBeforeNode(ret, body, parents, after) {
				pass.Reportf(ret.Pos(), "return without releasing %s (marked at line %d)",
					m.key, pass.Fset.Position(m.pos).Line)
			}
			return true
		})
		// Falling off the end of the function: covered only when a release
		// sits at the body's top level.
		if !endsWithReturn(body) && !hasTopLevelRelease(body, after) {
			pass.Reportf(m.Pos(), "%s may fall off the end of the function without a release", m.key)
		}
	}
}

func (m markInfo) Pos() token.Pos { return m.pos }

// releasedBeforeNode climbs from the return through its enclosing blocks;
// the mark is balanced if any statement preceding the return's chain in
// one of those blocks contains a matching release.
func releasedBeforeNode(ret ast.Node, body *ast.BlockStmt, parents map[ast.Node]ast.Node, releases []releaseInfo) bool {
	child := ret
	for {
		parent := parents[child]
		if parent == nil {
			return false
		}
		var stmts []ast.Stmt
		switch p := parent.(type) {
		case *ast.BlockStmt:
			stmts = p.List
		case *ast.CaseClause:
			stmts = p.Body
		case *ast.CommClause:
			stmts = p.Body
		}
		for _, s := range stmts {
			if s == child {
				break
			}
			if stmtContainsRelease(s, releases) {
				return true
			}
		}
		if parent == ast.Node(body) {
			return false
		}
		child = parent
	}
}

func stmtContainsRelease(s ast.Stmt, releases []releaseInfo) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		for _, r := range releases {
			if n == r.node {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func endsWithReturn(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func hasTopLevelRelease(body *ast.BlockStmt, releases []releaseInfo) bool {
	for _, s := range body.List {
		if es, ok := s.(*ast.ExprStmt); ok {
			for _, r := range releases {
				if es.X == r.node {
					return true
				}
			}
		}
	}
	return false
}

// checkFirstUse verifies the first use of an unzeroed arena slice is a
// write, not a read of the stale contents.
func checkFirstUse(pass *analysis.Pass, body *ast.BlockStmt, parents map[ast.Node]ast.Node, tv *trackedVar) {
	var first *ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != tv.obj || id.Pos() <= tv.pos {
			return true
		}
		if first == nil || id.Pos() < first.Pos() {
			first = id
		}
		return true
	})
	if first == nil {
		return
	}
	if !isWriteContext(pass, first, parents) {
		pass.Reportf(first.Pos(),
			"%s holds unzeroed arena memory but its first use reads it; overwrite it fully first (CopyFrom/AndInto*/indexed stores)",
			tv.obj.Name())
	}
}

// isWriteContext classifies the syntactic context of an identifier use as
// writing (or at least not reading stale memory).
func isWriteContext(pass *analysis.Pass, id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	parent := parents[id]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// Receiver of a method call: fine when the method overwrites.
		if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
			return overwriteMethods[p.Sel.Name]
		}
		return false
	case *ast.CallExpr:
		// Passed as an argument: the callee decides; assume destination use.
		for _, a := range p.Args {
			if a == ast.Expr(id) {
				return true
			}
		}
		return false
	case *ast.IndexExpr:
		// s[i] — a write iff that index expression is an assignment target.
		if assign, ok := parents[p].(*ast.AssignStmt); ok {
			for _, l := range assign.Lhs {
				if l == ast.Expr(p) {
					return true
				}
			}
		}
		return false
	case *ast.AssignStmt:
		// Whole-slice alias or reassignment; not a read of contents.
		return true
	case *ast.SliceExpr:
		// Re-slicing into an assignment target is a write-side alias.
		_, inAssign := parents[p].(*ast.AssignStmt)
		return inAssign
	case *ast.RangeStmt:
		// Ranging over the slice reads every element.
		return p.X != ast.Expr(id)
	default:
		return false
	}
}
